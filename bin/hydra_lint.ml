(* hydra_lint: the determinism & domain-safety static-analysis gate
   (doc/STATIC_ANALYSIS.md). Parses every .ml under the given paths
   with compiler-libs, checks the intraprocedural rules D1-D6, then
   links per-module summaries into a whole-program call graph for the
   interprocedural rules D7 (pool-closure races) and D8 (transitive
   hot-path allocation). Exit 0 = clean, 1 = findings, 2 =
   read/parse/usage errors; "cannot prove" notes and warnings never
   affect the exit code. Wired as [dune build @lint] by the root dune
   file. *)

let usage =
  "hydra_lint [--format text|json|sarif] [--allowlist FILE] [--out FILE]\n\
  \           [--jobs N] [--cache-dir DIR] [--changed-only] [--list-rules]\n\
  \           [PATH...]\n\
   Lint .ml sources for determinism and domain-safety (rules D1-D8).\n\
   PATH defaults to: lib bin bench"

(* Lines of a shell command, or None if it failed — the --changed-only
   helpers must degrade to a full scan, never to an error. *)
let command_lines cmd =
  match Unix.open_process_in (cmd ^ " 2>/dev/null") with
  | exception _ -> None
  | ic -> (
      let rec go acc =
        match In_channel.input_line ic with
        | Some l -> go (l :: acc)
        | None -> List.rev acc
      in
      let lines = go [] in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 -> Some lines
      | _ -> None)

(* Changed .ml files relative to [git merge-base HEAD origin/main]:
   committed changes on the branch, plus working-tree edits, plus
   untracked files. None = git unavailable / not a repo / no
   origin/main — caller falls back to the full scan. *)
let changed_ml_files () =
  match command_lines "git merge-base HEAD origin/main" with
  | Some [ base ] ->
      let committed =
        command_lines (Printf.sprintf "git diff --name-only %s HEAD" base)
      in
      let unstaged = command_lines "git diff --name-only HEAD" in
      let untracked = command_lines "git ls-files --others --exclude-standard" in
      (match (committed, unstaged, untracked) with
      | Some a, Some b, Some c ->
          Some
            (a @ b @ c
            |> List.filter (fun f ->
                   Filename.check_suffix f ".ml" && Sys.file_exists f)
            |> List.sort_uniq String.compare)
      | _ -> None)
  | _ -> None

let () =
  let format = ref "text" in
  let allowlist_file = ref None in
  let out_file = ref None in
  let list_rules = ref false in
  let jobs = ref None in
  let cache_dir = ref None in
  let changed_only = ref false in
  let paths = ref [] in
  let spec =
    [ ( "--format",
        Arg.Symbol ([ "text"; "json"; "sarif" ], fun s -> format := s),
        " report format on stdout (default text)" );
      ( "--allowlist",
        Arg.String (fun s -> allowlist_file := Some s),
        "FILE checked-in suppression file (RULE PATH[:LINE] per line)" );
      ( "--out",
        Arg.String (fun s -> out_file := Some s),
        "FILE also write the JSON report to FILE" );
      ( "--jobs",
        Arg.Int (fun n -> jobs := Some n),
        "N lint files on N domains (default: cores - 1; output is \
         byte-identical for every N)" );
      ( "--cache-dir",
        Arg.String (fun s -> cache_dir := Some s),
        "DIR reuse per-file results from DIR/.lint-cache (content-digest \
         keyed; safe to delete anytime)" );
      ( "--changed-only",
        Arg.Set changed_only,
        " lint only files changed since `git merge-base HEAD origin/main` \
         (falls back to a full scan when git is unavailable)" );
      ( "--list-rules",
        Arg.Set list_rules,
        " print the rule catalog and exit" ) ]
  in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    Lint.Rules.pp_catalog Format.std_formatter ();
    exit 0
  end;
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps
  in
  let allowlist =
    match !allowlist_file with
    | None -> Lint.Allowlist.empty
    | Some file -> (
        match Lint.Allowlist.load file with
        | Ok t -> t
        | Error m ->
            Printf.eprintf "hydra_lint: bad allowlist: %s\n" m;
            exit 2)
  in
  let result =
    if !changed_only then
      match changed_ml_files () with
      | Some changed ->
          (* Intersect with the requested paths so `--changed-only test`
             still means "changed files under test/". *)
          let in_scope = Lint.Driver.collect_ml_files paths in
          let files = List.filter (fun f -> List.mem f in_scope) changed in
          Lint.Driver.run_files ~allowlist ?jobs:!jobs ?cache_dir:!cache_dir
            files
      | None ->
          Printf.eprintf
            "hydra_lint: warning: --changed-only needs git and origin/main; \
             falling back to a full scan\n";
          Lint.Driver.run ~allowlist ?jobs:!jobs ?cache_dir:!cache_dir paths
    else Lint.Driver.run ~allowlist ?jobs:!jobs ?cache_dir:!cache_dir paths
  in
  let report =
    match !format with
    | "json" -> Lint.Driver.report_json result
    | "sarif" -> Lint.Driver.report_sarif result
    | _ -> Lint.Driver.report_text result
  in
  print_string report;
  (match !out_file with
  | Some file ->
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc (Lint.Driver.report_json result))
  | None -> ());
  List.iter (Printf.eprintf "hydra_lint: %s\n") result.warnings;
  List.iter (Printf.eprintf "hydra_lint: error: %s\n") result.errors;
  Printf.eprintf
    "hydra_lint: scanned %d file(s), %d finding(s), %d note(s)%s\n"
    result.files_scanned
    (List.length result.findings)
    (List.length result.notes)
    (if !cache_dir <> None then
       Printf.sprintf ", %d cached" result.cache_hits
     else "");
  if result.errors <> [] then exit 2
  else if result.findings <> [] then exit 1
