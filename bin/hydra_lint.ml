(* hydra_lint: the determinism & domain-safety static-analysis gate
   (doc/STATIC_ANALYSIS.md). Parses every .ml under the given paths
   with compiler-libs and checks rules D1-D5; exit 0 = clean, 1 =
   findings, 2 = read/parse/usage errors. Wired as [dune build @lint]
   by the root dune file. *)

let usage =
  "hydra_lint [--format text|json] [--allowlist FILE] [--out FILE] \
   [--list-rules] [PATH...]\n\
   Lint .ml sources for determinism and domain-safety (rules D1-D5).\n\
   PATH defaults to: lib bin bench"

let () =
  let format = ref "text" in
  let allowlist_file = ref None in
  let out_file = ref None in
  let list_rules = ref false in
  let paths = ref [] in
  let spec =
    [ ( "--format",
        Arg.Symbol ([ "text"; "json" ], fun s -> format := s),
        " report format on stdout (default text)" );
      ( "--allowlist",
        Arg.String (fun s -> allowlist_file := Some s),
        "FILE checked-in suppression file (RULE PATH[:LINE] per line)" );
      ( "--out",
        Arg.String (fun s -> out_file := Some s),
        "FILE also write the JSON report to FILE" );
      ( "--list-rules",
        Arg.Set list_rules,
        " print the rule catalog and exit" ) ]
  in
  Arg.parse (Arg.align spec) (fun p -> paths := p :: !paths) usage;
  if !list_rules then begin
    Lint.Rules.pp_catalog Format.std_formatter ();
    exit 0
  end;
  let paths =
    match List.rev !paths with [] -> [ "lib"; "bin"; "bench" ] | ps -> ps
  in
  let allowlist =
    match !allowlist_file with
    | None -> Lint.Allowlist.empty
    | Some file -> (
        match Lint.Allowlist.load file with
        | Ok t -> t
        | Error m ->
            Printf.eprintf "hydra_lint: bad allowlist: %s\n" m;
            exit 2)
  in
  let result = Lint.Driver.run ~allowlist paths in
  let report =
    match !format with
    | "json" -> Lint.Driver.report_json result
    | _ -> Lint.Driver.report_text result
  in
  print_string report;
  (match !out_file with
  | Some file ->
      Out_channel.with_open_text file (fun oc ->
          Out_channel.output_string oc (Lint.Driver.report_json result))
  | None -> ());
  List.iter (Printf.eprintf "hydra_lint: error: %s\n") result.errors;
  Printf.eprintf "hydra_lint: scanned %d file(s), %d finding(s)\n"
    result.files_scanned
    (List.length result.findings);
  if result.errors <> [] then exit 2
  else if result.findings <> [] then exit 1
