(* hydra-experiments: regenerate every table and figure of the paper.

   Subcommands: tables, fig5, fig6, fig7a, fig7b, ablation, all.
   Each takes --seed and scale parameters so the committed
   EXPERIMENTS.md numbers are reproducible exactly. *)

open Cmdliner

let std = Format.std_formatter

let profile_arg =
  Arg.(value & flag
       & info [ "profile-runtime" ]
           ~doc:"Profile the OCaml runtime and the worker pool: subscribe to                  the runtime's event rings (GC pause histograms                  gc.minor_pause_ns / gc.major_pause_ns, per-domain pause                  counters, domain lifecycle) and record per-worker pool                  scheduling metrics (busy/idle time, queue waits). Implies                  collection; adds per-domain 'ocaml runtime' rows to                  --trace-out. Profiling metrics are wall-clock and vary                  across --jobs, so a snapshot taken with this flag is                  outside the byte-identical determinism contract                  (doc/OBSERVABILITY.md). Stdout is still unaffected.")

let stream_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-stream" ] ~docv:"FILE"
           ~doc:"Append a time series of metrics deltas (JSONL, one                  hydra_c.metrics_delta/1 object per line) to FILE: one line                  per phase boundary, plus one every --stream-period-ms if                  set, plus a final line. Folding the whole stream                  reconstructs the full snapshot exactly ('hydra_c obs-report                  FILE' does). Implies collection; stdout is unaffected.")

let stream_period_arg =
  Arg.(value & opt int 0 & info [ "stream-period-ms" ] ~docv:"MS"
         ~doc:"With --metrics-stream, also tick the stream every MS                milliseconds from a background domain (0, the default,                disables periodic ticks — phase boundaries still tick).")

(* The observability context of one command invocation: the registry
   (if any collection was requested) plus the open JSONL metrics
   stream (--metrics-stream). Phase boundaries tick the stream, so a
   stream without --stream-period-ms still gets one delta line per
   phase. *)
type obs_ctx = {
  oc_obs : Hydra_obs.t option;
  oc_stream : Hydra_obs.Snapshot.Stream.stream option;
}

let no_ctx = { oc_obs = None; oc_stream = None }

(* "sweep M=2" -> "sweep_m_2": phase labels double as span metric
   names (phase.<slug>), which keeps to the dot-separated lowercase
   catalog convention. *)
let slug label =
  String.map
    (fun c ->
      match Char.lowercase_ascii c with
      | ('a' .. 'z' | '0' .. '9') as c -> c
      | _ -> '_')
    label

(* Phase timings go to stderr: stdout must stay byte-identical across
   --jobs values (the determinism contract, doc/PARALLELISM.md). The
   monotonic clock (Hydra_obs.now_ns) rather than wall-clock time, so
   durations survive clock steps — and rule D1 of [dune build @lint]
   stays clean (doc/STATIC_ANALYSIS.md). Each phase is also a real
   [phase.<slug>] span in the registry (span {e counts} are
   deterministic, so snapshots stay byte-identical; durations are only
   exported under --trace-out / include_timings) and a tick of the
   metrics stream, labelled with the phase. *)
let timed ?(ctx = no_ctx) ~jobs label f =
  let t0 = Hydra_obs.now_ns () in
  let r = Hydra_obs.span ctx.oc_obs ("phase." ^ slug label) f in
  Format.eprintf "[time] %-24s %8.2f s  (jobs=%d)@." label
    (float_of_int (Hydra_obs.now_ns () - t0) /. 1e9)
    jobs;
  (match ctx.oc_stream with
  | Some st -> Hydra_obs.Snapshot.Stream.tick ~label:(slug label) st
  | None -> ());
  r

let metrics_arg =
  Arg.(value & flag
       & info [ "metrics" ]
           ~doc:"Collect Hydra_obs metrics (fixed-point iterations,                  binary-search probes, simulator schedule events, spans)                  and print a summary table on stderr when the command                  finishes. Never changes stdout or any result                  (doc/OBSERVABILITY.md).")

let trace_out_arg =
  Arg.(value & opt (some string) None
       & info [ "trace-out" ] ~docv:"FILE"
           ~doc:"Write the spans of the run (and, for fig5, the simulated                  per-core schedule) as Chrome trace-event JSON to FILE                  (open in Perfetto or chrome://tracing). Implies                  collection; stdout is unaffected.")

let metrics_out_arg =
  Arg.(value & opt (some string) None
       & info [ "metrics-out" ] ~docv:"FILE"
           ~doc:"Write a machine-readable metrics snapshot (schema                  hydra_c.metrics/1: counters, distributions, latency                  histograms with quantiles, span counts) as JSON to FILE.                  Deterministic: byte-identical for every --jobs value.                  Implies collection; stdout is unaffected                  (doc/OBSERVABILITY.md).")

(* One Hydra_obs registry per command invocation, created only when
   --metrics, --trace-out, --metrics-out, --metrics-stream or
   --profile-runtime asks for it: the [None] default keeps every
   instrumented code path a no-op. The summary goes to stderr and the
   trace/snapshot/stream to files so stdout stays byte-identical to an
   uninstrumented run (the determinism contract, doc/PARALLELISM.md).
   [sched_log], when given (fig5 + --trace-out), contributes the
   simulated schedule as a second Perfetto process (pid 1) in the same
   trace file; --profile-runtime contributes the OCaml runtime's GC
   rows as a third (pid 2) and flips the registry into profiling mode
   (pool scheduling metrics, GC histograms — nondeterministic, outside
   the snapshot contract; doc/OBSERVABILITY.md). *)
let with_obs ?sched_log ~metrics ~trace_out ~metrics_out ~profile ~stream
    ~stream_period f =
  if
    (not metrics) && (not profile) && trace_out = None && metrics_out = None
    && stream = None
  then f no_ctx
  else begin
    let obs = Hydra_obs.create () in
    if profile then Hydra_obs.enable_profiling obs;
    let profiler =
      if not profile then None
      else
        match Hydra_obs.Runtime.start obs with
        | Some _ as p -> p
        | None ->
            Format.eprintf
              "[obs] Runtime_events unavailable; GC/domain profiling \
               disabled@.";
            None
    in
    let st =
      Option.map (fun path -> Hydra_obs.Snapshot.Stream.create obs ~path)
        stream
    in
    let ticker =
      match st with
      | Some s when stream_period > 0 ->
          Some
            (Hydra_obs.Ticker.start ~period_ms:stream_period (fun () ->
                 Hydra_obs.Snapshot.Stream.tick s))
      | _ -> None
    in
    Fun.protect
      ~finally:(fun () ->
        (match ticker with
        | Some tk -> Hydra_obs.Ticker.stop tk
        | None -> ());
        (* stop the profiler before the final stream tick / snapshot so
           the last drained GC events are included *)
        (match profiler with
        | Some p -> Hydra_obs.Runtime.stop p
        | None -> ());
        (match st with
        | Some s ->
            Hydra_obs.Snapshot.Stream.tick ~label:"final" s;
            Hydra_obs.Snapshot.Stream.close s;
            Format.eprintf "[obs] wrote metrics stream to %s@."
              (Option.get stream)
        | None -> ());
        if metrics then Hydra_obs.pp_summary Format.err_formatter obs;
        (match metrics_out with
        | Some path ->
            Hydra_obs.Snapshot.write obs ~path;
            Format.eprintf "[obs] wrote metrics snapshot to %s@." path
        | None -> ());
        match trace_out with
        | Some path ->
            let extra =
              (match sched_log with
              | Some log -> Sim.Event_log.chrome_events log ~pid:1
              | None -> [])
              @
              match profiler with
              | Some p -> Hydra_obs.Runtime.chrome_events p ~pid:2
              | None -> []
            in
            Hydra_obs.write_chrome_trace ~extra obs ~path;
            Format.eprintf "[obs] wrote Chrome trace to %s@." path
        | None -> ())
      (fun () -> f { oc_obs = Some obs; oc_stream = st })
  end

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
         ~doc:"PRNG seed (splitmix64).")

let jobs_arg =
  let raw =
    Arg.(value & opt int (Parallel.Pool.default_jobs ())
         & info [ "jobs"; "j" ] ~docv:"N"
             ~doc:"Worker domains for sweep-shaped experiments (1 = plain \
                   sequential loop). Results are identical for every value; \
                   defaults to the machine's recommended domain count minus \
                   one. See doc/PARALLELISM.md.")
  in
  (* clamp here so the [time] lines report the effective value *)
  Term.(const (max 1) $ raw)

let trials_arg =
  Arg.(value & opt int 35 & info [ "trials" ] ~docv:"N"
         ~doc:"Rover trials (the paper uses 35).")

let horizon_arg =
  Arg.(value & opt int 45000 & info [ "horizon" ] ~docv:"TICKS"
         ~doc:"Simulation horizon in ms (the paper observes 45 s).")

let per_group_arg =
  Arg.(value & opt int 250 & info [ "tasksets-per-group" ] ~docv:"N"
         ~doc:"Synthetic tasksets per utilization group (paper: 250).")

let cores_arg =
  Arg.(value & opt (list int) [ 2; 4 ] & info [ "cores" ] ~docv:"M,..."
         ~doc:"Core counts to sweep (paper: 2 and 4).")

let policy_arg =
  let policy_conv =
    Arg.enum
      [ ("top-delta", Hydra.Analysis.Top_delta);
        ("exhaustive", Hydra.Analysis.Exhaustive) ]
  in
  Arg.(value & opt policy_conv Hydra.Analysis.Top_delta
       & info [ "carry-in" ] ~docv:"POLICY"
           ~doc:"Carry-in handling: top-delta (polynomial bound) or \
                 exhaustive (literal Eq. 8).")

let fast_arg =
  let naive =
    Arg.(value & flag
         & info [ "naive-analysis" ]
             ~doc:"Use the reference (unoptimized) WCRT analysis and period \
                   search instead of the bit-identical fast path. Results \
                   are the same either way (doc/PERFORMANCE.md); this flag \
                   exists for cross-checking and for timing the naive \
                   path.")
  in
  Term.(const not $ naive)

let sim_fast_arg =
  let naive =
    Arg.(value & flag
         & info [ "naive-sim" ]
             ~doc:"Simulate with the reference stepper engine instead of the \
                   event-driven skip-ahead engine. Schedules, counters and \
                   detection latencies are bit-identical either way \
                   (doc/SIMULATOR.md); this flag exists for cross-checking \
                   and for timing the naive engine (bench/sim_bench.exe).")
  in
  Term.(const not $ naive)

let run_tables () = Experiments.Tables.render_all std ()

let deploy_arg =
  let deploy_conv =
    Arg.enum
      [ ("tmax", Experiments.Fig5.Tmax); ("adapted", Experiments.Fig5.Adapted) ]
  in
  Arg.(value & opt deploy_conv Experiments.Fig5.Tmax
       & info [ "deploy" ] ~docv:"MODE"
           ~doc:"Security periods deployed on the rover: tmax (designer \
                 bounds, the paper's demo) or adapted (each scheme's \
                 selected periods).")

let dat_dir_arg =
  Arg.(value & opt (some string) None & info [ "dat-dir" ] ~docv:"DIR"
         ~doc:"Also export gnuplot-ready .dat files (and plots.gp) to DIR.")

let export dat_dir f =
  match dat_dir with
  | None -> ()
  | Some dir ->
      let path = f ~dir in
      Format.printf "[export] wrote %s@." path

let run_fig5 jobs sim_fast seed trials horizon deployment dat_dir metrics
    trace_out metrics_out profile stream stream_period =
  (* The schedule log only exists when a trace file was requested; it
     records trial 0's HYDRA-C run on the rover's cores. *)
  let sched_log =
    match trace_out with
    | None -> None
    | Some _ ->
        let ts = Security.Rover.taskset () in
        Some (Sim.Event_log.create ~n_cores:ts.Rtsched.Task.n_cores)
  in
  with_obs ?sched_log ~metrics ~trace_out ~metrics_out ~profile ~stream
    ~stream_period
  @@ fun ctx ->
  let obs = ctx.oc_obs in
  let report =
    timed ~ctx ~jobs "fig5" (fun () ->
        Experiments.Fig5.run ~seed ~trials ~horizon ~deployment ~jobs ?obs
          ?sched_log ~sim_fast ())
  in
  Experiments.Fig5.render std report;
  export dat_dir (fun ~dir -> Experiments.Dat_export.fig5 ~dir report)

let sweeps ~ctx ~fast jobs policy seed per_group cores =
  let obs = ctx.oc_obs in
  List.map
    (fun m ->
      Format.printf "[sweep] M=%d: %d tasksets x 10 groups...@." m per_group;
      timed ~ctx ~jobs
        (Printf.sprintf "sweep M=%d" m)
        (fun () ->
          Experiments.Sweep.run ~policy ~fast ?obs ~n_cores:m ~per_group ~seed
            ~jobs ()))
    cores

let run_fig6 jobs policy fast seed per_group cores dat_dir metrics trace_out
    metrics_out profile stream stream_period =
  with_obs ~metrics ~trace_out ~metrics_out ~profile ~stream ~stream_period
  @@ fun ctx ->
  sweeps ~ctx ~fast jobs policy seed per_group cores
  |> List.iter (fun sweep ->
         let fig = Experiments.Fig6.of_sweep sweep in
         Experiments.Fig6.render std fig;
         export dat_dir (fun ~dir -> Experiments.Dat_export.fig6 ~dir fig));
  export dat_dir (fun ~dir -> Experiments.Dat_export.gnuplot_script ~dir ~cores)

let run_fig7 which jobs policy fast seed per_group cores dat_dir metrics
    trace_out metrics_out profile stream stream_period =
  with_obs ~metrics ~trace_out ~metrics_out ~profile ~stream ~stream_period
  @@ fun ctx ->
  sweeps ~ctx ~fast jobs policy seed per_group cores
  |> List.iter (fun sweep ->
         let fig = Experiments.Fig7.of_sweep sweep in
         (match which with
         | `A ->
             Experiments.Fig7.render_a std fig;
             export dat_dir (fun ~dir -> Experiments.Dat_export.fig7a ~dir fig)
         | `B ->
             Experiments.Fig7.render_b std fig;
             export dat_dir (fun ~dir -> Experiments.Dat_export.fig7b ~dir fig)
         | `Both ->
             Experiments.Fig7.render_a std fig;
             Experiments.Fig7.render_b std fig;
             export dat_dir (fun ~dir -> Experiments.Dat_export.fig7a ~dir fig);
             export dat_dir (fun ~dir -> Experiments.Dat_export.fig7b ~dir fig)));
  export dat_dir (fun ~dir -> Experiments.Dat_export.gnuplot_script ~dir ~cores)

let run_ablation jobs seed per_group cores metrics trace_out metrics_out
    profile stream stream_period =
  with_obs ~metrics ~trace_out ~metrics_out ~profile ~stream ~stream_period
  @@ fun ctx ->
  let obs = ctx.oc_obs in
  timed ~ctx ~jobs "ablation" (fun () ->
      Experiments.Ablation.run_all ~jobs ?obs std ~seed ~per_group ~cores)

let run_analyze policy file =
  match Rtsched.Taskset_io.load file with
  | Error msg ->
      Format.printf "error: %s@." msg;
      exit 1
  | Ok ts -> (
      Format.printf "%a@." Rtsched.Task.pp_taskset ts;
      match Rtsched.Partition.partition_rt ts with
      | None ->
          Format.printf "RT tasks are not partitionable on %d cores@."
            ts.Rtsched.Task.n_cores;
          exit 2
      | Some rt_assignment ->
          Format.printf "RT partition (best-fit):@.";
          Array.iteri
            (fun i t ->
              Format.printf "  %-16s -> core %d@." t.Rtsched.Task.rt_name
                rt_assignment.(i))
            ts.Rtsched.Task.rt;
          let sys = Hydra.Analysis.make_system ts ~assignment:rt_assignment in
          (match Hydra.Period_selection.select ~policy sys ts.Rtsched.Task.sec
           with
          | Hydra.Period_selection.Schedulable assignments ->
              Format.printf "@.HYDRA-C periods:@.";
              List.iter
                (fun (a : Hydra.Period_selection.assignment) ->
                  Format.printf "  %-16s T* = %6d (bound %6d, WCRT %6d)@."
                    a.sec.Rtsched.Task.sec_name a.period
                    a.sec.Rtsched.Task.sec_period_max a.resp)
                assignments
          | Hydra.Period_selection.Unschedulable -> (
              Format.printf
                "@.unschedulable within the designer bounds under the given \
                 priorities.@.";
              match Hydra.Priority_assignment.first_schedulable ~policy sys
                      ts.Rtsched.Task.sec
              with
              | Some (ordering, assignments) ->
                  Format.printf
                    "a schedulable priority order exists: %s@."
                    (Hydra.Priority_assignment.ordering_name ordering);
                  List.iter
                    (fun (a : Hydra.Period_selection.assignment) ->
                      Format.printf "  %-16s T* = %6d (WCRT %6d)@."
                        a.sec.Rtsched.Task.sec_name a.period a.resp)
                    assignments
              | None ->
                  Format.printf "no candidate priority order schedules it@."));
          Format.printf "@.Scheme comparison:@.";
          List.iter
            (fun scheme ->
              let o = Hydra.Scheme.evaluate ~policy scheme ts ~rt_assignment in
              Format.printf "  %-12s schedulable=%b@."
                (Hydra.Scheme.name scheme) o.Hydra.Scheme.schedulable)
            Hydra.Scheme.all;
          Format.printf "@.%a@." Hydra.Sensitivity.render
            (Hydra.Sensitivity.analyze ~policy sys ts.Rtsched.Task.sec))

let run_report jobs seed trials per_group cores out metrics trace_out
    metrics_out profile stream stream_period =
  with_obs ~metrics ~trace_out ~metrics_out ~profile ~stream ~stream_period
  @@ fun ctx ->
  let obs = ctx.oc_obs in
  let scale =
    { Experiments.Report.sc_seed = seed; sc_trials = trials;
      sc_per_group = per_group; sc_cores = cores;
      sc_validate_tasksets = 50 }
  in
  timed ~ctx ~jobs "report" (fun () ->
      Experiments.Report.write ~jobs ?obs scale ~path:out);
  Format.printf "wrote %s@." out

let run_validate jobs policy sim_fast seed tasksets cores metrics trace_out
    metrics_out profile stream stream_period =
  with_obs ~metrics ~trace_out ~metrics_out ~profile ~stream ~stream_period
  @@ fun ctx ->
  let obs = ctx.oc_obs in
  List.iter
    (fun n_cores ->
      Format.printf "[validate] M=%d, %d tasksets...@." n_cores tasksets;
      let result =
        timed ~ctx ~jobs
          (Printf.sprintf "validate M=%d" n_cores)
          (fun () ->
            Experiments.Validation.run ~policy ?obs ~sim_fast ~n_cores
              ~tasksets ~seed ~jobs ())
      in
      Experiments.Validation.render std result)
    cores

let run_all jobs policy fast sim_fast seed trials horizon per_group cores
    dat_dir metrics trace_out metrics_out profile stream stream_period =
  with_obs ~metrics ~trace_out ~metrics_out ~profile ~stream ~stream_period
  @@ fun ctx ->
  let obs = ctx.oc_obs in
  let t0 = Hydra_obs.now_ns () in
  run_tables ();
  let fig5_under deployment =
    let report =
      timed ~ctx ~jobs "fig5" (fun () ->
          Experiments.Fig5.run ~seed ~trials ~horizon ~deployment ~jobs ?obs
            ~sim_fast ())
    in
    Experiments.Fig5.render std report;
    export dat_dir (fun ~dir -> Experiments.Dat_export.fig5 ~dir report)
  in
  fig5_under Experiments.Fig5.Tmax;
  fig5_under Experiments.Fig5.Adapted;
  sweeps ~ctx ~fast jobs policy seed per_group cores
  |> List.iter (fun sweep ->
         let fig6 = Experiments.Fig6.of_sweep sweep in
         Experiments.Fig6.render std fig6;
         export dat_dir (fun ~dir -> Experiments.Dat_export.fig6 ~dir fig6);
         let fig = Experiments.Fig7.of_sweep sweep in
         Experiments.Fig7.render_a std fig;
         Experiments.Fig7.render_b std fig;
         export dat_dir (fun ~dir -> Experiments.Dat_export.fig7a ~dir fig);
         export dat_dir (fun ~dir -> Experiments.Dat_export.fig7b ~dir fig));
  export dat_dir (fun ~dir -> Experiments.Dat_export.gnuplot_script ~dir ~cores);
  timed ~ctx ~jobs "ablation" (fun () ->
      Experiments.Ablation.run_all ~jobs ?obs std ~seed
        ~per_group:(max 1 (per_group / 5))
        ~cores);
  Format.eprintf "[time] %-24s %8.2f s  (jobs=%d)@." "total"
    (float_of_int (Hydra_obs.now_ns () - t0) /. 1e9)
    jobs

(* Default command (no subcommand): a fixed-scale smoke workload that
   touches both the analysis stack (sweep -> Algorithm 1 -> Eq. 7
   fixed points) and the simulator (validation runs), so
   [hydra-experiments --jobs 4 --metrics --trace-out t.json] exercises
   and exports every metric family while keeping stdout identical to a
   plain [hydra-experiments --jobs 1] run. *)
let run_smoke jobs fast sim_fast metrics trace_out metrics_out profile stream
    stream_period =
  with_obs ~metrics ~trace_out ~metrics_out ~profile ~stream ~stream_period
  @@ fun ctx ->
  let obs = ctx.oc_obs in
  Format.printf "[smoke] fixed-scale smoke workload (M=2, seed 42)@.";
  let sweep =
    timed ~ctx ~jobs "smoke sweep" (fun () ->
        Experiments.Sweep.run ~fast ?obs ~n_cores:2 ~per_group:8 ~seed:42
          ~jobs ())
  in
  Experiments.Fig7.render_a std (Experiments.Fig7.of_sweep sweep);
  let result =
    timed ~ctx ~jobs "smoke validate" (fun () ->
        Experiments.Validation.run ?obs ~sim_fast ~n_cores:2 ~tasksets:10
          ~seed:42 ~jobs ())
  in
  Experiments.Validation.render std result

let cmd_tables =
  Cmd.v (Cmd.info "tables" ~doc:"Render Tables 1-3.")
    Term.(const run_tables $ const ())

let cmd_fig5 =
  Cmd.v (Cmd.info "fig5" ~doc:"Rover detection-latency experiment (Fig. 5).")
    Term.(const run_fig5 $ jobs_arg $ sim_fast_arg $ seed_arg $ trials_arg
          $ horizon_arg $ deploy_arg $ dat_dir_arg $ metrics_arg
          $ trace_out_arg $ metrics_out_arg $ profile_arg $ stream_arg $ stream_period_arg)

let cmd_fig6 =
  Cmd.v (Cmd.info "fig6" ~doc:"Period-distance sweep (Fig. 6).")
    Term.(const run_fig6 $ jobs_arg $ policy_arg $ fast_arg $ seed_arg
          $ per_group_arg $ cores_arg $ dat_dir_arg $ metrics_arg
          $ trace_out_arg $ metrics_out_arg $ profile_arg $ stream_arg $ stream_period_arg)

let cmd_fig7a =
  Cmd.v (Cmd.info "fig7a" ~doc:"Acceptance-ratio sweep (Fig. 7a).")
    Term.(const (run_fig7 `A) $ jobs_arg $ policy_arg $ fast_arg $ seed_arg
          $ per_group_arg $ cores_arg $ dat_dir_arg $ metrics_arg
          $ trace_out_arg $ metrics_out_arg $ profile_arg $ stream_arg $ stream_period_arg)

let cmd_fig7b =
  Cmd.v (Cmd.info "fig7b" ~doc:"Period-difference sweep (Fig. 7b).")
    Term.(const (run_fig7 `B) $ jobs_arg $ policy_arg $ fast_arg $ seed_arg
          $ per_group_arg $ cores_arg $ dat_dir_arg $ metrics_arg
          $ trace_out_arg $ metrics_out_arg $ profile_arg $ stream_arg $ stream_period_arg)

let tasksets_arg =
  Arg.(value & opt int 100 & info [ "tasksets" ] ~docv:"N"
         ~doc:"Tasksets to cross-validate.")

let file_arg =
  Arg.(required & pos 0 (some file) None
       & info [] ~docv:"FILE" ~doc:"Taskset file (see Rtsched.Taskset_io).")

let cmd_analyze =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Analyze a user-provided taskset file: partition, period \
             selection, scheme comparison, WCET sensitivity.")
    Term.(const run_analyze $ policy_arg $ file_arg)

let out_arg =
  Arg.(value & opt string "report.md" & info [ "out" ] ~docv:"PATH"
         ~doc:"Output path for the Markdown report.")

let cmd_report =
  Cmd.v
    (Cmd.info "report"
       ~doc:"Regenerate every artifact and write a Markdown report.")
    Term.(const run_report $ jobs_arg $ seed_arg $ trials_arg $ per_group_arg
          $ cores_arg $ out_arg $ metrics_arg $ trace_out_arg
          $ metrics_out_arg $ profile_arg $ stream_arg $ stream_period_arg)

let cmd_validate =
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Cross-validate the HYDRA-C analysis against the discrete-event \
             simulator (soundness + tightness).")
    Term.(const run_validate $ jobs_arg $ policy_arg $ sim_fast_arg $ seed_arg
          $ tasksets_arg $ cores_arg $ metrics_arg $ trace_out_arg
          $ metrics_out_arg $ profile_arg $ stream_arg $ stream_period_arg)

let cmd_ablation =
  Cmd.v
    (Cmd.info "ablation"
       ~doc:"Ablations: carry-in policy, partitioning heuristic, priority \
             order.")
    Term.(const run_ablation $ jobs_arg $ seed_arg $ per_group_arg
          $ cores_arg $ metrics_arg $ trace_out_arg
          $ metrics_out_arg $ profile_arg $ stream_arg $ stream_period_arg)

let cmd_all =
  Cmd.v (Cmd.info "all" ~doc:"Everything: tables, figures, ablations.")
    Term.(const run_all $ jobs_arg $ policy_arg $ fast_arg $ sim_fast_arg
          $ seed_arg $ trials_arg $ horizon_arg $ per_group_arg $ cores_arg
          $ dat_dir_arg $ metrics_arg $ trace_out_arg
          $ metrics_out_arg $ profile_arg $ stream_arg $ stream_period_arg)

(* --------------------------------------------------------------- *)
(* obs-report: offline consumer of the snapshot artifacts.

   Exit codes: 0 = ok, 1 = a watched metric regressed past
   --max-regression, 2 = unreadable/malformed input (cmdliner itself
   uses 124/125 for CLI errors). Output is deterministic (sorted keys,
   fixed columns), so CI can diff it. *)

(* One obs_snapshot request against a live daemon: the scrape path of
   'obs-report --connect'. Scrapes leave no footprint in the daemon's
   registry, so a live summary taken mid-run matches the eventual
   --metrics-out snapshot of the same workload. *)
let fetch_live_snapshot socket =
  let module P = Hydra_server.Protocol in
  let fd = Unix.socket PF_UNIX SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match
        Unix.connect fd (Unix.ADDR_UNIX socket);
        P.write_frame fd
          (P.encode_request { P.q_id = 0; q_tenant = ""; q_op = P.Obs_snapshot });
        P.read_frame fd
      with
      | None -> Error "daemon closed the connection before responding"
      | Some payload -> (
          let r = P.decode_response payload in
          match r.P.p_body with
          | P.Metrics doc -> (
              match Hydra_obs.Report.of_string doc with
              | snap -> Ok snap
              | exception Hydra_obs.Json.Error m -> Error m)
          | _ ->
              Error
                (match r.P.p_reason with
                | Some m -> m
                | None -> "unexpected response body"))
      | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
      | exception P.Protocol_error m -> Error m)

let run_obs_report files max_regression watch all_rows connect =
  let fail msg =
    Format.eprintf "obs-report: %s@." msg;
    exit 2
  in
  let load path =
    match Hydra_obs.Report.load path with
    | Ok snap -> snap
    | Error msg -> fail msg
  in
  let live socket =
    match fetch_live_snapshot socket with
    | Ok snap -> snap
    | Error msg -> fail (socket ^ ": " ^ msg)
  in
  let watch_pred key =
    watch = [] || List.exists (fun p -> String.starts_with ~prefix:p key) watch
  in
  let diff_and_gate before after =
    let changes = Hydra_obs.Report.diff before after in
    Format.printf "%a" (Hydra_obs.Report.pp_diff ~only_changed:(not all_rows))
      changes;
    match max_regression with
    | None -> ()
    | Some threshold_pct ->
        let bad =
          Hydra_obs.Report.regressions ~watch:watch_pred ~threshold_pct
            changes
        in
        if bad <> [] then begin
          Format.printf "@.%d metric(s) regressed more than %+.1f%%:@."
            (List.length bad) threshold_pct;
          List.iter
            (fun (c : Hydra_obs.Report.change) ->
              let pct =
                match Hydra_obs.Report.pct_change c with
                | Some p when Float.is_finite p -> Format.asprintf "%+.1f%%" p
                | _ -> "+inf"
              in
              Format.printf "  %-42s %9s@." c.key pct)
            bad;
          exit 1
        end
  in
  match (connect, files) with
  | Some socket, [] ->
      Format.printf "%a" Hydra_obs.Report.pp_summary (live socket)
  | Some socket, [ before_path ] ->
      (* before = the file, after = the daemon's state right now *)
      diff_and_gate (load before_path) (live socket)
  | Some _, _ ->
      fail "with --connect: at most one snapshot file (the 'before' side)"
  | None, [ path ] ->
      Format.printf "%a" Hydra_obs.Report.pp_summary (load path)
  | None, [ before_path; after_path ] ->
      diff_and_gate (load before_path) (load after_path)
  | None, _ ->
      fail "expected one snapshot file (summary) or two (diff)"

let report_files_arg =
  Arg.(value & pos_all string []
       & info [] ~docv:"FILE"
           ~doc:"Metrics artifacts: a full hydra_c.metrics/1 snapshot                  (--metrics-out) or a hydra_c.metrics_delta/1 JSONL stream                  (--metrics-stream; deltas are folded). One file renders a                  summary; two render the diff (first = before, second =                  after).")

let max_regression_arg =
  Arg.(value & opt (some float) None
       & info [ "max-regression" ] ~docv:"PCT"
           ~doc:"With two files: exit 1 if any watched metric increased by                  more than PCT percent (a metric appearing out of nowhere                  counts as an infinite increase). Without this option the                  diff is informational only.")

let watch_arg =
  Arg.(value & opt_all string []
       & info [ "watch" ] ~docv:"PREFIX"
           ~doc:"Restrict the --max-regression gate to metrics whose                  flattened key starts with PREFIX (repeatable; default: all                  metrics). E.g. --watch analysis. --watch sim.events.")

let all_rows_arg =
  Arg.(value & flag
       & info [ "all" ]
           ~doc:"In a diff, also print rows whose value did not change.")

let connect_arg =
  Arg.(value & opt (some string) None
       & info [ "connect" ] ~docv:"SOCKET"
           ~doc:"Scrape a live daemon instead of reading a file: send one                  obs_snapshot request to the Unix-domain SOCKET of a                  running 'hydra_c serve' and summarize the reply. With one                  FILE, diff FILE (before) against the live state (after);                  --max-regression gates the diff as usual. The scrape                  leaves no footprint in the daemon's metrics.")

let cmd_obs_report =
  Cmd.v
    (Cmd.info "obs-report"
       ~doc:"Summarize or diff metrics snapshots (--metrics-out JSON or                --metrics-stream JSONL), or scrape a live daemon with                --connect: deterministic tables, plus a threshold-gated                exit code for CI regression checks.")
    Term.(const run_obs_report $ report_files_arg $ max_regression_arg
          $ watch_arg $ all_rows_arg $ connect_arg)

(* ------------------------------------------------------------------ *)
(* serve: the online admission-control daemon (doc/SERVER.md) *)

let run_serve socket jobs cold cache_capacity max_batch trace_sample_rate
    slow_request_ms flight_out metrics trace_out metrics_out profile stream
    stream_period =
  with_obs ~metrics ~trace_out ~metrics_out ~profile ~stream ~stream_period
    (fun ctx ->
      let config =
        { Hydra_server.Daemon.socket_path = socket; jobs;
          incremental = not cold; cache_capacity; max_batch;
          trace_sample_rate; slow_request_ms; flight_path = flight_out }
      in
      let log = Hydra_obs.Log.create () in
      Hydra_obs.Log.log log "listening"
        [ ("socket", socket); ("jobs", string_of_int jobs);
          ("mode", (if cold then "cold" else "warm")) ];
      (* a daemon always carries a registry, so obs_snapshot/obs_stream
         scrapes have something to answer even without --metrics* flags
         (the local registry is simply never written anywhere) *)
      let obs =
        match ctx.oc_obs with Some o -> o | None -> Hydra_obs.create ()
      in
      Hydra_server.Daemon.serve ~obs ~config ())

let socket_arg =
  Arg.(value & opt string "hydra_c.sock"
       & info [ "socket" ] ~docv:"PATH"
           ~doc:"Unix-domain socket to listen on (stale files are                  unlinked; the file is removed again on shutdown).")

let cold_arg =
  Arg.(value & flag
       & info [ "cold" ]
           ~doc:"Disable the incremental warm path: every materialization                  builds a fresh analysis system with an empty workload                  cache and no warm-start floors. Responses are bit-identical                  to the warm path — this flag exists to measure what the                  resident state buys (bench/server_bench.exe does).")

let cache_capacity_arg =
  Arg.(value & opt int 0
       & info [ "cache-capacity" ] ~docv:"N"
           ~doc:"Bound every tenant's per-system workload cache to N                  memoized windows (0 = unbounded). Enforcement is                  deterministic flush-on-full, so results never change —                  only recomputation (doc/SERVER.md).")

let max_batch_arg =
  Arg.(value & opt int 64
       & info [ "max-batch" ] ~docv:"N"
           ~doc:"Most frames drained into one engine batch. A lockstep                  client always gets one-request batches; a pipelining                  client gets up to N concurrent updates coalesced per                  tenant.")

let trace_sample_rate_arg =
  Arg.(value & opt float 0.0
       & info [ "trace-sample-rate" ] ~docv:"RATE"
           ~doc:"Trace this fraction of requests end to end (0.0 = off,                  the default; 1.0 = every request; 0.01 = every 100th).                  Sampling is deterministic in the request sequence. Sampled                  requests become parent-linked span trees with cross-domain                  flow arrows in --trace-out; at rate 0, --metrics-out and                  --trace-out are byte-identical to an untraced run                  (doc/OBSERVABILITY.md).")

let slow_request_ms_arg =
  Arg.(value & opt int 0
       & info [ "slow-request-ms" ] ~docv:"MS"
           ~doc:"Treat a request batch slower than MS milliseconds as an                  incident: log a rate-limited warning and dump the flight                  recorder. 0 (the default) disables the detector.")

let flight_out_arg =
  Arg.(value & opt (some string) None
       & info [ "flight-out" ] ~docv:"FILE"
           ~doc:"Write flight-recorder dumps (hydra_c.flight/1 JSONL) to                  FILE, including one at clean shutdown. Without this                  option dumps go to SOCKET.flight.jsonl and happen only on                  SIGUSR1, a crash, or a slow request.")

let cmd_serve =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the admission-control daemon: tenant systems stay resident                (workload caches, warm-start state, last selection) and                reconfiguration requests (RT/security task arrive/leave,                core-count change, re-select) stream over a Unix-domain                socket speaking length-prefixed hydra_c.server/1 JSON                (doc/SERVER.md). Stop it with a 'shutdown' request. Scrape                it live with 'hydra_c obs-report --connect SOCKET'; send                SIGUSR1 for a flight-recorder dump.")
    Term.(const run_serve $ socket_arg $ jobs_arg $ cold_arg
          $ cache_capacity_arg $ max_batch_arg $ trace_sample_rate_arg
          $ slow_request_ms_arg $ flight_out_arg $ metrics_arg $ trace_out_arg
          $ metrics_out_arg $ profile_arg $ stream_arg $ stream_period_arg)

let smoke_term =
  Term.(const run_smoke $ jobs_arg $ fast_arg $ sim_fast_arg $ metrics_arg
          $ trace_out_arg $ metrics_out_arg $ profile_arg $ stream_arg $ stream_period_arg)

let () =
  let info =
    Cmd.info "hydra-experiments"
      ~doc:"Reproduce the evaluation of 'Period Adaptation for Continuous \
            Security Monitoring in Multicore Real-Time Systems' (DATE 2020). \
            Without a subcommand, runs a fixed-scale smoke workload \
            (useful with --metrics/--trace-out)."
  in
  exit
    (Cmd.eval
       (Cmd.group ~default:smoke_term info
          [ cmd_tables; cmd_fig5; cmd_fig6; cmd_fig7a; cmd_fig7b;
            cmd_ablation; cmd_validate; cmd_analyze; cmd_report;
            cmd_serve; cmd_obs_report; cmd_all ]))
