(* Shared helpers for the test executables: deterministic random
   taskset generators (plain QCheck generators, independent of the
   library's own Taskgen so generator bugs cannot mask library bugs)
   and small assertion utilities. *)

module Task = Rtsched.Task

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A small random RT taskset on [n_cores]: each task gets a period in
   [5, 100] and a WCET in [1, period], utilization uncontrolled (tests
   that need schedulability filter afterwards). *)
let gen_rt_tasks ~n ~max_period =
  let open QCheck.Gen in
  let gen_task i =
    int_range 5 max_period >>= fun period ->
    int_range 1 (max 1 (period / 4)) >>= fun wcet ->
    return (Task.make_rt ~id:i ~prio:i ~wcet ~period ())
  in
  flatten_l (List.init n gen_task)

let gen_sec_tasks ~n ~max_period =
  let open QCheck.Gen in
  let gen_task i =
    int_range 20 max_period >>= fun period_max ->
    int_range 1 (max 1 (period_max / 5)) >>= fun wcet ->
    return (Task.make_sec ~id:i ~prio:i ~wcet ~period_max ())
  in
  flatten_l (List.init n gen_task)

let gen_taskset ~n_cores ~n_rt ~n_sec =
  let open QCheck.Gen in
  gen_rt_tasks ~n:n_rt ~max_period:100 >>= fun rt ->
  gen_sec_tasks ~n:n_sec ~max_period:400 >>= fun sec ->
  return (Task.make_taskset ~n_cores ~rt:(Task.assign_rate_monotonic rt) ~sec)

let print_taskset ts = Format.asprintf "%a" Task.pp_taskset ts

let arb_taskset ~n_cores ~n_rt ~n_sec =
  QCheck.make ~print:print_taskset (gen_taskset ~n_cores ~n_rt ~n_sec)

(* Round-robin assignment: always valid input shape for analyses that
   need an assignment but not schedulability. *)
let round_robin_assignment ts =
  Array.init (Array.length ts.Task.rt) (fun i -> i mod ts.Task.n_cores)

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name arb prop)
