(* Tests for the synthetic workload generation substrate: splitmix64
   PRNG, log-uniform sampling, Randfixedsum and the Table-3 taskset
   generator. *)

module Rng = Taskgen.Rng
module Loguniform = Taskgen.Loguniform
module Randfixedsum = Taskgen.Randfixedsum
module Generator = Taskgen.Generator
module Task = Rtsched.Task

let check_int = Test_util.check_int
let check_bool = Test_util.check_bool

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for i = 0 to 99 do
    Alcotest.(check int64)
      (Printf.sprintf "draw %d" i)
      (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_bool "different seeds diverge" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a)
    (Rng.bits64 b);
  ignore (Rng.bits64 a);
  let a' = Rng.bits64 a and b' = Rng.bits64 b in
  check_bool "streams diverge after unequal advances" true (a' <> b')

let test_rng_split_streams_differ () =
  let parent = Rng.create 99 in
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  check_bool "children differ" true (Rng.bits64 c1 <> Rng.bits64 c2)

let test_rng_int_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 7 in
    check_bool "in [0,7)" true (v >= 0 && v < 7)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 5 in
  let raised =
    try ignore (Rng.int rng 0); false with Invalid_argument _ -> true
  in
  check_bool "bound 0 rejected" true raised

let test_rng_int_in_inclusive () =
  let rng = Rng.create 11 in
  let seen_lo = ref false and seen_hi = ref false in
  for _ = 1 to 5_000 do
    let v = Rng.int_in rng 3 5 in
    check_bool "in [3,5]" true (v >= 3 && v <= 5);
    if v = 3 then seen_lo := true;
    if v = 5 then seen_hi := true
  done;
  check_bool "lower endpoint reachable" true !seen_lo;
  check_bool "upper endpoint reachable" true !seen_hi

let test_rng_float_range () =
  let rng = Rng.create 17 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 2.5 in
    check_bool "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_int_roughly_uniform () =
  let rng = Rng.create 23 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int rng 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      check_bool
        (Printf.sprintf "bucket %d count %d" i c)
        true
        (abs (c - (n / 10)) < n / 100))
    buckets

let test_rng_shuffle_is_permutation () =
  let rng = Rng.create 31 in
  let a = Array.init 50 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 (fun i -> i))
    sorted;
  check_bool "actually shuffled" true (a <> Array.init 50 (fun i -> i))

(* ------------------------------------------------------------------ *)
(* Loguniform *)

let test_loguniform_in_range () =
  let rng = Rng.create 41 in
  for _ = 1 to 10_000 do
    let v = Loguniform.sample rng ~lo:10.0 ~hi:1000.0 in
    check_bool "in [10,1000]" true (v >= 10.0 && v <= 1000.0)
  done

let test_loguniform_int_in_range () =
  let rng = Rng.create 43 in
  for _ = 1 to 10_000 do
    let v = Loguniform.sample_int rng ~lo:10 ~hi:1000 in
    check_bool "in [10,1000]" true (v >= 10 && v <= 1000)
  done

let test_loguniform_median_is_geometric_mean () =
  (* For log-uniform on [10, 1000] the median is sqrt(10*1000) = 100,
     i.e., half the mass falls below 100 — very different from the
     uniform distribution's 505. *)
  let rng = Rng.create 47 in
  let n = 50_000 in
  let below = ref 0 in
  for _ = 1 to n do
    if Loguniform.sample rng ~lo:10.0 ~hi:1000.0 < 100.0 then incr below
  done;
  let frac = float_of_int !below /. float_of_int n in
  check_bool
    (Printf.sprintf "median near geometric mean (frac=%.3f)" frac)
    true
    (frac > 0.48 && frac < 0.52)

let test_loguniform_rejects_bad_bounds () =
  let rng = Rng.create 1 in
  let raised =
    try ignore (Loguniform.sample rng ~lo:0.0 ~hi:10.0); false
    with Invalid_argument _ -> true
  in
  check_bool "lo = 0 rejected" true raised

(* ------------------------------------------------------------------ *)
(* Randfixedsum *)

let sum = Array.fold_left ( +. ) 0.0

let test_randfixedsum_exact_sum () =
  let rng = Rng.create 53 in
  for _ = 1 to 200 do
    let v = Randfixedsum.sample rng ~n:8 ~total:2.5 ~lo:0.0 ~hi:1.0 in
    check_int "length" 8 (Array.length v);
    Alcotest.(check (float 1e-6)) "sum" 2.5 (sum v);
    Array.iter (fun x -> check_bool "in [0,1]" true (x >= 0.0 && x <= 1.0)) v
  done

let test_randfixedsum_single () =
  let rng = Rng.create 59 in
  let v = Randfixedsum.sample rng ~n:1 ~total:0.42 ~lo:0.0 ~hi:1.0 in
  Alcotest.(check (float 1e-9)) "n=1" 0.42 v.(0)

let test_randfixedsum_degenerate_range () =
  let rng = Rng.create 61 in
  let v = Randfixedsum.sample rng ~n:4 ~total:2.0 ~lo:0.5 ~hi:0.5 in
  Array.iter (fun x -> Alcotest.(check (float 1e-9)) "pinned" 0.5 x) v

let test_randfixedsum_infeasible () =
  let rng = Rng.create 67 in
  let raised =
    try
      ignore (Randfixedsum.sample rng ~n:3 ~total:4.0 ~lo:0.0 ~hi:1.0);
      false
    with Invalid_argument _ -> true
  in
  check_bool "total > n*hi rejected" true raised

let prop_randfixedsum_valid =
  let arb =
    QCheck.(
      triple (int_range 1 40) (float_bound_inclusive 1.0) (int_range 0 1000))
  in
  Test_util.qtest ~count:200 "randfixedsum sums and bounds" arb
    (fun (n, frac, seed) ->
      let rng = Rng.create seed in
      let total = frac *. float_of_int n in
      let v = Randfixedsum.sample rng ~n ~total ~lo:0.0 ~hi:1.0 in
      abs_float (sum v -. total) < 1e-6
      && Array.for_all (fun x -> x >= -1e-9 && x <= 1.0 +. 1e-9) v)

let test_randfixedsum_component_means () =
  (* Uniformity on the simplex slice: every component has the same
     marginal, so per-position sample means converge to total/n. *)
  let rng = Rng.create 107 in
  let n = 6 and total = 2.4 and draws = 4000 in
  let sums = Array.make n 0.0 in
  for _ = 1 to draws do
    let v = Randfixedsum.sample rng ~n ~total ~lo:0.0 ~hi:1.0 in
    Array.iteri (fun i x -> sums.(i) <- sums.(i) +. x) v
  done;
  let expected = total /. float_of_int n in
  Array.iteri
    (fun i s ->
      let mean = s /. float_of_int draws in
      check_bool
        (Printf.sprintf "component %d mean %.3f near %.3f" i mean expected)
        true
        (abs_float (mean -. expected) < 0.03))
    sums

let test_randfixedsum_not_degenerate () =
  (* The sampler must actually spread mass: components of one draw
     should not all be equal (probability ~0 for a correct sampler). *)
  let rng = Rng.create 71 in
  let v = Randfixedsum.sample rng ~n:10 ~total:3.0 ~lo:0.0 ~hi:1.0 in
  let first = v.(0) in
  check_bool "not all equal" true
    (Array.exists (fun x -> abs_float (x -. first) > 1e-6) v)

(* ------------------------------------------------------------------ *)
(* Generator *)

let config2 = Generator.default_config ~n_cores:2

let test_group_bounds () =
  let lo, hi = Generator.group_bounds config2 0 in
  Alcotest.(check (float 1e-9)) "group 0 lo" 0.02 lo;
  Alcotest.(check (float 1e-9)) "group 0 hi" 0.2 hi;
  let lo9, hi9 = Generator.group_bounds config2 9 in
  Alcotest.(check (float 1e-9)) "group 9 lo" 1.82 lo9;
  Alcotest.(check (float 1e-9)) "group 9 hi" 2.0 hi9

let test_generate_respects_table3 () =
  let rng = Rng.create 73 in
  for group = 0 to 6 do
    match Generator.generate config2 rng ~group with
    | None -> Alcotest.fail "low/medium groups must generate"
    | Some g ->
        let ts = g.Generator.taskset in
        let n_rt = Array.length ts.Task.rt in
        let n_sec = Array.length ts.Task.sec in
        check_bool "rt count" true (n_rt >= 6 && n_rt <= 20);
        check_bool "sec count" true (n_sec >= 4 && n_sec <= 10);
        Array.iter
          (fun (t : Task.rt_task) ->
            check_bool "rt period range" true
              (t.Task.rt_period >= 10 * config2.Generator.ticks_per_ms
              && t.Task.rt_period <= 1000 * config2.Generator.ticks_per_ms);
            check_bool "rt wcet sane" true
              (t.Task.rt_wcet >= 1 && t.Task.rt_wcet <= t.Task.rt_period))
          ts.Task.rt;
        Array.iter
          (fun (s : Task.sec_task) ->
            check_bool "sec period bound range" true
              (s.Task.sec_period_max >= 1500 * config2.Generator.ticks_per_ms
              && s.Task.sec_period_max <= 3000 * config2.Generator.ticks_per_ms))
          ts.Task.sec
  done

let test_generate_rt_schedulable () =
  let rng = Rng.create 79 in
  for group = 0 to 9 do
    match Generator.generate config2 rng ~group with
    | None -> () (* high groups may exhaust attempts; that's fine *)
    | Some g ->
        check_bool
          (Printf.sprintf "group %d RT schedulable" group)
          true
          (Rtsched.Rta_uniproc.partitioned_rt_schedulable g.Generator.taskset
             ~assignment:g.Generator.rt_assignment)
  done

let test_generate_utilization_in_group () =
  let rng = Rng.create 83 in
  for group = 0 to 7 do
    match Generator.generate config2 rng ~group with
    | None -> Alcotest.fail "expected generation"
    | Some g ->
        let lo, hi = Generator.group_bounds config2 group in
        (* WCET rounding perturbs utilization; allow slack. *)
        let u = Task.total_min_utilization g.Generator.taskset in
        check_bool
          (Printf.sprintf "group %d utilization %.3f in [%.3f, %.3f]" group u
             lo hi)
          true
          (u >= lo -. 0.05 && u <= hi +. 0.05)
  done

let test_generate_rm_priorities () =
  let rng = Rng.create 89 in
  match Generator.generate config2 rng ~group:3 with
  | None -> Alcotest.fail "expected generation"
  | Some g ->
      let sorted = Task.sort_rt_by_priority g.Generator.taskset.Task.rt in
      let ok = ref true in
      Array.iteri
        (fun i t ->
          if i > 0 && t.Task.rt_period < sorted.(i - 1).Task.rt_period then
            ok := false)
        sorted;
      check_bool "priority order is rate-monotonic" true !ok

let test_generate_invalid_group () =
  let rng = Rng.create 97 in
  let raised =
    try ignore (Generator.generate config2 rng ~group:10); false
    with Invalid_argument _ -> true
  in
  check_bool "group out of range rejected" true raised

let test_generate_deterministic () =
  let run () =
    let rng = Rng.create 101 in
    match Generator.generate config2 rng ~group:4 with
    | None -> []
    | Some g ->
        Array.to_list g.Generator.taskset.Task.rt
        |> List.map (fun t -> (t.Task.rt_wcet, t.Task.rt_period))
  in
  Alcotest.(check (list (pair int int))) "same seed, same taskset" (run ())
    (run ())

let test_loguniform_degenerate_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 100 do
    Alcotest.(check (float 1e-9)) "lo = hi pins the value" 42.0
      (Loguniform.sample rng ~lo:42.0 ~hi:42.0)
  done;
  check_int "int variant" 42 (Loguniform.sample_int rng ~lo:42 ~hi:42)

let test_generator_gives_up_gracefully () =
  (* An impossible configuration (far more utilization than the cores
     can hold after rounding) must return None, not loop forever. *)
  let config =
    { (Generator.default_config ~n_cores:1) with
      Generator.rt_count = (30, 30); sec_count = (2, 2); max_attempts = 5 }
  in
  let rng = Rng.create 13 in
  check_bool "group 9 on one core eventually gives up or succeeds" true
    (match Generator.generate config rng ~group:9 with
    | Some g ->
        Rtsched.Rta_uniproc.partitioned_rt_schedulable g.Generator.taskset
          ~assignment:g.Generator.rt_assignment
    | None -> true)

let () =
  Alcotest.run "taskgen"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "copy independent" `Quick
            test_rng_copy_independent;
          Alcotest.test_case "split streams differ" `Quick
            test_rng_split_streams_differ;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects bound <= 0" `Quick
            test_rng_int_rejects_nonpositive;
          Alcotest.test_case "int_in inclusive" `Quick
            test_rng_int_in_inclusive;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "int roughly uniform" `Slow
            test_rng_int_roughly_uniform;
          Alcotest.test_case "shuffle is a permutation" `Quick
            test_rng_shuffle_is_permutation ] );
      ( "loguniform",
        [ Alcotest.test_case "in range" `Quick test_loguniform_in_range;
          Alcotest.test_case "int in range" `Quick
            test_loguniform_int_in_range;
          Alcotest.test_case "median = geometric mean" `Slow
            test_loguniform_median_is_geometric_mean;
          Alcotest.test_case "rejects bad bounds" `Quick
            test_loguniform_rejects_bad_bounds ] );
      ( "randfixedsum",
        [ Alcotest.test_case "exact sum and bounds" `Quick
            test_randfixedsum_exact_sum;
          Alcotest.test_case "n = 1" `Quick test_randfixedsum_single;
          Alcotest.test_case "degenerate range" `Quick
            test_randfixedsum_degenerate_range;
          Alcotest.test_case "infeasible rejected" `Quick
            test_randfixedsum_infeasible;
          Alcotest.test_case "not degenerate" `Quick
            test_randfixedsum_not_degenerate;
          Alcotest.test_case "component means uniform" `Slow
            test_randfixedsum_component_means;
          prop_randfixedsum_valid ] );
      ( "generator",
        [ Alcotest.test_case "group bounds" `Quick test_group_bounds;
          Alcotest.test_case "respects Table 3 ranges" `Quick
            test_generate_respects_table3;
          Alcotest.test_case "RT part schedulable" `Quick
            test_generate_rt_schedulable;
          Alcotest.test_case "utilization in group" `Quick
            test_generate_utilization_in_group;
          Alcotest.test_case "RM priorities" `Quick test_generate_rm_priorities;
          Alcotest.test_case "invalid group rejected" `Quick
            test_generate_invalid_group;
          Alcotest.test_case "deterministic" `Quick
            test_generate_deterministic;
          Alcotest.test_case "loguniform degenerate range" `Quick
            test_loguniform_degenerate_range;
          Alcotest.test_case "generator gives up gracefully" `Quick
            test_generator_gives_up_gracefully ] ) ]
