(* Tests for the security substrate: hashing, the synthetic
   filesystem, the generic profile checker and its two instantiations
   (Tripwire analogue, kernel-module checker), intrusion injection,
   the scan-progress detection monitor and the rover case study. *)

module Hash = Security.Hash
module Filesystem = Security.Filesystem
module Profile_checker = Security.Profile_checker
module Integrity_checker = Security.Integrity_checker
module Kmod_checker = Security.Kmod_checker
module Intrusion = Security.Intrusion
module Detection = Security.Detection
module Rover = Security.Rover
module Task = Rtsched.Task

let check_int = Test_util.check_int
let check_bool = Test_util.check_bool

(* ------------------------------------------------------------------ *)
(* Hash *)

let test_hash_deterministic () =
  Alcotest.(check int64) "same input same hash" (Hash.fnv1a64 "hello")
    (Hash.fnv1a64 "hello")

let test_hash_discriminates () =
  check_bool "different inputs differ" true
    (Hash.fnv1a64 "hello" <> Hash.fnv1a64 "hellp");
  check_bool "empty vs non-empty" true
    (Hash.fnv1a64 "" <> Hash.fnv1a64 "x")

let test_hash_list_order_sensitive () =
  check_bool "order matters" true
    (Hash.fnv1a64_list [ "a"; "b" ] <> Hash.fnv1a64_list [ "b"; "a" ])

(* ------------------------------------------------------------------ *)
(* Filesystem *)

let test_fs_crud () =
  let fs = Filesystem.create () in
  Filesystem.add_file fs "a.txt" "alpha";
  check_bool "mem" true (Filesystem.mem fs "a.txt");
  Alcotest.(check string) "read" "alpha" (Filesystem.read fs "a.txt");
  Filesystem.write fs "a.txt" "beta";
  Alcotest.(check string) "after write" "beta" (Filesystem.read fs "a.txt");
  Filesystem.append fs "a.txt" "!";
  Alcotest.(check string) "after append" "beta!" (Filesystem.read fs "a.txt");
  Filesystem.remove fs "a.txt";
  check_bool "removed" false (Filesystem.mem fs "a.txt")

let test_fs_errors_on_missing () =
  let fs = Filesystem.create () in
  let raises f = try f (); false with Not_found -> true in
  check_bool "write missing" true (raises (fun () ->
      Filesystem.write fs "nope" "x"));
  check_bool "read missing" true (raises (fun () ->
      ignore (Filesystem.read fs "nope")));
  check_bool "remove missing" true (raises (fun () ->
      Filesystem.remove fs "nope"))

let test_fs_populate_images () =
  let fs = Filesystem.create () in
  Filesystem.populate_images fs ~count:16 ~bytes_per_file:128;
  check_int "file count" 16 (Filesystem.file_count fs);
  check_int "bytes" (16 * 128) (Filesystem.total_bytes fs);
  Alcotest.(check (list string)) "sorted first entries"
    [ "img_0000.raw"; "img_0001.raw" ]
    (match Filesystem.list_paths fs with
    | a :: b :: _ -> [ a; b ]
    | l -> l)

let test_fs_images_distinct () =
  let fs = Filesystem.create () in
  Filesystem.populate_images fs ~count:4 ~bytes_per_file:64;
  check_bool "image contents differ" true
    (Filesystem.read fs "img_0000.raw" <> Filesystem.read fs "img_0001.raw")

(* ------------------------------------------------------------------ *)
(* Integrity checker (Profile_checker over the filesystem) *)

let fresh_checker ?(files = 16) ?(regions = 8) () =
  let fs = Filesystem.create () in
  Filesystem.populate_images fs ~count:files ~bytes_per_file:64;
  (fs, Integrity_checker.create fs ~n_regions:regions)

let test_checker_clean_baseline () =
  let _, checker = fresh_checker () in
  Alcotest.(check int) "no violations initially" 0
    (List.length (Integrity_checker.check_all checker))

let test_checker_detects_modification () =
  let fs, checker = fresh_checker () in
  Integrity_checker.tamper_file fs "img_0003.raw";
  let violations = Integrity_checker.check_all checker in
  Alcotest.(check (list string)) "modified reported"
    [ "img_0003.raw" ]
    (List.map Profile_checker.violation_key violations);
  (match violations with
  | [ Profile_checker.Modified _ ] -> ()
  | _ -> Alcotest.fail "expected a Modified violation");
  (* and only its region flags it *)
  let region = Integrity_checker.region_of_key checker "img_0003.raw" in
  check_bool "the right region sees it" true
    (Integrity_checker.check_region checker region <> []);
  for r = 0 to Integrity_checker.n_regions checker - 1 do
    if r <> region then
      check_int
        (Printf.sprintf "region %d clean" r)
        0
        (List.length (Integrity_checker.check_region checker r))
  done

let test_checker_detects_added_and_removed () =
  let fs, checker = fresh_checker () in
  Filesystem.add_file fs "rootkit.bin" "payload";
  Filesystem.remove fs "img_0001.raw";
  let keys =
    List.map Profile_checker.violation_key (Integrity_checker.check_all checker)
  in
  check_bool "added seen" true (List.mem "rootkit.bin" keys);
  check_bool "removed seen" true (List.mem "img_0001.raw" keys)

let test_checker_rebaseline_clears () =
  let fs, checker = fresh_checker () in
  Integrity_checker.tamper_file fs "img_0000.raw";
  check_bool "dirty before" true (Integrity_checker.check_all checker <> []);
  Integrity_checker.rebaseline checker;
  check_int "clean after rebaseline" 0
    (List.length (Integrity_checker.check_all checker))

let test_checker_region_partition () =
  (* Every key belongs to exactly one region in [0, n). *)
  let fs, checker = fresh_checker ~files:32 ~regions:5 () in
  List.iter
    (fun path ->
      let r = Integrity_checker.region_of_key checker path in
      check_bool "region in range" true
        (r >= 0 && r < Integrity_checker.n_regions checker))
    (Filesystem.list_paths fs)

(* ------------------------------------------------------------------ *)
(* Kernel-module checker *)

let test_kmod_clean_profile () =
  let table = Kmod_checker.create_table (Kmod_checker.default_profile ()) in
  let checker = Kmod_checker.create table ~n_regions:4 in
  check_int "clean" 0 (List.length (Kmod_checker.check_all checker))

let test_kmod_detects_insertion () =
  let table = Kmod_checker.create_table (Kmod_checker.default_profile ()) in
  let checker = Kmod_checker.create table ~n_regions:4 in
  Kmod_checker.insert_module table
    { Kmod_checker.m_name = "rk_hook"; m_size = 666; m_addr = 0xdeadL;
      m_signature = "unsigned" };
  (match Kmod_checker.check_all checker with
  | [ Profile_checker.Added "rk_hook" ] -> ()
  | other ->
      Alcotest.failf "expected Added rk_hook, got %d violations"
        (List.length other))

let test_kmod_detects_hiding () =
  let table = Kmod_checker.create_table (Kmod_checker.default_profile ()) in
  let checker = Kmod_checker.create table ~n_regions:4 in
  Kmod_checker.hide_module table "brcmfmac";
  (match Kmod_checker.check_all checker with
  | [ Profile_checker.Removed "brcmfmac" ] -> ()
  | _ -> Alcotest.fail "expected Removed brcmfmac")

let test_kmod_detects_patching () =
  let table = Kmod_checker.create_table (Kmod_checker.default_profile ()) in
  let checker = Kmod_checker.create table ~n_regions:4 in
  Kmod_checker.patch_module table "cfg80211" ~size:999999;
  (match Kmod_checker.check_all checker with
  | [ Profile_checker.Modified "cfg80211" ] -> ()
  | _ -> Alcotest.fail "expected Modified cfg80211")

let test_kmod_hide_missing_raises () =
  let table = Kmod_checker.create_table [] in
  let raised =
    try Kmod_checker.hide_module table "ghost"; false
    with Not_found -> true
  in
  check_bool "hide missing raises" true raised

(* ------------------------------------------------------------------ *)
(* Intrusion injector *)

let test_intrusion_applies_in_time_order () =
  let log = ref [] in
  let inj = Intrusion.create () in
  Intrusion.schedule inj ~at:30 ~label:"c" (fun () -> log := "c" :: !log);
  Intrusion.schedule inj ~at:10 ~label:"a" (fun () -> log := "a" :: !log);
  Intrusion.schedule inj ~at:20 ~label:"b" (fun () -> log := "b" :: !log);
  Intrusion.apply_until inj 25;
  Alcotest.(check (list string)) "a then b applied" [ "a"; "b" ]
    (List.rev !log);
  Alcotest.(check (list (pair int string))) "c pending" [ (30, "c") ]
    (Intrusion.pending inj);
  Intrusion.apply_until inj 25;
  Alcotest.(check (list string)) "idempotent" [ "a"; "b" ] (List.rev !log);
  Intrusion.apply_until inj 30;
  Alcotest.(check (list string)) "c applied at 30" [ "a"; "b"; "c" ]
    (List.rev !log);
  check_int "applied log" 3 (List.length (Intrusion.applied inj))

(* ------------------------------------------------------------------ *)
(* Detection monitor *)

(* Drive the monitor by hand with synthetic jobs/segments. *)
let synthetic_job seq =
  let st =
    { Sim.Engine.st_id = 7; st_name = "scanner"; st_wcet = 10; st_period = 100;
      st_deadline = 100; st_prio = 0; st_core = None; st_offset = 0 }
  in
  { Sim.Engine.j_task = st; j_seq = seq; j_release = 0; j_abs_deadline = 100;
    j_remaining = 10; j_last_core = -1; j_started_at = -1 }

let test_detection_regions_complete_in_order () =
  let completed = ref [] in
  let target =
    { Detection.n_regions = 5;
      check_region =
        (fun ~region ~started:_ ~finished ->
          completed := (region, finished) :: !completed;
          false) }
  in
  let monitor = Detection.create ~sim_id:7 ~wcet:10 ~target in
  let job = synthetic_job 0 in
  (* one uninterrupted segment covering the whole job at t in [100,110) *)
  Detection.on_execute monitor job ~core:0 ~start:100 ~stop:110;
  Alcotest.(check (list (pair int int))) "5 regions at exact instants"
    [ (0, 102); (1, 104); (2, 106); (3, 108); (4, 110) ]
    (List.rev !completed);
  check_int "one full pass" 1 (Detection.full_passes monitor);
  check_int "regions checked" 5 (Detection.regions_checked monitor)

let test_detection_split_segments () =
  let completed = ref [] in
  let target =
    { Detection.n_regions = 2;
      check_region =
        (fun ~region ~started ~finished ->
          completed := (region, started, finished) :: !completed;
          false) }
  in
  let monitor = Detection.create ~sim_id:7 ~wcet:10 ~target in
  let job = synthetic_job 0 in
  (* job preempted: runs [0,4), [50,56). Region 0 completes at
     progress 5 -> wall 51; region 1 at progress 10 -> wall 56. *)
  Detection.on_execute monitor job ~core:0 ~start:0 ~stop:4;
  Detection.on_execute monitor job ~core:1 ~start:50 ~stop:56;
  Alcotest.(check (list (triple int int int))) "split segments tracked"
    [ (0, 0, 51); (1, 51, 56) ]
    (List.rev !completed)

let test_detection_ignores_other_tasks () =
  let calls = ref 0 in
  let target =
    { Detection.n_regions = 1;
      check_region = (fun ~region:_ ~started:_ ~finished:_ -> incr calls; true)
    }
  in
  let monitor = Detection.create ~sim_id:99 ~wcet:10 ~target in
  Detection.on_execute monitor (synthetic_job 0) ~core:0 ~start:0 ~stop:10;
  check_int "other task ignored" 0 !calls

let test_detection_first_hit_recorded () =
  let hits = ref 0 in
  let target =
    { Detection.n_regions = 2;
      check_region =
        (fun ~region ~started:_ ~finished:_ ->
          incr hits;
          region = 1) }
  in
  let monitor = Detection.create ~sim_id:7 ~wcet:10 ~target in
  Detection.on_execute monitor (synthetic_job 0) ~core:0 ~start:0 ~stop:10;
  Alcotest.(check (option int)) "detection at region 1 completion" (Some 10)
    (Detection.detection_time monitor);
  (* a later pass must not overwrite the first detection *)
  Detection.on_execute monitor (synthetic_job 1) ~core:0 ~start:100 ~stop:110;
  Alcotest.(check (option int)) "first detection kept" (Some 10)
    (Detection.detection_time monitor)

let test_detection_new_job_restarts_pass () =
  let regions_seen = ref [] in
  let target =
    { Detection.n_regions = 2;
      check_region =
        (fun ~region ~started:_ ~finished:_ ->
          regions_seen := region :: !regions_seen;
          false) }
  in
  let monitor = Detection.create ~sim_id:7 ~wcet:10 ~target in
  (* job 0 aborted after region 0; job 1 starts from region 0 again *)
  Detection.on_execute monitor (synthetic_job 0) ~core:0 ~start:0 ~stop:5;
  Detection.on_execute monitor (synthetic_job 1) ~core:0 ~start:20 ~stop:30;
  Alcotest.(check (list int)) "restart from region 0" [ 0; 0; 1 ]
    (List.rev !regions_seen)

let test_checker_target_race_semantics () =
  (* A mutation landing during the inspection window is only seen on
     the next pass (conservative mid-scan race). *)
  let fs = Filesystem.create () in
  Filesystem.populate_images fs ~count:4 ~bytes_per_file:32;
  let checker = Integrity_checker.create fs ~n_regions:1 in
  let inj = Intrusion.create () in
  Intrusion.schedule inj ~at:5 ~label:"tamper" (fun () ->
      Integrity_checker.tamper_file fs "img_0000.raw");
  let target =
    Detection.checker_target ~n_regions:1 ~injector:inj
      ~check:(Integrity_checker.check_region checker)
  in
  (* inspection started at 0, finished at 10: attack at 5 not applied *)
  check_bool "mid-scan attack missed" false
    (target.Detection.check_region ~region:0 ~started:0 ~finished:10);
  (* next pass starts at 20: attack now in effect *)
  check_bool "next pass detects" true
    (target.Detection.check_region ~region:0 ~started:20 ~finished:30)

(* Random segmentation property: however a job's execution is sliced
   by preemptions, one full job = exactly one full pass, each region
   inspected once, at non-decreasing wall instants. *)
let prop_detection_full_pass_under_any_preemption =
  let arb =
    QCheck.(
      triple (int_range 1 60) (int_range 1 12)
        (list_of_size Gen.(int_range 0 6) (int_range 1 10)))
  in
  Test_util.qtest ~count:200 "any segmentation yields one exact pass" arb
    (fun (wcet, n_regions, cuts) ->
      let inspections = ref [] in
      let target =
        { Detection.n_regions;
          check_region =
            (fun ~region ~started ~finished ->
              inspections := (region, started, finished) :: !inspections;
              false) }
      in
      let monitor = Detection.create ~sim_id:7 ~wcet ~target in
      let job = synthetic_job 0 in
      (* slice [0, wcet) into segments at the random cut offsets, with
         a gap of 100 wall ticks between consecutive segments *)
      let rec feed start progress = function
        | [] ->
            if progress < wcet then
              Detection.on_execute monitor job ~core:0 ~start
                ~stop:(start + (wcet - progress))
        | cut :: rest ->
            let len = min cut (wcet - progress) in
            if len > 0 then begin
              Detection.on_execute monitor job ~core:0 ~start
                ~stop:(start + len);
              feed (start + len + 100) (progress + len) rest
            end
            else feed start progress rest
      in
      feed 0 0 cuts;
      let seen = List.rev !inspections in
      Detection.full_passes monitor = 1
      && Detection.regions_checked monitor = n_regions
      && List.map (fun (r, _, _) -> r) seen = List.init n_regions (fun i -> i)
      && List.for_all (fun (_, s, f) -> s <= f) seen
      &&
      let rec monotone = function
        | (_, _, f1) :: ((_, s2, _) :: _ as rest) ->
            f1 <= s2 && monotone rest
        | _ -> true
      in
      monotone seen)

(* ------------------------------------------------------------------ *)
(* Packet monitor *)

module PM = Security.Packet_monitor

let test_capture_ring_bounds () =
  let cap = PM.create_capture ~capacity:4 in
  let rng = Taskgen.Rng.create 1 in
  List.iter (PM.ingest cap) (PM.benign_traffic rng ~now:0 ~count:10);
  check_int "bounded" 4 (PM.capture_count cap);
  check_int "total ingested" 10 (PM.total_ingested cap);
  (* the survivors are the newest four (times 6..9) *)
  (match PM.captured cap with
  | first :: _ -> check_int "oldest survivor" 6 first.PM.p_time
  | [] -> Alcotest.fail "non-empty capture")

let test_packet_monitor_clean_traffic () =
  let cap = PM.create_capture ~capacity:64 in
  let rng = Taskgen.Rng.create 2 in
  List.iter (PM.ingest cap) (PM.benign_traffic rng ~now:0 ~count:64);
  let mon = PM.create cap PM.default_rules ~n_regions:8 in
  check_int "no alerts on benign traffic" 0
    (List.length (PM.inspect_all mon))

let test_packet_monitor_blacklist_and_signature () =
  let cap = PM.create_capture ~capacity:16 in
  PM.ingest cap (PM.c2_beacon ~src:"10.0.0.66" ~now:100);
  let mon = PM.create cap PM.default_rules ~n_regions:4 in
  let alerts = PM.inspect_all mon in
  check_bool "blacklisted port flagged" true
    (List.exists
       (function PM.Blacklisted_port _ -> true | PM.Signature_match _ | PM.Port_scan _ -> false)
       alerts);
  check_bool "signature flagged" true
    (List.exists
       (function PM.Signature_match _ -> true | PM.Blacklisted_port _ | PM.Port_scan _ -> false)
       alerts)

let test_packet_monitor_port_scan () =
  let cap = PM.create_capture ~capacity:32 in
  let scan =
    PM.port_scan ~src:"10.0.0.99" ~now:0 ~ports:(List.init 10 (fun i -> 1000 + i))
  in
  List.iter (PM.ingest cap) scan;
  let mon = PM.create cap PM.default_rules ~n_regions:1 in
  (match PM.inspect_all mon with
  | [ PM.Port_scan ("10.0.0.99", n) ] -> check_bool "ports counted" true (n >= 8)
  | other -> Alcotest.failf "expected one scan alert, got %d" (List.length other))

let test_packet_monitor_scan_below_threshold () =
  let cap = PM.create_capture ~capacity:32 in
  let scan =
    PM.port_scan ~src:"10.0.0.99" ~now:0 ~ports:(List.init 5 (fun i -> 1000 + i))
  in
  List.iter (PM.ingest cap) scan;
  let mon = PM.create cap PM.default_rules ~n_regions:1 in
  check_int "five ports do not trip the default threshold" 0
    (List.length (PM.inspect_all mon))

let test_packet_monitor_detection_target () =
  (* The injector semantics carry over: a beacon scheduled mid-window
     is only visible to the following inspection. *)
  let cap = PM.create_capture ~capacity:8 in
  let inj = Security.Intrusion.create () in
  Security.Intrusion.schedule inj ~at:50 ~label:"beacon" (fun () ->
      PM.ingest cap (PM.c2_beacon ~src:"evil" ~now:50));
  let mon = PM.create cap PM.default_rules ~n_regions:1 in
  let target = PM.detection_target mon ~injector:inj in
  check_bool "window starting before the beacon misses it" false
    (target.Detection.check_region ~region:0 ~started:40 ~finished:60);
  check_bool "next window sees it" true
    (target.Detection.check_region ~region:0 ~started:70 ~finished:90)

let prop_benign_traffic_never_alerts =
  (* completeness of the benign generator: no volume of it trips the
     default rules (no blacklisted ports, no signatures, few distinct
     ports per host). *)
  Test_util.qtest ~count:100 "benign traffic is quiet"
    QCheck.(pair (int_range 1 200) (int_range 0 10000))
    (fun (count, seed) ->
      let cap = PM.create_capture ~capacity:256 in
      let rng = Taskgen.Rng.create seed in
      List.iter (PM.ingest cap) (PM.benign_traffic rng ~now:0 ~count);
      let mon = PM.create cap PM.default_rules ~n_regions:8 in
      PM.inspect_all mon = [])

let prop_capture_never_exceeds_capacity =
  Test_util.qtest ~count:100 "capture ring bounded"
    QCheck.(pair (int_range 1 32) (int_range 0 100))
    (fun (capacity, n) ->
      let cap = PM.create_capture ~capacity in
      let rng = Taskgen.Rng.create 7 in
      List.iter (PM.ingest cap) (PM.benign_traffic rng ~now:0 ~count:n);
      PM.capture_count cap = min capacity n
      && PM.total_ingested cap = n)

(* ------------------------------------------------------------------ *)
(* HPC monitor *)

module HM = Security.Hpc_monitor

let hpc_setup () =
  let tasks = [ "navigation"; "camera" ] in
  let stream = HM.create_stream ~tasks in
  let rng = Taskgen.Rng.create 3 in
  let monitor = HM.calibrate rng ~tasks stream in
  (stream, rng, monitor)

let test_hpc_clean_samples_pass () =
  let stream, rng, monitor = hpc_setup () in
  for _ = 1 to 20 do
    HM.push stream (HM.clean_sample rng ~task:"navigation");
    HM.push stream (HM.clean_sample rng ~task:"camera")
  done;
  check_int "no anomalies on clean load" 0 (List.length (HM.check_all monitor))

let test_hpc_flags_compromised_task () =
  let stream, rng, monitor = hpc_setup () in
  HM.push stream (HM.clean_sample rng ~task:"camera");
  HM.push stream (HM.compromised_sample rng ~task:"navigation");
  let anomalies = HM.check_all monitor in
  check_bool "anomalies found" true (anomalies <> []);
  check_bool "all attributed to navigation" true
    (List.for_all (fun a -> a.HM.a_task = "navigation") anomalies);
  check_bool "cache misses stand out" true
    (List.exists (fun a -> a.HM.a_counter = HM.Cache_misses) anomalies)

let test_hpc_regions_map_to_tasks () =
  let _, _, monitor = hpc_setup () in
  check_int "one region per task" 2 (HM.n_regions monitor);
  Alcotest.(check string) "region 0" "navigation"
    (HM.task_of_region monitor 0);
  Alcotest.(check string) "region 1" "camera" (HM.task_of_region monitor 1)

let test_hpc_region_isolation () =
  let stream, rng, monitor = hpc_setup () in
  HM.push stream (HM.compromised_sample rng ~task:"camera");
  check_int "navigation region clean" 0
    (List.length (HM.check_region monitor 0));
  check_bool "camera region flags" true (HM.check_region monitor 1 <> [])

let test_hpc_push_unknown_task () =
  let stream, rng, _ = hpc_setup () in
  let raised =
    try HM.push stream (HM.clean_sample rng ~task:"ghost"); false
    with Invalid_argument _ -> true
  in
  check_bool "unknown task rejected" true raised

(* ------------------------------------------------------------------ *)
(* Reactive (dependency-aware) monitoring *)

module Reactive = Security.Reactive

(* A controllable target: [trigger] decides which regions flag. *)
let scripted_target n_regions trigger =
  { Detection.n_regions;
    check_region = (fun ~region ~started:_ ~finished -> trigger region finished)
  }

let reactive_monitor ?(cooldown = 2) ~passive_trigger ~exhaustive_trigger () =
  Reactive.create ~sim_id:7 ~wcet:10
    ~passive:(scripted_target 2 passive_trigger)
    ~exhaustive:(scripted_target 3 exhaustive_trigger)
    ~cooldown_passes:cooldown ()

let run_job monitor seq start =
  Reactive.on_execute monitor (synthetic_job seq) ~core:0 ~start
    ~stop:(start + 10)

let test_reactive_stays_passive_when_clean () =
  let m =
    reactive_monitor
      ~passive_trigger:(fun _ _ -> false)
      ~exhaustive_trigger:(fun _ _ -> false)
      ()
  in
  run_job m 0 0;
  run_job m 1 100;
  check_bool "still passive" true (Reactive.mode m = Reactive.Passive);
  Alcotest.(check (list (pair int string))) "no transitions" []
    (Reactive.escalations m)

let test_reactive_escalates_on_passive_hit () =
  let m =
    reactive_monitor
      ~passive_trigger:(fun region _ -> region = 1)
      ~exhaustive_trigger:(fun _ _ -> false)
      ()
  in
  run_job m 0 0;
  check_bool "escalated" true (Reactive.mode m = Reactive.Exhaustive);
  (* passive regions are 2 over wcet 10: region 1 completes at t=10 *)
  Alcotest.(check (option int)) "passive detection instant" (Some 10)
    (Reactive.passive_detection_time m);
  (match Reactive.escalations m with
  | [ (10, "escalate") ] -> ()
  | _ -> Alcotest.fail "expected one escalation at t=10")

let test_reactive_exhaustive_detects_deep_threat () =
  (* Passive keeps flagging; the deep threat only shows to the
     exhaustive action (second exhaustive sub-region). *)
  let m =
    reactive_monitor
      ~passive_trigger:(fun region _ -> region = 0)
      ~exhaustive_trigger:(fun region _ -> region = 1)
      ()
  in
  run_job m 0 0;
  check_bool "escalated after job 0" true
    (Reactive.mode m = Reactive.Exhaustive);
  Alcotest.(check (option int)) "no deep detection yet" None
    (Reactive.exhaustive_detection_time m);
  run_job m 1 100;
  (* escalated job: 5 regions over wcet 10 -> boundaries 102..110;
     exhaustive region 1 is combined region 3, completing at 108 *)
  Alcotest.(check (option int)) "deep detection" (Some 108)
    (Reactive.exhaustive_detection_time m)

let test_reactive_deescalates_after_cooldown () =
  let attack_active = ref true in
  let m =
    reactive_monitor ~cooldown:2
      ~passive_trigger:(fun region _ -> !attack_active && region = 0)
      ~exhaustive_trigger:(fun _ _ -> false)
      ()
  in
  run_job m 0 0;
  check_bool "escalated" true (Reactive.mode m = Reactive.Exhaustive);
  attack_active := false;
  run_job m 1 100;
  check_bool "one clean pass: still exhaustive" true
    (Reactive.mode m = Reactive.Exhaustive);
  run_job m 2 200;
  check_bool "two clean passes: back to passive" true
    (Reactive.mode m = Reactive.Passive);
  (match Reactive.escalations m with
  | [ (_, "escalate"); (_, "de-escalate") ] -> ()
  | l -> Alcotest.failf "unexpected transition log (%d entries)" (List.length l))

let test_reactive_mode_fixed_per_job () =
  (* A hit mid-job escalates the *next* job; the current one keeps its
     passive region layout (2 regions, not 5). *)
  let regions_in_job0 = ref 0 in
  let m =
    reactive_monitor
      ~passive_trigger:(fun region _ ->
        incr regions_in_job0;
        region = 0)
      ~exhaustive_trigger:(fun _ _ -> false)
      ()
  in
  run_job m 0 0;
  check_int "job 0 ran exactly the passive regions" 2 !regions_in_job0

(* ------------------------------------------------------------------ *)
(* Rover application (navigation + camera + authorized writes) *)

module App = Security.Rover_app

let test_app_navigation_moves () =
  let world = App.create_world ~seed:7 () in
  for _ = 1 to 50 do App.navigate_step world done;
  check_int "steps counted" 50 (App.steps_taken world);
  check_bool "rover moved or turned" true
    (App.pose world <> { App.x = 0; y = 0; heading = 0 }
    || App.obstacle_encounters world > 0)

let test_app_navigation_deterministic () =
  let run () =
    let world = App.create_world ~seed:11 () in
    for _ = 1 to 200 do App.navigate_step world done;
    (App.pose world, App.obstacle_encounters world)
  in
  check_bool "same seed same trajectory" true (run () = run ())

let test_app_camera_grows_store () =
  let fs = Filesystem.create () in
  let world = App.create_world ~seed:3 () in
  let cam = App.create_camera fs () in
  let p0 = App.capture cam world 100 in
  let p1 = App.capture cam world 200 in
  check_int "two captures" 2 (App.captures cam);
  check_bool "distinct paths" true (p0 <> p1);
  check_bool "frames differ" true
    (Filesystem.read fs p0 <> Filesystem.read fs p1)

let test_app_authorized_writes_absorbed () =
  let fs = Filesystem.create () in
  Filesystem.populate_images fs ~count:8 ~bytes_per_file:64;
  let checker = Integrity_checker.create fs ~n_regions:4 in
  let world = App.create_world ~seed:5 () in
  let cam = App.create_camera fs () in
  let path = App.capture cam world 500 in
  (* raw check sees the new file as Added... *)
  let region = Integrity_checker.region_of_key checker path in
  check_bool "raw check reports the capture" true
    (Integrity_checker.check_region checker region <> []);
  (* ...the guarded check absorbs it... *)
  check_int "guarded check is clean" 0
    (List.length (App.guarded_check_region cam checker region));
  (* ...permanently (now part of the baseline). *)
  check_int "raw check clean afterwards" 0
    (List.length (Integrity_checker.check_region checker region))

let test_app_tamper_still_detected () =
  let fs = Filesystem.create () in
  let checker = Integrity_checker.create fs ~n_regions:1 in
  let world = App.create_world ~seed:5 () in
  let cam = App.create_camera fs () in
  let path = App.capture cam world 500 in
  (* absorb the legitimate capture first *)
  check_int "clean after capture" 0
    (List.length (App.guarded_check_region cam checker 0));
  (* the shellcode then tampers the captured frame: the journal hash
     no longer matches, so the guarded check must report it *)
  Integrity_checker.tamper_file fs path;
  (match App.guarded_check_region cam checker 0 with
  | [ Profile_checker.Modified p ] ->
      Alcotest.(check string) "the tampered frame" path p
  | _ -> Alcotest.fail "expected exactly the tampered capture")

let test_app_sim_integration () =
  (* Run the real rover taskset with the application wired in: the
     camera produces one frame per job and a guarded Tripwire task
     reports no findings without an attack. *)
  let ts = Rover.taskset () in
  let fs = Rover.image_store () in
  let checker = Integrity_checker.create fs ~n_regions:Rover.image_regions in
  let world = App.create_world ~seed:13 () in
  let cam = App.create_camera fs () in
  let bounds = [| 10000; 10000 |] in
  let built =
    Sim.Scenario.of_taskset ts ~rt_assignment:(Rover.rt_assignment ())
      ~policy:Sim.Policy.Semi_partitioned ~sec_periods:bounds ()
  in
  let injector = Intrusion.create () in
  let tw_monitor =
    Detection.create ~sim_id:built.Sim.Scenario.sec_sim_ids.(0) ~wcet:5342
      ~target:
        (Detection.checker_target ~n_regions:Rover.image_regions ~injector
           ~check:(App.guarded_check_region cam checker))
  in
  let hooks =
    App.hooks world cam
      ~nav_sim_id:built.Sim.Scenario.rt_sim_ids.(0)
      ~cam_sim_id:built.Sim.Scenario.rt_sim_ids.(1)
      { Sim.Engine.no_hooks with
        Sim.Engine.on_execute = Some (Detection.on_execute tw_monitor) }
  in
  let stats =
    Sim.Engine.run ~hooks ~n_cores:2 ~horizon:45000 built.Sim.Scenario.tasks
  in
  check_int "camera captured one frame per job" 9 (App.captures cam);
  check_bool "navigation kept stepping" true (App.steps_taken world >= 89);
  Alcotest.(check (option int)) "no false positive from live captures" None
    (Detection.detection_time tw_monitor);
  check_int "rt misses" 0
    (Sim.Metrics.deadline_misses stats ~sim_ids:built.Sim.Scenario.rt_sim_ids)

(* ------------------------------------------------------------------ *)
(* Rover case study *)

let test_rover_parameters () =
  let ts = Rover.taskset () in
  check_int "cores" 2 ts.Task.n_cores;
  check_int "rt tasks" 2 (Array.length ts.Task.rt);
  check_int "sec tasks" 2 (Array.length ts.Task.sec);
  Alcotest.(check (float 1e-4)) "RT utilization (paper: 0.7040)" 0.7040
    (Task.total_rt_utilization ts);
  Alcotest.(check (float 1e-4)) "total min utilization (paper: 1.2605)" 1.2605
    (Task.total_min_utilization ts)

let test_rover_table2_has_all_rows () =
  check_int "ten facts" 10 (List.length Rover.table2)

let test_rover_stores () =
  let fs = Rover.image_store () in
  check_int "image count" Rover.image_regions (Filesystem.file_count fs);
  let table = Rover.module_table () in
  check_int "profile preloaded"
    (List.length (Kmod_checker.default_profile ()))
    (List.length (Kmod_checker.modules table))

let test_rover_extended_taskset () =
  let base = Rover.taskset () in
  let ext = Rover.extended_taskset () in
  check_int "four security tasks" 4 (Array.length ext.Task.sec);
  check_bool "RT side untouched" true (ext.Task.rt = base.Task.rt);
  (* the whole extended set must still schedule under HYDRA-C *)
  let sys =
    Hydra.Analysis.make_system ext ~assignment:(Rover.rt_assignment ())
  in
  (match Hydra.Period_selection.select sys ext.Task.sec with
  | Hydra.Period_selection.Schedulable assignments ->
      check_int "all four assigned" 4 (List.length assignments)
  | Hydra.Period_selection.Unschedulable ->
      Alcotest.fail "extended rover must stay schedulable")

let test_catalog_table1 () =
  check_int "four classes" 4 (List.length Security.Catalog.table1);
  let implemented =
    List.filter
      (fun e -> e.Security.Catalog.implemented_by <> None)
      Security.Catalog.table1
  in
  check_int "all four classes exercised" 4 (List.length implemented)

let () =
  Alcotest.run "security"
    [ ( "hash",
        [ Alcotest.test_case "deterministic" `Quick test_hash_deterministic;
          Alcotest.test_case "discriminates" `Quick test_hash_discriminates;
          Alcotest.test_case "list order sensitive" `Quick
            test_hash_list_order_sensitive ] );
      ( "filesystem",
        [ Alcotest.test_case "crud" `Quick test_fs_crud;
          Alcotest.test_case "errors on missing" `Quick
            test_fs_errors_on_missing;
          Alcotest.test_case "populate images" `Quick test_fs_populate_images;
          Alcotest.test_case "images distinct" `Quick test_fs_images_distinct ]
      );
      ( "integrity_checker",
        [ Alcotest.test_case "clean baseline" `Quick
            test_checker_clean_baseline;
          Alcotest.test_case "detects modification" `Quick
            test_checker_detects_modification;
          Alcotest.test_case "detects add/remove" `Quick
            test_checker_detects_added_and_removed;
          Alcotest.test_case "rebaseline clears" `Quick
            test_checker_rebaseline_clears;
          Alcotest.test_case "region partition" `Quick
            test_checker_region_partition ] );
      ( "kmod_checker",
        [ Alcotest.test_case "clean profile" `Quick test_kmod_clean_profile;
          Alcotest.test_case "detects insertion" `Quick
            test_kmod_detects_insertion;
          Alcotest.test_case "detects hiding" `Quick test_kmod_detects_hiding;
          Alcotest.test_case "detects patching" `Quick
            test_kmod_detects_patching;
          Alcotest.test_case "hide missing raises" `Quick
            test_kmod_hide_missing_raises ] );
      ( "intrusion",
        [ Alcotest.test_case "time-ordered application" `Quick
            test_intrusion_applies_in_time_order ] );
      ( "detection",
        [ Alcotest.test_case "regions complete in order" `Quick
            test_detection_regions_complete_in_order;
          Alcotest.test_case "split segments" `Quick
            test_detection_split_segments;
          Alcotest.test_case "ignores other tasks" `Quick
            test_detection_ignores_other_tasks;
          Alcotest.test_case "first hit recorded" `Quick
            test_detection_first_hit_recorded;
          Alcotest.test_case "new job restarts pass" `Quick
            test_detection_new_job_restarts_pass;
          Alcotest.test_case "mid-scan race semantics" `Quick
            test_checker_target_race_semantics;
          prop_detection_full_pass_under_any_preemption ] );
      ( "packet_monitor",
        [ Alcotest.test_case "capture ring bounds" `Quick
            test_capture_ring_bounds;
          Alcotest.test_case "clean traffic" `Quick
            test_packet_monitor_clean_traffic;
          Alcotest.test_case "blacklist + signature" `Quick
            test_packet_monitor_blacklist_and_signature;
          Alcotest.test_case "port scan" `Quick test_packet_monitor_port_scan;
          Alcotest.test_case "scan below threshold" `Quick
            test_packet_monitor_scan_below_threshold;
          Alcotest.test_case "detection target semantics" `Quick
            test_packet_monitor_detection_target;
          prop_benign_traffic_never_alerts;
          prop_capture_never_exceeds_capacity ] );
      ( "hpc_monitor",
        [ Alcotest.test_case "clean samples pass" `Quick
            test_hpc_clean_samples_pass;
          Alcotest.test_case "flags compromised task" `Quick
            test_hpc_flags_compromised_task;
          Alcotest.test_case "regions map to tasks" `Quick
            test_hpc_regions_map_to_tasks;
          Alcotest.test_case "region isolation" `Quick
            test_hpc_region_isolation;
          Alcotest.test_case "unknown task rejected" `Quick
            test_hpc_push_unknown_task ] );
      ( "reactive",
        [ Alcotest.test_case "stays passive when clean" `Quick
            test_reactive_stays_passive_when_clean;
          Alcotest.test_case "escalates on passive hit" `Quick
            test_reactive_escalates_on_passive_hit;
          Alcotest.test_case "exhaustive finds deep threat" `Quick
            test_reactive_exhaustive_detects_deep_threat;
          Alcotest.test_case "de-escalates after cooldown" `Quick
            test_reactive_deescalates_after_cooldown;
          Alcotest.test_case "mode fixed per job" `Quick
            test_reactive_mode_fixed_per_job ] );
      ( "rover_app",
        [ Alcotest.test_case "navigation moves" `Quick
            test_app_navigation_moves;
          Alcotest.test_case "navigation deterministic" `Quick
            test_app_navigation_deterministic;
          Alcotest.test_case "camera grows store" `Quick
            test_app_camera_grows_store;
          Alcotest.test_case "authorized writes absorbed" `Quick
            test_app_authorized_writes_absorbed;
          Alcotest.test_case "tamper still detected" `Quick
            test_app_tamper_still_detected;
          Alcotest.test_case "full simulation integration" `Quick
            test_app_sim_integration ] );
      ( "rover",
        [ Alcotest.test_case "paper parameters" `Quick test_rover_parameters;
          Alcotest.test_case "table 2 rows" `Quick
            test_rover_table2_has_all_rows;
          Alcotest.test_case "stores" `Quick test_rover_stores;
          Alcotest.test_case "extended taskset" `Quick
            test_rover_extended_taskset;
          Alcotest.test_case "table 1 catalog" `Quick test_catalog_table1 ] ) ]
