test/test_taskgen.ml: Alcotest Array List Printf QCheck Rtsched Taskgen Test_util
