test/test_util.ml: Alcotest Array Format List QCheck QCheck_alcotest Rtsched
