test/test_rtsched.mli:
