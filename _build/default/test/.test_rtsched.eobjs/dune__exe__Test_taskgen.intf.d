test/test_taskgen.mli:
