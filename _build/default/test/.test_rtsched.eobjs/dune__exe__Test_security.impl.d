test/test_security.ml: Alcotest Array Gen Hydra List Printf QCheck Rtsched Security Sim Taskgen Test_util
