test/test_hydra.ml: Alcotest Array Float Format Hydra List Printf QCheck Rtsched Security Sim String Test_util
