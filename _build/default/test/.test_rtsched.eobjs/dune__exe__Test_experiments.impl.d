test/test_experiments.ml: Alcotest Array Buffer Experiments Filename Float Format Hydra In_channel Lazy List Printf String Sys Test_util Unix
