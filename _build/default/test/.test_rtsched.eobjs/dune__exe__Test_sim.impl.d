test/test_sim.ml: Alcotest Array Format List Printf QCheck Rtsched Security Sim String Test_util
