test/test_rtsched.ml: Alcotest Array List Option Printf QCheck Rtsched Sim String Test_util
