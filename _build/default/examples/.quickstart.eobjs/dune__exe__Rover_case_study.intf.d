examples/rover_case_study.mli:
