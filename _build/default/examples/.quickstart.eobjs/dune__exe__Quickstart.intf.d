examples/quickstart.mli:
