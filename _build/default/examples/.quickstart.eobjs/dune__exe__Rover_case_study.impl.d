examples/rover_case_study.ml: Array Experiments Format Hydra List Rtsched Security Sim
