examples/network_watch.ml: Array Format Hydra List Rtsched Security Sim Taskgen
