examples/network_watch.mli:
