examples/adaptive_monitoring.mli:
