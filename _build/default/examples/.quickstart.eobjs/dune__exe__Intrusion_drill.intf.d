examples/intrusion_drill.mli:
