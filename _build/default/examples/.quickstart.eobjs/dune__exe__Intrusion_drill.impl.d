examples/intrusion_drill.ml: Format List Printf Security String
