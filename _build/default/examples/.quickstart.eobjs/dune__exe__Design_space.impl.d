examples/design_space.ml: Array Experiments Format Hydra List Sys Taskgen
