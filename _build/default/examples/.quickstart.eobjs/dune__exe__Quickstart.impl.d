examples/quickstart.ml: Array Format Hydra List Rtsched String
