examples/adaptive_monitoring.ml: Format Int64 List Security Sim
