(* Quickstart: integrate two security tasks into a small partitioned
   dual-core system and pick their periods with HYDRA-C, then compare
   against the three baseline schemes.

   Run with: dune exec examples/quickstart.exe *)

module Task = Rtsched.Task

let () =
  (* A legacy dual-core system with four partitioned RT tasks. *)
  let rt =
    [ Task.make_rt ~name:"sensor-fusion" ~id:0 ~prio:0 ~wcet:10 ~period:50 ();
      Task.make_rt ~name:"control-loop" ~id:1 ~prio:1 ~wcet:30 ~period:100 ();
      Task.make_rt ~name:"telemetry" ~id:2 ~prio:2 ~wcet:80 ~period:400 ();
      Task.make_rt ~name:"logger" ~id:3 ~prio:3 ~wcet:150 ~period:1000 () ]
  in
  (* Two security monitors the designer wants to run as often as
     possible, but at least every 2 s / 3 s. *)
  let sec =
    [ Task.make_sec ~name:"ids-scan" ~id:0 ~prio:0 ~wcet:300 ~period_max:2000 ();
      Task.make_sec ~name:"integrity" ~id:1 ~prio:1 ~wcet:500 ~period_max:3000 () ]
  in
  let ts = Task.make_taskset ~n_cores:2 ~rt ~sec in

  (* Partition the RT tasks (best-fit, exact per-core analysis). *)
  let assignment =
    match Rtsched.Partition.partition_rt ts with
    | Some a -> a
    | None -> failwith "RT tasks are not partitionable"
  in
  Format.printf "RT partition:@.";
  Array.iteri
    (fun i t -> Format.printf "  %-14s -> core %d@." t.Task.rt_name assignment.(i))
    ts.rt;

  (* HYDRA-C period selection (Algorithms 1 & 2). *)
  let sys = Hydra.Analysis.make_system ts ~assignment in
  (match Hydra.Period_selection.select sys ts.sec with
  | Hydra.Period_selection.Unschedulable ->
      Format.printf "HYDRA-C: unschedulable within the period bounds@."
  | Hydra.Period_selection.Schedulable assignments ->
      Format.printf "@.HYDRA-C selected periods:@.";
      List.iter
        (fun (a : Hydra.Period_selection.assignment) ->
          Format.printf "  %-14s T* = %4d ms (bound %d, WCRT %d)@."
            a.sec.Task.sec_name a.period a.sec.Task.sec_period_max a.resp)
        assignments);

  (* Compare all four schemes. *)
  Format.printf "@.Scheme comparison:@.";
  List.iter
    (fun scheme ->
      let o = Hydra.Scheme.evaluate scheme ts ~rt_assignment:assignment in
      let periods =
        match o.Hydra.Scheme.periods with
        | None -> "-"
        | Some p ->
            String.concat ", "
              (Array.to_list (Array.map string_of_int p))
      in
      Format.printf "  %-12s schedulable=%-5b periods=[%s]@."
        (Hydra.Scheme.name scheme) o.Hydra.Scheme.schedulable periods)
    Hydra.Scheme.all
