(* Network watch: the extended rover. Four security monitors — one per
   class of the paper's Table 1 — are integrated into the unchanged
   two-task RT rover: Tripwire over the image store, the kernel-module
   checker, a packet monitor over a capture ring, and an HPC-counter
   anomaly detector. HYDRA-C selects all four periods at once; a
   coordinated attack campaign is then injected and every monitor's
   detection latency measured in one simulation.

   Run with: dune exec examples/network_watch.exe *)

module Task = Rtsched.Task
module PM = Security.Packet_monitor
module HM = Security.Hpc_monitor

let () =
  let ts = Security.Rover.extended_taskset () in
  let rt_assignment = Security.Rover.rt_assignment () in
  Format.printf "=== Extended rover: four monitors, one analysis ===@.";
  Format.printf "%a@." Task.pp_taskset ts;

  (* --- Period selection over all four security tasks -------------- *)
  let sys = Hydra.Analysis.make_system ts ~assignment:rt_assignment in
  let n_sec = Array.length ts.Task.sec in
  let assignments =
    match Hydra.Period_selection.select sys ts.Task.sec with
    | Hydra.Period_selection.Schedulable a -> a
    | Hydra.Period_selection.Unschedulable ->
        failwith "extended rover unschedulable — reduce monitor load"
  in
  Format.printf "@.HYDRA-C periods:@.";
  List.iter
    (fun (a : Hydra.Period_selection.assignment) ->
      Format.printf "  %-16s T* = %5d ms (bound %5d, WCRT %5d)@."
        a.sec.Task.sec_name a.period a.sec.Task.sec_period_max a.resp)
    assignments;
  let periods = Hydra.Period_selection.period_vector assignments ~n_sec in

  (* --- Monitored stores ------------------------------------------- *)
  let fs = Security.Rover.image_store () in
  let table = Security.Rover.module_table () in
  let capture = PM.create_capture ~capacity:256 in
  let hpc_stream = HM.create_stream ~tasks:[ "navigation"; "camera" ] in
  let rng = Taskgen.Rng.create 2026 in
  let fs_checker =
    Security.Integrity_checker.create fs
      ~n_regions:Security.Rover.image_regions
  in
  let km_checker =
    Security.Kmod_checker.create table ~n_regions:Security.Rover.kmod_regions
  in
  let pk_monitor =
    PM.create capture PM.default_rules ~n_regions:Security.Rover.packet_regions
  in
  let hpc_monitor =
    HM.calibrate rng ~tasks:[ "navigation"; "camera" ] hpc_stream
  in

  (* --- Background load and the attack campaign -------------------- *)
  (* Benign traffic and clean counter samples arrive continuously;
     the injector applies them lazily in wall-clock order, so every
     scan sees the state its start time implies. *)
  let injectors = Array.init 4 (fun _ -> Security.Intrusion.create ()) in
  let schedule_all ~at ~label f =
    Array.iter (fun inj -> Security.Intrusion.schedule inj ~at ~label f)
      injectors
  in
  for burst = 0 to 40 do
    let at = burst * 1000 in
    schedule_all ~at ~label:"background"
      (fun () ->
        List.iter (PM.ingest capture) (PM.benign_traffic rng ~now:at ~count:5);
        HM.push hpc_stream (HM.clean_sample rng ~task:"navigation");
        HM.push hpc_stream (HM.clean_sample rng ~task:"camera"))
  done;
  let attack_at = 9000 in
  schedule_all ~at:attack_at ~label:"campaign" (fun () ->
      (* one coordinated intrusion touching all four surfaces *)
      Security.Integrity_checker.tamper_file fs "img_0013.raw";
      Security.Kmod_checker.insert_module table
        { Security.Kmod_checker.m_name = "rk_net_hook"; m_size = 7331;
          m_addr = 0x7fc0ffeeL; m_signature = "unsigned" };
      List.iter (PM.ingest capture)
        (PM.port_scan ~src:"10.0.0.66" ~now:attack_at
           ~ports:(List.init 12 (fun i -> 8000 + i)));
      PM.ingest capture (PM.c2_beacon ~src:"10.0.0.66" ~now:attack_at);
      HM.push hpc_stream (HM.compromised_sample rng ~task:"navigation"));

  (* --- Simulation with one detection monitor per security task ---- *)
  let built =
    Sim.Scenario.of_taskset ts ~rt_assignment
      ~policy:Sim.Policy.Semi_partitioned ~sec_periods:periods ()
  in
  let monitor sec_id wcet target =
    Security.Detection.create
      ~sim_id:built.Sim.Scenario.sec_sim_ids.(sec_id) ~wcet ~target
  in
  let tw =
    monitor Security.Rover.tripwire_sec_id 5342
      (Security.Detection.checker_target
         ~n_regions:Security.Rover.image_regions ~injector:injectors.(0)
         ~check:(Security.Integrity_checker.check_region fs_checker))
  in
  let km =
    monitor Security.Rover.kmod_sec_id 223
      (Security.Detection.checker_target
         ~n_regions:Security.Rover.kmod_regions ~injector:injectors.(1)
         ~check:(Security.Kmod_checker.check_region km_checker))
  in
  let pk =
    monitor Security.Rover.packet_sec_id 850
      (PM.detection_target pk_monitor ~injector:injectors.(2))
  in
  let hp =
    monitor Security.Rover.hpc_sec_id 140
      (HM.detection_target hpc_monitor ~injector:injectors.(3))
  in
  let hooks =
    { Sim.Engine.no_hooks with
      Sim.Engine.on_execute =
        Some
          (Security.Detection.combine_hooks
             [ Security.Detection.on_execute tw;
               Security.Detection.on_execute km;
               Security.Detection.on_execute pk;
               Security.Detection.on_execute hp ]) }
  in
  let stats =
    Sim.Engine.run ~hooks ~n_cores:2 ~horizon:40000 built.Sim.Scenario.tasks
  in

  Format.printf "@.campaign injected at %d ms; detections:@." attack_at;
  List.iter
    (fun (name, monitor) ->
      match Security.Detection.detection_time monitor with
      | Some t -> Format.printf "  %-16s detected at %5d ms (latency %d ms)@."
                    name t (t - attack_at)
      | None -> Format.printf "  %-16s no detection within horizon@." name)
    [ ("tripwire", tw); ("kmod-checker", km); ("packet-monitor", pk);
      ("hpc-monitor", hp) ];
  Format.printf "@.RT deadline misses: %d (must be 0)@."
    (Sim.Metrics.deadline_misses stats ~sim_ids:built.Sim.Scenario.rt_sim_ids);
  Format.printf "context switches: %d, migrations: %d@."
    stats.Sim.Engine.context_switches stats.Sim.Engine.migrations
