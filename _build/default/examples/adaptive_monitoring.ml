(* Adaptive (reactive) monitoring — the extension sketched in the
   paper's Discussion: a cheap passive check escalates to an exhaustive
   dependent check when it observes an anomaly, and de-escalates after
   consecutive clean passes.

   Scenario: a single monitoring task watches the kernel-module table.
   Its passive action only audits module *names* (cheap set
   comparison); a stealthy attacker patches an existing module in
   place, which the name audit cannot see — but tripping a decoy first
   (an inserted module that is quickly hidden again) escalates the
   monitor, whose exhaustive action fingerprints sizes, addresses and
   signatures and catches the in-place patch.

   Run with: dune exec examples/adaptive_monitoring.exe *)

module KC = Security.Kmod_checker

let () =
  Format.printf "=== Adaptive monitoring drill ===@.";
  let table = Security.Rover.module_table () in

  (* Passive action: names-only profile (region per name bucket). A
     patched module keeps its name, so this checker misses it. *)
  let names_baseline =
    ref (List.map (fun m -> m.KC.m_name) (KC.modules table))
  in
  let passive_regions = 4 in
  let passive_injector = Security.Intrusion.create () in
  let name_region name =
    Int64.to_int
      (Int64.rem
         (Int64.logand (Security.Hash.fnv1a64 name) Int64.max_int)
         (Int64.of_int passive_regions))
  in
  let passive_target =
    { Security.Detection.n_regions = passive_regions;
      check_region =
        (fun ~region ~started ~finished:_ ->
          Security.Intrusion.apply_until passive_injector started;
          let current = List.map (fun m -> m.KC.m_name) (KC.modules table) in
          let in_region names =
            List.filter (fun n -> name_region n = region) names
          in
          in_region current <> in_region !names_baseline) }
  in

  (* Exhaustive action: the full fingerprint checker. *)
  let deep_checker = KC.create table ~n_regions:6 in
  let deep_injector = Security.Intrusion.create () in
  let exhaustive_target =
    Security.Detection.checker_target ~n_regions:6 ~injector:deep_injector
      ~check:(KC.check_region deep_checker)
  in

  (* The attack script: a decoy module flashes at t=3000 (visible to
     the name audit until it hides itself at t=9000), and the real
     in-place patch lands at t=4000 (invisible to the name audit). *)
  let schedule injector =
    Security.Intrusion.schedule injector ~at:3000 ~label:"decoy insert"
      (fun () ->
        KC.insert_module table
          { KC.m_name = "rk_decoy"; m_size = 1; m_addr = 0x1L;
            m_signature = "unsigned" });
    Security.Intrusion.schedule injector ~at:4000 ~label:"in-place patch"
      (fun () -> KC.patch_module table "snd_bcm2835" ~size:31337);
    Security.Intrusion.schedule injector ~at:9000 ~label:"decoy hides"
      (fun () -> try KC.hide_module table "rk_decoy" with Not_found -> ())
  in
  schedule passive_injector;
  (* the same wall-clock mutations must be visible to the deep checker *)
  Security.Intrusion.schedule deep_injector ~at:0 ~label:"sync" (fun () -> ());
  schedule deep_injector;

  (* One monitoring task (C=400 ms, T=2000 ms) beside a small RT task
     on a dual-core platform. *)
  let monitor_task =
    { Sim.Engine.st_id = 1; st_name = "kmod-monitor"; st_wcet = 400;
      st_period = 2000; st_deadline = 2000; st_prio = 10; st_core = None;
      st_offset = 0 }
  in
  let rt_task =
    { Sim.Engine.st_id = 0; st_name = "control"; st_wcet = 300;
      st_period = 1000; st_deadline = 1000; st_prio = 0; st_core = Some 0;
      st_offset = 0 }
  in
  let reactive =
    Security.Reactive.create ~sim_id:1 ~wcet:400 ~passive:passive_target
      ~exhaustive:exhaustive_target ~cooldown_passes:3 ()
  in
  let hooks =
    { Sim.Engine.no_hooks with
      Sim.Engine.on_execute = Some (Security.Reactive.on_execute reactive) }
  in
  let _stats =
    Sim.Engine.run ~hooks ~n_cores:2 ~horizon:30000 [ rt_task; monitor_task ]
  in

  Format.printf "mode transitions:@.";
  List.iter
    (fun (t, label) -> Format.printf "  t=%6d ms  %s@." t label)
    (Security.Reactive.escalations reactive);
  (match Security.Reactive.passive_detection_time reactive with
  | Some t -> Format.printf "passive anomaly (decoy) noticed at %d ms@." t
  | None -> Format.printf "passive action never fired (unexpected)@.");
  (match Security.Reactive.exhaustive_detection_time reactive with
  | Some t ->
      Format.printf
        "in-place patch caught by the escalated check at %d ms@." t
  | None ->
      Format.printf
        "in-place patch NOT caught — it is invisible without escalation@.");
  Format.printf "final mode: %s@."
    (match Security.Reactive.mode reactive with
    | Security.Reactive.Passive -> "passive"
    | Security.Reactive.Exhaustive -> "exhaustive")
