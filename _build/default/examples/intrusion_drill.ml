(* Intrusion drill: exercises the security substrate directly — no
   scheduler — the way an operator would during bring-up. Builds the
   image store and kernel-module table, runs clean scans, injects a
   campaign of staged attacks through the lazy injector, and walks the
   checkers region by region showing what each pass can and cannot see
   (including the mid-scan race the detection model encodes).

   Run with: dune exec examples/intrusion_drill.exe *)

module FS = Security.Filesystem
module IC = Security.Integrity_checker
module KC = Security.Kmod_checker
module PC = Security.Profile_checker

let show_violations label violations =
  Format.printf "%-28s %d finding(s)%s@." label (List.length violations)
    (if violations = [] then ""
     else
       ": "
       ^ String.concat ", "
           (List.map (Format.asprintf "%a" PC.pp_violation) violations))

let () =
  Format.printf "=== Intrusion drill ===@.";

  (* --- Stores and baselines -------------------------------------- *)
  let fs = Security.Rover.image_store () in
  let table = Security.Rover.module_table () in
  let fs_checker = IC.create fs ~n_regions:8 in
  let km_checker = KC.create table ~n_regions:4 in
  Format.printf "image store: %d files, %d bytes; module table: %d modules@."
    (FS.file_count fs) (FS.total_bytes fs)
    (List.length (KC.modules table));
  show_violations "clean filesystem scan:" (IC.check_all fs_checker);
  show_violations "clean module scan:" (KC.check_all km_checker);

  (* --- A staged campaign through the injector -------------------- *)
  let injector = Security.Intrusion.create () in
  Security.Intrusion.schedule injector ~at:100 ~label:"tamper img_0007"
    (fun () -> IC.tamper_file fs "img_0007.raw");
  Security.Intrusion.schedule injector ~at:250 ~label:"drop rootkit"
    (fun () ->
      KC.insert_module table
        { KC.m_name = "rk_syscall"; m_size = 2048; m_addr = 0x7f66600000L;
          m_signature = "unsigned" });
  Security.Intrusion.schedule injector ~at:400 ~label:"hide wifi driver"
    (fun () -> KC.hide_module table "brcmfmac");
  Format.printf "@.campaign scheduled: %s@."
    (String.concat "; "
       (List.map
          (fun (t, l) -> Printf.sprintf "%s@%dms" l t)
          (Security.Intrusion.pending injector)));

  (* --- Scan passes at increasing times --------------------------- *)
  let scan_at now =
    Security.Intrusion.apply_until injector now;
    Format.printf "@.-- scan pass at t=%d ms --@." now;
    show_violations "filesystem:" (IC.check_all fs_checker);
    show_violations "kernel modules:" (KC.check_all km_checker)
  in
  scan_at 50;   (* before anything lands: clean *)
  scan_at 150;  (* tampered image visible *)
  scan_at 300;  (* plus the rootkit module *)
  scan_at 500;  (* plus the hidden driver *)

  (* --- The mid-scan race the detection model encodes ------------- *)
  Format.printf "@.-- mid-scan race --@.";
  let fs2 = Security.Rover.image_store () in
  let checker2 = IC.create fs2 ~n_regions:8 in
  let inj2 = Security.Intrusion.create () in
  Security.Intrusion.schedule inj2 ~at:75 ~label:"late tamper" (fun () ->
      IC.tamper_file fs2 "img_0000.raw");
  let target =
    Security.Detection.checker_target ~n_regions:8 ~injector:inj2
      ~check:(IC.check_region checker2)
  in
  let region = IC.region_of_key checker2 "img_0000.raw" in
  let hit_during =
    target.Security.Detection.check_region ~region ~started:70 ~finished:80
  in
  Format.printf
    "inspection [70,80) with tamper at 75: %s (content read at window start)@."
    (if hit_during then "DETECTED" else "missed");
  let hit_next =
    target.Security.Detection.check_region ~region ~started:120 ~finished:130
  in
  Format.printf "next pass [120,130): %s@."
    (if hit_next then "DETECTED" else "missed");

  (* --- Recovery --------------------------------------------------- *)
  Format.printf "@.-- recovery --@.";
  IC.rebaseline fs_checker;
  KC.rebaseline km_checker;
  show_violations "filesystem after rebaseline:" (IC.check_all fs_checker);
  show_violations "modules after rebaseline:" (KC.check_all km_checker)
