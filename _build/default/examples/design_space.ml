(* Design-space exploration in miniature: sweep the Table-3 generator
   over the utilization groups and print the acceptance ratios and
   period distances of all four schemes — a fast, reduced-scale
   version of Figs. 6 and 7 that a user can tweak.

   Run with: dune exec examples/design_space.exe -- [tasksets-per-group]
*)

let () =
  let per_group =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 20
  in
  let std = Format.std_formatter in
  List.iter
    (fun n_cores ->
      Format.printf "@.### M = %d cores, %d tasksets per group ###@." n_cores
        per_group;
      let sweep = Experiments.Sweep.run ~n_cores ~per_group ~seed:42 () in
      Experiments.Fig6.render std (Experiments.Fig6.of_sweep sweep);
      let fig7 = Experiments.Fig7.of_sweep sweep in
      Experiments.Fig7.render_a std fig7;
      Experiments.Fig7.render_b std fig7)
    [ 2; 4 ];

  (* A designer's what-if: how does the security utilization share
     change the picture on a dual-core platform? *)
  Format.printf "@.### What-if: heavier security workloads (M = 2) ###@.";
  List.iter
    (fun (lo, hi) ->
      let config =
        { (Taskgen.Generator.default_config ~n_cores:2) with
          Taskgen.Generator.sec_util_share = (lo, hi) }
      in
      let sweep =
        Experiments.Sweep.run ~config ~n_cores:2 ~per_group ~seed:42 ()
      in
      let records = sweep.Experiments.Sweep.records in
      let mid =
        List.filter (fun r -> r.Experiments.Sweep.group = 5) records
      in
      Format.printf
        "security share [%.2f, %.2f]: HYDRA-C acceptance at U/M~0.6 = %.2f@."
        lo hi
        (Experiments.Sweep.acceptance mid ~scheme:Hydra.Scheme.Hydra_c))
    [ (0.30, 0.50); (0.40, 0.60); (0.50, 0.70) ]
