(* The paper's Sec. 5.1 rover, end to end: build the exact taskset the
   authors ran on their Raspberry-Pi rover, select security periods
   with HYDRA-C and with the HYDRA baseline, inject both attacks
   (image-store tampering and a rootkit module) and watch each scheme
   detect them in the simulator — including an ASCII schedule excerpt.

   Run with: dune exec examples/rover_case_study.exe *)

module Task = Rtsched.Task

let section title = Format.printf "@.=== %s ===@." title

let show_periods label periods =
  Format.printf "%-8s tripwire T=%d ms, kmod-checker T=%d ms@." label
    periods.(Security.Rover.tripwire_sec_id)
    periods.(Security.Rover.kmod_sec_id)

let () =
  let ts = Security.Rover.taskset () in
  let rt_assignment = Security.Rover.rt_assignment () in

  section "Platform (Table 2)";
  Security.Rover.pp_table2 Format.std_formatter ();

  section "Taskset";
  Format.printf "%a@." Task.pp_taskset ts;
  Format.printf "RT pinning: navigation -> core 0, camera -> core 1@.";

  (* --- Period selection under both schemes ---------------------- *)
  section "Period selection";
  let sys = Hydra.Analysis.make_system ts ~assignment:rt_assignment in
  let n_sec = Array.length ts.Task.sec in
  let hc_periods =
    match Hydra.Period_selection.select sys ts.Task.sec with
    | Hydra.Period_selection.Schedulable a ->
        Hydra.Period_selection.period_vector a ~n_sec
    | Hydra.Period_selection.Unschedulable -> failwith "HYDRA-C unschedulable"
  in
  let hy_periods, hy_cores =
    match Hydra.Baseline_hydra.allocate ~minimize:true sys ts.Task.sec with
    | Hydra.Baseline_hydra.Schedulable allocs ->
        ( Hydra.Baseline_hydra.period_vector allocs ~n_sec,
          Hydra.Baseline_hydra.core_vector allocs ~n_sec )
    | Hydra.Baseline_hydra.Unschedulable -> failwith "HYDRA unschedulable"
  in
  show_periods "HYDRA-C" hc_periods;
  show_periods "HYDRA" hy_periods;
  Format.printf "HYDRA pins: tripwire -> core %d, kmod-checker -> core %d@."
    hy_cores.(Security.Rover.tripwire_sec_id)
    hy_cores.(Security.Rover.kmod_sec_id);

  (* --- One instrumented run per scheme --------------------------- *)
  let attack_at = 6000 in
  let run label policy periods sec_cores =
    section (label ^ ": simulated intrusion");
    let built =
      Sim.Scenario.of_taskset ts ~rt_assignment ~policy ~sec_periods:periods
        ?sec_cores ()
    in
    let fs = Security.Rover.image_store () in
    let table = Security.Rover.module_table () in
    let fs_checker =
      Security.Integrity_checker.create fs
        ~n_regions:Security.Rover.image_regions
    in
    let km_checker =
      Security.Kmod_checker.create table ~n_regions:Security.Rover.kmod_regions
    in
    let fs_injector = Security.Intrusion.create () in
    Security.Intrusion.schedule fs_injector ~at:attack_at ~label:"shellcode"
      (fun () -> Security.Integrity_checker.tamper_file fs "img_0042.raw");
    let km_injector = Security.Intrusion.create () in
    Security.Intrusion.schedule km_injector ~at:attack_at ~label:"rootkit"
      (fun () ->
        Security.Kmod_checker.insert_module table
          { Security.Kmod_checker.m_name = "rk_read_hook"; m_size = 4242;
            m_addr = 0x7fbadc0deL; m_signature = "unsigned" });
    let tw_monitor =
      Security.Detection.create
        ~sim_id:built.Sim.Scenario.sec_sim_ids.(Security.Rover.tripwire_sec_id)
        ~wcet:5342
        ~target:
          (Security.Detection.checker_target
             ~n_regions:Security.Rover.image_regions ~injector:fs_injector
             ~check:(Security.Integrity_checker.check_region fs_checker))
    in
    let km_monitor =
      Security.Detection.create
        ~sim_id:built.Sim.Scenario.sec_sim_ids.(Security.Rover.kmod_sec_id)
        ~wcet:223
        ~target:
          (Security.Detection.checker_target
             ~n_regions:Security.Rover.kmod_regions ~injector:km_injector
             ~check:(Security.Kmod_checker.check_region km_checker))
    in
    let hooks =
      { Sim.Engine.no_hooks with
        Sim.Engine.on_execute =
          Some
            (Security.Detection.combine_hooks
               [ Security.Detection.on_execute tw_monitor;
                 Security.Detection.on_execute km_monitor ]) }
    in
    let stats =
      Sim.Engine.run ~hooks ~collect_trace:true ~n_cores:2 ~horizon:45000
        built.Sim.Scenario.tasks
    in
    let report name monitor =
      match Security.Detection.detection_time monitor with
      | Some t ->
          Format.printf "%-14s attack at %d ms, detected at %d ms (latency %d ms)@."
            name attack_at t (t - attack_at)
      | None -> Format.printf "%-14s NOT detected within the horizon@." name
    in
    report "shellcode:" tw_monitor;
    report "rootkit:" km_monitor;
    Format.printf
      "context switches: %d, migrations: %d, RT deadline misses: %d@."
      stats.Sim.Engine.context_switches stats.Sim.Engine.migrations
      (Sim.Metrics.deadline_misses stats
         ~sim_ids:built.Sim.Scenario.rt_sim_ids);
    (match stats.Sim.Engine.trace with
    | Some trace ->
        Format.printf
          "first 15 s of the schedule (one letter per task, '.' idle):@.";
        let early = Sim.Trace.create () in
        List.iter
          (fun seg ->
            if seg.Sim.Trace.seg_start < 15000 then Sim.Trace.add early seg)
          (Sim.Trace.segments trace);
        Sim.Trace.pp_ascii ~width:100 Format.std_formatter early ~n_cores:2
          ~horizon:15000
    | None -> ())
  in
  run "HYDRA-C" Sim.Policy.Semi_partitioned hc_periods None;
  run "HYDRA" Sim.Policy.Fully_partitioned hy_periods (Some hy_cores);

  section "WCET sensitivity (how much can the monitors grow?)";
  Format.printf "%a@." Hydra.Sensitivity.render
    (Hydra.Sensitivity.analyze sys ts.Task.sec);

  section "Priority-order exploration";
  (match Hydra.Priority_assignment.best_by_distance sys ts.Task.sec with
  | Some (ordering, _, distance) ->
      Format.printf
        "most frequent monitoring comes from the %s order (distance %.4f)@."
        (Hydra.Priority_assignment.ordering_name ordering)
        distance
  | None -> Format.printf "no schedulable ordering@.");

  section "Fig. 5 summary (35 trials, T_max deployment)";
  let report = Experiments.Fig5.run () in
  Experiments.Fig5.render Format.std_formatter report
