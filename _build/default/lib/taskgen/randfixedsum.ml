(* Literal port of Roger Stafford's randfixedsum (MATLAB File Exchange
   #9700), the algorithm recommended by Emberson-Stafford-Davis for
   multiprocessor taskset synthesis. The n-1 dimensional simplex slice
   {x in [0,1]^n | sum x = s} is decomposed into simplices; the w table
   holds (scaled) relative volumes and t the transition probabilities
   used to walk the decomposition while sampling. Indices below are
   kept 1-based to match the published algorithm. *)

let sample rng ~n ~total ~lo ~hi =
  if n < 1 then invalid_arg "Randfixedsum.sample: n < 1";
  if lo > hi then invalid_arg "Randfixedsum.sample: lo > hi";
  let eps = 1e-9 in
  if total < (float_of_int n *. lo) -. eps
     || total > (float_of_int n *. hi) +. eps
  then
    invalid_arg
      (Printf.sprintf
         "Randfixedsum.sample: total %g infeasible for n=%d in [%g, %g]"
         total n lo hi);
  if hi -. lo < 1e-12 then Array.make n lo
  else begin
    (* Rescale so each component lies in [0, 1]. *)
    let s = (total -. (float_of_int n *. lo)) /. (hi -. lo) in
    let s = max 0.0 (min (float_of_int n) s) in
    let x =
      if n = 1 then [| s |]
      else begin
        let k = max (min (int_of_float (floor s)) (n - 1)) 0 in
        let s = max (min s (float_of_int k +. 1.0)) (float_of_int k) in
        let s1 = Array.init (n + 1) (fun i -> s -. float_of_int (k - i + 1)) in
        let s2 = Array.init (n + 1) (fun i -> float_of_int (k + n - i + 1) -. s) in
        (* s1.(i), s2.(i) valid for i = 1..n (index 0 unused). *)
        let w = Array.make_matrix (n + 1) (n + 2) 0.0 in
        let t = Array.make_matrix n (n + 1) 0.0 in
        let tiny = Float.min_float in
        let huge = Float.max_float in
        w.(1).(2) <- huge;
        for i = 2 to n do
          for j = 1 to i do
            let tmp1 = w.(i - 1).(j + 1) *. s1.(j) /. float_of_int i in
            let tmp2 = w.(i - 1).(j) *. s2.(n - i + j) /. float_of_int i in
            w.(i).(j + 1) <- tmp1 +. tmp2;
            let tmp3 = w.(i).(j + 1) +. tiny in
            if s2.(n - i + j) > s1.(j) then t.(i - 1).(j) <- tmp2 /. tmp3
            else t.(i - 1).(j) <- 1.0 -. (tmp1 /. tmp3)
          done
        done;
        let x = Array.make (n + 1) 0.0 in
        let sm = ref 0.0 and pr = ref 1.0 in
        let sloc = ref s and j = ref (k + 1) in
        for i = n - 1 downto 1 do
          let e = if Rng.float rng 1.0 <= t.(i).(!j) then 1 else 0 in
          let sx = Rng.float rng 1.0 ** (1.0 /. float_of_int i) in
          sm := !sm +. ((1.0 -. sx) *. !pr *. !sloc /. float_of_int (i + 1));
          pr := sx *. !pr;
          x.(n - i) <- !sm +. (!pr *. float_of_int e);
          sloc := !sloc -. float_of_int e;
          j := !j - e
        done;
        x.(n) <- !sm +. (!pr *. !sloc);
        Array.sub x 1 n
      end
    in
    Rng.shuffle rng x;
    let scaled = Array.map (fun v -> (v *. (hi -. lo)) +. lo) x in
    (* Clamp rounding spill and spread the residual sum error evenly. *)
    let clamped = Array.map (fun v -> max lo (min hi v)) scaled in
    let err = (total -. Array.fold_left ( +. ) 0.0 clamped) /. float_of_int n in
    Array.map (fun v -> max lo (min hi (v +. err))) clamped
  end
