(** Synthetic taskset generation per the paper's Table 3.

    Tasksets are grouped by base utilization: group [i] (0..9) draws
    its total minimum utilization [U] uniformly from
    [\[(0.01 + 0.1 i) M, (0.1 + 0.1 i) M\]]. Counts, periods and the
    security-utilization share follow Table 3; per-task utilizations
    come from {!Randfixedsum.sample}; periods are log-uniform; RT
    priorities are rate-monotonic; RT tasks are partitioned with
    best-fit and only RT-schedulable tasksets are kept (tasksets whose
    RT part cannot be partitioned are trivially unschedulable and are
    regenerated, as in Sec. 5.2.1). *)

type config = {
  n_cores : int;  (** M; the paper uses 2 and 4 *)
  rt_count : int * int;  (** inclusive range, default [3M, 10M] *)
  sec_count : int * int;  (** inclusive range, default [2M, 5M] *)
  rt_period : int * int;  (** ticks (ms), default [10, 1000] *)
  sec_period_max : int * int;  (** ticks (ms), default [1500, 3000] *)
  sec_util_share : float * float;
      (** fraction of total utilization given to security tasks at
          [T_s^max]; the paper requires "at least 30%", we draw
          uniformly from this range (default [0.30, 0.50]) *)
  util_groups : int;  (** number of base-utilization groups, default 10 *)
  ticks_per_ms : int;
      (** clock resolution: periods are drawn in milliseconds (the
          Table-3 ranges) and scaled to ticks. WCETs are rounded to at
          least one tick, so a coarse resolution inflates tiny
          utilizations; the default of 10 (0.1 ms ticks) keeps the
          total rounding error below ~1% of a core. *)
  partition_heuristic : Rtsched.Partition.heuristic;  (** default best-fit *)
  max_attempts : int;
      (** resampling budget per taskset before giving up (high groups
          can fail RT partitioning), default 200 *)
}

val default_config : n_cores:int -> config

val group_bounds : config -> int -> float * float
(** [group_bounds cfg i] is the absolute total-utilization interval of
    group [i] (0-based): [((0.01 + 0.1 i) M, (0.1 + 0.1 i) M)]. *)

type generated = {
  taskset : Rtsched.Task.taskset;
  rt_assignment : int array;  (** best-fit core of each RT task *)
  target_utilization : float;  (** the [U] the generator aimed for *)
}

val generate : config -> Rng.t -> group:int -> generated option
(** One taskset of utilization group [group]; [None] if no
    RT-schedulable taskset was found within [max_attempts]. *)

val generate_exn : config -> Rng.t -> group:int -> generated
(** Like {!generate}. @raise Failure when attempts are exhausted. *)
