module Task = Rtsched.Task
module Partition = Rtsched.Partition

type config = {
  n_cores : int;
  rt_count : int * int;
  sec_count : int * int;
  rt_period : int * int;
  sec_period_max : int * int;
  sec_util_share : float * float;
  util_groups : int;
  ticks_per_ms : int;
  partition_heuristic : Partition.heuristic;
  max_attempts : int;
}

let default_config ~n_cores =
  {
    n_cores;
    rt_count = (3 * n_cores, 10 * n_cores);
    sec_count = (2 * n_cores, 5 * n_cores);
    rt_period = (10, 1000);
    sec_period_max = (1500, 3000);
    sec_util_share = (0.30, 0.50);
    util_groups = 10;
    ticks_per_ms = 10;
    partition_heuristic = Partition.Best_fit;
    max_attempts = 200;
  }

let group_bounds cfg i =
  let m = float_of_int cfg.n_cores in
  ((0.01 +. (0.1 *. float_of_int i)) *. m, (0.1 +. (0.1 *. float_of_int i)) *. m)

type generated = {
  taskset : Task.taskset;
  rt_assignment : int array;
  target_utilization : float;
}

(* Convert a utilization into an integer WCET for a given period,
   keeping it within [1, period]. *)
let wcet_of_utilization u period =
  let c = int_of_float (Float.round (u *. float_of_int period)) in
  max 1 (min period c)

let draw_rt_tasks cfg rng ~count ~utilization =
  let utils =
    Randfixedsum.sample rng ~n:count ~total:utilization ~lo:0.0 ~hi:1.0
  in
  let lo, hi = cfg.rt_period in
  let unprioritized =
    Array.to_list utils
    |> List.mapi (fun i u ->
           let period =
             cfg.ticks_per_ms * Loguniform.sample_int rng ~lo ~hi
           in
           let wcet = wcet_of_utilization u period in
           Task.make_rt ~id:i ~prio:0 ~wcet ~period ())
  in
  (* prio=0 placeholders are replaced by the rate-monotonic order. *)
  Task.assign_rate_monotonic unprioritized

let draw_sec_tasks cfg rng ~count ~utilization =
  let utils =
    Randfixedsum.sample rng ~n:count ~total:utilization ~lo:0.0 ~hi:1.0
  in
  let lo, hi = cfg.sec_period_max in
  Array.to_list utils
  |> List.mapi (fun i u ->
         let period_max =
           cfg.ticks_per_ms * Loguniform.sample_int rng ~lo ~hi
         in
         let wcet = wcet_of_utilization u period_max in
         Task.make_sec ~id:i ~prio:i ~wcet ~period_max ())

let attempt cfg rng ~group =
  let u_lo, u_hi = group_bounds cfg group in
  let u_total = Rng.float_in rng u_lo u_hi in
  let share_lo, share_hi = cfg.sec_util_share in
  let sec_share = Rng.float_in rng share_lo share_hi in
  let u_sec = u_total *. sec_share in
  let u_rt = u_total -. u_sec in
  let n_rt = Rng.int_in rng (fst cfg.rt_count) (snd cfg.rt_count) in
  let n_sec = Rng.int_in rng (fst cfg.sec_count) (snd cfg.sec_count) in
  (* Per-task utilization cannot exceed 1; infeasible splits (total
     above the component count) cannot happen since U <= M <= counts,
     but guard anyway. *)
  if u_rt > float_of_int n_rt || u_sec > float_of_int n_sec then None
  else
    let rt = draw_rt_tasks cfg rng ~count:n_rt ~utilization:u_rt in
    let sec = draw_sec_tasks cfg rng ~count:n_sec ~utilization:u_sec in
    let taskset = Task.make_taskset ~n_cores:cfg.n_cores ~rt ~sec in
    match Partition.partition_rt ~heuristic:cfg.partition_heuristic taskset with
    | None -> None
    | Some rt_assignment ->
        Some { taskset; rt_assignment; target_utilization = u_total }

let generate cfg rng ~group =
  if group < 0 || group >= cfg.util_groups then
    invalid_arg
      (Printf.sprintf "Generator.generate: group %d not in [0, %d)" group
         cfg.util_groups);
  let rec go n = if n = 0 then None
    else
      match attempt cfg rng ~group with
      | Some g -> Some g
      | None -> go (n - 1)
  in
  go cfg.max_attempts

let generate_exn cfg rng ~group =
  match generate cfg rng ~group with
  | Some g -> g
  | None ->
      failwith
        (Printf.sprintf
           "Generator.generate_exn: no RT-schedulable taskset for group %d \
            within %d attempts"
           group cfg.max_attempts)
