(** Log-uniform sampling of task periods (paper Table 3).

    A log-uniform period distribution gives every order of magnitude in
    [\[lo, hi\]] equal probability mass — the standard choice in the
    real-time taskset-generation literature (Emberson et al.,
    WATERS'10) because it avoids the long-period bias of plain uniform
    sampling. *)

val sample : Rng.t -> lo:float -> hi:float -> float
(** [sample rng ~lo ~hi] draws [exp(U(log lo, log hi))]; requires
    [0 < lo <= hi]. *)

val sample_int : Rng.t -> lo:int -> hi:int -> int
(** Integer-valued variant: draws a real log-uniform value and rounds
    to the nearest integer, clamped into [\[lo, hi\]]. *)
