let sample rng ~lo ~hi =
  if lo <= 0.0 || lo > hi then invalid_arg "Loguniform.sample: need 0 < lo <= hi";
  exp (Rng.float_in rng (log lo) (log hi))

let sample_int rng ~lo ~hi =
  let v = sample rng ~lo:(float_of_int lo) ~hi:(float_of_int hi) in
  let r = int_of_float (Float.round v) in
  max lo (min hi r)
