lib/taskgen/generator.ml: Array Float List Loguniform Printf Randfixedsum Rng Rtsched
