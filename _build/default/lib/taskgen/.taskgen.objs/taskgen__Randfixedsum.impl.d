lib/taskgen/randfixedsum.ml: Array Float Printf Rng
