lib/taskgen/rng.ml: Array Int64
