lib/taskgen/generator.mli: Rng Rtsched
