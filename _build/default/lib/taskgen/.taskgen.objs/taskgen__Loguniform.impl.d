lib/taskgen/loguniform.ml: Float Rng
