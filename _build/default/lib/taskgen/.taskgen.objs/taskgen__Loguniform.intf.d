lib/taskgen/loguniform.mli: Rng
