lib/taskgen/randfixedsum.mli: Rng
