lib/taskgen/rng.mli:
