(** Randfixedsum — uniform sampling of n values with a fixed sum
    (Emberson, Stafford & Davis, WATERS 2010; paper Table 3).

    Generates [n] values, each in [\[lo, hi\]], whose sum is exactly
    [total], distributed uniformly over that simplex slice. This is the
    standard way to draw per-task utilizations for a target total
    utilization without the bias of normalizing independent uniforms
    (UUniFast is biased for multiprocessor ranges; Randfixedsum is
    not). *)

val sample : Rng.t -> n:int -> total:float -> lo:float -> hi:float -> float array
(** [sample rng ~n ~total ~lo ~hi] draws the vector; requires [n >= 1],
    [lo <= hi], and [n *. lo <= total <= n *. hi]. The result is
    randomly permuted (component order carries no bias) and corrected
    so the floating-point sum matches [total] to within a few ulps.
    @raise Invalid_argument if the constraints are infeasible. *)
