lib/experiments/report.mli: Buffer
