lib/experiments/fig7.mli: Format Hydra Sweep
