lib/experiments/tables.ml: Format Printf Rtsched Security Table_render Taskgen
