lib/experiments/ablation.ml: Array Fig5 Format Hydra List Option Printf Rtsched Sim Table_render Taskgen
