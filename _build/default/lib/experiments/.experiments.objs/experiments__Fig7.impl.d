lib/experiments/fig7.ml: Hydra List Option Printf Sweep Table_render
