lib/experiments/fig6.ml: Hydra List Printf Sweep Table_render
