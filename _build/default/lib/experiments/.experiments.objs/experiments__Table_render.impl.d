lib/experiments/table_render.ml: Array Float Format List Printf String
