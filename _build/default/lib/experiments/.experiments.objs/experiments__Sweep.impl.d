lib/experiments/sweep.ml: Array Hydra List Option Rtsched Taskgen
