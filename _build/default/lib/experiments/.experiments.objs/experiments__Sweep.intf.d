lib/experiments/sweep.mli: Hydra Taskgen
