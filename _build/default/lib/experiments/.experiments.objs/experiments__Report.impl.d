lib/experiments/report.ml: Ablation Buffer Fig5 Fig6 Fig7 Format List Out_channel Printf String Sweep Tables Validation
