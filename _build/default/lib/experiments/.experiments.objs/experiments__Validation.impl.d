lib/experiments/validation.ml: Array Format Hydra List Option Rtsched Sim Taskgen
