lib/experiments/table_render.mli: Format
