lib/experiments/dat_export.ml: Buffer Fig5 Fig6 Fig7 Filename Float Hydra List Out_channel Printf String Sys
