lib/experiments/fig5.ml: Array Format Hydra List Option Printf Rtsched Security Sim String Table_render Taskgen
