lib/experiments/validation.mli: Format Hydra Taskgen
