lib/experiments/tables.mli: Format Taskgen
