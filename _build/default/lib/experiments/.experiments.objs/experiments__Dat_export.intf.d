lib/experiments/dat_export.mli: Fig5 Fig6 Fig7
