let ensure_dir dir =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Dat_export: %s is not a directory" dir)

let write dir name lines =
  ensure_dir dir;
  let path = Filename.concat dir name in
  Out_channel.with_open_text path (fun oc ->
      List.iter
        (fun line ->
          Out_channel.output_string oc line;
          Out_channel.output_char oc '\n')
        lines);
  path

let num v = if Float.is_nan v then "nan" else Printf.sprintf "%.6f" v

let fig5 ~dir (r : Fig5.report) =
  let deployment =
    match r.Fig5.deployment with Fig5.Tmax -> "tmax" | Fig5.Adapted -> "adapted"
  in
  let row (s : Fig5.scheme_report) =
    Printf.sprintf "%-8s %s %s %s %s" s.Fig5.label
      (num s.Fig5.mean_detect_tripwire)
      (num s.Fig5.mean_detect_kmod)
      (num s.Fig5.mean_context_switches)
      (num s.Fig5.mean_migrations)
  in
  write dir
    (Printf.sprintf "fig5_%s.dat" deployment)
    ([ "# scheme detect_tripwire_ms detect_kmod_ms context_switches \
        migrations" ]
    @ [ row r.Fig5.hydra_c; row r.Fig5.hydra ])

let fig6 ~dir (f : Fig6.t) =
  let rows =
    List.map
      (fun (p : Fig6.point) ->
        Printf.sprintf "%s %s %d" (num p.Fig6.norm_util) (num p.Fig6.distance)
          p.Fig6.schedulable)
      f.Fig6.points
  in
  write dir
    (Printf.sprintf "fig6_m%d.dat" f.Fig6.n_cores)
    ("# norm_util distance n_schedulable" :: rows)

let fig7a ~dir (f : Fig7.t) =
  let header =
    "# norm_util "
    ^ String.concat " "
        (List.map
           (fun s ->
             String.map
               (function ' ' -> '_' | c -> c)
               (Hydra.Scheme.name s))
           f.Fig7.schemes)
  in
  let rows =
    List.map
      (fun (p : Fig7.point_a) ->
        String.concat " "
          (num p.Fig7.a_norm_util
          :: List.map (fun (_, v) -> num v) p.Fig7.a_ratios))
      f.Fig7.points_a
  in
  write dir (Printf.sprintf "fig7a_m%d.dat" f.Fig7.n_cores) (header :: rows)

let fig7b ~dir (f : Fig7.t) =
  let rows =
    List.map
      (fun (p : Fig7.point_b) ->
        Printf.sprintf "%s %s %d %s %d" (num p.Fig7.b_norm_util)
          (num p.Fig7.b_vs_hydra) p.Fig7.b_vs_hydra_n (num p.Fig7.b_vs_tmax)
          p.Fig7.b_vs_tmax_n)
      f.Fig7.points_b
  in
  write dir
    (Printf.sprintf "fig7b_m%d.dat" f.Fig7.n_cores)
    ("# norm_util vs_hydra n vs_tmax n" :: rows)

let gnuplot_script ~dir ~cores =
  let buf = Buffer.create 1024 in
  let add line = Buffer.add_string buf line; Buffer.add_char buf '\n' in
  add "# gnuplot script regenerating the paper's figures from the .dat";
  add "# files exported by `hydra-experiments ... --dat-dir`.";
  add "set terminal pngcairo size 900,600";
  add "set key top right";
  add "";
  add "set output 'fig6.png'";
  add "set xlabel 'U/M'";
  add "set ylabel 'normalized period distance to T_max'";
  add
    ("plot "
    ^ String.concat ", "
        (List.map
           (fun m ->
             Printf.sprintf
               "'fig6_m%d.dat' using 1:2 with linespoints title 'M=%d'" m m)
           cores));
  add "";
  List.iter
    (fun m ->
      add (Printf.sprintf "set output 'fig7a_m%d.png'" m);
      add "set ylabel 'acceptance ratio'";
      add
        (Printf.sprintf
           "plot 'fig7a_m%d.dat' using 1:2 with linespoints title 'HYDRA-C', \
            '' using 1:3 with linespoints title 'HYDRA', '' using 1:4 with \
            linespoints title 'HYDRA-TMax', '' using 1:5 with linespoints \
            title 'GLOBAL-TMax'"
           m);
      add "";
      add (Printf.sprintf "set output 'fig7b_m%d.png'" m);
      add "set ylabel 'mean period difference'";
      add
        (Printf.sprintf
           "plot 'fig7b_m%d.dat' using 1:2 with linespoints title 'vs \
            HYDRA', '' using 1:4 with linespoints title 'vs TMax'"
           m);
      add "")
    cores;
  write dir "plots.gp" (String.split_on_char '\n' (Buffer.contents buf))
