(** Fig. 7a (acceptance ratio per scheme vs U/M) and Fig. 7b (mean
    signed normalized period difference between HYDRA-C and the other
    schemes vs U/M). Both derive from one {!Sweep.t}.

    Fig. 7b conventions: for "HYDRA-C vs HYDRA" the mean is over
    tasksets both schemes schedule; for "HYDRA-C vs TMax" (the paper
    groups GLOBAL-TMax and HYDRA-TMax into one curve since both pin
    periods at the bounds) the comparison vector is the bound vector
    itself, over tasksets where HYDRA-C and at least one TMax scheme
    are schedulable. Positive values mean HYDRA-C's periods are
    shorter. *)

type point_a = {
  a_norm_util : float;
  a_ratios : (Hydra.Scheme.t * float) list;  (** acceptance per scheme *)
  a_total : int;  (** tasksets in the group *)
}

type point_b = {
  b_norm_util : float;
  b_vs_hydra : float;  (** [nan] when no taskset qualifies *)
  b_vs_hydra_n : int;
  b_vs_tmax : float;
  b_vs_tmax_n : int;
}

type t = {
  n_cores : int;
  schemes : Hydra.Scheme.t list;
  points_a : point_a list;
  points_b : point_b list;
}

val of_sweep : Sweep.t -> t
val render_a : Format.formatter -> t -> unit
val render_b : Format.formatter -> t -> unit
