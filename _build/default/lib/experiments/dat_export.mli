(** Gnuplot-friendly data export: every figure harness can dump its
    series as whitespace-separated `.dat` files plus a ready-to-run
    `plots.gp` script, so the paper's figures can be re-plotted from a
    full-scale run ([hydra-experiments ... --dat-dir DIR]). *)

val fig5 : dir:string -> Fig5.report -> string
(** Writes [fig5_<deployment>.dat] (one row per scheme: label, mean
    detection latencies, context switches, migrations) and returns the
    path. *)

val fig6 : dir:string -> Fig6.t -> string
(** Writes [fig6_m<cores>.dat]: U/M, distance, n. *)

val fig7a : dir:string -> Fig7.t -> string
(** Writes [fig7a_m<cores>.dat]: U/M plus one acceptance column per
    scheme (column order = header comment). *)

val fig7b : dir:string -> Fig7.t -> string
(** Writes [fig7b_m<cores>.dat]: U/M, vs-HYDRA diff, n, vs-TMax diff,
    n (missing points as "nan"). *)

val gnuplot_script : dir:string -> cores:int list -> string
(** Writes [plots.gp] rendering Figs. 5-7 from the exported files to
    PNG, and returns its path. *)
