let rtrim s =
  let n = ref (String.length s) in
  while !n > 0 && s.[!n - 1] = ' ' do decr n done;
  String.sub s 0 !n

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

let table ppf ~title ~header ~rows =
  let all = header :: rows in
  let n_cols = List.fold_left (fun acc r -> max acc (List.length r)) 0 all in
  let widths = Array.make n_cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let render_row row =
    row
    |> List.mapi (fun i cell -> pad widths.(i) cell)
    |> String.concat "  " |> rtrim
  in
  let rule =
    String.concat "--"
      (Array.to_list (Array.map (fun w -> String.make w '-') widths))
  in
  Format.fprintf ppf "@.%s@.%s@.%s@." title (render_row header) rule;
  List.iter (fun row -> Format.fprintf ppf "%s@." (render_row row)) rows

let float_cell v = if Float.is_nan v then "-" else Printf.sprintf "%.4f" v

let pct v = Printf.sprintf "%.2f%%" v

let series ppf ~title ~x_label ~columns ~rows =
  let header = x_label :: columns in
  let render (x, ys) =
    float_cell x
    :: List.map (function Some y -> float_cell y | None -> "-") ys
  in
  table ppf ~title ~header ~rows:(List.map render rows)
