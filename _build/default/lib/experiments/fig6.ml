type point = {
  norm_util : float;
  distance : float;
  schedulable : int;
}

type t = { n_cores : int; points : point list }

let point_of_group records =
  let distances =
    List.filter_map
      (fun r ->
        match Sweep.schedulable_periods r ~scheme:Hydra.Scheme.Hydra_c with
        | None -> None
        | Some periods ->
            Some
              (Hydra.Metrics.normalized_distance_to_bound ~periods
                 ~bounds:r.Sweep.bounds))
      records
  in
  { norm_util = Sweep.mean_norm_util records;
    distance = Hydra.Metrics.mean distances;
    schedulable = List.length distances }

let of_sweep (sweep : Sweep.t) =
  let groups =
    List.sort_uniq compare (List.map (fun r -> r.Sweep.group) sweep.records)
  in
  let points =
    List.filter_map
      (fun group ->
        match Sweep.group_records sweep ~group with
        | [] -> None
        | records -> Some (point_of_group records))
      groups
  in
  { n_cores = sweep.n_cores; points }

let render ppf t =
  let rows =
    List.map
      (fun p ->
        (p.norm_util, [ Some p.distance; Some (float_of_int p.schedulable) ]))
      t.points
  in
  Table_render.series ppf
    ~title:
      (Printf.sprintf
         "Fig. 6 (M=%d): period distance to bound vs normalized utilization"
         t.n_cores)
    ~x_label:"U/M" ~columns:[ "distance"; "n_sched" ] ~rows
