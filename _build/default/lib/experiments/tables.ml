module Generator = Taskgen.Generator

let render_table1 ppf () = Security.Catalog.pp_table ppf ()
let render_table2 ppf () = Security.Rover.pp_table2 ppf ()

let range (lo, hi) = Printf.sprintf "[%d, %d]" lo hi

let render_table3 ppf (cfg : Generator.config) =
  let frac_lo, frac_hi = cfg.sec_util_share in
  Table_render.table ppf
    ~title:(Printf.sprintf "Table 3: Simulation Parameters (M=%d)" cfg.n_cores)
    ~header:[ "Parameter"; "Values" ]
    ~rows:
      [ [ "Processor cores, M"; string_of_int cfg.n_cores ];
        [ "Number of real-time tasks, N_R"; range cfg.rt_count ];
        [ "Number of security tasks, N_S"; range cfg.sec_count ];
        [ "Period distribution (RT and security)"; "Log-uniform" ];
        [ "RT task allocation";
          Rtsched.Partition.heuristic_name cfg.partition_heuristic ];
        [ "RT task period, T_r (ms)"; range cfg.rt_period ];
        [ "Max period for security tasks, T_s^max (ms)";
          range cfg.sec_period_max ];
        [ "Utilization share of security tasks";
          Printf.sprintf "[%.2f, %.2f] of system U" frac_lo frac_hi ];
        [ "Base utilization groups"; string_of_int cfg.util_groups ] ]

let render_all ppf () =
  render_table1 ppf ();
  render_table2 ppf ();
  Format.pp_print_newline ppf ();
  render_table3 ppf (Generator.default_config ~n_cores:2);
  render_table3 ppf (Generator.default_config ~n_cores:4)
