(** Renders the paper's three tables: Table 1 (security task catalog),
    Table 2 (evaluation platform) and Table 3 (simulation
    parameters). *)

val render_table1 : Format.formatter -> unit -> unit
val render_table2 : Format.formatter -> unit -> unit

val render_table3 : Format.formatter -> Taskgen.Generator.config -> unit
(** Renders the generator configuration in Table 3's layout. *)

val render_all : Format.formatter -> unit -> unit
(** All three, with Table 3 at its defaults for M = 2 and 4. *)
