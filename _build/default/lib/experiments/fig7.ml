module Scheme = Hydra.Scheme

type point_a = {
  a_norm_util : float;
  a_ratios : (Scheme.t * float) list;
  a_total : int;
}

type point_b = {
  b_norm_util : float;
  b_vs_hydra : float;
  b_vs_hydra_n : int;
  b_vs_tmax : float;
  b_vs_tmax_n : int;
}

type t = {
  n_cores : int;
  schemes : Scheme.t list;
  points_a : point_a list;
  points_b : point_b list;
}

let schemes_of_sweep (sweep : Sweep.t) =
  match sweep.records with
  | [] -> Scheme.all
  | r :: _ -> List.map fst r.Sweep.outcomes

let point_a_of_group schemes records =
  { a_norm_util = Sweep.mean_norm_util records;
    a_ratios =
      List.map (fun s -> (s, Sweep.acceptance records ~scheme:s)) schemes;
    a_total = List.length records }

(* Signed mean normalized period difference of HYDRA-C vs a reference
   vector, collected over the records where [reference] yields one. *)
let differences records reference =
  List.filter_map
    (fun r ->
      match Sweep.schedulable_periods r ~scheme:Scheme.Hydra_c with
      | None -> None
      | Some ours -> (
          match reference r with
          | None -> None
          | Some other ->
              Some
                (Hydra.Metrics.mean_normalized_difference ~ours ~other
                   ~bounds:r.Sweep.bounds)))
    records

let point_b_of_group records =
  let vs_hydra =
    differences records (fun r ->
        Sweep.schedulable_periods r ~scheme:Scheme.Hydra)
  in
  let tmax_reference r =
    let ok scheme =
      Option.is_some (Sweep.schedulable_periods r ~scheme)
    in
    if ok Scheme.Hydra_tmax || ok Scheme.Global_tmax then
      Some r.Sweep.bounds
    else None
  in
  let vs_tmax = differences records tmax_reference in
  { b_norm_util = Sweep.mean_norm_util records;
    b_vs_hydra = Hydra.Metrics.mean vs_hydra;
    b_vs_hydra_n = List.length vs_hydra;
    b_vs_tmax = Hydra.Metrics.mean vs_tmax;
    b_vs_tmax_n = List.length vs_tmax }

let of_sweep (sweep : Sweep.t) =
  let schemes = schemes_of_sweep sweep in
  let groups =
    List.sort_uniq compare (List.map (fun r -> r.Sweep.group) sweep.records)
  in
  let per_group f =
    List.filter_map
      (fun group ->
        match Sweep.group_records sweep ~group with
        | [] -> None
        | records -> Some (f records))
      groups
  in
  { n_cores = sweep.n_cores; schemes;
    points_a = per_group (point_a_of_group schemes);
    points_b = per_group point_b_of_group }

let render_a ppf t =
  let columns = List.map Scheme.name t.schemes in
  let rows =
    List.map
      (fun p ->
        (p.a_norm_util, List.map (fun (_, v) -> Some v) p.a_ratios))
      t.points_a
  in
  Table_render.series ppf
    ~title:
      (Printf.sprintf "Fig. 7a (M=%d): acceptance ratio vs normalized \
                       utilization" t.n_cores)
    ~x_label:"U/M" ~columns ~rows

let render_b ppf t =
  let rows =
    List.map
      (fun p ->
        ( p.b_norm_util,
          [ Some p.b_vs_hydra; Some (float_of_int p.b_vs_hydra_n);
            Some p.b_vs_tmax; Some (float_of_int p.b_vs_tmax_n) ] ))
      t.points_b
  in
  Table_render.series ppf
    ~title:
      (Printf.sprintf "Fig. 7b (M=%d): mean period difference (HYDRA-C \
                       shorter when positive)" t.n_cores)
    ~x_label:"U/M"
    ~columns:[ "vs HYDRA"; "n"; "vs TMax"; "n" ]
    ~rows
