(** Plain-text rendering of experiment results: fixed-width tables and
    (x, y) series in the gnuplot-friendly "x y1 y2 ..." form used by
    EXPERIMENTS.md. *)

val table :
  Format.formatter -> title:string -> header:string list ->
  rows:string list list -> unit
(** Renders a column-aligned table with a title and a rule. *)

val series :
  Format.formatter -> title:string -> x_label:string ->
  columns:string list -> rows:(float * float option list) list -> unit
(** Renders one x column plus one column per series; missing points
    print as "-". Floats use 4 decimals. *)

val float_cell : float -> string
(** 4-decimal rendering with NaN as "-". *)

val pct : float -> string
(** Percentage with 2 decimals, e.g. [19.05%]. *)
