(** Fig. 6: how much faster than the designer bound can security tasks
    run? For each base-utilization group, the mean normalized
    Euclidean distance between HYDRA-C's selected period vector and
    the bound vector, over the tasksets HYDRA-C schedules. Larger is
    better (more frequent monitoring); the curve falls as U/M grows. *)

type point = {
  norm_util : float;  (** mean U/M of the group's tasksets *)
  distance : float;  (** mean Fig. 6 metric; [nan] if nothing schedulable *)
  schedulable : int;  (** tasksets contributing to the mean *)
}

type t = { n_cores : int; points : point list }

val of_sweep : Sweep.t -> t
(** Aggregates a sweep (group order preserved). *)

val render : Format.formatter -> t -> unit
