(** Plain-text taskset files, so users can run the analyses on their
    own systems without writing OCaml.

    Format (line oriented; [#] starts a comment; blank lines ignored):

    {v
    cores 2
    # rt  <name> <wcet> <period> [deadline]     (times in ticks/ms)
    rt  navigation 240 500
    rt  camera 1120 5000 5000
    # sec <name> <wcet> <period_max>
    sec tripwire 5342 10000
    sec kmod-checker 223 10000
    v}

    RT priorities are assigned rate-monotonically (the paper's
    assumption); security priorities follow file order (first line =
    highest), matching "designer-provided distinct priorities". Ids
    are assigned in file order within each class. *)

val parse : string -> (Task.taskset, string) result
(** Parses file content. The error string names the offending line. *)

val load : string -> (Task.taskset, string) result
(** Reads and parses a file ([Error] also covers I/O failures). *)

val to_string : Task.taskset -> string
(** Renders a taskset in the same format ([parse (to_string ts)]
    round-trips the parameters). *)

val save : string -> Task.taskset -> unit
(** Writes [to_string] to a file. @raise Sys_error on I/O failure. *)
