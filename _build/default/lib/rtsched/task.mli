(** Task and platform model.

    All times are integer clock ticks (the paper assumes every event
    happens at integer tick precision; we use 1 tick = 1 ms in the
    experiments). Priorities are integers where a {e smaller} value
    means a {e higher} priority. Real-time (RT) tasks always occupy a
    strictly higher priority band than security tasks — the framework's
    fundamental invariant (security tasks execute opportunistically in
    slack only). *)

type time = int
(** A duration or instant in integer clock ticks. *)

type rt_task = {
  rt_id : int;  (** unique index within the taskset *)
  rt_name : string;
  rt_wcet : time;  (** worst-case execution time [C_r > 0] *)
  rt_period : time;  (** minimum inter-arrival time [T_r > 0] *)
  rt_deadline : time;  (** constrained relative deadline [D_r <= T_r] *)
  rt_prio : int;  (** priority, unique among RT tasks; smaller = higher *)
}
(** A periodic/sporadic real-time task [(C_r, T_r, D_r)] (Sec. 2.1). *)

type sec_task = {
  sec_id : int;  (** unique index within the security taskset *)
  sec_name : string;
  sec_wcet : time;  (** worst-case execution time [C_s > 0] *)
  sec_period_max : time;
      (** designer-provided period upper bound [T_s^max]; monitoring is
          deemed ineffective beyond this inter-invocation time *)
  sec_prio : int;  (** priority, unique among security tasks *)
}
(** A security monitoring task [(C_s, T_s, T_s^max)] with implicit
    deadline and an initially unknown period (Sec. 3). *)

type taskset = {
  n_cores : int;  (** number of identical cores [M >= 1] *)
  rt : rt_task array;  (** RT tasks, any order *)
  sec : sec_task array;  (** security tasks, any order *)
}
(** A complete system: platform plus both task classes. *)

exception Invalid_task of string
(** Raised by the [make_*] smart constructors on parameter violations. *)

val make_rt :
  ?name:string -> ?deadline:time -> id:int -> prio:int -> wcet:time ->
  period:time -> unit -> rt_task
(** [make_rt ~id ~prio ~wcet ~period ()] builds an RT task, checking
    [wcet >= 1], [period >= wcet] and [wcet <= deadline <= period].
    [deadline] defaults to [period] (implicit deadline).
    @raise Invalid_task on violation. *)

val make_sec :
  ?name:string -> id:int -> prio:int -> wcet:time -> period_max:time ->
  unit -> sec_task
(** [make_sec ~id ~prio ~wcet ~period_max ()] builds a security task,
    checking [wcet >= 1] and [period_max >= wcet].
    @raise Invalid_task on violation. *)

val make_taskset :
  n_cores:int -> rt:rt_task list -> sec:sec_task list -> taskset
(** Builds a taskset, checking [n_cores >= 1], uniqueness of ids and of
    priorities within each class. @raise Invalid_task on violation. *)

val rt_utilization : rt_task -> float
(** [C_r / T_r]. *)

val sec_utilization_at : sec_task -> time -> float
(** [sec_utilization_at s t] is [C_s / t] — the utilization the task
    would have if assigned period [t]. *)

val sec_min_utilization : sec_task -> float
(** Utilization at the maximum period, [C_s / T_s^max] — the least
    utilization the task can ever impose. *)

val total_rt_utilization : taskset -> float
(** Sum of RT task utilizations. *)

val total_min_utilization : taskset -> float
(** The paper's [U]: RT utilization plus security utilization with all
    periods at [T_s^max] (Sec. 5.2.2). *)

val normalized_utilization : taskset -> float
(** [U / M] — x-axis of Figs. 6 and 7. *)

val sort_rt_by_priority : rt_task array -> rt_task array
(** Fresh array sorted by ascending priority value (highest first). *)

val sort_sec_by_priority : sec_task array -> sec_task array
(** Fresh array sorted by ascending priority value (highest first). *)

val assign_rate_monotonic : rt_task list -> rt_task list
(** Reassigns RT priorities in rate-monotonic order (shorter period =
    higher priority), breaking period ties by id. Returns fresh tasks
    numbered with priorities [0, 1, ...]. *)

val pp_rt : Format.formatter -> rt_task -> unit
val pp_sec : Format.formatter -> sec_task -> unit
val pp_taskset : Format.formatter -> taskset -> unit

val show_rt : rt_task -> string
val show_sec : sec_task -> string
