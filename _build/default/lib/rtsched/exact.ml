type verdict =
  | Schedulable of int list
  | Unschedulable of int
  | Hyperperiod_too_large

let rec gcd a b = if b = 0 then a else gcd b (a mod b)

let lcm_periods tasks =
  List.fold_left
    (fun acc (t : Task.rt_task) ->
      let p = t.Task.rt_period in
      acc / gcd acc p * p)
    1 tasks

(* Deliberately naive tick-by-tick simulation: at every tick run the
   highest-priority task with pending work. O(hyperperiod x n), which
   is exactly why it is only an oracle for tests. *)
let simulate ?(max_hyperperiod = 1_000_000) tasks =
  let hyper = lcm_periods tasks in
  if hyper > max_hyperperiod || hyper <= 0 then Hyperperiod_too_large
  else begin
    let by_prio =
      List.sort
        (fun (a : Task.rt_task) b -> compare a.Task.rt_prio b.Task.rt_prio)
        tasks
      |> Array.of_list
    in
    let n = Array.length by_prio in
    let remaining = Array.make n 0 in
    let released_at = Array.make n 0 in
    let worst = Array.make n 0 in
    let miss = ref None in
    let t = ref 0 in
    while !miss = None && !t < hyper do
      (* releases *)
      for i = 0 to n - 1 do
        let task = by_prio.(i) in
        if !t mod task.Task.rt_period = 0 then begin
          if remaining.(i) > 0 then miss := Some task.Task.rt_id;
          remaining.(i) <- task.Task.rt_wcet;
          released_at.(i) <- !t
        end
      done;
      (* deadline checks before executing this tick *)
      for i = 0 to n - 1 do
        let task = by_prio.(i) in
        if remaining.(i) > 0 && !t >= released_at.(i) + task.Task.rt_deadline
        then
          match !miss with
          | None -> miss := Some task.Task.rt_id
          | Some _ -> ()
      done;
      (* run the highest-priority pending task for one tick *)
      (let rec dispatch i =
         if i < n then
           if remaining.(i) > 0 then begin
             remaining.(i) <- remaining.(i) - 1;
             if remaining.(i) = 0 then begin
               let resp = !t + 1 - released_at.(i) in
               if resp > worst.(i) then worst.(i) <- resp;
               if resp > by_prio.(i).Task.rt_deadline then
                 miss := Some by_prio.(i).Task.rt_id
             end
           end
           else dispatch (i + 1)
       in
       dispatch 0);
      incr t
    done;
    (* any job still pending at the hyperperiod boundary would re-release *)
    (match !miss with
    | None ->
        for i = 0 to n - 1 do
          if remaining.(i) > 0 then miss := Some by_prio.(i).Task.rt_id
        done
    | Some _ -> ());
    match !miss with
    | Some id -> Unschedulable id
    | None ->
        (* report worst responses in the caller's task order *)
        let worst_of id =
          let rec find i =
            if by_prio.(i).Task.rt_id = id then worst.(i) else find (i + 1)
          in
          find 0
        in
        Schedulable (List.map (fun (t : Task.rt_task) -> worst_of t.Task.rt_id) tasks)
  end

let schedulable ?max_hyperperiod tasks =
  match simulate ?max_hyperperiod tasks with
  | Schedulable _ -> Some true
  | Unschedulable _ -> Some false
  | Hyperperiod_too_large -> None
