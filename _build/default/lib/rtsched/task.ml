type time = int

type rt_task = {
  rt_id : int;
  rt_name : string;
  rt_wcet : time;
  rt_period : time;
  rt_deadline : time;
  rt_prio : int;
}

type sec_task = {
  sec_id : int;
  sec_name : string;
  sec_wcet : time;
  sec_period_max : time;
  sec_prio : int;
}

type taskset = {
  n_cores : int;
  rt : rt_task array;
  sec : sec_task array;
}

exception Invalid_task of string

let invalid fmt = Format.kasprintf (fun s -> raise (Invalid_task s)) fmt

let make_rt ?name ?deadline ~id ~prio ~wcet ~period () =
  let deadline = Option.value deadline ~default:period in
  let name = Option.value name ~default:(Printf.sprintf "rt%d" id) in
  if wcet < 1 then invalid "rt task %s: wcet %d < 1" name wcet;
  if deadline < wcet then
    invalid "rt task %s: deadline %d < wcet %d" name deadline wcet;
  if period < deadline then
    invalid "rt task %s: period %d < deadline %d (constrained deadlines)"
      name period deadline;
  { rt_id = id; rt_name = name; rt_wcet = wcet; rt_period = period;
    rt_deadline = deadline; rt_prio = prio }

let make_sec ?name ~id ~prio ~wcet ~period_max () =
  let name = Option.value name ~default:(Printf.sprintf "sec%d" id) in
  if wcet < 1 then invalid "security task %s: wcet %d < 1" name wcet;
  if period_max < wcet then
    invalid "security task %s: period_max %d < wcet %d" name period_max wcet;
  { sec_id = id; sec_name = name; sec_wcet = wcet;
    sec_period_max = period_max; sec_prio = prio }

let check_unique what proj xs =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let k = proj x in
      if Hashtbl.mem tbl k then invalid "duplicate %s %d in taskset" what k;
      Hashtbl.add tbl k ())
    xs

let make_taskset ~n_cores ~rt ~sec =
  if n_cores < 1 then invalid "taskset: n_cores %d < 1" n_cores;
  check_unique "rt id" (fun t -> t.rt_id) rt;
  check_unique "rt priority" (fun t -> t.rt_prio) rt;
  check_unique "security id" (fun t -> t.sec_id) sec;
  check_unique "security priority" (fun t -> t.sec_prio) sec;
  { n_cores; rt = Array.of_list rt; sec = Array.of_list sec }

let rt_utilization t = float_of_int t.rt_wcet /. float_of_int t.rt_period

let sec_utilization_at s period =
  float_of_int s.sec_wcet /. float_of_int period

let sec_min_utilization s = sec_utilization_at s s.sec_period_max

let total_rt_utilization ts =
  Array.fold_left (fun acc t -> acc +. rt_utilization t) 0.0 ts.rt

let total_min_utilization ts =
  Array.fold_left (fun acc s -> acc +. sec_min_utilization s)
    (total_rt_utilization ts) ts.sec

let normalized_utilization ts =
  total_min_utilization ts /. float_of_int ts.n_cores

let sort_by cmp a =
  let b = Array.copy a in
  Array.sort cmp b;
  b

let sort_rt_by_priority a =
  sort_by (fun x y -> compare x.rt_prio y.rt_prio) a

let sort_sec_by_priority a =
  sort_by (fun x y -> compare x.sec_prio y.sec_prio) a

let assign_rate_monotonic tasks =
  let by_period =
    List.sort
      (fun a b ->
        match compare a.rt_period b.rt_period with
        | 0 -> compare a.rt_id b.rt_id
        | c -> c)
      tasks
  in
  List.mapi (fun i t -> { t with rt_prio = i }) by_period

let pp_rt ppf t =
  Format.fprintf ppf "@[<h>%s(id=%d prio=%d C=%d T=%d D=%d)@]" t.rt_name
    t.rt_id t.rt_prio t.rt_wcet t.rt_period t.rt_deadline

let pp_sec ppf s =
  Format.fprintf ppf "@[<h>%s(id=%d prio=%d C=%d Tmax=%d)@]" s.sec_name
    s.sec_id s.sec_prio s.sec_wcet s.sec_period_max

let pp_taskset ppf ts =
  Format.fprintf ppf "@[<v 2>taskset M=%d U=%.4f:@ " ts.n_cores
    (total_min_utilization ts);
  Array.iter (fun t -> Format.fprintf ppf "%a@ " pp_rt t) ts.rt;
  Array.iter (fun s -> Format.fprintf ppf "%a@ " pp_sec s) ts.sec;
  Format.fprintf ppf "@]"

let show_rt t = Format.asprintf "%a" pp_rt t
let show_sec s = Format.asprintf "%a" pp_sec s
