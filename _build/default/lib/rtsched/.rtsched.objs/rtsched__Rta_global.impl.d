lib/rtsched/rta_global.ml: Array List Option Task Workload
