lib/rtsched/task.ml: Array Format Hashtbl List Option Printf
