lib/rtsched/taskset_io.mli: Task
