lib/rtsched/taskset_io.ml: Array Buffer In_channel List Out_channel Printf Result String Task
