lib/rtsched/exact.mli: Task
