lib/rtsched/exact.ml: Array List Task
