lib/rtsched/rta_global.mli: Task
