lib/rtsched/workload.mli: Task
