lib/rtsched/partition.ml: Array Format List Rta_uniproc Task
