lib/rtsched/task.mli: Format
