lib/rtsched/rta_uniproc.mli: Task
