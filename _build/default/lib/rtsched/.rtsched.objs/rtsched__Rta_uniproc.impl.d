lib/rtsched/rta_uniproc.ml: Array List Option Task Workload
