lib/rtsched/partition.mli: Format Task
