lib/rtsched/workload.ml: List Task
