(** Partitioning heuristics for RT tasks (paper Sec. 2.1 / Table 3).

    Tasks are considered in decreasing-utilization order and placed on
    a core only if the exact per-core time-demand analysis (Eq. 1)
    still admits every task already on that core. The paper uses
    best-fit; first-fit and worst-fit are provided for the partitioning
    ablation (experiment X2 in DESIGN.md). *)

type heuristic =
  | Best_fit  (** feasible core with the highest current utilization *)
  | First_fit  (** feasible core with the lowest index *)
  | Worst_fit  (** feasible core with the lowest current utilization *)

val pp_heuristic : Format.formatter -> heuristic -> unit
val heuristic_name : heuristic -> string

val partition_rt :
  ?heuristic:heuristic -> Task.taskset -> int array option
(** [partition_rt ts] assigns every RT task of [ts] to a core such that
    each core passes exact TDA, returning [assignment] with
    [assignment.(i)] the core of [ts.rt.(i)], or [None] if the
    heuristic fails to place some task. Default heuristic is
    [Best_fit]. *)

val cores_of_assignment :
  Task.taskset -> int array -> Task.rt_task list array
(** Per-core RT task lists (index = core) for a given assignment. *)
