let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
  |> List.filter (fun t -> t <> "")

type raw_rt = { rname : string; rwcet : int; rperiod : int; rdeadline : int }
type raw_sec = { sname : string; swcet : int; sbound : int }

let parse content =
  let error lineno msg =
    Error (Printf.sprintf "line %d: %s" lineno msg)
  in
  let int_of lineno what s =
    match int_of_string_opt s with
    | Some v -> Ok v
    | None -> error lineno (Printf.sprintf "%s: not an integer (%S)" what s)
  in
  let ( let* ) = Result.bind in
  let lines = String.split_on_char '\n' content in
  let rec go lineno cores rts secs = function
    | [] -> Ok (cores, List.rev rts, List.rev secs)
    | line :: rest -> (
        match tokens (strip_comment line) with
        | [] -> go (lineno + 1) cores rts secs rest
        | [ "cores"; m ] ->
            let* m = int_of lineno "cores" m in
            if m < 1 then error lineno "cores must be >= 1"
            else go (lineno + 1) (Some m) rts secs rest
        | "rt" :: name :: wcet :: period :: maybe_deadline ->
            let* wcet = int_of lineno "wcet" wcet in
            let* period = int_of lineno "period" period in
            let* deadline =
              match maybe_deadline with
              | [] -> Ok period
              | [ d ] -> int_of lineno "deadline" d
              | _ -> error lineno "too many fields for rt"
            in
            go (lineno + 1) cores
              ({ rname = name; rwcet = wcet; rperiod = period;
                 rdeadline = deadline } :: rts)
              secs rest
        | [ "sec"; name; wcet; bound ] ->
            let* wcet = int_of lineno "wcet" wcet in
            let* bound = int_of lineno "period_max" bound in
            go (lineno + 1) cores rts
              ({ sname = name; swcet = wcet; sbound = bound } :: secs)
              rest
        | word :: _ ->
            error lineno (Printf.sprintf "unrecognized directive %S" word))
  in
  let* cores, rts, secs = go 1 None [] [] lines in
  match cores with
  | None -> Error "missing 'cores <M>' directive"
  | Some n_cores -> (
      try
        let rt =
          List.mapi
            (fun i r ->
              Task.make_rt ~name:r.rname ~deadline:r.rdeadline ~id:i ~prio:0
                ~wcet:r.rwcet ~period:r.rperiod ())
            rts
          |> Task.assign_rate_monotonic
        in
        let sec =
          List.mapi
            (fun i s ->
              Task.make_sec ~name:s.sname ~id:i ~prio:i ~wcet:s.swcet
                ~period_max:s.sbound ())
            secs
        in
        Ok (Task.make_taskset ~n_cores ~rt ~sec)
      with Task.Invalid_task msg -> Error msg)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | content -> parse content
  | exception Sys_error msg -> Error msg

let to_string (ts : Task.taskset) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "cores %d\n" ts.Task.n_cores);
  Buffer.add_string buf "# rt <name> <wcet> <period> [deadline]\n";
  (* emit in id order = original file order *)
  let rt = Array.copy ts.Task.rt in
  Array.sort (fun (a : Task.rt_task) b -> compare a.Task.rt_id b.Task.rt_id) rt;
  Array.iter
    (fun (t : Task.rt_task) ->
      if t.Task.rt_deadline = t.Task.rt_period then
        Buffer.add_string buf
          (Printf.sprintf "rt %s %d %d\n" t.Task.rt_name t.Task.rt_wcet
             t.Task.rt_period)
      else
        Buffer.add_string buf
          (Printf.sprintf "rt %s %d %d %d\n" t.Task.rt_name t.Task.rt_wcet
             t.Task.rt_period t.Task.rt_deadline))
    rt;
  Buffer.add_string buf "# sec <name> <wcet> <period_max>\n";
  let sec = Task.sort_sec_by_priority ts.Task.sec in
  Array.iter
    (fun (s : Task.sec_task) ->
      Buffer.add_string buf
        (Printf.sprintf "sec %s %d %d\n" s.Task.sec_name s.Task.sec_wcet
           s.Task.sec_period_max))
    sec;
  Buffer.contents buf

let save path ts =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string ts))
