(** Exact uniprocessor schedulability by hyperperiod simulation.

    For synchronous periodic tasks with constrained deadlines under
    preemptive fixed-priority scheduling, simulating one hyperperiod
    from the synchronous release decides schedulability exactly (the
    critical instant is at time 0 and the schedule repeats). This
    module is an {e independent} oracle — a deliberately naive
    tick-by-tick simulator with no code shared with {!Rta_uniproc} or
    the event-driven {!Sim} engine — used for differential testing:
    the time-demand analysis must agree with it wherever the
    hyperperiod is tractable. *)

type verdict =
  | Schedulable of int list
      (** worst observed response time of each task, in the order
          given *)
  | Unschedulable of int  (** id of the first task to miss a deadline *)
  | Hyperperiod_too_large
      (** the LCM of the periods exceeds the caller's budget *)

val lcm_periods : Task.rt_task list -> int
(** LCM of the task periods (the hyperperiod). *)

val simulate : ?max_hyperperiod:int -> Task.rt_task list -> verdict
(** [simulate tasks] runs one hyperperiod from the synchronous release
    on a single core. Default budget: 1_000_000 ticks. *)

val schedulable : ?max_hyperperiod:int -> Task.rt_task list -> bool option
(** [Some b] when the hyperperiod fits the budget, [None] otherwise. *)
