module Task = Rtsched.Task

type built = {
  tasks : Engine.sim_task list;
  rt_sim_ids : int array;
  sec_sim_ids : int array;
}

let of_taskset (ts : Task.taskset) ~rt_assignment ~policy ~sec_periods
    ?sec_cores () =
  let n_rt = Array.length ts.rt in
  let max_rt_prio =
    Array.fold_left (fun acc t -> max acc t.Task.rt_prio) 0 ts.rt
  in
  let rt_core i =
    match policy with
    | Policy.Global_all -> None
    | Policy.Fully_partitioned | Policy.Semi_partitioned ->
        Some rt_assignment.(i)
  in
  let sec_core (s : Task.sec_task) =
    match policy with
    | Policy.Global_all | Policy.Semi_partitioned -> None
    | Policy.Fully_partitioned -> (
        match sec_cores with
        | Some cores -> Some cores.(s.sec_id)
        | None ->
            invalid_arg
              "Scenario.of_taskset: Fully_partitioned requires sec_cores")
  in
  let rt_tasks =
    Array.to_list
      (Array.mapi
         (fun i (t : Task.rt_task) ->
           { Engine.st_id = i; st_name = t.rt_name; st_wcet = t.rt_wcet;
             st_period = t.rt_period; st_deadline = t.rt_deadline;
             st_prio = t.rt_prio; st_core = rt_core i; st_offset = 0 })
         ts.rt)
  in
  let sec_tasks =
    Array.to_list
      (Array.mapi
         (fun j (s : Task.sec_task) ->
           let period = sec_periods.(s.sec_id) in
           { Engine.st_id = n_rt + j; st_name = s.sec_name;
             st_wcet = s.sec_wcet; st_period = period; st_deadline = period;
             st_prio = max_rt_prio + 1 + s.sec_prio; st_core = sec_core s;
             st_offset = 0 })
         ts.sec)
  in
  let rt_sim_ids = Array.make n_rt 0 in
  Array.iteri (fun i t -> rt_sim_ids.(t.Task.rt_id) <- i) ts.rt;
  let sec_sim_ids = Array.make (Array.length ts.sec) 0 in
  Array.iteri (fun j s -> sec_sim_ids.(s.Task.sec_id) <- n_rt + j) ts.sec;
  { tasks = rt_tasks @ sec_tasks; rt_sim_ids; sec_sim_ids }
