lib/sim/policy.mli: Format
