lib/sim/scenario.ml: Array Engine Policy Rtsched
