lib/sim/engine.mli: Trace
