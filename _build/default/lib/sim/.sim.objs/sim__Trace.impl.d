lib/sim/trace.ml: Buffer Bytes Format Hashtbl List Option Out_channel Printf String
