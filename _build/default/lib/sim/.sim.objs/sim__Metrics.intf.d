lib/sim/metrics.mli: Engine
