lib/sim/engine.ml: Array Hashtbl List Printf Trace
