lib/sim/scenario.mli: Engine Policy Rtsched
