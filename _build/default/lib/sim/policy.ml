type t = Fully_partitioned | Semi_partitioned | Global_all

let name = function
  | Fully_partitioned -> "fully-partitioned"
  | Semi_partitioned -> "semi-partitioned"
  | Global_all -> "global"

let pp ppf p = Format.pp_print_string ppf (name p)
