(** Scheduling policies compared in the paper (Sec. 3 and 5.2.3). *)

type t =
  | Fully_partitioned
      (** HYDRA world: RT tasks and security tasks are all pinned *)
  | Semi_partitioned
      (** HYDRA-C world: RT tasks pinned, security tasks migrate *)
  | Global_all  (** GLOBAL-TMax world: every task migrates *)

val name : t -> string
val pp : Format.formatter -> t -> unit
