(** Bridges the analysis-side task model to the simulator: flattens a
    {!Rtsched.Task.taskset} plus a scheme's decisions (security
    periods, optional security pinning) into simulator tasks under a
    given {!Policy.t}. Security tasks always sit in a strictly lower
    global priority band than RT tasks. All first jobs are released
    synchronously at time 0 (the critical instant). *)

type built = {
  tasks : Engine.sim_task list;
  rt_sim_ids : int array;  (** sim id of the RT task with [rt_id = i] *)
  sec_sim_ids : int array;  (** sim id of the security task with [sec_id = j] *)
}
(** Requires task ids to be dense ([0 .. n-1] within each class), as
    the taskset generator and the smart constructors' conventions
    produce. *)

val of_taskset :
  Rtsched.Task.taskset -> rt_assignment:int array -> policy:Policy.t ->
  sec_periods:int array -> ?sec_cores:int array -> unit -> built
(** [sec_periods] and [sec_cores] are indexed by [sec_id].
    [sec_cores] is required for {!Policy.Fully_partitioned} and
    ignored otherwise; under {!Policy.Global_all} the RT pinning is
    dropped as well.
    @raise Invalid_argument when [Fully_partitioned] lacks [sec_cores]. *)
