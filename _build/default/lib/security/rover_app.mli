(** The rover's application behaviour — what the RT tasks actually do
    (paper Sec. 5.1.2): "the rover moved around autonomously and
    periodically captured images (and stored them in the internal
    storage)". The navigation task steps an obstacle-avoiding
    grid-world controller; the camera task captures a deterministic
    synthetic frame into the {!Filesystem} image store that Tripwire
    monitors.

    Because the camera legitimately {e grows} the monitored store, raw
    integrity checking would flood with false "Added" findings. The
    application therefore declares every capture through an
    {!authorized} journal; {!guarded_check_region} consults it —
    matching entries are absorbed into the checker baseline (the real
    Tripwire policy-update workflow), everything else is reported. A
    tampered file never matches its journal fingerprint, so attack
    detection is unaffected (property-tested). *)

type time = int

(** {1 Navigation} *)

type pose = { x : int; y : int; heading : int  (** degrees, 0/90/180/270 *) }

type world
(** Grid world with obstacles. *)

val create_world : ?size:int -> seed:int -> unit -> world
val pose : world -> pose
val steps_taken : world -> int
val obstacle_encounters : world -> int

val navigate_step : world -> unit
(** One navigation-job body: read the (synthetic) infrared sensor,
    turn if an obstacle is ahead, advance one cell (wrapping at the
    world edge). Deterministic for a given seed. *)

(** {1 Camera + authorized writes} *)

type camera

val create_camera : Filesystem.t -> ?bytes_per_image:int -> unit -> camera

val capture : camera -> world -> time -> Filesystem.path
(** One camera-job body: renders a frame of the current world pose,
    stores it as [live_NNNNN.raw], journals the write as authorized,
    and returns the path. *)

val captures : camera -> int

val guarded_check_region :
  camera -> Integrity_checker.t -> int -> Profile_checker.violation list
(** Region check that first absorbs journaled (authorized) writes into
    the baseline, then reports the remaining violations — the scan
    body the Tripwire task should run when the store has a legitimate
    producer. *)

(** {1 Simulation wiring} *)

val hooks :
  world -> camera -> nav_sim_id:int -> cam_sim_id:int ->
  Sim.Engine.hooks -> Sim.Engine.hooks
(** Extends [hooks] so every completed navigation job steps the world
    and every completed camera job captures a frame (at its finish
    instant), composing with any hooks already present. *)
