(** A synthetic in-memory filesystem — the monitored object of the
    Tripwire-analogue integrity checker. Replaces the rover's image
    data-store (see DESIGN.md, substitutions): only the scanner reads
    it, so an in-memory map with mutation operations exercises the
    same check-and-compare code path as a real disk store. *)

type t
type path = string

val create : unit -> t

val add_file : t -> path -> string -> unit
(** Creates or replaces a file. *)

val write : t -> path -> string -> unit
(** Overwrites an existing file. @raise Not_found if absent. *)

val append : t -> path -> string -> unit
(** Appends to an existing file. @raise Not_found if absent. *)

val read : t -> path -> string
(** @raise Not_found if absent. *)

val remove : t -> path -> unit
(** @raise Not_found if absent. *)

val mem : t -> path -> bool
val file_count : t -> int

val list_paths : t -> path list
(** Sorted lexicographically. *)

val total_bytes : t -> int

val populate_images : t -> count:int -> bytes_per_file:int -> unit
(** Fills the store with [count] synthetic "camera images"
    ([img_0000.raw], ...) of deterministic pseudo-content. *)
