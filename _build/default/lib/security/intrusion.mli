(** Intrusion injection with lazy, time-ordered application.

    The paper launches attacks "at random points during program
    execution" and measures time-to-detection. In the simulation only
    the security scanners observe the monitored stores, so a mutation
    scheduled for instant [t_a] may be applied lazily — it just has to
    be in effect before any scanner observation at wall time
    [>= t_a]. {!apply_until} is called by the detection monitor with
    the start time of each region inspection, which realizes exactly
    that semantics (a mutation landing {e during} an inspection window
    is observed only on the next pass — the conservative reading of a
    mid-scan race). *)

type time = int

type t

val create : unit -> t

val schedule : t -> at:time -> label:string -> (unit -> unit) -> unit
(** Registers a mutation thunk to take effect at instant [at]. *)

val apply_until : t -> time -> unit
(** Applies (in time order) every scheduled mutation with
    [at <= time]. Idempotent per mutation. *)

val pending : t -> (time * string) list
(** Not-yet-applied mutations, soonest first. *)

val applied : t -> (time * string) list
(** Already-applied mutations, in application order. *)
