(** Kernel-module profile checker — the paper's "in-house custom
    malicious kernel module checker" (Sec. 5.1.2): compares the live
    kernel-module table against an expected profile, detecting rootkit
    modules that were inserted (or legitimate modules that were hidden
    or altered, as a `read()`-hooking rootkit does). *)

type module_info = {
  m_name : string;  (** unique module name *)
  m_size : int;  (** text+data size in bytes *)
  m_addr : int64;  (** load address *)
  m_signature : string;  (** vendor signature / version magic *)
}

type table
(** The live, mutable kernel-module table. *)

val create_table : module_info list -> table
val modules : table -> module_info list
(** Sorted by name. *)

val insert_module : table -> module_info -> unit
(** The rootkit attack of Sec. 5.1.3(ii): loads a malicious module. *)

val hide_module : table -> string -> unit
(** Removes a module from the visible table (rootkit self-hiding).
    @raise Not_found if absent. *)

val patch_module : table -> string -> size:int -> unit
(** Alters a module in place (e.g. a hooked syscall table changes the
    observed size). @raise Not_found if absent. *)

val default_profile : unit -> module_info list
(** A realistic baseline of modules a Raspbian-like kernel loads
    (names from the rover platform: GPIO, camera, WiFi, ...). *)

type t
(** The checker: expected profile plus region split. *)

val create : table -> n_regions:int -> t
val n_regions : t -> int
val region_of_key : t -> string -> int
val check_region : t -> int -> Profile_checker.violation list
val check_all : t -> Profile_checker.violation list
val rebaseline : t -> unit

val accept : t -> key:string -> unit
(** Accepts the current state of one module into the expected profile
    (e.g. an administrator-sanctioned module load). *)
