(** Generic baseline-profile integrity checking, region by region.

    Both security applications of the paper's rover experiment —
    Tripwire-style file-system checking and the custom kernel-module
    checker — follow the same shape: snapshot a baseline of
    (key, fingerprint) pairs, then repeatedly rescan the live store
    and report divergence. This functor captures that shape once; the
    store is split into [n_regions] deterministic regions (by key
    hash) so a scan can proceed incrementally, which is what lets the
    scheduler-driven detection model observe {e when} each part of the
    store is re-inspected. *)

module type ITEM_STORE = sig
  type store

  val keys : store -> string list
  (** Current item keys, any order. *)

  val fingerprint : store -> string -> int64
  (** Fingerprint of one item. @raise Not_found if the key vanished
      between [keys] and [fingerprint] (not possible in this
      single-threaded simulation). *)
end

type violation =
  | Modified of string  (** fingerprint differs from the baseline *)
  | Added of string  (** key absent from the baseline *)
  | Removed of string  (** baseline key no longer present *)

val violation_key : violation -> string
val pp_violation : Format.formatter -> violation -> unit

module Make (S : ITEM_STORE) : sig
  type t

  val create : S.store -> n_regions:int -> t
  (** Snapshots the baseline. [n_regions >= 1]. *)

  val n_regions : t -> int

  val region_of_key : t -> string -> int
  (** Deterministic region of a key (stable across adds/removes). *)

  val check_region : t -> int -> violation list
  (** Rescans one region against the baseline. *)

  val check_all : t -> violation list
  (** Full pass over every region, in region order. *)

  val rebaseline : t -> unit
  (** Accepts the current store state as the new baseline. *)

  val accept : t -> key:string -> unit
  (** Accepts the current state of one item into the baseline: its
      fingerprint is updated (or the entry dropped if the item no
      longer exists). Used for {e authorized} changes — e.g. the
      camera task legitimately appending images to the store it is
      allowed to write (see {!Rover_app}). *)
end
