module Checker = Profile_checker.Make (struct
  type store = Filesystem.t

  let keys = Filesystem.list_paths
  let fingerprint store key = Hash.fnv1a64 (Filesystem.read store key)
end)

type t = Checker.t

let create = Checker.create
let n_regions = Checker.n_regions
let region_of_key = Checker.region_of_key
let check_region = Checker.check_region
let check_all = Checker.check_all
let rebaseline = Checker.rebaseline
let accept = Checker.accept

let tamper_file fs path =
  let content = Filesystem.read fs path in
  Filesystem.write fs path (content ^ "<shellcode-payload>")
