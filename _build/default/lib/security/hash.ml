let offset_basis = 0xCBF29CE484222325L
let prime = 0x100000001B3L

let fnv1a64 s =
  let h = ref offset_basis in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h prime)
    s;
  !h

let combine a b =
  let h = Int64.logxor a (Int64.mul b 0x9E3779B97F4A7C15L) in
  Int64.mul h prime

let fnv1a64_list l =
  List.fold_left (fun acc s -> combine acc (fnv1a64 s)) offset_basis l
