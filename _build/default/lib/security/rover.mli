(** The rover case study of Sec. 5.1: the exact task parameters the
    authors measured on their Raspberry-Pi-3 rover, plus the two
    monitored stores (image data-store and kernel-module table) and
    the platform facts of Table 2. Times are milliseconds (= ticks).

    RT tasks: navigation (C=240, T=500) and camera (C=1120, T=5000),
    implicit deadlines, rate-monotonic, total RT utilization 0.7040.
    Security tasks: Tripwire over the image store (C=5342) and the
    kernel-module checker (C=223), both with [T_max] = 10000, giving a
    minimum total utilization of 1.2605 on 2 active cores. *)

type platform_fact = { fact_artifact : string; fact_value : string }

val table2 : platform_fact list
(** The rows of Table 2 (platform, CPU, memory, OS, kernel, RT patch,
    flags, boot parameters, WCET measurement, partitioning tool). *)

val pp_table2 : Format.formatter -> unit -> unit

val n_cores : int
(** 2 — the paper activates only core0 and core1. *)

val taskset : unit -> Rtsched.Task.taskset
(** The four-task rover taskset described above. RT ids: 0 =
    navigation, 1 = camera; security ids: 0 = Tripwire, 1 = kmod
    checker (Tripwire has the higher security priority). *)

val rt_assignment : unit -> int array
(** Navigation on core 0, camera on core 1 — the paper's explicit
    pinning via the Linux [taskset] utility (Fig. 1). *)

val tripwire_sec_id : int
val kmod_sec_id : int

val extended_taskset : unit -> Rtsched.Task.taskset
(** The rover taskset plus two further monitors a designer might
    retrofit — a packet monitor (C=850, T_max=8000, security priority
    2) and an HPC-counter monitor (C=140, T_max=6000, priority 3) —
    exercising the remaining Table-1 classes. Demonstrates that the
    integration framework admits additional security tasks without
    touching the RT side (see [examples/network_watch.ml]). *)

val packet_sec_id : int
val hpc_sec_id : int

val packet_regions : int
(** Scan regions of the packet monitor (slices of the capture ring). *)

val image_store : ?images:int -> ?bytes_per_image:int -> unit -> Filesystem.t
(** The camera image data-store (default 64 synthetic images of 4 KiB;
    the real store holds 3280x2464 stills, but only the count of
    scan regions affects detection timing). *)

val module_table : unit -> Kmod_checker.table
(** Live kernel-module table preloaded with {!Kmod_checker.default_profile}. *)

val image_regions : int
(** Scan regions used by the Tripwire task (one per image by default
    store size). *)

val kmod_regions : int
(** Scan regions used by the kernel-module checker. *)
