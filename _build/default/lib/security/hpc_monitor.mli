(** Hardware-event monitoring — Table 1's "statistical checks over
    performance-monitor counters" class (perf / OProfile, after Woo et
    al., DATE 2018).

    A synthetic hardware-performance-counter substrate: every monitored
    task exposes per-job counter samples (instructions, cache misses,
    branch misses). The monitor first {e calibrates} a per-task,
    per-counter baseline (mean and standard deviation over clean
    training samples), then flags samples whose z-score exceeds a
    threshold — the statistical anomaly check of the paper's reference
    [21]. Compromised code (e.g. a hooked syscall path) shows up as a
    counter shift without any filesystem or module-table artifact, so
    this monitor covers attacks the other two cannot see.

    Regions map to monitored task slots: inspecting region [k]
    re-checks the [k]-th monitored task's latest samples, so the
    {!Detection} machinery applies unchanged. *)

type counter =
  | Instructions
  | Cache_misses
  | Branch_misses

val all_counters : counter list
val counter_name : counter -> string

type sample = {
  s_task : string;  (** monitored task name *)
  s_counts : (counter * float) list;  (** one value per counter *)
}

(** {1 Sample stream} *)

type stream
(** Mutable per-task sample history. *)

val create_stream : tasks:string list -> stream
val push : stream -> sample -> unit
(** @raise Invalid_argument for an unknown task. *)

val latest : stream -> task:string -> ?n:int -> unit -> sample list
(** Most recent [n] samples (default 8), newest first. *)

val clean_sample : Taskgen.Rng.t -> task:string -> sample
(** Draws a plausible in-profile sample (used for calibration and for
    benign load). *)

val compromised_sample : Taskgen.Rng.t -> task:string -> sample
(** A sample with the cache/branch-miss inflation typical of hooked
    code paths. *)

(** {1 Detector} *)

type anomaly = {
  a_task : string;
  a_counter : counter;
  a_zscore : float;
}

val pp_anomaly : Format.formatter -> anomaly -> unit

type t

val calibrate :
  Taskgen.Rng.t -> tasks:string list -> ?training_samples:int ->
  ?z_threshold:float -> stream -> t
(** Learns per-task baselines from freshly drawn clean samples
    (defaults: 64 training samples, threshold 4.0 sigma). *)

val n_regions : t -> int
(** One region per monitored task. *)

val task_of_region : t -> int -> string

val check_region : t -> int -> anomaly list
(** Z-score check of the region's task over its latest samples. *)

val check_all : t -> anomaly list

val detection_target : t -> injector:Intrusion.t -> Detection.target
