(** Tripwire analogue: file-system integrity checking over the
    synthetic {!Filesystem} (paper Sec. 5.1.2 — Tripwire watches the
    rover's image data-store). An instantiation of {!Profile_checker}
    with FNV-1a content fingerprints. *)

type t

val create : Filesystem.t -> n_regions:int -> t
(** Snapshots the baseline database of the store. *)

val n_regions : t -> int

val region_of_key : t -> Filesystem.path -> int
(** Deterministic region a path belongs to. *)

val check_region : t -> int -> Profile_checker.violation list
(** Re-hashes one region of the store against the baseline. *)

val check_all : t -> Profile_checker.violation list
val rebaseline : t -> unit

val accept : t -> key:Filesystem.path -> unit
(** Accepts the current state of one file into the baseline
    (authorized writes; see {!Profile_checker}). *)

val tamper_file : Filesystem.t -> Filesystem.path -> unit
(** The "ARM shellcode" attack effect of Sec. 5.1.3(i): corrupts the
    content of one file in the image store.
    @raise Not_found if the file does not exist. *)
