type module_info = {
  m_name : string;
  m_size : int;
  m_addr : int64;
  m_signature : string;
}

type table = { mutable mods : module_info list }

let create_table mods = { mods }

let modules t =
  List.sort (fun a b -> compare a.m_name b.m_name) t.mods

let insert_module t m = t.mods <- m :: t.mods

let hide_module t name =
  if not (List.exists (fun m -> m.m_name = name) t.mods) then raise Not_found;
  t.mods <- List.filter (fun m -> m.m_name <> name) t.mods

let patch_module t name ~size =
  if not (List.exists (fun m -> m.m_name = name) t.mods) then raise Not_found;
  t.mods <-
    List.map (fun m -> if m.m_name = name then { m with m_size = size } else m)
      t.mods

let default_profile () =
  let m name size addr =
    { m_name = name; m_size = size; m_addr = Int64.of_int addr;
      m_signature = "rpi-4.9.80-rt62-v7+" }
  in
  [ m "bcm2835_gpiomem" 3940 0x7f000000;
    m "bcm2835_v4l2" 45100 0x7f010000;
    m "v4l2_common" 6000 0x7f020000;
    m "videobuf2_core" 33000 0x7f030000;
    m "brcmfmac" 222000 0x7f040000;
    m "brcmutil" 9000 0x7f050000;
    m "cfg80211" 544000 0x7f060000;
    m "snd_bcm2835" 24000 0x7f070000;
    m "spi_bcm2835" 7700 0x7f080000;
    m "i2c_bcm2835" 7200 0x7f090000;
    m "uio_pdrv_genirq" 3700 0x7f0a0000;
    m "fixed" 3000 0x7f0b0000 ]

module Checker = Profile_checker.Make (struct
  type store = table

  let keys t = List.map (fun m -> m.m_name) t.mods

  let fingerprint t key =
    match List.find_opt (fun m -> m.m_name = key) t.mods with
    | None -> raise Not_found
    | Some m ->
        Hash.fnv1a64_list
          [ m.m_name; string_of_int m.m_size; Int64.to_string m.m_addr;
            m.m_signature ]
end)

type t = Checker.t

let create = Checker.create
let n_regions = Checker.n_regions
let region_of_key = Checker.region_of_key
let check_region = Checker.check_region
let check_all = Checker.check_all
let rebaseline = Checker.rebaseline
let accept = Checker.accept
