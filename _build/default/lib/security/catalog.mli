(** The paper's Table 1 — examples of security tasks a designer might
    integrate. The framework is agnostic to the mechanism; this
    catalog records the classes and representative tools, and maps each
    class to the module of this repository that implements it. *)

type klass =
  | File_system_checking
  | Network_packet_monitoring
  | Hardware_event_monitoring
  | Application_specific_checking

type entry = {
  klass : klass;
  description : string;
  example_tools : string list;
  implemented_by : string option;
      (** module of this repository realizing the class, if any *)
}

val table1 : entry list
(** The rows of Table 1, in paper order. *)

val klass_name : klass -> string
val pp_entry : Format.formatter -> entry -> unit
val pp_table : Format.formatter -> unit -> unit
