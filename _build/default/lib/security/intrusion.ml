type time = int

type event = { at : time; label : string; action : unit -> unit }

type t = {
  mutable queue : event list;  (* sorted by [at], soonest first *)
  mutable done_ : (time * string) list;  (* reverse application order *)
}

let create () = { queue = []; done_ = [] }

let schedule t ~at ~label action =
  let ev = { at; label; action } in
  let rec insert = function
    | [] -> [ ev ]
    | e :: rest as l -> if e.at <= at then e :: insert rest else ev :: l
  in
  t.queue <- insert t.queue

let apply_until t now =
  let rec go = function
    | e :: rest when e.at <= now ->
        e.action ();
        t.done_ <- (e.at, e.label) :: t.done_;
        go rest
    | rest -> t.queue <- rest
  in
  go t.queue

let pending t = List.map (fun e -> (e.at, e.label)) t.queue
let applied t = List.rev t.done_
