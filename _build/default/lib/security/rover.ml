module Task = Rtsched.Task

type platform_fact = { fact_artifact : string; fact_value : string }

let table2 =
  [ { fact_artifact = "Platform";
      fact_value = "1.2 GHz 64-bit Broadcom BCM2837 (simulated)" };
    { fact_artifact = "CPU"; fact_value = "ARM Cortex-A53 (simulated)" };
    { fact_artifact = "Memory"; fact_value = "1 Gigabyte" };
    { fact_artifact = "Operating System";
      fact_value = "Debian Linux (Raspbian Stretch Lite)" };
    { fact_artifact = "Kernel version"; fact_value = "Linux Kernel 4.9" };
    { fact_artifact = "Real-time patch";
      fact_value = "PREEMPT_RT 4.9.80-rt62-v7+" };
    { fact_artifact = "Kernel flags";
      fact_value = "CONFIG_PREEMPT_RT_FULL enabled" };
    { fact_artifact = "Boot parameters";
      fact_value = "maxcpus=2, force_turbo=1, arm_freq=700, arm_freq_min=700" };
    { fact_artifact = "WCET measurement";
      fact_value = "ARM cycle counter registers (here: simulator clock)" };
    { fact_artifact = "Task partition";
      fact_value = "Linux taskset (here: Rtsched.Partition best-fit)" } ]

let pp_table2 ppf () =
  Format.fprintf ppf "@[<v>Table 2: Summary of the Evaluation Platform@ @ ";
  List.iter
    (fun f ->
      Format.fprintf ppf "%-18s %s@ " (f.fact_artifact ^ ":") f.fact_value)
    table2;
  Format.fprintf ppf "@]"

let n_cores = 2

let tripwire_sec_id = 0
let kmod_sec_id = 1
let packet_sec_id = 2
let hpc_sec_id = 3

let packet_regions = 16

let taskset () =
  let navigation =
    Task.make_rt ~name:"navigation" ~id:0 ~prio:0 ~wcet:240 ~period:500 ()
  in
  let camera =
    Task.make_rt ~name:"camera" ~id:1 ~prio:1 ~wcet:1120 ~period:5000 ()
  in
  let tripwire =
    Task.make_sec ~name:"tripwire" ~id:tripwire_sec_id ~prio:0 ~wcet:5342
      ~period_max:10000 ()
  in
  let kmod =
    Task.make_sec ~name:"kmod-checker" ~id:kmod_sec_id ~prio:1 ~wcet:223
      ~period_max:10000 ()
  in
  Task.make_taskset ~n_cores ~rt:[ navigation; camera ]
    ~sec:[ tripwire; kmod ]

let extended_taskset () =
  let base = taskset () in
  let packet =
    Task.make_sec ~name:"packet-monitor" ~id:packet_sec_id ~prio:2 ~wcet:850
      ~period_max:8000 ()
  in
  let hpc =
    Task.make_sec ~name:"hpc-monitor" ~id:hpc_sec_id ~prio:3 ~wcet:140
      ~period_max:6000 ()
  in
  Task.make_taskset ~n_cores ~rt:(Array.to_list base.Task.rt)
    ~sec:(Array.to_list base.Task.sec @ [ packet; hpc ])

(* The paper pins navigation to core0 and camera to core1 with the
   Linux taskset utility (Fig. 1); best-fit would pack both onto one
   core, so we reproduce the explicit pinning instead. *)
let rt_assignment () = [| 0; 1 |]

let image_regions = 64
let kmod_regions = 12

let image_store ?(images = image_regions) ?(bytes_per_image = 4096) () =
  let fs = Filesystem.create () in
  Filesystem.populate_images fs ~count:images ~bytes_per_file:bytes_per_image;
  fs

let module_table () =
  Kmod_checker.create_table (Kmod_checker.default_profile ())
