type time = int

type mode = Passive | Exhaustive

(* Outcome of one region inspection in the combined scan. *)
type hit = Clean | Passive_hit | Exhaustive_hit

type t = {
  sim_id : int;
  wcet : time;
  passive : Detection.target;
  exhaustive : Detection.target;
  cooldown_passes : int;
  mutable mode : mode;
  mutable clean_streak : int;
  mutable transitions : (time * string) list;  (* newest first *)
  mutable passive_detected : time option;
  mutable exhaustive_detected : time option;
  (* per-job walker state *)
  mutable cur_seq : int;
  mutable job_mode : mode;  (* mode the current job started in *)
  mutable progress : time;
  mutable region : int;
  mutable region_started : time;
  mutable job_dirty : bool;  (* any hit during the current job *)
}

let create ~sim_id ~wcet ~passive ~exhaustive ?(cooldown_passes = 2) () =
  if wcet < 1 then invalid_arg "Reactive.create: wcet < 1";
  if cooldown_passes < 1 then invalid_arg "Reactive.create: cooldown < 1";
  { sim_id; wcet; passive; exhaustive; cooldown_passes; mode = Passive;
    clean_streak = 0; transitions = []; passive_detected = None;
    exhaustive_detected = None; cur_seq = -1; job_mode = Passive;
    progress = 0; region = 0; region_started = 0; job_dirty = false }

let mode t = t.mode
let escalations t = List.rev t.transitions
let passive_detection_time t = t.passive_detected
let exhaustive_detection_time t = t.exhaustive_detected

(* Regions of the current job: passive-only, or passive followed by
   exhaustive within the same budget. *)
let job_regions t =
  match t.job_mode with
  | Passive -> t.passive.Detection.n_regions
  | Exhaustive ->
      t.passive.Detection.n_regions + t.exhaustive.Detection.n_regions

let boundary t k = (k + 1) * t.wcet / job_regions t

(* Dispatch one region inspection to the right underlying target. *)
let inspect t ~region ~started ~finished =
  let n_passive = t.passive.Detection.n_regions in
  match t.job_mode with
  | Passive ->
      if t.passive.Detection.check_region ~region ~started ~finished then
        Passive_hit
      else Clean
  | Exhaustive ->
      if region < n_passive then
        if t.passive.Detection.check_region ~region ~started ~finished then
          Passive_hit
        else Clean
      else if
        t.exhaustive.Detection.check_region ~region:(region - n_passive)
          ~started ~finished
      then Exhaustive_hit
      else Clean

let transition t now label next_mode =
  t.mode <- next_mode;
  t.clean_streak <- 0;
  t.transitions <- (now, label) :: t.transitions

let record_hit t hit now =
  match hit with
  | Clean -> ()
  | Passive_hit ->
      t.job_dirty <- true;
      if t.passive_detected = None then t.passive_detected <- Some now;
      if t.mode = Passive then transition t now "escalate" Exhaustive
  | Exhaustive_hit ->
      t.job_dirty <- true;
      if t.exhaustive_detected = None then t.exhaustive_detected <- Some now

(* A completed full pass in exhaustive mode that saw no anomaly counts
   toward de-escalation. *)
let pass_completed t now =
  match t.job_mode with
  | Passive -> ()
  | Exhaustive ->
      if t.job_dirty then t.clean_streak <- 0
      else begin
        t.clean_streak <- t.clean_streak + 1;
        if t.clean_streak >= t.cooldown_passes && t.mode = Exhaustive then
          transition t now "de-escalate" Passive
      end

let on_execute t (job : Sim.Engine.job) ~core:_ ~start ~stop =
  if job.Sim.Engine.j_task.Sim.Engine.st_id = t.sim_id then begin
    if job.Sim.Engine.j_seq <> t.cur_seq then begin
      t.cur_seq <- job.Sim.Engine.j_seq;
      t.job_mode <- t.mode;
      t.progress <- 0;
      t.region <- 0;
      t.region_started <- start;
      t.job_dirty <- false
    end;
    let p0 = t.progress in
    let p1 = p0 + (stop - start) in
    let wall_of p = start + (p - p0) in
    let n = job_regions t in
    while t.region < n && boundary t t.region <= p1 do
      let finished = wall_of (boundary t t.region) in
      let hit =
        inspect t ~region:t.region ~started:t.region_started ~finished
      in
      record_hit t hit finished;
      t.region <- t.region + 1;
      t.region_started <- finished;
      if t.region = n then pass_completed t finished
    done;
    t.progress <- p1
  end
