type counter = Instructions | Cache_misses | Branch_misses

let all_counters = [ Instructions; Cache_misses; Branch_misses ]

let counter_name = function
  | Instructions -> "instructions"
  | Cache_misses -> "cache-misses"
  | Branch_misses -> "branch-misses"

type sample = {
  s_task : string;
  s_counts : (counter * float) list;
}

(* ------------------------------------------------------------------ *)
(* Sample stream *)

type stream = {
  history : (string, sample list) Hashtbl.t;  (* newest first *)
}

let create_stream ~tasks =
  let history = Hashtbl.create 8 in
  List.iter (fun t -> Hashtbl.replace history t []) tasks;
  { history }

let push stream sample =
  match Hashtbl.find_opt stream.history sample.s_task with
  | None ->
      invalid_arg
        (Printf.sprintf "Hpc_monitor.push: unknown task %s" sample.s_task)
  | Some old -> Hashtbl.replace stream.history sample.s_task (sample :: old)

let latest stream ~task ?(n = 8) () =
  let all =
    Option.value (Hashtbl.find_opt stream.history task) ~default:[]
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  take n all

(* Per-task nominal counter profile: a deterministic function of the
   task name so different tasks have distinct baselines. *)
let nominal task counter =
  let h =
    Int64.to_int (Int64.logand (Hash.fnv1a64 task) 0xFFFFL) |> float_of_int
  in
  match counter with
  | Instructions -> 1.0e6 +. (h *. 50.0)
  | Cache_misses -> 2.0e3 +. h
  | Branch_misses -> 1.0e3 +. (h /. 2.0)

(* Gaussian-ish noise from the deterministic RNG (sum of uniforms). *)
let noise rng ~sigma =
  let u () = Taskgen.Rng.float rng 1.0 -. 0.5 in
  (u () +. u () +. u () +. u ()) *. sigma

let relative_sigma = 0.02

let clean_sample rng ~task =
  { s_task = task;
    s_counts =
      List.map
        (fun c ->
          let base = nominal task c in
          (c, base +. noise rng ~sigma:(relative_sigma *. base)))
        all_counters }

(* A hooked code path executes extra instructions and thrashes caches
   and branch predictors: inflate misses strongly, instructions
   mildly. *)
let compromised_sample rng ~task =
  let clean = clean_sample rng ~task in
  { clean with
    s_counts =
      List.map
        (fun (c, v) ->
          let factor =
            match c with
            | Instructions -> 1.08
            | Cache_misses -> 1.6
            | Branch_misses -> 1.4
          in
          (c, v *. factor))
        clean.s_counts }

(* ------------------------------------------------------------------ *)
(* Detector *)

type baseline = { mean : float; sigma : float }

type anomaly = {
  a_task : string;
  a_counter : counter;
  a_zscore : float;
}

let pp_anomaly ppf a =
  Format.fprintf ppf "%s/%s z=%.1f" a.a_task (counter_name a.a_counter)
    a.a_zscore

type t = {
  stream : stream;
  tasks : string array;
  baselines : (string * counter, baseline) Hashtbl.t;
  z_threshold : float;
}

let calibrate rng ~tasks ?(training_samples = 64) ?(z_threshold = 4.0) stream =
  if tasks = [] then invalid_arg "Hpc_monitor.calibrate: no tasks";
  if training_samples < 2 then
    invalid_arg "Hpc_monitor.calibrate: need at least 2 training samples";
  let baselines = Hashtbl.create 16 in
  List.iter
    (fun task ->
      let samples =
        List.init training_samples (fun _ -> clean_sample rng ~task)
      in
      List.iter
        (fun counter ->
          let values =
            List.map (fun s -> List.assoc counter s.s_counts) samples
          in
          let n = float_of_int (List.length values) in
          let mean = List.fold_left ( +. ) 0.0 values /. n in
          let var =
            List.fold_left (fun acc v -> acc +. ((v -. mean) ** 2.0)) 0.0
              values
            /. n
          in
          (* floor sigma so a freak zero-variance calibration cannot
             divide by zero *)
          let sigma = max (sqrt var) (1e-6 *. abs_float mean +. 1e-9) in
          Hashtbl.replace baselines (task, counter) { mean; sigma })
        all_counters)
    tasks;
  { stream; tasks = Array.of_list tasks; baselines; z_threshold }

let n_regions t = Array.length t.tasks

let task_of_region t region =
  if region < 0 || region >= Array.length t.tasks then
    invalid_arg "Hpc_monitor.task_of_region";
  t.tasks.(region)

let check_region t region =
  let task = task_of_region t region in
  let samples = latest t.stream ~task () in
  List.concat_map
    (fun sample ->
      List.filter_map
        (fun (counter, v) ->
          let b = Hashtbl.find t.baselines (task, counter) in
          let z = (v -. b.mean) /. b.sigma in
          if abs_float z > t.z_threshold then
            Some { a_task = task; a_counter = counter; a_zscore = z }
          else None)
        sample.s_counts)
    samples

let check_all t =
  List.concat_map (check_region t) (List.init (n_regions t) (fun r -> r))

let detection_target t ~injector =
  { Detection.n_regions = n_regions t;
    check_region =
      (fun ~region ~started ~finished:_ ->
        Intrusion.apply_until injector started;
        check_region t region <> []) }
