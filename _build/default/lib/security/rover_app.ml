type time = int

type pose = { x : int; y : int; heading : int }

type world = {
  size : int;
  obstacles : (int * int, unit) Hashtbl.t;
  mutable w_pose : pose;
  mutable steps : int;
  mutable encounters : int;
}

(* Deterministic obstacle field: ~12% of cells, from a splitmix64
   stream so worlds are reproducible. *)
let create_world ?(size = 16) ~seed () =
  if size < 4 then invalid_arg "Rover_app.create_world: size < 4";
  let rng = Taskgen.Rng.create seed in
  let obstacles = Hashtbl.create 32 in
  for x = 0 to size - 1 do
    for y = 0 to size - 1 do
      if (x, y) <> (0, 0) && Taskgen.Rng.int rng 8 = 0 then
        Hashtbl.replace obstacles (x, y) ()
    done
  done;
  { size; obstacles; w_pose = { x = 0; y = 0; heading = 0 }; steps = 0;
    encounters = 0 }

let pose w = w.w_pose
let steps_taken w = w.steps
let obstacle_encounters w = w.encounters

let ahead w =
  let { x; y; heading } = w.w_pose in
  let wrap v = ((v mod w.size) + w.size) mod w.size in
  match heading with
  | 0 -> (wrap (x + 1), y)
  | 90 -> (x, wrap (y + 1))
  | 180 -> (wrap (x - 1), y)
  | 270 -> (x, wrap (y - 1))
  | _ -> invalid_arg "Rover_app: heading not axis-aligned"

(* One job of the navigation task: the infrared sensor reads the cell
   ahead; on an obstacle the rover turns right (the vendor controller's
   simple avoidance), otherwise it advances. *)
let navigate_step w =
  w.steps <- w.steps + 1;
  let target = ahead w in
  if Hashtbl.mem w.obstacles target then begin
    w.encounters <- w.encounters + 1;
    w.w_pose <- { w.w_pose with heading = (w.w_pose.heading + 90) mod 360 }
  end
  else
    let x, y = target in
    w.w_pose <- { w.w_pose with x; y }

(* ------------------------------------------------------------------ *)
(* Camera *)

type camera = {
  fs : Filesystem.t;
  bytes_per_image : int;
  journal : (Filesystem.path, int64) Hashtbl.t;
      (* declared content fingerprints of authorized writes *)
  mutable seq : int;
}

let create_camera fs ?(bytes_per_image = 2048) () =
  { fs; bytes_per_image; journal = Hashtbl.create 32; seq = 0 }

(* A deterministic "frame": pose and timestamp baked into the pixels. *)
let render ~pose:{ x; y; heading } ~at ~len =
  let header = Printf.sprintf "FRAME x=%d y=%d h=%d t=%d|" x y heading at in
  let filler =
    String.init (max 0 (len - String.length header)) (fun i ->
        Char.chr ((x * 31 + y * 17 + heading + at + i) mod 256))
  in
  header ^ filler

let capture cam world at =
  let path = Printf.sprintf "live_%05d.raw" cam.seq in
  cam.seq <- cam.seq + 1;
  let frame = render ~pose:world.w_pose ~at ~len:cam.bytes_per_image in
  Filesystem.add_file cam.fs path frame;
  Hashtbl.replace cam.journal path (Hash.fnv1a64 frame);
  path

let captures cam = cam.seq

(* An authorized write matches its journaled fingerprint; absorb it
   into the baseline instead of reporting. A tampered file hashes
   differently from the journal entry and stays reported. *)
let authorized cam key =
  match Hashtbl.find_opt cam.journal key with
  | None -> false
  | Some declared ->
      (match Filesystem.read cam.fs key with
      | content -> Hash.fnv1a64 content = declared
      | exception Not_found -> false)

let guarded_check_region cam checker region =
  let raw = Integrity_checker.check_region checker region in
  List.filter
    (fun violation ->
      let key = Profile_checker.violation_key violation in
      if authorized cam key then begin
        Integrity_checker.accept checker ~key;
        false
      end
      else true)
    raw

(* ------------------------------------------------------------------ *)
(* Simulation wiring *)

let hooks world cam ~nav_sim_id ~cam_sim_id (base : Sim.Engine.hooks) =
  let on_finish (job : Sim.Engine.job) ~finish =
    let id = job.Sim.Engine.j_task.Sim.Engine.st_id in
    if id = nav_sim_id then navigate_step world
    else if id = cam_sim_id then ignore (capture cam world finish);
    match base.Sim.Engine.on_finish with
    | Some f -> f job ~finish
    | None -> ()
  in
  { base with Sim.Engine.on_finish = Some on_finish }
