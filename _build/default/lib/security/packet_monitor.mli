(** Network packet monitoring — Table 1's "Bro / Snort" class.

    A synthetic traffic substrate plus a rule-based inspector. Captured
    packets accumulate in a bounded ring; the monitoring task inspects
    the capture incrementally, region by region (a region is a slice of
    the ring), so the scheduler-driven {!Detection} machinery measures
    when each slice is (re)inspected exactly as for the file-system
    checker. Three detection rules are implemented:

    - {e blacklisted destination ports} (e.g. known C2 ports),
    - {e payload signatures} (byte-pattern match),
    - {e port scans}: one source touching at least [scan_threshold]
      distinct destination ports within the inspected slice. *)

type time = int

type protocol = Tcp | Udp | Icmp

type packet = {
  p_time : time;  (** capture timestamp *)
  p_src : string;  (** source address *)
  p_dst : string;  (** destination address *)
  p_sport : int;
  p_dport : int;
  p_proto : protocol;
  p_payload : string;
}

(** {1 Capture ring} *)

type capture
(** Bounded ring of recent packets (oldest evicted first). *)

val create_capture : capacity:int -> capture
val ingest : capture -> packet -> unit
val captured : capture -> packet list
(** Oldest first; at most [capacity] packets. *)

val capture_count : capture -> int
(** Packets currently held. *)

val total_ingested : capture -> int
(** Packets ever ingested (including evicted ones). *)

(** {1 Traffic synthesis} *)

val benign_traffic :
  Taskgen.Rng.t -> now:time -> count:int -> packet list
(** Deterministic plausible telemetry/control traffic. *)

val port_scan : src:string -> now:time -> ports:int list -> packet list
(** The attack traffic of a scanning host. *)

val c2_beacon : src:string -> now:time -> packet
(** A beacon to a blacklisted port with a marker payload. *)

(** {1 Inspection} *)

type alert =
  | Blacklisted_port of packet
  | Signature_match of packet * string  (** matched signature *)
  | Port_scan of string * int  (** source, distinct ports seen *)

val pp_alert : Format.formatter -> alert -> unit

type rules = {
  blacklisted_ports : int list;
  signatures : string list;
  scan_threshold : int;  (** distinct dports per source within a slice *)
}

val default_rules : rules

type t
(** The inspector: rules plus a region split of the capture ring. *)

val create : capture -> rules -> n_regions:int -> t
val n_regions : t -> int

val inspect_region : t -> int -> alert list
(** Inspects one slice of the current capture (slice [k] holds the
    packets whose ring position falls in the [k]-th span). *)

val inspect_all : t -> alert list

val detection_target :
  t -> injector:Intrusion.t -> Detection.target
(** Standard wiring for the scan-progress monitor: apply pending
    intrusions up to each inspection's start, then inspect the
    region. *)
