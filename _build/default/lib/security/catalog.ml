type klass =
  | File_system_checking
  | Network_packet_monitoring
  | Hardware_event_monitoring
  | Application_specific_checking

type entry = {
  klass : klass;
  description : string;
  example_tools : string list;
  implemented_by : string option;
}

let klass_name = function
  | File_system_checking -> "File-system checking"
  | Network_packet_monitoring -> "Network packet monitoring"
  | Hardware_event_monitoring -> "Hardware event monitoring"
  | Application_specific_checking -> "Application specific checking"

let table1 =
  [ { klass = File_system_checking;
      description = "Detect tampering of stored data (integrity database)";
      example_tools = [ "Tripwire"; "AIDE" ];
      implemented_by = Some "Security.Integrity_checker" };
    { klass = Network_packet_monitoring;
      description = "Inspect traffic for known-bad or anomalous flows";
      example_tools = [ "Bro"; "Snort" ];
      implemented_by = Some "Security.Packet_monitor" };
    { klass = Hardware_event_monitoring;
      description =
        "Statistical checks over performance-monitor counters";
      example_tools = [ "perf"; "OProfile" ];
      implemented_by = Some "Security.Hpc_monitor" };
    { klass = Application_specific_checking;
      description =
        "Behavior-based detection (kernel-module profile, syscall \
         distributions, ...)";
      example_tools = [ "custom checkers" ];
      implemented_by = Some "Security.Kmod_checker" } ]

let pp_entry ppf e =
  Format.fprintf ppf "@[<v 2>%s:@ %s@ tools: %s@ implemented by: %s@]"
    (klass_name e.klass) e.description
    (String.concat ", " e.example_tools)
    (Option.value e.implemented_by ~default:"(not exercised here)")

let pp_table ppf () =
  Format.fprintf ppf "@[<v>Table 1: Example of Security Tasks@ @ ";
  List.iter (fun e -> Format.fprintf ppf "%a@ @ " pp_entry e) table1;
  Format.fprintf ppf "@]"
