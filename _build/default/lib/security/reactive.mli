(** Reactive, dependency-aware security checking — the extension the
    paper sketches in its Discussion (Sec. 6): a job performs action
    [a0] (a cheap passive check); if [a0] observes an anomaly, the
    following jobs also perform the dependent action [a1] (an
    exhaustive check), and de-escalate after a configurable number of
    consecutive clean exhaustive passes.

    The monitor has two modes realized over the {e same} job budget
    (the task's WCET is fixed by the schedulability analysis, so
    escalation trades scan resolution, not execution time):

    - {b Passive}: the whole job scans the passive target's regions.
    - {b Exhaustive}: the job's budget is split — the first part
      re-runs the passive check, the rest runs the exhaustive target.

    Mode transitions take effect at job boundaries (a job started in
    one mode finishes in it), matching the paper's [tau_s^j] /
    [tau_s^(j+1)] narrative. *)

type time = int

type mode =
  | Passive
  | Exhaustive

type t

val create :
  sim_id:int -> wcet:time -> passive:Detection.target ->
  exhaustive:Detection.target -> ?cooldown_passes:int -> unit -> t
(** [create ~sim_id ~wcet ~passive ~exhaustive ()] builds the reactive
    monitor for simulated task [sim_id]. [cooldown_passes] (default 2)
    is the number of consecutive clean exhaustive passes before
    de-escalating back to passive mode. *)

val on_execute :
  t -> Sim.Engine.job -> core:int -> start:time -> stop:time -> unit
(** Feed as (part of) the engine's [on_execute] hook. *)

val mode : t -> mode
(** Mode the {e next} job will start in. *)

val escalations : t -> (time * string) list
(** Mode transitions so far, newest last: [(wall_time, "escalate" |
    "de-escalate")]. *)

val passive_detection_time : t -> time option
(** First wall-clock instant the passive action flagged an anomaly. *)

val exhaustive_detection_time : t -> time option
(** First instant the exhaustive action found a violation (the deep
    detection the escalation exists for). *)
