(** FNV-1a 64-bit hashing — the fingerprint primitive of the
    integrity checkers. Not cryptographic; the experiments only need a
    deterministic content fingerprint whose value changes when the
    content changes (the paper's Tripwire uses real digests, but the
    detection-latency claim is independent of the digest function). *)

val fnv1a64 : string -> int64
(** Hash of a byte string. *)

val combine : int64 -> int64 -> int64
(** Order-dependent combination of two hashes. *)

val fnv1a64_list : string list -> int64
(** Hash of a list of strings, sensitive to both content and order. *)
