lib/security/kmod_checker.ml: Hash Int64 List Profile_checker
