lib/security/packet_monitor.ml: Array Detection Format Hashtbl Intrusion List Option Printf String Taskgen
