lib/security/catalog.ml: Format List Option String
