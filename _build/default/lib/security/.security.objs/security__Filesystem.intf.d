lib/security/filesystem.mli:
