lib/security/detection.mli: Intrusion Profile_checker Sim
