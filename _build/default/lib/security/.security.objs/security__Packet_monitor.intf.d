lib/security/packet_monitor.mli: Detection Format Intrusion Taskgen
