lib/security/filesystem.ml: Char Hashtbl List Printf String
