lib/security/rover.mli: Filesystem Format Kmod_checker Rtsched
