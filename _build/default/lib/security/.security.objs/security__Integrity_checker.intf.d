lib/security/integrity_checker.mli: Filesystem Profile_checker
