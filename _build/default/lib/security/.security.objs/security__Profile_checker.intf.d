lib/security/profile_checker.mli: Format
