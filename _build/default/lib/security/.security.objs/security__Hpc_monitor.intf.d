lib/security/hpc_monitor.mli: Detection Format Intrusion Taskgen
