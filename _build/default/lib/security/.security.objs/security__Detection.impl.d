lib/security/detection.ml: Intrusion List Sim
