lib/security/kmod_checker.mli: Profile_checker
