lib/security/profile_checker.ml: Format Hash Hashtbl Int64 List
