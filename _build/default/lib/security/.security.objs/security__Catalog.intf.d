lib/security/catalog.mli: Format
