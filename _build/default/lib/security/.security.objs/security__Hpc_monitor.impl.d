lib/security/hpc_monitor.ml: Array Detection Format Hash Hashtbl Int64 Intrusion List Option Printf Taskgen
