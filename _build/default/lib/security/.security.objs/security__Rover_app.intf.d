lib/security/rover_app.mli: Filesystem Integrity_checker Profile_checker Sim
