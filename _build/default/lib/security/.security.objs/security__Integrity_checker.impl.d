lib/security/integrity_checker.ml: Filesystem Hash Profile_checker
