lib/security/intrusion.mli:
