lib/security/hash.ml: Char Int64 List String
