lib/security/reactive.mli: Detection Sim
