lib/security/rover_app.ml: Char Filesystem Hash Hashtbl Integrity_checker List Printf Profile_checker Sim String Taskgen
