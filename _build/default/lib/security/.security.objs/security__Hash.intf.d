lib/security/hash.mli:
