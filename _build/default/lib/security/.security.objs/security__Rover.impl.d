lib/security/rover.ml: Array Filesystem Format Kmod_checker List Rtsched
