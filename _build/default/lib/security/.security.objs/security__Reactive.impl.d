lib/security/reactive.ml: Detection List Sim
