lib/security/intrusion.ml: List
