lib/hydra/period_selection.mli: Analysis Rtsched
