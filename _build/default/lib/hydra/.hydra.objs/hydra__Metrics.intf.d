lib/hydra/metrics.mli:
