lib/hydra/detection_model.ml:
