lib/hydra/priority_assignment.ml: Array List Metrics Period_selection Rtsched
