lib/hydra/metrics.ml: Array Float List
