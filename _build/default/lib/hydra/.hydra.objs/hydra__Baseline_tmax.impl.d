lib/hydra/baseline_tmax.ml: List Rtsched
