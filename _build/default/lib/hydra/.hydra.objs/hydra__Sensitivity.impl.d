lib/hydra/sensitivity.ml: Array Format List Period_selection Rtsched
