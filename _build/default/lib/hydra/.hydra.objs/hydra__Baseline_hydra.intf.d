lib/hydra/baseline_hydra.mli: Analysis Rtsched
