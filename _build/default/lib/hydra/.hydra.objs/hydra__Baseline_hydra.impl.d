lib/hydra/baseline_hydra.ml: Analysis Array List Option Rtsched
