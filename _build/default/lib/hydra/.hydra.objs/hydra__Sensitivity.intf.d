lib/hydra/sensitivity.mli: Analysis Format Rtsched
