lib/hydra/analysis.mli: Rtsched
