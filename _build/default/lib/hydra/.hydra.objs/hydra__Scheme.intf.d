lib/hydra/scheme.mli: Analysis Rtsched
