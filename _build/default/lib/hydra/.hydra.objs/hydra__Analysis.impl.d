lib/hydra/analysis.ml: Array List Rtsched
