lib/hydra/period_selection.ml: Analysis Array List Option Rtsched
