lib/hydra/priority_assignment.mli: Analysis Period_selection Rtsched
