lib/hydra/baseline_tmax.mli: Rtsched
