lib/hydra/scheme.ml: Analysis Array Baseline_hydra Baseline_tmax Period_selection Rtsched
