lib/hydra/detection_model.mli:
