let check_dims a b name =
  if Array.length a <> Array.length b || Array.length a = 0 then
    invalid_arg (name ^ ": vectors must have equal non-zero length")

let normalized_distance_to_bound ~periods ~bounds =
  check_dims periods bounds "Metrics.normalized_distance_to_bound";
  let n = Array.length periods in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d =
      float_of_int (bounds.(i) - periods.(i)) /. float_of_int bounds.(i)
    in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int n)

let mean_normalized_difference ~ours ~other ~bounds =
  check_dims ours other "Metrics.mean_normalized_difference";
  check_dims ours bounds "Metrics.mean_normalized_difference";
  let n = Array.length ours in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc :=
      !acc
      +. (float_of_int (other.(i) - ours.(i)) /. float_of_int bounds.(i))
  done;
  !acc /. float_of_int n

let acceptance_ratio ~accepted ~total =
  if total = 0 then 0.0 else float_of_int accepted /. float_of_int total

let mean = function
  | [] -> Float.nan
  | xs ->
      List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev = function
  | [] -> Float.nan
  | xs ->
      let m = mean xs in
      let var =
        List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
        /. float_of_int (List.length xs)
      in
      sqrt var
