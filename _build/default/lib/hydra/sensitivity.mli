(** WCET sensitivity analysis for security tasks — a design-space tool
    the paper's workflow implies: the unschedulability verdict of
    Algorithm 1 "will help the designer in modifying the requirements"
    (Sec. 4.5), and WCETs of monitoring mechanisms are the most
    uncertain input (a Tripwire pass depends on store size). This
    module answers "how much can the monitoring workload grow before
    the set stops being schedulable within the designer bounds?"

    Headroom is expressed in percent: [150] means every (or one)
    security WCET can grow to 1.5x before some task misses its
    [T_s^max] under the HYDRA-C analysis with all periods at their
    bounds (the Algorithm 1 admission check). *)

type report = {
  global_headroom_pct : int option;
      (** largest uniform scaling of every security WCET that stays
          schedulable; [None] when already unschedulable at 100%,
          [Some max_pct] when even the search ceiling fits *)
  per_task_headroom_pct : (Rtsched.Task.sec_task * int option) list;
      (** largest scaling of each task alone (others at their nominal
          WCET), in priority order *)
}

val schedulable_with_scale :
  ?policy:Analysis.carry_in_policy -> Analysis.system ->
  Rtsched.Task.sec_task array -> scale_pct:int ->
  only:Rtsched.Task.sec_task option -> bool
(** Whether the set passes the admission check when the WCET of
    [only] (or of every task when [None]) is scaled by
    [scale_pct / 100] (scaled WCETs are clamped to at least 1 and the
    task becomes trivially infeasible when its WCET exceeds its
    period bound). *)

val analyze :
  ?policy:Analysis.carry_in_policy -> ?max_pct:int -> Analysis.system ->
  Rtsched.Task.sec_task array -> report
(** Binary-searches headroom up to [max_pct] (default 1000 = 10x). *)

val render : Format.formatter -> report -> unit
