(** Security-task priority assignment strategies.

    The paper takes security priorities as designer-given (Sec. 3) and
    leaves their choice open. Because Algorithm 1 minimizes periods
    from the highest priority down, the order matters twice: for
    schedulability (which carry-in patterns arise) and for which tasks
    get the shortest periods. This module implements the standard
    candidate orderings, a first-schedulable search, and a
    best-by-monitoring-frequency search — the machinery behind
    ablation X3 and a practical tool when the designer order is
    unschedulable. *)

type ordering =
  | Designer  (** keep the priorities as given *)
  | Wcet_ascending  (** shortest checks first (SJF-like) *)
  | Wcet_descending  (** heaviest checks first *)
  | Bound_ascending  (** tightest [T_s^max] first (rate-monotonic-like) *)
  | Utilization_descending
      (** highest [C_s / T_s^max] first (most demanding monitors first) *)

val all_orderings : ordering list
val ordering_name : ordering -> string

val apply : ordering -> Rtsched.Task.sec_task array -> Rtsched.Task.sec_task array
(** Fresh array with [sec_prio] reassigned to [0, 1, ...] in the
    ordering (ties broken by [sec_id]; [Designer] still normalizes the
    existing order to dense priorities). *)

val select_with :
  ?policy:Analysis.carry_in_policy -> Analysis.system ->
  Rtsched.Task.sec_task array -> ordering ->
  Period_selection.result
(** Runs Algorithm 1 under the given ordering. *)

val first_schedulable :
  ?policy:Analysis.carry_in_policy -> ?orderings:ordering list ->
  Analysis.system -> Rtsched.Task.sec_task array ->
  (ordering * Period_selection.assignment list) option
(** Tries the orderings in sequence (default {!all_orderings}) and
    returns the first that schedules, with its period assignments. *)

val best_by_distance :
  ?policy:Analysis.carry_in_policy -> ?orderings:ordering list ->
  Analysis.system -> Rtsched.Task.sec_task array ->
  (ordering * Period_selection.assignment list * float) option
(** Among schedulable orderings, the one maximizing the Fig. 6 metric
    (normalized distance of the selected periods to the bounds), i.e.
    the most frequent monitoring. *)
