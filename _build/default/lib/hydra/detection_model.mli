(** Expected intrusion-detection latency as a function of the
    monitoring period — the analytic backbone of the paper's
    motivation ("if the interval between consecutive checking events
    is too large then an attacker may remain undetected", Sec. 1).

    Model: a monitoring task with period [T] scans [n] regions per
    job; a full pass takes wall-clock time [pass] (≥ WCET; longer when
    the scanner is interrupted). An attack lands at a uniformly random
    instant and in a uniformly random region. The attack is caught by
    the first inspection of its region that {e starts} after the
    attack instant, so the latency decomposes into the wait for that
    inspection plus nothing else.

    For an attack landing in region k (inspected [pass*k/n] into each
    job) at phase [u ~ U(0, T)] relative to the current release, the
    next inspection of k starts at the current job's inspection if
    [u < pass*k/n], else at the next job's. Averaging over [u] and [k]
    gives the closed form implemented here:

    [E(latency) = T/2 + pass/(2n) * (n+1) - corr]

    — dominated by [T/2] plus the expected residual scan position. The
    function below computes the exact discrete average rather than the
    approximation, so tests can compare it with simulation tightly. *)

val expected_latency :
  period:int -> pass:int -> n_regions:int -> float
(** Exact expectation of the detection latency (in ticks) under the
    model above, computed by averaging the deterministic latency over
    every phase [u in [0, period)] and region. Requires
    [pass <= period] (the schedulable regime) and [n_regions >= 1]. *)

val latency_at :
  period:int -> pass:int -> n_regions:int -> phase:int -> region:int -> int
(** The deterministic latency for one (phase, region) pair — exposed
    for tests and for the exhaustive averaging. *)

val speedup_pct :
  period_a:int -> pass_a:int -> period_b:int -> pass_b:int ->
  n_regions:int -> float
(** Percentage by which configuration [a] detects faster than [b]
    ([(E_b - E_a) / E_b * 100]) — the model-side counterpart of the
    Fig. 5a measurement. *)
