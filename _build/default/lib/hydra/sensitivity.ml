module Task = Rtsched.Task

type report = {
  global_headroom_pct : int option;
  per_task_headroom_pct : (Task.sec_task * int option) list;
}

let scale_wcet wcet ~scale_pct = max 1 (wcet * scale_pct / 100)

let scaled_tasks secs ~scale_pct ~only =
  Array.map
    (fun (s : Task.sec_task) ->
      let applies =
        match only with
        | None -> true
        | Some (o : Task.sec_task) -> o.Task.sec_id = s.Task.sec_id
      in
      if applies then
        { s with Task.sec_wcet = scale_wcet s.Task.sec_wcet ~scale_pct }
      else s)
    secs

let schedulable_with_scale ?policy sys secs ~scale_pct ~only =
  let scaled = scaled_tasks secs ~scale_pct ~only in
  Array.for_all (fun s -> s.Task.sec_wcet <= s.Task.sec_period_max) scaled
  && (match Period_selection.select ?policy sys scaled with
     | Period_selection.Schedulable _ -> true
     | Period_selection.Unschedulable -> false)

(* Largest feasible percentage in [100, max_pct]; feasibility is
   monotone in the scale (more execution never helps), so binary
   search applies. *)
let headroom ?policy sys secs ~max_pct ~only =
  if not (schedulable_with_scale ?policy sys secs ~scale_pct:100 ~only) then
    None
  else if schedulable_with_scale ?policy sys secs ~scale_pct:max_pct ~only
  then Some max_pct
  else begin
    let rec search lo hi =
      (* invariant: lo feasible, hi infeasible *)
      if hi - lo <= 1 then lo
      else
        let mid = (lo + hi) / 2 in
        if schedulable_with_scale ?policy sys secs ~scale_pct:mid ~only then
          search mid hi
        else search lo mid
    in
    Some (search 100 max_pct)
  end

let analyze ?policy ?(max_pct = 1000) sys secs =
  let sorted = Task.sort_sec_by_priority secs in
  { global_headroom_pct = headroom ?policy sys secs ~max_pct ~only:None;
    per_task_headroom_pct =
      Array.to_list sorted
      |> List.map (fun s ->
             (s, headroom ?policy sys secs ~max_pct ~only:(Some s))) }

let pp_headroom ppf = function
  | None -> Format.pp_print_string ppf "unschedulable at nominal WCETs"
  | Some pct -> Format.fprintf ppf "%d%% (%.2fx)" pct (float_of_int pct /. 100.0)

let render ppf r =
  Format.fprintf ppf "@[<v>WCET sensitivity:@ ";
  Format.fprintf ppf "  all security tasks together: %a@ " pp_headroom
    r.global_headroom_pct;
  List.iter
    (fun ((s : Task.sec_task), h) ->
      Format.fprintf ppf "  %-16s alone: %a@ " s.Task.sec_name pp_headroom h)
    r.per_task_headroom_pct;
  Format.fprintf ppf "@]"
