(** Evaluation metrics over period vectors (Sec. 5.2.2-5.2.3).

    The paper plots (Fig. 6) the "Euclidean distance between the
    calculated period vector T* and maximum period vector Tmax
    (normalized to 1)". We normalize each component by its bound and
    the whole vector by its dimension, so the distance lies in
    [\[0, 1)] regardless of the number of security tasks:
    [d(T, Tmax) = sqrt( (1/N) * sum_i ((Tmax_i - T_i) / Tmax_i)^2 )].

    For Fig. 7b ("average difference between the period vectors" of
    two schemes) we use the signed mean normalized difference
    [(1/N) * sum_i (T_other_i - T_ours_i) / Tmax_i]: non-negative
    exactly when "HYDRA-C finds shorter periods than other schemes",
    matching the figure's reading. *)

val normalized_distance_to_bound :
  periods:int array -> bounds:int array -> float
(** Fig. 6 metric; arrays must have equal non-zero length. Larger
    means the security tasks run more frequently relative to their
    designer bounds. *)

val mean_normalized_difference :
  ours:int array -> other:int array -> bounds:int array -> float
(** Fig. 7b metric; positive when [ours] has the shorter periods. *)

val acceptance_ratio : accepted:int -> total:int -> float
(** [accepted / total]; [0.0] when [total = 0]. *)

val mean : float list -> float
(** Arithmetic mean; [nan] on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; [nan] on the empty list. *)
