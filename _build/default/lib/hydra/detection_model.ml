(* Conventions mirror Security.Detection: region k of a pass occupies
   the progress window [k*pass/n, (k+1)*pass/n) (integer division,
   last region pinned to the full pass); an inspection observes every
   mutation up to its start instant and reports at its end instant. *)

let check_args ~period ~pass ~n_regions =
  if n_regions < 1 then invalid_arg "Detection_model: n_regions < 1";
  if pass < 1 then invalid_arg "Detection_model: pass < 1";
  if period < pass then
    invalid_arg "Detection_model: period < pass (unschedulable regime)"

let latency_at ~period ~pass ~n_regions ~phase ~region =
  check_args ~period ~pass ~n_regions;
  if phase < 0 || phase >= period then
    invalid_arg "Detection_model.latency_at: phase out of [0, period)";
  if region < 0 || region >= n_regions then
    invalid_arg "Detection_model.latency_at: region out of range";
  let start0 = region * pass / n_regions in
  let finish = (region + 1) * pass / n_regions in
  let jobs_to_wait =
    if phase <= start0 then 0
    else (phase - start0 + period - 1) / period
  in
  (jobs_to_wait * period) + finish - phase

let expected_latency ~period ~pass ~n_regions =
  check_args ~period ~pass ~n_regions;
  let total = ref 0 in
  for region = 0 to n_regions - 1 do
    for phase = 0 to period - 1 do
      total := !total + latency_at ~period ~pass ~n_regions ~phase ~region
    done
  done;
  float_of_int !total /. float_of_int (period * n_regions)

let speedup_pct ~period_a ~pass_a ~period_b ~pass_b ~n_regions =
  let ea = expected_latency ~period:period_a ~pass:pass_a ~n_regions in
  let eb = expected_latency ~period:period_b ~pass:pass_b ~n_regions in
  (eb -. ea) /. eb *. 100.0
