(* Tests for the analysis fast path (doc/PERFORMANCE.md): the
   carry-in subset combinatorics, the Top_delta-dominates-every-subset
   soundness property, and the equivalence gate proving the optimized
   path bit-identical to the reference implementation for both
   carry-in policies — single queries, whole Algorithm 1 runs, and
   full sweeps across jobs values. *)

module Task = Rtsched.Task
module Analysis = Hydra.Analysis
module Period_selection = Hydra.Period_selection

let check_int = Test_util.check_int
let check_bool = Test_util.check_bool

(* ------------------------------------------------------------------ *)
(* carry_in_subsets: count law, sizes, order preservation. *)

let binomial n k =
  if k < 0 || k > n then 0
  else begin
    let acc = ref 1 in
    for i = 0 to k - 1 do
      acc := !acc * (n - i) / (i + 1)
    done;
    !acc
  end

let expected_count n max_size =
  if max_size <= 0 then 1
  else begin
    let acc = ref 0 in
    for k = 0 to min n max_size do
      acc := !acc + binomial n k
    done;
    !acc
  end

let test_subset_counts () =
  for n = 0 to 12 do
    let items = List.init n Fun.id in
    List.iter
      (fun max_size ->
        let subsets = Analysis.carry_in_subsets items ~max_size in
        check_int
          (Printf.sprintf "count n=%d max_size=%d" n max_size)
          (expected_count n max_size)
          (List.length subsets))
      [ 0; 1; 2; 3; n ]
  done

let test_subset_sizes_and_order () =
  let items = List.init 9 Fun.id in
  let subsets = Analysis.carry_in_subsets items ~max_size:3 in
  check_bool "no oversized subset" true
    (List.for_all (fun s -> List.length s <= 3) subsets);
  (* Items were given in increasing order, so order preservation means
     every subset is strictly increasing. *)
  let rec increasing = function
    | a :: (b :: _ as rest) -> a < b && increasing rest
    | _ -> true
  in
  check_bool "order-preserving" true (List.for_all increasing subsets);
  check_int "no duplicates" (List.length subsets)
    (List.length (List.sort_uniq compare subsets))

(* ------------------------------------------------------------------ *)
(* Shared scaffolding for the property tests: build the system and a
   consistent hp chain (periods at the bounds, responses computed
   top-down by the analysis itself, exactly as Algorithm 1 would). *)

let hp_chain ?policy ?fast sys (sorted : Task.sec_task array) upto =
  let rec go i acc =
    if i >= upto then Some (List.rev acc)
    else
      let s = sorted.(i) in
      match
        Analysis.response_time ?policy ?fast sys ~hp:(List.rev acc)
          ~wcet:s.Task.sec_wcet ~limit:s.Task.sec_period_max
      with
      | None -> None
      | Some r ->
          go (i + 1)
            ({ Analysis.hp_task = s; hp_period = s.Task.sec_period_max;
               hp_resp = r }
             :: acc)
  in
  go 0 []

let with_taskset ts f =
  let sys =
    Analysis.make_system ts ~assignment:(Test_util.round_robin_assignment ts)
  in
  let sorted = Task.sort_sec_by_priority ts.Task.sec in
  f sys sorted

(* Top_delta upper-bounds the response under every admissible fixed
   carry-in subset (the certificate the branch-and-bound path leans
   on, doc/PERFORMANCE.md). *)
let prop_top_delta_bounds_every_subset =
  let arb = Test_util.arb_taskset ~n_cores:3 ~n_rt:4 ~n_sec:5 in
  Test_util.qtest ~count:120 "Top_delta >= every fixed subset" arb (fun ts ->
      with_taskset ts @@ fun sys sorted ->
      let target = sorted.(Array.length sorted - 1) in
      match hp_chain sys sorted (Array.length sorted - 1) with
      | None -> true (* chain already unschedulable: nothing to compare *)
      | Some hp -> (
          let wcet = target.Task.sec_wcet in
          let limit = target.Task.sec_period_max in
          match Analysis.response_time ~policy:Analysis.Top_delta sys ~hp
                  ~wcet ~limit
          with
          | None -> true (* no certificate; nothing claimed *)
          | Some r_top ->
              Analysis.carry_in_subsets
                (List.map (fun h -> h.Analysis.hp_task.Task.sec_id) hp)
                ~max_size:(sys.Analysis.n_cores - 1)
              |> List.for_all (fun carry_in_ids ->
                     match
                       Analysis.response_time_fixed_subset sys ~hp
                         ~carry_in_ids ~wcet ~limit
                     with
                     | Some r -> r <= r_top
                     | None -> false (* must converge under the cert *))))

(* Equivalence gate, single WCRT queries: fast = naive for both
   policies, both the value and the None verdict. *)
let prop_response_time_fast_equals_naive =
  let arb = Test_util.arb_taskset ~n_cores:3 ~n_rt:4 ~n_sec:5 in
  Test_util.qtest ~count:120 "response_time fast = naive" arb (fun ts ->
      with_taskset ts @@ fun sys sorted ->
      let n = Array.length sorted in
      List.for_all
        (fun policy ->
          match hp_chain ~policy sys sorted (n - 1) with
          | None -> true
          | Some hp ->
              let target = sorted.(n - 1) in
              let wcet = target.Task.sec_wcet in
              let limit = target.Task.sec_period_max in
              let naive =
                Analysis.response_time ~policy ~fast:false sys ~hp ~wcet
                  ~limit
              in
              let fast =
                Analysis.response_time ~policy ~fast:true sys ~hp ~wcet
                  ~limit
              in
              naive = fast)
        [ Analysis.Top_delta; Analysis.Exhaustive ])

let same_select_result a b =
  match (a, b) with
  | Period_selection.Unschedulable, Period_selection.Unschedulable -> true
  | Period_selection.Schedulable xs, Period_selection.Schedulable ys ->
      List.length xs = List.length ys
      && List.for_all2
           (fun (x : Period_selection.assignment)
                (y : Period_selection.assignment) ->
             x.sec.Task.sec_id = y.sec.Task.sec_id
             && x.period = y.period && x.resp = y.resp)
           xs ys
  | _ -> false

(* Equivalence gate, whole Algorithm 1 runs (this also exercises the
   warm-start floor and the commit/scratch bookkeeping). A fresh
   system per run so the workload cache of one run cannot leak into
   the timing of another (results would match anyway — the cache is
   observationally pure). *)
let prop_select_fast_equals_naive =
  let arb = Test_util.arb_taskset ~n_cores:3 ~n_rt:4 ~n_sec:5 in
  Test_util.qtest ~count:120 "select fast = naive" arb (fun ts ->
      List.for_all
        (fun policy ->
          let run fast =
            with_taskset ts @@ fun sys _ ->
            Period_selection.select ~policy ~fast sys ts.Task.sec
          in
          same_select_result (run false) (run true))
        [ Analysis.Top_delta; Analysis.Exhaustive ])

(* ------------------------------------------------------------------ *)
(* Sweep-level equivalence across jobs values: the fast path composes
   with the parallel pool (one system per taskset per worker, so the
   per-system cache is never shared across domains) and the records
   stay bit-identical to the naive path for every jobs value. *)

let test_sweep_fast_naive_across_jobs () =
  let run ~fast ~jobs =
    Experiments.Sweep.run ~policy:Hydra.Analysis.Exhaustive ~fast ~jobs
      ~n_cores:2 ~per_group:2 ~seed:7 ()
  in
  let reference = run ~fast:false ~jobs:1 in
  List.iter
    (fun (fast, jobs) ->
      let sweep = run ~fast ~jobs in
      check_bool
        (Printf.sprintf "records fast=%b jobs=%d" fast jobs)
        true
        (sweep.Experiments.Sweep.records
        = reference.Experiments.Sweep.records))
    [ (true, 1); (true, 4); (false, 4) ]

(* The fast path's own counters exist and are consistent: hits only
   ever follow misses on the same system, and the exhaustive pruning
   counters appear once a multi-core exhaustive query ran. *)
let test_fast_path_counters () =
  let ts = Security.Rover.taskset () in
  let obs = Hydra_obs.create () in
  let sys =
    Analysis.make_system ts ~assignment:(Security.Rover.rt_assignment ())
  in
  (match
     Period_selection.select ~policy:Analysis.Exhaustive ~fast:true ~obs sys
       ts.Task.sec
   with
  | Period_selection.Unschedulable -> Alcotest.fail "rover must schedule"
  | Period_selection.Schedulable _ -> ());
  let counters = Hydra_obs.counters obs in
  let total name =
    match
      List.find_opt (fun c -> c.Hydra_obs.cv_name = name) counters
    with
    | Some c -> c.Hydra_obs.cv_total
    | None -> 0
  in
  check_bool "cache misses recorded" true (total "analysis.cache.miss" > 0);
  check_bool "cache hits recorded" true (total "analysis.cache.hit" > 0);
  check_bool "subsets enumerated" true
    (total "analysis.carry_in.subsets" > 0)

(* ------------------------------------------------------------------ *)
(* Cache hygiene: the stats accessor, the bounded-size eviction knob
   (flush-on-full must keep results bit-identical while capping the
   entry count), and the per-core refresh entry point. *)

let test_cache_stats_and_bound () =
  let ts = Security.Rover.taskset () in
  let asg = Security.Rover.rt_assignment () in
  let run capacity =
    let sys = Analysis.make_system ts ~assignment:asg in
    Analysis.set_cache_capacity sys capacity;
    let result =
      Period_selection.select ~fast:true sys ts.Task.sec
    in
    (result, Analysis.cache_stats sys)
  in
  let unbounded, su = run 0 in
  check_bool "unbounded populates" true (su.Analysis.cs_entries > 0);
  check_bool "misses counted" true (su.Analysis.cs_misses > 0);
  check_bool "hits counted" true (su.Analysis.cs_hits > 0);
  check_int "no evictions unbounded" 0 su.Analysis.cs_evictions;
  check_int "entries = misses when unbounded" su.Analysis.cs_misses
    su.Analysis.cs_entries;
  let cap = max 1 (su.Analysis.cs_entries / 4) in
  let bounded, sb = run cap in
  check_bool "bound respected" true (sb.Analysis.cs_entries <= cap);
  check_bool "evictions happened" true (sb.Analysis.cs_evictions > 0);
  check_bool "bounded = unbounded results" true
    (same_select_result unbounded bounded);
  (* lowering the capacity below the live entry count flushes now *)
  let sys = Analysis.make_system ts ~assignment:asg in
  ignore (Period_selection.select ~fast:true sys ts.Task.sec);
  let n0 = (Analysis.cache_stats sys).Analysis.cs_entries in
  check_bool "populated" true (n0 > 1);
  Analysis.set_cache_capacity sys 1;
  check_int "immediate flush" 0 (Analysis.cache_stats sys).Analysis.cs_entries

let test_refresh_rt_cores () =
  let ts = Security.Rover.taskset () in
  let asg = Security.Rover.rt_assignment () in
  let sys = Analysis.make_system ts ~assignment:asg in
  ignore (Period_selection.select ~fast:true sys ts.Task.sec);
  let stats0 = Analysis.cache_stats sys in
  check_bool "populated" true (stats0.Analysis.cs_entries > 0);
  (* drop every RT task from core 0, keep the others: refreshed
     responses must equal a cold system built on the same partition *)
  let new_cores = Array.copy sys.Analysis.rt_cores in
  new_cores.(0) <- [];
  let changed = Array.make sys.Analysis.n_cores false in
  changed.(0) <- true;
  let refreshed = Analysis.refresh_rt_cores sys new_cores ~changed in
  let stats1 = Analysis.cache_stats refreshed in
  check_int "same entries" stats0.Analysis.cs_entries stats1.Analysis.cs_entries;
  check_bool "columns rewritten" true (stats1.Analysis.cs_refreshes > 0);
  let cold =
    { Analysis.n_cores = sys.Analysis.n_cores; rt_cores = new_cores;
      cache = Analysis.fresh_cache () }
  in
  check_bool "refreshed = cold rebuild" true
    (same_select_result
       (Period_selection.select ~fast:true refreshed ts.Task.sec)
       (Period_selection.select ~fast:true cold ts.Task.sec));
  (* core-count changes are structural *)
  Alcotest.check_raises "core count change refused"
    (Invalid_argument
       "Analysis.refresh_rt_cores: core count changed — build a fresh system \
        with make_system instead") (fun () ->
      ignore
        (Analysis.refresh_rt_cores sys
           (Array.make (sys.Analysis.n_cores + 1) [])
           ~changed:(Array.make (sys.Analysis.n_cores + 1) false)))

(* warm0 floors and bounds_out: a select warm-started from a previous
   run's all-bounds responses is bit-identical to a cold select, and
   bounds_out re-runs reproduce themselves (fixed point of the
   export). *)
let prop_warm0_identical =
  let arb = Test_util.arb_taskset ~n_cores:3 ~n_rt:4 ~n_sec:5 in
  Test_util.qtest ~count:80 "select warm0 = cold select" arb (fun ts ->
      let n_sec = Array.length ts.Task.sec in
      let run ?warm0 ?bounds_out () =
        with_taskset ts @@ fun sys _ ->
        Period_selection.select ~fast:true ?warm0 ?bounds_out sys ts.Task.sec
      in
      let bounds = Array.make n_sec 0 in
      let cold = run ~bounds_out:bounds () in
      match cold with
      | Period_selection.Unschedulable -> true (* bounds not exported *)
      | Period_selection.Schedulable _ ->
          let bounds2 = Array.make n_sec 0 in
          let warm = run ~warm0:bounds ~bounds_out:bounds2 () in
          same_select_result cold warm
          && bounds = bounds2
          (* naive path exports the same all-bounds vector *)
          &&
          let bounds3 = Array.make n_sec 0 in
          (with_taskset ts @@ fun sys _ ->
           ignore
             (Period_selection.select ~fast:false ~bounds_out:bounds3 sys
                ts.Task.sec));
          bounds = bounds3)

(* Search hints steer the probe order of the Algorithm 2 threshold
   search, never its result: any hint vector — the previous selection,
   the exact answer, or adversarial garbage — yields a bit-identical
   selection. *)
let prop_hints_identical =
  let arb =
    QCheck.pair
      (Test_util.arb_taskset ~n_cores:3 ~n_rt:4 ~n_sec:5)
      QCheck.(small_int)
  in
  Test_util.qtest ~count:80 "select hints = plain select" arb
    (fun (ts, salt) ->
      let n_sec = Array.length ts.Task.sec in
      let run ?hints () =
        with_taskset ts @@ fun sys _ ->
        Period_selection.select ~fast:true ?hints sys ts.Task.sec
      in
      let plain = run () in
      (* adversarial hints: deterministic pseudo-random values around
         the period bounds, including 0 (= no hint) and overshoots *)
      let garbage =
        Array.init n_sec (fun i ->
            let pmax = ts.Task.sec.(i).Task.sec_period_max in
            (salt + (31 * i)) mod (pmax + 7))
      in
      let exact =
        match plain with
        | Period_selection.Unschedulable -> None
        | Period_selection.Schedulable asg ->
            Some (Period_selection.period_vector asg ~n_sec)
      in
      same_select_result plain (run ~hints:garbage ())
      && (match exact with
         | None -> true
         | Some h -> same_select_result plain (run ~hints:h ()))
      (* short/empty hint vectors are ignored gracefully *)
      && same_select_result plain (run ~hints:[||] ()))

let () =
  Alcotest.run "analysis_fast_path"
    [ ( "carry_in_subsets",
        [ Alcotest.test_case "count law n<=12" `Quick test_subset_counts;
          Alcotest.test_case "sizes and order" `Quick
            test_subset_sizes_and_order ] );
      ( "soundness",
        [ prop_top_delta_bounds_every_subset ] );
      ( "equivalence",
        [ prop_response_time_fast_equals_naive;
          prop_select_fast_equals_naive;
          Alcotest.test_case "sweep across jobs" `Quick
            test_sweep_fast_naive_across_jobs ] );
      ( "counters",
        [ Alcotest.test_case "fast-path counters" `Quick
            test_fast_path_counters ] );
      ( "cache_hygiene",
        [ Alcotest.test_case "stats + bounded eviction" `Quick
            test_cache_stats_and_bound;
          Alcotest.test_case "refresh_rt_cores" `Quick test_refresh_rt_cores;
          prop_warm0_identical; prop_hints_identical ] ) ]
