(* Tests for the scheduling substrate: task model, workload functions
   (Eqs. 2-5), uniprocessor TDA (Eq. 1), partitioning heuristics and
   the global multicore RTA. *)

module Task = Rtsched.Task
module Workload = Rtsched.Workload
module Rta = Rtsched.Rta_uniproc
module Partition = Rtsched.Partition
module Global = Rtsched.Rta_global

let check_int = Test_util.check_int
let check_bool = Test_util.check_bool

(* ------------------------------------------------------------------ *)
(* Task model *)

let test_make_rt_defaults () =
  let t = Task.make_rt ~id:3 ~prio:1 ~wcet:2 ~period:10 () in
  check_int "implicit deadline" 10 t.Task.rt_deadline;
  Alcotest.(check string) "default name" "rt3" t.Task.rt_name

let test_make_rt_rejects_bad_wcet () =
  let raised =
    try ignore (Task.make_rt ~id:0 ~prio:0 ~wcet:0 ~period:10 ()); false
    with Task.Invalid_task _ -> true
  in
  check_bool "wcet < 1 rejected" true raised

let test_make_rt_rejects_deadline_gt_period () =
  let raised =
    try
      ignore (Task.make_rt ~id:0 ~prio:0 ~wcet:1 ~period:5 ~deadline:6 ());
      false
    with Task.Invalid_task _ -> true
  in
  check_bool "deadline > period rejected" true raised

let test_make_sec_rejects_tight_bound () =
  let raised =
    try
      ignore (Task.make_sec ~id:0 ~prio:0 ~wcet:10 ~period_max:9 ());
      false
    with Task.Invalid_task _ -> true
  in
  check_bool "period_max < wcet rejected" true raised

let test_taskset_rejects_duplicate_priorities () =
  let rt =
    [ Task.make_rt ~id:0 ~prio:0 ~wcet:1 ~period:10 ();
      Task.make_rt ~id:1 ~prio:0 ~wcet:1 ~period:20 () ]
  in
  let raised =
    try ignore (Task.make_taskset ~n_cores:1 ~rt ~sec:[]); false
    with Task.Invalid_task _ -> true
  in
  check_bool "duplicate priority rejected" true raised

let test_rate_monotonic_order () =
  let tasks =
    [ Task.make_rt ~id:0 ~prio:9 ~wcet:1 ~period:100 ();
      Task.make_rt ~id:1 ~prio:9 ~wcet:1 ~period:10 ();
      Task.make_rt ~id:2 ~prio:9 ~wcet:1 ~period:50 () ]
  in
  let rm = Task.assign_rate_monotonic tasks in
  let prio_of id = (List.find (fun t -> t.Task.rt_id = id) rm).Task.rt_prio in
  check_int "shortest period highest" 0 (prio_of 1);
  check_int "middle" 1 (prio_of 2);
  check_int "longest period lowest" 2 (prio_of 0)

let test_utilization_accounting () =
  let rt = [ Task.make_rt ~id:0 ~prio:0 ~wcet:25 ~period:100 () ] in
  let sec = [ Task.make_sec ~id:0 ~prio:0 ~wcet:50 ~period_max:200 () ] in
  let ts = Task.make_taskset ~n_cores:2 ~rt ~sec in
  Alcotest.(check (float 1e-9)) "rt util" 0.25 (Task.total_rt_utilization ts);
  Alcotest.(check (float 1e-9)) "total min util" 0.5
    (Task.total_min_utilization ts);
  Alcotest.(check (float 1e-9)) "normalized" 0.25
    (Task.normalized_utilization ts)

(* ------------------------------------------------------------------ *)
(* Workload functions *)

(* Brute-force synchronous workload: jobs released at 0, T, 2T, ...,
   each executing [wcet] ticks immediately on release (Lemma 1's
   as-early-as-possible pattern). *)
let brute_force_nc ~wcet ~period x =
  let acc = ref 0 in
  for t = 0 to x - 1 do
    let release = t / period * period in
    if t < release + wcet then incr acc
  done;
  !acc

let test_non_carry_in_matches_brute_force () =
  List.iter
    (fun (wcet, period) ->
      for x = 0 to 3 * period do
        check_int
          (Printf.sprintf "W_nc C=%d T=%d x=%d" wcet period x)
          (brute_force_nc ~wcet ~period x)
          (Workload.non_carry_in ~wcet ~period x)
      done)
    [ (1, 4); (3, 7); (5, 5); (2, 10) ]

let test_non_carry_in_edge_cases () =
  check_int "x=0" 0 (Workload.non_carry_in ~wcet:3 ~period:10 0);
  check_int "negative window" 0 (Workload.non_carry_in ~wcet:3 ~period:10 (-5));
  check_int "exactly one period" 3 (Workload.non_carry_in ~wcet:3 ~period:10 10)

let test_request_bound_dominates_nc () =
  for x = 0 to 100 do
    let nc = Workload.non_carry_in ~wcet:3 ~period:10 x in
    let rb = Workload.request_bound ~wcet:3 ~period:10 x in
    check_bool (Printf.sprintf "rbf >= W_nc at %d" x) true (rb >= nc)
  done

let test_carry_in_formula () =
  (* C=3, T=10, R=5: xbar = 3-1+10-5 = 7.
     W_ci(x) = W_nc(max(x-7,0)) + min(x,2). *)
  check_int "x=2" 2 (Workload.carry_in ~wcet:3 ~period:10 ~resp:5 2);
  check_int "x=7" 2 (Workload.carry_in ~wcet:3 ~period:10 ~resp:5 7);
  check_int "x=10"
    (Workload.non_carry_in ~wcet:3 ~period:10 3 + 2)
    (Workload.carry_in ~wcet:3 ~period:10 ~resp:5 10);
  check_int "x=0" 0 (Workload.carry_in ~wcet:3 ~period:10 ~resp:5 0)

let test_interference_clamp () =
  check_int "clamped" 6 (Workload.interference ~job_wcet:5 ~window:10 100);
  check_int "not clamped" 3 (Workload.interference ~job_wcet:5 ~window:10 3);
  check_int "never negative" 0
    (Workload.interference ~job_wcet:20 ~window:10 100)

let prop_workload_monotone =
  let arb =
    QCheck.(triple (int_range 1 20) (int_range 1 50) (int_range 0 200))
  in
  Test_util.qtest "W_nc monotone in x" arb (fun (wcet, p, x) ->
      let period = max wcet p in
      Workload.non_carry_in ~wcet ~period x
      <= Workload.non_carry_in ~wcet ~period (x + 1))

let prop_workload_antitone_in_period =
  (* Longer period never increases the synchronous workload — the
     monotonicity Algorithm 2's binary search relies on. *)
  let arb =
    QCheck.(triple (int_range 1 20) (int_range 1 100) (int_range 0 300))
  in
  Test_util.qtest "W_nc antitone in period" arb (fun (wcet, p, x) ->
      let period = max wcet p in
      Workload.non_carry_in ~wcet ~period x
      >= Workload.non_carry_in ~wcet ~period:(period + 1) x)

let prop_carry_in_bounds =
  let arb =
    QCheck.(
      quad (int_range 1 20) (int_range 1 100) (int_range 0 100)
        (int_range 0 300))
  in
  Test_util.qtest "W_ci within [0, x]" arb (fun (wcet, p, slack, x) ->
      let period = max wcet p in
      let resp = min period (wcet + slack) in
      let w = Workload.carry_in ~wcet ~period ~resp x in
      w >= 0 && w <= max 0 x)

(* ------------------------------------------------------------------ *)
(* Uniprocessor TDA *)

let hp wcet period = { Rta.hp_wcet = wcet; hp_period = period }

let test_rta_no_interference () =
  Alcotest.(check (option int)) "alone" (Some 7)
    (Rta.response_time ~hp:[] ~wcet:7 ~limit:100 ())

let test_rta_liu_layland_example () =
  (* Classic: tasks (1,4), (2,6), (3,13) on one core. *)
  Alcotest.(check (option int)) "tau1" (Some 1)
    (Rta.response_time ~hp:[] ~wcet:1 ~limit:4 ());
  Alcotest.(check (option int)) "tau2" (Some 3)
    (Rta.response_time ~hp:[ hp 1 4 ] ~wcet:2 ~limit:6 ());
  Alcotest.(check (option int)) "tau3" (Some 10)
    (Rta.response_time ~hp:[ hp 1 4; hp 2 6 ] ~wcet:3 ~limit:13 ())

let test_rta_unschedulable () =
  Alcotest.(check (option int)) "over limit" None
    (Rta.response_time ~hp:[ hp 5 10 ] ~wcet:6 ~limit:10 ())

let test_rta_exact_at_full_utilization () =
  (* (2,4) + (2,4): second task has R = 4 exactly. *)
  Alcotest.(check (option int)) "fits exactly" (Some 4)
    (Rta.response_time ~hp:[ hp 2 4 ] ~wcet:2 ~limit:4 ())

let test_core_rt_schedulable () =
  let core =
    [ Task.make_rt ~id:0 ~prio:0 ~wcet:1 ~period:4 ();
      Task.make_rt ~id:1 ~prio:1 ~wcet:2 ~period:6 ();
      Task.make_rt ~id:2 ~prio:2 ~wcet:3 ~period:13 () ]
  in
  check_bool "liu-layland set schedulable" true (Rta.core_rt_schedulable core);
  let overloaded = Task.make_rt ~id:3 ~prio:3 ~wcet:4 ~period:14 () :: core in
  check_bool "overloaded set" false (Rta.core_rt_schedulable overloaded)

(* Response time bounds observed behaviour: simulate one core and
   compare the maximum observed response against the analysis. *)
let prop_rta_bounds_simulation =
  let arb = Test_util.arb_taskset ~n_cores:1 ~n_rt:4 ~n_sec:0 in
  Test_util.qtest ~count:60 "uniproc RTA bounds simulated responses" arb
    (fun ts ->
      let core = Array.to_list ts.Task.rt in
      QCheck.assume (Rta.core_rt_schedulable core);
      let built =
        Sim.Scenario.of_taskset ts
          ~rt_assignment:(Array.make (Array.length ts.Task.rt) 0)
          ~policy:Sim.Policy.Fully_partitioned ~sec_periods:[||] ()
      in
      let stats =
        Sim.Engine.run ~n_cores:1 ~horizon:3000 built.Sim.Scenario.tasks
      in
      Array.for_all
        (fun (t : Task.rt_task) ->
          match Rta.rt_response_time ~core t with
          | None -> false
          | Some bound ->
              Sim.Metrics.max_response stats
                ~sim_id:built.Sim.Scenario.rt_sim_ids.(t.Task.rt_id)
              <= bound)
        ts.Task.rt)

(* ------------------------------------------------------------------ *)
(* Partitioning *)

let test_partition_respects_tda () =
  let rt =
    List.init 6 (fun i ->
        Task.make_rt ~id:i ~prio:i ~wcet:3 ~period:(10 + i) ())
  in
  let ts = Task.make_taskset ~n_cores:2 ~rt ~sec:[] in
  match Partition.partition_rt ts with
  | None -> Alcotest.fail "expected partitionable"
  | Some assignment ->
      check_bool "assignment passes TDA" true
        (Rta.partitioned_rt_schedulable ts ~assignment)

let test_partition_fails_when_overloaded () =
  let rt =
    List.init 4 (fun i -> Task.make_rt ~id:i ~prio:i ~wcet:9 ~period:10 ())
  in
  let ts = Task.make_taskset ~n_cores:2 ~rt ~sec:[] in
  check_bool "overload unpartitionable" true (Partition.partition_rt ts = None)

let test_partition_single_core_exact_fit () =
  let rt =
    [ Task.make_rt ~id:0 ~prio:0 ~wcet:2 ~period:4 ();
      Task.make_rt ~id:1 ~prio:1 ~wcet:2 ~period:4 () ]
  in
  let ts = Task.make_taskset ~n_cores:1 ~rt ~sec:[] in
  check_bool "exactly fits one core" true (Partition.partition_rt ts <> None)

let test_cores_of_assignment_sorted () =
  let rt =
    [ Task.make_rt ~id:0 ~prio:1 ~wcet:1 ~period:10 ();
      Task.make_rt ~id:1 ~prio:0 ~wcet:1 ~period:5 () ]
  in
  let ts = Task.make_taskset ~n_cores:1 ~rt ~sec:[] in
  let cores = Partition.cores_of_assignment ts [| 0; 0 |] in
  match cores.(0) with
  | [ a; b ] ->
      check_int "highest priority first" 0 a.Task.rt_prio;
      check_int "then lower" 1 b.Task.rt_prio
  | _ -> Alcotest.fail "expected two tasks on core 0"

let prop_partition_heuristics_all_valid =
  let arb = Test_util.arb_taskset ~n_cores:3 ~n_rt:6 ~n_sec:0 in
  Test_util.qtest ~count:60 "every heuristic yields TDA-valid partitions" arb
    (fun ts ->
      List.for_all
        (fun heuristic ->
          match Partition.partition_rt ~heuristic ts with
          | None -> true
          | Some assignment -> Rta.partitioned_rt_schedulable ts ~assignment)
        [ Partition.Best_fit; Partition.First_fit; Partition.Worst_fit ])

(* ------------------------------------------------------------------ *)
(* Taskset file I/O *)

module Io = Rtsched.Taskset_io

let rover_file = "\
cores 2\n\
# comment line\n\
rt navigation 240 500\n\
rt camera 1120 5000 5000   # trailing comment\n\
sec tripwire 5342 10000\n\
sec kmod 223 10000\n"

let test_io_parse_rover () =
  match Io.parse rover_file with
  | Error msg -> Alcotest.fail msg
  | Ok ts ->
      check_int "cores" 2 ts.Task.n_cores;
      check_int "rt count" 2 (Array.length ts.Task.rt);
      check_int "sec count" 2 (Array.length ts.Task.sec);
      Alcotest.(check (float 1e-4)) "utilization" 1.2605
        (Task.total_min_utilization ts)

let test_io_rm_priorities_assigned () =
  match Io.parse rover_file with
  | Error msg -> Alcotest.fail msg
  | Ok ts ->
      let nav =
        Array.to_list ts.Task.rt
        |> List.find (fun t -> t.Task.rt_name = "navigation")
      in
      check_int "shorter period gets higher priority" 0 nav.Task.rt_prio

let test_io_sec_priority_is_file_order () =
  match Io.parse rover_file with
  | Error msg -> Alcotest.fail msg
  | Ok ts ->
      let tripwire =
        Array.to_list ts.Task.sec
        |> List.find (fun s -> s.Task.sec_name = "tripwire")
      in
      check_int "first sec line is highest priority" 0
        tripwire.Task.sec_prio

let test_io_round_trip () =
  match Io.parse rover_file with
  | Error msg -> Alcotest.fail msg
  | Ok ts -> (
      match Io.parse (Io.to_string ts) with
      | Error msg -> Alcotest.fail msg
      | Ok ts' ->
          Alcotest.(check string) "round-trip stable" (Io.to_string ts)
            (Io.to_string ts'))

let prop_io_round_trip_random =
  let arb = Test_util.arb_taskset ~n_cores:3 ~n_rt:5 ~n_sec:4 in
  Test_util.qtest ~count:100 "file format round-trips any taskset" arb
    (fun ts ->
      match Io.parse (Io.to_string ts) with
      | Error _ -> false
      | Ok ts' ->
          (* parameters survive; priorities are re-derived but stable *)
          Io.to_string ts = Io.to_string ts'
          && Array.length ts'.Task.rt = Array.length ts.Task.rt
          && Array.length ts'.Task.sec = Array.length ts.Task.sec
          && Rtsched.Task.total_min_utilization ts'
             = Rtsched.Task.total_min_utilization ts)

let test_io_errors () =
  let expect_error label content =
    match Io.parse content with
    | Ok _ -> Alcotest.failf "%s: expected an error" label
    | Error msg -> check_bool label true (String.length msg > 0)
  in
  expect_error "missing cores" "rt a 1 10\n";
  expect_error "bad integer" "cores 2\nrt a one 10\n";
  expect_error "unknown directive" "cores 2\nfoo bar\n";
  expect_error "invalid task" "cores 2\nrt a 0 10\n";
  expect_error "too many rt fields" "cores 2\nrt a 1 10 10 10\n"

(* ------------------------------------------------------------------ *)
(* Exact oracle vs TDA *)

module Exact = Rtsched.Exact

(* Small divisor-friendly periods keep the hyperperiod tractable. *)
let arb_small_core =
  let open QCheck.Gen in
  let periods = [| 4; 5; 8; 10; 16; 20; 40 |] in
  let gen_task i =
    int_range 0 (Array.length periods - 1) >>= fun pi ->
    let period = periods.(pi) in
    int_range 1 (period / 2) >>= fun wcet ->
    return (Task.make_rt ~id:i ~prio:i ~wcet ~period ())
  in
  QCheck.make
    ~print:(fun tasks ->
      String.concat "; " (List.map Task.show_rt tasks))
    (int_range 2 4 >>= fun n -> flatten_l (List.init n gen_task))

let test_exact_lcm () =
  let t p = Task.make_rt ~id:p ~prio:p ~wcet:1 ~period:p () in
  check_int "lcm" 20 (Exact.lcm_periods [ t 4; t 5; t 10 ])

let test_exact_known_schedulable () =
  let tasks =
    [ Task.make_rt ~id:0 ~prio:0 ~wcet:2 ~period:4 ();
      Task.make_rt ~id:1 ~prio:1 ~wcet:2 ~period:8 () ]
  in
  match Exact.simulate tasks with
  | Exact.Schedulable [ r0; r1 ] ->
      check_int "hp response" 2 r0;
      check_int "lp response" 4 r1
  | Exact.Schedulable _ | Exact.Unschedulable _
  | Exact.Hyperperiod_too_large ->
      Alcotest.fail "expected schedulable with two responses"

let test_exact_known_unschedulable () =
  let tasks =
    [ Task.make_rt ~id:0 ~prio:0 ~wcet:3 ~period:4 ();
      Task.make_rt ~id:1 ~prio:1 ~wcet:2 ~period:4 () ]
  in
  match Exact.simulate tasks with
  | Exact.Unschedulable 1 -> ()
  | Exact.Unschedulable id -> Alcotest.failf "wrong victim %d" id
  | Exact.Schedulable _ | Exact.Hyperperiod_too_large ->
      Alcotest.fail "expected unschedulable"

let test_exact_budget () =
  let tasks =
    [ Task.make_rt ~id:0 ~prio:0 ~wcet:1 ~period:9973 ();
      Task.make_rt ~id:1 ~prio:1 ~wcet:1 ~period:10007 () ]
  in
  check_bool "budget respected" true
    (Exact.simulate ~max_hyperperiod:1000 tasks
    = Exact.Hyperperiod_too_large)

let prop_tda_agrees_with_exact =
  (* TDA is exact for synchronous constrained-deadline FP on one core:
     verdicts must agree, and for schedulable sets the TDA bound must
     equal the worst observed response. *)
  Test_util.qtest ~count:150 "TDA = exact oracle" arb_small_core (fun tasks ->
      let tda = Rta.core_rt_schedulable tasks in
      match Exact.simulate tasks with
      | Exact.Hyperperiod_too_large -> true
      | Exact.Unschedulable _ -> not tda
      | Exact.Schedulable worsts ->
          tda
          && List.for_all2
               (fun (t : Task.rt_task) observed ->
                 match Rta.rt_response_time ~core:tasks t with
                 | Some bound -> bound = observed
                 | None -> false)
               tasks worsts)

(* ------------------------------------------------------------------ *)
(* Global RTA *)

let gt name wcet period =
  { Global.g_name = name; g_wcet = wcet; g_period = period;
    g_deadline = period }

let test_global_single_task () =
  Alcotest.(check (list (option int))) "alone" [ Some 3 ]
    (Global.response_times ~n_cores:2 [ gt "a" 3 10 ])

let test_global_fewer_tasks_than_cores () =
  (* With as many cores as tasks nothing ever waits. *)
  let tasks = [ gt "a" 4 10; gt "b" 5 10; gt "c" 6 10 ] in
  Alcotest.(check (list (option int))) "all run immediately"
    [ Some 4; Some 5; Some 6 ]
    (Global.response_times ~n_cores:3 tasks)

let test_global_uniprocessor_upper_bounds () =
  (* On one core the global analysis must upper-bound the exact
     uniprocessor response times (1, 3, 10). *)
  let tasks = [ gt "a" 1 4; gt "b" 2 6; gt "c" 3 13 ] in
  match Global.response_times ~n_cores:1 tasks with
  | [ Some r1; Some r2; Some r3 ] ->
      check_bool "r1" true (r1 >= 1);
      check_bool "r2" true (r2 >= 3);
      check_bool "r3" true (r3 >= 10)
  | _ -> Alcotest.fail "expected three schedulable tasks"

let test_global_unschedulable_cascades () =
  let tasks = [ gt "a" 10 10; gt "b" 10 10; gt "c" 1 10 ] in
  (* Two tasks saturate both cores; the third cannot fit. *)
  match Global.response_times ~n_cores:2 tasks with
  | [ Some _; Some _; r3 ] ->
      Alcotest.(check (option int)) "third starves" None r3
  | _ -> Alcotest.fail "unexpected shape"

let prop_global_bounds_simulation =
  let arb = Test_util.arb_taskset ~n_cores:2 ~n_rt:4 ~n_sec:0 in
  Test_util.qtest ~count:60 "global RTA bounds simulated responses" arb
    (fun ts ->
      let gtasks =
        Global.of_taskset ts ~sec_period:(fun s -> s.Task.sec_period_max)
      in
      let resps = Global.response_times ~n_cores:2 gtasks in
      QCheck.assume (List.for_all Option.is_some resps);
      let built =
        Sim.Scenario.of_taskset ts
          ~rt_assignment:(Test_util.round_robin_assignment ts)
          ~policy:Sim.Policy.Global_all ~sec_periods:[||] ()
      in
      let stats =
        Sim.Engine.run ~n_cores:2 ~horizon:3000 built.Sim.Scenario.tasks
      in
      let sorted = Task.sort_rt_by_priority ts.Task.rt in
      List.for_all2
        (fun (t : Task.rt_task) resp ->
          match resp with
          | None -> false
          | Some bound ->
              Sim.Metrics.max_response stats
                ~sim_id:built.Sim.Scenario.rt_sim_ids.(t.Task.rt_id)
              <= bound)
        (Array.to_list sorted) resps)

let () =
  Alcotest.run "rtsched"
    [ ( "task",
        [ Alcotest.test_case "make_rt defaults" `Quick test_make_rt_defaults;
          Alcotest.test_case "rejects wcet < 1" `Quick
            test_make_rt_rejects_bad_wcet;
          Alcotest.test_case "rejects deadline > period" `Quick
            test_make_rt_rejects_deadline_gt_period;
          Alcotest.test_case "rejects period_max < wcet" `Quick
            test_make_sec_rejects_tight_bound;
          Alcotest.test_case "rejects duplicate priorities" `Quick
            test_taskset_rejects_duplicate_priorities;
          Alcotest.test_case "rate-monotonic order" `Quick
            test_rate_monotonic_order;
          Alcotest.test_case "utilization accounting" `Quick
            test_utilization_accounting ] );
      ( "workload",
        [ Alcotest.test_case "W_nc matches brute force" `Quick
            test_non_carry_in_matches_brute_force;
          Alcotest.test_case "W_nc edge cases" `Quick
            test_non_carry_in_edge_cases;
          Alcotest.test_case "request bound dominates W_nc" `Quick
            test_request_bound_dominates_nc;
          Alcotest.test_case "W_ci formula (Eq. 4)" `Quick
            test_carry_in_formula;
          Alcotest.test_case "interference clamp (Eq. 3/5)" `Quick
            test_interference_clamp;
          prop_workload_monotone;
          prop_workload_antitone_in_period;
          prop_carry_in_bounds ] );
      ( "rta_uniproc",
        [ Alcotest.test_case "no interference" `Quick test_rta_no_interference;
          Alcotest.test_case "liu-layland example" `Quick
            test_rta_liu_layland_example;
          Alcotest.test_case "unschedulable" `Quick test_rta_unschedulable;
          Alcotest.test_case "exact fit" `Quick
            test_rta_exact_at_full_utilization;
          Alcotest.test_case "core schedulability" `Quick
            test_core_rt_schedulable;
          prop_rta_bounds_simulation ] );
      ( "partition",
        [ Alcotest.test_case "respects TDA" `Quick test_partition_respects_tda;
          Alcotest.test_case "fails when overloaded" `Quick
            test_partition_fails_when_overloaded;
          Alcotest.test_case "single core exact fit" `Quick
            test_partition_single_core_exact_fit;
          Alcotest.test_case "cores sorted by priority" `Quick
            test_cores_of_assignment_sorted;
          prop_partition_heuristics_all_valid ] );
      ( "taskset_io",
        [ Alcotest.test_case "parse rover" `Quick test_io_parse_rover;
          Alcotest.test_case "RM priorities" `Quick
            test_io_rm_priorities_assigned;
          Alcotest.test_case "sec file order" `Quick
            test_io_sec_priority_is_file_order;
          Alcotest.test_case "round trip" `Quick test_io_round_trip;
          prop_io_round_trip_random;
          Alcotest.test_case "errors" `Quick test_io_errors ] );
      ( "exact_oracle",
        [ Alcotest.test_case "lcm" `Quick test_exact_lcm;
          Alcotest.test_case "known schedulable" `Quick
            test_exact_known_schedulable;
          Alcotest.test_case "known unschedulable" `Quick
            test_exact_known_unschedulable;
          Alcotest.test_case "hyperperiod budget" `Quick test_exact_budget;
          prop_tda_agrees_with_exact ] );
      ( "rta_global",
        [ Alcotest.test_case "single task" `Quick test_global_single_task;
          Alcotest.test_case "fewer tasks than cores" `Quick
            test_global_fewer_tasks_than_cores;
          Alcotest.test_case "uniprocessor upper bounds" `Quick
            test_global_uniprocessor_upper_bounds;
          Alcotest.test_case "unschedulable cascades" `Quick
            test_global_unschedulable_cascades;
          prop_global_bounds_simulation ] ) ]
