(* Tests for Hydra_obs: exactness of the striped counters under
   Parallel.Pool domains, span nesting through the Chrome-trace
   exporter (with the minimal JSON parser from Test_util, shared with
   test_lint), the zero-allocation no-op path, and the determinism
   contract (instrumentation never changes results). *)

open Test_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Counters *)

let test_counter_aggregation_parallel () =
  (* Every worker bumps shared counters from its own domain; the
     aggregated totals must be exact, not approximate. *)
  let obs_t = Hydra_obs.create () in
  let obs = Some obs_t in
  let n = 1000 in
  let (_ : unit array) =
    Parallel.Pool.map ~jobs:4
      (fun i ->
        Hydra_obs.incr obs "test.ticks";
        Hydra_obs.add obs "test.weight" i;
        Hydra_obs.observe obs "test.sample" i)
      n
  in
  check_int "incr total" n (Hydra_obs.counter_total obs_t "test.ticks");
  check_int "add total" (n * (n - 1) / 2)
    (Hydra_obs.counter_total obs_t "test.weight");
  match Hydra_obs.dists obs_t with
  | [ d ] ->
      Alcotest.(check string) "dist name" "test.sample" d.Hydra_obs.dv_name;
      check_int "dist count" n d.Hydra_obs.dv_count;
      check_int "dist sum" (n * (n - 1) / 2) d.Hydra_obs.dv_sum;
      check_int "dist min" 0 d.Hydra_obs.dv_min;
      check_int "dist max" (n - 1) d.Hydra_obs.dv_max
  | ds -> Alcotest.failf "expected 1 distribution, got %d" (List.length ds)

let test_counter_total_untouched () =
  let obs_t = Hydra_obs.create () in
  check_int "never-touched counter" 0 (Hydra_obs.counter_total obs_t "ghost");
  check_bool "no counters listed" true (Hydra_obs.counters obs_t = [])

(* ------------------------------------------------------------------ *)
(* Spans and the Chrome-trace exporter *)

let test_span_nesting_round_trip () =
  let obs_t = Hydra_obs.create () in
  let obs = Some obs_t in
  let r =
    Hydra_obs.span obs "outer" (fun () ->
        let a = Hydra_obs.span obs "inner" (fun () -> 21) in
        a * 2)
  in
  check_int "span returns the value" 42 r;
  (match Hydra_obs.span_stats obs_t with
  | [ i; o ] ->
      Alcotest.(check string) "inner first (sorted)" "inner"
        i.Hydra_obs.sv_name;
      Alcotest.(check string) "outer second" "outer" o.Hydra_obs.sv_name;
      check_bool "outer contains inner duration" true
        (o.Hydra_obs.sv_total_ns >= i.Hydra_obs.sv_total_ns)
  | l -> Alcotest.failf "expected 2 span stats, got %d" (List.length l));
  (* The export must be valid JSON with both events, and the inner
     event's interval must nest inside the outer one on the same tid —
     that containment is exactly what Perfetto uses to draw stacks. *)
  let json = parse_json (Hydra_obs.chrome_trace obs_t) in
  let events =
    member "traceEvents" json |> as_list
    |> List.filter (fun e -> as_str (member "ph" e) = "X")
  in
  check_int "two X events" 2 (List.length events);
  let find name =
    List.find (fun e -> as_str (member "name" e) = name) events
  in
  let outer = find "outer" and inner = find "inner" in
  let ts e = as_num (member "ts" e)
  and dur e = as_num (member "dur" e)
  and tid e = as_num (member "tid" e) in
  check_bool "same tid" true (tid outer = tid inner);
  check_bool "inner starts after outer" true (ts inner >= ts outer);
  check_bool "inner ends before outer" true
    (ts inner +. dur inner <= ts outer +. dur outer +. 0.001)

let test_span_records_on_exception () =
  let obs_t = Hydra_obs.create () in
  let obs = Some obs_t in
  (try Hydra_obs.span obs "boom" (fun () -> failwith "x") with
  | Failure _ -> ());
  match Hydra_obs.span_stats obs_t with
  | [ s ] ->
      Alcotest.(check string) "span recorded" "boom" s.Hydra_obs.sv_name;
      check_int "once" 1 s.Hydra_obs.sv_count
  | l -> Alcotest.failf "expected 1 span stat, got %d" (List.length l)

let test_chrome_trace_escapes_names () =
  let obs_t = Hydra_obs.create () in
  let obs = Some obs_t in
  Hydra_obs.span obs "weird \"name\"\\with\nstuff" (fun () -> ());
  (* Must stay parseable despite quotes, backslashes and newlines. *)
  let json = parse_json (Hydra_obs.chrome_trace obs_t) in
  let events =
    member "traceEvents" json |> as_list
    |> List.filter (fun e -> as_str (member "ph" e) = "X")
  in
  check_int "one event" 1 (List.length events)

(* ------------------------------------------------------------------ *)
(* No-op path *)

let test_noop_allocates_nothing () =
  (* On None every recording call must stay allocation-free so that
     instrumentation can live in the Eq. 7 fixed-point loop. Counter
     names are static literals and the payloads immediate ints, so the
     minor heap must not move at all across many calls. *)
  let tick = Hydra_obs.incr None
  and weigh = Hydra_obs.add None
  and sample = Hydra_obs.observe None in
  (* warm up (any one-time allocation happens here) *)
  tick "x"; weigh "y" 3; sample "z" 7;
  let before = Gc.minor_words () in
  for i = 0 to 9_999 do
    tick "x";
    weigh "y" i;
    sample "z" i
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check (float 0.0)) "no minor allocation on the None path" 0.0
    allocated

let test_results_identical_with_and_without_obs () =
  (* The determinism contract: threading a live registry through the
     sweep must not change a single record. *)
  let plain =
    Experiments.Sweep.run ~jobs:2 ~n_cores:2 ~per_group:3 ~seed:11 ()
  in
  let obs_t = Hydra_obs.create () in
  let instrumented =
    Experiments.Sweep.run ~jobs:2 ~obs:obs_t ~n_cores:2 ~per_group:3 ~seed:11
      ()
  in
  check_bool "same records" true (plain = instrumented);
  check_bool "and the registry saw the work" true
    (Hydra_obs.counter_total obs_t "analysis.fixpoint.iterations" > 0)

(* ------------------------------------------------------------------ *)
(* Sim.Metrics.record *)

let test_metrics_record () =
  let t =
    { Sim.Engine.st_id = 0; st_name = "t"; st_wcet = 2; st_period = 5;
      st_deadline = 5; st_prio = 0; st_core = Some 0; st_offset = 0 }
  in
  let stats = Sim.Engine.run ~n_cores:1 ~horizon:50 [ t ] in
  let obs_t = Hydra_obs.create () in
  Sim.Metrics.record (Some obs_t) stats;
  Sim.Metrics.record None stats;
  check_int "context switches surfaced" stats.Sim.Engine.context_switches
    (Hydra_obs.counter_total obs_t "sim.context_switches");
  check_int "busy ticks surfaced" stats.Sim.Engine.busy_ticks
    (Hydra_obs.counter_total obs_t "sim.busy_ticks");
  check_int "one run" 1 (Hydra_obs.counter_total obs_t "sim.runs")

let test_engine_run_with_obs () =
  let t =
    { Sim.Engine.st_id = 0; st_name = "t"; st_wcet = 2; st_period = 5;
      st_deadline = 5; st_prio = 0; st_core = Some 0; st_offset = 0 }
  in
  let obs_t = Hydra_obs.create () in
  let stats = Sim.Engine.run ~obs:obs_t ~n_cores:1 ~horizon:50 [ t ] in
  check_int "counter matches stats" stats.Sim.Engine.context_switches
    (Hydra_obs.counter_total obs_t "sim.context_switches");
  match Hydra_obs.span_stats obs_t with
  | [ s ] -> Alcotest.(check string) "sim.run span" "sim.run" s.Hydra_obs.sv_name
  | l -> Alcotest.failf "expected 1 span stat, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Histograms *)

module H = Hydra_obs.Histogram

(* The documented oracle: quantile q of the recorded multiset is the
   bucket-rounded rank-ceil(q*n) order statistic, clamped to the exact
   maximum. *)
let oracle vs q =
  let sorted = List.sort Int.compare (List.map (fun v -> max v 0) vs) in
  let n = List.length sorted in
  let rank = int_of_float (Float.ceil (q *. float_of_int n)) in
  let rank = if rank < 1 then 1 else if rank > n then n else rank in
  let v = List.nth sorted (rank - 1) in
  let mx = List.fold_left max 0 sorted in
  min (H.round_up v) mx

let sample_list_arb =
  (* Mixed magnitudes so samples straddle many octaves, plus negatives
     to exercise the clamp-to-0 rule. *)
  QCheck.make
    ~print:QCheck.Print.(list int)
    QCheck.Gen.(
      list_size (int_range 1 300)
        (oneof
           [ int_range (-5) 70; int_range 0 10_000; int_range 0 10_000_000 ]))

let prop_quantile_matches_oracle =
  qtest ~count:300 "quantile = sorted-sample oracle" sample_list_arb (fun vs ->
      let h = H.of_list vs in
      List.for_all
        (fun q -> H.quantile h q = oracle vs q)
        [ 0.01; 0.25; 0.50; 0.90; 0.95; 0.99; 1.0 ])

let prop_quantiles_monotone =
  qtest ~count:300 "p50 <= p95 <= p99 <= max" sample_list_arb (fun vs ->
      let h = H.of_list vs in
      let p50 = H.quantile h 0.50 and p95 = H.quantile h 0.95 in
      let p99 = H.quantile h 0.99 in
      let mx = match H.max_value h with Some m -> m | None -> 0 in
      p50 <= p95 && p95 <= p99 && p99 <= mx)

let test_histogram_exact_below_64 () =
  (* Every value below 64 sits in its own singleton bucket, so all
     quantiles are exact order statistics there. *)
  let vs = [ 5; 5; 9; 13; 21; 34; 55; 63; 0; 1 ] in
  let h = H.of_list vs in
  let sorted = List.sort Int.compare vs in
  List.iteri
    (fun i q ->
      check_int
        (Printf.sprintf "rank %d exact" (i + 1))
        (List.nth sorted i) (H.quantile h q))
    (List.init (List.length vs) (fun i ->
         float_of_int (i + 1) /. float_of_int (List.length vs)))

let test_histogram_basic_stats () =
  let h = H.of_list [ 10; 20; 30 ] in
  check_int "count" 3 (H.count h);
  check_int "sum" 60 (H.sum h);
  check_bool "min" true (H.min_value h = Some 10);
  check_bool "max" true (H.max_value h = Some 30);
  Alcotest.(check (float 1e-9)) "mean" 20.0 (H.mean h);
  let e = H.create () in
  check_bool "empty mean is nan" true (Float.is_nan (H.mean e));
  check_bool "empty min" true (H.min_value e = None);
  check_bool "empty quantile raises" true
    (try ignore (H.quantile e 0.5); false with Invalid_argument _ -> true);
  check_bool "q out of range raises" true
    (try ignore (H.quantile h 1.5); false with Invalid_argument _ -> true)

let test_histogram_merge_order_independent () =
  let a = [ 1; 100; 3_000; 70_000 ] and b = [ 2; 64; 65; 1_000_000 ] in
  let forward = H.of_list (a @ b) and backward = H.of_list (b @ a) in
  let merged = H.of_list a in
  H.merge_into ~into:merged (H.of_list b);
  List.iter
    (fun (name, h) ->
      check_bool (name ^ ": same buckets") true
        (H.nonzero_buckets h = H.nonzero_buckets forward);
      check_int (name ^ ": same count") (H.count forward) (H.count h);
      check_int (name ^ ": same sum") (H.sum forward) (H.sum h))
    [ ("reversed", backward); ("merge_into", merged) ]

let test_striped_recording_matches_sequential () =
  (* The same multiset recorded concurrently from 4 domains must
     aggregate to exactly the sequential histogram: bucket counts add
     commutatively, so interleaving cannot matter. *)
  let n = 2000 in
  let value i = (i * 7919) mod 100_000 in
  let obs_t = Hydra_obs.create () in
  let obs = Some obs_t in
  let (_ : unit array) =
    Parallel.Pool.map ~jobs:4
      (fun i -> Hydra_obs.sample obs "test.lat" (value i))
      n
  in
  let reference = H.of_list (List.init n value) in
  match Hydra_obs.hists obs_t with
  | [ hv ] ->
      Alcotest.(check string) "name" "test.lat" hv.Hydra_obs.hv_name;
      let h = hv.Hydra_obs.hv_hist in
      check_bool "buckets equal sequential" true
        (H.nonzero_buckets h = H.nonzero_buckets reference);
      check_int "count" (H.count reference) (H.count h);
      check_int "sum" (H.sum reference) (H.sum h);
      List.iter
        (fun q ->
          check_int
            (Printf.sprintf "q%.2f" q)
            (H.quantile reference q) (H.quantile h q))
        [ 0.5; 0.95; 0.99; 1.0 ]
  | l -> Alcotest.failf "expected 1 histogram, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Snapshot exporter *)

let test_json_float_non_finite () =
  Alcotest.(check string) "nan" "null" (Hydra_obs.Snapshot.json_float Float.nan);
  Alcotest.(check string) "+inf" "null"
    (Hydra_obs.Snapshot.json_float Float.infinity);
  Alcotest.(check string) "-inf" "null"
    (Hydra_obs.Snapshot.json_float Float.neg_infinity);
  Alcotest.(check string) "finite" "1.5" (Hydra_obs.Snapshot.json_float 1.5)

let test_mean_response_nan_snapshot_regression () =
  (* A task whose first release lies past the horizon finishes no job:
     mean_response is nan and must serialize as null, not bare NaN. *)
  let t =
    { Sim.Engine.st_id = 0; st_name = "late"; st_wcet = 1; st_period = 100;
      st_deadline = 100; st_prio = 0; st_core = Some 0; st_offset = 1000 }
  in
  let stats = Sim.Engine.run ~n_cores:1 ~horizon:50 [ t ] in
  let m = Sim.Metrics.mean_response stats ~sim_id:0 in
  check_bool "mean_response is nan" true (Float.is_nan m);
  Alcotest.(check string) "serializes as null" "null"
    (Hydra_obs.Snapshot.json_float m)

let test_snapshot_schema_and_quantiles () =
  let obs_t = Hydra_obs.create () in
  let obs = Some obs_t in
  Hydra_obs.incr obs "test.runs";
  Hydra_obs.observe obs "test.dist" 7;
  List.iter (Hydra_obs.sample obs "test.lat") [ 3; 14; 159; 2653 ];
  Hydra_obs.span obs "test.span" (fun () -> ());
  let text = Hydra_obs.Snapshot.to_json obs_t in
  let contains_nan =
    let n = String.length text in
    let rec scan i =
      i + 3 <= n && (String.sub text i 3 = "NaN" || scan (i + 1))
    in
    scan 0
  in
  check_bool "no bare NaN anywhere" false contains_nan;
  let json = parse_json text in
  Alcotest.(check string) "schema" Hydra_obs.Snapshot.schema
    (as_str (member "schema" json));
  check_int "counter value" 1
    (int_of_float (as_num (member "test.runs" (member "counters" json))));
  let hist = member "test.lat" (member "histograms" json) in
  check_int "hist count" 4 (int_of_float (as_num (member "count" hist)));
  let q name = int_of_float (as_num (member name (member "quantiles" hist))) in
  let reference = H.of_list [ 3; 14; 159; 2653 ] in
  check_int "p50" (H.quantile reference 0.50) (q "p50");
  check_int "p95" (H.quantile reference 0.95) (q "p95");
  check_int "p99" (H.quantile reference 0.99) (q "p99");
  check_int "max" 2653 (q "max");
  check_bool "quantiles monotone" true
    (q "p50" <= q "p95" && q "p95" <= q "p99" && q "p99" <= q "max");
  let buckets = as_list (member "buckets" hist) in
  check_bool "buckets present" true (buckets <> []);
  let total =
    List.fold_left
      (fun acc b -> acc + int_of_float (as_num (member "count" b)))
      0 buckets
  in
  check_int "bucket counts sum to count" 4 total;
  check_int "span count" 1
    (int_of_float (as_num (member "count" (member "test.span" (member "spans" json)))))

(* ------------------------------------------------------------------ *)
(* Pool scheduling metrics (profiling-gated) *)

let test_pool_metrics_without_profiling () =
  (* Default registry: only the deterministic workload counters may
     appear — no wall-clock scheduling metrics, or the byte-identical
     across --jobs contract breaks. *)
  let obs_t = Hydra_obs.create () in
  let obs = Some obs_t in
  let (_ : int array) = Parallel.Pool.map ?obs ~jobs:4 (fun i -> i * i) 32 in
  check_int "pool.maps" 1 (Hydra_obs.counter_total obs_t "pool.maps");
  check_int "pool.items" 32 (Hydra_obs.counter_total obs_t "pool.items");
  check_int "no pool.workers" 0 (Hydra_obs.counter_total obs_t "pool.workers");
  check_int "no pool.chunks" 0 (Hydra_obs.counter_total obs_t "pool.chunks");
  check_bool "no scheduling histograms" true (Hydra_obs.hists obs_t = []);
  check_bool "no pool.worker span" true (Hydra_obs.span_stats obs_t = [])

let test_pool_metrics_with_profiling () =
  (* Under profiling the counts are still exact functions of the
     workload shape: one claim per chunk, one busy/idle sample and one
     span per worker. Only the recorded durations are wall-clock. *)
  let obs_t = Hydra_obs.create () in
  Hydra_obs.enable_profiling obs_t;
  let obs = Some obs_t in
  let n = 32 and jobs = 4 in
  let (_ : int array) = Parallel.Pool.map ?obs ~jobs (fun i -> i * i) n in
  check_int "pool.workers" jobs (Hydra_obs.counter_total obs_t "pool.workers");
  check_int "one claim per chunk" n
    (Hydra_obs.counter_total obs_t "pool.chunks");
  let hist name =
    match
      List.find_opt
        (fun hv -> hv.Hydra_obs.hv_name = name)
        (Hydra_obs.hists obs_t)
    with
    | Some hv -> hv.Hydra_obs.hv_hist
    | None -> Alcotest.failf "histogram %s missing" name
  in
  check_int "one queue-wait sample per claim" n
    (H.count (hist "pool.queue_wait_ns"));
  check_int "one busy sample per worker" jobs
    (H.count (hist "pool.worker.busy_ns"));
  check_int "one idle sample per worker" jobs
    (H.count (hist "pool.worker.idle_ns"));
  match Hydra_obs.span_stats obs_t with
  | [ s ] ->
      Alcotest.(check string) "pool.worker span" "pool.worker"
        s.Hydra_obs.sv_name;
      check_int "one span per worker" jobs s.Hydra_obs.sv_count
  | l -> Alcotest.failf "expected 1 span stat, got %d" (List.length l)

let test_pool_seq_path_never_profiles () =
  (* jobs = 1 is the plain sequential loop: no workers exist, so even a
     profiling registry sees no scheduling metrics. *)
  let obs_t = Hydra_obs.create () in
  Hydra_obs.enable_profiling obs_t;
  let obs = Some obs_t in
  let (_ : int array) = Parallel.Pool.map ?obs ~jobs:1 (fun i -> i) 10 in
  check_int "pool.items" 10 (Hydra_obs.counter_total obs_t "pool.items");
  check_int "no workers" 0 (Hydra_obs.counter_total obs_t "pool.workers");
  check_bool "no histograms" true (Hydra_obs.hists obs_t = [])

(* ------------------------------------------------------------------ *)
(* Multi-domain traces and migration flow arrows *)

let prop_multi_domain_trace_valid =
  qtest ~count:30 "concurrent spans render to valid Chrome JSON"
    QCheck.(pair (int_range 2 4) (int_range 1 60))
    (fun (jobs, n) ->
      let obs_t = Hydra_obs.create () in
      let obs = Some obs_t in
      let (_ : int array) =
        Parallel.Pool.map ?obs ~jobs
          (fun i ->
            Hydra_obs.span obs "outer" (fun () ->
                Hydra_obs.span obs "inner" (fun () -> i * i)))
          n
      in
      let json = parse_json (Hydra_obs.chrome_trace obs_t) in
      let xs =
        member "traceEvents" json |> as_list
        |> List.filter (fun e -> as_str (member "ph" e) = "X")
      in
      (* two spans per item, however the domains interleaved *)
      List.length xs = 2 * n)

(* The migration-forcing scenario from test_sim.ml: two alternating
   pinned hogs squeeze a migrating low-prio global task between the
   cores. *)
let migration_tasks () =
  [ { Sim.Engine.st_id = 0; st_name = "hogA"; st_wcet = 3; st_period = 6;
      st_deadline = 6; st_prio = 0; st_core = Some 0; st_offset = 0 };
    { Sim.Engine.st_id = 1; st_name = "hogB"; st_wcet = 3; st_period = 6;
      st_deadline = 6; st_prio = 1; st_core = Some 1; st_offset = 3 };
    { Sim.Engine.st_id = 2; st_name = "drift"; st_wcet = 6; st_period = 12;
      st_deadline = 12; st_prio = 2; st_core = None; st_offset = 0 } ]

let test_trace_flow_arrows_paired () =
  (* Spans recorded concurrently from pool workers share the trace file
     with the simulated schedule (pid 1); every migration must render
     as a flow-start "s" on the old core paired with exactly one
     flow-finish "f" on the new core, under the same id. *)
  let log = Sim.Event_log.create ~n_cores:2 in
  let stats =
    Sim.Engine.run ~hooks:(Sim.Event_log.hooks log) ~n_cores:2 ~horizon:48
      (migration_tasks ())
  in
  check_bool "scenario migrates" true (stats.Sim.Engine.migrations > 0);
  let obs_t = Hydra_obs.create () in
  Hydra_obs.enable_profiling obs_t;
  let obs = Some obs_t in
  let (_ : unit array) =
    Parallel.Pool.map ?obs ~jobs:4
      (fun i ->
        Hydra_obs.span obs "work" (fun () -> ignore (Sys.opaque_identity i)))
      64
  in
  let extra = Sim.Event_log.chrome_events log ~pid:1 in
  let json = parse_json (Hydra_obs.chrome_trace ~extra obs_t) in
  let events = member "traceEvents" json |> as_list in
  let flow_ids ph =
    events
    |> List.filter (fun e -> as_str (member "ph" e) = ph)
    |> List.map (fun e -> int_of_float (as_num (member "id" e)))
    |> List.sort Int.compare
  in
  let starts = flow_ids "s" and finishes = flow_ids "f" in
  check_int "one flow pair per migration" stats.Sim.Engine.migrations
    (List.length starts);
  check_bool "every start paired with exactly one finish" true
    (starts = finishes);
  let rec all_distinct = function
    | a :: b :: _ when a = b -> false
    | _ :: tl -> all_distinct tl
    | [] -> true
  in
  check_bool "flow ids unique" true (all_distinct starts)

(* ------------------------------------------------------------------ *)
(* Runtime profiler *)

let test_runtime_profiler_smoke () =
  let obs_t = Hydra_obs.create () in
  Hydra_obs.enable_profiling obs_t;
  match Hydra_obs.Runtime.start ~poll_ms:50 obs_t with
  | None -> () (* Runtime_events unavailable: degrade like the CLI *)
  | Some p ->
      (* force GC activity so the rings carry phase events *)
      for _ = 1 to 3 do
        ignore
          (Sys.opaque_identity
             (Array.init 50_000 (fun i -> string_of_int i)));
        Gc.full_major ();
        Hydra_obs.Runtime.poll p
      done;
      Hydra_obs.Runtime.stop p;
      Hydra_obs.Runtime.poll p (* no-op after stop *)
      ;
      check_bool "collected gc slices" true
        (Hydra_obs.Runtime.slice_count p > 0);
      let pause_hists =
        List.filter
          (fun hv ->
            hv.Hydra_obs.hv_name = "gc.minor_pause_ns"
            || hv.Hydra_obs.hv_name = "gc.major_pause_ns")
          (Hydra_obs.hists obs_t)
      in
      check_bool "gc pause histograms recorded" true (pause_hists <> []);
      (* the slices splice into a registry trace as pid-2 rows *)
      let extra = Hydra_obs.Runtime.chrome_events p ~pid:2 in
      let json = parse_json (Hydra_obs.chrome_trace ~extra obs_t) in
      let evs = member "traceEvents" json |> as_list in
      check_bool "gc-category slices present in trace" true
        (List.exists
           (fun e ->
             (try as_str (member "cat" e) = "gc" with _ -> false)
             && as_str (member "ph" e) = "X")
           evs)

(* ------------------------------------------------------------------ *)
(* Ticker period alignment *)

let test_ticker_rejects_bad_period () =
  check_bool "period 0 raises" true
    (try
       ignore (Hydra_obs.Ticker.start ~period_ms:0 (fun () -> ()));
       false
     with Invalid_argument _ -> true)

let test_ticker_aligned_to_boundaries () =
  (* Deadline-aligned ticks fire at start + k*period, so N ticks can
     never complete in less than (N-1) periods — the regression this
     guards against is the old drift-free-running ticker that scheduled
     each tick [period] after the previous callback returned. Only a
     lower bound is asserted: an upper bound would race the CI
     scheduler. *)
  let ticks = Atomic.make 0 in
  let t0 = Hydra_obs.now_ns () in
  let tk =
    Hydra_obs.Ticker.start ~period_ms:5 (fun () ->
        (* a callback that eats a fair fraction of the period must not
           stretch the spacing *)
        Unix.sleepf 0.002;
        Atomic.incr ticks)
  in
  while Atomic.get ticks < 6 do
    Domain.cpu_relax ()
  done;
  let elapsed = Hydra_obs.now_ns () - t0 in
  Hydra_obs.Ticker.stop tk;
  check_bool "6 ticks span at least 5 periods" true
    (elapsed >= 5 * 5_000_000)

(* ------------------------------------------------------------------ *)
(* Request-scoped tracing *)

let test_trace_ctx_ids () =
  let r = Hydra_obs.Trace_ctx.root () in
  check_int "root span = trace" r.Hydra_obs.Trace_ctx.trace_id
    r.Hydra_obs.Trace_ctx.span_id;
  check_int "root parent 0" 0 r.Hydra_obs.Trace_ctx.parent_id;
  let c = Hydra_obs.Trace_ctx.child r in
  check_int "child keeps trace" r.Hydra_obs.Trace_ctx.trace_id
    c.Hydra_obs.Trace_ctx.trace_id;
  check_int "child parent = root span" r.Hydra_obs.Trace_ctx.span_id
    c.Hydra_obs.Trace_ctx.parent_id;
  check_bool "child span fresh" true
    (c.Hydra_obs.Trace_ctx.span_id <> r.Hydra_obs.Trace_ctx.span_id);
  let g = Hydra_obs.Trace_ctx.child c in
  check_int "grandchild parent = child span" c.Hydra_obs.Trace_ctx.span_id
    g.Hydra_obs.Trace_ctx.parent_id;
  check_int "grandchild keeps trace" r.Hydra_obs.Trace_ctx.trace_id
    g.Hydra_obs.Trace_ctx.trace_id

let test_trace_sampler_deterministic () =
  let count rate n =
    let s = Hydra_obs.Trace_ctx.sampler ~rate in
    List.length
      (List.filter_map
         (fun _ -> Hydra_obs.Trace_ctx.sample s)
         (List.init n Fun.id))
  in
  check_int "rate 0 samples nothing" 0 (count 0.0 100);
  check_int "negative rate samples nothing" 0 (count (-1.0) 100);
  check_int "rate 1 samples everything" 100 (count 1.0 100);
  check_int "rate 2 clamps to everything" 100 (count 2.0 100);
  check_int "rate 0.25 samples every 4th" 25 (count 0.25 100);
  (* head sampling: the very first request of a fractional-rate stream
     is sampled, so short workloads still produce a trace *)
  let s = Hydra_obs.Trace_ctx.sampler ~rate:0.1 in
  check_bool "first request sampled" true
    (Hydra_obs.Trace_ctx.sample s <> None);
  check_bool "second not" true (Hydra_obs.Trace_ctx.sample s = None)

let test_trace_span_chrome_content () =
  let obs_t = Hydra_obs.create () in
  let obs = Some obs_t in
  let root = Hydra_obs.Trace_ctx.root () in
  let ctx = Some root in
  let child = Hydra_obs.Trace_ctx.child root in
  let v =
    Hydra_obs.trace_span obs ctx "server.request" (fun () ->
        Hydra_obs.flow_begin obs ctx "server.dispatch";
        Hydra_obs.flow_end obs ctx "server.dispatch";
        Hydra_obs.trace_span obs (Some child) "server.select" (fun () -> 17))
  in
  check_int "trace_span returns the value" 17 v;
  check_int "4 trace events" 4 (Hydra_obs.trace_count obs_t);
  let json = parse_json (Hydra_obs.chrome_trace obs_t) in
  let events = member "traceEvents" json |> as_list in
  let requests =
    List.filter
      (fun e ->
        (try as_str (member "cat" e) = "request" with _ -> false)
        && as_str (member "ph" e) = "X")
      events
  in
  check_int "two request spans" 2 (List.length requests);
  let find name =
    List.find (fun e -> as_str (member "name" e) = name) requests
  in
  let arg e k = int_of_float (as_num (member k (member "args" e))) in
  let rq = find "server.request" and sel = find "server.select" in
  check_int "shared trace id" (arg rq "trace") (arg sel "trace");
  check_int "root trace id" root.Hydra_obs.Trace_ctx.trace_id (arg rq "trace");
  check_int "child parented under root" (arg rq "span") (arg sel "parent");
  let flows ph =
    List.filter
      (fun e ->
        as_str (member "ph" e) = ph
        && (try as_str (member "cat" e) = "request" with _ -> false))
      events
  in
  (match (flows "s", flows "f") with
  | [ s ], [ f ] ->
      check_int "flow id = trace id" root.Hydra_obs.Trace_ctx.trace_id
        (int_of_float (as_num (member "id" s)));
      check_int "paired under one id"
        (int_of_float (as_num (member "id" s)))
        (int_of_float (as_num (member "id" f)))
  | s, f ->
      Alcotest.failf "expected one s/f flow pair, got %d/%d" (List.length s)
        (List.length f));
  (* trace_emit with explicit timing lands with the given interval *)
  Hydra_obs.trace_emit obs ctx "server.whole" ~start_ns:1_000 ~dur_ns:2_000;
  check_int "emit recorded" 5 (Hydra_obs.trace_count obs_t)

let test_trace_noops_without_ctx_or_obs () =
  let obs_t = Hydra_obs.create () in
  let ctx = Some (Hydra_obs.Trace_ctx.root ()) in
  check_int "no ctx: f still runs" 3
    (Hydra_obs.trace_span (Some obs_t) None "x" (fun () -> 3));
  check_int "no obs: f still runs" 4
    (Hydra_obs.trace_span None ctx "x" (fun () -> 4));
  Hydra_obs.flow_begin (Some obs_t) None "x";
  Hydra_obs.flow_end None ctx "x";
  check_int "nothing recorded" 0 (Hydra_obs.trace_count obs_t)

let test_tracing_never_touches_snapshots () =
  (* The acceptance gate in miniature: the same metric workload, with
     and without request tracing, serializes to the same snapshot bytes
     — trace events live only in the Chrome exporter. *)
  let workload obs =
    Hydra_obs.incr obs "test.runs";
    Hydra_obs.sample obs "test.lat" 42
  in
  let plain = Hydra_obs.create () in
  workload (Some plain);
  let traced = Hydra_obs.create () in
  let ctx = Some (Hydra_obs.Trace_ctx.root ()) in
  Hydra_obs.trace_span (Some traced) ctx "server.request" (fun () ->
      workload (Some traced));
  Hydra_obs.flow_begin (Some traced) ctx "server.dispatch";
  Hydra_obs.flow_end (Some traced) ctx "server.dispatch";
  check_bool "traces recorded" true (Hydra_obs.trace_count traced > 0);
  Alcotest.(check string) "snapshot bytes identical"
    (Hydra_obs.Snapshot.to_json plain)
    (Hydra_obs.Snapshot.to_json traced);
  check_bool "no span aggregates either" true (Hydra_obs.span_stats traced = [])

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

module F = Hydra_obs.Flight

let test_flight_wraparound () =
  let f = F.create ~capacity:8 () in
  check_int "capacity rounded" 8 (F.capacity f);
  let tid = F.intern f "t0" in
  check_int "intern is stable" tid (F.intern f "t0");
  for i = 0 to 19 do
    F.record f ~ts:(i * 10) ~kind:F.Reply ~tenant:tid ~a:i ~b:0
  done;
  check_int "recorded counts everything" 20 (F.recorded f);
  let lines =
    String.split_on_char '\n' (F.dump f)
    |> List.filter (fun l -> l <> "")
  in
  (match lines with
  | header :: events ->
      let h = parse_json header in
      Alcotest.(check string) "schema" F.schema (as_str (member "schema" h));
      check_int "capacity" 8 (int_of_float (as_num (member "capacity" h)));
      check_int "recorded" 20 (int_of_float (as_num (member "recorded" h)));
      check_int "dumped" 8 (int_of_float (as_num (member "dumped" h)));
      check_int "8 surviving events" 8 (List.length events);
      List.iteri
        (fun i line ->
          let e = parse_json line in
          let seq = 12 + i in
          check_int "oldest-first seq" seq
            (int_of_float (as_num (member "seq" e)));
          check_int "ts survived the wrap" (seq * 10)
            (int_of_float (as_num (member "ts_ns" e)));
          Alcotest.(check string) "kind" "reply" (as_str (member "kind" e));
          Alcotest.(check string) "tenant name resolved" "t0"
            (as_str (member "tenant" e)))
        events
  | [] -> Alcotest.fail "empty dump")

let test_flight_dump_deterministic () =
  (* Explicit timestamps make the dump a pure function of the recorded
     sequence: two dumps (and a fresh identically-fed ring) agree
     byte-for-byte. *)
  let feed () =
    let f = F.create ~capacity:16 () in
    let a = F.intern f "alpha" and b = F.intern f "be \"ta\"" in
    List.iteri
      (fun i (k, t) -> F.record f ~ts:(1000 + i) ~kind:k ~tenant:t ~a:i ~b:(-i))
      [ (F.Accept, -1); (F.Decode, a); (F.Coalesce, a); (F.Shard, b);
        (F.Select, b); (F.Reply, a); (F.Slow, -1); (F.Error, -1) ];
    f
  in
  let f = feed () in
  Alcotest.(check string) "dump is stable" (F.dump f) (F.dump f);
  Alcotest.(check string) "dump is a function of the sequence" (F.dump f)
    (F.dump (feed ()));
  List.iter
    (fun l -> if l <> "" then ignore (parse_json l))
    (String.split_on_char '\n' (F.dump f))

let prop_flight_concurrent_writers =
  qtest ~count:20 "concurrent writers never lose or tear events"
    QCheck.(pair (int_range 2 4) (int_range 1 200))
    (fun (jobs, per_domain) ->
      let f = F.create ~capacity:64 () in
      let tid = F.intern f "t" in
      let (_ : unit array) =
        Parallel.Pool.map ~jobs
          (fun i -> F.record f ~ts:i ~kind:F.Accept ~tenant:tid ~a:i ~b:0)
          (jobs * per_domain)
      in
      let total = jobs * per_domain in
      let lines =
        String.split_on_char '\n' (F.dump f)
        |> List.filter (fun l -> l <> "")
      in
      F.recorded f = total
      && List.length lines = 1 + min total 64
      && List.for_all
           (fun l ->
             let e = parse_json l in
             try as_str (member "kind" e) = "accept" with _ -> true)
           (List.tl lines))

(* ------------------------------------------------------------------ *)
(* Rate-limited logging *)

let log_to_buffer ?rate_per_s ?burst () =
  let b = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer b in
  (b, fmt, Hydra_obs.Log.create ?rate_per_s ?burst ~out:fmt ())

let test_log_line_format () =
  let b, fmt, log = log_to_buffer ~rate_per_s:0 () in
  Hydra_obs.Log.log log "listening"
    [ ("socket", "/tmp/x.sock"); ("mode", "warm start"); ("q", {|say "hi"|}) ];
  Format.pp_print_flush fmt ();
  Alcotest.(check string) "structured line, values quoted as needed"
    "[hydra] event=listening socket=/tmp/x.sock mode=\"warm start\" \
     q=\"say \\\"hi\\\"\"\n"
    (Buffer.contents b);
  check_int "emitted" 1 (Hydra_obs.Log.emitted log)

let test_log_rate_limit () =
  let b, fmt, log = log_to_buffer ~rate_per_s:1 ~burst:2 () in
  for i = 1 to 10 do
    Hydra_obs.Log.log log "tick" [ ("i", string_of_int i) ]
  done;
  Format.pp_print_flush fmt ();
  check_int "burst emitted" 2 (Hydra_obs.Log.emitted log);
  check_int "rest suppressed" 8 (Hydra_obs.Log.suppressed log);
  (* after the bucket refills, the next line reports what was dropped *)
  Unix.sleepf 1.2;
  Buffer.clear b;
  Hydra_obs.Log.log log "tick" [ ("i", "11") ];
  Format.pp_print_flush fmt ();
  check_int "refilled token emitted" 3 (Hydra_obs.Log.emitted log);
  check_int "suppression reported and reset" 0 (Hydra_obs.Log.suppressed log);
  Alcotest.(check string) "line carries suppressed count"
    "[hydra] event=tick suppressed=8 i=11\n" (Buffer.contents b)

(* ------------------------------------------------------------------ *)
(* Sliding windows *)

let test_window_ages_out () =
  let w = Hydra_obs.Window.create ~epochs:2 () in
  check_int "epochs floored" 2 (Hydra_obs.Window.epochs w);
  check_bool "empty quantile" true (Hydra_obs.Window.quantile w 0.99 = None);
  Hydra_obs.Window.record w 1_000_000;
  check_bool "spike dominates p99" true
    (match Hydra_obs.Window.quantile w 0.99 with
    | Some q -> q >= 1_000_000
    | None -> false);
  Hydra_obs.Window.rotate w;
  for _ = 1 to 20 do Hydra_obs.Window.record w 10 done;
  (* one epoch later the spike still sits inside the window *)
  check_int "window spans both epochs" 21 (Hydra_obs.Window.count w);
  check_bool "p99 still sees the spike" true
    (match Hydra_obs.Window.quantile w 0.99 with
    | Some q -> q >= 1_000_000
    | None -> false);
  Hydra_obs.Window.rotate w;
  for _ = 1 to 20 do Hydra_obs.Window.record w 10 done;
  (* two rotations: the spike's epoch has been discarded *)
  check_int "spike aged out" 40 (Hydra_obs.Window.count w);
  check_bool "p99 recovered" true
    (match Hydra_obs.Window.quantile w 0.99 with
    | Some q -> q < 1_000_000
    | None -> false);
  check_int "rotations counted" 2 (Hydra_obs.Window.rotations w);
  check_int "merged matches count" 40
    (H.count (Hydra_obs.Window.merged w))

(* ------------------------------------------------------------------ *)
(* Delta trackers (the obs_stream scrape core) *)

let test_delta_tracker_round_trip () =
  let obs_t = Hydra_obs.create () in
  let obs = Some obs_t in
  Hydra_obs.incr obs "test.a";
  Hydra_obs.sample obs "test.lat" 100;
  let tr = Hydra_obs.Snapshot.Delta.create obs_t in
  let l0 = Hydra_obs.Snapshot.Delta.line tr in
  check_int "seq starts at 0" 0
    (int_of_float (as_num (member "seq" (parse_json l0))));
  Alcotest.(check string) "delta schema" Hydra_obs.Snapshot.Delta.schema
    (as_str (member "schema" (parse_json l0)));
  Hydra_obs.incr obs "test.a";
  Hydra_obs.incr obs "test.b";
  Hydra_obs.sample obs "test.lat" 900;
  let l1 = Hydra_obs.Snapshot.Delta.line tr ~label:"after" in
  check_int "seq advances" 1
    (int_of_float (as_num (member "seq" (parse_json l1))));
  Alcotest.(check string) "label carried" "after"
    (as_str (member "label" (parse_json l1)));
  (* folding the tracker's lines reproduces the full snapshot *)
  let folded = Hydra_obs.Report.of_string (l0 ^ "\n" ^ l1 ^ "\n") in
  let full = Hydra_obs.Report.of_string (Hydra_obs.Snapshot.to_json obs_t) in
  check_bool "fold(deltas) = snapshot" true
    (Hydra_obs.Report.flatten folded = Hydra_obs.Report.flatten full);
  (* a consumer that missed nothing gets an empty delta *)
  let l2 = Hydra_obs.Snapshot.Delta.line tr in
  let folded' =
    Hydra_obs.Report.of_string (l0 ^ "\n" ^ l1 ^ "\n" ^ l2 ^ "\n")
  in
  check_bool "idle delta changes nothing" true
    (Hydra_obs.Report.flatten folded' = Hydra_obs.Report.flatten full);
  (* two trackers are independent consumers of one registry *)
  let tr2 = Hydra_obs.Snapshot.Delta.create obs_t in
  let m0 = Hydra_obs.Snapshot.Delta.line tr2 in
  check_int "fresh tracker restarts seq" 0
    (int_of_float (as_num (member "seq" (parse_json m0))));
  check_bool "first line carries full state" true
    (Hydra_obs.Report.flatten (Hydra_obs.Report.of_string (m0 ^ "\n"))
    = Hydra_obs.Report.flatten full)

let test_snapshot_byte_identical_across_jobs () =
  (* The CI gate in miniature: the same workload instrumented at
     jobs=1 and jobs=4 must serialize to the very same bytes. *)
  let snapshot jobs =
    let obs_t = Hydra_obs.create () in
    let (_ : Experiments.Sweep.t) =
      Experiments.Sweep.run ~jobs ~obs:obs_t ~n_cores:2 ~per_group:3 ~seed:11 ()
    in
    let (_ : Experiments.Validation.result) =
      Experiments.Validation.run ~jobs ~obs:obs_t ~n_cores:2 ~tasksets:6
        ~seed:11 ()
    in
    Hydra_obs.Snapshot.to_json obs_t
  in
  let s1 = snapshot 1 and s4 = snapshot 4 in
  Alcotest.(check string) "snapshots byte-identical" s1 s4

let () =
  Alcotest.run "obs"
    [ ( "counters",
        [ Alcotest.test_case "parallel aggregation exact" `Quick
            test_counter_aggregation_parallel;
          Alcotest.test_case "untouched counter is 0" `Quick
            test_counter_total_untouched ] );
      ( "spans",
        [ Alcotest.test_case "nesting round-trips to Chrome JSON" `Quick
            test_span_nesting_round_trip;
          Alcotest.test_case "recorded on exception" `Quick
            test_span_records_on_exception;
          Alcotest.test_case "names escaped in JSON" `Quick
            test_chrome_trace_escapes_names ] );
      ( "no-op",
        [ Alcotest.test_case "allocates nothing" `Quick
            test_noop_allocates_nothing;
          Alcotest.test_case "results identical with/without obs" `Quick
            test_results_identical_with_and_without_obs ] );
      ( "sim-metrics",
        [ Alcotest.test_case "record surfaces engine counters" `Quick
            test_metrics_record;
          Alcotest.test_case "engine run with obs" `Quick
            test_engine_run_with_obs ] );
      ( "histograms",
        [ prop_quantile_matches_oracle;
          prop_quantiles_monotone;
          Alcotest.test_case "exact below 64" `Quick
            test_histogram_exact_below_64;
          Alcotest.test_case "basic stats + errors" `Quick
            test_histogram_basic_stats;
          Alcotest.test_case "merge order-independent" `Quick
            test_histogram_merge_order_independent;
          Alcotest.test_case "striped = sequential" `Quick
            test_striped_recording_matches_sequential ] );
      ( "pool-metrics",
        [ Alcotest.test_case "gated off without profiling" `Quick
            test_pool_metrics_without_profiling;
          Alcotest.test_case "exact counts under profiling" `Quick
            test_pool_metrics_with_profiling;
          Alcotest.test_case "sequential path never profiles" `Quick
            test_pool_seq_path_never_profiles ] );
      ( "trace",
        [ prop_multi_domain_trace_valid;
          Alcotest.test_case "migration flow arrows paired" `Quick
            test_trace_flow_arrows_paired ] );
      ( "runtime",
        [ Alcotest.test_case "profiler smoke (GC slices + trace)" `Quick
            test_runtime_profiler_smoke ] );
      ( "ticker",
        [ Alcotest.test_case "rejects period < 1" `Quick
            test_ticker_rejects_bad_period;
          Alcotest.test_case "ticks align to period boundaries" `Quick
            test_ticker_aligned_to_boundaries ] );
      ( "tracing",
        [ Alcotest.test_case "context ids parent-link" `Quick
            test_trace_ctx_ids;
          Alcotest.test_case "sampler deterministic" `Quick
            test_trace_sampler_deterministic;
          Alcotest.test_case "spans + flows in Chrome JSON" `Quick
            test_trace_span_chrome_content;
          Alcotest.test_case "no-ops without ctx or obs" `Quick
            test_trace_noops_without_ctx_or_obs;
          Alcotest.test_case "never touches snapshots" `Quick
            test_tracing_never_touches_snapshots ] );
      ( "flight",
        [ Alcotest.test_case "ring wraparound keeps the tail" `Quick
            test_flight_wraparound;
          Alcotest.test_case "dump deterministic" `Quick
            test_flight_dump_deterministic;
          prop_flight_concurrent_writers ] );
      ( "log",
        [ Alcotest.test_case "line format + quoting" `Quick
            test_log_line_format;
          Alcotest.test_case "token bucket limits and reports" `Slow
            test_log_rate_limit ] );
      ( "window",
        [ Alcotest.test_case "old epochs age out" `Quick
            test_window_ages_out ] );
      ( "delta",
        [ Alcotest.test_case "tracker folds back to the snapshot" `Quick
            test_delta_tracker_round_trip ] );
      ( "snapshot",
        [ Alcotest.test_case "json_float maps non-finite to null" `Quick
            test_json_float_non_finite;
          Alcotest.test_case "mean_response nan regression" `Quick
            test_mean_response_nan_snapshot_regression;
          Alcotest.test_case "schema, quantiles, buckets" `Quick
            test_snapshot_schema_and_quantiles;
          Alcotest.test_case "byte-identical across jobs" `Quick
            test_snapshot_byte_identical_across_jobs ] ) ]
