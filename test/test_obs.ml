(* Tests for Hydra_obs: exactness of the striped counters under
   Parallel.Pool domains, span nesting through the Chrome-trace
   exporter (with the minimal JSON parser from Test_util, shared with
   test_lint), the zero-allocation no-op path, and the determinism
   contract (instrumentation never changes results). *)

open Test_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Counters *)

let test_counter_aggregation_parallel () =
  (* Every worker bumps shared counters from its own domain; the
     aggregated totals must be exact, not approximate. *)
  let obs_t = Hydra_obs.create () in
  let obs = Some obs_t in
  let n = 1000 in
  let (_ : unit array) =
    Parallel.Pool.map ~jobs:4
      (fun i ->
        Hydra_obs.incr obs "test.ticks";
        Hydra_obs.add obs "test.weight" i;
        Hydra_obs.observe obs "test.sample" i)
      n
  in
  check_int "incr total" n (Hydra_obs.counter_total obs_t "test.ticks");
  check_int "add total" (n * (n - 1) / 2)
    (Hydra_obs.counter_total obs_t "test.weight");
  match Hydra_obs.dists obs_t with
  | [ d ] ->
      Alcotest.(check string) "dist name" "test.sample" d.Hydra_obs.dv_name;
      check_int "dist count" n d.Hydra_obs.dv_count;
      check_int "dist sum" (n * (n - 1) / 2) d.Hydra_obs.dv_sum;
      check_int "dist min" 0 d.Hydra_obs.dv_min;
      check_int "dist max" (n - 1) d.Hydra_obs.dv_max
  | ds -> Alcotest.failf "expected 1 distribution, got %d" (List.length ds)

let test_counter_total_untouched () =
  let obs_t = Hydra_obs.create () in
  check_int "never-touched counter" 0 (Hydra_obs.counter_total obs_t "ghost");
  check_bool "no counters listed" true (Hydra_obs.counters obs_t = [])

(* ------------------------------------------------------------------ *)
(* Spans and the Chrome-trace exporter *)

let test_span_nesting_round_trip () =
  let obs_t = Hydra_obs.create () in
  let obs = Some obs_t in
  let r =
    Hydra_obs.span obs "outer" (fun () ->
        let a = Hydra_obs.span obs "inner" (fun () -> 21) in
        a * 2)
  in
  check_int "span returns the value" 42 r;
  (match Hydra_obs.span_stats obs_t with
  | [ i; o ] ->
      Alcotest.(check string) "inner first (sorted)" "inner"
        i.Hydra_obs.sv_name;
      Alcotest.(check string) "outer second" "outer" o.Hydra_obs.sv_name;
      check_bool "outer contains inner duration" true
        (o.Hydra_obs.sv_total_ns >= i.Hydra_obs.sv_total_ns)
  | l -> Alcotest.failf "expected 2 span stats, got %d" (List.length l));
  (* The export must be valid JSON with both events, and the inner
     event's interval must nest inside the outer one on the same tid —
     that containment is exactly what Perfetto uses to draw stacks. *)
  let json = parse_json (Hydra_obs.chrome_trace obs_t) in
  let events =
    member "traceEvents" json |> as_list
    |> List.filter (fun e -> as_str (member "ph" e) = "X")
  in
  check_int "two X events" 2 (List.length events);
  let find name =
    List.find (fun e -> as_str (member "name" e) = name) events
  in
  let outer = find "outer" and inner = find "inner" in
  let ts e = as_num (member "ts" e)
  and dur e = as_num (member "dur" e)
  and tid e = as_num (member "tid" e) in
  check_bool "same tid" true (tid outer = tid inner);
  check_bool "inner starts after outer" true (ts inner >= ts outer);
  check_bool "inner ends before outer" true
    (ts inner +. dur inner <= ts outer +. dur outer +. 0.001)

let test_span_records_on_exception () =
  let obs_t = Hydra_obs.create () in
  let obs = Some obs_t in
  (try Hydra_obs.span obs "boom" (fun () -> failwith "x") with
  | Failure _ -> ());
  match Hydra_obs.span_stats obs_t with
  | [ s ] ->
      Alcotest.(check string) "span recorded" "boom" s.Hydra_obs.sv_name;
      check_int "once" 1 s.Hydra_obs.sv_count
  | l -> Alcotest.failf "expected 1 span stat, got %d" (List.length l)

let test_chrome_trace_escapes_names () =
  let obs_t = Hydra_obs.create () in
  let obs = Some obs_t in
  Hydra_obs.span obs "weird \"name\"\\with\nstuff" (fun () -> ());
  (* Must stay parseable despite quotes, backslashes and newlines. *)
  let json = parse_json (Hydra_obs.chrome_trace obs_t) in
  let events =
    member "traceEvents" json |> as_list
    |> List.filter (fun e -> as_str (member "ph" e) = "X")
  in
  check_int "one event" 1 (List.length events)

(* ------------------------------------------------------------------ *)
(* No-op path *)

let test_noop_allocates_nothing () =
  (* On None every recording call must stay allocation-free so that
     instrumentation can live in the Eq. 7 fixed-point loop. Counter
     names are static literals and the payloads immediate ints, so the
     minor heap must not move at all across many calls. *)
  let tick = Hydra_obs.incr None
  and weigh = Hydra_obs.add None
  and sample = Hydra_obs.observe None in
  (* warm up (any one-time allocation happens here) *)
  tick "x"; weigh "y" 3; sample "z" 7;
  let before = Gc.minor_words () in
  for i = 0 to 9_999 do
    tick "x";
    weigh "y" i;
    sample "z" i
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check (float 0.0)) "no minor allocation on the None path" 0.0
    allocated

let test_results_identical_with_and_without_obs () =
  (* The determinism contract: threading a live registry through the
     sweep must not change a single record. *)
  let plain =
    Experiments.Sweep.run ~jobs:2 ~n_cores:2 ~per_group:3 ~seed:11 ()
  in
  let obs_t = Hydra_obs.create () in
  let instrumented =
    Experiments.Sweep.run ~jobs:2 ~obs:obs_t ~n_cores:2 ~per_group:3 ~seed:11
      ()
  in
  check_bool "same records" true (plain = instrumented);
  check_bool "and the registry saw the work" true
    (Hydra_obs.counter_total obs_t "analysis.fixpoint.iterations" > 0)

(* ------------------------------------------------------------------ *)
(* Sim.Metrics.record *)

let test_metrics_record () =
  let t =
    { Sim.Engine.st_id = 0; st_name = "t"; st_wcet = 2; st_period = 5;
      st_deadline = 5; st_prio = 0; st_core = Some 0; st_offset = 0 }
  in
  let stats = Sim.Engine.run ~n_cores:1 ~horizon:50 [ t ] in
  let obs_t = Hydra_obs.create () in
  Sim.Metrics.record (Some obs_t) stats;
  Sim.Metrics.record None stats;
  check_int "context switches surfaced" stats.Sim.Engine.context_switches
    (Hydra_obs.counter_total obs_t "sim.context_switches");
  check_int "busy ticks surfaced" stats.Sim.Engine.busy_ticks
    (Hydra_obs.counter_total obs_t "sim.busy_ticks");
  check_int "one run" 1 (Hydra_obs.counter_total obs_t "sim.runs")

let test_engine_run_with_obs () =
  let t =
    { Sim.Engine.st_id = 0; st_name = "t"; st_wcet = 2; st_period = 5;
      st_deadline = 5; st_prio = 0; st_core = Some 0; st_offset = 0 }
  in
  let obs_t = Hydra_obs.create () in
  let stats = Sim.Engine.run ~obs:obs_t ~n_cores:1 ~horizon:50 [ t ] in
  check_int "counter matches stats" stats.Sim.Engine.context_switches
    (Hydra_obs.counter_total obs_t "sim.context_switches");
  match Hydra_obs.span_stats obs_t with
  | [ s ] -> Alcotest.(check string) "sim.run span" "sim.run" s.Hydra_obs.sv_name
  | l -> Alcotest.failf "expected 1 span stat, got %d" (List.length l)

let () =
  Alcotest.run "obs"
    [ ( "counters",
        [ Alcotest.test_case "parallel aggregation exact" `Quick
            test_counter_aggregation_parallel;
          Alcotest.test_case "untouched counter is 0" `Quick
            test_counter_total_untouched ] );
      ( "spans",
        [ Alcotest.test_case "nesting round-trips to Chrome JSON" `Quick
            test_span_nesting_round_trip;
          Alcotest.test_case "recorded on exception" `Quick
            test_span_records_on_exception;
          Alcotest.test_case "names escaped in JSON" `Quick
            test_chrome_trace_escapes_names ] );
      ( "no-op",
        [ Alcotest.test_case "allocates nothing" `Quick
            test_noop_allocates_nothing;
          Alcotest.test_case "results identical with/without obs" `Quick
            test_results_identical_with_and_without_obs ] );
      ( "sim-metrics",
        [ Alcotest.test_case "record surfaces engine counters" `Quick
            test_metrics_record;
          Alcotest.test_case "engine run with obs" `Quick
            test_engine_run_with_obs ] ) ]
