(* Tests for the paper's core: the semi-partitioned WCRT analysis
   (Eqs. 6-8), period selection (Algorithms 1-2), the HYDRA /
   HYDRA-TMax / GLOBAL-TMax baselines, metrics and the scheme
   front-end. *)

module Task = Rtsched.Task
module Analysis = Hydra.Analysis
module Period_selection = Hydra.Period_selection
module Baseline_hydra = Hydra.Baseline_hydra
module Baseline_tmax = Hydra.Baseline_tmax
module Metrics = Hydra.Metrics
module Scheme = Hydra.Scheme

let check_int = Test_util.check_int
let check_bool = Test_util.check_bool

let sec ?(prio = 0) ?(id = 0) wcet period_max =
  Task.make_sec ~id ~prio ~wcet ~period_max ()

let empty_system n_cores =
  { Analysis.n_cores; rt_cores = Array.make n_cores [];
    cache = Analysis.fresh_cache () }

let rover_system () =
  let ts = Security.Rover.taskset () in
  ( ts,
    Analysis.make_system ts ~assignment:(Security.Rover.rt_assignment ()) )

(* ------------------------------------------------------------------ *)
(* Analysis *)

let test_analysis_alone () =
  (* No RT tasks, no higher-priority security tasks: R = C. *)
  Alcotest.(check (option int)) "alone" (Some 9)
    (Analysis.response_time (empty_system 2) ~hp:[] ~wcet:9 ~limit:100)

let test_analysis_more_cores_than_tasks () =
  (* One hp task but two cores: the job under analysis never waits. *)
  let hp =
    [ { Analysis.hp_task = sec 5 50; hp_period = 50; hp_resp = 5 } ]
  in
  Alcotest.(check (option int)) "never waits" (Some 9)
    (Analysis.response_time (empty_system 2) ~hp ~wcet:9 ~limit:100)

let test_analysis_single_core_interference () =
  (* M = 1, hp security task (2,10,R=2): classic uniprocessor-like
     interference with the synchronous workload bound. *)
  let hp =
    [ { Analysis.hp_task = sec 2 10; hp_period = 10; hp_resp = 2 } ]
  in
  match Analysis.response_time (empty_system 1) ~hp ~wcet:5 ~limit:100 with
  | None -> Alcotest.fail "expected schedulable"
  | Some r -> check_bool "bounded sensibly" true (r >= 7 && r <= 10)

let test_analysis_unschedulable () =
  let hp =
    [ { Analysis.hp_task = sec 10 10; hp_period = 10; hp_resp = 10 } ]
  in
  Alcotest.(check (option int)) "saturated core" None
    (Analysis.response_time (empty_system 1) ~hp ~wcet:5 ~limit:200)

let test_analysis_limit_is_respected () =
  Alcotest.(check (option int)) "wcet beyond limit" None
    (Analysis.response_time (empty_system 2) ~hp:[] ~wcet:50 ~limit:49)

let test_analysis_rt_interference_term () =
  let rt0 = Task.make_rt ~id:0 ~prio:0 ~wcet:4 ~period:10 () in
  let sys =
    { Analysis.n_cores = 2; rt_cores = [| [ rt0 ]; [] |];
      cache = Analysis.fresh_cache () }
  in
  (* For a window of 10 and job wcet 2, RT interference is
     min(W_nc(10)=4, 10-2+1=9) = 4. *)
  check_int "rt interference" 4 (Analysis.rt_interference sys ~job_wcet:2 10)

let test_carry_in_subsets () =
  let subsets = Analysis.carry_in_subsets [ 1; 2; 3 ] ~max_size:2 in
  check_int "count of size <= 2 subsets" 7 (List.length subsets);
  check_bool "contains empty" true (List.mem [] subsets);
  check_bool "no oversized subset" true
    (List.for_all (fun s -> List.length s <= 2) subsets)

let test_rover_response_times () =
  (* Regression pins for the rover taskset (split RT assignment):
     tripwire R = 7582, kmod R = 2783 (hand-checked fixed points). *)
  let ts, sys = rover_system () in
  match Period_selection.select sys ts.Task.sec with
  | Period_selection.Unschedulable -> Alcotest.fail "rover must schedule"
  | Period_selection.Schedulable assignments -> (
      match assignments with
      | [ tw; km ] ->
          Alcotest.(check string) "priority order" "tripwire"
            tw.Period_selection.sec.Task.sec_name;
          check_int "tripwire WCRT" 7582 tw.Period_selection.resp;
          check_int "tripwire period" 7582 tw.Period_selection.period;
          check_int "kmod WCRT" 2783 km.Period_selection.resp;
          check_int "kmod period" 2783 km.Period_selection.period
      | _ -> Alcotest.fail "expected two security tasks")

let prop_top_delta_upper_bounds_exhaustive =
  (* The polynomial carry-in bound must dominate the literal Eq. 8
     maximum (it grants the worst M-1 carry-ins at every iterate). *)
  let arb = Test_util.arb_taskset ~n_cores:3 ~n_rt:4 ~n_sec:4 in
  Test_util.qtest ~count:80 "Top_delta >= Exhaustive" arb (fun ts ->
      let sys =
        Analysis.make_system ts
          ~assignment:(Test_util.round_robin_assignment ts)
      in
      let sorted = Task.sort_sec_by_priority ts.Task.sec in
      let target = sorted.(Array.length sorted - 1) in
      let hp =
        Array.to_list sorted
        |> List.filter (fun s -> s.Task.sec_prio < target.Task.sec_prio)
        |> List.map (fun s ->
               { Analysis.hp_task = s; hp_period = s.Task.sec_period_max;
                 hp_resp = s.Task.sec_wcet })
      in
      let r_top =
        Analysis.response_time ~policy:Analysis.Top_delta sys ~hp
          ~wcet:target.Task.sec_wcet ~limit:100_000
      in
      let r_exh =
        Analysis.response_time ~policy:Analysis.Exhaustive sys ~hp
          ~wcet:target.Task.sec_wcet ~limit:100_000
      in
      match (r_top, r_exh) with
      | Some a, Some b -> a >= b
      | None, _ -> true (* top-delta may reject where exhaustive passes *)
      | Some _, None -> false)

let prop_analysis_bounds_simulation =
  (* The semi-partitioned WCRT must bound the response times observed
     by the discrete-event simulator under the same policy. *)
  let arb = Test_util.arb_taskset ~n_cores:2 ~n_rt:3 ~n_sec:3 in
  Test_util.qtest ~count:60 "analysis bounds simulation" arb (fun ts ->
      let assignment = Test_util.round_robin_assignment ts in
      QCheck.assume
        (Rtsched.Rta_uniproc.partitioned_rt_schedulable ts ~assignment);
      let sys = Analysis.make_system ts ~assignment in
      match Period_selection.select sys ts.Task.sec with
      | Period_selection.Unschedulable -> QCheck.assume_fail ()
      | Period_selection.Schedulable assignments ->
          let n_sec = Array.length ts.Task.sec in
          let periods = Period_selection.period_vector assignments ~n_sec in
          let resps = Period_selection.resp_vector assignments ~n_sec in
          let built =
            Sim.Scenario.of_taskset ts ~rt_assignment:assignment
              ~policy:Sim.Policy.Semi_partitioned ~sec_periods:periods ()
          in
          let stats =
            Sim.Engine.run ~n_cores:2 ~horizon:5000 built.Sim.Scenario.tasks
          in
          Array.for_all
            (fun (s : Task.sec_task) ->
              Sim.Metrics.max_response stats
                ~sim_id:built.Sim.Scenario.sec_sim_ids.(s.Task.sec_id)
              <= resps.(s.Task.sec_id))
            ts.Task.sec)

(* ------------------------------------------------------------------ *)
(* Period selection *)

let test_selection_invariants_on_rover () =
  let ts, sys = rover_system () in
  match Period_selection.select sys ts.Task.sec with
  | Period_selection.Unschedulable -> Alcotest.fail "rover must schedule"
  | Period_selection.Schedulable assignments ->
      List.iter
        (fun (a : Period_selection.assignment) ->
          check_bool "R <= T" true (a.Period_selection.resp <= a.period);
          check_bool "T <= Tmax" true
            (a.period <= a.Period_selection.sec.Task.sec_period_max))
        assignments

let test_selection_unschedulable_reported () =
  (* A security task that cannot fit even at its bound. *)
  let rt = [ Task.make_rt ~id:0 ~prio:0 ~wcet:9 ~period:10 () ] in
  let ts =
    Task.make_taskset ~n_cores:1 ~rt ~sec:[ sec ~id:0 100 200 ]
  in
  let sys = Analysis.make_system ts ~assignment:[| 0 |] in
  check_bool "reported unschedulable" true
    (Period_selection.select sys ts.Task.sec = Period_selection.Unschedulable)

let test_selection_minimizes_high_priority_first () =
  (* Two identical security tasks on an otherwise empty dual-core: the
     high-priority one is driven down to its WCRT (= C), the lower one
     to its own fixpoint given that choice. *)
  let ts =
    Task.make_taskset ~n_cores:2 ~rt:[]
      ~sec:[ sec ~id:0 ~prio:0 10 100; sec ~id:1 ~prio:1 10 100 ]
  in
  let sys = Analysis.make_system ts ~assignment:[||] in
  match Period_selection.select sys ts.Task.sec with
  | Period_selection.Unschedulable -> Alcotest.fail "must schedule"
  | Period_selection.Schedulable [ hi; lo ] ->
      check_int "high priority gets its WCRT" 10 hi.Period_selection.period;
      check_bool "low priority feasible" true
        (lo.Period_selection.resp <= lo.Period_selection.period)
  | Period_selection.Schedulable _ -> Alcotest.fail "expected two tasks"

let prop_selection_periods_feasible =
  (* Re-checking every selected period vector from scratch must confirm
     schedulability: R_s <= T_s for every task. *)
  let arb = Test_util.arb_taskset ~n_cores:2 ~n_rt:3 ~n_sec:4 in
  Test_util.qtest ~count:80 "selected periods are feasible" arb (fun ts ->
      let assignment = Test_util.round_robin_assignment ts in
      let sys = Analysis.make_system ts ~assignment in
      match Period_selection.select sys ts.Task.sec with
      | Period_selection.Unschedulable -> true
      | Period_selection.Schedulable assignments ->
          (* recompute responses with the final periods, top-down *)
          let rec verify hp = function
            | [] -> true
            | (a : Period_selection.assignment) :: rest -> (
                match
                  Analysis.response_time sys ~hp
                    ~wcet:a.Period_selection.sec.Task.sec_wcet
                    ~limit:a.Period_selection.sec.Task.sec_period_max
                with
                | None -> false
                | Some r ->
                    r <= a.Period_selection.period
                    && verify
                         (hp
                         @ [ { Analysis.hp_task = a.Period_selection.sec;
                               hp_period = a.Period_selection.period;
                               hp_resp = r } ])
                         rest)
          in
          verify [] assignments)

let prop_selection_minimality =
  (* The selected period of the highest-priority task is minimal: one
     tick less must break some lower-priority task (or dip below its
     own WCRT). *)
  let arb = Test_util.arb_taskset ~n_cores:2 ~n_rt:2 ~n_sec:3 in
  Test_util.qtest ~count:60 "highest-priority period is minimal" arb
    (fun ts ->
      let assignment = Test_util.round_robin_assignment ts in
      let sys = Analysis.make_system ts ~assignment in
      match Period_selection.select sys ts.Task.sec with
      | Period_selection.Unschedulable -> true
      | Period_selection.Schedulable (first :: rest) ->
          let open Period_selection in
          if first.period <= first.resp then true
          else begin
            (* probe T-1: some lower-priority task must fail *)
            let hp_probe =
              { Analysis.hp_task = first.sec; hp_period = first.period - 1;
                hp_resp = first.resp }
            in
            let rec lp_all_ok hp = function
              | [] -> true
              | (a : assignment) :: tl -> (
                  match
                    Analysis.response_time sys ~hp
                      ~wcet:a.sec.Task.sec_wcet
                      ~limit:a.sec.Task.sec_period_max
                  with
                  | None -> false
                  | Some r ->
                      lp_all_ok
                        (hp
                        @ [ { Analysis.hp_task = a.sec;
                              hp_period = a.sec.Task.sec_period_max;
                              hp_resp = r } ])
                        tl)
            in
            not (lp_all_ok [ hp_probe ] rest)
          end
      | Period_selection.Schedulable [] -> true)

let prop_selection_never_below_tmax_feasibility =
  (* Algorithm 1 accepts exactly when the bound-period configuration is
     feasible: minimization never changes the verdict. *)
  let arb = Test_util.arb_taskset ~n_cores:2 ~n_rt:3 ~n_sec:4 in
  Test_util.qtest ~count:80 "verdict = feasibility at the bounds" arb
    (fun ts ->
      let sys =
        Analysis.make_system ts
          ~assignment:(Test_util.round_robin_assignment ts)
      in
      let sorted = Task.sort_sec_by_priority ts.Task.sec in
      (* feasibility at the bounds, computed directly *)
      let rec feasible hp = function
        | [] -> true
        | (s : Task.sec_task) :: rest -> (
            match
              Analysis.response_time sys ~hp ~wcet:s.Task.sec_wcet
                ~limit:s.Task.sec_period_max
            with
            | None -> false
            | Some r ->
                feasible
                  (hp
                  @ [ { Analysis.hp_task = s;
                        hp_period = s.Task.sec_period_max; hp_resp = r } ])
                  rest)
      in
      let direct = feasible [] (Array.to_list sorted) in
      let algo =
        Period_selection.select sys ts.Task.sec
        <> Period_selection.Unschedulable
      in
      direct = algo)

let prop_selection_dominates_tmax_distance =
  (* Selected periods are never longer than the bounds. *)
  let arb = Test_util.arb_taskset ~n_cores:2 ~n_rt:3 ~n_sec:4 in
  Test_util.qtest ~count:80 "T* <= Tmax componentwise" arb (fun ts ->
      let sys =
        Analysis.make_system ts
          ~assignment:(Test_util.round_robin_assignment ts)
      in
      match Period_selection.select sys ts.Task.sec with
      | Period_selection.Unschedulable -> true
      | Period_selection.Schedulable assignments ->
          List.for_all
            (fun (a : Period_selection.assignment) ->
              a.Period_selection.period <= a.sec.Task.sec_period_max
              && a.Period_selection.period >= a.sec.Task.sec_wcet)
            assignments)

(* ------------------------------------------------------------------ *)
(* HYDRA baseline *)

let test_hydra_rover_allocation () =
  let ts, sys = rover_system () in
  match Baseline_hydra.allocate ~minimize:true sys ts.Task.sec with
  | Baseline_hydra.Unschedulable -> Alcotest.fail "rover must schedule"
  | Baseline_hydra.Schedulable [ tw; km ] ->
      (* Tripwire cannot fit with navigation (core 0); kmod prefers the
         navigation core where its response is 463. *)
      check_int "tripwire on camera core" 1 tw.Baseline_hydra.core;
      check_int "tripwire period" 7582 tw.Baseline_hydra.period;
      check_int "kmod on navigation core" 0 km.Baseline_hydra.core;
      check_int "kmod period" 463 km.Baseline_hydra.period
  | Baseline_hydra.Schedulable _ -> Alcotest.fail "expected two allocations"

let test_hydra_tmax_periods_at_bounds () =
  let ts, sys = rover_system () in
  match Baseline_hydra.allocate ~minimize:false sys ts.Task.sec with
  | Baseline_hydra.Unschedulable -> Alcotest.fail "rover must schedule"
  | Baseline_hydra.Schedulable allocs ->
      List.iter
        (fun (a : Baseline_hydra.alloc) ->
          check_int "period pinned at bound"
            a.Baseline_hydra.sec.Task.sec_period_max a.Baseline_hydra.period)
        allocs

let test_hydra_unschedulable () =
  let rt = [ Task.make_rt ~id:0 ~prio:0 ~wcet:9 ~period:10 () ] in
  let ts = Task.make_taskset ~n_cores:1 ~rt ~sec:[ sec ~id:0 50 100 ] in
  let sys = Analysis.make_system ts ~assignment:[| 0 |] in
  check_bool "no core fits" true
    (Baseline_hydra.allocate ~minimize:true sys ts.Task.sec
    = Baseline_hydra.Unschedulable)

let prop_hydra_allocation_feasible =
  let arb = Test_util.arb_taskset ~n_cores:2 ~n_rt:4 ~n_sec:4 in
  Test_util.qtest ~count:80 "HYDRA allocations satisfy per-core RTA" arb
    (fun ts ->
      let assignment = Test_util.round_robin_assignment ts in
      let sys = Analysis.make_system ts ~assignment in
      match Baseline_hydra.allocate ~minimize:true sys ts.Task.sec with
      | Baseline_hydra.Unschedulable -> true
      | Baseline_hydra.Schedulable allocs ->
          (* every task's recomputed response on its core is <= period *)
          let rec check placed = function
            | [] -> true
            | (a : Baseline_hydra.alloc) :: rest -> (
                match
                  Baseline_hydra.core_response_time sys
                    ~core:a.Baseline_hydra.core ~placed a.Baseline_hydra.sec
                with
                | None -> false
                | Some r ->
                    r <= a.Baseline_hydra.period && check (placed @ [ a ]) rest)
          in
          check [] allocs)

let test_hydra_coordinated_rover () =
  let ts, sys = rover_system () in
  match Baseline_hydra.allocate_coordinated sys ts.Task.sec with
  | Baseline_hydra.Unschedulable -> Alcotest.fail "rover must schedule"
  | Baseline_hydra.Schedulable allocs ->
      List.iter
        (fun (a : Baseline_hydra.alloc) ->
          check_bool "R <= T" true (a.Baseline_hydra.resp <= a.Baseline_hydra.period);
          check_bool "T <= Tmax" true
            (a.Baseline_hydra.period
            <= a.Baseline_hydra.sec.Task.sec_period_max))
        allocs

let prop_coordinated_acceptance_matches_tmax =
  (* Coordinated minimization never loses a taskset HYDRA-TMax
     accepts: the allocation is identical and minimization preserves
     per-core feasibility by construction. *)
  let arb = Test_util.arb_taskset ~n_cores:2 ~n_rt:3 ~n_sec:4 in
  Test_util.qtest ~count:60 "coordinated acceptance = HYDRA-TMax" arb
    (fun ts ->
      let sys =
        Analysis.make_system ts
          ~assignment:(Test_util.round_robin_assignment ts)
      in
      let tmax_ok =
        Baseline_hydra.allocate ~minimize:false sys ts.Task.sec
        <> Baseline_hydra.Unschedulable
      in
      let coord_ok =
        Baseline_hydra.allocate_coordinated sys ts.Task.sec
        <> Baseline_hydra.Unschedulable
      in
      tmax_ok = coord_ok)

let prop_coordinated_periods_feasible =
  (* Recompute every coordinated allocation from scratch: each task's
     per-core response under the final period vector fits its own
     period. *)
  let arb = Test_util.arb_taskset ~n_cores:2 ~n_rt:3 ~n_sec:4 in
  Test_util.qtest ~count:60 "coordinated periods feasible" arb (fun ts ->
      let sys =
        Analysis.make_system ts
          ~assignment:(Test_util.round_robin_assignment ts)
      in
      match Baseline_hydra.allocate_coordinated sys ts.Task.sec with
      | Baseline_hydra.Unschedulable -> true
      | Baseline_hydra.Schedulable allocs ->
          let rec check placed = function
            | [] -> true
            | (a : Baseline_hydra.alloc) :: rest -> (
                match
                  Baseline_hydra.core_response_time sys
                    ~core:a.Baseline_hydra.core ~placed a.Baseline_hydra.sec
                with
                | None -> false
                | Some r ->
                    r <= a.Baseline_hydra.period && check (placed @ [ a ]) rest)
          in
          check [] allocs)

(* ------------------------------------------------------------------ *)
(* GLOBAL-TMax *)

let test_global_tmax_trivial () =
  let ts =
    Task.make_taskset ~n_cores:2 ~rt:[] ~sec:[ sec ~id:0 5 100 ]
  in
  check_bool "one small task" true (Baseline_tmax.global_tmax_schedulable ts)

let test_global_tmax_overload () =
  let rt =
    List.init 3 (fun i -> Task.make_rt ~id:i ~prio:i ~wcet:10 ~period:10 ())
  in
  let ts = Task.make_taskset ~n_cores:2 ~rt ~sec:[] in
  check_bool "three saturating tasks on two cores" false
    (Baseline_tmax.global_tmax_schedulable ts)

let test_global_response_names () =
  let ts, _ = rover_system () in
  let names = List.map fst (Baseline_tmax.global_response_times ts) in
  Alcotest.(check (list string)) "priority order"
    [ "navigation"; "camera"; "tripwire"; "kmod-checker" ]
    names

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_distance_zero_when_at_bounds () =
  Alcotest.(check (float 1e-9)) "no adaptation" 0.0
    (Metrics.normalized_distance_to_bound ~periods:[| 100; 200 |]
       ~bounds:[| 100; 200 |])

let test_distance_bounded_by_one () =
  let d =
    Metrics.normalized_distance_to_bound ~periods:[| 1; 1 |]
      ~bounds:[| 100; 200 |]
  in
  check_bool "in (0,1)" true (d > 0.9 && d < 1.0)

let test_distance_known_value () =
  (* One component halved: sqrt(((1/2)^2 + 0)/2) = 0.3536. *)
  Alcotest.(check (float 1e-4)) "half on one axis" 0.35355
    (Metrics.normalized_distance_to_bound ~periods:[| 50; 200 |]
       ~bounds:[| 100; 200 |])

let test_mean_difference_sign () =
  let bounds = [| 100; 100 |] in
  check_bool "ours shorter -> positive" true
    (Metrics.mean_normalized_difference ~ours:[| 50; 50 |]
       ~other:[| 100; 100 |] ~bounds
    > 0.0);
  check_bool "ours longer -> negative" true
    (Metrics.mean_normalized_difference ~ours:[| 100; 100 |]
       ~other:[| 50; 50 |] ~bounds
    < 0.0);
  Alcotest.(check (float 1e-9)) "equal -> zero" 0.0
    (Metrics.mean_normalized_difference ~ours:[| 70; 70 |] ~other:[| 70; 70 |]
       ~bounds)

let test_metrics_dim_mismatch () =
  let raised =
    try
      ignore
        (Metrics.normalized_distance_to_bound ~periods:[| 1 |]
           ~bounds:[| 1; 2 |]);
      false
    with Invalid_argument _ -> true
  in
  check_bool "dimension mismatch rejected" true raised

let test_acceptance_ratio () =
  Alcotest.(check (float 1e-9)) "3/4" 0.75
    (Metrics.acceptance_ratio ~accepted:3 ~total:4);
  Alcotest.(check (float 1e-9)) "empty" 0.0
    (Metrics.acceptance_ratio ~accepted:0 ~total:0)

let test_mean_and_stddev () =
  Alcotest.(check (float 1e-9)) "mean" 2.0 (Metrics.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.(check (float 1e-9)) "stddev" 0.0 (Metrics.stddev [ 5.0; 5.0 ]);
  check_bool "mean of empty is nan" true (Float.is_nan (Metrics.mean []))

(* ------------------------------------------------------------------ *)
(* Detection-latency model *)

module Dm = Hydra.Detection_model

let test_model_single_region () =
  (* n=1: region 0 starts at 0 and ends at [pass]. Attack at phase 0
     is seen by the current job; any later phase waits for the next. *)
  check_int "phase 0" 10 (Dm.latency_at ~period:100 ~pass:10 ~n_regions:1
                            ~phase:0 ~region:0);
  check_int "phase 1 waits a period" (100 + 10 - 1)
    (Dm.latency_at ~period:100 ~pass:10 ~n_regions:1 ~phase:1 ~region:0);
  check_int "last phase" 11
    (Dm.latency_at ~period:100 ~pass:10 ~n_regions:1 ~phase:99 ~region:0)

let test_model_expectation_bounds () =
  (* E(latency) sits between pass/n and period + pass. *)
  let e = Dm.expected_latency ~period:1000 ~pass:200 ~n_regions:8 in
  check_bool "lower bound" true (e > 25.0);
  check_bool "upper bound" true (e < 1200.0);
  (* dominated by T/2 plus the mean inspection end offset *)
  check_bool "near T/2 + pass/2" true (abs_float (e -. 600.0) < 120.0)

let test_model_monotone_in_period () =
  let e t = Dm.expected_latency ~period:t ~pass:100 ~n_regions:4 in
  check_bool "shorter period detects faster" true (e 500 < e 1000);
  check_bool "and again" true (e 1000 < e 2000)

let test_model_monotone_in_pass () =
  (* At a fixed period, a faster (less interrupted) pass detects
     sooner — the migration benefit of Fig. 5a. *)
  let e p = Dm.expected_latency ~period:10000 ~pass:p ~n_regions:64 in
  check_bool "faster pass, faster detection" true (e 5342 < e 6884)

let test_model_pass_stretching_is_second_order () =
  (* A finding the model makes precise: under *uniform* attack phases
     the pass-time effect nearly cancels (a stretched pass inspects
     later, but thereby catches more phases in the current pass), so
     stretching 5342 -> 6884 at T = 10000 buys well under 1% — the
     asymptotic speedup is only the slice-length difference. The
     4.85% measured in Fig. 5a is a finite-window effect: attacks
     land early in the phase cycle of two synchronized scanners, where
     the unstretched (migrating) scanner's earlier inspection finishes
     pay off directly. doc/ANALYSIS.md discusses this. *)
  let pct =
    Dm.speedup_pct ~period_a:10000 ~pass_a:5342 ~period_b:10000 ~pass_b:6884
      ~n_regions:64
  in
  check_bool
    (Printf.sprintf "asymptotic speedup %.2f%% is sub-1%%" pct)
    true
    (pct > 0.0 && pct < 1.0);
  (* whereas halving the *period* is first-order: *)
  let period_pct =
    Dm.speedup_pct ~period_a:5000 ~pass_a:5000 ~period_b:10000 ~pass_b:5342
      ~n_regions:64
  in
  check_bool
    (Printf.sprintf "period halving buys %.1f%%" period_pct)
    true (period_pct > 25.0)

let prop_model_matches_detection_monitor =
  (* The closed-form latency equals what the Detection monitor
     measures on an uninterrupted scanner, for every phase/region. *)
  let arb =
    QCheck.(
      quad (int_range 1 12) (int_range 12 40) (int_range 40 200)
        (int_range 0 10_000))
  in
  Test_util.qtest ~count:100 "model = monitored latency" arb
    (fun (n_regions, pass, period, salt) ->
      let phase = salt mod period in
      let region = salt mod n_regions in
      (* Drive a Detection monitor with back-to-back uninterrupted
         jobs released at 0, T, 2T, ... and an attack at [phase]. *)
      let detected = ref None in
      let target =
        { Security.Detection.n_regions;
          check_region =
            (fun ~region:r ~started ~finished ->
              r = region && started >= phase
              && (match !detected with
                 | None ->
                     detected := Some finished;
                     true
                 | Some _ -> true)) }
      in
      let monitor =
        Security.Detection.create ~sim_id:7 ~wcet:pass ~target
      in
      let st =
        { Sim.Engine.st_id = 7; st_name = "scan"; st_wcet = pass;
          st_period = period; st_deadline = period; st_prio = 0;
          st_core = None; st_offset = 0 }
      in
      for j = 0 to 3 do
        let job =
          { Sim.Engine.j_task = st; j_seq = j; j_release = j * period;
            j_abs_deadline = ((j + 1) * period); j_remaining = pass;
            j_last_core = -1; j_started_at = -1 }
        in
        Security.Detection.on_execute monitor job ~core:0
          ~start:(j * period) ~stop:((j * period) + pass)
      done;
      match Security.Detection.detection_time monitor with
      | None -> false
      | Some t ->
          t - phase
          = Dm.latency_at ~period ~pass ~n_regions ~phase ~region)

(* ------------------------------------------------------------------ *)
(* Priority assignment *)

module Pa = Hydra.Priority_assignment

let test_pa_apply_dense_priorities () =
  let secs =
    [| sec ~id:0 ~prio:7 30 300; sec ~id:1 ~prio:3 10 100;
       sec ~id:2 ~prio:5 20 200 |]
  in
  List.iter
    (fun ordering ->
      let out = Pa.apply ordering secs in
      let prios =
        Array.to_list (Array.map (fun s -> s.Task.sec_prio) out)
        |> List.sort compare
      in
      Alcotest.(check (list int))
        (Pa.ordering_name ordering ^ " priorities dense")
        [ 0; 1; 2 ] prios)
    Pa.all_orderings

let test_pa_orderings_sort_correctly () =
  let secs =
    [| sec ~id:0 ~prio:0 30 300; sec ~id:1 ~prio:1 10 100;
       sec ~id:2 ~prio:2 20 600 |]
  in
  let first_of ordering =
    let out = Pa.apply ordering secs in
    (Array.to_list out
    |> List.find (fun s -> s.Task.sec_prio = 0)).Task.sec_id
  in
  check_int "designer keeps id 0 first" 0 (first_of Pa.Designer);
  check_int "wcet-asc puts the 10-wcet task first" 1
    (first_of Pa.Wcet_ascending);
  check_int "wcet-desc puts the 30-wcet task first" 0
    (first_of Pa.Wcet_descending);
  check_int "tmax-asc puts the 100-bound task first" 1
    (first_of Pa.Bound_ascending);
  (* utilizations: 0.1, 0.1, 0.033 — tie between ids 0 and 1, id wins *)
  check_int "util-desc breaks tie by id" 0
    (first_of Pa.Utilization_descending)

let test_pa_first_schedulable_on_rover () =
  let ts, sys = rover_system () in
  match Pa.first_schedulable sys ts.Task.sec with
  | Some (Pa.Designer, assignments) ->
      check_int "both tasks assigned" 2 (List.length assignments)
  | Some _ -> Alcotest.fail "designer order schedules the rover"
  | None -> Alcotest.fail "rover must be schedulable"

let test_pa_best_by_distance_dominates_designer () =
  let ts, sys = rover_system () in
  match
    ( Pa.best_by_distance sys ts.Task.sec,
      Pa.select_with sys ts.Task.sec Pa.Designer )
  with
  | Some (_, _, best), Period_selection.Schedulable designer ->
      let n_sec = Array.length ts.Task.sec in
      let designer_distance =
        Metrics.normalized_distance_to_bound
          ~periods:(Period_selection.period_vector designer ~n_sec)
          ~bounds:
            (let v = Array.make n_sec 0 in
             Array.iter
               (fun s -> v.(s.Task.sec_id) <- s.Task.sec_period_max)
               ts.Task.sec;
             v)
      in
      check_bool "best ordering at least as frequent as designer" true
        (best +. 1e-9 >= designer_distance)
  | None, _ -> Alcotest.fail "rover must be schedulable"
  | _, Period_selection.Unschedulable ->
      Alcotest.fail "designer order schedules the rover"

let prop_pa_search_prefers_designer =
  (* first_schedulable tries Designer first, so a non-Designer result
     implies the designer order is genuinely unschedulable. *)
  let arb = Test_util.arb_taskset ~n_cores:2 ~n_rt:3 ~n_sec:4 in
  Test_util.qtest ~count:60 "search order respected" arb (fun ts ->
      let sys =
        Analysis.make_system ts
          ~assignment:(Test_util.round_robin_assignment ts)
      in
      match Pa.first_schedulable sys ts.Task.sec with
      | None | Some (Pa.Designer, _) -> true
      | Some (_, _) ->
          Pa.select_with sys ts.Task.sec Pa.Designer
          = Period_selection.Unschedulable)

(* ------------------------------------------------------------------ *)
(* Sensitivity *)

module Sensitivity = Hydra.Sensitivity

let test_sensitivity_rover () =
  let ts, sys = rover_system () in
  let report = Sensitivity.analyze sys ts.Task.sec in
  (match report.Sensitivity.global_headroom_pct with
  | None -> Alcotest.fail "rover is schedulable, headroom must exist"
  | Some pct -> check_bool "headroom above nominal" true (pct >= 100));
  List.iter
    (fun (_, per_task) ->
      match (report.Sensitivity.global_headroom_pct, per_task) with
      | Some g, Some p ->
          check_bool "single-task headroom >= global" true (p >= g)
      | _, None -> Alcotest.fail "per-task headroom must exist"
      | None, _ -> ())
    report.Sensitivity.per_task_headroom_pct

let test_sensitivity_unschedulable () =
  let rt = [ Task.make_rt ~id:0 ~prio:0 ~wcet:9 ~period:10 () ] in
  let ts = Task.make_taskset ~n_cores:1 ~rt ~sec:[ sec ~id:0 100 200 ] in
  let sys = Analysis.make_system ts ~assignment:[| 0 |] in
  let report = Sensitivity.analyze sys ts.Task.sec in
  Alcotest.(check (option int)) "no headroom" None
    report.Sensitivity.global_headroom_pct

let test_sensitivity_scale_semantics () =
  let ts, sys = rover_system () in
  check_bool "100% = nominal schedulability" true
    (Sensitivity.schedulable_with_scale sys ts.Task.sec ~scale_pct:100
       ~only:None);
  (* kmod alone can grow enormously (it is tiny); tripwire cannot even
     double (2x5342 > 10000). *)
  let tripwire = ts.Task.sec.(0) in
  check_bool "tripwire cannot double" false
    (Sensitivity.schedulable_with_scale sys ts.Task.sec ~scale_pct:200
       ~only:(Some tripwire))

let test_sensitivity_headroom_is_maximal () =
  let ts, sys = rover_system () in
  let report = Sensitivity.analyze sys ts.Task.sec in
  match report.Sensitivity.global_headroom_pct with
  | None -> Alcotest.fail "expected headroom"
  | Some pct ->
      check_bool "feasible at reported headroom" true
        (Sensitivity.schedulable_with_scale sys ts.Task.sec ~scale_pct:pct
           ~only:None);
      check_bool "infeasible one percent above" false
        (Sensitivity.schedulable_with_scale sys ts.Task.sec
           ~scale_pct:(pct + 1) ~only:None)

let test_sensitivity_render () =
  let ts, sys = rover_system () in
  let out =
    Format.asprintf "%a" Sensitivity.render (Sensitivity.analyze sys ts.Task.sec)
  in
  check_bool "mentions tripwire" true (String.length out > 0)

(* ------------------------------------------------------------------ *)
(* Scheme front-end *)

let test_scheme_names () =
  Alcotest.(check (list string)) "names"
    [ "HYDRA-C"; "HYDRA"; "HYDRA-TMax"; "GLOBAL-TMax" ]
    (List.map Scheme.name Scheme.all)

let prop_scheme_outcomes_consistent =
  let arb = Test_util.arb_taskset ~n_cores:2 ~n_rt:3 ~n_sec:3 in
  Test_util.qtest ~count:60 "outcomes carry periods within bounds" arb
    (fun ts ->
      let rt_assignment = Test_util.round_robin_assignment ts in
      List.for_all
        (fun scheme ->
          let o = Scheme.evaluate scheme ts ~rt_assignment in
          match (o.Scheme.schedulable, o.Scheme.periods) with
          | false, _ -> o.Scheme.periods = None
          | true, None -> false
          | true, Some periods ->
              Array.for_all
                (fun (s : Task.sec_task) ->
                  let p = periods.(s.Task.sec_id) in
                  p >= s.Task.sec_wcet && p <= s.Task.sec_period_max)
                ts.Task.sec)
        Scheme.all)

let () =
  Alcotest.run "hydra"
    [ ( "analysis",
        [ Alcotest.test_case "alone R = C" `Quick test_analysis_alone;
          Alcotest.test_case "more cores than tasks" `Quick
            test_analysis_more_cores_than_tasks;
          Alcotest.test_case "single-core interference" `Quick
            test_analysis_single_core_interference;
          Alcotest.test_case "unschedulable" `Quick test_analysis_unschedulable;
          Alcotest.test_case "limit respected" `Quick
            test_analysis_limit_is_respected;
          Alcotest.test_case "RT interference term" `Quick
            test_analysis_rt_interference_term;
          Alcotest.test_case "carry-in subsets" `Quick test_carry_in_subsets;
          Alcotest.test_case "rover WCRT regression" `Quick
            test_rover_response_times;
          prop_top_delta_upper_bounds_exhaustive;
          prop_analysis_bounds_simulation ] );
      ( "period_selection",
        [ Alcotest.test_case "invariants on rover" `Quick
            test_selection_invariants_on_rover;
          Alcotest.test_case "unschedulable reported" `Quick
            test_selection_unschedulable_reported;
          Alcotest.test_case "high priority minimized first" `Quick
            test_selection_minimizes_high_priority_first;
          prop_selection_periods_feasible;
          prop_selection_minimality;
          prop_selection_never_below_tmax_feasibility;
          prop_selection_dominates_tmax_distance ] );
      ( "baseline_hydra",
        [ Alcotest.test_case "rover allocation regression" `Quick
            test_hydra_rover_allocation;
          Alcotest.test_case "tmax periods at bounds" `Quick
            test_hydra_tmax_periods_at_bounds;
          Alcotest.test_case "unschedulable" `Quick test_hydra_unschedulable;
          prop_hydra_allocation_feasible;
          Alcotest.test_case "coordinated on rover" `Quick
            test_hydra_coordinated_rover;
          prop_coordinated_acceptance_matches_tmax;
          prop_coordinated_periods_feasible ] );
      ( "baseline_tmax",
        [ Alcotest.test_case "trivial schedulable" `Quick
            test_global_tmax_trivial;
          Alcotest.test_case "overload rejected" `Quick
            test_global_tmax_overload;
          Alcotest.test_case "priority order of names" `Quick
            test_global_response_names ] );
      ( "metrics",
        [ Alcotest.test_case "zero at bounds" `Quick
            test_distance_zero_when_at_bounds;
          Alcotest.test_case "bounded by one" `Quick
            test_distance_bounded_by_one;
          Alcotest.test_case "known value" `Quick test_distance_known_value;
          Alcotest.test_case "difference sign" `Quick test_mean_difference_sign;
          Alcotest.test_case "dimension mismatch" `Quick
            test_metrics_dim_mismatch;
          Alcotest.test_case "acceptance ratio" `Quick test_acceptance_ratio;
          Alcotest.test_case "mean and stddev" `Quick test_mean_and_stddev ] );
      ( "detection_model",
        [ Alcotest.test_case "single region" `Quick test_model_single_region;
          Alcotest.test_case "expectation bounds" `Quick
            test_model_expectation_bounds;
          Alcotest.test_case "monotone in period" `Quick
            test_model_monotone_in_period;
          Alcotest.test_case "monotone in pass" `Quick
            test_model_monotone_in_pass;
          Alcotest.test_case "pass stretching is second-order" `Quick
            test_model_pass_stretching_is_second_order;
          prop_model_matches_detection_monitor ] );
      ( "priority_assignment",
        [ Alcotest.test_case "dense priorities" `Quick
            test_pa_apply_dense_priorities;
          Alcotest.test_case "orderings sort correctly" `Quick
            test_pa_orderings_sort_correctly;
          Alcotest.test_case "first schedulable on rover" `Quick
            test_pa_first_schedulable_on_rover;
          Alcotest.test_case "best-by-distance dominates designer" `Quick
            test_pa_best_by_distance_dominates_designer;
          prop_pa_search_prefers_designer ] );
      ( "sensitivity",
        [ Alcotest.test_case "rover headroom" `Quick test_sensitivity_rover;
          Alcotest.test_case "unschedulable reported" `Quick
            test_sensitivity_unschedulable;
          Alcotest.test_case "scale semantics" `Quick
            test_sensitivity_scale_semantics;
          Alcotest.test_case "headroom is maximal" `Quick
            test_sensitivity_headroom_is_maximal;
          Alcotest.test_case "renders" `Quick test_sensitivity_render ] );
      ( "scheme",
        [ Alcotest.test_case "names" `Quick test_scheme_names;
          prop_scheme_outcomes_consistent ] ) ]
