(* Shared helpers for the test executables: deterministic random
   taskset generators (plain QCheck generators, independent of the
   library's own Taskgen so generator bugs cannot mask library bugs)
   and small assertion utilities. *)

module Task = Rtsched.Task

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A small random RT taskset on [n_cores]: each task gets a period in
   [5, 100] and a WCET in [1, period], utilization uncontrolled (tests
   that need schedulability filter afterwards). *)
let gen_rt_tasks ~n ~max_period =
  let open QCheck.Gen in
  let gen_task i =
    int_range 5 max_period >>= fun period ->
    int_range 1 (max 1 (period / 4)) >>= fun wcet ->
    return (Task.make_rt ~id:i ~prio:i ~wcet ~period ())
  in
  flatten_l (List.init n gen_task)

let gen_sec_tasks ~n ~max_period =
  let open QCheck.Gen in
  let gen_task i =
    int_range 20 max_period >>= fun period_max ->
    int_range 1 (max 1 (period_max / 5)) >>= fun wcet ->
    return (Task.make_sec ~id:i ~prio:i ~wcet ~period_max ())
  in
  flatten_l (List.init n gen_task)

let gen_taskset ~n_cores ~n_rt ~n_sec =
  let open QCheck.Gen in
  gen_rt_tasks ~n:n_rt ~max_period:100 >>= fun rt ->
  gen_sec_tasks ~n:n_sec ~max_period:400 >>= fun sec ->
  return (Task.make_taskset ~n_cores ~rt:(Task.assign_rate_monotonic rt) ~sec)

let print_taskset ts = Format.asprintf "%a" Task.pp_taskset ts

let arb_taskset ~n_cores ~n_rt ~n_sec =
  QCheck.make ~print:print_taskset (gen_taskset ~n_cores ~n_rt ~n_sec)

(* Round-robin assignment: always valid input shape for analyses that
   need an assignment but not schedulability. *)
let round_robin_assignment ts =
  Array.init (Array.length ts.Task.rt) (fun i -> i mod ts.Task.n_cores)

let qtest ?(count = 100) name arb prop =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count ~name arb prop)

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser — enough for test_obs to validate the
   Chrome-trace export and for test_lint to validate hydra_lint's
   report, without adding a dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad_json (Printf.sprintf "%s at %d" msg !pos)) in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | Some _ | None -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected %c, got %c" c c')
    | None -> fail (Printf.sprintf "expected %c, got EOF" c)
  in
  let literal word v =
    String.iter expect word;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some 'n' -> advance (); Buffer.add_char buf '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char buf '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char buf '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char buf '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char buf '\012'; go ()
          | Some 'u' ->
              advance ();
              for _ = 1 to 4 do advance () done;
              Buffer.add_char buf '?';
              go ()
          | Some c -> advance (); Buffer.add_char buf c; go ()
          | None -> fail "bad escape")
      | Some c -> advance (); Buffer.add_char buf c; go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec elements acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); elements (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          elements []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
    | None -> fail "unexpected EOF"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member k = function
  | Obj kvs -> ( match List.assoc_opt k kvs with
    | Some v -> v
    | None -> raise (Bad_json ("missing member " ^ k)))
  | _ -> raise (Bad_json "not an object")

let as_list = function
  | List l -> l
  | _ -> raise (Bad_json "not an array")

let as_num = function
  | Num f -> f
  | _ -> raise (Bad_json "not a number")

let as_str = function
  | Str s -> s
  | _ -> raise (Bad_json "not a string")
