(* Hydra_server tests: protocol codec roundtrips, engine admission
   semantics, per-tenant coalescing, the incremental-vs-cold /
   jobs:1-vs-jobs:4 differential contract, and a live daemon smoke
   test over a Unix-domain socket. *)

module Protocol = Hydra_server.Protocol
module Engine = Hydra_server.Engine
module Tenant = Hydra_server.Tenant
module Daemon = Hydra_server.Daemon
module Analysis = Hydra.Analysis
module Period_selection = Hydra.Period_selection

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let rt name wcet period = { Protocol.r_name = name; r_wcet = wcet; r_period = period }
let sec name wcet period_max =
  { Protocol.s_name = name; s_wcet = wcet; s_period_max = period_max }

let req ?(tenant = "t0") id op = { Protocol.q_id = id; q_tenant = tenant; q_op = op }

let with_engine ?obs ?(jobs = 1) ?(incremental = true) ?cache_capacity f =
  let e = Engine.create ?obs ~jobs ~incremental ?cache_capacity () in
  Fun.protect ~finally:(fun () -> Engine.shutdown e) (fun () -> f e)

let small_init =
  Protocol.Init
    { cores = 2;
      rt = [ rt "r0" 2 10; rt "r1" 3 15; rt "r2" 2 20 ];
      sec = [ sec "s0" 2 200; sec "s1" 3 300 ] }

let status r = r.Protocol.p_status

let assignments r =
  match r.Protocol.p_body with
  | Protocol.Periods a -> a
  | _ -> Alcotest.fail "expected an assignments body"

let the_stats r =
  match r.Protocol.p_body with
  | Protocol.Tenant_stats s -> s
  | _ -> Alcotest.fail "expected a stats body"

(* ------------------------------------------------------------------ *)
(* Protocol *)

let roundtrip_requests =
  [ req 0 small_init;
    req 1 (Protocol.Rt_arrive (rt "weird \"name\"\n" 1 5));
    req 2 (Protocol.Rt_leave "r0");
    req 3 (Protocol.Sec_arrive (sec "s9" 4 400));
    req 4 (Protocol.Sec_leave "s1");
    req 5 (Protocol.Set_cores 4);
    req 6 Protocol.Reselect;
    req 7 Protocol.Query;
    req 8 Protocol.Stats;
    req 9 Protocol.Remove;
    req 10 Protocol.Shutdown;
    req 11 Protocol.Obs_snapshot;
    req 12 Protocol.Obs_stream ]

let test_request_roundtrip () =
  List.iter
    (fun q ->
      let q' = Protocol.decode_request (Protocol.encode_request q) in
      check_bool "request roundtrip" true (q = q'))
    roundtrip_requests

let roundtrip_responses =
  [ Protocol.ok ~id:1 ~tenant:"t0"
      (Protocol.Periods
         [ { Protocol.a_name = "s0"; a_period = 54; a_resp = 37 };
           { Protocol.a_name = "s1"; a_period = 200; a_resp = 120 } ]);
    Protocol.ok ~id:2 ~tenant:"t0" (Protocol.Periods []);
    Protocol.ok ~id:3 ~tenant:"t0" Protocol.No_body;
    Protocol.unschedulable ~id:4 ~tenant:"t1";
    Protocol.rejected ~id:5 ~tenant:"t2" "no feasible core";
    Protocol.error ~id:(-1) ~tenant:"" "malformed JSON: oops";
    Protocol.ok ~id:7 ~tenant:""
      (Protocol.Metrics
         "{\"schema\":\"hydra_c.metrics/1\",\"counters\":{\"x\":1}}");
    Protocol.ok ~id:6 ~tenant:"t0"
      (Protocol.Tenant_stats
         { Protocol.st_cores = 2; st_rt = 3; st_sec = 2; st_selects = 4;
           st_warm_selects = 3; st_cache_entries = 17; st_cache_capacity = 0;
           st_cache_hits = 100; st_cache_misses = 20; st_cache_evictions = 0;
           st_cache_refreshes = 5 }) ]

let test_response_roundtrip () =
  List.iter
    (fun p ->
      let p' = Protocol.decode_response (Protocol.encode_response p) in
      check_bool "response roundtrip" true (p = p'))
    roundtrip_responses

let test_decode_rejects () =
  let bad s = Alcotest.check_raises "protocol error" s in
  ignore bad;
  let expect_fail s =
    match Protocol.decode_request s with
    | _ -> Alcotest.fail "expected Protocol_error"
    | exception Protocol.Protocol_error _ -> ()
  in
  expect_fail "{";
  expect_fail "{\"v\":\"bogus/9\",\"id\":0,\"tenant\":\"t\",\"op\":\"query\"}";
  expect_fail "{\"v\":\"hydra_c.server/1\",\"id\":0,\"tenant\":\"t\",\"op\":\"nope\"}";
  expect_fail "{\"v\":\"hydra_c.server/1\",\"tenant\":\"t\",\"op\":\"query\"}"

let test_framing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let close fd = try Unix.close fd with Unix.Unix_error _ -> () in
  Fun.protect
    ~finally:(fun () ->
      close a;
      close b)
    (fun () ->
      Protocol.write_frame a "hello";
      Protocol.write_frame a "";
      Protocol.write_frame a (String.make 100_000 'x');
      Alcotest.(check (option string)) "frame 1" (Some "hello")
        (Protocol.read_frame b);
      Alcotest.(check (option string)) "frame 2" (Some "")
        (Protocol.read_frame b);
      (match Protocol.read_frame b with
      | Some s -> check_int "frame 3 length" 100_000 (String.length s)
      | None -> Alcotest.fail "missing frame");
      Unix.close a;
      Alcotest.(check (option string)) "clean EOF" None (Protocol.read_frame b))

(* ------------------------------------------------------------------ *)
(* Engine semantics *)

let test_init_and_query () =
  with_engine (fun e ->
      match Engine.exec_batch e [ req 0 small_init; req 1 Protocol.Query ] with
      | [ r0; r1 ] ->
          check_bool "init ok" true (status r0 = Protocol.Ok);
          check_bool "query ok" true (status r1 = Protocol.Ok);
          check_int "two sec rows" 2 (List.length (assignments r0));
          check_bool "query equals init selection" true
            (assignments r0 = assignments r1);
          List.iter
            (fun (a : Protocol.assignment) ->
              check_bool "resp <= period" true (a.a_resp <= a.a_period))
            (assignments r0)
      | _ -> Alcotest.fail "expected two responses")

let test_unknown_tenant () =
  with_engine (fun e ->
      match Engine.exec_batch e [ req 0 Protocol.Query ] with
      | [ r ] -> check_bool "error" true (status r = Protocol.Failed)
      | _ -> Alcotest.fail "expected one response")

let test_rejected_admission_keeps_state () =
  with_engine (fun e ->
      (* both cores already near-saturated: a third 0.6-utilization
         task with period 10 fits nowhere (6 + 6 > 10) *)
      let saturated =
        Protocol.Init
          { cores = 2; rt = [ rt "r0" 6 10; rt "r1" 6 10 ];
            sec = [ sec "s0" 1 200; sec "s1" 1 300 ] }
      in
      let before =
        match
          Engine.exec_batch e [ req 0 saturated; req 1 Protocol.Query ]
        with
        | [ _; r ] -> assignments r
        | _ -> Alcotest.fail "init failed"
      in
      match
        Engine.exec_batch e
          [ req 2 (Protocol.Rt_arrive (rt "hog" 6 10)); req 3 Protocol.Query ]
      with
      | [ r2; r3 ] ->
          check_bool "rejected" true (status r2 = Protocol.Rejected);
          check_bool "state unchanged" true (before = assignments r3)
      | _ -> Alcotest.fail "expected two responses")

let test_admission_changes_periods () =
  with_engine (fun e ->
      match
        Engine.exec_batch e
          [ req 0 small_init; req 1 Protocol.Query;
            req 2 (Protocol.Rt_arrive (rt "r3" 4 12)); req 3 Protocol.Query ]
      with
      | [ _; r1; r2; r3 ] ->
          check_bool "arrive ok" true (status r2 = Protocol.Ok);
          let p1 = List.map (fun a -> a.Protocol.a_period) (assignments r1) in
          let p3 = List.map (fun a -> a.Protocol.a_period) (assignments r3) in
          (* more RT interference can only push periods up *)
          List.iter2
            (fun before after ->
              check_bool "period did not shrink" true (after >= before))
            p1 p3
      | _ -> Alcotest.fail "expected four responses")

let test_sec_catalog_edits () =
  with_engine (fun e ->
      match
        Engine.exec_batch e
          [ req 0 small_init;
            req 1 (Protocol.Sec_arrive (sec "s2" 1 500));
            req 2 Protocol.Query;
            req 3 (Protocol.Sec_leave "s0");
            req 4 Protocol.Query ]
      with
      | [ _; r1; r2; _; r4 ] ->
          check_int "after arrive: 3 rows" 3 (List.length (assignments r2));
          check_bool "coalesced arrive sees final selection" true
            (assignments r1 = assignments r2);
          check_int "after leave: 2 rows" 2 (List.length (assignments r4));
          check_bool "s0 gone" true
            (List.for_all
               (fun a -> a.Protocol.a_name <> "s0")
               (assignments r4))
      | _ -> Alcotest.fail "expected five responses")

let test_unknown_names_error () =
  with_engine (fun e ->
      ignore (Engine.exec_batch e [ req 0 small_init ]);
      match
        Engine.exec_batch e
          [ req 1 (Protocol.Rt_leave "nope");
            req 2 (Protocol.Sec_leave "nope");
            req 3 (Protocol.Rt_arrive (rt "r0" 1 10));
            req 4 (Protocol.Sec_arrive (sec "s0" 1 100)) ]
      with
      | [ r1; r2; r3; r4 ] ->
          List.iter
            (fun r -> check_bool "error" true (status r = Protocol.Failed))
            [ r1; r2; r3; r4 ]
      | _ -> Alcotest.fail "expected four responses")

let test_set_cores () =
  with_engine (fun e ->
      match
        Engine.exec_batch e
          [ req 0 small_init; req 1 (Protocol.Set_cores 4);
            req 2 Protocol.Query; req 3 (Protocol.Set_cores 0);
            req 4 Protocol.Query ]
      with
      | [ _; r1; r2; r3; r4 ] ->
          check_bool "grow ok" true (status r1 = Protocol.Ok);
          check_int "still 2 rows" 2 (List.length (assignments r2));
          check_bool "cores=0 refused" true (status r3 <> Protocol.Ok);
          check_bool "state survived" true
            (List.length (assignments r4) = 2)
      | _ -> Alcotest.fail "expected five responses")

let test_remove () =
  with_engine (fun e ->
      ignore (Engine.exec_batch e [ req 0 small_init ]);
      check_int "one tenant" 1 (Engine.tenant_count e);
      match Engine.exec_batch e [ req 1 Protocol.Remove; req 2 Protocol.Query ] with
      | [ r1; r2 ] ->
          check_bool "remove ok" true (status r1 = Protocol.Ok);
          check_bool "gone" true (status r2 = Protocol.Failed);
          check_int "no tenants" 0 (Engine.tenant_count e)
      | _ -> Alcotest.fail "expected two responses")

(* ------------------------------------------------------------------ *)
(* Coalescing: a burst of dirty ops in one batch runs one selection *)

let test_coalescing () =
  with_engine (fun e ->
      let burst =
        req 0 small_init
        :: List.init 8 (fun i ->
               req (i + 1)
                 (Protocol.Sec_arrive
                    (sec (Printf.sprintf "x%d" i) 1 (400 + (10 * i)))))
      in
      let resps = Engine.exec_batch e burst in
      check_int "nine responses" 9 (List.length resps);
      let final = assignments (List.nth resps 8) in
      List.iter
        (fun r -> check_bool "all see final selection" true (assignments r = final))
        resps;
      let tn = Option.get (Engine.find_tenant e "t0") in
      check_int "one materialization for the whole burst" 1 (Tenant.selects tn);
      (* a second batch that only reads does not re-select *)
      ignore (Engine.exec_batch e [ req 100 Protocol.Query ]);
      check_int "query served from cache" 1 (Tenant.selects tn);
      ignore (Engine.exec_batch e [ req 101 Protocol.Reselect ]);
      check_int "reselect forces a pass" 2 (Tenant.selects tn))

let test_warm_select_counted () =
  with_engine (fun e ->
      ignore (Engine.exec_batch e [ req 0 small_init ]);
      ignore
        (Engine.exec_batch e [ req 1 (Protocol.Rt_arrive (rt "r9" 1 40)) ]);
      match Engine.exec_batch e [ req 2 Protocol.Stats ] with
      | [ r ] ->
          let s = the_stats r in
          check_int "two selects" 2 s.Protocol.st_selects;
          (* the arrival kept the warm floors, so the second select
             was warm-started *)
          check_int "one warm select" 1 s.Protocol.st_warm_selects;
          check_bool "resident cache is populated" true
            (s.Protocol.st_cache_entries > 0)
      | _ -> Alcotest.fail "expected one response")

(* ------------------------------------------------------------------ *)
(* Differential: incremental vs cold, jobs:1 vs jobs:4, vs the naive
   cold oracle on the final system *)

(* A deterministic random edit script, seeded per QCheck case. An LCG
   keeps the script generation independent of QCheck's shrinking. *)
type script = Protocol.request list list (* batches *)

let make_script seed : script =
  let state = ref (seed land 0x3FFFFFFF) in
  let rand m =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod m
  in
  let tenants = [| "a"; "b"; "c" |] in
  let next_rt = Array.make 3 0 and next_sec = Array.make 3 0 in
  let live_rt = Array.make 3 [] and live_sec = Array.make 3 [] in
  let id = ref 0 in
  let fresh () = incr id; !id in
  let init_for ti =
    let cores = 1 + rand 3 in
    let rtn = 1 + rand 3 and secn = 1 + rand 3 in
    let rts =
      List.init rtn (fun _ ->
          let k = next_rt.(ti) in
          next_rt.(ti) <- k + 1;
          let period = 8 + rand 40 in
          rt (Printf.sprintf "r%d" k) (1 + rand (max 1 (period / 6))) period)
    in
    let secs =
      List.init secn (fun _ ->
          let k = next_sec.(ti) in
          next_sec.(ti) <- k + 1;
          let pmax = 100 + rand 300 in
          sec (Printf.sprintf "s%d" k) (1 + rand 8) pmax)
    in
    live_rt.(ti) <- List.map (fun (r : Protocol.rt_spec) -> r.r_name) rts;
    live_sec.(ti) <- List.map (fun (s : Protocol.sec_spec) -> s.s_name) secs;
    Protocol.Init { cores; rt = rts; sec = secs }
  in
  let op_for ti =
    match rand 7 with
    | 0 ->
        let k = next_rt.(ti) in
        next_rt.(ti) <- k + 1;
        let name = Printf.sprintf "r%d" k in
        let period = 8 + rand 40 in
        live_rt.(ti) <- name :: live_rt.(ti);
        Protocol.Rt_arrive (rt name (1 + rand (max 1 (period / 6))) period)
    | 1 -> (
        match live_rt.(ti) with
        | [] -> Protocol.Query
        | n :: rest ->
            live_rt.(ti) <- rest;
            Protocol.Rt_leave n)
    | 2 ->
        let k = next_sec.(ti) in
        next_sec.(ti) <- k + 1;
        let name = Printf.sprintf "s%d" k in
        live_sec.(ti) <- name :: live_sec.(ti);
        Protocol.Sec_arrive (sec name (1 + rand 8) (100 + rand 300))
    | 3 -> (
        match live_sec.(ti) with
        | [] -> Protocol.Query
        | n :: rest ->
            live_sec.(ti) <- rest;
            Protocol.Sec_leave n)
    | 4 -> Protocol.Set_cores (1 + rand 4)
    | 5 -> Protocol.Reselect
    | _ -> Protocol.Query
  in
  let batches = ref [] in
  (* batch 0: one init per tenant (three groups — exercises sharding) *)
  batches :=
    [ Array.to_list
        (Array.mapi (fun ti t -> req ~tenant:t (fresh ()) (init_for ti)) tenants) ];
  let rounds = 6 + rand 6 in
  for _ = 1 to rounds do
    let batch =
      List.concat
        (List.init 3 (fun ti ->
             if rand 3 = 0 then []
             else [ req ~tenant:tenants.(ti) (fresh ()) (op_for ti) ]))
    in
    if batch <> [] then batches := batch :: !batches
  done;
  (* final queries, one batch, all three tenants *)
  batches :=
    Array.to_list
      (Array.map (fun t -> req ~tenant:t (fresh ()) Protocol.Query) tenants)
    :: !batches;
  List.rev !batches

let run_script ?(jobs = 1) ?(incremental = true) script =
  with_engine ~jobs ~incremental (fun e ->
      let wire =
        List.concat_map
          (fun batch ->
            List.map Protocol.encode_response (Engine.exec_batch e batch))
          script
      in
      let finals =
        List.filter_map
          (fun t ->
            Option.map (fun tn -> (t, Tenant.snapshot tn))
              (Engine.find_tenant e t))
          [ "a"; "b"; "c" ]
      in
      (wire, finals))

let oracle_check (tenant, (ts, assignment)) wire =
  (* cold naive selection on the final system must equal the last
     Query response the engine gave for this tenant *)
  let sys = Analysis.make_system ts ~assignment in
  let expected = Period_selection.select ~fast:false sys ts.Rtsched.Task.sec in
  let last_for_tenant =
    List.fold_left
      (fun acc s ->
        let r = Protocol.decode_response s in
        if r.Protocol.p_tenant = tenant && r.Protocol.p_status <> Protocol.Failed
        then Some r
        else acc)
      None wire
  in
  match (expected, last_for_tenant) with
  | _, None -> ()
  | Period_selection.Unschedulable, Some r ->
      check_bool "oracle unschedulable" true
        (status r = Protocol.Unschedulable)
  | Period_selection.Schedulable rows, Some r ->
      check_bool "oracle schedulable" true (status r = Protocol.Ok);
      let expected_rows =
        List.map
          (fun (a : Period_selection.assignment) ->
            { Protocol.a_name = a.sec.Rtsched.Task.sec_name;
              a_period = a.period; a_resp = a.resp })
          rows
      in
      check_bool "oracle periods/WCRTs match" true
        (expected_rows = assignments r)

let test_differential =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"incremental = cold = sharded = oracle"
       QCheck.(make Gen.(int_bound 0x3FFFFFF))
       (fun seed ->
         let script = make_script seed in
         let wire_inc, finals = run_script ~jobs:1 ~incremental:true script in
         let wire_cold, _ = run_script ~jobs:1 ~incremental:false script in
         let wire_par, _ = run_script ~jobs:4 ~incremental:true script in
         if wire_inc <> wire_cold then
           QCheck.Test.fail_report "incremental responses <> cold responses";
         if wire_inc <> wire_par then
           QCheck.Test.fail_report "jobs:1 responses <> jobs:4 responses";
         List.iter (fun final -> oracle_check final wire_inc) finals;
         true))

(* ------------------------------------------------------------------ *)
(* Observability plumbing: obs ops, trace contexts, flight breadcrumbs *)

let test_engine_rejects_obs_ops () =
  (* scrape requests answer from daemon state; one that leaks into an
     engine batch must fail loudly, not perturb a tenant *)
  with_engine (fun e ->
      ignore (Engine.exec_batch e [ req 0 small_init ]);
      match
        Engine.exec_batch e
          [ req 1 Protocol.Obs_snapshot; req 2 Protocol.Obs_stream;
            req 3 Protocol.Query ]
      with
      | [ r1; r2; r3 ] ->
          check_bool "snapshot refused" true (status r1 = Protocol.Failed);
          check_bool "stream refused" true (status r2 = Protocol.Failed);
          check_bool "rest of the batch unharmed" true
            (status r3 = Protocol.Ok)
      | _ -> Alcotest.fail "expected three responses")

let ctx_batch =
  [ req 0 small_init; req 1 Protocol.Query;
    req ~tenant:"t1" 2 small_init;
    req 3 (Protocol.Rt_arrive (rt "r9" 1 40)); req 4 Protocol.Query ]

let test_exec_batch_with_ctxs () =
  let plain = with_engine ~jobs:2 (fun e -> Engine.exec_batch e ctx_batch) in
  let obs_t = Hydra_obs.create () in
  let flight = Hydra_obs.Flight.create () in
  let root = Hydra_obs.Trace_ctx.root () in
  let ctxs =
    [| Some root; None; Some (Hydra_obs.Trace_ctx.root ());
       Some (Hydra_obs.Trace_ctx.child root); None |]
  in
  let traced =
    with_engine ~obs:obs_t ~jobs:2 (fun e ->
        Engine.exec_batch ~ctxs ~flight e ctx_batch)
  in
  check_bool "responses identical under tracing" true (plain = traced);
  check_bool "trace spans recorded" true (Hydra_obs.trace_count obs_t > 0);
  check_bool "flight breadcrumbs recorded" true
    (Hydra_obs.Flight.recorded flight > 0);
  (* each sampled request got a dispatch flow pair across the
     dispatcher/worker domains *)
  let json = Test_util.parse_json (Hydra_obs.chrome_trace obs_t) in
  let events = Test_util.(member "traceEvents" json |> as_list) in
  let count ph =
    List.length
      (List.filter
         (fun e ->
           Test_util.(as_str (member "ph" e)) = ph
           && (try Test_util.(as_str (member "cat" e)) = "request"
               with _ -> false))
         events)
  in
  check_int "one flow start per sampled request" 3 (count "s");
  check_int "every start paired" 3 (count "f");
  (* the metrics side never sees the tracing side *)
  let obs_plain = Hydra_obs.create () in
  ignore
    (with_engine ~obs:obs_plain ~jobs:2 (fun e ->
         Engine.exec_batch e ctx_batch));
  Alcotest.(check string) "snapshot unchanged by tracing"
    (Hydra_obs.Snapshot.to_json obs_plain)
    (Hydra_obs.Snapshot.to_json obs_t);
  with_engine (fun e ->
      check_bool "ctxs length mismatch raises" true
        (try
           ignore (Engine.exec_batch ~ctxs:[| None |] e ctx_batch);
           false
         with Invalid_argument _ -> true))

(* ------------------------------------------------------------------ *)
(* Daemon smoke: serve over a real socket from a second domain *)

let test_daemon_socket () =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hydra_c_test_%d.sock" (Unix.getpid ()))
  in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Daemon.serve
          ~config:{ (Daemon.default_config ~socket_path:path) with jobs = 2 }
          ~on_ready:(fun () -> Atomic.set ready true)
          ())
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX path);
      let rpc q =
        Protocol.write_frame fd (Protocol.encode_request q);
        match Protocol.read_frame fd with
        | Some s -> Protocol.decode_response s
        | None -> Alcotest.fail "daemon closed the connection"
      in
      let r0 = rpc (req 0 small_init) in
      check_bool "init ok" true (status r0 = Protocol.Ok);
      let r1 = rpc (req 1 Protocol.Query) in
      check_bool "query matches init" true
        (assignments r0 = assignments r1);
      (* malformed frame still gets a paired error response *)
      Protocol.write_frame fd "this is not json";
      (match Protocol.read_frame fd with
      | Some s ->
          let r = Protocol.decode_response s in
          check_bool "malformed -> error" true (status r = Protocol.Failed);
          check_int "error id" (-1) r.Protocol.p_id
      | None -> Alcotest.fail "no response to malformed frame");
      let r2 = rpc (req 2 Protocol.Shutdown) in
      check_bool "shutdown acked" true (status r2 = Protocol.Ok));
  Domain.join server;
  check_bool "socket cleaned up" false (Sys.file_exists path)

(* ------------------------------------------------------------------ *)
(* Live telemetry scrape and the flight recorder, against a real
   daemon *)

let with_daemon ?obs ~name ?(tweak = Fun.id) f =
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hydra_c_%s_%d.sock" name (Unix.getpid ()))
  in
  let ready = Atomic.make false in
  let server =
    Domain.spawn (fun () ->
        Daemon.serve ?obs
          ~config:(tweak (Daemon.default_config ~socket_path:path))
          ~on_ready:(fun () -> Atomic.set ready true)
          ())
  in
  while not (Atomic.get ready) do
    Domain.cpu_relax ()
  done;
  (* the daemon serves connections serially, so [f] must finish with
     (or close) one connection before opening the next *)
  let connect () =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_UNIX path);
    fd
  in
  let rpc fd q =
    Protocol.write_frame fd (Protocol.encode_request q);
    match Protocol.read_frame fd with
    | Some s -> Protocol.decode_response s
    | None -> Alcotest.fail "daemon closed the connection"
  in
  let result = f path connect rpc in
  Domain.join server;
  result

let the_metrics r =
  match r.Protocol.p_body with
  | Protocol.Metrics doc -> doc
  | _ -> Alcotest.fail "expected a metrics body"

let flatten_doc doc =
  Hydra_obs.Report.flatten (Hydra_obs.Report.of_string doc)

let test_daemon_live_scrape () =
  let obs_t = Hydra_obs.create () in
  let last_doc =
    with_daemon ~obs:obs_t ~name:"scrape"
      ~tweak:(fun c -> { c with jobs = 2 })
      (fun _path connect rpc ->
        let fd = connect () in
        let doc2 =
          Fun.protect
            ~finally:(fun () ->
              try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              ignore (rpc fd (req 0 small_init));
              ignore (rpc fd (req 1 Protocol.Query));
              ignore (rpc fd (req 2 (Protocol.Rt_arrive (rt "r9" 1 40))));
              let m1 = rpc fd (req 3 Protocol.Obs_snapshot) in
              check_bool "scrape ok" true (status m1 = Protocol.Ok);
              let doc1 = the_metrics m1 in
              let snap1 = Hydra_obs.Report.of_string doc1 in
              check_int "engine work visible in the scrape" 3
                (List.assoc "server.requests" snap1.Hydra_obs.Report.counters);
              check_int "connection counted once" 1
                (List.assoc "server.connections"
                   snap1.Hydra_obs.Report.counters);
              (* a scrape must not perturb the metrics it returns: a
                 second snapshot is byte-identical *)
              let doc2 = the_metrics (rpc fd (req 4 Protocol.Obs_snapshot)) in
              Alcotest.(check string) "scrape leaves no footprint" doc1 doc2;
              (* obs_stream: first line carries the full state, an idle
                 follow-up changes nothing when folded *)
              let l1 = the_metrics (rpc fd (req 5 Protocol.Obs_stream)) in
              check_bool "first delta line = full snapshot" true
                (flatten_doc (l1 ^ "\n") = flatten_doc doc1);
              let l2 = the_metrics (rpc fd (req 6 Protocol.Obs_stream)) in
              check_bool "idle delta folds to the same state" true
                (flatten_doc (l1 ^ "\n" ^ l2 ^ "\n") = flatten_doc doc1);
              doc2)
        in
        (* a later connection is an independent stream consumer: its
           first line carries the full state again — and neither the
           reconnect nor its scrape moves a metric *)
        let fd2 = connect () in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd2 with Unix.Unix_error _ -> ())
          (fun () ->
            let r = rpc fd2 (req 7 Protocol.Obs_stream) in
            check_bool "fresh consumer gets the full state" true
              (flatten_doc (the_metrics r ^ "\n") = flatten_doc doc2);
            ignore (rpc fd2 (req 8 Protocol.Shutdown)));
        doc2)
  in
  (* the acceptance gate: a live scrape equals the shutdown snapshot —
     nothing after the last engine request (scrapes, streams, shutdown,
     the idle second connection) moved a metric *)
  Alcotest.(check string) "live scrape = shutdown snapshot" last_doc
    (Hydra_obs.Snapshot.to_json obs_t)

let test_daemon_sigusr1_flight_dump () =
  if not Sys.unix then ()
  else
    with_daemon ~name:"usr1" (fun path connect rpc ->
        let fd = connect () in
        let rpc q = rpc fd q in
        let flight_file = path ^ ".flight.jsonl" in
        (try Sys.remove flight_file with Sys_error _ -> ());
        (* no registry attached: scrapes fail cleanly... *)
        let m = rpc (req 0 Protocol.Obs_snapshot) in
        check_bool "scrape without registry fails" true
          (status m = Protocol.Failed);
        (* ...but the flight recorder is always on *)
        ignore (rpc (req 1 small_init));
        Unix.kill (Unix.getpid ()) Sys.sigusr1;
        ignore (rpc (req 2 Protocol.Query));
        let rec await n =
          if Sys.file_exists flight_file then ()
          else if n = 0 then Alcotest.fail "flight dump never appeared"
          else begin
            Unix.sleepf 0.05;
            await (n - 1)
          end
        in
        await 100;
        ignore (rpc (req 3 Protocol.Shutdown));
        (try Unix.close fd with Unix.Unix_error _ -> ());
        let lines =
          In_channel.with_open_text flight_file In_channel.input_lines
          |> List.filter (fun l -> l <> "")
        in
        (match lines with
        | header :: events ->
            Alcotest.(check string) "flight schema"
              Hydra_obs.Flight.schema
              Test_util.(as_str (member "schema" (parse_json header)));
            check_bool "events captured" true (events <> []);
            let kinds =
              List.map
                (fun l ->
                  Test_util.(as_str (member "kind" (parse_json l))))
                events
            in
            check_bool "accept breadcrumbs present" true
              (List.mem "accept" kinds);
            check_bool "reply breadcrumbs present" true
              (List.mem "reply" kinds)
        | [] -> Alcotest.fail "empty flight dump");
        try Sys.remove flight_file with Sys_error _ -> ())

let () =
  Alcotest.run "server"
    [ ( "protocol",
        [ Alcotest.test_case "request roundtrip" `Quick test_request_roundtrip;
          Alcotest.test_case "response roundtrip" `Quick
            test_response_roundtrip;
          Alcotest.test_case "decode rejects" `Quick test_decode_rejects;
          Alcotest.test_case "framing" `Quick test_framing ] );
      ( "engine",
        [ Alcotest.test_case "init + query" `Quick test_init_and_query;
          Alcotest.test_case "unknown tenant" `Quick test_unknown_tenant;
          Alcotest.test_case "rejected admission keeps state" `Quick
            test_rejected_admission_keeps_state;
          Alcotest.test_case "admission grows periods" `Quick
            test_admission_changes_periods;
          Alcotest.test_case "security catalog edits" `Quick
            test_sec_catalog_edits;
          Alcotest.test_case "unknown names error" `Quick
            test_unknown_names_error;
          Alcotest.test_case "set_cores" `Quick test_set_cores;
          Alcotest.test_case "remove" `Quick test_remove ] );
      ( "coalescing",
        [ Alcotest.test_case "burst runs one select" `Quick test_coalescing;
          Alcotest.test_case "warm selects counted" `Quick
            test_warm_select_counted ] );
      ("differential", [ test_differential ]);
      ( "observability",
        [ Alcotest.test_case "engine rejects obs ops" `Quick
            test_engine_rejects_obs_ops;
          Alcotest.test_case "exec_batch with trace contexts" `Quick
            test_exec_batch_with_ctxs ] );
      ( "daemon",
        [ Alcotest.test_case "socket smoke" `Quick test_daemon_socket;
          Alcotest.test_case "live scrape + stream" `Quick
            test_daemon_live_scrape;
          Alcotest.test_case "SIGUSR1 flight dump" `Quick
            test_daemon_sigusr1_flight_dump ] )
    ]
