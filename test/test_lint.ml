(* Tests for the Lint static-analysis pass (doc/STATIC_ANALYSIS.md):
   one seeded fixture per rule D1-D5 under lint_fixtures/, asserted
   through the JSON report; scoping (lib-only rules, the lib/obs clock
   exemption); suppression via [@lint.allow] attributes and the
   allowlist; and the clean-tree gate over the repo's own lib/. *)

open Test_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_findings = Alcotest.(check (list (pair string int)))

let lint_str ~file source =
  match Lint.Engine.lint_source ~file source with
  | Ok fs -> fs
  | Error m -> Alcotest.fail m

(* A Driver.result wrapping bare findings, for report-format tests. *)
let mk_result findings =
  { Lint.Driver.findings;
    notes = [];
    errors = [];
    warnings = [];
    files_scanned = 1;
    cache_hits = 0 }

let fixture_source name =
  In_channel.with_open_bin
    (Filename.concat "lint_fixtures" name)
    In_channel.input_all

(* Lint a fixture under a pretend lib/ path and report the (rule, line)
   pairs as seen through the JSON report — the same bytes CI uploads. *)
let fixture_findings name =
  let findings = lint_str ~file:("lib/" ^ name) (fixture_source name) in
  let j = parse_json (Lint.Driver.report_json (mk_result findings)) in
  check_int "count field" (List.length findings)
    (int_of_float (as_num (member "count" j)));
  member "findings" j |> as_list
  |> List.map (fun f ->
         ( as_str (member "rule" f),
           int_of_float (as_num (member "line" f)) ))

(* ------------------------------------------------------------------ *)
(* One seeded fixture per rule *)

let test_d1 () =
  check_findings "d1" [ ("D1", 4); ("D1", 7); ("D1", 8) ]
    (fixture_findings "d1_wallclock.ml")

let test_d2 () =
  check_findings "d2" [ ("D2", 4); ("D2", 6) ]
    (fixture_findings "d2_stdout.ml")

(* The same fixture is stderr-clean outside lib/server and dirty
   inside it: D2's stderr tightening is server-scoped. *)
let test_d2_stderr () =
  let lines file =
    List.map
      (fun (f : Lint.Finding.t) -> (f.rule, f.line))
      (lint_str ~file (fixture_source "d2_stderr.ml"))
  in
  check_findings "in lib/server" [ ("D2", 5); ("D2", 7); ("D2", 9) ]
    (lines "lib/server/d2_stderr.ml");
  check_findings "outside lib/server" [] (lines "lib/hydra/d2_stderr.ml");
  check_findings "in bin" [] (lines "bin/d2_stderr.ml")

let test_d3 () =
  check_findings "d3" [ ("D3", 4); ("D3", 6) ]
    (fixture_findings "d3_hash_order.ml")

let test_d4 () =
  check_findings "d4" [ ("D4", 4); ("D4", 6) ]
    (fixture_findings "d4_global_state.ml")

let test_d5 () =
  check_findings "d5" [ ("D5", 4); ("D5", 6) ]
    (fixture_findings "d5_float_compare.ml")

let test_d6 () =
  check_findings "d6" [ ("D6", 4); ("D6", 6); ("D6", 8); ("D6", 15) ]
    (fixture_findings "d6_hot_alloc.ml")

let test_d6_suppression () =
  (* binding-level [@lint.allow] silences D6 like any other rule *)
  check_int "allowed hot alloc" 0
    (List.length
       (lint_str ~file:"lib/x.ml"
          "let[@lint.hot] f x = Some x [@@lint.allow \"D6\"]"));
  (* parameters of the hot function itself are not closures *)
  check_int "parameters are free" 0
    (List.length
       (lint_str ~file:"lib/x.ml" "let[@lint.hot] f x y = x land y"));
  (* constant constructors do not allocate *)
  check_int "constant constructor" 0
    (List.length
       (lint_str ~file:"lib/x.ml" "let[@lint.hot] f () = None"))

let test_clean_fixture () =
  check_findings "clean fixture" [] (fixture_findings "clean.ml")

(* ------------------------------------------------------------------ *)
(* Positions and report formats *)

let test_positions () =
  match lint_str ~file:"lib/d1_wallclock.ml" (fixture_source "d1_wallclock.ml")
  with
  | first :: _ ->
      check_int "line" 4 first.Lint.Finding.line;
      (* let elapsed () = Unix.gettimeofday () — ident starts at col 17 *)
      check_int "col" 17 first.Lint.Finding.col;
      Alcotest.(check string)
        "text line"
        (Printf.sprintf "lib/d1_wallclock.ml:4:17 [D1] %s"
           first.Lint.Finding.msg)
        (Format.asprintf "%a" Lint.Finding.pp first)
  | [] -> Alcotest.fail "expected a D1 finding"

let test_json_fields () =
  let findings = lint_str ~file:"lib/x.ml" "let t () = Sys.time ()" in
  let j = parse_json (Lint.Driver.report_json (mk_result findings)) in
  check_int "version" 2 (int_of_float (as_num (member "version" j)));
  check_int "files_scanned" 1
    (int_of_float (as_num (member "files_scanned" j)));
  match member "findings" j |> as_list with
  | [ f ] ->
      Alcotest.(check string) "rule" "D1" (as_str (member "rule" f));
      Alcotest.(check string) "file" "lib/x.ml" (as_str (member "file" f));
      check_int "line" 1 (int_of_float (as_num (member "line" f)));
      check_int "col" 11 (int_of_float (as_num (member "col" f)));
      check_bool "message mentions Sys.time" true
        (String.length (as_str (member "message" f)) > 0)
  | _ -> Alcotest.fail "expected exactly one finding"

(* ------------------------------------------------------------------ *)
(* Scoping *)

let test_scoping () =
  (* D2 and D4 are library-only: executables own their stdout. *)
  check_int "stdout fine in bin" 0
    (List.length (lint_str ~file:"bin/tool.ml" "let main () = print_endline \"ok\""));
  check_int "toplevel ref fine in bin" 0
    (List.length (lint_str ~file:"bin/tool.ml" "let verbose = ref false"));
  (* lib/obs is the sanctioned clock: exempt from D1. *)
  check_int "clock fine in lib/obs" 0
    (List.length (lint_str ~file:"lib/obs/clock.ml" "let t () = Sys.time ()"));
  check_int "clock flagged in lib" 1
    (List.length (lint_str ~file:"lib/hydra/x.ml" "let t () = Sys.time ()"))

(* ------------------------------------------------------------------ *)
(* Suppression *)

let test_inline_suppression () =
  (* file-wide floating attribute *)
  check_int "floating attribute" 0
    (List.length
       (lint_str ~file:"lib/x.ml"
          "[@@@lint.allow \"D1\"]\nlet t () = Sys.time ()"));
  (* binding-level attribute *)
  check_int "binding attribute" 0
    (List.length
       (lint_str ~file:"lib/x.ml"
          "let h = Hashtbl.create 3 [@@lint.allow \"D4\"]"));
  (* a different rule id does not suppress *)
  check_int "wrong rule id" 1
    (List.length
       (lint_str ~file:"lib/x.ml"
          "let h = Hashtbl.create 3 [@@lint.allow \"D3\"]"));
  (* "*" suppresses everything *)
  check_int "star" 0
    (List.length
       (lint_str ~file:"lib/x.ml"
          "let h = Hashtbl.create 3 [@@lint.allow \"*\"]"))

let entry_exn line =
  match Lint.Allowlist.parse_line line with
  | Ok (Some e) -> e
  | Ok None -> Alcotest.failf "no entry parsed from %S" line
  | Error m -> Alcotest.fail m

let test_allowlist () =
  (match Lint.Allowlist.parse_line "  # comment " with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment should parse to nothing");
  (match Lint.Allowlist.parse_line "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed line should be rejected");
  let f =
    match lint_str ~file:"lib/foo.ml" "let t () = Sys.time ()" with
    | [ f ] -> f
    | _ -> Alcotest.fail "expected one finding"
  in
  let permits line = Lint.Allowlist.permits [ entry_exn line ] f in
  check_bool "whole file" true (permits "D1 lib/foo.ml");
  check_bool "exact line" true (permits "D1 lib/foo.ml:1");
  check_bool "wrong line" false (permits "D1 lib/foo.ml:2");
  check_bool "wrong rule" false (permits "D2 lib/foo.ml");
  check_bool "star rule" true (permits "* lib/foo.ml");
  check_bool "suffix path" true
    (Lint.Allowlist.permits
       [ entry_exn "D1 lib/foo.ml" ]
       { f with Lint.Finding.file = "../lib/foo.ml" })

let test_parse_error () =
  match Lint.Engine.lint_source ~file:"lib/broken.ml" "let = in" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

(* ------------------------------------------------------------------ *)
(* Interprocedural rules D7/D8 over the fixture call graph
   (lint_fixtures/interproc/): a racy closure two calls deep, an
   allocation three calls deep under [@lint.hot], a sanctioned Atomic
   path, cross-module [@lint.allow] suppression, a [@lint.cold]
   sanctioned allocation point, and an unknown callee that must
   surface as a "cannot prove" note. *)

let interproc = "lint_fixtures/interproc"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains what hay needle =
  check_bool (Printf.sprintf "%s contains %S" what needle) true
    (contains hay needle)

let rule_sites fs =
  List.map
    (fun f ->
      ( f.Lint.Finding.rule,
        Filename.basename f.Lint.Finding.file,
        f.Lint.Finding.line ))
    fs

let check_sites = Alcotest.(check (list (triple string string int)))

let test_interproc_findings () =
  let r = Lint.Driver.run [ interproc ] in
  check_int "no errors" 0 (List.length r.Lint.Driver.errors);
  check_int "all fixtures scanned" 8 r.files_scanned;
  (* Exactly the seeded violations: nothing from the Atomic path, the
     allow-sanctioned state, or the [@lint.cold] callee. *)
  check_sites "findings"
    [ ("D8", "ip_hot.ml", 5); ("D7", "ip_pool.ml", 2) ]
    (rule_sites r.findings);
  check_sites "notes"
    [ ("D8", "ip_unknown.ml", 3) ]
    (rule_sites r.notes)

let test_interproc_messages () =
  let r = Lint.Driver.run [ interproc ] in
  let msg rule l =
    match List.find_opt (fun f -> f.Lint.Finding.rule = rule) l with
    | Some f -> f.Lint.Finding.msg
    | None -> Alcotest.failf "no %s reported" rule
  in
  let d7 = msg "D7" r.findings in
  check_contains "D7" d7 "Ip_state.hits";
  check_contains "D7 call path" d7 "Ip_mid.middle -> Ip_state.bump";
  let d8 = msg "D8" r.findings in
  check_contains "D8 call path" d8
    "Ip_hot.entry -> Ip_hot.l1 -> Ip_hot.l2 -> Ip_hot.l3";
  check_contains "D8 allocation kind" d8 "a tuple";
  let n = msg "D8" r.notes in
  check_contains "note" n "cannot prove";
  check_contains "note callee" n "Ext_mystery.transform"

(* ------------------------------------------------------------------ *)
(* Determinism: --jobs and the summary cache must never change the
   report bytes. *)

let test_jobs_identity () =
  let report n = Lint.Driver.report_json (Lint.Driver.run ~jobs:n [ interproc ]) in
  Alcotest.(check string) "jobs 1 = jobs 4" (report 1) (report 4)

let test_jobs_identity_lib () =
  let report n = Lint.Driver.report_json (Lint.Driver.run ~jobs:n [ "../lib" ]) in
  Alcotest.(check string) "jobs 1 = jobs 4 over lib/" (report 1) (report 4)

let temp_dir () =
  let d = Filename.temp_file "lint_cache_test" "" in
  Sys.remove d;
  Sys.mkdir d 0o700;
  d

let write_file path s = Out_channel.with_open_bin path (fun oc ->
    Out_channel.output_string oc s)

(* Random little programs assembled from a template pool — some clean,
   some violating D1/D4/D6/D7/D8 — to drive the cache property. *)
let source_templates =
  [| "let f x = x + 1";
     "let t () = Sys.time ()";
     "let h = Hashtbl.create 16";
     "let[@lint.hot] g x = (x, x)";
     "let[@lint.hot] k x = succ x";
     "let p n = Parallel.Pool.map (fun i -> i + 1) n";
     "let r = ref 0\nlet bump () = r := !r + 1";
     "let q n = Parallel.Pool.map (fun i -> bump (); i) n" |]

let arb_sources =
  QCheck.make
    ~print:(fun l -> String.concat "\n---\n" l)
    QCheck.Gen.(
      list_size (int_range 1 3)
        (map
           (fun picks ->
             String.concat "\n"
               (List.map
                  (fun i ->
                    source_templates.(i mod Array.length source_templates))
                  picks))
           (list_size (int_range 1 4) (int_range 0 100))))

(* Cold-vs-warm identity: for any generated file set, linting with an
   empty cache and re-linting with the warm cache yield byte-identical
   reports, and the warm run is served entirely from the cache. *)
let prop_cache_identity sources =
  let dir = temp_dir () in
  let files =
    List.mapi
      (fun i src ->
        let f = Filename.concat dir (Printf.sprintf "m%d.ml" i) in
        write_file f src;
        f)
      sources
  in
  let cold = Lint.Driver.run_files ~cache_dir:dir files in
  let warm = Lint.Driver.run_files ~cache_dir:dir files in
  check_int "cold runs fresh" 0 cold.Lint.Driver.cache_hits;
  check_int "warm runs cached" (List.length files) warm.Lint.Driver.cache_hits;
  Lint.Driver.report_json cold = Lint.Driver.report_json warm
  && Lint.Driver.report_sarif cold = Lint.Driver.report_sarif warm

let test_cache_invalidation () =
  let dir = temp_dir () in
  let file = Filename.concat dir "x.ml" in
  write_file file "let f () = 1";
  let r1 = Lint.Driver.run_files ~cache_dir:dir [ file ] in
  check_int "clean source" 0 (List.length r1.Lint.Driver.findings);
  (* An edit must invalidate the entry: the stale clean result would
     otherwise mask the new D1. *)
  write_file file "let f () = Sys.time ()";
  let r2 = Lint.Driver.run_files ~cache_dir:dir [ file ] in
  check_int "edit invalidates" 0 r2.cache_hits;
  check_int "new finding seen" 1 (List.length r2.findings);
  let r3 = Lint.Driver.run_files ~cache_dir:dir [ file ] in
  check_int "unchanged file cached" 1 r3.cache_hits;
  Alcotest.(check string)
    "warm report identical"
    (Lint.Driver.report_json r2)
    (Lint.Driver.report_json r3);
  (* A corrupt cache file is recomputed, never an error. *)
  write_file (Filename.concat dir ".lint-cache") "garbage";
  let r4 = Lint.Driver.run_files ~cache_dir:dir [ file ] in
  check_int "corrupt cache recomputes" 0 r4.cache_hits;
  check_int "findings survive corruption" 1 (List.length r4.findings)

let test_warnings () =
  let dir = temp_dir () in
  let r = Lint.Driver.run [ dir; Filename.concat dir "nope" ] in
  match r.Lint.Driver.warnings with
  | [ empty; missing ] ->
      check_contains "empty dir" empty "no .ml files";
      check_contains "missing path" missing "does not exist"
  | ws -> Alcotest.failf "expected 2 warnings, got %d" (List.length ws)

(* ------------------------------------------------------------------ *)
(* SARIF export *)

let test_sarif () =
  let r = Lint.Driver.run [ interproc ] in
  let j = parse_json (Lint.Driver.report_sarif r) in
  Alcotest.(check string) "version" "2.1.0" (as_str (member "version" j));
  let run0 =
    match member "runs" j |> as_list with
    | [ x ] -> x
    | _ -> Alcotest.fail "expected one run"
  in
  let driver = member "tool" run0 |> member "driver" in
  Alcotest.(check string) "tool name" "hydra_lint"
    (as_str (member "name" driver));
  check_int "rule catalog exported" (List.length Lint.Rules.all)
    (List.length (member "rules" driver |> as_list));
  let results = member "results" run0 |> as_list in
  check_int "findings + notes" (List.length r.findings + List.length r.notes)
    (List.length results);
  let levels = List.map (fun x -> as_str (member "level" x)) results in
  Alcotest.(check (list string)) "levels" [ "error"; "error"; "note" ] levels;
  match (results, r.findings) with
  | res :: _, f :: _ ->
      Alcotest.(check string) "ruleId" f.Lint.Finding.rule
        (as_str (member "ruleId" res));
      let region =
        List.nth (member "locations" res |> as_list) 0
        |> member "physicalLocation"
      in
      Alcotest.(check string) "uri" f.Lint.Finding.file
        (region |> member "artifactLocation" |> member "uri" |> as_str);
      check_int "startLine" f.Lint.Finding.line
        (int_of_float
           (region |> member "region" |> member "startLine" |> as_num));
      check_int "startColumn is 1-based" (f.Lint.Finding.col + 1)
        (int_of_float
           (region |> member "region" |> member "startColumn" |> as_num))
  | _ -> Alcotest.fail "expected results"

(* ------------------------------------------------------------------ *)
(* The clean-tree gate: the repo's own lib/ has zero findings even
   without the checked-in allowlist (inline attributes suffice). *)

let test_clean_tree () =
  let r = Lint.Driver.run [ "../lib" ] in
  check_int "no read/parse errors" 0 (List.length r.Lint.Driver.errors);
  check_bool "scanned the whole library tree" true (r.files_scanned >= 40);
  (* Notes are expected (hook calls through parameters are honestly
     unprovable) but must all be D7/D8 cannot-prove diagnostics. *)
  List.iter
    (fun n ->
      check_bool "note rule" true
        (n.Lint.Finding.rule = "D7" || n.Lint.Finding.rule = "D8");
      check_contains "note wording" n.Lint.Finding.msg "cannot prove")
    r.notes;
  match r.findings with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "lib/ must lint clean, got: %s"
        (Format.asprintf "%a" Lint.Finding.pp f)

(* The acceptance bar for D8 on the real tree: every [@lint.hot]
   binding in the fast engine and the calendar is either proven
   allocation-free or appears in the notes with its unprovable callee
   named. Calendar must prove outright (its cone is arithmetic and
   array reads only). *)
let test_hot_bindings_accounted () =
  let r = Lint.Driver.run [ "../lib/sim" ] in
  check_sites "no D8 findings in lib/sim" []
    (rule_sites (List.filter (fun f -> f.Lint.Finding.rule = "D8") r.findings));
  check_bool "calendar proves allocation-free" true
    (not
       (List.exists
          (fun n -> Filename.basename n.Lint.Finding.file = "calendar.ml")
          r.notes));
  (* The engine's hook dispatches are the honest unprovables. *)
  check_bool "engine hook calls surface as notes" true
    (List.exists
       (fun n ->
         n.Lint.Finding.rule = "D8"
         && Filename.basename n.Lint.Finding.file = "engine.ml"
         && contains n.Lint.Finding.msg "bound by a parameter")
       r.notes)

let () =
  Alcotest.run "lint"
    [ ( "rules",
        [ Alcotest.test_case "D1 wall clock" `Quick test_d1;
          Alcotest.test_case "D2 stdout" `Quick test_d2;
          Alcotest.test_case "D2 stderr in server" `Quick test_d2_stderr;
          Alcotest.test_case "D3 hash order" `Quick test_d3;
          Alcotest.test_case "D4 global state" `Quick test_d4;
          Alcotest.test_case "D5 float compare" `Quick test_d5;
          Alcotest.test_case "D6 hot alloc" `Quick test_d6;
          Alcotest.test_case "D6 suppression" `Quick test_d6_suppression;
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture ] );
      ( "report",
        [ Alcotest.test_case "positions" `Quick test_positions;
          Alcotest.test_case "json fields" `Quick test_json_fields ] );
      ( "scoping", [ Alcotest.test_case "path scopes" `Quick test_scoping ] );
      ( "suppression",
        [ Alcotest.test_case "inline attributes" `Quick
            test_inline_suppression;
          Alcotest.test_case "allowlist" `Quick test_allowlist;
          Alcotest.test_case "parse error" `Quick test_parse_error ] );
      ( "interproc",
        [ Alcotest.test_case "D7/D8 fixture findings" `Quick
            test_interproc_findings;
          Alcotest.test_case "finding messages" `Quick
            test_interproc_messages ] );
      ( "determinism",
        [ Alcotest.test_case "jobs identity (fixtures)" `Quick
            test_jobs_identity;
          Alcotest.test_case "jobs identity (lib/)" `Quick
            test_jobs_identity_lib;
          qtest ~count:25 "cold = warm cache" arb_sources
            prop_cache_identity;
          Alcotest.test_case "cache invalidation" `Quick
            test_cache_invalidation;
          Alcotest.test_case "path warnings" `Quick test_warnings ] );
      ( "sarif", [ Alcotest.test_case "sarif export" `Quick test_sarif ] );
      ( "tree",
        [ Alcotest.test_case "lib/ lints clean" `Quick test_clean_tree;
          Alcotest.test_case "hot bindings accounted" `Quick
            test_hot_bindings_accounted ] ) ]
