(* Tests for the Lint static-analysis pass (doc/STATIC_ANALYSIS.md):
   one seeded fixture per rule D1-D5 under lint_fixtures/, asserted
   through the JSON report; scoping (lib-only rules, the lib/obs clock
   exemption); suppression via [@lint.allow] attributes and the
   allowlist; and the clean-tree gate over the repo's own lib/. *)

open Test_util

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_findings = Alcotest.(check (list (pair string int)))

let lint_str ~file source =
  match Lint.Engine.lint_source ~file source with
  | Ok fs -> fs
  | Error m -> Alcotest.fail m

let fixture_source name =
  In_channel.with_open_bin
    (Filename.concat "lint_fixtures" name)
    In_channel.input_all

(* Lint a fixture under a pretend lib/ path and report the (rule, line)
   pairs as seen through the JSON report — the same bytes CI uploads. *)
let fixture_findings name =
  let findings = lint_str ~file:("lib/" ^ name) (fixture_source name) in
  let result =
    { Lint.Driver.findings; errors = []; files_scanned = 1 }
  in
  let j = parse_json (Lint.Driver.report_json result) in
  check_int "count field" (List.length findings)
    (int_of_float (as_num (member "count" j)));
  member "findings" j |> as_list
  |> List.map (fun f ->
         ( as_str (member "rule" f),
           int_of_float (as_num (member "line" f)) ))

(* ------------------------------------------------------------------ *)
(* One seeded fixture per rule *)

let test_d1 () =
  check_findings "d1" [ ("D1", 4); ("D1", 7); ("D1", 8) ]
    (fixture_findings "d1_wallclock.ml")

let test_d2 () =
  check_findings "d2" [ ("D2", 4); ("D2", 6) ]
    (fixture_findings "d2_stdout.ml")

let test_d3 () =
  check_findings "d3" [ ("D3", 4); ("D3", 6) ]
    (fixture_findings "d3_hash_order.ml")

let test_d4 () =
  check_findings "d4" [ ("D4", 4); ("D4", 6) ]
    (fixture_findings "d4_global_state.ml")

let test_d5 () =
  check_findings "d5" [ ("D5", 4); ("D5", 6) ]
    (fixture_findings "d5_float_compare.ml")

let test_d6 () =
  check_findings "d6" [ ("D6", 4); ("D6", 6); ("D6", 8); ("D6", 15) ]
    (fixture_findings "d6_hot_alloc.ml")

let test_d6_suppression () =
  (* binding-level [@lint.allow] silences D6 like any other rule *)
  check_int "allowed hot alloc" 0
    (List.length
       (lint_str ~file:"lib/x.ml"
          "let[@lint.hot] f x = Some x [@@lint.allow \"D6\"]"));
  (* parameters of the hot function itself are not closures *)
  check_int "parameters are free" 0
    (List.length
       (lint_str ~file:"lib/x.ml" "let[@lint.hot] f x y = x land y"));
  (* constant constructors do not allocate *)
  check_int "constant constructor" 0
    (List.length
       (lint_str ~file:"lib/x.ml" "let[@lint.hot] f () = None"))

let test_clean_fixture () =
  check_findings "clean fixture" [] (fixture_findings "clean.ml")

(* ------------------------------------------------------------------ *)
(* Positions and report formats *)

let test_positions () =
  match lint_str ~file:"lib/d1_wallclock.ml" (fixture_source "d1_wallclock.ml")
  with
  | first :: _ ->
      check_int "line" 4 first.Lint.Finding.line;
      (* let elapsed () = Unix.gettimeofday () — ident starts at col 17 *)
      check_int "col" 17 first.Lint.Finding.col;
      Alcotest.(check string)
        "text line"
        (Printf.sprintf "lib/d1_wallclock.ml:4:17 [D1] %s"
           first.Lint.Finding.msg)
        (Format.asprintf "%a" Lint.Finding.pp first)
  | [] -> Alcotest.fail "expected a D1 finding"

let test_json_fields () =
  let findings = lint_str ~file:"lib/x.ml" "let t () = Sys.time ()" in
  let result = { Lint.Driver.findings; errors = []; files_scanned = 1 } in
  let j = parse_json (Lint.Driver.report_json result) in
  check_int "version" 1 (int_of_float (as_num (member "version" j)));
  check_int "files_scanned" 1
    (int_of_float (as_num (member "files_scanned" j)));
  match member "findings" j |> as_list with
  | [ f ] ->
      Alcotest.(check string) "rule" "D1" (as_str (member "rule" f));
      Alcotest.(check string) "file" "lib/x.ml" (as_str (member "file" f));
      check_int "line" 1 (int_of_float (as_num (member "line" f)));
      check_int "col" 11 (int_of_float (as_num (member "col" f)));
      check_bool "message mentions Sys.time" true
        (String.length (as_str (member "message" f)) > 0)
  | _ -> Alcotest.fail "expected exactly one finding"

(* ------------------------------------------------------------------ *)
(* Scoping *)

let test_scoping () =
  (* D2 and D4 are library-only: executables own their stdout. *)
  check_int "stdout fine in bin" 0
    (List.length (lint_str ~file:"bin/tool.ml" "let main () = print_endline \"ok\""));
  check_int "toplevel ref fine in bin" 0
    (List.length (lint_str ~file:"bin/tool.ml" "let verbose = ref false"));
  (* lib/obs is the sanctioned clock: exempt from D1. *)
  check_int "clock fine in lib/obs" 0
    (List.length (lint_str ~file:"lib/obs/clock.ml" "let t () = Sys.time ()"));
  check_int "clock flagged in lib" 1
    (List.length (lint_str ~file:"lib/hydra/x.ml" "let t () = Sys.time ()"))

(* ------------------------------------------------------------------ *)
(* Suppression *)

let test_inline_suppression () =
  (* file-wide floating attribute *)
  check_int "floating attribute" 0
    (List.length
       (lint_str ~file:"lib/x.ml"
          "[@@@lint.allow \"D1\"]\nlet t () = Sys.time ()"));
  (* binding-level attribute *)
  check_int "binding attribute" 0
    (List.length
       (lint_str ~file:"lib/x.ml"
          "let h = Hashtbl.create 3 [@@lint.allow \"D4\"]"));
  (* a different rule id does not suppress *)
  check_int "wrong rule id" 1
    (List.length
       (lint_str ~file:"lib/x.ml"
          "let h = Hashtbl.create 3 [@@lint.allow \"D3\"]"));
  (* "*" suppresses everything *)
  check_int "star" 0
    (List.length
       (lint_str ~file:"lib/x.ml"
          "let h = Hashtbl.create 3 [@@lint.allow \"*\"]"))

let entry_exn line =
  match Lint.Allowlist.parse_line line with
  | Ok (Some e) -> e
  | Ok None -> Alcotest.failf "no entry parsed from %S" line
  | Error m -> Alcotest.fail m

let test_allowlist () =
  (match Lint.Allowlist.parse_line "  # comment " with
  | Ok None -> ()
  | _ -> Alcotest.fail "comment should parse to nothing");
  (match Lint.Allowlist.parse_line "bogus" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "malformed line should be rejected");
  let f =
    match lint_str ~file:"lib/foo.ml" "let t () = Sys.time ()" with
    | [ f ] -> f
    | _ -> Alcotest.fail "expected one finding"
  in
  let permits line = Lint.Allowlist.permits [ entry_exn line ] f in
  check_bool "whole file" true (permits "D1 lib/foo.ml");
  check_bool "exact line" true (permits "D1 lib/foo.ml:1");
  check_bool "wrong line" false (permits "D1 lib/foo.ml:2");
  check_bool "wrong rule" false (permits "D2 lib/foo.ml");
  check_bool "star rule" true (permits "* lib/foo.ml");
  check_bool "suffix path" true
    (Lint.Allowlist.permits
       [ entry_exn "D1 lib/foo.ml" ]
       { f with Lint.Finding.file = "../lib/foo.ml" })

let test_parse_error () =
  match Lint.Engine.lint_source ~file:"lib/broken.ml" "let = in" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a parse error"

(* ------------------------------------------------------------------ *)
(* The clean-tree gate: the repo's own lib/ has zero findings even
   without the checked-in allowlist (inline attributes suffice). *)

let test_clean_tree () =
  let r = Lint.Driver.run [ "../lib" ] in
  check_int "no read/parse errors" 0 (List.length r.Lint.Driver.errors);
  check_bool "scanned the whole library tree" true (r.files_scanned >= 40);
  match r.findings with
  | [] -> ()
  | f :: _ ->
      Alcotest.failf "lib/ must lint clean, got: %s"
        (Format.asprintf "%a" Lint.Finding.pp f)

let () =
  Alcotest.run "lint"
    [ ( "rules",
        [ Alcotest.test_case "D1 wall clock" `Quick test_d1;
          Alcotest.test_case "D2 stdout" `Quick test_d2;
          Alcotest.test_case "D3 hash order" `Quick test_d3;
          Alcotest.test_case "D4 global state" `Quick test_d4;
          Alcotest.test_case "D5 float compare" `Quick test_d5;
          Alcotest.test_case "D6 hot alloc" `Quick test_d6;
          Alcotest.test_case "D6 suppression" `Quick test_d6_suppression;
          Alcotest.test_case "clean fixture" `Quick test_clean_fixture ] );
      ( "report",
        [ Alcotest.test_case "positions" `Quick test_positions;
          Alcotest.test_case "json fields" `Quick test_json_fields ] );
      ( "scoping", [ Alcotest.test_case "path scopes" `Quick test_scoping ] );
      ( "suppression",
        [ Alcotest.test_case "inline attributes" `Quick
            test_inline_suppression;
          Alcotest.test_case "allowlist" `Quick test_allowlist;
          Alcotest.test_case "parse error" `Quick test_parse_error ] );
      ( "tree",
        [ Alcotest.test_case "lib/ lints clean" `Quick test_clean_tree ] ) ]
