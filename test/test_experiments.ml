(* Tests for the experiment harnesses: renderers, the shared sweep and
   the per-figure aggregations (scaled down so the suite stays fast). *)

module Sweep = Experiments.Sweep
module Fig5 = Experiments.Fig5
module Fig6 = Experiments.Fig6
module Fig7 = Experiments.Fig7
module Tables = Experiments.Tables
module Table_render = Experiments.Table_render
module Scheme = Hydra.Scheme

let check_int = Test_util.check_int
let check_bool = Test_util.check_bool

let render f = Format.asprintf "%a" (fun ppf () -> f ppf) ()

(* One small shared sweep for the figure tests. *)
let small_sweep =
  lazy (Sweep.run ~n_cores:2 ~per_group:4 ~seed:7 ())

(* ------------------------------------------------------------------ *)
(* Table rendering *)

let test_table_alignment () =
  let out =
    render (fun ppf ->
        Table_render.table ppf ~title:"T" ~header:[ "a"; "bbbb" ]
          ~rows:[ [ "xxxxx"; "y" ]; [ "1"; "2" ] ])
  in
  check_bool "title present" true
    (String.split_on_char '\n' out |> List.exists (fun l -> l = "T"));
  (* all non-empty rows after the title share the header's width *)
  check_bool "rule present" true
    (String.split_on_char '\n' out
    |> List.exists (fun l -> String.length l > 0 && l.[0] = '-'))

let test_float_cell () =
  Alcotest.(check string) "nan" "-" (Table_render.float_cell Float.nan);
  Alcotest.(check string) "value" "0.1235" (Table_render.float_cell 0.12345)

let test_pct () =
  Alcotest.(check string) "pct" "19.05%" (Table_render.pct 19.05)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec scan i =
    if i + nn > nh then false
    else if String.sub haystack i nn = needle then true
    else scan (i + 1)
  in
  scan 0

let test_paper_tables_render () =
  let out = render (fun ppf -> Tables.render_all ppf ()) in
  List.iter
    (fun needle ->
      check_bool (needle ^ " present") true (contains out needle))
    [ "Tripwire"; "PREEMPT_RT"; "Log-uniform" ]

(* ------------------------------------------------------------------ *)
(* Sweep *)

let test_sweep_shape () =
  let sweep = Lazy.force small_sweep in
  check_int "cores" 2 sweep.Sweep.n_cores;
  check_bool "records exist" true (List.length sweep.Sweep.records > 0);
  check_bool "at most per_group x groups" true
    (List.length sweep.Sweep.records <= 40);
  List.iter
    (fun r ->
      check_int "all four schemes evaluated" 4 (List.length r.Sweep.outcomes);
      check_bool "norm util positive" true (r.Sweep.norm_util > 0.0))
    sweep.Sweep.records

let test_sweep_acceptance_monotone_groups () =
  (* Acceptance of HYDRA-C in the lowest group must be at least that of
     the highest group (sanity of the x-axis ordering). *)
  let sweep = Lazy.force small_sweep in
  let acc g =
    Sweep.acceptance (Sweep.group_records sweep ~group:g)
      ~scheme:Scheme.Hydra_c
  in
  check_bool "low group >= high group" true (acc 0 >= acc 9)

let test_sweep_determinism () =
  let a = Sweep.run ~n_cores:2 ~per_group:2 ~seed:11 () in
  let b = Sweep.run ~n_cores:2 ~per_group:2 ~seed:11 () in
  let sig_of s =
    List.map
      (fun r ->
        ( r.Sweep.group, r.Sweep.norm_util,
          List.map (fun (_, o) -> o.Scheme.schedulable) r.Sweep.outcomes ))
      s.Sweep.records
  in
  check_bool "same seed, same records" true (sig_of a = sig_of b)

(* ------------------------------------------------------------------ *)
(* Fig. 6 / Fig. 7 aggregation *)

let test_fig6_points () =
  let fig = Fig6.of_sweep (Lazy.force small_sweep) in
  check_bool "has points" true (List.length fig.Fig6.points > 0);
  List.iter
    (fun p ->
      if p.Fig6.schedulable > 0 then
        check_bool "distance in [0,1)" true
          (p.Fig6.distance >= 0.0 && p.Fig6.distance < 1.0))
    fig.Fig6.points

let test_fig6_distance_decreases () =
  (* The first group's distance must exceed the last schedulable
     group's (the paper's headline trend). *)
  let fig = Fig6.of_sweep (Lazy.force small_sweep) in
  let sched = List.filter (fun p -> p.Fig6.schedulable > 0) fig.Fig6.points in
  match (sched, List.rev sched) with
  | first :: _, last :: _ when first != last ->
      check_bool "monitoring slows as load grows" true
        (first.Fig6.distance >= last.Fig6.distance)
  | _ -> ()

let test_fig7a_ratios_bounded () =
  let fig = Fig7.of_sweep (Lazy.force small_sweep) in
  List.iter
    (fun p ->
      List.iter
        (fun (_, ratio) ->
          check_bool "ratio in [0,1]" true (ratio >= 0.0 && ratio <= 1.0))
        p.Fig7.a_ratios)
    fig.Fig7.points_a

let test_fig7a_hydra_c_dominates_hydra () =
  let fig = Fig7.of_sweep (Lazy.force small_sweep) in
  List.iter
    (fun p ->
      let ratio s = List.assoc s p.Fig7.a_ratios in
      check_bool "HYDRA-C >= HYDRA" true
        (ratio Scheme.Hydra_c >= ratio Scheme.Hydra))
    fig.Fig7.points_a

let test_fig7b_differences () =
  (* vs TMax must be strictly positive wherever defined (period
     adaptation always shortens periods relative to the bounds); vs
     HYDRA must stay near zero — on tasksets both schemes schedule the
     two period vectors are close (see EXPERIMENTS.md for why the
     paper's small positive offset is not reproduced exactly). *)
  let fig = Fig7.of_sweep (Lazy.force small_sweep) in
  List.iter
    (fun p ->
      if p.Fig7.b_vs_tmax_n > 0 then
        check_bool "vs TMax positive" true (p.Fig7.b_vs_tmax > 0.0);
      if p.Fig7.b_vs_hydra_n > 0 then
        check_bool "vs HYDRA near zero" true
          (abs_float p.Fig7.b_vs_hydra < 0.15))
    fig.Fig7.points_b

let test_fig_renderers_produce_output () =
  let sweep = Lazy.force small_sweep in
  let fig6 = Fig6.of_sweep sweep and fig7 = Fig7.of_sweep sweep in
  check_bool "fig6 renders" true
    (String.length (render (fun ppf -> Fig6.render ppf fig6)) > 0);
  check_bool "fig7a renders" true
    (String.length (render (fun ppf -> Fig7.render_a ppf fig7)) > 0);
  check_bool "fig7b renders" true
    (String.length (render (fun ppf -> Fig7.render_b ppf fig7)) > 0)

(* ------------------------------------------------------------------ *)
(* Validation harness *)

let test_validation_sound_and_tight () =
  let r =
    Experiments.Validation.run ~n_cores:2 ~tasksets:20 ~seed:5 ~horizon:30000
      ()
  in
  check_bool "some tasksets validated" true
    (r.Experiments.Validation.tasksets_checked > 0);
  check_int "no bound violations" 0
    (List.length r.Experiments.Validation.violations);
  check_int "no RT misses" 0 r.Experiments.Validation.rt_misses;
  check_bool "tightness within (0, 1]" true
    (r.Experiments.Validation.mean_tightness > 0.0
    && r.Experiments.Validation.mean_tightness <= 1.0 +. 1e-9)

(* The two simulation engines through the full experiment drivers:
   --naive-sim must not move a single byte of output. The rendered
   fig5 report and the validation metrics snapshot are compared
   across engines AND across jobs in one shot — the strongest form
   of the equivalence contract (doc/SIMULATOR.md). *)
let test_sim_engines_identical_reports () =
  let fig5_render sim_fast =
    let r = Fig5.run ~trials:4 ~horizon:20000 ~sim_fast () in
    render (fun ppf -> Fig5.render ppf r)
  in
  Alcotest.(check string) "fig5: naive-sim = fast" (fig5_render true)
    (fig5_render false)

let test_sim_engines_identical_snapshots () =
  let snapshot ~sim_fast ~jobs =
    let obs = Hydra_obs.create () in
    let (_ : Experiments.Validation.result) =
      Experiments.Validation.run ~jobs ~obs ~sim_fast ~n_cores:2 ~tasksets:8
        ~seed:11 ~horizon:30000 ()
    in
    Hydra_obs.Snapshot.to_json obs
  in
  Alcotest.(check string) "snapshot: fast jobs=1 = naive jobs=4"
    (snapshot ~sim_fast:true ~jobs:1)
    (snapshot ~sim_fast:false ~jobs:4)

let test_validation_render () =
  let r =
    Experiments.Validation.run ~n_cores:2 ~tasksets:5 ~seed:6 ~horizon:20000 ()
  in
  check_bool "renders" true
    (String.length
       (render (fun ppf -> Experiments.Validation.render ppf r))
    > 0)

(* ------------------------------------------------------------------ *)
(* Dat export *)

let temp_dir () =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "hydra_dat_%d" (Unix.getpid ()))
  in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  dir

let read_lines path =
  In_channel.with_open_text path In_channel.input_lines

let test_dat_export_fig6 () =
  let dir = temp_dir () in
  let fig = Fig6.of_sweep (Lazy.force small_sweep) in
  let path = Experiments.Dat_export.fig6 ~dir fig in
  let lines = read_lines path in
  check_bool "header present" true
    (match lines with h :: _ -> h.[0] = '#' | [] -> false);
  check_int "one row per point" (List.length fig.Fig6.points)
    (List.length lines - 1)

let test_dat_export_fig7 () =
  let dir = temp_dir () in
  let fig = Fig7.of_sweep (Lazy.force small_sweep) in
  let a = Experiments.Dat_export.fig7a ~dir fig in
  let b = Experiments.Dat_export.fig7b ~dir fig in
  check_int "fig7a rows" (List.length fig.Fig7.points_a)
    (List.length (read_lines a) - 1);
  check_int "fig7b rows" (List.length fig.Fig7.points_b)
    (List.length (read_lines b) - 1);
  (* every data row of fig7a has 1 + #schemes columns *)
  List.iteri
    (fun i line ->
      if i > 0 then
        check_int "columns"
          (1 + List.length fig.Fig7.schemes)
          (List.length
             (String.split_on_char ' ' line
             |> List.filter (fun s -> s <> ""))))
    (read_lines a)

let test_dat_export_gnuplot_script () =
  let dir = temp_dir () in
  let path = Experiments.Dat_export.gnuplot_script ~dir ~cores:[ 2; 4 ] in
  let content = String.concat "\n" (read_lines path) in
  check_bool "references fig6 files" true (contains content "fig6_m2.dat");
  check_bool "references both core counts" true
    (contains content "fig7a_m4.dat")

(* ------------------------------------------------------------------ *)
(* Report *)

let test_report_generates () =
  let scale =
    { Experiments.Report.sc_seed = 9; sc_trials = 2; sc_per_group = 2;
      sc_cores = [ 2 ]; sc_validate_tasksets = 0 }
  in
  let buf = Experiments.Report.generate scale in
  let content = Buffer.contents buf in
  List.iter
    (fun needle ->
      check_bool (needle ^ " present") true (contains content needle))
    [ "# HYDRA-C experiment report"; "Fig. 6"; "Fig. 7a"; "Ablation X5";
      "Tripwire" ]

(* ------------------------------------------------------------------ *)
(* Fig. 5 (scaled down) *)

let tiny_fig5 deployment =
  Fig5.run ~seed:3 ~trials:3 ~horizon:45000 ~deployment ()

let test_fig5_rt_never_misses () =
  let r = tiny_fig5 Fig5.Tmax in
  check_int "HYDRA-C rt misses" 0 r.Fig5.hydra_c.Fig5.rt_deadline_misses;
  check_int "HYDRA rt misses" 0 r.Fig5.hydra.Fig5.rt_deadline_misses

let test_fig5_detects_everything () =
  let r = tiny_fig5 Fig5.Tmax in
  check_int "HYDRA-C all detected" 0 r.Fig5.hydra_c.Fig5.undetected;
  check_int "HYDRA all detected" 0 r.Fig5.hydra.Fig5.undetected

let test_fig5_migrations_only_for_hydra_c () =
  let r = tiny_fig5 Fig5.Tmax in
  Alcotest.(check (float 1e-9)) "HYDRA never migrates" 0.0
    r.Fig5.hydra.Fig5.mean_migrations;
  check_bool "HYDRA-C migrates" true
    (r.Fig5.hydra_c.Fig5.mean_migrations > 0.0)

let test_fig5_adapted_periods_differ () =
  let r = tiny_fig5 Fig5.Adapted in
  check_bool "adapted periods below bounds" true
    (Array.exists (fun p -> p < 10000) r.Fig5.hydra_c.Fig5.periods);
  check_bool "renders" true
    (String.length (render (fun ppf -> Fig5.render ppf r)) > 0)

let test_fig5_latency_quantiles () =
  (* Every attack is detected at this scale, so both schemes carry
     quantiles, consistent with the means and ordered. *)
  let r = tiny_fig5 Fig5.Tmax in
  List.iter
    (fun (s : Fig5.scheme_report) ->
      match (s.Fig5.detect_tripwire_q, s.Fig5.detect_kmod_q) with
      | Some tw, Some km ->
          List.iter
            (fun (q : Fig5.quantiles) ->
              check_bool (s.Fig5.label ^ " quantiles ordered") true
                (q.Fig5.q50 <= q.Fig5.q95 && q.Fig5.q95 <= q.Fig5.q99
                && q.Fig5.q99 <= q.Fig5.qmax))
            [ tw; km ];
          check_bool (s.Fig5.label ^ " mean within [0, max]") true
            (s.Fig5.mean_detect_tripwire <= float_of_int tw.Fig5.qmax
            && s.Fig5.mean_detect_kmod <= float_of_int km.Fig5.qmax)
      | _ -> Alcotest.failf "%s: expected quantiles" s.Fig5.label)
    [ r.Fig5.hydra_c; r.Fig5.hydra ]

let test_fig5_sched_log_covers_cores () =
  (* With a schedule log attached, trial 0's HYDRA-C run is captured:
     the rover has 2 cores and its semi-partitioned schedule executes
     segments on both, so the Chrome export has slices on both rows. *)
  let log = Sim.Event_log.create ~n_cores:2 in
  let with_log = Fig5.run ~seed:3 ~trials:2 ~sched_log:log () in
  check_bool "log non-empty" true (Sim.Event_log.length log > 0);
  let json = Test_util.parse_json (Sim.Event_log.to_chrome log) in
  let evs = Test_util.as_list (Test_util.member "traceEvents" json) in
  let slice_tids =
    List.filter_map
      (fun e ->
        if Test_util.as_str (Test_util.member "ph" e) = "X" then
          Some (int_of_float (Test_util.as_num (Test_util.member "tid" e)))
        else None)
      evs
  in
  check_bool "slices on core 0" true (List.mem 0 slice_tids);
  check_bool "slices on core 1" true (List.mem 1 slice_tids);
  (* Recording must not perturb the experiment. *)
  let plain = Fig5.run ~seed:3 ~trials:2 () in
  check_bool "report unchanged by logging" true (with_log = plain)

let () =
  Alcotest.run "experiments"
    [ ( "render",
        [ Alcotest.test_case "table alignment" `Quick test_table_alignment;
          Alcotest.test_case "float cell" `Quick test_float_cell;
          Alcotest.test_case "pct" `Quick test_pct;
          Alcotest.test_case "paper tables" `Quick test_paper_tables_render ]
      );
      ( "sweep",
        [ Alcotest.test_case "shape" `Quick test_sweep_shape;
          Alcotest.test_case "acceptance ordering" `Quick
            test_sweep_acceptance_monotone_groups;
          Alcotest.test_case "deterministic" `Quick test_sweep_determinism ] );
      ( "figures",
        [ Alcotest.test_case "fig6 points" `Quick test_fig6_points;
          Alcotest.test_case "fig6 trend" `Quick test_fig6_distance_decreases;
          Alcotest.test_case "fig7a bounded" `Quick test_fig7a_ratios_bounded;
          Alcotest.test_case "fig7a dominance" `Quick
            test_fig7a_hydra_c_dominates_hydra;
          Alcotest.test_case "fig7b differences" `Quick
            test_fig7b_differences;
          Alcotest.test_case "renderers" `Quick
            test_fig_renderers_produce_output ] );
      ( "validation",
        [ Alcotest.test_case "sound and tight" `Quick
            test_validation_sound_and_tight;
          Alcotest.test_case "naive-sim report identical" `Quick
            test_sim_engines_identical_reports;
          Alcotest.test_case "naive-sim snapshot identical" `Quick
            test_sim_engines_identical_snapshots;
          Alcotest.test_case "renders" `Quick test_validation_render ] );
      ( "report",
        [ Alcotest.test_case "generates sections" `Slow test_report_generates ]
      );
      ( "dat_export",
        [ Alcotest.test_case "fig6 file" `Quick test_dat_export_fig6;
          Alcotest.test_case "fig7 files" `Quick test_dat_export_fig7;
          Alcotest.test_case "gnuplot script" `Quick
            test_dat_export_gnuplot_script ] );
      ( "fig5",
        [ Alcotest.test_case "rt isolation" `Quick test_fig5_rt_never_misses;
          Alcotest.test_case "all attacks detected" `Quick
            test_fig5_detects_everything;
          Alcotest.test_case "migration accounting" `Quick
            test_fig5_migrations_only_for_hydra_c;
          Alcotest.test_case "adapted deployment" `Quick
            test_fig5_adapted_periods_differ;
          Alcotest.test_case "latency quantiles" `Quick
            test_fig5_latency_quantiles;
          Alcotest.test_case "schedule log covers both cores" `Quick
            test_fig5_sched_log_covers_cores ] ) ]
