(* Tests for the discrete-event multicore scheduler simulator: exact
   schedules on crafted scenarios, accounting invariants, policy
   semantics (partitioned / semi-partitioned / global) and the trace
   module. *)

module Engine = Sim.Engine
module Trace = Sim.Trace
module Policy = Sim.Policy
module Scenario = Sim.Scenario
module Task = Rtsched.Task

let check_int = Test_util.check_int
let check_bool = Test_util.check_bool

let task ?(core = None) ?(offset = 0) ~id ~prio ~wcet ~period () =
  { Engine.st_id = id; st_name = Printf.sprintf "t%d" id; st_wcet = wcet;
    st_period = period; st_deadline = period; st_prio = prio; st_core = core;
    st_offset = offset }

let run ?hooks ?collect_trace ~n_cores ~horizon tasks =
  Engine.run ?hooks ?collect_trace ~n_cores ~horizon tasks

let stats_of stats id = Sim.Metrics.stats_of_sim_id stats ~sim_id:id

(* ------------------------------------------------------------------ *)
(* Basic engine behaviour *)

let test_single_task_periodic () =
  let t = task ~id:0 ~prio:0 ~wcet:2 ~period:10 () in
  let stats = run ~n_cores:1 ~horizon:100 [ t ] in
  let ts = stats_of stats 0 in
  check_int "released" 10 ts.Engine.ts_released;
  check_int "finished" 10 ts.Engine.ts_finished;
  check_int "max response = C" 2 ts.Engine.ts_max_response;
  check_int "no misses" 0 ts.Engine.ts_deadline_misses

let test_preemption_on_one_core () =
  (* hp (2,4), lp (2,4) on one core: lp responds in 4 exactly. *)
  let hp = task ~id:0 ~prio:0 ~wcet:2 ~period:4 () in
  let lp = task ~id:1 ~prio:1 ~wcet:2 ~period:4 () in
  let stats = run ~n_cores:1 ~horizon:40 [ hp; lp ] in
  check_int "hp response" 2 (stats_of stats 0).Engine.ts_max_response;
  check_int "lp response" 4 (stats_of stats 1).Engine.ts_max_response;
  check_int "no misses" 0
    ((stats_of stats 0).Engine.ts_deadline_misses
    + (stats_of stats 1).Engine.ts_deadline_misses)

let test_lp_actually_preempted () =
  (* hp (1,3), lp (4,12): lp runs in pieces around hp jobs. *)
  let hp = task ~id:0 ~prio:0 ~wcet:1 ~period:3 () in
  let lp = task ~id:1 ~prio:1 ~wcet:4 ~period:12 () in
  let stats = run ~n_cores:1 ~horizon:24 [ hp; lp ] in
  (* lp executes over [1,3),[4,6): finishes at 6 (resp 6). *)
  check_int "lp response with preemption" 6
    (stats_of stats 1).Engine.ts_max_response;
  check_bool "preemptions counted" true (stats.Engine.preemptions >= 1)

let test_two_cores_run_in_parallel () =
  let a = task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:5 ~period:10 () in
  let b = task ~core:(Some 1) ~id:1 ~prio:1 ~wcet:5 ~period:10 () in
  let stats = run ~n_cores:2 ~horizon:10 [ a; b ] in
  check_int "a response" 5 (stats_of stats 0).Engine.ts_max_response;
  check_int "b response" 5 (stats_of stats 1).Engine.ts_max_response

let test_migrating_task_fills_idle_core () =
  (* Pinned hog on core 0; a lower-priority migrating task should slip
     onto core 1 immediately. *)
  let hog = task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:10 ~period:10 () in
  let mig = task ~id:1 ~prio:1 ~wcet:4 ~period:10 () in
  let stats = run ~n_cores:2 ~horizon:10 [ hog; mig ] in
  check_int "migrating response = C" 4
    (stats_of stats 1).Engine.ts_max_response

let test_pinned_task_waits_for_its_core () =
  (* Same scenario, but the second task pinned to the busy core: it
     cannot use the idle core 1. *)
  let hog = task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:6 ~period:20 () in
  let pinned = task ~core:(Some 0) ~id:1 ~prio:1 ~wcet:4 ~period:20 () in
  let stats = run ~n_cores:2 ~horizon:20 [ hog; pinned ] in
  check_int "pinned waits behind hog" 10
    (stats_of stats 1).Engine.ts_max_response

let test_global_policy_takes_top_m () =
  (* Three migrating tasks, two cores: the lowest priority runs only
     when a core frees up. C=(4,4,4), T=20. *)
  let t0 = task ~id:0 ~prio:0 ~wcet:4 ~period:20 () in
  let t1 = task ~id:1 ~prio:1 ~wcet:4 ~period:20 () in
  let t2 = task ~id:2 ~prio:2 ~wcet:4 ~period:20 () in
  let stats = run ~n_cores:2 ~horizon:20 [ t0; t1; t2 ] in
  check_int "t2 waits for first completion" 8
    (stats_of stats 2).Engine.ts_max_response

let test_deadline_miss_detected () =
  (* Overloaded single core: lp cannot make its implicit deadline. *)
  let hp = task ~id:0 ~prio:0 ~wcet:5 ~period:10 () in
  let lp = task ~id:1 ~prio:1 ~wcet:7 ~period:10 () in
  let stats = run ~n_cores:1 ~horizon:100 [ hp; lp ] in
  check_bool "misses recorded" true
    ((stats_of stats 1).Engine.ts_deadline_misses > 0);
  check_bool "aborts recorded" true ((stats_of stats 1).Engine.ts_aborted > 0)

let test_offset_delays_first_release () =
  let t = task ~offset:7 ~id:0 ~prio:0 ~wcet:2 ~period:10 () in
  let stats = run ~n_cores:1 ~horizon:20 [ t ] in
  check_int "two jobs: at 7 and 17" 2 (stats_of stats 0).Engine.ts_released

let test_busy_plus_idle_accounting () =
  let a = task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:3 ~period:10 () in
  let stats = run ~n_cores:2 ~horizon:50 [ a ] in
  check_int "busy + idle = cores x horizon" (2 * 50)
    (stats.Engine.busy_ticks + stats.Engine.idle_ticks);
  check_int "busy = executed demand" 15 stats.Engine.busy_ticks

let test_validation_errors () =
  let expect_invalid name tasks =
    let raised =
      try ignore (run ~n_cores:2 ~horizon:10 tasks); false
      with Invalid_argument _ -> true
    in
    check_bool name true raised
  in
  expect_invalid "empty task list" [];
  expect_invalid "duplicate priorities"
    [ task ~id:0 ~prio:0 ~wcet:1 ~period:5 ();
      task ~id:1 ~prio:0 ~wcet:1 ~period:5 () ];
  expect_invalid "duplicate ids"
    [ task ~id:0 ~prio:0 ~wcet:1 ~period:5 ();
      task ~id:0 ~prio:1 ~wcet:1 ~period:5 () ];
  expect_invalid "pinned out of range"
    [ task ~core:(Some 9) ~id:0 ~prio:0 ~wcet:1 ~period:5 () ]

(* ------------------------------------------------------------------ *)
(* Hooks and trace *)

let test_on_execute_segments_sum_to_demand () =
  let executed = ref 0 in
  let hooks =
    { Engine.no_hooks with
      Engine.on_execute =
        Some (fun _ ~core:_ ~start ~stop -> executed := !executed + stop - start)
    }
  in
  let hp = task ~id:0 ~prio:0 ~wcet:1 ~period:3 () in
  let lp = task ~id:1 ~prio:1 ~wcet:4 ~period:12 () in
  let stats = run ~hooks ~n_cores:1 ~horizon:24 [ hp; lp ] in
  check_int "hook saw every executed tick" stats.Engine.busy_ticks !executed

let test_on_release_and_finish_fire () =
  let releases = ref 0 and finishes = ref 0 in
  let hooks =
    { Engine.no_hooks with
      Engine.on_release = Some (fun _ -> incr releases);
      Engine.on_finish = Some (fun _ ~finish:_ -> incr finishes) }
  in
  let t = task ~id:0 ~prio:0 ~wcet:2 ~period:10 () in
  ignore (run ~hooks ~n_cores:1 ~horizon:50 [ t ]);
  check_int "releases" 5 !releases;
  check_int "finishes" 5 !finishes

(* The migration-forcing scenario of test_migration_counted: two
   alternating pinned hogs squeeze a migrating low-prio task between
   the cores. *)
let migration_scenario () =
  [ task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:3 ~period:6 ();
    task ~core:(Some 1) ~offset:3 ~id:1 ~prio:1 ~wcet:3 ~period:6 ();
    task ~id:2 ~prio:2 ~wcet:6 ~period:12 () ]

let test_preempt_migrate_hooks_match_counters () =
  let preempts = ref 0 and migrates = ref 0 in
  let hooks =
    { Engine.no_hooks with
      Engine.on_preempt = Some (fun _ ~core:_ ~time:_ -> incr preempts);
      Engine.on_migrate =
        Some
          (fun _ ~from_core ~to_core ~time:_ ->
            check_bool "migration changes core" true (from_core <> to_core);
            incr migrates) }
  in
  let stats = run ~hooks ~n_cores:2 ~horizon:48 (migration_scenario ()) in
  check_bool "scenario migrates" true (stats.Engine.migrations > 0);
  check_int "on_migrate fires once per counted migration"
    stats.Engine.migrations !migrates;
  check_int "on_preempt fires once per counted preemption"
    stats.Engine.preemptions !preempts

let test_event_log_records_schedule () =
  let log = Sim.Event_log.create ~n_cores:2 in
  let stats =
    run ~hooks:(Sim.Event_log.hooks log) ~n_cores:2 ~horizon:48
      (migration_scenario ())
  in
  let evs = Sim.Event_log.events log in
  check_int "length agrees" (List.length evs) (Sim.Event_log.length log);
  let count p = List.length (List.filter p evs) in
  let released =
    Array.fold_left (fun acc t -> acc + t.Engine.ts_released) 0
      stats.Engine.per_task
  and finished =
    Array.fold_left (fun acc t -> acc + t.Engine.ts_finished) 0
      stats.Engine.per_task
  in
  check_int "one Release per released job" released
    (count (fun e -> e.Sim.Event_log.e_kind = Sim.Event_log.Release));
  check_int "one Finish per finished job" finished
    (count (fun e ->
         match e.Sim.Event_log.e_kind with
         | Sim.Event_log.Finish _ -> true
         | _ -> false));
  check_int "one Migrate per counted migration" stats.Engine.migrations
    (count (fun e ->
         match e.Sim.Event_log.e_kind with
         | Sim.Event_log.Migrate _ -> true
         | _ -> false));
  check_int "one Preempt per counted preemption" stats.Engine.preemptions
    (count (fun e ->
         match e.Sim.Event_log.e_kind with
         | Sim.Event_log.Preempt _ -> true
         | _ -> false));
  (* Segments cover exactly the busy ticks. *)
  let seg_ticks =
    List.fold_left
      (fun acc e ->
        match e.Sim.Event_log.e_kind with
        | Sim.Event_log.Segment { stop; _ } ->
            acc + stop - e.Sim.Event_log.e_time
        | _ -> acc)
      0 evs
  in
  check_int "segments cover busy ticks" stats.Engine.busy_ticks seg_ticks

let test_event_log_chrome_trace () =
  let log = Sim.Event_log.create ~n_cores:2 in
  ignore
    (run ~hooks:(Sim.Event_log.hooks log) ~n_cores:2 ~horizon:48
       (migration_scenario ()));
  let json = Test_util.parse_json (Sim.Event_log.to_chrome log) in
  let evs = Test_util.as_list (Test_util.member "traceEvents" json) in
  let of_ph ph =
    List.filter
      (fun e -> Test_util.as_str (Test_util.member "ph" e) = ph)
      evs
  in
  (* One thread_name metadata row per core, under the expected names. *)
  let thread_names =
    List.filter_map
      (fun e ->
        if Test_util.as_str (Test_util.member "name" e) = "thread_name" then
          Some
            (Test_util.as_str
               (Test_util.member "name" (Test_util.member "args" e)))
        else None)
      (of_ph "M")
  in
  check_bool "row for core 0" true (List.mem "core 0" thread_names);
  check_bool "row for core 1" true (List.mem "core 1" thread_names);
  check_bool "slices present" true (of_ph "X" <> []);
  (* Flow events pair up: every start has exactly one finish with the
     same id, and the scenario migrates so there is at least one. *)
  let ids ph =
    List.sort compare
      (List.map (fun e -> Test_util.as_num (Test_util.member "id" e)) (of_ph ph))
  in
  let starts = ids "s" and finishes = ids "f" in
  check_bool "at least one migration flow" true (starts <> []);
  check_bool "flow starts and finishes pair by id" true (starts = finishes)

let test_trace_no_overlap_and_busy_time () =
  let hp = task ~id:0 ~prio:0 ~wcet:2 ~period:5 () in
  let mig = task ~id:1 ~prio:1 ~wcet:3 ~period:10 () in
  let stats = run ~collect_trace:true ~n_cores:2 ~horizon:50 [ hp; mig ] in
  match stats.Engine.trace with
  | None -> Alcotest.fail "trace requested"
  | Some tr ->
      check_bool "no overlapping segments" true (Trace.no_overlap tr);
      check_int "task 0 executed" 20 (Trace.busy_time_of_task tr ~task_id:0);
      check_int "task 1 executed" 15 (Trace.busy_time_of_task tr ~task_id:1)

let test_trace_core_utilization () =
  let a = task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:5 ~period:10 () in
  let stats = run ~collect_trace:true ~n_cores:1 ~horizon:100 [ a ] in
  match stats.Engine.trace with
  | None -> Alcotest.fail "trace requested"
  | Some tr ->
      Alcotest.(check (float 1e-9)) "core utilization" 0.5
        (Trace.utilization_of_core tr ~core:0 ~horizon:100)

let test_trace_zero_horizon_utilization () =
  (* horizon <= 0 must not divide by zero: an empty window is 0.0. *)
  let tr = Trace.create () in
  Trace.add tr
    { Trace.seg_core = 0; seg_task_id = 0; seg_task_name = "a"; seg_job_seq = 0;
      seg_start = 0; seg_stop = 5 };
  Alcotest.(check (float 1e-9)) "zero horizon" 0.0
    (Trace.utilization_of_core tr ~core:0 ~horizon:0);
  Alcotest.(check (float 1e-9)) "negative horizon" 0.0
    (Trace.utilization_of_core tr ~core:0 ~horizon:(-7))

let test_trace_ascii_insertion_order_invariant () =
  (* pp_ascii renders from the sorted segment view, so the picture must
     not depend on the order segments were added. *)
  let seg core start stop id =
    { Trace.seg_core = core; seg_task_id = id; seg_task_name = "t";
      seg_job_seq = 0; seg_start = start; seg_stop = stop }
  in
  let render tr =
    Format.asprintf "%a"
      (fun ppf () -> Trace.pp_ascii ~width:20 ppf tr ~n_cores:1 ~horizon:20)
      ()
  in
  let fwd = Trace.create () in
  List.iter (Trace.add fwd) [ seg 0 0 5 0; seg 0 5 10 1; seg 0 10 15 0 ];
  let rev = Trace.create () in
  List.iter (Trace.add rev) [ seg 0 10 15 0; seg 0 5 10 1; seg 0 0 5 0 ];
  Alcotest.(check string) "same rendering either order" (render fwd)
    (render rev)

let test_trace_csv () =
  let a = task ~id:0 ~prio:0 ~wcet:5 ~period:10 () in
  let stats = run ~collect_trace:true ~n_cores:1 ~horizon:20 [ a ] in
  match stats.Engine.trace with
  | None -> Alcotest.fail "trace requested"
  | Some tr ->
      let csv = Trace.to_csv tr in
      let lines = String.split_on_char '\n' csv |> List.filter (( <> ) "") in
      Alcotest.(check string) "header" "core,task_id,task_name,job,start,stop"
        (List.hd lines);
      check_int "two segments" 3 (List.length lines)

let test_trace_ascii_renders () =
  let a = task ~id:0 ~prio:0 ~wcet:5 ~period:10 () in
  let stats = run ~collect_trace:true ~n_cores:1 ~horizon:20 [ a ] in
  match stats.Engine.trace with
  | None -> Alcotest.fail "trace requested"
  | Some tr ->
      let out =
        Format.asprintf "%a" (fun ppf () ->
            Trace.pp_ascii ~width:20 ppf tr ~n_cores:1 ~horizon:20) ()
      in
      check_bool "mentions core0" true
        (String.length out > 0
        && String.sub out 0 5 = "core0")

(* ------------------------------------------------------------------ *)
(* Context switches and migrations *)

let test_migrations_zero_when_pinned () =
  let a = task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:2 ~period:5 () in
  let b = task ~core:(Some 1) ~id:1 ~prio:1 ~wcet:2 ~period:5 () in
  let stats = run ~n_cores:2 ~horizon:100 [ a; b ] in
  check_int "pinned tasks never migrate" 0 stats.Engine.migrations

let test_migration_counted () =
  (* RT hog alternates on core 0; migrating task is pushed between
     cores: pinned(3,6) on core 0 and pinned(3,6) offset 3 on core 1
     force the migrating lp job to hop. *)
  let a = task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:3 ~period:6 () in
  let b = task ~core:(Some 1) ~offset:3 ~id:1 ~prio:1 ~wcet:3 ~period:6 () in
  let mig = task ~id:2 ~prio:2 ~wcet:6 ~period:12 () in
  let stats = run ~n_cores:2 ~horizon:24 [ a; b; mig ] in
  check_bool "migrations happen" true (stats.Engine.migrations > 0);
  check_int "finished jobs" 2 (stats_of stats 2).Engine.ts_finished

let test_affinity_avoids_gratuitous_migration () =
  (* A migrating task alone on two cores must stay where it started. *)
  let t = task ~id:0 ~prio:0 ~wcet:3 ~period:6 () in
  let stats = run ~n_cores:2 ~horizon:60 [ t ] in
  check_int "no pointless migrations" 0 stats.Engine.migrations

let test_context_switches_counted () =
  (* One task alone: dispatch + completion per job = 2 occupant
     changes per job. *)
  let t = task ~id:0 ~prio:0 ~wcet:2 ~period:10 () in
  let stats = run ~n_cores:1 ~horizon:100 [ t ] in
  check_int "two switches per job" 20 stats.Engine.context_switches

let test_metrics_throughput_and_utilization () =
  let a = task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:5 ~period:10 () in
  let stats = run ~n_cores:2 ~horizon:100 [ a ] in
  Alcotest.(check (float 1e-9)) "throughput" 0.1
    (Sim.Metrics.throughput stats ~sim_id:0);
  Alcotest.(check (float 1e-9)) "mean response" 5.0
    (Sim.Metrics.mean_response stats ~sim_id:0);
  Alcotest.(check (float 1e-9)) "utilization over 2 cores" 0.25
    (Sim.Metrics.core_utilization stats ~n_cores:2);
  check_bool "unknown id raises" true
    (try ignore (Sim.Metrics.stats_of_sim_id stats ~sim_id:99); false
     with Not_found -> true)

let test_trace_segments_of_core () =
  let a = task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:2 ~period:10 () in
  let b = task ~core:(Some 1) ~id:1 ~prio:1 ~wcet:3 ~period:10 () in
  let stats = run ~collect_trace:true ~n_cores:2 ~horizon:30 [ a; b ] in
  match stats.Engine.trace with
  | None -> Alcotest.fail "trace requested"
  | Some tr ->
      check_int "core 0 segments" 3
        (List.length (Trace.segments_of_core tr ~core:0));
      check_int "core 1 segments" 3
        (List.length (Trace.segments_of_core tr ~core:1));
      check_bool "core 1 runs only task 1" true
        (List.for_all
           (fun s -> s.Trace.seg_task_id = 1)
           (Trace.segments_of_core tr ~core:1))

let test_policy_names () =
  Alcotest.(check (list string)) "names"
    [ "fully-partitioned"; "semi-partitioned"; "global" ]
    (List.map Policy.name
       [ Policy.Fully_partitioned; Policy.Semi_partitioned; Policy.Global_all ])

(* ------------------------------------------------------------------ *)
(* Deeper schedule properties *)

(* With synchronous release the schedule of a feasible taskset is
   periodic with the hyperperiod: per-task finish counts in the second
   hyperperiod equal those in the first. *)
let prop_hyperperiod_periodicity =
  let arb = Test_util.arb_taskset ~n_cores:2 ~n_rt:3 ~n_sec:0 in
  Test_util.qtest ~count:40 "synchronous schedules are hyperperiodic" arb
    (fun ts ->
      let assignment = Test_util.round_robin_assignment ts in
      QCheck.assume
        (Rtsched.Rta_uniproc.partitioned_rt_schedulable ts ~assignment);
      let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
      let lcm a b = a / gcd a b * b in
      let hyper =
        Array.fold_left (fun acc t -> lcm acc t.Task.rt_period) 1 ts.Task.rt
      in
      QCheck.assume (hyper <= 20000);
      let built =
        Scenario.of_taskset ts ~rt_assignment:assignment
          ~policy:Policy.Fully_partitioned ~sec_periods:[||] ()
      in
      let counts h =
        let stats = run ~n_cores:2 ~horizon:h built.Scenario.tasks in
        Array.map (fun ts -> ts.Engine.ts_finished) stats.Engine.per_task
      in
      let one = counts hyper and two = counts (2 * hyper) in
      Array.for_all2 (fun a b -> 2 * a = b) one two)

(* Work conservation for migrating tasks: whenever a migrating job is
   pending, no core is idle. Checked via the trace: total idle time
   must not overlap pending periods — approximated by the exact
   single-migrating-task case, where response = backlog-aware value. *)
let test_work_conserving_for_migrating_job () =
  (* Pinned load on both cores, staggered so exactly one core is free
     at any instant; a migrating task must run continuously. *)
  let a = task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:5 ~period:10 () in
  let b = task ~core:(Some 1) ~offset:5 ~id:1 ~prio:1 ~wcet:5 ~period:10 () in
  let mig = task ~id:2 ~prio:2 ~wcet:8 ~period:20 () in
  let stats = run ~n_cores:2 ~horizon:20 [ a; b; mig ] in
  check_int "migrating job runs without waiting" 8
    (stats_of stats 2).Engine.ts_max_response

let test_simultaneous_completions () =
  (* Two pinned tasks finishing at the same instant on both cores. *)
  let a = task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:4 ~period:8 () in
  let b = task ~core:(Some 1) ~id:1 ~prio:1 ~wcet:4 ~period:8 () in
  let stats = run ~n_cores:2 ~horizon:80 [ a; b ] in
  check_int "a finished" 10 (stats_of stats 0).Engine.ts_finished;
  check_int "b finished" 10 (stats_of stats 1).Engine.ts_finished

let test_wcet_equal_period_back_to_back () =
  (* util-1 task: jobs run back to back with no idle gap. *)
  let t = task ~id:0 ~prio:0 ~wcet:10 ~period:10 () in
  let stats = run ~n_cores:1 ~horizon:100 [ t ] in
  check_int "all jobs complete" 10 (stats_of stats 0).Engine.ts_finished;
  check_int "zero idle" 0 stats.Engine.idle_ticks;
  check_int "no misses" 0 (stats_of stats 0).Engine.ts_deadline_misses

let prop_busy_ticks_bounded_by_demand =
  (* Executed work never exceeds released demand. *)
  let arb = Test_util.arb_taskset ~n_cores:2 ~n_rt:4 ~n_sec:2 in
  Test_util.qtest ~count:50 "busy ticks <= released demand" arb (fun ts ->
      let bounds = Array.make (Array.length ts.Task.sec) 0 in
      Array.iter
        (fun s -> bounds.(s.Task.sec_id) <- s.Task.sec_period_max)
        ts.Task.sec;
      let built =
        Scenario.of_taskset ts
          ~rt_assignment:(Test_util.round_robin_assignment ts)
          ~policy:Policy.Semi_partitioned ~sec_periods:bounds ()
      in
      let stats = run ~n_cores:2 ~horizon:3000 built.Scenario.tasks in
      let demand =
        Array.fold_left
          (fun acc (t : Engine.task_stats) ->
            acc + (t.Engine.ts_released * t.Engine.ts_task.Engine.st_wcet))
          0 stats.Engine.per_task
      in
      stats.Engine.busy_ticks <= demand)

(* ------------------------------------------------------------------ *)
(* Overheads *)

let test_zero_overheads_identical () =
  let tasks =
    [ task ~id:0 ~prio:0 ~wcet:1 ~period:3 ();
      task ~id:1 ~prio:1 ~wcet:4 ~period:12 () ]
  in
  let a = run ~n_cores:1 ~horizon:120 tasks in
  let b =
    Engine.run ~overheads:Engine.no_overheads ~n_cores:1 ~horizon:120 tasks
  in
  check_int "same responses" (stats_of a 1).Engine.ts_max_response
    (stats_of b 1).Engine.ts_max_response;
  check_int "same switches" a.Engine.context_switches b.Engine.context_switches

let test_dispatch_cost_inflates_response () =
  let t = task ~id:0 ~prio:0 ~wcet:2 ~period:10 () in
  let stats =
    Engine.run
      ~overheads:{ Engine.dispatch_cost = 3; migration_cost = 0 }
      ~n_cores:1 ~horizon:100 [ t ]
  in
  (* each job pays one dispatch: response = 2 + 3 *)
  check_int "response includes dispatch cost" 5
    (stats_of stats 0).Engine.ts_max_response

let test_preemption_pays_twice () =
  (* hp (1,5) preempts lp (4,20) once; lp pays the dispatch cost for
     its initial dispatch and for the resumption. *)
  let hp = task ~id:0 ~prio:0 ~wcet:1 ~period:5 () in
  let lp = task ~id:1 ~prio:1 ~wcet:4 ~period:20 () in
  let plain = run ~n_cores:1 ~horizon:20 [ hp; lp ] in
  let costed =
    Engine.run
      ~overheads:{ Engine.dispatch_cost = 1; migration_cost = 0 }
      ~n_cores:1 ~horizon:20 [ hp; lp ]
  in
  check_bool "costed response strictly larger" true
    ((stats_of costed 1).Engine.ts_max_response
    > (stats_of plain 1).Engine.ts_max_response)

let test_migration_cost_charged () =
  (* The forced-migration scenario from above: with a large migration
     cost the migrating task's response grows. *)
  let a = task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:3 ~period:6 () in
  let b = task ~core:(Some 1) ~offset:3 ~id:1 ~prio:1 ~wcet:3 ~period:6 () in
  let mig = task ~id:2 ~prio:2 ~wcet:6 ~period:12 () in
  let plain = run ~n_cores:2 ~horizon:24 [ a; b; mig ] in
  let costed =
    Engine.run
      ~overheads:{ Engine.dispatch_cost = 0; migration_cost = 2 }
      ~n_cores:2 ~horizon:24 [ a; b; mig ]
  in
  check_bool "migration cost visible" true
    ((stats_of costed 2).Engine.ts_max_response
    > (stats_of plain 2).Engine.ts_max_response)

let test_negative_overheads_rejected () =
  let t = task ~id:0 ~prio:0 ~wcet:1 ~period:5 () in
  let raised =
    try
      ignore
        (Engine.run
           ~overheads:{ Engine.dispatch_cost = -1; migration_cost = 0 }
           ~n_cores:1 ~horizon:10 [ t ]);
      false
    with Invalid_argument _ -> true
  in
  check_bool "negative cost rejected" true raised

(* ------------------------------------------------------------------ *)
(* Scenario builder *)

let rover_built policy =
  let ts = Security.Rover.taskset () in
  let n_sec = Array.length ts.Task.sec in
  let bounds = Array.make n_sec 0 in
  Array.iter
    (fun s -> bounds.(s.Task.sec_id) <- s.Task.sec_period_max)
    ts.Task.sec;
  ( ts,
    Scenario.of_taskset ts ~rt_assignment:(Security.Rover.rt_assignment ())
      ~policy ~sec_periods:bounds
      ?sec_cores:(if policy = Policy.Fully_partitioned then Some [| 1; 0 |] else None)
      () )

let test_scenario_priority_bands () =
  let _, built = rover_built Policy.Semi_partitioned in
  let max_rt_prio = ref min_int and min_sec_prio = ref max_int in
  (* rover RT tasks have sim ids 0-1, security tasks 2-3 *)
  List.iter
    (fun (t : Engine.sim_task) ->
      if t.Engine.st_id < 2 then max_rt_prio := max !max_rt_prio t.Engine.st_prio
      else min_sec_prio := min !min_sec_prio t.Engine.st_prio)
    built.Scenario.tasks;
  check_bool "security strictly below RT" true (!min_sec_prio > !max_rt_prio)

let test_scenario_policies_pin_correctly () =
  let _, semi = rover_built Policy.Semi_partitioned in
  let _, full = rover_built Policy.Fully_partitioned in
  let _, glob = rover_built Policy.Global_all in
  let core_of built id =
    (List.find (fun (t : Engine.sim_task) -> t.Engine.st_id = id)
       built.Scenario.tasks).Engine.st_core
  in
  Alcotest.(check (option int)) "semi: RT pinned" (Some 0) (core_of semi 0);
  Alcotest.(check (option int)) "semi: sec migrates" None (core_of semi 2);
  Alcotest.(check (option int)) "full: sec pinned" (Some 1) (core_of full 2);
  Alcotest.(check (option int)) "global: RT migrates" None (core_of glob 0)

let test_scenario_requires_sec_cores () =
  let ts = Security.Rover.taskset () in
  let raised =
    try
      ignore
        (Scenario.of_taskset ts
           ~rt_assignment:(Security.Rover.rt_assignment ())
           ~policy:Policy.Fully_partitioned ~sec_periods:[| 10000; 10000 |] ());
      false
    with Invalid_argument _ -> true
  in
  check_bool "missing sec_cores rejected" true raised

let test_scenario_rt_no_misses_on_rover () =
  let _, built = rover_built Policy.Semi_partitioned in
  let stats = run ~n_cores:2 ~horizon:60000 built.Scenario.tasks in
  check_int "rover RT tasks never miss" 0
    (Sim.Metrics.deadline_misses stats ~sim_ids:built.Scenario.rt_sim_ids)

(* Property: under any policy, RT tasks that pass partitioned TDA never
   miss in the simulator when security tasks run below them. *)
let prop_rt_isolated_from_security =
  let arb = Test_util.arb_taskset ~n_cores:2 ~n_rt:4 ~n_sec:3 in
  Test_util.qtest ~count:50 "security tasks never disturb RT" arb (fun ts ->
      let assignment = Test_util.round_robin_assignment ts in
      QCheck.assume
        (Rtsched.Rta_uniproc.partitioned_rt_schedulable ts ~assignment);
      let bounds = Array.make (Array.length ts.Task.sec) 0 in
      Array.iter
        (fun s -> bounds.(s.Task.sec_id) <- s.Task.sec_period_max)
        ts.Task.sec;
      let built =
        Scenario.of_taskset ts ~rt_assignment:assignment
          ~policy:Policy.Semi_partitioned ~sec_periods:bounds ()
      in
      let stats = run ~n_cores:2 ~horizon:4000 built.Scenario.tasks in
      Sim.Metrics.deadline_misses stats ~sim_ids:built.Scenario.rt_sim_ids = 0)

(* ------------------------------------------------------------------ *)
(* Calendar queue: the bucketed event queue behind the fast engine. *)

let test_calendar_orders_and_ties () =
  let q = Sim.Calendar.create ~slots:8 ~width:5 in
  (* Same key 20 on slots 5, 1, 3: ties must pop in slot order. *)
  List.iter
    (fun (i, k) -> Sim.Calendar.add q i ~key:k)
    [ (5, 20); (0, 7); (1, 20); (6, 3); (3, 20); (2, 41) ];
  check_int "size" 6 (Sim.Calendar.size q);
  check_bool "mem" true (Sim.Calendar.mem q 6);
  check_bool "not mem" false (Sim.Calendar.mem q 7);
  check_int "key" 41 (Sim.Calendar.key q 2);
  check_int "peek" 3 (Sim.Calendar.peek_min q);
  let popped = List.init 6 (fun _ -> Sim.Calendar.pop_min q) in
  Alcotest.(check (list int)) "pop order" [ 6; 0; 1; 3; 5; 2 ] popped;
  check_int "empty peek" max_int (Sim.Calendar.peek_min q)

let test_calendar_wraparound_years () =
  (* Keys far beyond n_buckets * width force year wraparound and the
     direct-search fallback. *)
  let q = Sim.Calendar.create ~slots:4 ~width:3 in
  List.iter
    (fun (i, k) -> Sim.Calendar.add q i ~key:k)
    [ (0, 1000); (1, 13); (2, 2000); (3, 500) ];
  check_int "min across years" 13 (Sim.Calendar.peek_min q);
  check_int "pop 1" 1 (Sim.Calendar.pop_min q);
  check_int "pop 3" 3 (Sim.Calendar.pop_min q);
  (* Re-add after popping: monotone keys are fine. *)
  Sim.Calendar.add q 1 ~key:750;
  check_int "pop re-added" 1 (Sim.Calendar.pop_min q);
  check_int "pop 0" 0 (Sim.Calendar.pop_min q);
  check_int "pop 2" 2 (Sim.Calendar.pop_min q);
  check_int "size" 0 (Sim.Calendar.size q)

let test_calendar_rejects_misuse () =
  let expect_invalid name f =
    let raised = try f (); false with Invalid_argument _ -> true in
    check_bool name true raised
  in
  expect_invalid "slots < 1" (fun () ->
      ignore (Sim.Calendar.create ~slots:0 ~width:1));
  let q = Sim.Calendar.create ~slots:2 ~width:1 in
  expect_invalid "pop empty" (fun () -> ignore (Sim.Calendar.pop_min q));
  expect_invalid "slot range" (fun () -> Sim.Calendar.add q 2 ~key:0);
  Sim.Calendar.add q 0 ~key:5;
  expect_invalid "double add" (fun () -> Sim.Calendar.add q 0 ~key:9);
  check_int "pop" 0 (Sim.Calendar.pop_min q);
  expect_invalid "non-monotone key" (fun () -> Sim.Calendar.add q 1 ~key:4)

let prop_calendar_matches_sorted_reference =
  let arb =
    QCheck.(
      make
        ~print:Print.(list (pair int int))
        Gen.(
          list_size (int_range 1 30)
            (pair (int_range 0 29) (int_range 0 200))))
  in
  Test_util.qtest ~count:100 "calendar pops (key, slot)-sorted" arb (fun adds ->
      let slots = 30 in
      let q = Sim.Calendar.create ~slots ~width:7 in
      (* Deduplicate slots (each may be enqueued once). *)
      let seen = Hashtbl.create 8 in
      let adds =
        List.filter
          (fun (s, _) ->
            if Hashtbl.mem seen s then false else (Hashtbl.add seen s (); true))
          adds
      in
      List.iter (fun (s, k) -> Sim.Calendar.add q s ~key:k) adds;
      let expected =
        List.sort
          (fun (s1, k1) (s2, k2) ->
            if k1 <> k2 then compare k1 k2 else compare s1 s2)
          adds
        |> List.map fst
      in
      let popped = List.map (fun _ -> Sim.Calendar.pop_min q) adds in
      popped = expected)

(* ------------------------------------------------------------------ *)
(* Fast engine vs. naive oracle: the differential tests behind the
   skip-ahead engine (doc/SIMULATOR.md). Both engines must produce
   bit-identical event streams and stats on every input. *)

let capture_run ~fast ?overheads ~n_cores ~horizon tasks =
  let log = Sim.Event_log.create ~n_cores in
  let stats =
    Engine.run ~fast ~hooks:(Sim.Event_log.hooks log) ~collect_trace:true
      ?overheads ~n_cores ~horizon tasks
  in
  (stats, Sim.Event_log.events log)

let engines_agree ?overheads ~n_cores ~horizon tasks =
  let fast_stats, fast_events =
    capture_run ~fast:true ?overheads ~n_cores ~horizon tasks
  in
  let naive_stats, naive_events =
    capture_run ~fast:false ?overheads ~n_cores ~horizon tasks
  in
  (match Sim.Event_log.first_divergence fast_events naive_events with
  | None -> ()
  | Some (i, f, n) ->
      let pp = function
        | Some e -> Format.asprintf "%a" Sim.Event_log.pp_event e
        | None -> "<end of stream>"
      in
      Alcotest.failf "schedule event %d diverges: fast has %s, naive has %s" i
        (pp f) (pp n));
  check_bool "stats bit-identical" true
    (Sim.Metrics.equal_stats fast_stats naive_stats)

(* Raw scenarios: pins, offsets, overloads (forcing aborts), non-zero
   overheads — broader than what Scenario.of_taskset can build. *)
let arb_raw_scenario =
  let print (n_cores, specs, dc, mc) =
    Format.asprintf "n_cores=%d dispatch=%d migration=%d tasks=%a" n_cores dc
      mc
      (Format.pp_print_list (fun ppf (w, s, o, p) ->
           Format.fprintf ppf " (wcet %d, slack %d, offset %d, pin %d)" w s o p))
      specs
  in
  QCheck.make ~print
    QCheck.Gen.(
      int_range 1 3 >>= fun n_cores ->
      int_range 1 8 >>= fun n ->
      list_repeat n
        (quad (int_range 1 6) (int_range 0 18) (int_range 0 12)
           (int_range 0 n_cores))
      >>= fun specs ->
      pair (int_range 0 2) (int_range 0 3) >>= fun (dc, mc) ->
      return (n_cores, specs, dc, mc))

let tasks_of_specs n_cores specs =
  List.mapi
    (fun i (wcet, slack, offset, pin) ->
      let period = wcet + slack in
      { Engine.st_id = i; st_name = Printf.sprintf "t%d" i; st_wcet = wcet;
        st_period = period;
        st_deadline = max wcet (period - (slack / 2));
        st_prio = i;
        st_core = (if pin = n_cores then None else Some pin);
        st_offset = offset })
    specs

let prop_differential_raw =
  Test_util.qtest ~count:120 "fast = naive on raw scenarios" arb_raw_scenario
    (fun (n_cores, specs, dc, mc) ->
      let tasks = tasks_of_specs n_cores specs in
      engines_agree
        ~overheads:{ Engine.dispatch_cost = dc; migration_cost = mc }
        ~n_cores ~horizon:2500 tasks;
      true)

(* Scheme-shaped scenarios: every simulator policy (the pinning
   patterns of HYDRA / HYDRA-C / GLOBAL-TMax), security periods at
   both bounds. *)
let prop_differential_policies =
  let arb =
    QCheck.pair
      (Test_util.arb_taskset ~n_cores:2 ~n_rt:4 ~n_sec:3)
      (QCheck.oneofl
         [ (Policy.Fully_partitioned, true); (Policy.Fully_partitioned, false);
           (Policy.Semi_partitioned, true); (Policy.Semi_partitioned, false);
           (Policy.Global_all, true); (Policy.Global_all, false) ])
  in
  Test_util.qtest ~count:60 "fast = naive under every policy" arb
    (fun (ts, (policy, tight)) ->
      let assignment = Test_util.round_robin_assignment ts in
      let n_sec = Array.length ts.Task.sec in
      let bounds = Array.make n_sec 0 in
      Array.iter
        (fun s ->
          bounds.(s.Task.sec_id) <-
            (if tight then max 1 (s.Task.sec_period_max / 2)
             else s.Task.sec_period_max))
        ts.Task.sec;
      let sec_cores =
        if policy = Policy.Fully_partitioned then
          Some (Array.init n_sec (fun j -> j mod 2))
        else None
      in
      let built =
        Scenario.of_taskset ts ~rt_assignment:assignment ~policy
          ~sec_periods:bounds ?sec_cores ()
      in
      engines_agree ~n_cores:2 ~horizon:5000 built.Scenario.tasks;
      true)

(* Regression fixtures: deterministic scenarios concentrating the
   corner cases the QCheck search space visits only occasionally —
   same-tick release + completion + abort, abort of a running job
   (segment closed, no preempt event), migration chains under
   non-zero overheads, utilization-1 back-to-back execution. *)
let test_differential_abort_of_running_job () =
  (* Overloaded migrating task is aborted while running on its core. *)
  let hog0 = task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:4 ~period:8 () in
  let hog1 = task ~core:(Some 1) ~offset:2 ~id:1 ~prio:1 ~wcet:5 ~period:10 () in
  let over = task ~id:2 ~prio:2 ~wcet:7 ~period:7 () in
  let spare = task ~id:3 ~prio:3 ~wcet:2 ~period:9 ~offset:1 () in
  engines_agree ~n_cores:2 ~horizon:600 [ hog0; hog1; over; spare ]

let test_differential_simultaneous_everything () =
  (* Harmonic periods align releases, completions and aborts on the
     same ticks across cores. *)
  let tasks =
    [ task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:2 ~period:4 ();
      task ~core:(Some 1) ~id:1 ~prio:1 ~wcet:4 ~period:4 ();
      task ~id:2 ~prio:2 ~wcet:4 ~period:8 ();
      task ~id:3 ~prio:3 ~wcet:8 ~period:8 ();
      task ~id:4 ~prio:4 ~wcet:2 ~period:16 () ]
  in
  engines_agree ~n_cores:2 ~horizon:800 tasks

let test_differential_overheads_thrash () =
  (* Dispatch + migration costs under heavy preemption and migration:
     overhead-inflated jobs cross their own release boundaries. *)
  let tasks =
    [ task ~core:(Some 0) ~id:0 ~prio:0 ~wcet:1 ~period:3 ();
      task ~core:(Some 1) ~id:1 ~prio:1 ~wcet:1 ~period:3 ~offset:1 ();
      task ~id:2 ~prio:2 ~wcet:2 ~period:5 ();
      task ~id:3 ~prio:3 ~wcet:3 ~period:7 () ]
  in
  engines_agree
    ~overheads:{ Engine.dispatch_cost = 1; migration_cost = 2 }
    ~n_cores:2 ~horizon:700 tasks

let test_differential_util_one_chain () =
  let tasks =
    [ task ~id:0 ~prio:0 ~wcet:10 ~period:10 ();
      task ~id:1 ~prio:1 ~wcet:5 ~period:50 () ]
  in
  engines_agree ~n_cores:1 ~horizon:1000 tasks

let test_decision_events_counted () =
  (* One task, wcet 2, period 10, horizon 100: decision points are
     t=0 and then each completion/release boundary; both engines must
     agree and the count must be positive. *)
  let t = task ~id:0 ~prio:0 ~wcet:2 ~period:10 () in
  let fast = Engine.run ~fast:true ~n_cores:1 ~horizon:100 [ t ] in
  let naive = Engine.run ~fast:false ~n_cores:1 ~horizon:100 [ t ] in
  check_int "equal decision counts" naive.Engine.decision_events
    fast.Engine.decision_events;
  (* 10 releases + 10 completions, release and completion never
     coincide (wcet < period): 20 decision points. *)
  check_int "exact decision count" 20 fast.Engine.decision_events

let () =
  Alcotest.run "sim"
    [ ( "engine",
        [ Alcotest.test_case "single periodic task" `Quick
            test_single_task_periodic;
          Alcotest.test_case "uniproc preemption response" `Quick
            test_preemption_on_one_core;
          Alcotest.test_case "preempted into pieces" `Quick
            test_lp_actually_preempted;
          Alcotest.test_case "parallel cores" `Quick
            test_two_cores_run_in_parallel;
          Alcotest.test_case "migrating task fills idle core" `Quick
            test_migrating_task_fills_idle_core;
          Alcotest.test_case "pinned task waits" `Quick
            test_pinned_task_waits_for_its_core;
          Alcotest.test_case "global runs top-M" `Quick
            test_global_policy_takes_top_m;
          Alcotest.test_case "deadline miss + abort" `Quick
            test_deadline_miss_detected;
          Alcotest.test_case "offsets" `Quick test_offset_delays_first_release;
          Alcotest.test_case "busy/idle accounting" `Quick
            test_busy_plus_idle_accounting;
          Alcotest.test_case "validation" `Quick test_validation_errors ] );
      ( "hooks_trace",
        [ Alcotest.test_case "on_execute covers demand" `Quick
            test_on_execute_segments_sum_to_demand;
          Alcotest.test_case "release/finish hooks" `Quick
            test_on_release_and_finish_fire;
          Alcotest.test_case "preempt/migrate hooks match counters" `Quick
            test_preempt_migrate_hooks_match_counters;
          Alcotest.test_case "event log records schedule" `Quick
            test_event_log_records_schedule;
          Alcotest.test_case "event log chrome trace" `Quick
            test_event_log_chrome_trace;
          Alcotest.test_case "trace no-overlap + busy time" `Quick
            test_trace_no_overlap_and_busy_time;
          Alcotest.test_case "trace core utilization" `Quick
            test_trace_core_utilization;
          Alcotest.test_case "zero-horizon utilization" `Quick
            test_trace_zero_horizon_utilization;
          Alcotest.test_case "ascii insertion-order invariant" `Quick
            test_trace_ascii_insertion_order_invariant;
          Alcotest.test_case "csv export" `Quick test_trace_csv;
          Alcotest.test_case "ascii rendering" `Quick test_trace_ascii_renders ]
      );
      ( "switching",
        [ Alcotest.test_case "no migration when pinned" `Quick
            test_migrations_zero_when_pinned;
          Alcotest.test_case "migration counted" `Quick test_migration_counted;
          Alcotest.test_case "affinity avoids churn" `Quick
            test_affinity_avoids_gratuitous_migration;
          Alcotest.test_case "context switches" `Quick
            test_context_switches_counted ] );
      ( "metrics_extra",
        [ Alcotest.test_case "throughput and utilization" `Quick
            test_metrics_throughput_and_utilization;
          Alcotest.test_case "segments of core" `Quick
            test_trace_segments_of_core;
          Alcotest.test_case "policy names" `Quick test_policy_names ] );
      ( "schedule_properties",
        [ prop_hyperperiod_periodicity;
          Alcotest.test_case "work conserving for migrating jobs" `Quick
            test_work_conserving_for_migrating_job;
          Alcotest.test_case "simultaneous completions" `Quick
            test_simultaneous_completions;
          Alcotest.test_case "util-1 back to back" `Quick
            test_wcet_equal_period_back_to_back;
          prop_busy_ticks_bounded_by_demand ] );
      ( "overheads",
        [ Alcotest.test_case "zero costs are a no-op" `Quick
            test_zero_overheads_identical;
          Alcotest.test_case "dispatch cost inflates response" `Quick
            test_dispatch_cost_inflates_response;
          Alcotest.test_case "preemption pays twice" `Quick
            test_preemption_pays_twice;
          Alcotest.test_case "migration cost charged" `Quick
            test_migration_cost_charged;
          Alcotest.test_case "negative costs rejected" `Quick
            test_negative_overheads_rejected ] );
      ( "scenario",
        [ Alcotest.test_case "priority bands" `Quick
            test_scenario_priority_bands;
          Alcotest.test_case "policies pin correctly" `Quick
            test_scenario_policies_pin_correctly;
          Alcotest.test_case "requires sec_cores" `Quick
            test_scenario_requires_sec_cores;
          Alcotest.test_case "rover RT never misses" `Quick
            test_scenario_rt_no_misses_on_rover;
          prop_rt_isolated_from_security ] );
      ( "calendar",
        [ Alcotest.test_case "orders and ties" `Quick
            test_calendar_orders_and_ties;
          Alcotest.test_case "wraparound years" `Quick
            test_calendar_wraparound_years;
          Alcotest.test_case "rejects misuse" `Quick
            test_calendar_rejects_misuse;
          prop_calendar_matches_sorted_reference ] );
      ( "differential",
        [ prop_differential_raw;
          prop_differential_policies;
          Alcotest.test_case "abort of running job" `Quick
            test_differential_abort_of_running_job;
          Alcotest.test_case "simultaneous everything" `Quick
            test_differential_simultaneous_everything;
          Alcotest.test_case "overheads thrash" `Quick
            test_differential_overheads_thrash;
          Alcotest.test_case "util-1 chain" `Quick
            test_differential_util_one_chain;
          Alcotest.test_case "decision events counted" `Quick
            test_decision_events_counted ] ) ]
