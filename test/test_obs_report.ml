(* Tests for Obs_report, the library half of the `hydra_c obs-report`
   subcommand: loading both snapshot schemas, folding delta streams,
   quantiles recomputed from serialized buckets, the diff / percent /
   regression math, rendering, and the end-to-end round trip — a
   Snapshot.Stream of delta ticks folds back to exactly the registry's
   full snapshot. *)

open Test_util
module R = Hydra_obs.Report
module H = Hydra_obs.Histogram
module Stream = Hydra_obs.Snapshot.Stream

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let has_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* Two handwritten full snapshots: [full_b] changes a, drops b and the
   whole histogram section, adds c, doubles the distribution. *)
let full_a =
  {|{"schema":"hydra_c.metrics/1","counters":{"a":10,"b":5},"dists":{"d":{"count":2,"sum":10,"min":3,"max":7,"mean":5.0}},"histograms":{"h":{"count":3,"sum":30,"min":5,"max":15,"mean":10.0,"buckets":[{"le":5,"count":1},{"le":10,"count":1},{"le":15,"count":1}]}},"spans":{"s":{"count":4}}}|}

let full_b =
  {|{"schema":"hydra_c.metrics/1","counters":{"a":12,"c":1},"dists":{"d":{"count":4,"sum":40,"min":3,"max":17,"mean":10.0}},"histograms":{},"spans":{"s":{"count":4}}}|}

(* ------------------------------------------------------------------ *)
(* Loading *)

let test_load_full_snapshot () =
  let s = R.of_string full_a in
  check_bool "counters sorted" true (s.R.counters = [ ("a", 10); ("b", 5) ]);
  (match s.R.dists with
  | [ ("d", d) ] ->
      check_int "count" 2 d.R.d_count;
      check_int "sum" 10 d.R.d_sum;
      check_int "min" 3 d.R.d_min;
      check_int "max" 7 d.R.d_max
  | _ -> Alcotest.fail "expected exactly dist d");
  (match s.R.hists with
  | [ ("h", h) ] ->
      check_int "count" 3 h.R.h_count;
      check_bool "buckets ascending" true
        (h.R.h_buckets = [ (5, 1); (10, 1); (15, 1) ])
  | _ -> Alcotest.fail "expected exactly hist h");
  check_bool "span counts" true (s.R.spans = [ ("s", 4) ])

let delta_line_1 =
  {|{"schema":"hydra_c.metrics_delta/1","seq":0,"counters":{"a":2},"histograms":{"h":{"count":1,"sum":5,"min":5,"max":5,"buckets":[{"le":5,"count":1}]}}}|}

let delta_line_2 =
  {|{"schema":"hydra_c.metrics_delta/1","seq":1,"label":"phase two","counters":{"a":3},"histograms":{"h":{"count":2,"sum":25,"min":5,"max":15,"buckets":[{"le":10,"count":1},{"le":15,"count":1}]}},"spans":{"s":{"count":2}}}|}

let test_fold_delta_stream () =
  (* counters and bucket/count/sum deltas add; min/max are cumulative *)
  let s = R.of_string (delta_line_1 ^ "\n" ^ delta_line_2 ^ "\n") in
  check_bool "counter deltas summed" true (s.R.counters = [ ("a", 5) ]);
  (match s.R.hists with
  | [ ("h", h) ] ->
      check_int "count" 3 h.R.h_count;
      check_int "sum" 30 h.R.h_sum;
      check_int "min cumulative" 5 h.R.h_min;
      check_int "max cumulative" 15 h.R.h_max;
      check_bool "buckets merged ascending" true
        (h.R.h_buckets = [ (5, 1); (10, 1); (15, 1) ])
  | _ -> Alcotest.fail "expected exactly hist h");
  check_bool "span counts folded" true (s.R.spans = [ ("s", 2) ]);
  (* a single delta line is also a valid one-document snapshot *)
  let one = R.of_string delta_line_1 in
  check_bool "single delta loads" true (one.R.counters = [ ("a", 2) ])

let test_load_errors () =
  check_bool "missing file is Error" true
    (Result.is_error (R.load "/nonexistent/hydra_c_obs_report.json"));
  check_bool "unknown schema raises" true
    (try
       ignore (R.of_string {|{"schema":"bogus/9"}|});
       false
     with Hydra_obs.Json.Error _ -> true);
  check_bool "garbage raises" true
    (try
       ignore (R.of_string "not json at all");
       false
     with Hydra_obs.Json.Error _ -> true);
  check_bool "blank input raises" true
    (try
       ignore (R.of_string "   \n  \n");
       false
     with Hydra_obs.Json.Error _ -> true)

(* ------------------------------------------------------------------ *)
(* Quantiles from serialized buckets *)

let sample_list_arb =
  QCheck.make
    ~print:QCheck.Print.(list int)
    QCheck.Gen.(
      list_size (int_range 1 200)
        (oneof
           [ int_range 0 70; int_range 0 10_000; int_range 0 10_000_000 ]))

let hist_of_histogram h =
  { R.h_count = H.count h; h_sum = H.sum h;
    h_min = Option.value (H.min_value h) ~default:0;
    h_max = Option.value (H.max_value h) ~default:0;
    h_buckets = H.nonzero_buckets h }

let prop_quantile_matches_histogram =
  (* a quantile recomputed from the serialized bucket array must equal
     the one the writing Histogram would report *)
  qtest ~count:200 "Report.quantile = Histogram.quantile" sample_list_arb
    (fun vs ->
      let h = H.of_list vs in
      let rh = hist_of_histogram h in
      List.for_all
        (fun q -> R.quantile rh q = H.quantile h q)
        [ 0.01; 0.50; 0.95; 0.99; 1.0 ])

let test_quantile_empty_and_clamped () =
  let empty = { R.h_count = 0; h_sum = 0; h_min = 0; h_max = 0; h_buckets = [] } in
  check_int "empty histogram" 0 (R.quantile empty 0.5);
  let h = hist_of_histogram (H.of_list [ 10; 20; 30 ]) in
  check_int "q clamped below" 10 (R.quantile h (-1.0));
  check_int "q clamped above" 30 (R.quantile h 2.0)

(* ------------------------------------------------------------------ *)
(* Flatten / diff / regression math *)

let test_flatten_keys_and_values () =
  let flat = R.flatten (R.of_string full_a) in
  let expected =
    [ ("a", 10.); ("b", 5.); ("d.count", 2.); ("d.mean", 5.);
      ("h.count", 3.); ("h.max", 15.); ("h.p50", 10.); ("h.p99", 15.);
      ("s.count", 4.) ]
  in
  check_bool "same keys" true
    (List.map fst flat = List.map fst expected);
  check_bool "same values" true
    (List.for_all2 (fun (_, x) (_, y) -> Float.equal x y) flat expected)

let find_change changes key =
  match List.find_opt (fun c -> c.R.key = key) changes with
  | Some c -> c
  | None -> Alcotest.failf "change for %s missing" key

let test_diff_and_pct_change () =
  let changes = R.diff (R.of_string full_a) (R.of_string full_b) in
  check_bool "keys sorted" true
    (List.map (fun c -> c.R.key) changes
    = List.sort_uniq String.compare (List.map (fun c -> c.R.key) changes));
  let a = find_change changes "a" in
  check_bool "+20%" true
    (match R.pct_change a with
    | Some p -> Float.equal p 20.
    | None -> false);
  let b = find_change changes "b" in
  check_bool "dropped key: after None" true
    (b.R.before = Some 5. && b.R.after = None && R.pct_change b = None);
  let c = find_change changes "c" in
  check_bool "new key: before None" true
    (c.R.before = None && c.R.after = Some 1. && R.pct_change c = None);
  let zero_to_pos = { R.key = "x"; before = Some 0.; after = Some 3. } in
  check_bool "0 -> positive is infinite" true
    (match R.pct_change zero_to_pos with
    | Some p -> Float.equal p Float.infinity
    | None -> false);
  let zero_to_zero = { R.key = "x"; before = Some 0.; after = Some 0. } in
  check_bool "0 -> 0 is 0%" true
    (match R.pct_change zero_to_zero with
    | Some p -> Float.equal p 0.
    | None -> false)

let test_regressions_threshold_and_watch () =
  let changes = R.diff (R.of_string full_a) (R.of_string full_b) in
  let keys cs = List.map (fun c -> c.R.key) cs in
  (* a +20%, d.count +100%, d.mean +100%; everything else unchanged,
     missing on one side, or a decrease *)
  check_bool "over 15% threshold" true
    (keys (R.regressions ~threshold_pct:15. changes)
    = [ "a"; "d.count"; "d.mean" ]);
  check_bool "over 50% threshold" true
    (keys (R.regressions ~threshold_pct:50. changes) = [ "d.count"; "d.mean" ]);
  check_bool "watch restricts keys" true
    (keys
       (R.regressions
          ~watch:(fun k -> String.length k >= 2 && String.sub k 0 2 = "d.")
          ~threshold_pct:15. changes)
    = [ "d.count"; "d.mean" ]);
  let improvement = { R.key = "y"; before = Some 10.; after = Some 5. } in
  check_bool "a decrease never regresses" true
    (R.regressions ~threshold_pct:0. [ improvement ] = [])

(* ------------------------------------------------------------------ *)
(* Rendering *)

let test_rendering_deterministic () =
  let a = R.of_string full_a and b = R.of_string full_b in
  let summary = Format.asprintf "%a" R.pp_summary a in
  check_bool "summary headed" true (has_substring summary "metrics snapshot");
  check_bool "summary lists counter" true (has_substring summary "a");
  let same = Format.asprintf "%a" (R.pp_diff ~only_changed:true) (R.diff a a) in
  check_bool "self-diff has no differences" true
    (has_substring same "(no differences)");
  let out = Format.asprintf "%a" (R.pp_diff ~only_changed:true) (R.diff a b) in
  check_bool "percent column rendered" true (has_substring out "+20.0%");
  check_bool "missing side rendered as dash" true (has_substring out " - ");
  let twice = Format.asprintf "%a" (R.pp_diff ~only_changed:true) (R.diff a b) in
  Alcotest.(check string) "rendering is deterministic" out twice

(* ------------------------------------------------------------------ *)
(* Stream round trip: folding the JSONL deltas reconstructs the full
   snapshot exactly *)

let test_stream_round_trip () =
  let obs_t = Hydra_obs.create () in
  let obs = Some obs_t in
  let path = Filename.temp_file "hydra_obs_stream" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let st = Stream.create obs_t ~path in
  Hydra_obs.incr obs "rt.count";
  Hydra_obs.observe obs "rt.dist" 7;
  List.iter (Hydra_obs.sample obs "rt.lat") [ 3; 14; 159 ];
  Hydra_obs.span obs "rt.span" (fun () -> ());
  Stream.tick ~label:"phase one" st;
  (* second interval: concurrent recording from pool workers opens new
     buckets; the dist minimum moves (cumulative min/max in deltas) *)
  let (_ : unit array) =
    Parallel.Pool.map ?obs ~jobs:3
      (fun i -> Hydra_obs.sample obs "rt.lat" (i * 977))
      50
  in
  Hydra_obs.add obs "rt.count" 4;
  Hydra_obs.observe obs "rt.dist" (-2);
  Hydra_obs.span obs "rt.span" (fun () -> ());
  Stream.tick st;
  Stream.tick st (* idle interval: nothing moved *);
  Stream.close st;
  Stream.close st (* idempotent *);
  Stream.tick st (* no-op after close *);
  let streamed =
    match R.load path with Ok s -> s | Error m -> Alcotest.fail m
  in
  let full = R.of_string (Hydra_obs.Snapshot.to_json obs_t) in
  check_bool "counters round-trip" true (streamed.R.counters = full.R.counters);
  check_bool "dists round-trip" true (streamed.R.dists = full.R.dists);
  check_bool "hists round-trip" true (streamed.R.hists = full.R.hists);
  check_bool "spans round-trip" true (streamed.R.spans = full.R.spans);
  check_bool "flattened views identical" true
    (R.diff streamed full
    |> List.for_all (fun c ->
           match (c.R.before, c.R.after) with
           | Some x, Some y -> Float.equal x y
           | _ -> false))

let () =
  Alcotest.run "obs-report"
    [ ( "loading",
        [ Alcotest.test_case "full snapshot" `Quick test_load_full_snapshot;
          Alcotest.test_case "delta stream fold" `Quick test_fold_delta_stream;
          Alcotest.test_case "errors" `Quick test_load_errors ] );
      ( "quantiles",
        [ prop_quantile_matches_histogram;
          Alcotest.test_case "empty and clamped" `Quick
            test_quantile_empty_and_clamped ] );
      ( "diff",
        [ Alcotest.test_case "flatten keys and values" `Quick
            test_flatten_keys_and_values;
          Alcotest.test_case "diff and pct_change" `Quick
            test_diff_and_pct_change;
          Alcotest.test_case "regressions threshold and watch" `Quick
            test_regressions_threshold_and_watch ] );
      ( "rendering",
        [ Alcotest.test_case "deterministic tables" `Quick
            test_rendering_deterministic ] );
      ( "stream",
        [ Alcotest.test_case "JSONL deltas fold to full snapshot" `Quick
            test_stream_round_trip ] ) ]
