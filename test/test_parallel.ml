(* Parallel.Pool unit tests and the cross-[jobs] determinism contract:
   every sweep-shaped experiment must produce structurally identical
   results for jobs:1 (the plain sequential loop) and jobs:4
   (work-stealing domains). See doc/PARALLELISM.md. *)

module Pool = Parallel.Pool

let check = Alcotest.check
let int_array = Alcotest.(array int)

(* ------------------------------------------------------------------ *)
(* Pool unit tests *)

let test_empty () =
  check int_array "jobs:1" [||] (Pool.map ~jobs:1 (fun i -> i) 0);
  check int_array "jobs:4" [||] (Pool.map ~jobs:4 (fun i -> i) 0)

let test_single () =
  check int_array "jobs:1" [| 7 |] (Pool.map ~jobs:1 (fun i -> i + 7) 1);
  check int_array "jobs:4" [| 7 |] (Pool.map ~jobs:4 (fun i -> i + 7) 1)

let test_negative () =
  Alcotest.check_raises "negative length"
    (Invalid_argument "Pool.map: negative length") (fun () ->
      ignore (Pool.map ~jobs:2 (fun i -> i) (-1)))

let test_slotted_by_index () =
  let expect = Array.init 100 (fun i -> i * i) in
  check int_array "jobs:1" expect (Pool.map ~jobs:1 (fun i -> i * i) 100);
  check int_array "jobs:4" expect (Pool.map ~jobs:4 (fun i -> i * i) 100);
  check int_array "jobs:16 chunk:7" expect
    (Pool.map ~jobs:16 ~chunk:7 (fun i -> i * i) 100);
  check int_array "jobs > items" expect
    (Pool.map ~jobs:128 (fun i -> i * i) 100)

let test_exception_propagates () =
  Alcotest.check_raises "worker failure reaches caller"
    (Failure "boom") (fun () ->
      ignore
        (Pool.map ~jobs:4
           (fun i -> if i = 13 then failwith "boom" else i)
           64))

let test_default_jobs () =
  let j = Pool.default_jobs () in
  Alcotest.(check bool) "at least one worker" true (j >= 1)

let test_map_list_array () =
  check
    Alcotest.(list int)
    "map_list order" [ 1; 2; 3; 4; 5 ]
    (Pool.map_list ~jobs:4 (fun x -> x + 1) [ 0; 1; 2; 3; 4 ]);
  check int_array "map_array order" [| 0; 2; 4 |]
    (Pool.map_array ~jobs:4 (fun x -> 2 * x) [| 0; 1; 2 |])

(* ------------------------------------------------------------------ *)
(* Static (persistent) pool *)

let with_static ~jobs f =
  let pool = Pool.Static.create ~jobs in
  Fun.protect ~finally:(fun () -> Pool.Static.shutdown pool) (fun () ->
      f pool)

let test_static_matches_map () =
  let expect = Array.init 200 (fun i -> i * i) in
  List.iter
    (fun jobs ->
      with_static ~jobs (fun pool ->
          check int_array
            (Printf.sprintf "jobs:%d" jobs)
            expect
            (Pool.Static.map pool (fun i -> i * i) 200);
          check int_array
            (Printf.sprintf "jobs:%d chunk:7" jobs)
            expect
            (Pool.Static.map ~chunk:7 pool (fun i -> i * i) 200)))
    [ 1; 2; 4 ]

let test_static_reuse () =
  (* many consecutive maps on one pool: epochs advance, workers park
     and wake each time, results stay slotted by index *)
  with_static ~jobs:4 (fun pool ->
      for round = 1 to 50 do
        let expect = Array.init 37 (fun i -> (round * 1000) + i) in
        check int_array "round" expect
          (Pool.Static.map pool (fun i -> (round * 1000) + i) 37)
      done)

let test_static_empty_and_negative () =
  with_static ~jobs:4 (fun pool ->
      check int_array "empty" [||] (Pool.Static.map pool (fun i -> i) 0);
      Alcotest.check_raises "negative length"
        (Invalid_argument "Pool.Static.map: negative length") (fun () ->
          ignore (Pool.Static.map pool (fun i -> i) (-1))))

let test_static_exception_then_reuse () =
  with_static ~jobs:4 (fun pool ->
      Alcotest.check_raises "worker failure reaches caller"
        (Failure "boom") (fun () ->
          ignore
            (Pool.Static.map pool
               (fun i -> if i = 13 then failwith "boom" else i)
               64));
      (* the pool survives a failed map *)
      check int_array "usable after failure"
        (Array.init 64 (fun i -> i))
        (Pool.Static.map pool (fun i -> i) 64))

let test_static_shutdown () =
  let pool = Pool.Static.create ~jobs:4 in
  Pool.Static.shutdown pool;
  Pool.Static.shutdown pool;
  (* idempotent *)
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.Static.map: pool is shut down") (fun () ->
      ignore (Pool.Static.map pool (fun i -> i) 4))

(* ------------------------------------------------------------------ *)
(* RNG stream pre-splitting *)

let test_split_n_matches_split () =
  let a = Taskgen.Rng.create 99 and b = Taskgen.Rng.create 99 in
  let streams = Taskgen.Rng.split_n a 8 in
  Array.iter
    (fun s ->
      check Alcotest.int64 "same stream seed"
        (Taskgen.Rng.bits64 (Taskgen.Rng.split b))
        (Taskgen.Rng.bits64 s))
    streams;
  (* parents advanced identically *)
  check Alcotest.int64 "parent state" (Taskgen.Rng.bits64 b)
    (Taskgen.Rng.bits64 a)

(* ------------------------------------------------------------------ *)
(* Cross-jobs determinism of the experiment layer *)

let structurally_equal name a b =
  Alcotest.(check bool) name true (a = b)

let test_sweep_deterministic () =
  let run jobs =
    Experiments.Sweep.run ~jobs ~n_cores:2 ~per_group:3 ~seed:11 ()
  in
  let seq = run 1 and par = run 4 in
  Alcotest.(check bool)
    "produced records" true
    (List.length seq.Experiments.Sweep.records > 0);
  structurally_equal "sweep jobs:1 = jobs:4" seq par

let test_fig5_deterministic () =
  let run jobs =
    Experiments.Fig5.run ~seed:5 ~trials:3 ~horizon:12000 ~jobs ()
  in
  structurally_equal "fig5 jobs:1 = jobs:4" (run 1) (run 4)

let test_validation_deterministic () =
  let run jobs =
    Experiments.Validation.run ~jobs ~n_cores:2 ~tasksets:6 ~seed:17
      ~horizon:20000 ()
  in
  structurally_equal "validation jobs:1 = jobs:4" (run 1) (run 4)

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "empty input" `Quick test_empty;
          Alcotest.test_case "single item" `Quick test_single;
          Alcotest.test_case "negative length" `Quick test_negative;
          Alcotest.test_case "slotted by index" `Quick test_slotted_by_index;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates;
          Alcotest.test_case "default jobs" `Quick test_default_jobs;
          Alcotest.test_case "map_list/map_array" `Quick test_map_list_array
        ] );
      ( "static",
        [ Alcotest.test_case "matches map" `Quick test_static_matches_map;
          Alcotest.test_case "reuse across epochs" `Quick test_static_reuse;
          Alcotest.test_case "empty/negative" `Quick
            test_static_empty_and_negative;
          Alcotest.test_case "failure then reuse" `Quick
            test_static_exception_then_reuse;
          Alcotest.test_case "shutdown" `Quick test_static_shutdown ] );
      ( "rng",
        [ Alcotest.test_case "split_n = successive splits" `Quick
            test_split_n_matches_split ] );
      ( "determinism",
        [ Alcotest.test_case "sweep" `Slow test_sweep_deterministic;
          Alcotest.test_case "fig5" `Slow test_fig5_deterministic;
          Alcotest.test_case "validation" `Slow test_validation_deterministic
        ] ) ]
