(* Fixture for rule D1: ambient wall-clock and global-state entropy.
   Linted by test_lint under the pretend path lib/d1_wallclock.ml.
   Expected findings: D1 at lines 4, 7 and 8. *)
let elapsed () = Unix.gettimeofday ()

let seeded_jitter () =
  Random.self_init ();
  Random.float 1.0

(* Explicit-state randomness is fine: no finding expected here. *)
let ok_jitter st = Random.State.float st 1.0
