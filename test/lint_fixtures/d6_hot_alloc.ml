(* Fixture for rule D6: heap allocation inside [@lint.hot] bindings.
   Linted by test_lint under the pretend path lib/d6_hot_alloc.ml.
   Expected findings: D6 at lines 4, 6, 8 and 15. *)
let[@lint.hot] bad_pair x y = (x, y)

let[@lint.hot] bad_some x = Some x

let[@lint.hot] bad_map xs = List.map (fun x -> x + 1) xs

(* allocation-free hot code: no findings *)
let[@lint.hot] ok_mask b = b land (b - 1)

(* a hot binding local to a cold function is scanned too *)
let outer n =
  let[@lint.hot] cell () = ref n in
  cell ()

(* the same allocations outside a hot binding: no findings *)
let pair x y = (x, y)
let cell v = ref v
