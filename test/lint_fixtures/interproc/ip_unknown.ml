(* Unknown callee: D8 must report "cannot prove" (a note), never a
   silent pass and never a guessed finding. *)
let[@lint.hot] f x = Ext_mystery.transform x
