(* Atomic state is the sanctioned form of cross-domain counters. *)
let counter = Atomic.make 0
let tick () = Atomic.incr counter
