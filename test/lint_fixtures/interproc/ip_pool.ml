(* Racy: the closure reaches Ip_state.hits two calls deep (D7). *)
let racy n = Parallel.Pool.map (fun i -> Ip_mid.middle i) n

(* Sanctioned: Atomic counters are domain-safe. *)
let safe n = Parallel.Pool.map (fun i -> Ip_atomic.tick (); i) n

(* Sanctioned cross-module: the state binding allows "D7". *)
let allowed n = Parallel.Pool.map (fun i -> Ip_allowed_state.note i; i) n
