(* A [@lint.cold] callee is a sanctioned allocation point: D8 stops
   at it without descending, so this file is clean. *)
let[@lint.cold] make_pair x = (x, x)
let[@lint.hot] wrap x = make_pair x
