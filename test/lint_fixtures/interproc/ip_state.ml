(* Module-level mutable state: the D7 race target, two calls away. *)
let hits = ref 0
let bump () = hits := !hits + 1
let count () = !hits
