(* Allocation three calls deep under [@lint.hot] (D8). *)
let l3 x = (x, x)
let l2 x = l3 (x + 1)
let l1 x = l2 (x * 2)
let[@lint.hot] entry x = l1 x
