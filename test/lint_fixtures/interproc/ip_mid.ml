(* Middle hop: puts Ip_state.hits two calls away from the closure. *)
let middle x =
  Ip_state.bump ();
  x + 1
