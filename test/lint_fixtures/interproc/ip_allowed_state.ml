(* Deliberate shared state: the allow on the binding sanctions every
   path that reaches it, from any module (cross-module suppression). *)
let total = ref 0 [@@lint.allow "D7"]
let note x = total := !total + x
