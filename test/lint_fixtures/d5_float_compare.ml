(* Fixture for rule D5: polymorphic compare/(=) on float operands.
   Linted by test_lint under the pretend path lib/d5_float_compare.ml.
   Expected findings: D5 at lines 4 and 6. *)
let fully_utilized u = u = 1.0

let rank a b = compare (a *. 2.0) b

(* The specialized comparators are the fix: no findings here. *)
let rank_ok a b = Float.compare (a *. 2.0) b
let fully_utilized_ok u = Float.equal u 1.0
