(* Fixture for rule D4: module-level mutable state in libraries.
   Linted by test_lint under the pretend path lib/d4_global_state.ml.
   Expected findings: D4 at lines 4 and 6. *)
let cache : (string, int) Hashtbl.t = Hashtbl.create 64

let hits = ref 0

(* Atomics are the sanctioned module-level state: no finding. *)
let next_id = Atomic.make 0

(* Creation inside a function happens per call, not at module
   initialisation: no finding. *)
let fresh_table () = Hashtbl.create 8
