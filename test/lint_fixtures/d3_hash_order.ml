(* Fixture for rule D3: order-sensitive Hashtbl.fold/iter.
   Linted by test_lint under the pretend path lib/d3_hash_order.ml.
   Expected findings: D3 at lines 4 and 6. *)
let keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []

let render tbl buf = Hashtbl.iter (fun k v -> Buffer.add_string buf (k ^ v)) tbl

(* Adjacent sort: no finding expected. *)
let keys_sorted tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

(* Commutative accumulator (no list/string construction): no finding. *)
let cardinality tbl = Hashtbl.fold (fun _ _ acc -> acc + 1) tbl 0

(* Suppressed: the attribute marks the fold as commutative. *)
let keys_commutative tbl =
  (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] [@lint.allow "D3"])
