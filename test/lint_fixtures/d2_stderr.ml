(* Fixture for rule D2's server tightening: raw stderr writes inside
   daemon code. Linted by test_lint under the pretend path
   lib/server/d2_stderr.ml (stderr is only rejected there).
   Expected findings: D2 at lines 5, 7 and 9. *)
let warn m = Printf.eprintf "[serve] %s\n%!" m

let moan () = prerr_endline "overload"

let channel () = output_string stderr "raw\n"

(* The sanctioned form — three-segment idents never match the stderr
   matchers, so no finding expected here. *)
let ok log = Hydra_obs.Log.log log "overload" [ ("tenant", "a") ]
