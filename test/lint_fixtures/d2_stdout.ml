(* Fixture for rule D2: stdout writes inside library code.
   Linted by test_lint under the pretend path lib/d2_stdout.ml.
   Expected findings: D2 at lines 4 and 6. *)
let report x = Printf.printf "x=%d\n" x

let banner () = print_endline "hydra"

(* Results flowing through a formatter argument are the sanctioned
   form: no finding expected here. *)
let pp ppf x = Format.fprintf ppf "x=%d@." x
