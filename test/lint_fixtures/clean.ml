(* Fixture with representative idioms from the real tree that must
   produce zero findings under the pretend path lib/clean.ml. *)

let utilization w p = float_of_int w /. float_of_int p

let total tbl = Hashtbl.fold (fun _ v acc -> acc + v) tbl 0

let ordered tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort String.compare

let pp ppf x = Format.fprintf ppf "x=%d@." x

let by_prio a b = Int.compare (fst a) (fst b)

let counter = Atomic.make 0

let stamp obs = Option.map (fun _ -> Atomic.fetch_and_add counter 1) obs
