let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* The exact sequential path: no domain, no atomic, ascending order. *)
let map_seq f n =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end

let map ?jobs ?(chunk = 1) f n =
  if n < 0 then invalid_arg "Pool.map: negative length";
  let chunk = max 1 chunk in
  let jobs =
    let requested =
      match jobs with Some j -> max 1 j | None -> default_jobs ()
    in
    (* more workers than chunks would only spawn idle domains *)
    min requested (max 1 ((n + chunk - 1) / chunk))
  in
  if jobs = 1 then map_seq f n
  else begin
    let out = Array.make n None in
    let cursor = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let running = ref true in
      while !running do
        if Atomic.get failure <> None then running := false
        else begin
          let start = Atomic.fetch_and_add cursor chunk in
          if start >= n then running := false
          else
            let stop = min n (start + chunk) in
            try
              for i = start to stop - 1 do
                (* distinct indices: no write ever races with another *)
                out.(i) <- Some (f i)
              done
            with e ->
              let bt = Printexc.get_raw_backtrace () in
              ignore (Atomic.compare_and_set failure None (Some (e, bt)));
              running := false
        end
      done
    in
    let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_array ?jobs ?chunk f a =
  map ?jobs ?chunk (fun i -> f a.(i)) (Array.length a)

let map_list ?jobs ?chunk f l =
  Array.to_list (map_array ?jobs ?chunk f (Array.of_list l))
