let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* The exact sequential path: no domain, no atomic, ascending order. *)
let map_seq f n =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end

(* One worker's share of a map: steal chunks off the shared cursor
   until the range is exhausted or some worker has failed. [apply i]
   writes slot [i] of the caller's output array — distinct indices, so
   no write ever races with another. Shared by the spawn-per-map
   {!map} and the persistent {!Static} pool so both have the same
   scheduling, failure and profiling behavior. *)
let claim_loop obs ~profile ~cursor ~failure ~chunk ~n apply =
  let body () =
    (* accumulate locally, publish once per worker at the end *)
    let busy = ref 0 and idle = ref 0 and chunks = ref 0 in
    let running = ref true in
    while !running do
      if Atomic.get failure <> None then running := false
      else begin
        let t_wait = if profile then Hydra_obs.now_ns () else 0 in
        let start = Atomic.fetch_and_add cursor chunk in
        if start >= n then running := false
        else begin
          let t_claim =
            if profile then begin
              let t = Hydra_obs.now_ns () in
              let w = t - t_wait in
              idle := !idle + w;
              Hydra_obs.sample obs "pool.queue_wait_ns" w;
              incr chunks;
              t
            end
            else 0
          in
          let stop = min n (start + chunk) in
          (try
             for i = start to stop - 1 do
               apply i
             done
           with e ->
             let bt = Printexc.get_raw_backtrace () in
             ignore (Atomic.compare_and_set failure None (Some (e, bt)));
             running := false);
          if profile then busy := !busy + (Hydra_obs.now_ns () - t_claim)
        end
      end
    done;
    if profile then begin
      Hydra_obs.sample obs "pool.worker.busy_ns" !busy;
      Hydra_obs.sample obs "pool.worker.idle_ns" !idle;
      Hydra_obs.add obs "pool.chunks" !chunks
    end
  in
  (* under profiling each worker is also a span, so the trace grows
     one "pool.worker" slice per worker domain per map *)
  if profile then Hydra_obs.span obs "pool.worker" body else body ()

let reraise_failure failure =
  match Atomic.get failure with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* [?on_item] rides inside [f] so every execution path — sequential,
   spawn-per-map, persistent pool — fires it on the domain that
   actually computes the item, immediately before it does. *)
let with_hook on_item f =
  match on_item with None -> f | Some h -> fun i -> h i; f i

let map ?obs ?jobs ?(chunk = 1) ?on_item f n =
  if n < 0 then invalid_arg "Pool.map: negative length";
  let f = with_hook on_item f in
  let chunk = max 1 chunk in
  let jobs =
    let requested =
      match jobs with Some j -> max 1 j | None -> default_jobs ()
    in
    (* more workers than chunks would only spawn idle domains *)
    min requested (max 1 ((n + chunk - 1) / chunk))
  in
  (* [pool.maps]/[pool.items] are pure functions of the workload, so
     they stay inside the byte-identical-across---jobs snapshot
     contract; everything measured below is scheduling (wall-clock,
     worker count, steal order) and is recorded only on a profiling
     registry (doc/OBSERVABILITY.md). *)
  Hydra_obs.incr obs "pool.maps";
  Hydra_obs.add obs "pool.items" n;
  if jobs = 1 then map_seq f n
  else begin
    let profile = Hydra_obs.profiling_enabled obs in
    if profile then Hydra_obs.add obs "pool.workers" jobs;
    let out = Array.make n None in
    let cursor = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      claim_loop obs ~profile ~cursor ~failure ~chunk ~n (fun i ->
          out.(i) <- Some (f i))
    in
    let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    reraise_failure failure;
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_array ?obs ?jobs ?chunk f a =
  map ?obs ?jobs ?chunk (fun i -> f a.(i)) (Array.length a)

let map_list ?obs ?jobs ?chunk f l =
  Array.to_list (map_array ?obs ?jobs ?chunk f (Array.of_list l))

(* Persistent worker pool: [jobs - 1] long-lived domains parked on a
   condition variable between maps. [map] publishes a job under the
   mutex as a monomorphic [unit -> unit] body (the polymorphic output
   array is captured in the closure), bumps the epoch, wakes everyone,
   runs the same claim loop in the calling domain, then blocks until
   every worker has checked back in. Spawning a domain costs ~100 us;
   a server dispatching small batches per request would pay that on
   every batch with {!map}, which is the entire reason this module
   exists (doc/SERVER.md). Determinism is inherited from
   {!claim_loop}: results are slotted by index, so output is identical
   for every [jobs]. *)
module Static = struct
  type t = {
    jobs : int;
    mu : Mutex.t;
    start : Condition.t;  (* workers: a new epoch is available *)
    finish : Condition.t;  (* caller: all workers drained the epoch *)
    mutable epoch : int;
    mutable body : (unit -> unit) option;  (* job of the current epoch *)
    mutable active : int;  (* workers still inside the current epoch *)
    mutable stopped : bool;
    mutable domains : unit Domain.t array;
  }

  let jobs t = t.jobs

  let worker t =
    let seen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock t.mu;
      while (not t.stopped) && t.epoch = !seen do
        Condition.wait t.start t.mu
      done;
      if t.stopped then begin
        running := false;
        Mutex.unlock t.mu
      end
      else begin
        seen := t.epoch;
        let body = t.body in
        Mutex.unlock t.mu;
        (match body with Some run -> run () | None -> ());
        Mutex.lock t.mu;
        t.active <- t.active - 1;
        if t.active = 0 then Condition.signal t.finish;
        Mutex.unlock t.mu
      end
    done

  let create ~jobs =
    let jobs = max 1 jobs in
    let t =
      { jobs; mu = Mutex.create (); start = Condition.create ();
        finish = Condition.create (); epoch = 0; body = None; active = 0;
        stopped = false; domains = [||] }
    in
    t.domains <-
      Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
    t

  let shutdown t =
    let join =
      Mutex.lock t.mu;
      let first = not t.stopped in
      if first then begin
        t.stopped <- true;
        Condition.broadcast t.start
      end;
      Mutex.unlock t.mu;
      first
    in
    if join then Array.iter Domain.join t.domains

  let map ?obs ?(chunk = 1) ?on_item t f n =
    if n < 0 then invalid_arg "Pool.Static.map: negative length";
    if t.stopped then invalid_arg "Pool.Static.map: pool is shut down";
    let f = with_hook on_item f in
    let chunk = max 1 chunk in
    Hydra_obs.incr obs "pool.maps";
    Hydra_obs.add obs "pool.items" n;
    if t.jobs = 1 || n <= chunk then map_seq f n
    else begin
      let profile = Hydra_obs.profiling_enabled obs in
      if profile then Hydra_obs.add obs "pool.workers" t.jobs;
      let out = Array.make n None in
      let cursor = Atomic.make 0 in
      let failure = Atomic.make None in
      let run () =
        claim_loop obs ~profile ~cursor ~failure ~chunk ~n (fun i ->
            out.(i) <- Some (f i))
      in
      Mutex.lock t.mu;
      t.body <- Some run;
      t.active <- t.jobs - 1;
      t.epoch <- t.epoch + 1;
      Condition.broadcast t.start;
      Mutex.unlock t.mu;
      (* the calling domain is a worker too *)
      run ();
      Mutex.lock t.mu;
      while t.active > 0 do
        Condition.wait t.finish t.mu
      done;
      t.body <- None;
      Mutex.unlock t.mu;
      reraise_failure failure;
      Array.map (function Some v -> v | None -> assert false) out
    end
end
