let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* The exact sequential path: no domain, no atomic, ascending order. *)
let map_seq f n =
  if n = 0 then [||]
  else begin
    let out = Array.make n (f 0) in
    for i = 1 to n - 1 do
      out.(i) <- f i
    done;
    out
  end

let map ?obs ?jobs ?(chunk = 1) f n =
  if n < 0 then invalid_arg "Pool.map: negative length";
  let chunk = max 1 chunk in
  let jobs =
    let requested =
      match jobs with Some j -> max 1 j | None -> default_jobs ()
    in
    (* more workers than chunks would only spawn idle domains *)
    min requested (max 1 ((n + chunk - 1) / chunk))
  in
  (* [pool.maps]/[pool.items] are pure functions of the workload, so
     they stay inside the byte-identical-across---jobs snapshot
     contract; everything measured below is scheduling (wall-clock,
     worker count, steal order) and is recorded only on a profiling
     registry (doc/OBSERVABILITY.md). *)
  Hydra_obs.incr obs "pool.maps";
  Hydra_obs.add obs "pool.items" n;
  if jobs = 1 then map_seq f n
  else begin
    let profile = Hydra_obs.profiling_enabled obs in
    if profile then Hydra_obs.add obs "pool.workers" jobs;
    let out = Array.make n None in
    let cursor = Atomic.make 0 in
    let failure = Atomic.make None in
    let worker () =
      let body () =
        (* accumulate locally, publish once per worker at the end *)
        let busy = ref 0 and idle = ref 0 and chunks = ref 0 in
        let running = ref true in
        while !running do
          if Atomic.get failure <> None then running := false
          else begin
            let t_wait = if profile then Hydra_obs.now_ns () else 0 in
            let start = Atomic.fetch_and_add cursor chunk in
            if start >= n then running := false
            else begin
              let t_claim =
                if profile then begin
                  let t = Hydra_obs.now_ns () in
                  let w = t - t_wait in
                  idle := !idle + w;
                  Hydra_obs.sample obs "pool.queue_wait_ns" w;
                  incr chunks;
                  t
                end
                else 0
              in
              let stop = min n (start + chunk) in
              (try
                 for i = start to stop - 1 do
                   (* distinct indices: no write ever races with another *)
                   out.(i) <- Some (f i)
                 done
               with e ->
                 let bt = Printexc.get_raw_backtrace () in
                 ignore (Atomic.compare_and_set failure None (Some (e, bt)));
                 running := false);
              if profile then busy := !busy + (Hydra_obs.now_ns () - t_claim)
            end
          end
        done;
        if profile then begin
          Hydra_obs.sample obs "pool.worker.busy_ns" !busy;
          Hydra_obs.sample obs "pool.worker.idle_ns" !idle;
          Hydra_obs.add obs "pool.chunks" !chunks
        end
      in
      (* under profiling each worker is also a span, so the trace grows
         one "pool.worker" slice per worker domain per map *)
      if profile then Hydra_obs.span obs "pool.worker" body else body ()
    in
    let spawned = Array.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join spawned;
    (match Atomic.get failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) out
  end

let map_array ?obs ?jobs ?chunk f a =
  map ?obs ?jobs ?chunk (fun i -> f a.(i)) (Array.length a)

let map_list ?obs ?jobs ?chunk f l =
  Array.to_list (map_array ?obs ?jobs ?chunk f (Array.of_list l))
