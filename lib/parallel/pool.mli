(** Deterministic data-parallel map over OCaml 5 domains.

    The experiment layer's sweeps are embarrassingly parallel: every
    taskset/trial owns a pre-split RNG stream ({!Taskgen.Rng.split_n}),
    so evaluating item [i] touches no state shared with item [j]. This
    pool exploits that shape while preserving the repository's
    bit-for-bit reproducibility guarantee:

    {b Determinism contract.} [map ~jobs f n] returns
    [[| f 0; f 1; ...; f (n-1) |]] for {e every} [jobs] value: results
    are slotted into the output array by index, never by completion
    order, and workers race only over {e which} domain computes an
    index, never over what the result at that index is. Provided [f]
    is deterministic and items are independent (no shared mutable
    state), the output is identical for [jobs = 1] and [jobs = 64].
    [jobs = 1] does not spawn any domain at all — it is a plain
    ascending [for] loop in the calling domain, i.e. the exact
    sequential path.

    Scheduling is chunked work-stealing: a shared atomic cursor hands
    out chunks of [chunk] consecutive indices to whichever worker is
    idle, so heterogeneous item costs (high-utilization tasksets take
    far longer to analyze than low ones) balance automatically.

    See [doc/PARALLELISM.md] for the full contract and measured
    speedups. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count () - 1], floored at 1: one worker
    per available core, leaving a core's worth of headroom for the OS
    and the orchestrating domain. On a single-core machine this is 1
    (fully sequential). *)

val map :
  ?obs:Hydra_obs.t -> ?jobs:int -> ?chunk:int -> ?on_item:(int -> unit) ->
  (int -> 'a) -> int -> 'a array
(** [map ~jobs ~chunk f n] is [[| f 0; ...; f (n-1) |]] computed on
    [jobs] domains ([jobs - 1] spawned workers plus the calling
    domain). [jobs] defaults to {!default_jobs}[ ()] and is clamped to
    at least 1; [chunk] (default 1) is the number of consecutive
    indices claimed per steal — raise it only when [f] is so cheap
    that cursor contention shows.

    If any [f i] raises, the first exception (in steal order) is
    re-raised in the caller with its backtrace after all workers have
    stopped; remaining unclaimed chunks are abandoned.

    With [?obs], the pool records the deterministic workload counters
    [pool.maps] and [pool.items] always, and — only when
    {!Hydra_obs.profiling_enabled} holds for the registry — the
    scheduling metrics: [pool.workers]/[pool.chunks] counters, the
    [pool.queue_wait_ns] per-steal histogram, per-worker
    [pool.worker.busy_ns]/[pool.worker.idle_ns] histograms, and one
    [pool.worker] span per worker domain (a per-worker row in the
    Chrome trace). Scheduling numbers are wall-clock and vary across
    [--jobs], which is why they sit behind the profiling gate
    (doc/OBSERVABILITY.md has the catalog; doc/PARALLELISM.md the
    contract).

    [?on_item] is an observability hook: it runs on the {e executing}
    domain immediately before [f i], on every path including the
    sequential one. The admission engine uses it to drop the receiving
    end of cross-domain trace flow arrows on the worker that picked the
    item up ({!Hydra_obs.flow_end}). The hook must be domain-safe and
    must not raise; side effects on shared state fall outside the
    determinism contract exactly like profiling metrics do.

    @raise Invalid_argument if [n < 0]. *)

val map_array :
  ?obs:Hydra_obs.t -> ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a array ->
  'b array
(** [map_array f a] is [Array.map f a], parallelized as {!map}. *)

val map_list :
  ?obs:Hydra_obs.t -> ?jobs:int -> ?chunk:int -> ('a -> 'b) -> 'a list ->
  'b list
(** [map_list f l] is [List.map f l], parallelized as {!map}. The
    result preserves list order. *)

(** Persistent worker pool for callers that dispatch {e many small}
    maps: the admission-control daemon runs one map per request batch,
    and paying a domain spawn (~100 us) per batch would dominate its
    latency profile (doc/SERVER.md). [create ~jobs] spawns [jobs - 1]
    long-lived domains that park on a condition variable between maps;
    {!Static.map} hands them a job, joins in from the calling domain,
    and blocks until the job is drained — so a pool runs exactly one
    map at a time and must only be driven from one domain.

    The determinism contract is the same as {!map}: results are
    slotted by index, so the output array is identical for every
    [jobs], and [jobs = 1] spawns no domains and runs the exact
    sequential path. Failure semantics are the same too: the first
    exception (in steal order) is re-raised in the caller after the
    job drains, and the pool remains usable. *)
module Static : sig
  type t

  val create : jobs:int -> t
  (** Spawns [max 1 jobs - 1] worker domains (so [jobs <= 1] is fully
      sequential). The caller must eventually {!shutdown} the pool or
      the domains keep the process alive. *)

  val jobs : t -> int
  (** The clamped worker count (including the calling domain). *)

  val map :
    ?obs:Hydra_obs.t -> ?chunk:int -> ?on_item:(int -> unit) -> t ->
    (int -> 'a) -> int -> 'a array
  (** [map t f n] is [[| f 0; ...; f (n-1) |]] on the pool's domains
      plus the calling domain; blocks until complete. [chunk] and
      [on_item] as in {!val:map}. Records the same [pool.*] metrics as
      {!val:map} (workload counters always, scheduling metrics behind
      the profiling gate).
      @raise Invalid_argument if [n < 0] or the pool was shut down. *)

  val shutdown : t -> unit
  (** Stops and joins the worker domains. Idempotent; the pool must
      not be used afterwards. *)
end
