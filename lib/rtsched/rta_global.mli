(** Global fixed-priority multicore response-time analysis
    (Guan et al., RTSS'09 — references 37-39 of the paper).

    Used for the GLOBAL-TMax baseline of Sec. 5.2.3, where {e all}
    tasks (RT and security) migrate freely. The busy period of a job
    can only extend while all [M] cores run higher-priority work, so at
    most [M-1] higher-priority tasks carry in (Lemma 2); the response
    time is the least fixed point of
    [x = floor(Omega(x)/M) + C] where [Omega] sums the non-carry-in
    interference of every higher-priority task plus the [M-1] largest
    carry-in increments. *)

type time = Task.time

type gtask = {
  g_name : string;
  g_wcet : time;
  g_period : time;
  g_deadline : time;  (** [<= period] *)
}
(** A task in the global system; the list position defines priority
    (head = highest). *)

val response_times :
  ?obs:Hydra_obs.t -> n_cores:int -> gtask list -> time option list
(** Response time of each task in the priority-ordered list (highest
    first), bounded by its deadline. A task whose fixed point exceeds
    its deadline gets [None]; tasks below an unschedulable task also
    get [None] because their carry-in bound needs every
    higher-priority response time. [obs] counts
    [rta.global.iterations] and the converged/diverged tallies. *)

val response_time_of_lowest :
  ?obs:Hydra_obs.t -> n_cores:int -> hp:(gtask * time) list -> wcet:time ->
  limit:time -> unit -> time option
(** [response_time_of_lowest ~n_cores ~hp ~wcet ~limit] analyzes one
    extra lowest-priority task of WCET [wcet] against higher-priority
    tasks with {e known} response times [(task, resp)], without
    re-analyzing them. Exposed for tests and cross-checks. *)

val all_schedulable : ?obs:Hydra_obs.t -> n_cores:int -> gtask list -> bool
(** Whether every task of the priority-ordered list meets its
    deadline under global scheduling. *)

val of_taskset :
  Task.taskset -> sec_period:(Task.sec_task -> time) -> gtask list
(** Flattens a taskset into the priority-ordered global task list: RT
    tasks (by priority) above security tasks (by priority); each
    security task gets the period [sec_period s] and an implicit
    deadline equal to that period. *)
