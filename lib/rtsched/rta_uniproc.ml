type time = Task.time

type hp_task = { hp_wcet : time; hp_period : time }

let demand_at ~hp ~wcet t =
  List.fold_left
    (fun acc h ->
      acc + Workload.request_bound ~wcet:h.hp_wcet ~period:h.hp_period t)
    wcet hp

let response_time ?obs ~hp ~wcet ~limit () =
  (* Least fixed point of the time-demand function, found by the usual
     iteration from x = C; each step jumps directly to the current
     demand, so the sequence is monotone and terminates at the fixed
     point or past [limit]. *)
  let iters = ref 0 in
  let rec iter x =
    if x > limit then None
    else begin
      incr iters;
      let d = demand_at ~hp ~wcet x in
      if d = x then Some x else iter d
    end
  in
  let r = if wcet > limit then None else iter wcet in
  Hydra_obs.add obs "rta.uniproc.iterations" !iters;
  (match r with
  | Some _ -> Hydra_obs.incr obs "rta.uniproc.converged"
  | None -> Hydra_obs.incr obs "rta.uniproc.diverged");
  r

let hp_of_rt (t : Task.rt_task) = { hp_wcet = t.rt_wcet; hp_period = t.rt_period }

let rt_response_time ?obs ~core (t : Task.rt_task) =
  let hp =
    List.filter_map
      (fun (o : Task.rt_task) ->
        if o.rt_id <> t.rt_id && o.rt_prio < t.rt_prio then Some (hp_of_rt o)
        else None)
      core
  in
  response_time ?obs ~hp ~wcet:t.rt_wcet ~limit:t.rt_deadline ()

let core_rt_schedulable ?obs core =
  List.for_all (fun t -> Option.is_some (rt_response_time ?obs ~core t)) core

let partitioned_rt_schedulable ?obs (ts : Task.taskset) ~assignment =
  let cores = Array.make ts.n_cores [] in
  Array.iteri
    (fun i t ->
      let m = assignment.(i) in
      cores.(m) <- t :: cores.(m))
    ts.rt;
  Array.for_all (core_rt_schedulable ?obs) cores
