type heuristic = Best_fit | First_fit | Worst_fit

let heuristic_name = function
  | Best_fit -> "best-fit"
  | First_fit -> "first-fit"
  | Worst_fit -> "worst-fit"

let pp_heuristic ppf h = Format.pp_print_string ppf (heuristic_name h)

let core_utilization tasks =
  List.fold_left (fun acc t -> acc +. Task.rt_utilization t) 0.0 tasks

(* A candidate core is feasible if the core's tasks, with the new task
   added, all pass exact TDA. *)
let feasible_on core task = Rta_uniproc.core_rt_schedulable (task :: core)

let choose_core heuristic cores task =
  let candidates =
    Array.to_list cores
    |> List.mapi (fun m tasks -> (m, tasks))
    |> List.filter (fun (_, tasks) -> feasible_on tasks task)
  in
  let better (ma, ua) (mb, ub) =
    match heuristic with
    | First_fit -> if mb < ma then (mb, ub) else (ma, ua)
    | Best_fit -> if ub > ua then (mb, ub) else (ma, ua)
    | Worst_fit -> if ub < ua then (mb, ub) else (ma, ua)
  in
  match candidates with
  | [] -> None
  | (m0, t0) :: rest ->
      let scored = List.map (fun (m, ts) -> (m, core_utilization ts)) rest in
      let init = (m0, core_utilization t0) in
      let m, _ = List.fold_left better init scored in
      Some m

let partition_rt ?(heuristic = Best_fit) (ts : Task.taskset) =
  let order =
    (* decreasing utilization, ties by id for determinism *)
    let a = Array.mapi (fun i t -> (i, t)) ts.rt in
    Array.sort
      (fun (_, a) (_, b) ->
        (* Float.compare, not polymorphic compare: utilizations are
           floats and the specialized comparator is total on NaN
           (rule D5, doc/STATIC_ANALYSIS.md). *)
        match Float.compare (Task.rt_utilization b) (Task.rt_utilization a)
        with
        | 0 -> Int.compare a.Task.rt_id b.Task.rt_id
        | c -> c)
      a;
    a
  in
  let cores = Array.make ts.n_cores [] in
  let assignment = Array.make (Array.length ts.rt) (-1) in
  let place (i, task) =
    match choose_core heuristic cores task with
    | None -> false
    | Some m ->
        cores.(m) <- task :: cores.(m);
        assignment.(i) <- m;
        true
  in
  if Array.for_all place order then Some assignment else None

let cores_of_assignment (ts : Task.taskset) assignment =
  let cores = Array.make ts.n_cores [] in
  Array.iteri
    (fun i t ->
      let m = assignment.(i) in
      cores.(m) <- t :: cores.(m))
    ts.rt;
  (* Keep a stable, priority-sorted order on each core. *)
  Array.map
    (fun tasks ->
      List.sort
        (fun (a : Task.rt_task) b -> compare a.rt_prio b.rt_prio)
        tasks)
    cores
