(** Uniprocessor fixed-priority response-time analysis (paper Eq. 1).

    Exact time-demand analysis for tasks statically bound to one core:
    the smallest [x] with [x = C + sum_i ceil(x/T_i)*C_i] over
    higher-priority tasks [i] on the same core. Used (a) to validate
    that the partitioned RT tasks are schedulable, and (b) as the
    per-core analysis inside the HYDRA (DATE'18) baseline, where
    security tasks are pinned to cores. *)

type time = Task.time

type hp_task = { hp_wcet : time; hp_period : time }
(** A higher-priority interferer: only its WCET and period matter. *)

val response_time :
  ?obs:Hydra_obs.t -> hp:hp_task list -> wcet:time -> limit:time -> unit ->
  time option
(** [response_time ~hp ~wcet ~limit] runs the fixed-point iteration
    starting at [x = wcet]; returns [Some r] for the least fixed point
    [r <= limit], or [None] if the iteration exceeds [limit] (the task
    is unschedulable with respect to that bound). [obs] counts
    [rta.uniproc.iterations] and the converged/diverged tallies
    (doc/OBSERVABILITY.md). *)

val rt_response_time :
  ?obs:Hydra_obs.t -> core:Task.rt_task list -> Task.rt_task -> time option
(** Response time of an RT task among the RT tasks of its core
    ([core] may or may not include the task itself; it is excluded by
    id). Bounded by the task's deadline. *)

val core_rt_schedulable : ?obs:Hydra_obs.t -> Task.rt_task list -> bool
(** Whether every RT task pinned to this core meets its deadline. *)

val partitioned_rt_schedulable :
  ?obs:Hydra_obs.t -> Task.taskset -> assignment:int array -> bool
(** Whether all RT tasks of the taskset meet their deadlines under the
    given core [assignment] ([assignment.(i)] is the core of
    [ts.rt.(i)]). *)

val demand_at : hp:hp_task list -> wcet:time -> time -> time
(** [demand_at ~hp ~wcet t] is the Eq. 1 left-hand side
    [C + sum ceil(t/T_i)*C_i] — exposed for property tests. *)
