type time = Task.time

let non_carry_in ~wcet ~period x =
  if x <= 0 then 0
  else
    (* single division: q = x / T, r = x mod T *)
    let q = x / period in
    let r = x - (q * period) in
    (q * wcet) + min r wcet

let carry_in ~wcet ~period ~resp x =
  if x <= 0 then 0
  else
    let xbar = wcet - 1 + period - resp in
    let body = non_carry_in ~wcet ~period (max (x - xbar) 0) in
    body + min x (wcet - 1)

let interference ~job_wcet ~window w = max 0 (min w (window - job_wcet + 1))

let rt_core_workload tasks x =
  List.fold_left
    (fun acc (t : Task.rt_task) ->
      acc + non_carry_in ~wcet:t.rt_wcet ~period:t.rt_period x)
    0 tasks

let rt_core_interference ~job_wcet tasks x =
  interference ~job_wcet ~window:x (rt_core_workload tasks x)

let rt_workloads cores x =
  Array.map (fun core -> rt_core_workload core x) cores

let request_bound ~wcet ~period x =
  if x <= 0 then 0 else (x + period - 1) / period * wcet
