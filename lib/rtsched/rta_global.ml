type time = Task.time

type gtask = {
  g_name : string;
  g_wcet : time;
  g_period : time;
  g_deadline : time;
}

(* Interference of one higher-priority task [t] (with known response
   time [resp]) on a window of length [x] for a job of WCET [job_wcet]:
   non-carry-in bound and the increment gained if [t] carries in. *)
let nc_and_delta ~job_wcet ~window (t, resp) =
  let nc =
    Workload.interference ~job_wcet ~window
      (Workload.non_carry_in ~wcet:t.g_wcet ~period:t.g_period window)
  in
  let ci =
    Workload.interference ~job_wcet ~window
      (Workload.carry_in ~wcet:t.g_wcet ~period:t.g_period ~resp window)
  in
  (nc, max 0 (ci - nc))

(* Sum of the [k] largest elements of [l]. *)
let top_k_sum k l =
  let sorted = List.sort (fun a b -> compare b a) l in
  let rec take n acc = function
    | [] -> acc
    | _ when n = 0 -> acc
    | x :: rest -> take (n - 1) (acc + x) rest
  in
  take k 0 sorted

let omega ~n_cores ~job_wcet ~window hp =
  let pairs = List.map (nc_and_delta ~job_wcet ~window) hp in
  let nc_total = List.fold_left (fun acc (nc, _) -> acc + nc) 0 pairs in
  let deltas = List.map snd pairs in
  nc_total + top_k_sum (n_cores - 1) deltas

let response_time_of_lowest ?obs ~n_cores ~hp ~wcet ~limit () =
  let iters = ref 0 in
  let rec iter x =
    if x > limit then None
    else begin
      incr iters;
      let om = omega ~n_cores ~job_wcet:wcet ~window:x hp in
      let x' = (om / n_cores) + wcet in
      if x' = x then Some x else iter (max x' (x + 1))
    end
  in
  let r = if wcet > limit then None else iter wcet in
  Hydra_obs.add obs "rta.global.iterations" !iters;
  (match r with
  | Some _ -> Hydra_obs.incr obs "rta.global.converged"
  | None -> Hydra_obs.incr obs "rta.global.diverged");
  r

let response_times ?obs ~n_cores tasks =
  (* Analyze in priority order, threading the (task, response) pairs of
     already-analyzed higher-priority tasks. *)
  let rec go hp_acc = function
    | [] -> []
    | t :: rest -> (
        match
          response_time_of_lowest ?obs ~n_cores ~hp:(List.rev hp_acc)
            ~wcet:t.g_wcet ~limit:t.g_deadline ()
        with
        | Some r -> Some r :: go ((t, r) :: hp_acc) rest
        | None -> None :: List.map (fun _ -> None) rest)
  in
  go [] tasks

let all_schedulable ?obs ~n_cores tasks =
  List.for_all Option.is_some (response_times ?obs ~n_cores tasks)

let of_taskset (ts : Task.taskset) ~sec_period =
  let rt =
    Task.sort_rt_by_priority ts.rt |> Array.to_list
    |> List.map (fun (t : Task.rt_task) ->
           { g_name = t.rt_name; g_wcet = t.rt_wcet; g_period = t.rt_period;
             g_deadline = t.rt_deadline })
  in
  let sec =
    Task.sort_sec_by_priority ts.sec |> Array.to_list
    |> List.map (fun (s : Task.sec_task) ->
           let p = sec_period s in
           { g_name = s.sec_name; g_wcet = s.sec_wcet; g_period = p;
             g_deadline = p })
  in
  rt @ sec
