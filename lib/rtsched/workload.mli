(** Workload and interference bounds (paper Sec. 4.2-4.3, Eqs. 2-5).

    A {e workload} [W_i(x)] is the maximum accumulated execution of a
    task inside any window of length [x]; the {e interference} a task
    (or a group of tasks pinned to one core) causes on the job under
    analysis is its workload clamped to [x - C_s + 1] (the [+1] makes
    the response-time fixed-point iteration start correctly from
    [x = C_s], see the discussion below Eq. 3). *)

type time = Task.time

val non_carry_in : wcet:time -> period:time -> time -> time
(** [non_carry_in ~wcet ~period x] is Eq. 2:
    [floor(x/T)*C + min(x mod T, C)] — the synchronous-release workload
    bound, used both for partitioned RT tasks (Lemma 1) and for
    non-carry-in security tasks. Returns [0] for [x <= 0]. *)

val carry_in : wcet:time -> period:time -> resp:time -> time -> time
(** [carry_in ~wcet ~period ~resp x] is Eq. 4: the workload bound for a
    carry-in task whose worst-case response time is [resp]:
    [W_nc(max(x - xbar, 0)) + min(x, C - 1)] with
    [xbar = C - 1 + T - R]. Returns [0] for [x <= 0]. *)

val interference : job_wcet:time -> window:time -> time -> time
(** [interference ~job_wcet ~window w] clamps a workload [w] to
    [window - job_wcet + 1] (Eqs. 3 and 5); the clamp never goes below
    zero. [job_wcet] is the WCET [C_s] of the job under analysis. *)

val rt_core_workload : Task.rt_task list -> time -> time
(** Total synchronous-release workload of the RT tasks partitioned on
    one core over a window of length [x] (the summand of Eq. 3). *)

val rt_core_interference :
  job_wcet:time -> Task.rt_task list -> time -> time
(** Eq. 3: interference of one core's RT partition on a security job of
    WCET [job_wcet] in a window of length [x]. *)

val rt_workloads : Task.rt_task list array -> time -> time array
(** [rt_workloads cores x] is {!rt_core_workload} of every core at
    window [x] — the raw (unclamped) per-core vector. It depends only
    on the frozen RT partition and [x], which is what makes it safe to
    memoize per window: the [job_wcet] clamp of Eq. 3 is applied per
    query on top (see [Hydra.Analysis]'s RT-workload cache,
    doc/PERFORMANCE.md). *)

val request_bound : wcet:time -> period:time -> time -> time
(** Classic request-bound function [ceil(x/T)*C] used by the
    uniprocessor time-demand analysis (Eq. 1). Returns [0] for
    [x <= 0]. *)
