type time = Engine.time

type kind =
  | Release
  | Segment of { core : int; stop : time }
  | Preempt of { core : int }
  | Migrate of { from_core : int; to_core : int }
  | Finish of { response : time }
  | Deadline_miss

type event = {
  e_time : time;
  e_task_id : int;
  e_task_name : string;
  e_job_seq : int;
  e_kind : kind;
}

type t = {
  n_cores : int;
  mutable rev_events : event list;
  mutable n_events : int;
}

let create ~n_cores =
  if n_cores < 1 then invalid_arg "Event_log.create: n_cores < 1";
  { n_cores; rev_events = []; n_events = 0 }

let n_cores t = t.n_cores
let length t = t.n_events

let push t time (job : Engine.job) kind =
  t.rev_events <-
    { e_time = time; e_task_id = job.Engine.j_task.Engine.st_id;
      e_task_name = job.Engine.j_task.Engine.st_name;
      e_job_seq = job.Engine.j_seq; e_kind = kind }
    :: t.rev_events;
  t.n_events <- t.n_events + 1

(* Migrations rank before segments so that, at the dispatch tick, the
   flow start (keyed on the job's previous segment) is emitted before
   the new segment consumes the open flow id. *)
let kind_rank = function
  | Release -> 0
  | Migrate _ -> 1
  | Segment _ -> 2
  | Preempt _ -> 3
  | Finish _ -> 4
  | Deadline_miss -> 5

(* Total order independent of recording order: the engine is
   sequential, but sorting here means [events] does not depend on the
   (deterministic yet incidental) per-tick hook firing order. *)
let compare_events a b =
  let c = Int.compare a.e_time b.e_time in
  if c <> 0 then c
  else
    let c = Int.compare (kind_rank a.e_kind) (kind_rank b.e_kind) in
    if c <> 0 then c
    else
      let c = Int.compare a.e_task_id b.e_task_id in
      if c <> 0 then c else Int.compare a.e_job_seq b.e_job_seq

let events t = List.sort compare_events (List.rev t.rev_events)

let pp_kind ppf = function
  | Release -> Format.pp_print_string ppf "release"
  | Segment { core; stop } -> Format.fprintf ppf "segment[core %d, stop %d]" core stop
  | Preempt { core } -> Format.fprintf ppf "preempt[core %d]" core
  | Migrate { from_core; to_core } ->
      Format.fprintf ppf "migrate[%d -> %d]" from_core to_core
  | Finish { response } -> Format.fprintf ppf "finish[response %d]" response
  | Deadline_miss -> Format.pp_print_string ppf "deadline-miss"

let pp_event ppf e =
  Format.fprintf ppf "t=%d %s#%d %a" e.e_time e.e_task_name e.e_job_seq pp_kind
    e.e_kind

let first_divergence xs ys =
  let rec go i xs ys =
    match (xs, ys) with
    | [], [] -> None
    | x :: xs, y :: ys ->
        if x = y then go (i + 1) xs ys else Some (i, Some x, Some y)
    | x :: _, [] -> Some (i, Some x, None)
    | [], y :: _ -> Some (i, None, Some y)
  in
  go 0 xs ys

let hooks ?(base = Engine.no_hooks) t =
  let on_release job = push t job.Engine.j_release job Release;
    match base.Engine.on_release with Some f -> f job | None -> ()
  in
  let on_execute job ~core ~start ~stop =
    push t start job (Segment { core; stop });
    match base.Engine.on_execute with
    | Some f -> f job ~core ~start ~stop
    | None -> ()
  in
  let on_finish job ~finish =
    push t finish job (Finish { response = finish - job.Engine.j_release });
    if finish > job.Engine.j_abs_deadline then push t finish job Deadline_miss;
    match base.Engine.on_finish with Some f -> f job ~finish | None -> ()
  in
  let on_preempt job ~core ~time =
    push t time job (Preempt { core });
    match base.Engine.on_preempt with
    | Some f -> f job ~core ~time
    | None -> ()
  in
  let on_migrate job ~from_core ~to_core ~time =
    push t time job (Migrate { from_core; to_core });
    match base.Engine.on_migrate with
    | Some f -> f job ~from_core ~to_core ~time
    | None -> ()
  in
  { Engine.on_release = Some on_release; on_execute = Some on_execute;
    on_finish = Some on_finish; on_preempt = Some on_preempt;
    on_migrate = Some on_migrate }

(* --- Chrome trace-event rendering ------------------------------------ *)

(* One simulator tick renders as one microsecond: Perfetto timestamps
   are in us, and integer ticks map 1:1 so slice boundaries stay
   exact. *)

let esc s =
  let b = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let chrome_events t ~pid =
  let evs = events t in
  let out = ref [] in
  let emit s = out := s :: !out in
  emit
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"simulated schedule\"}}"
       pid);
  emit
    (Printf.sprintf
       "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"sort_index\":%d}}"
       pid pid);
  for m = 0 to t.n_cores - 1 do
    emit
      (Printf.sprintf
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"core %d\"}}"
         pid m m);
    emit
      (Printf.sprintf
         "{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"sort_index\":%d}}"
         pid m m)
  done;
  (* Flow events tie a migrating job's last segment on the old core to
     its first segment on the new core. [pending] maps (task,seq) to
     the (core, stop) of the job's most recent segment; a migration
     flushes it as a flow start and marks the flow id to be bound to
     the job's next segment. *)
  let pending : (int * int, int * time) Hashtbl.t = Hashtbl.create 64 in
  let open_flow : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
  let next_flow = ref 0 in
  List.iter
    (fun e ->
      let key = (e.e_task_id, e.e_job_seq) in
      match e.e_kind with
      | Release ->
          emit
            (Printf.sprintf
               "{\"name\":\"release %s#%d\",\"ph\":\"i\",\"s\":\"p\",\"pid\":%d,\"tid\":0,\"ts\":%d}"
               (esc e.e_task_name) e.e_job_seq pid e.e_time)
      | Segment { core; stop } ->
          emit
            (Printf.sprintf
               "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%d,\"dur\":%d,\"args\":{\"job\":%d,\"task_id\":%d}}"
               (esc e.e_task_name) pid core e.e_time (stop - e.e_time)
               e.e_job_seq e.e_task_id);
          (match Hashtbl.find_opt open_flow key with
          | Some id ->
              Hashtbl.remove open_flow key;
              emit
                (Printf.sprintf
                   "{\"name\":\"migration\",\"ph\":\"f\",\"bp\":\"e\",\"id\":%d,\"pid\":%d,\"tid\":%d,\"ts\":%d}"
                   id pid core e.e_time)
          | None -> ());
          Hashtbl.replace pending key (core, stop)
      | Migrate { from_core; to_core = _ } -> (
          match Hashtbl.find_opt pending key with
          | Some (core, stop) when core = from_core ->
              let id = !next_flow in
              incr next_flow;
              Hashtbl.replace open_flow key id;
              emit
                (Printf.sprintf
                   "{\"name\":\"migration\",\"ph\":\"s\",\"id\":%d,\"pid\":%d,\"tid\":%d,\"ts\":%d}"
                   id pid from_core stop)
          | Some _ | None -> ())
      | Preempt { core } ->
          emit
            (Printf.sprintf
               "{\"name\":\"preempt %s#%d\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%d}"
               (esc e.e_task_name) e.e_job_seq pid core e.e_time)
      | Finish _ -> ()
      | Deadline_miss ->
          emit
            (Printf.sprintf
               "{\"name\":\"DEADLINE MISS %s#%d\",\"ph\":\"i\",\"s\":\"p\",\"pid\":%d,\"tid\":0,\"ts\":%d}"
               (esc e.e_task_name) e.e_job_seq pid e.e_time))
    evs;
  List.rev !out

let to_chrome t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b s)
    (chrome_events t ~pid:1);
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_chrome t);
      output_char oc '\n')
