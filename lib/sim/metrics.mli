(** Convenience queries over simulation results — the quantities the
    paper reports from its testbed runs (deadline misses, context
    switches, response times). *)

val stats_of_sim_id : Engine.stats -> sim_id:int -> Engine.task_stats
(** Per-task stats by simulator task id. @raise Not_found if absent. *)

val deadline_misses : Engine.stats -> sim_ids:int array -> int
(** Total deadline misses over the given tasks. *)

val finished_jobs : Engine.stats -> sim_ids:int array -> int
(** Total completed jobs over the given tasks. *)

val mean_response : Engine.stats -> sim_id:int -> float
(** Mean response time of one task's finished jobs; [nan] if none. *)

val max_response : Engine.stats -> sim_id:int -> int
(** Maximum observed response time of one task (0 if none finished). *)

val throughput : Engine.stats -> sim_id:int -> float
(** Finished jobs per tick of one task. *)

val core_utilization : Engine.stats -> n_cores:int -> float
(** Busy fraction across all cores. *)

val equal_stats : Engine.stats -> Engine.stats -> bool
(** Structural equality of two runs' results: per-task stats, all
    schedule-event counters (context switches, preemptions,
    migrations, busy/idle ticks, decision events — all in ticks or
    counts) and, when both runs collected traces, their segment
    lists. This is the "stats stay bit-identical" half of the
    fast-vs-naive equivalence contract (doc/SIMULATOR.md); the
    event-stream half is {!Event_log.first_divergence}. *)

val record : Hydra_obs.t option -> Engine.stats -> unit
(** Accumulates the schedule-event counters of one finished run into
    [obs] ([sim.context_switches], [sim.preemptions], [sim.migrations],
    [sim.busy_ticks], [sim.idle_ticks], [sim.decision_events],
    [sim.runs]); no-op on [None].
    {!Engine.run} already calls this when given [?obs] — use it for
    stats obtained without threading [obs] into the engine. *)
