type time = int

type segment = {
  seg_core : int;
  seg_task_id : int;
  seg_task_name : string;
  seg_job_seq : int;
  seg_start : time;
  seg_stop : time;
}

type t = { mutable segs : segment list }

let create () = { segs = [] }
let add t seg = t.segs <- seg :: t.segs

let segments t =
  List.sort
    (fun a b ->
      match compare a.seg_start b.seg_start with
      | 0 -> compare a.seg_core b.seg_core
      | c -> c)
    t.segs

let busy_time_of_task t ~task_id =
  List.fold_left
    (fun acc s ->
      if s.seg_task_id = task_id then acc + (s.seg_stop - s.seg_start) else acc)
    0 t.segs

let segments_of_core t ~core =
  segments t |> List.filter (fun s -> s.seg_core = core)

let utilization_of_core t ~core ~horizon =
  if horizon <= 0 then 0.0
  else
    let busy =
      List.fold_left
        (fun acc s ->
          if s.seg_core = core then acc + (s.seg_stop - s.seg_start) else acc)
        0 t.segs
    in
    float_of_int busy /. float_of_int horizon

let rec pairwise_disjoint = function
  | [] | [ _ ] -> true
  | a :: (b :: _ as rest) -> a.seg_stop <= b.seg_start && pairwise_disjoint rest

let no_overlap t =
  let by_core = Hashtbl.create 8 in
  let by_job = Hashtbl.create 64 in
  List.iter
    (fun s ->
      let push tbl k =
        Hashtbl.replace tbl k (s :: Option.value (Hashtbl.find_opt tbl k) ~default:[])
      in
      push by_core s.seg_core;
      push by_job (s.seg_task_id, s.seg_job_seq))
    t.segs;
  let sorted_ok segs =
    segs
    |> List.sort (fun a b -> compare a.seg_start b.seg_start)
    |> pairwise_disjoint
  in
  Hashtbl.fold (fun _ segs acc -> acc && sorted_ok segs) by_core true
  && Hashtbl.fold (fun _ segs acc -> acc && sorted_ok segs) by_job true

let to_csv t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "core,task_id,task_name,job,start,stop\n";
  List.iter
    (fun s ->
      Buffer.add_string buf
        (Printf.sprintf "%d,%d,%s,%d,%d,%d\n" s.seg_core s.seg_task_id
           s.seg_task_name s.seg_job_seq s.seg_start s.seg_stop))
    (segments t);
  Buffer.contents buf

let save_csv path t =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_csv t))

let pp_ascii ?(width = 100) ppf t ~n_cores ~horizon =
  let scale x = x * width / max 1 horizon in
  let glyph_of_task = Hashtbl.create 16 in
  let next = ref 0 in
  let glyphs = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789" in
  let glyph task_id =
    match Hashtbl.find_opt glyph_of_task task_id with
    | Some g -> g
    | None ->
        let g = glyphs.[!next mod String.length glyphs] in
        incr next;
        Hashtbl.add glyph_of_task task_id g;
        g
  in
  (* Render from the sorted view, not the raw insertion-order list:
     glyphs are assigned on first appearance, so sorting makes both the
     glyph legend and later-segment-wins overdraw chronological rather
     than dependent on insertion order. *)
  let sorted = segments t in
  for core = 0 to n_cores - 1 do
    let line = Bytes.make width '.' in
    List.iter
      (fun s ->
        if s.seg_core = core then
          let a = scale s.seg_start and b = max (scale s.seg_start + 1) (scale s.seg_stop) in
          for i = a to min (b - 1) (width - 1) do
            Bytes.set line i (glyph s.seg_task_id)
          done)
      sorted;
    Format.fprintf ppf "core%d |%s|@." core (Bytes.to_string line)
  done
