(** Schedule traces: the sequence of maximal execution segments
    produced by a simulation, for debugging, visualization and the
    trace-based tests (the simulator's schedule is cross-checked
    against the analytical response-time bounds). *)

type time = int

type segment = {
  seg_core : int;
  seg_task_id : int;
  seg_task_name : string;
  seg_job_seq : int;
  seg_start : time;
  seg_stop : time;  (** exclusive *)
}

type t

val create : unit -> t
val add : t -> segment -> unit

val segments : t -> segment list
(** In chronological order of [seg_start] (ties by core). *)

val busy_time_of_task : t -> task_id:int -> time
(** Total executed ticks of one task across the trace. *)

val segments_of_core : t -> core:int -> segment list
(** Chronological segments of one core. *)

val utilization_of_core : t -> core:int -> horizon:time -> float
(** Fraction of [horizon] the core spent executing; [0.0] when
    [horizon <= 0] (an empty window has no busy fraction). *)

val no_overlap : t -> bool
(** True when no two segments of the same core overlap and no two
    segments of the same {e job} overlap across cores — the basic
    sanity invariants of a valid single-threaded-job schedule. *)

val pp_ascii :
  ?width:int -> Format.formatter -> t -> n_cores:int -> horizon:time -> unit
(** Renders a compact per-core ASCII timeline ([width] columns). *)

val to_csv : t -> string
(** Renders the chronological segments as CSV
    ([core,task_id,task_name,job,start,stop]) with a header row — the
    interchange format for external Gantt/trace viewers. *)

val save_csv : string -> t -> unit
(** Writes {!to_csv} to a file. @raise Sys_error on I/O failure. *)
