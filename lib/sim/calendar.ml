(* Bucketed calendar queue over preallocated int arrays; see the .mli
   for the contract. Bucket lists are intrusive sorted singly-linked
   lists threaded through [next]; the (key, slot) sort order inside a
   bucket makes ties pop in ascending slot order. Recursive helpers
   live at top level so the [@lint.hot] paths construct no closures
   (hydra_lint rule D6). *)

type t = {
  mask : int;  (* n_buckets - 1; n_buckets is a power of two *)
  shift : int;  (* log2 of the bucket width — bucket math is shifts *)
  head : int array;  (* bucket -> first slot of its list, -1 if empty *)
  next : int array;  (* slot -> successor in its bucket list, -1 at end *)
  key : int array;  (* slot -> enqueued key; valid while member *)
  member : bool array;  (* slot -> currently enqueued? *)
  mutable size : int;
  mutable now : int;  (* all enqueued keys are >= now (monotone queue) *)
  mutable cached_min : int;  (* slot holding the minimum, -1 = unknown *)
}

let create ~slots ~width =
  if slots < 1 then invalid_arg "Calendar.create: slots < 1";
  let width = if width < 1 then 1 else width in
  (* Width rounds up to a power of two so the per-event bucket math is
     a shift and a mask, never a division (width is only a tuning
     knob: any value preserves the ordering contract). *)
  let rec log2 s = if 1 lsl s >= width then s else log2 (s + 1) in
  let shift = log2 0 in
  let rec pow2 v = if v >= slots then v else pow2 (v * 2) in
  let n_buckets = pow2 4 in
  { mask = n_buckets - 1; shift;
    head = Array.make n_buckets (-1);
    next = Array.make slots (-1);
    key = Array.make slots 0;
    member = Array.make slots false;
    size = 0; now = 0; cached_min = -1 }

let size q = q.size
let mem q i = q.member.(i)
let key q i = q.key.(i)

let bucket_of q k = (k lsr q.shift) land q.mask [@@lint.hot]

(* (key, slot) strict order — the bucket-list and tie-break order. *)
let precedes q i j = q.key.(i) < q.key.(j) || (q.key.(i) = q.key.(j) && i < j)
  [@@lint.hot]

let rec insert_sorted q b i prev cur =
  if cur < 0 || precedes q i cur then begin
    q.next.(i) <- cur;
    if prev < 0 then q.head.(b) <- i else q.next.(prev) <- i
  end
  else insert_sorted q b i cur q.next.(cur)
  [@@lint.hot]

let add q i ~key:k =
  if i < 0 || i >= Array.length q.next then
    invalid_arg "Calendar.add: slot out of range";
  if q.member.(i) then invalid_arg "Calendar.add: slot already enqueued";
  if k < q.now then invalid_arg "Calendar.add: key precedes last pop_min";
  q.key.(i) <- k;
  q.member.(i) <- true;
  insert_sorted q (bucket_of q k) i (-1) q.head.(bucket_of q k);
  q.size <- q.size + 1;
  if q.cached_min >= 0 && precedes q i q.cached_min then q.cached_min <- i
  [@@lint.hot]

(* Fallback when a whole bucket-year holds nothing: the minimum is the
   smallest bucket head (same-key entries share a bucket, so comparing
   heads preserves the tie order). O(n_buckets), rare. *)
let rec direct_min q b best =
  if b > q.mask then best
  else
    let h = q.head.(b) in
    let best = if h >= 0 && (best < 0 || precedes q h best) then h else best in
    direct_min q (b + 1) best
  [@@lint.hot]

(* Year scan from the bucket containing [now]: the first bucket whose
   head key falls inside its current-year window holds the minimum
   (earlier windows cannot contain keys >= now, later windows and
   later years only larger keys). *)
let rec year_scan q start j =
  if j > q.mask then direct_min q 0 (-1)
  else
    let b = (start + j) land q.mask in
    let top = (start + j + 1) lsl q.shift in
    let h = q.head.(b) in
    if h >= 0 && q.key.(h) < top then h else year_scan q start (j + 1)
  [@@lint.hot]

let find_min q = if q.size = 0 then -1 else year_scan q (q.now lsr q.shift) 0
  [@@lint.hot]

let peek_min q =
  if q.cached_min < 0 then q.cached_min <- find_min q;
  if q.cached_min < 0 then max_int else q.key.(q.cached_min)
  [@@lint.hot]

let pop_min q =
  if q.cached_min < 0 then q.cached_min <- find_min q;
  let i = q.cached_min in
  if i < 0 then invalid_arg "Calendar.pop_min: empty queue";
  (* The minimum is always the head of its bucket. *)
  let b = bucket_of q q.key.(i) in
  q.head.(b) <- q.next.(i);
  q.next.(i) <- -1;
  q.member.(i) <- false;
  q.size <- q.size - 1;
  q.now <- q.key.(i);
  q.cached_min <- -1;
  i
  [@@lint.hot]
