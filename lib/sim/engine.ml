type time = int

type sim_task = {
  st_id : int;
  st_name : string;
  st_wcet : time;
  st_period : time;
  st_deadline : time;
  st_prio : int;
  st_core : int option;
  st_offset : time;
}

type job = {
  j_task : sim_task;
  j_seq : int;
  j_release : time;
  j_abs_deadline : time;
  mutable j_remaining : time;
  mutable j_last_core : int;
  mutable j_started_at : time;
}

type hooks = {
  on_release : (job -> unit) option;
  on_execute : (job -> core:int -> start:time -> stop:time -> unit) option;
  on_finish : (job -> finish:time -> unit) option;
  on_preempt : (job -> core:int -> time:time -> unit) option;
  on_migrate : (job -> from_core:int -> to_core:int -> time:time -> unit) option;
}

let no_hooks =
  { on_release = None; on_execute = None; on_finish = None; on_preempt = None;
    on_migrate = None }

type overheads = {
  dispatch_cost : time;
  migration_cost : time;
}

let no_overheads = { dispatch_cost = 0; migration_cost = 0 }

type task_stats = {
  ts_task : sim_task;
  ts_released : int;
  ts_finished : int;
  ts_deadline_misses : int;
  ts_aborted : int;
  ts_max_response : time;
  ts_total_response : time;
}

type stats = {
  horizon : time;
  per_task : task_stats array;
  context_switches : int;
  preemptions : int;
  migrations : int;
  busy_ticks : int;
  idle_ticks : int;
  decision_events : int;
  trace : Trace.t option;
}

(* Mutable per-task accumulator mirrored into [task_stats] at the end. *)
type acc = {
  mutable released : int;
  mutable finished : int;
  mutable misses : int;
  mutable aborted : int;
  mutable max_resp : time;
  mutable total_resp : time;
  mutable next_release : time;
  mutable seq : int;
  mutable active : job option;  (** the single in-flight job, if any *)
}

let validate ~n_cores tasks =
  if tasks = [] then invalid_arg "Engine.run: empty task list";
  if n_cores < 1 then invalid_arg "Engine.run: n_cores < 1";
  let prios = Hashtbl.create 16 in
  List.iter
    (fun t ->
      if t.st_wcet < 1 then
        invalid_arg (Printf.sprintf "Engine.run: %s has wcet < 1" t.st_name);
      if t.st_period < t.st_wcet then
        invalid_arg (Printf.sprintf "Engine.run: %s has period < wcet" t.st_name);
      if t.st_offset < 0 then
        invalid_arg (Printf.sprintf "Engine.run: %s has negative offset" t.st_name);
      (match t.st_core with
      | Some m when m < 0 || m >= n_cores ->
          invalid_arg (Printf.sprintf "Engine.run: %s pinned out of range" t.st_name)
      | Some _ | None -> ());
      if Hashtbl.mem prios t.st_prio then
        invalid_arg
          (Printf.sprintf "Engine.run: duplicate priority %d (%s)" t.st_prio
             t.st_name);
      Hashtbl.add prios t.st_prio ())
    tasks

(* Argument checks shared by both engines; returns the task array. *)
let prepare ~overheads ~n_cores ~horizon tasks =
  if horizon < 1 then invalid_arg "Engine.run: horizon < 1";
  if overheads.dispatch_cost < 0 || overheads.migration_cost < 0 then
    invalid_arg "Engine.run: negative overheads";
  validate ~n_cores tasks;
  let tasks = Array.of_list tasks in
  let seen = Hashtbl.create (Array.length tasks) in
  Array.iter
    (fun t ->
      if Hashtbl.mem seen t.st_id then
        invalid_arg
          (Printf.sprintf "Engine.run: duplicate task id %d (%s)" t.st_id
             t.st_name);
      Hashtbl.add seen t.st_id ())
    tasks;
  tasks

let fresh_accs tasks =
  Array.map
    (fun t ->
      { released = 0; finished = 0; misses = 0; aborted = 0; max_resp = 0;
        total_resp = 0; next_release = t.st_offset; seq = 0; active = None })
    tasks

let mk_stats ~horizon ~tasks ~(accs : acc array) ~trace ~context_switches
    ~preemptions ~migrations ~busy_ticks ~idle_ticks ~decision_events =
  let per_task =
    Array.mapi
      (fun i a ->
        { ts_task = tasks.(i); ts_released = a.released;
          ts_finished = a.finished; ts_deadline_misses = a.misses;
          ts_aborted = a.aborted; ts_max_response = a.max_resp;
          ts_total_response = a.total_resp })
      accs
  in
  { horizon; per_task; context_switches; preemptions; migrations; busy_ticks;
    idle_ticks; decision_events; trace }

(* ------------------------------------------------------------------ *)
(* Naive stepper: the reference engine, kept verbatim as the oracle
   behind [~fast:false] / --naive-sim. Every event recomputes the
   ready order by sorting and every next-event scan walks all tasks;
   doc/SIMULATOR.md documents why the fast engine below is the
   default and how the two are differential-tested. *)

let run_naive_unobserved ?(hooks = no_hooks) ?(collect_trace = false)
    ?(overheads = no_overheads) ~n_cores ~horizon tasks =
  let tasks = prepare ~overheads ~n_cores ~horizon tasks in
  let n = Array.length tasks in
  let index_of_id = Hashtbl.create n in
  Array.iteri (fun i t -> Hashtbl.replace index_of_id t.st_id i) tasks;
  let accs = fresh_accs tasks in
  let trace = if collect_trace then Some (Trace.create ()) else None in
  let ready = ref [] in
  let running : job option array = Array.make n_cores None in
  let seg_start = Array.make n_cores 0 in
  let context_switches = ref 0 in
  let preemptions = ref 0 in
  let migrations = ref 0 in
  let busy_ticks = ref 0 in
  let idle_ticks = ref 0 in
  let decision_events = ref 0 in

  let emit_segment core job start stop =
    if stop > start then begin
      (match trace with
      | Some tr ->
          Trace.add tr
            { Trace.seg_core = core; seg_task_id = job.j_task.st_id;
              seg_task_name = job.j_task.st_name; seg_job_seq = job.j_seq;
              seg_start = start; seg_stop = stop }
      | None -> ());
      match hooks.on_execute with
      | Some f -> f job ~core ~start ~stop
      | None -> ()
    end
  in

  let release_jobs t =
    Array.iteri
      (fun i task ->
        let a = accs.(i) in
        while a.next_release <= t do
          (* Abort a still-unfinished previous job: the security-task
             model requires completion before the next invocation, so
             an overrun is a deadline miss and the stale job is
             dropped to avoid unbounded backlog. *)
          (match a.active with
          | Some old when old.j_remaining > 0 ->
              a.misses <- a.misses + 1;
              a.aborted <- a.aborted + 1;
              ready := List.filter (fun j -> j != old) !ready
          | Some _ | None -> ());
          let job =
            { j_task = task; j_seq = a.seq; j_release = a.next_release;
              j_abs_deadline = a.next_release + task.st_deadline;
              j_remaining = task.st_wcet; j_last_core = -1; j_started_at = -1 }
          in
          a.seq <- a.seq + 1;
          a.released <- a.released + 1;
          a.active <- Some job;
          ready := job :: !ready;
          a.next_release <- a.next_release + task.st_period;
          match hooks.on_release with Some f -> f job | None -> ()
        done)
      tasks
  in

  (* Priority-order greedy claim: pinned jobs claim their own core,
     migrating jobs any unclaimed core (preferring where they last
     ran). With unique priorities this realizes partitioned, semi-
     partitioned and global FP depending on the pinning pattern. *)
  let assign () =
    let sorted =
      List.sort (fun a b -> compare a.j_task.st_prio b.j_task.st_prio) !ready
    in
    let claimed = Array.make n_cores None in
    let try_claim m job = if claimed.(m) = None then (claimed.(m) <- Some job; true) else false in
    let place job =
      match job.j_task.st_core with
      | Some m -> ignore (try_claim m job)
      | None ->
          let preferred = job.j_last_core in
          let taken =
            preferred >= 0 && preferred < n_cores && try_claim preferred job
          in
          if not taken then begin
            let rec scan m =
              if m < n_cores then if try_claim m job then () else scan (m + 1)
            in
            scan 0
          end
    in
    List.iter place sorted;
    claimed
  in

  let switch_to t newrun =
    for m = 0 to n_cores - 1 do
      let old = running.(m) and next = newrun.(m) in
      let same =
        match (old, next) with
        | None, None -> true
        | Some a, Some b -> a == b
        | None, Some _ | Some _, None -> false
      in
      if not same then begin
        incr context_switches;
        (match old with
        | Some job ->
            emit_segment m job seg_start.(m) t;
            if job.j_remaining > 0 && List.memq job !ready then begin
              incr preemptions;
              match hooks.on_preempt with
              | Some f -> f job ~core:m ~time:t
              | None -> ()
            end
        | None -> ());
        (match next with
        | Some job ->
            (* Dispatch overheads inflate the incoming job's remaining
               execution — the cost is paid inside its own budget. *)
            job.j_remaining <- job.j_remaining + overheads.dispatch_cost;
            if job.j_last_core >= 0 && job.j_last_core <> m then begin
              incr migrations;
              job.j_remaining <- job.j_remaining + overheads.migration_cost;
              match hooks.on_migrate with
              | Some f -> f job ~from_core:job.j_last_core ~to_core:m ~time:t
              | None -> ()
            end;
            job.j_last_core <- m;
            if job.j_started_at < 0 then job.j_started_at <- t;
            seg_start.(m) <- t
        | None -> ());
        running.(m) <- next
      end
    done
  in

  let next_event_after t =
    let t' = ref horizon in
    Array.iter (fun a -> if a.next_release < !t' then t' := a.next_release) accs;
    Array.iter
      (function
        | Some job ->
            let fin = t + job.j_remaining in
            if fin < !t' then t' := fin
        | None -> ())
      running;
    !t'
  in

  let rec loop t =
    if t < horizon then begin
      incr decision_events;
      release_jobs t;
      let newrun = assign () in
      switch_to t newrun;
      let t' = next_event_after t in
      let dt = t' - t in
      for m = 0 to n_cores - 1 do
        match running.(m) with
        | Some job ->
            job.j_remaining <- job.j_remaining - dt;
            busy_ticks := !busy_ticks + dt
        | None -> idle_ticks := !idle_ticks + dt
      done;
      (* Completions at t'. *)
      for m = 0 to n_cores - 1 do
        match running.(m) with
        | Some job when job.j_remaining = 0 ->
            emit_segment m job seg_start.(m) t';
            let a = accs.(Hashtbl.find index_of_id job.j_task.st_id) in
            let resp = t' - job.j_release in
            a.finished <- a.finished + 1;
            a.total_resp <- a.total_resp + resp;
            if resp > a.max_resp then a.max_resp <- resp;
            if t' > job.j_abs_deadline then a.misses <- a.misses + 1;
            (match a.active with
            | Some j when j == job -> a.active <- None
            | Some _ | None -> ());
            ready := List.filter (fun j -> j != job) !ready;
            running.(m) <- None;
            incr context_switches;
            (match hooks.on_finish with
            | Some f -> f job ~finish:t'
            | None -> ())
        | Some _ | None -> ()
      done;
      loop t'
    end
  in
  loop 0;
  (* Close segments still open at the horizon. *)
  for m = 0 to n_cores - 1 do
    match running.(m) with
    | Some job -> emit_segment m job seg_start.(m) horizon
    | None -> ()
  done;
  mk_stats ~horizon ~tasks ~accs ~trace ~context_switches:!context_switches
    ~preemptions:!preemptions ~migrations:!migrations ~busy_ticks:!busy_ticks
    ~idle_ticks:!idle_ticks ~decision_events:!decision_events

(* ------------------------------------------------------------------ *)
(* Fast skip-ahead engine: same observable semantics as the naive
   stepper — bit-identical hook call sequences, event streams and
   stats (the differential tests in test/test_sim.ml enforce this) —
   but the per-event dispatch path is allocation-free:

   - future releases sit in a bucketed [Calendar] queue keyed by
     next-release time, so finding the earliest release is O(1)
     amortized instead of an O(n) scan, and same-time releases pop in
     task-index order (the naive iteration order);
   - the ready set is a bitset over priority ranks (priorities are
     globally unique), so the priority-order claim walks set bits
     instead of sorting a list, and exits early once every core is
     claimed;
   - per-core occupancy lives in flat arrays ([run_idx] task indices
     plus physical [job]s with a dummy standing in for "idle"), so
     the hot path never touches an option or a hashtable.

   The only per-event allocations left are one [job] record per
   released job (demanded by the hooks API) and trace segments when
   tracing is on — both on the non-annotated helpers; every
   [@lint.hot] binding below is gated allocation-free by hydra_lint
   rule D6. See doc/SIMULATOR.md.

   The compiler in use has no cross-function inliner (flambda off),
   so the hot path avoids abstraction that would become an indirect
   call or a division: the ready bitset uses 32-bit words indexed by
   shifts, find-first-set is a branch-free De Bruijn multiply, pinned
   cores and active jobs live in flat int/job arrays (a [dummy] job
   stands in for "none"), and advance + completion share one pass. *)

(* Count-trailing-zeros over a 32-bit word with at least one bit set:
   isolate the lowest bit, multiply by the De Bruijn constant, and use
   the top five bits as a table index. Branch-free and division-free. *)
let debruijn32 =
  [| 0; 1; 28; 2; 29; 14; 24; 3; 30; 22; 20; 15; 25; 17; 4; 8;
     31; 27; 13; 23; 21; 19; 16; 7; 26; 12; 18; 6; 11; 5; 10; 9 |]

let[@lint.hot] ctz32 b =
  debruijn32.((b land (-b) * 0x077CB531 land 0xFFFFFFFF) lsr 27)

let run_fast_unobserved ?(hooks = no_hooks) ?(collect_trace = false)
    ?(overheads = no_overheads) ~n_cores ~horizon tasks =
  let tasks = prepare ~overheads ~n_cores ~horizon tasks in
  let n = Array.length tasks in
  let accs = fresh_accs tasks in
  let trace = if collect_trace then Some (Trace.create ()) else None in

  (* Priority ranks: rank 0 = highest priority (smallest st_prio). *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare tasks.(a).st_prio tasks.(b).st_prio) order;
  let rank_of = Array.make n 0 in
  Array.iteri (fun r i -> rank_of.(i) <- r) order;

  (* Pinned core per task (-1 = migrating), flattened out of the
     [st_core] option so the claim walk reads one int. *)
  let pin = Array.make n (-1) in
  Array.iteri
    (fun i t -> match t.st_core with Some m -> pin.(i) <- m | None -> ())
    tasks;

  (* Ready set: bit r set iff the task at rank r has an active job.
     32-bit words so the index math is shifts and masks. *)
  let words = (n + 31) / 32 in
  let ready = Array.make words 0 in

  (* [dummy] stands in for "no job" in [active] and [run_job] so the
     hot path reads a [job] unconditionally and compares physically;
     [run_idx] carries the authoritative task index (-1 = idle). *)
  let dummy =
    { j_task = tasks.(0); j_seq = -1; j_release = 0; j_abs_deadline = 0;
      j_remaining = 0; j_last_core = -1; j_started_at = -1 }
  in
  (* The live job of each task, [dummy] when none — the flat-array
     twin of the naive engine's [acc.active] option (never read by
     [mk_stats], so the fast engine maintains only this mirror). *)
  let active = Array.make n dummy in
  let run_idx = Array.make n_cores (-1) in
  let run_job = Array.make n_cores dummy in
  let claim_idx = Array.make n_cores (-1) in
  let seg_start = Array.make n_cores 0 in
  let context_switches = ref 0 in
  let preemptions = ref 0 in
  let migrations = ref 0 in
  let busy_ticks = ref 0 in
  let idle_ticks = ref 0 in
  let decision_events = ref 0 in

  (* Claim/switch elision. On an event with no releases and no waiting
     job (every active job is running), the greedy walk provably
     reproduces the current assignment — pinned jobs reclaim their
     pin, migrating jobs their last (= current) core — so the switch
     phase is a no-op and both phases can be skipped without touching
     any observable. "No waiting job" is [ready_n = run_n]: [ready_n]
     counts tasks with an active job, [run_n] occupied cores (every
     running job is its task's active job after each switch, so
     ready_n > run_n iff some active job is not running). *)
  let released = ref false in
  let ready_n = ref 0 in
  let run_n = ref 0 in

  (* Segments are observable only through the trace or the on_execute
     hook; when neither is on, the hot path skips the emit calls. *)
  let observing =
    collect_trace
    || (match hooks.on_execute with Some _ -> true | None -> false)
  in

  (* Release calendar keyed by next-release time; bucket width near
     the mean inter-release gap 1 / sum(1/T_i) for O(1) operations. *)
  let cal =
    let rate =
      Array.fold_left
        (fun s t -> s +. (1.0 /. float_of_int t.st_period))
        0.0 tasks
    in
    Calendar.create ~slots:n ~width:(int_of_float (1.0 /. rate))
  in
  Array.iteri (fun i t -> Calendar.add cal i ~key:t.st_offset) tasks;

  (* Allocates the trace-segment record, by design: segments only
     exist when tracing is on. [@lint.cold] marks it a sanctioned
     allocation point so rule D8 does not charge it to the hot
     callers (doc/STATIC_ANALYSIS.md). *)
  let[@lint.cold] emit_segment core job start stop =
    if stop > start then begin
      (match trace with
      | Some tr ->
          Trace.add tr
            { Trace.seg_core = core; seg_task_id = job.j_task.st_id;
              seg_task_name = job.j_task.st_name; seg_job_seq = job.j_seq;
              seg_start = start; seg_stop = stop }
      | None -> ());
      match hooks.on_execute with
      | Some f -> f job ~core ~start ~stop
      | None -> ()
    end
  in

  (* Release of task [i] at its recorded next-release time; allocates
     the job record (inherent to the hooks API), hence not hot —
     [@lint.cold] sanctions the allocation for rule D8. *)
  let[@lint.cold] release_one i =
    let task = tasks.(i) in
    let a = accs.(i) in
    let old = active.(i) in
    if old != dummy && old.j_remaining > 0 then begin
      (* Abort of a still-unfinished job: its ready bit stays set, the
         new job takes it over below. *)
      a.misses <- a.misses + 1;
      a.aborted <- a.aborted + 1
    end;
    let job =
      { j_task = task; j_seq = a.seq; j_release = a.next_release;
        j_abs_deadline = a.next_release + task.st_deadline;
        j_remaining = task.st_wcet; j_last_core = -1; j_started_at = -1 }
    in
    a.seq <- a.seq + 1;
    a.released <- a.released + 1;
    active.(i) <- job;
    released := true;
    let r = rank_of.(i) in
    let w = r lsr 5 and bit = 1 lsl (r land 31) in
    if ready.(w) land bit = 0 then begin
      ready.(w) <- ready.(w) lor bit;
      incr ready_n
    end;
    a.next_release <- a.next_release + task.st_period;
    Calendar.add cal i ~key:a.next_release;
    match hooks.on_release with Some f -> f job | None -> ()
  in
  (* Pops and releases everything due at [t] (ties in task-index
     order, the naive iteration order); returns the key of the next
     pending release — the calendar is peeked once per event. *)
  let[@lint.hot] rec release_due t =
    let k = Calendar.peek_min cal in
    if k > t then k
    else begin
      release_one (Calendar.pop_min cal);
      release_due t
    end
  in

  (* Priority-order greedy claim over the ready bitset, same decisions
     as the naive [assign]; [free] counts unclaimed cores so the walk
     stops as soon as every core is taken. *)
  let[@lint.hot] rec first_free m =
    if claim_idx.(m) < 0 then m else first_free (m + 1)
  in
  let[@lint.hot] rec claim_bits w b free =
    if b = 0 then claim_word (w + 1) free
    else if free > 0 then begin
      let i = order.((w lsl 5) + ctz32 b) in
      let b = b land (b - 1) in
      let p = pin.(i) in
      if p >= 0 then
        if claim_idx.(p) < 0 then begin
          claim_idx.(p) <- i;
          claim_bits w b (free - 1)
        end
        else claim_bits w b free
      else begin
        (* Migrating: preferred (= last) core if unclaimed, else the
           lowest-index unclaimed core; [j_last_core < n_cores] always. *)
        let q = active.(i).j_last_core in
        if q >= 0 && claim_idx.(q) < 0 then claim_idx.(q) <- i
        else claim_idx.(first_free 0) <- i;
        claim_bits w b (free - 1)
      end
    end
  and claim_word w free = if w < words && free > 0 then claim_bits w ready.(w) free
  in

  let[@lint.hot] switch t =
    for m = 0 to n_cores - 1 do
      let oi = run_idx.(m) and ni = claim_idx.(m) in
      let oj = run_job.(m) in
      let same = if ni < 0 then oi < 0 else oi = ni && active.(ni) == oj in
      if not same then begin
        incr context_switches;
        if oi >= 0 then begin
          if observing then emit_segment m oj seg_start.(m) t;
          if oj.j_remaining > 0 && active.(oi) == oj then begin
            incr preemptions;
            match hooks.on_preempt with
            | Some f -> f oj ~core:m ~time:t
            | None -> ()
          end
        end;
        if ni >= 0 then begin
          let nj = active.(ni) in
          nj.j_remaining <- nj.j_remaining + overheads.dispatch_cost;
          if nj.j_last_core >= 0 && nj.j_last_core <> m then begin
            incr migrations;
            nj.j_remaining <- nj.j_remaining + overheads.migration_cost;
            (match hooks.on_migrate with
            | Some f -> f nj ~from_core:nj.j_last_core ~to_core:m ~time:t
            | None -> ())
          end;
          nj.j_last_core <- m;
          if nj.j_started_at < 0 then nj.j_started_at <- t;
          seg_start.(m) <- t;
          if oi < 0 then incr run_n;
          run_idx.(m) <- ni;
          run_job.(m) <- nj
        end
        else begin
          if oi >= 0 then decr run_n;
          run_idx.(m) <- -1;
          run_job.(m) <- dummy
        end
      end
    done
  in

  let[@lint.hot] rec completion_min t m best =
    if m = n_cores then best
    else
      let best =
        if run_idx.(m) >= 0 && t + run_job.(m).j_remaining < best then
          t + run_job.(m).j_remaining
        else best
      in
      completion_min t (m + 1) best
  in

  let[@lint.hot] complete_one m t' =
    let i = run_idx.(m) in
    let job = run_job.(m) in
    if observing then emit_segment m job seg_start.(m) t';
    let a = accs.(i) in
    let resp = t' - job.j_release in
    a.finished <- a.finished + 1;
    a.total_resp <- a.total_resp + resp;
    if resp > a.max_resp then a.max_resp <- resp;
    if t' > job.j_abs_deadline then a.misses <- a.misses + 1;
    if active.(i) == job then begin
      active.(i) <- dummy;
      let r = rank_of.(i) in
      ready.(r lsr 5) <- ready.(r lsr 5) land lnot (1 lsl (r land 31));
      decr ready_n
    end;
    run_idx.(m) <- -1;
    run_job.(m) <- dummy;
    decr run_n;
    incr context_switches;
    match hooks.on_finish with Some f -> f job ~finish:t' | None -> ()
  in
  (* One pass plays both the naive [advance] and [complete] phases:
     burn [t' - t] ticks on every core, then retire the jobs that hit
     zero — still in core order, so hook order is unchanged. *)
  let[@lint.hot] advance_complete t t' =
    let dt = t' - t in
    for m = 0 to n_cores - 1 do
      if run_idx.(m) >= 0 then begin
        let job = run_job.(m) in
        let rem = job.j_remaining - dt in
        job.j_remaining <- rem;
        busy_ticks := !busy_ticks + dt;
        if rem = 0 then complete_one m t'
      end
      else idle_ticks := !idle_ticks + dt
    done
  in

  let[@lint.hot] rec loop t =
    if t < horizon then begin
      incr decision_events;
      released := false;
      let rnext = release_due t in
      if !released || !ready_n > !run_n then begin
        for m = 0 to n_cores - 1 do claim_idx.(m) <- -1 done;
        claim_word 0 n_cores;
        switch t
      end;
      let t' = completion_min t 0 (if rnext < horizon then rnext else horizon) in
      advance_complete t t';
      loop t'
    end
  in
  loop 0;
  (* Close segments still open at the horizon. *)
  for m = 0 to n_cores - 1 do
    if run_idx.(m) >= 0 then emit_segment m run_job.(m) seg_start.(m) horizon
  done;
  mk_stats ~horizon ~tasks ~accs ~trace ~context_switches:!context_switches
    ~preemptions:!preemptions ~migrations:!migrations ~busy_ticks:!busy_ticks
    ~idle_ticks:!idle_ticks ~decision_events:!decision_events

let run ?obs ?(fast = true) ?hooks ?collect_trace ?overheads ~n_cores ~horizon
    tasks =
  let hooks =
    match obs with
    | None -> hooks
    | Some _ ->
        (* Sample every job response into the sim.response histogram,
           on top of whatever on_finish the caller installed. *)
        let base = Option.value hooks ~default:no_hooks in
        let on_finish job ~finish =
          Hydra_obs.sample obs "sim.response" (finish - job.j_release);
          match base.on_finish with Some f -> f job ~finish | None -> ()
        in
        Some { base with on_finish = Some on_finish }
  in
  let stats =
    Hydra_obs.span obs "sim.run" (fun () ->
        if fast then
          run_fast_unobserved ?hooks ?collect_trace ?overheads ~n_cores
            ~horizon tasks
        else
          run_naive_unobserved ?hooks ?collect_trace ?overheads ~n_cores
            ~horizon tasks)
  in
  Hydra_obs.incr obs "sim.runs";
  Hydra_obs.add obs "sim.context_switches" stats.context_switches;
  Hydra_obs.add obs "sim.preemptions" stats.preemptions;
  Hydra_obs.add obs "sim.migrations" stats.migrations;
  Hydra_obs.add obs "sim.busy_ticks" stats.busy_ticks;
  Hydra_obs.add obs "sim.idle_ticks" stats.idle_ticks;
  Hydra_obs.add obs "sim.decision_events" stats.decision_events;
  stats
