type time = int

type sim_task = {
  st_id : int;
  st_name : string;
  st_wcet : time;
  st_period : time;
  st_deadline : time;
  st_prio : int;
  st_core : int option;
  st_offset : time;
}

type job = {
  j_task : sim_task;
  j_seq : int;
  j_release : time;
  j_abs_deadline : time;
  mutable j_remaining : time;
  mutable j_last_core : int;
  mutable j_started_at : time;
}

type hooks = {
  on_release : (job -> unit) option;
  on_execute : (job -> core:int -> start:time -> stop:time -> unit) option;
  on_finish : (job -> finish:time -> unit) option;
  on_preempt : (job -> core:int -> time:time -> unit) option;
  on_migrate : (job -> from_core:int -> to_core:int -> time:time -> unit) option;
}

let no_hooks =
  { on_release = None; on_execute = None; on_finish = None; on_preempt = None;
    on_migrate = None }

type overheads = {
  dispatch_cost : time;
  migration_cost : time;
}

let no_overheads = { dispatch_cost = 0; migration_cost = 0 }

type task_stats = {
  ts_task : sim_task;
  ts_released : int;
  ts_finished : int;
  ts_deadline_misses : int;
  ts_aborted : int;
  ts_max_response : time;
  ts_total_response : time;
}

type stats = {
  horizon : time;
  per_task : task_stats array;
  context_switches : int;
  preemptions : int;
  migrations : int;
  busy_ticks : int;
  idle_ticks : int;
  trace : Trace.t option;
}

(* Mutable per-task accumulator mirrored into [task_stats] at the end. *)
type acc = {
  mutable released : int;
  mutable finished : int;
  mutable misses : int;
  mutable aborted : int;
  mutable max_resp : time;
  mutable total_resp : time;
  mutable next_release : time;
  mutable seq : int;
  mutable active : job option;  (** the single in-flight job, if any *)
}

let validate ~n_cores tasks =
  if tasks = [] then invalid_arg "Engine.run: empty task list";
  if n_cores < 1 then invalid_arg "Engine.run: n_cores < 1";
  let prios = Hashtbl.create 16 in
  List.iter
    (fun t ->
      if t.st_wcet < 1 then
        invalid_arg (Printf.sprintf "Engine.run: %s has wcet < 1" t.st_name);
      if t.st_period < t.st_wcet then
        invalid_arg (Printf.sprintf "Engine.run: %s has period < wcet" t.st_name);
      if t.st_offset < 0 then
        invalid_arg (Printf.sprintf "Engine.run: %s has negative offset" t.st_name);
      (match t.st_core with
      | Some m when m < 0 || m >= n_cores ->
          invalid_arg (Printf.sprintf "Engine.run: %s pinned out of range" t.st_name)
      | Some _ | None -> ());
      if Hashtbl.mem prios t.st_prio then
        invalid_arg
          (Printf.sprintf "Engine.run: duplicate priority %d (%s)" t.st_prio
             t.st_name);
      Hashtbl.add prios t.st_prio ())
    tasks

let run_unobserved ?(hooks = no_hooks) ?(collect_trace = false)
    ?(overheads = no_overheads) ~n_cores ~horizon tasks =
  if horizon < 1 then invalid_arg "Engine.run: horizon < 1";
  if overheads.dispatch_cost < 0 || overheads.migration_cost < 0 then
    invalid_arg "Engine.run: negative overheads";
  validate ~n_cores tasks;
  let tasks = Array.of_list tasks in
  let n = Array.length tasks in
  let index_of_id = Hashtbl.create n in
  Array.iteri
    (fun i t ->
      if Hashtbl.mem index_of_id t.st_id then
        invalid_arg
          (Printf.sprintf "Engine.run: duplicate task id %d (%s)" t.st_id
             t.st_name);
      Hashtbl.add index_of_id t.st_id i)
    tasks;
  let accs =
    Array.map
      (fun t ->
        { released = 0; finished = 0; misses = 0; aborted = 0; max_resp = 0;
          total_resp = 0; next_release = t.st_offset; seq = 0; active = None })
      tasks
  in
  let trace = if collect_trace then Some (Trace.create ()) else None in
  let ready = ref [] in
  let running : job option array = Array.make n_cores None in
  let seg_start = Array.make n_cores 0 in
  let context_switches = ref 0 in
  let preemptions = ref 0 in
  let migrations = ref 0 in
  let busy_ticks = ref 0 in
  let idle_ticks = ref 0 in

  let emit_segment core job start stop =
    if stop > start then begin
      (match trace with
      | Some tr ->
          Trace.add tr
            { Trace.seg_core = core; seg_task_id = job.j_task.st_id;
              seg_task_name = job.j_task.st_name; seg_job_seq = job.j_seq;
              seg_start = start; seg_stop = stop }
      | None -> ());
      match hooks.on_execute with
      | Some f -> f job ~core ~start ~stop
      | None -> ()
    end
  in

  let release_jobs t =
    Array.iteri
      (fun i task ->
        let a = accs.(i) in
        while a.next_release <= t do
          (* Abort a still-unfinished previous job: the security-task
             model requires completion before the next invocation, so
             an overrun is a deadline miss and the stale job is
             dropped to avoid unbounded backlog. *)
          (match a.active with
          | Some old when old.j_remaining > 0 ->
              a.misses <- a.misses + 1;
              a.aborted <- a.aborted + 1;
              ready := List.filter (fun j -> j != old) !ready
          | Some _ | None -> ());
          let job =
            { j_task = task; j_seq = a.seq; j_release = a.next_release;
              j_abs_deadline = a.next_release + task.st_deadline;
              j_remaining = task.st_wcet; j_last_core = -1; j_started_at = -1 }
          in
          a.seq <- a.seq + 1;
          a.released <- a.released + 1;
          a.active <- Some job;
          ready := job :: !ready;
          a.next_release <- a.next_release + task.st_period;
          match hooks.on_release with Some f -> f job | None -> ()
        done)
      tasks
  in

  (* Priority-order greedy claim: pinned jobs claim their own core,
     migrating jobs any unclaimed core (preferring where they last
     ran). With unique priorities this realizes partitioned, semi-
     partitioned and global FP depending on the pinning pattern. *)
  let assign () =
    let sorted =
      List.sort (fun a b -> compare a.j_task.st_prio b.j_task.st_prio) !ready
    in
    let claimed = Array.make n_cores None in
    let try_claim m job = if claimed.(m) = None then (claimed.(m) <- Some job; true) else false in
    let place job =
      match job.j_task.st_core with
      | Some m -> ignore (try_claim m job)
      | None ->
          let preferred = job.j_last_core in
          let taken =
            preferred >= 0 && preferred < n_cores && try_claim preferred job
          in
          if not taken then begin
            let rec scan m =
              if m < n_cores then if try_claim m job then () else scan (m + 1)
            in
            scan 0
          end
    in
    List.iter place sorted;
    claimed
  in

  let switch_to t newrun =
    for m = 0 to n_cores - 1 do
      let old = running.(m) and next = newrun.(m) in
      let same =
        match (old, next) with
        | None, None -> true
        | Some a, Some b -> a == b
        | None, Some _ | Some _, None -> false
      in
      if not same then begin
        incr context_switches;
        (match old with
        | Some job ->
            emit_segment m job seg_start.(m) t;
            if job.j_remaining > 0 && List.memq job !ready then begin
              incr preemptions;
              match hooks.on_preempt with
              | Some f -> f job ~core:m ~time:t
              | None -> ()
            end
        | None -> ());
        (match next with
        | Some job ->
            (* Dispatch overheads inflate the incoming job's remaining
               execution — the cost is paid inside its own budget. *)
            job.j_remaining <- job.j_remaining + overheads.dispatch_cost;
            if job.j_last_core >= 0 && job.j_last_core <> m then begin
              incr migrations;
              job.j_remaining <- job.j_remaining + overheads.migration_cost;
              match hooks.on_migrate with
              | Some f -> f job ~from_core:job.j_last_core ~to_core:m ~time:t
              | None -> ()
            end;
            job.j_last_core <- m;
            if job.j_started_at < 0 then job.j_started_at <- t;
            seg_start.(m) <- t
        | None -> ());
        running.(m) <- next
      end
    done
  in

  let next_event_after t =
    let t' = ref horizon in
    Array.iter (fun a -> if a.next_release < !t' then t' := a.next_release) accs;
    Array.iter
      (function
        | Some job ->
            let fin = t + job.j_remaining in
            if fin < !t' then t' := fin
        | None -> ())
      running;
    !t'
  in

  let rec loop t =
    if t < horizon then begin
      release_jobs t;
      let newrun = assign () in
      switch_to t newrun;
      let t' = next_event_after t in
      let dt = t' - t in
      for m = 0 to n_cores - 1 do
        match running.(m) with
        | Some job ->
            job.j_remaining <- job.j_remaining - dt;
            busy_ticks := !busy_ticks + dt
        | None -> idle_ticks := !idle_ticks + dt
      done;
      (* Completions at t'. *)
      for m = 0 to n_cores - 1 do
        match running.(m) with
        | Some job when job.j_remaining = 0 ->
            emit_segment m job seg_start.(m) t';
            let a = accs.(Hashtbl.find index_of_id job.j_task.st_id) in
            let resp = t' - job.j_release in
            a.finished <- a.finished + 1;
            a.total_resp <- a.total_resp + resp;
            if resp > a.max_resp then a.max_resp <- resp;
            if t' > job.j_abs_deadline then a.misses <- a.misses + 1;
            (match a.active with
            | Some j when j == job -> a.active <- None
            | Some _ | None -> ());
            ready := List.filter (fun j -> j != job) !ready;
            running.(m) <- None;
            incr context_switches;
            (match hooks.on_finish with
            | Some f -> f job ~finish:t'
            | None -> ())
        | Some _ | None -> ()
      done;
      loop t'
    end
  in
  loop 0;
  (* Close segments still open at the horizon. *)
  for m = 0 to n_cores - 1 do
    match running.(m) with
    | Some job -> emit_segment m job seg_start.(m) horizon
    | None -> ()
  done;
  let per_task =
    Array.mapi
      (fun i a ->
        { ts_task = tasks.(i); ts_released = a.released;
          ts_finished = a.finished; ts_deadline_misses = a.misses;
          ts_aborted = a.aborted; ts_max_response = a.max_resp;
          ts_total_response = a.total_resp })
      accs
  in
  { horizon; per_task; context_switches = !context_switches;
    preemptions = !preemptions; migrations = !migrations;
    busy_ticks = !busy_ticks; idle_ticks = !idle_ticks; trace }

let run ?obs ?hooks ?collect_trace ?overheads ~n_cores ~horizon tasks =
  let hooks =
    match obs with
    | None -> hooks
    | Some _ ->
        (* Sample every job response into the sim.response histogram,
           on top of whatever on_finish the caller installed. *)
        let base = Option.value hooks ~default:no_hooks in
        let on_finish job ~finish =
          Hydra_obs.sample obs "sim.response" (finish - job.j_release);
          match base.on_finish with Some f -> f job ~finish | None -> ()
        in
        Some { base with on_finish = Some on_finish }
  in
  let stats =
    Hydra_obs.span obs "sim.run" (fun () ->
        run_unobserved ?hooks ?collect_trace ?overheads ~n_cores ~horizon
          tasks)
  in
  Hydra_obs.incr obs "sim.runs";
  Hydra_obs.add obs "sim.context_switches" stats.context_switches;
  Hydra_obs.add obs "sim.preemptions" stats.preemptions;
  Hydra_obs.add obs "sim.migrations" stats.migrations;
  Hydra_obs.add obs "sim.busy_ticks" stats.busy_ticks;
  Hydra_obs.add obs "sim.idle_ticks" stats.idle_ticks;
  stats
