(** Bucketed calendar event queue over a fixed set of slots — the
    priority queue behind the skip-ahead engine's release calendar
    (doc/SIMULATOR.md).

    A calendar queue (Brown, CACM 1988) hashes each pending event into
    a bucket by [key / width mod n_buckets]; buckets are short sorted
    lists, so with a width near the mean inter-event gap both insert
    and extract-min are O(1) amortized. This implementation is
    specialised for the simulator:

    - Entries are {e slot indices} [0 .. slots-1] (task indices in the
      engine), each enqueued at most once. All storage is
      preallocated flat [int] arrays — bucket lists are intrusive
      singly-linked lists threaded through a [next] array — so
      {!add}, {!peek_min} and {!pop_min} never allocate
      (hydra_lint rule D6 gates this).
    - Keys are integer times (ticks). The queue is {e monotone}:
      every key added must be [>= ] the key of the last {!pop_min}
      (release times never move backwards). This is what lets the
      minimum search start its bucket-year scan at the last popped
      time instead of zero.
    - Ties pop in ascending slot order, matching the task-array
      iteration order of the naive engine — part of the bit-identity
      contract between the two engines.

    Behaviour is a pure function of the call sequence: no hashing of
    boxed values, no randomization, no wall clock. *)

type t

val create : slots:int -> width:int -> t
(** [create ~slots ~width] is an empty queue accepting slot indices
    [0 .. slots-1], with bucket width [width] ticks (clamped to
    [>= 1] and rounded up to a power of two so bucket math is shifts,
    not division; pick the mean inter-event gap for O(1) behaviour —
    any value is correct, only speed varies). The bucket count is the
    smallest power of two [>= max 4 slots].
    @raise Invalid_argument if [slots < 1]. *)

val size : t -> int
(** Number of enqueued slots, in O(1). *)

val mem : t -> int -> bool
(** [mem q i] is true when slot [i] is currently enqueued, in O(1). *)

val key : t -> int -> int
(** [key q i] is the key slot [i] was enqueued with (meaningless when
    [not (mem q i)]). O(1). *)

val add : t -> int -> key:int -> unit
(** [add q i ~key] enqueues slot [i] at [key] ticks. O(bucket
    length) — O(1) amortized when [width] matches the event density.
    @raise Invalid_argument if [i] is out of range or already
    enqueued, or if [key] precedes the last {!pop_min} (monotonicity
    violation). *)

val peek_min : t -> int
(** The minimum key over all enqueued slots, or [max_int] when the
    queue is empty. Amortized O(1) (the scan position is cached and
    revalidated only after a {!pop_min} or a smaller-key {!add}). *)

val pop_min : t -> int
(** Dequeues and returns the slot with the minimum key; among equal
    keys, the smallest slot index. Amortized O(1).
    @raise Invalid_argument on an empty queue. *)
