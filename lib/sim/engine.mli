(** Discrete-event multicore fixed-priority preemptive scheduler
    simulator.

    This replaces the paper's physical testbed (RPi3 + PREEMPT_RT
    Linux): it simulates [M] identical cores running a mix of {e
    pinned} and {e migrating} periodic tasks under preemptive
    fixed-priority scheduling with integer-tick time. At every
    scheduling point (release or completion) the ready jobs are
    scanned in priority order: a pinned job claims its own core if
    still unclaimed, a migrating job claims any unclaimed core
    (preferring the core it last ran on, to avoid gratuitous
    migrations). This realizes partitioned FP, the paper's
    semi-partitioned policy (migrating lowest-priority-band security
    tasks), and global FP, depending on how tasks are pinned.

    Context switches and migrations are counted exactly as observable
    schedule events, which is what the paper measures with [perf] in
    Fig. 5b.

    Two engines implement these semantics: the default {e fast}
    skip-ahead engine (bucketed calendar of releases, bitset ready
    set, allocation-free per-event path) and the {e naive} stepper it
    was derived from, kept as the oracle behind [~fast:false] (CLI:
    [--naive-sim]). The two are differential-tested to produce
    bit-identical hook call sequences, event streams and stats; see
    doc/SIMULATOR.md. All times are integer ticks (a tick has no
    fixed physical duration; experiments use 1 tick = 0.1 ms), and
    every run is a pure function of its arguments — no wall clock, no
    global RNG, byte-identical results across repeats and [--jobs]
    values. *)

type time = int

type sim_task = {
  st_id : int;  (** unique across all simulated tasks *)
  st_name : string;
  st_wcet : time;  (** execution demand of every job (= WCET) *)
  st_period : time;
  st_deadline : time;  (** relative deadline, [<= period] *)
  st_prio : int;  (** globally unique; smaller = higher *)
  st_core : int option;  (** [Some m]: pinned to core [m]; [None]: migrates *)
  st_offset : time;  (** release of the first job *)
}

type job = {
  j_task : sim_task;
  j_seq : int;  (** per-task job index, from 0 *)
  j_release : time;
  j_abs_deadline : time;
  mutable j_remaining : time;
  mutable j_last_core : int;  (** [-1] before first dispatch *)
  mutable j_started_at : time;  (** [-1] before first dispatch *)
}

type hooks = {
  on_release : (job -> unit) option;
  on_execute : (job -> core:int -> start:time -> stop:time -> unit) option;
      (** called for every maximal execution segment of a job *)
  on_finish : (job -> finish:time -> unit) option;
  on_preempt : (job -> core:int -> time:time -> unit) option;
      (** called when an unfinished running job is displaced from
          [core] while still ready — exactly the events counted in
          [preemptions] *)
  on_migrate : (job -> from_core:int -> to_core:int -> time:time -> unit) option;
      (** called when a job is dispatched on a core different from the
          one it last ran on — exactly the events counted in
          [migrations] *)
}
(** All hooks default to [None] ({!no_hooks}); unset hooks cost
    nothing on the scheduling paths. *)

val no_hooks : hooks

type overheads = {
  dispatch_cost : time;
      (** extra execution charged to a job each time it is (re)placed
          on a core whose previous occupant was different — the
          context-switch cost the paper assumes negligible *)
  migration_cost : time;
      (** additional cost when the dispatch happens on a different core
          than the job last ran on (cache/affinity penalty) *)
}
(** Non-zero overheads let experiments probe the paper's "migration and
    context switch overhead is negligible compared to WCET" assumption
    (Sec. 3): costs inflate the dispatched job's remaining execution,
    so thrashing manifests as longer responses and deadline misses. *)

val no_overheads : overheads

type task_stats = {
  ts_task : sim_task;
  ts_released : int;
  ts_finished : int;
  ts_deadline_misses : int;
      (** jobs that finished late or were still unfinished when the
          next job of the task arrived (such jobs are aborted) *)
  ts_aborted : int;
  ts_max_response : time;  (** over finished jobs; 0 if none finished *)
  ts_total_response : time;  (** summed over finished jobs *)
}

type stats = {
  horizon : time;
  per_task : task_stats array;  (** indexed like the input task list *)
  context_switches : int;
      (** occupant changes of a core, idle transitions included — the
          event [perf] counts as [cs] *)
  preemptions : int;  (** displacements of an unfinished running job *)
  migrations : int;
      (** job dispatches on a core different from the job's previous one *)
  busy_ticks : int;  (** summed over cores *)
  idle_ticks : int;  (** summed over cores *)
  decision_events : int;
      (** scheduling decision points visited (releases, completions,
          and time 0) — identical between the fast and naive engines
          by construction, and the unit in which benchmark throughput
          is reported (BENCH_sim.json, doc/SIMULATOR.md) *)
  trace : Trace.t option;
}

val run :
  ?obs:Hydra_obs.t -> ?fast:bool -> ?hooks:hooks -> ?collect_trace:bool ->
  ?overheads:overheads -> n_cores:int -> horizon:time -> sim_task list ->
  stats
(** Simulates the task list over [\[0, horizon)] (ticks). [overheads]
    defaults to {!no_overheads} (the paper's assumption).

    [fast] (default [true]) selects the skip-ahead engine; [false]
    runs the naive stepper oracle instead ([--naive-sim] on the CLI).
    Both produce bit-identical results — same hook call sequence,
    same stats — so the choice only affects wall-clock speed; the
    differential tests and the [bench-sim] CI gate hold the two
    engines to this contract (doc/SIMULATOR.md).

    [obs] wraps the run in a [sim.run] span and accumulates the
    schedule-event counters ([sim.context_switches],
    [sim.preemptions], [sim.migrations], [sim.busy_ticks],
    [sim.idle_ticks], [sim.decision_events], [sim.runs]) — see
    doc/OBSERVABILITY.md.
    @raise Invalid_argument on empty task list, non-positive horizon
    or WCET, pinned core out of range, duplicate ids/priorities, or
    negative overheads. *)
