let stats_of_sim_id (stats : Engine.stats) ~sim_id =
  let found = ref None in
  Array.iter
    (fun (ts : Engine.task_stats) ->
      if ts.ts_task.Engine.st_id = sim_id then found := Some ts)
    stats.per_task;
  match !found with Some ts -> ts | None -> raise Not_found

let sum_over stats sim_ids field =
  Array.fold_left
    (fun acc sim_id -> acc + field (stats_of_sim_id stats ~sim_id))
    0 sim_ids

let deadline_misses stats ~sim_ids =
  sum_over stats sim_ids (fun ts -> ts.Engine.ts_deadline_misses)

let finished_jobs stats ~sim_ids =
  sum_over stats sim_ids (fun ts -> ts.Engine.ts_finished)

let mean_response stats ~sim_id =
  let ts = stats_of_sim_id stats ~sim_id in
  if ts.Engine.ts_finished = 0 then Float.nan
  else
    float_of_int ts.Engine.ts_total_response
    /. float_of_int ts.Engine.ts_finished

let max_response stats ~sim_id =
  (stats_of_sim_id stats ~sim_id).Engine.ts_max_response

let throughput stats ~sim_id =
  let ts = stats_of_sim_id stats ~sim_id in
  float_of_int ts.Engine.ts_finished /. float_of_int stats.Engine.horizon

let core_utilization (stats : Engine.stats) ~n_cores =
  float_of_int stats.busy_ticks
  /. float_of_int (n_cores * stats.Engine.horizon)

let equal_stats (a : Engine.stats) (b : Engine.stats) =
  let trace_eq =
    match (a.trace, b.trace) with
    | None, None -> true
    | Some x, Some y -> Trace.segments x = Trace.segments y
    | Some _, None | None, Some _ -> false
  in
  a.horizon = b.horizon
  && a.per_task = b.per_task
  && a.context_switches = b.context_switches
  && a.preemptions = b.preemptions
  && a.migrations = b.migrations
  && a.busy_ticks = b.busy_ticks
  && a.idle_ticks = b.idle_ticks
  && a.decision_events = b.decision_events
  && trace_eq

let record obs (stats : Engine.stats) =
  Hydra_obs.incr obs "sim.runs";
  Hydra_obs.add obs "sim.context_switches" stats.context_switches;
  Hydra_obs.add obs "sim.preemptions" stats.preemptions;
  Hydra_obs.add obs "sim.migrations" stats.migrations;
  Hydra_obs.add obs "sim.busy_ticks" stats.busy_ticks;
  Hydra_obs.add obs "sim.idle_ticks" stats.idle_ticks;
  Hydra_obs.add obs "sim.decision_events" stats.decision_events
