(** Per-job schedule event log and Chrome-trace exporter.

    Records every observable schedule event of one {!Engine.run} —
    releases, maximal execution segments, preemptions, migrations,
    finishes, deadline misses — through the engine's {!Engine.hooks},
    and renders the schedule as Chrome trace-event JSON: one timeline
    row per simulated core, execution slices named by task, flow
    arrows connecting the segments around each migration, and instant
    markers for releases / preemptions / deadline misses. This is the
    simulated counterpart of the paper's perf/ftrace captures on the
    PREEMPT_RT testbed (Sec. 5): load the file in
    {{:https://ui.perfetto.dev}Perfetto} to read the schedule the way
    Fig. 5 was measured. One simulator tick renders as one
    microsecond, so integer tick boundaries stay exact.

    The log is single-writer (the engine is sequential); determinism
    comes from sorting events by (time, kind, task id, job seq) before
    export, so the rendered trace is a pure function of the simulated
    schedule. Format details in doc/OBSERVABILITY.md. *)

type time = Engine.time

type kind =
  | Release
  | Segment of { core : int; stop : time }
      (** maximal execution segment starting at the event time *)
  | Preempt of { core : int }
  | Migrate of { from_core : int; to_core : int }
  | Finish of { response : time }
  | Deadline_miss  (** emitted alongside a late [Finish] *)

type event = {
  e_time : time;
  e_task_id : int;
  e_task_name : string;
  e_job_seq : int;
  e_kind : kind;
}

type t

val create : n_cores:int -> t
(** An empty log for a simulation on [n_cores] cores (determines the
    timeline rows of the export).
    @raise Invalid_argument if [n_cores < 1]. *)

val hooks : ?base:Engine.hooks -> t -> Engine.hooks
(** Hooks that append to the log, chaining to [base] (default
    {!Engine.no_hooks}) after recording — pass the result to
    {!Engine.run}. *)

val n_cores : t -> int

val length : t -> int
(** Number of recorded events. *)

val events : t -> event list
(** All events sorted by (time, kind rank, task id, job seq) — a total
    order independent of hook firing order. *)

val pp_event : Format.formatter -> event -> unit
(** One-line rendering ["t=12 scan#3 segment[core 1, stop 15]"] (times
    in ticks) — for test failures and the differential harness. *)

val first_divergence :
  event list -> event list -> (int * event option * event option) option
(** [first_divergence xs ys] is [None] when the two streams are equal,
    otherwise [Some (i, x, y)]: the first position where they differ,
    with the event each side has there ([None] = that stream ended).
    The workhorse of the fast-vs-naive differential tests
    (doc/SIMULATOR.md): compare {!events} of two runs and report the
    exact first mismatching schedule event. *)

val chrome_events : t -> pid:int -> string list
(** The schedule as pre-rendered Chrome trace-event JSON objects (one
    per string) under process id [pid]: process/thread metadata naming
    the process ["simulated schedule"] and one thread ["core m"] per
    core, ["X"] slices for segments, ["s"]/["f"] flow pairs for
    migrations, instant events for releases, preemptions and deadline
    misses. Feed to {!Hydra_obs.chrome_trace} via [~extra] to share a
    file with the analysis spans (use a [pid] distinct from the spans'
    pid 0), or wrap with {!to_chrome} for a standalone file. *)

val to_chrome : t -> string
(** A standalone Chrome trace JSON document
    ([{"traceEvents":[...]}], pid 1). *)

val write_chrome : t -> path:string -> unit
(** {!to_chrome} plus a trailing newline to a file.
    @raise Sys_error on I/O failure. *)
