type entry = { a_rule : string; a_path : string; a_line : int option }
type t = entry list

let empty = []

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let parse_line line =
  let line = String.trim (strip_comment line) in
  if line = "" then Ok None
  else
    match
      String.split_on_char ' ' line
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun s -> s <> "")
    with
    | [ rule; target ] ->
        let entry =
          match String.rindex_opt target ':' with
          | Some i -> (
              let tail =
                String.sub target (i + 1) (String.length target - i - 1)
              in
              match int_of_string_opt tail with
              | Some l ->
                  { a_rule = rule;
                    a_path = String.sub target 0 i;
                    a_line = Some l }
              | None -> { a_rule = rule; a_path = target; a_line = None })
          | None -> { a_rule = rule; a_path = target; a_line = None }
        in
        Ok (Some entry)
    | _ -> Error (Printf.sprintf "expected \"RULE PATH[:LINE]\", got %S" line)

let load path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error m -> Error m
  | contents ->
      let lines = String.split_on_char '\n' contents in
      let rec go n acc = function
        | [] -> Ok (List.rev acc)
        | line :: rest -> (
            match parse_line line with
            | Ok None -> go (n + 1) acc rest
            | Ok (Some e) -> go (n + 1) (e :: acc) rest
            | Error m -> Error (Printf.sprintf "%s:%d: %s" path n m))
      in
      go 1 [] lines

let path_matches ~entry_path ~file =
  entry_path = file
  || String.ends_with ~suffix:("/" ^ entry_path) file

let permits t (f : Finding.t) =
  List.exists
    (fun e ->
      (e.a_rule = "*" || e.a_rule = f.rule)
      && path_matches ~entry_path:e.a_path ~file:f.file
      && (match e.a_line with None -> true | Some l -> l = f.line))
    t
