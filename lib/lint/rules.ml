type meta = {
  id : string;
  title : string;
  rationale : string;
}

let all =
  [ { id = "D1";
      title = "wall clock / ambient entropy";
      rationale =
        "Unix.gettimeofday, Sys.time, Random.self_init and the global-state \
         Random.* functions read state outside the task-set seed, so results \
         stop being reproducible; route timing through Hydra_obs (lib/obs) \
         and randomness through Taskgen.Rng. Flagged everywhere except \
         lib/obs." };
    { id = "D2";
      title = "stdout writes in library code";
      rationale =
        "print_*, Printf.printf, Format.printf and Format.std_formatter \
         inside lib/ bypass the determinism contract: results must flow \
         through a formatter argument or a returned value so stdout stays \
         byte-identical across --jobs (doc/PARALLELISM.md). Under \
         lib/server the rule also covers stderr (prerr_*, *.eprintf, \
         Format.err_formatter): a long-running daemon must log through the \
         rate-limited Hydra_obs.Log so operator output stays throttled and \
         structured (doc/OBSERVABILITY.md)." };
    { id = "D3";
      title = "hash-order-sensitive Hashtbl.fold/iter";
      rationale =
        "Hashtbl.fold and Hashtbl.iter visit buckets in an unspecified \
         order; building a list or string from them leaks that order into \
         results. Sort adjacently (same expression chain), or mark a \
         genuinely commutative fold with [@lint.allow \"D3\"]." };
    { id = "D4";
      title = "module-level mutable state in lib/";
      rationale =
        "A toplevel ref/Hashtbl/Buffer/Queue/Stack/Array/Bytes is shared by \
         every domain running under Parallel.Pool and turns library calls \
         into data races; use Atomic, Domain.DLS, or pass state explicitly." };
    { id = "D5";
      title = "polymorphic compare/= on float operands";
      rationale =
        "Polymorphic compare and (=) on floats are order-fragile around NaN \
         and allocate through the generic runtime path; use Float.compare / \
         Float.equal at float-typed analysis call sites." };
    { id = "D6";
      title = "heap allocation in [@lint.hot] code";
      rationale =
        "A binding marked [@lint.hot] (the simulator's per-event dispatch \
         path — lib/sim/engine.ml, lib/sim/calendar.ml) promises to run \
         allocation-free: closures, tuples, records, boxed constructors, \
         polymorphic variants with arguments, array literals, lazy blocks \
         and ref cells in its body break the promise and become GC \
         pressure multiplied by the event count (doc/SIMULATOR.md); hoist \
         the allocation into setup code or drop the annotation." };
    { id = "D7";
      title = "pool-closure race (interprocedural)";
      rationale =
        "A closure passed to Parallel.Pool.map/map_array/map_list runs on \
         worker domains; anything it transitively calls that touches \
         module-level mutable state (ref/Hashtbl/Buffer/...) is a data race \
         and breaks the jobs-independence contract (doc/PARALLELISM.md). \
         Atomic, Mutex, Domain.DLS and the lib/obs instrumentation sink are \
         sanctioned; deliberate state is sanctioned cross-module by \
         [@lint.allow \"D7\"] on the state binding itself." };
    { id = "D8";
      title = "transitive hot-path allocation (interprocedural)";
      rationale =
        "D6 extended over the full callee cone of every [@lint.hot] \
         binding: a callee that heap-allocates — however many calls away — \
         breaks the allocation-free promise just as surely as an allocation \
         in the body. Callees marked [@lint.cold] are sanctioned \
         allocation points; callees the parse-only resolver cannot see \
         (externals, calls through parameters) are reported as \
         \"cannot prove\" notes rather than silently passing." } ]

let find id = List.find_opt (fun m -> m.id = id) all

let pp_catalog ppf () =
  List.iter
    (fun m ->
      Format.fprintf ppf "%s  %s@.    %a@." m.id m.title
        Format.pp_print_text m.rationale)
    all
