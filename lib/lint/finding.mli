(** One lint finding: a rule violation at a source position. *)

type t = {
  rule : string;  (** stable rule id, e.g. ["D3"] (doc/STATIC_ANALYSIS.md) *)
  file : string;  (** path as reported, normally repo-relative *)
  line : int;  (** 1-based *)
  col : int;  (** 0-based, as in compiler diagnostics *)
  off : int;  (** byte offset of [line:col] in the file, for suppression *)
  msg : string;
}

val make : rule:string -> file:string -> loc:Location.t -> msg:string -> t

val make_pos :
  rule:string ->
  file:string ->
  line:int ->
  col:int ->
  off:int ->
  msg:string ->
  t
(** Same, from an already-extracted position (phase-2 rules work from
    {!Summary.t} data, not live [Location.t]s). *)

(** Total order: file, then line, col, rule — the report order. *)
val order : t -> t -> int

(** [file:line:col [rule] message] *)
val pp : Format.formatter -> t -> unit

(** One JSON object (no trailing newline). *)
val to_json : t -> string

(** Escape a string for embedding in a JSON string literal (shared by
    the JSON and SARIF reporters). *)
val json_escape : string -> string
