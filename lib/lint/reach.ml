(* Phase 2 rules over the linked call graph (doc/STATIC_ANALYSIS.md):

   D7 "pool-closure race detector" — nothing transitively reachable
   from a closure passed to Parallel.Pool.map/map_array/map_list may
   touch unsanctioned module-level mutable state. Atomic / Mutex /
   Domain.DLS are the sanctioned primitives (never recorded as mutable
   state by Summary), lib/obs is the sanctioned instrumentation sink
   (its striped-atomic internals are not traversed), and an inline
   [@lint.allow "D7"] (or "D4") on the state binding — or anywhere in
   the state's file — sanctions every path that reaches it, which is
   what makes suppression cross-module.

   D8 "transitive hot-path allocation" — D6 extended over the full
   callee cone of every [@lint.hot] binding. A callee marked
   [@lint.cold] (or carrying [@lint.allow "D8"]) is a sanctioned
   allocation point and is not descended into.

   Both rules refuse to guess: a callee the resolver cannot find and
   the builtin tables do not know — or a call through a parameter /
   locally-bound function — is reported as a "cannot prove" note
   (never a finding, never a silent pass). Findings land at the root
   site (the hot binding / the pool call), with the offending call
   path spelled out, because that is where the contract was
   promised. *)

let strip_stdlib name =
  match String.index_opt name '.' with
  | Some 6 when String.starts_with ~prefix:"Stdlib." name ->
      String.sub name 7 (String.length name - 7)
  | _ -> name

(* Calls that never heap-allocate (D8) and never touch repo state
   (D7). Error raisers (invalid_arg, failwith, raise) are listed as
   safe: they allocate only on the failure path, which a hot binding
   validates before it gets hot (same stance as rule D6). *)
let safe_calls =
  [ "+"; "-"; "*"; "/"; "mod"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
    "~-"; "~+"; "not"; "&&"; "||"; "="; "<>"; "<"; "<="; ">"; ">="; "==";
    "!="; "compare"; "min"; "max"; "abs"; "succ"; "pred"; "incr"; "decr";
    "!"; ":="; "<-"; "ignore"; "fst"; "snd"; "raise"; "raise_notrace";
    "failwith"; "invalid_arg"; "assert"; "@@"; "|>"; "+."; "-."; "*."; "/.";
    "**"; "float_of_int"; "int_of_float"; "truncate"; "char_of_int";
    "int_of_char"; "lnot"; "exp"; "log"; "log10"; "log2"; "sqrt"; "floor";
    "ceil"; "sin"; "cos"; "tan"; "asin"; "acos"; "atan"; "atan2"; "sinh";
    "cosh"; "tanh"; "mod_float"; "ldexp"; "copysign"; "classify_float";
    "round"; "expm1"; "log1p"; "hypot";
    "Array.get"; "Array.set"; "Array.length"; "Array.unsafe_get";
    "Array.unsafe_set"; "Array.fill"; "Array.blit"; "Array.iter";
    "Array.iteri"; "Array.fold_left"; "Array.sort"; "Array.exists";
    "Array.for_all";
    "String.get"; "String.length"; "String.unsafe_get"; "String.compare";
    "String.equal";
    "Bytes.get"; "Bytes.set"; "Bytes.length"; "Bytes.unsafe_get";
    "Bytes.unsafe_set"; "Bytes.fill"; "Bytes.blit";
    "Char.code"; "Char.chr";
    "Int.compare"; "Int.equal"; "Int.min"; "Int.max"; "Int.abs";
    "Float.compare"; "Float.equal"; "Float.min"; "Float.max";
    "Float.of_int"; "Float.to_int"; "Float.abs"; "Float.is_nan";
    "Bool.not";
    "Hashtbl.find"; "Hashtbl.find_opt"; "Hashtbl.mem"; "Hashtbl.length";
    "List.length"; "List.iter"; "List.fold_left"; "List.exists";
    "List.for_all"; "List.mem"; "List.hd"; "List.tl";
    "Atomic.get"; "Atomic.set"; "Atomic.exchange"; "Atomic.incr";
    "Atomic.decr"; "Atomic.fetch_and_add"; "Atomic.compare_and_set";
    "Mutex.lock"; "Mutex.unlock";
    "Lazy.force"; "Fun.id"; "Option.is_some"; "Option.is_none";
    "Option.get"; "Sys.opaque_identity"; "Domain.self" ]

(* Calls that definitely heap-allocate (D8 violations on a hot cone). *)
let alloc_calls =
  [ "ref"; "@"; "^";
    "Array.make"; "Array.init"; "Array.create_float"; "Array.copy";
    "Array.append"; "Array.sub"; "Array.of_list"; "Array.to_list";
    "Array.map"; "Array.mapi"; "Array.map2";
    "List.map"; "List.mapi"; "List.map2"; "List.rev_map"; "List.filter";
    "List.filter_map"; "List.concat"; "List.concat_map"; "List.append";
    "List.rev"; "List.init"; "List.sort"; "List.stable_sort";
    "List.sort_uniq"; "List.cons"; "List.of_seq"; "List.to_seq";
    "String.make"; "String.init"; "String.sub"; "String.concat";
    "String.map"; "String.split_on_char"; "String.cat";
    "Bytes.create"; "Bytes.make"; "Bytes.sub"; "Bytes.of_string";
    "Bytes.to_string";
    "Buffer.create"; "Buffer.contents"; "Buffer.add_string";
    "Buffer.add_char"; "Buffer.add_subbytes";
    "Printf.sprintf"; "Format.asprintf"; "Format.sprintf";
    "Hashtbl.create"; "Hashtbl.copy"; "Hashtbl.fold";
    "Hashtbl.to_seq"; "Hashtbl.add"; "Hashtbl.replace";
    "Queue.create"; "Stack.create"; "Atomic.make";
    "Option.some"; "Option.map"; "Option.value"; "Option.bind";
    "Result.ok"; "Result.error"; "Result.map";
    "Seq.map"; "Seq.filter"; "Seq.cons";
    "string_of_int"; "string_of_float"; "string_of_bool";
    "float_of_string"; "int_of_string"; "Printexc.to_string" ]

(* Stdlib (and otherlibs) module heads: calls into these cannot touch
   this repository's module-level state, so D7 treats them as known
   even when D8 could not prove allocation-freedom. *)
let stdlib_modules =
  [ "Stdlib"; "Array"; "List"; "String"; "Bytes"; "Char"; "Int"; "Float";
    "Bool"; "Option"; "Result"; "Seq"; "Map"; "Set"; "Hashtbl"; "Queue";
    "Stack"; "Buffer"; "Printf"; "Format"; "Scanf"; "Lazy"; "Fun"; "Sys";
    "Filename"; "In_channel"; "Out_channel"; "Digest"; "Marshal"; "Atomic";
    "Mutex"; "Condition"; "Semaphore"; "Domain"; "Either"; "Unit"; "Obj";
    "Printexc"; "Arg"; "Lexing"; "Parsing"; "Uchar"; "Int32"; "Int64";
    "Nativeint"; "Complex"; "Gc"; "Weak"; "Ephemeron"; "Callback";
    "Effect"; "Unix" ]

(* Write-once lookup tables, populated at module init and only ever
   read afterwards. *)
let safe_tbl = Hashtbl.create 256 [@@lint.allow "D4"]
let alloc_tbl = Hashtbl.create 256 [@@lint.allow "D4"]
let stdlib_tbl = Hashtbl.create 64 [@@lint.allow "D4"]

let () =
  List.iter (fun n -> Hashtbl.replace safe_tbl n ()) safe_calls;
  List.iter (fun n -> Hashtbl.replace alloc_tbl n ()) alloc_calls;
  List.iter (fun n -> Hashtbl.replace stdlib_tbl n ()) stdlib_modules

type extern = Safe | Alloc | Stdlib_unknown | Extern_unknown

let classify_extern name =
  let n = strip_stdlib name in
  if Hashtbl.mem safe_tbl n then Safe
  else if Hashtbl.mem alloc_tbl n then Alloc
  else
    match String.split_on_char '.' n with
    | m :: _ :: _ when Hashtbl.mem stdlib_tbl m -> Stdlib_unknown
    | _ -> Extern_unknown

(* The sanctioned instrumentation sink: lib/obs (Hydra_obs) is built
   on striped atomics and Domain.DLS; D7 does not descend into it. *)
let is_obs (s : Summary.t) =
  s.s_module = "Hydra_obs"
  || Filename.basename s.s_dir = "obs"
     && Filename.basename (Filename.dirname s.s_dir) = "lib"

let display (s : Summary.t) (v : Summary.value) =
  s.s_module ^ "." ^ v.v_name

let path_str path = String.concat " -> " (List.rev path)

(* ------------------------------------------------------------------ *)
(* Generic cone walk *)

type item = {
  i_sum : Summary.t;
  i_val : Summary.value;
  i_path : string list;  (* reversed display names, root first at end *)
}

(* Breadth-first walk of the callee cone rooted at [roots]. For each
   visited value, [visit] sees the value and the path to it; [descend]
   decides whether to enter a resolved target; [on_extern] handles a
   call that resolved to nothing. Deterministic: FIFO queue, summary
   and value order comes from the sorted file walk. *)
let walk graph ~roots ~visit ~descend_sanctioned ~on_extern ~on_local =
  let visited = Hashtbl.create 64 in
  let q = Queue.create () in
  let enqueue (s : Summary.t) (v : Summary.value) path =
    let key = (s.s_file, v.v_off) in
    if not (Hashtbl.mem visited key) then begin
      Hashtbl.replace visited key ();
      Queue.add { i_sum = s; i_val = v; i_path = path } q
    end
  in
  List.iter (fun (s, v, path) -> enqueue s v path) roots;
  while not (Queue.is_empty q) do
    let { i_sum = s; i_val = v; i_path = path } = Queue.pop q in
    visit s v path;
    List.iter (fun n -> on_local s v path n) v.v_local_calls;
    List.iter
      (fun name ->
        let applied = List.mem name v.v_calls in
        match Callgraph.resolve graph ~from:s ~top:v.v_top name with
        | [] -> if applied then on_extern s v path name
        | targets ->
            List.iter
              (fun t ->
                match t with
                | Callgraph.Value (s', v') ->
                    if applied || v'.Summary.v_is_fun then
                      if not (descend_sanctioned s' v') then
                        enqueue s' v' (display s' v' :: path)
                | Callgraph.Mutable _ -> ())
              targets)
      v.v_reads
  done

(* Mutable-state touches need the raw reads of each visited value. *)
let mutable_touches graph (s : Summary.t) (v : Summary.value) =
  List.concat_map
    (fun name ->
      List.filter_map
        (fun t ->
          match t with
          | Callgraph.Mutable (s', m) -> Some (name, s', m)
          | Callgraph.Value _ -> None)
        (Callgraph.resolve graph ~from:s ~top:v.v_top name))
    v.v_reads

(* ------------------------------------------------------------------ *)
(* D8: transitive hot-path allocation *)

let sanctioned_cold (s : Summary.t) (v : Summary.value) =
  v.v_cold || Summary.allows_at s ~rule:"D8" ~off:v.v_off

let d8_root findings notes (root_sum : Summary.t) (root : Summary.value) =
  let mk_finding msg =
    findings :=
      Finding.make_pos ~rule:"D8" ~file:root_sum.s_file ~line:root.v_line
        ~col:root.v_col ~off:root.v_off ~msg
      :: !findings
  in
  let mk_note msg =
    notes :=
      Finding.make_pos ~rule:"D8" ~file:root_sum.s_file ~line:root.v_line
        ~col:root.v_col ~off:root.v_off ~msg
      :: !notes
  in
  let seen_alloc = Hashtbl.create 8 and seen_note = Hashtbl.create 8 in
  let root_name = root.v_name in
  fun graph ->
    walk graph
      ~roots:[ (root_sum, root, [ display root_sum root ]) ]
      ~descend_sanctioned:sanctioned_cold
      ~visit:(fun s v path ->
        (* The root's own body is rule D6's job; D8 owns the cone. *)
        if v.v_off <> root.v_off || s.s_file <> root_sum.s_file then
          match v.v_alloc with
          | Some a ->
              let key = s.s_file ^ ":" ^ string_of_int v.v_off in
              if not (Hashtbl.mem seen_alloc key) then begin
                Hashtbl.replace seen_alloc key ();
                mk_finding
                  (Printf.sprintf
                     "[@lint.hot] binding '%s' transitively allocates: %s; \
                      '%s' heap-allocates %s (%s:%d); hoist the allocation \
                      into setup code, mark the callee [@lint.cold] if the \
                      allocation is deliberate, or drop the annotation"
                     root_name (path_str path) v.v_name a.al_what s.s_file
                     a.al_line)
              end
          | None -> ())
      ~on_extern:(fun _s _v path name ->
        match classify_extern name with
        | Safe -> ()
        | Alloc ->
            let key = "a:" ^ name in
            if not (Hashtbl.mem seen_alloc key) then begin
              Hashtbl.replace seen_alloc key ();
              mk_finding
                (Printf.sprintf
                   "[@lint.hot] binding '%s' transitively allocates: %s \
                    calls %s, which heap-allocates; hoist the allocation \
                    into setup code or drop the annotation"
                   root_name (path_str path) name)
            end
        | Stdlib_unknown | Extern_unknown ->
            let key = "n:" ^ name in
            if not (Hashtbl.mem seen_note key) then begin
              Hashtbl.replace seen_note key ();
              mk_note
                (Printf.sprintf
                   "cannot prove [@lint.hot] binding '%s' allocation-free: \
                    unknown callee %s (%s) — a parse-only pass cannot see \
                    its body"
                   root_name name (path_str path))
            end)
      ~on_local:(fun _s v path name ->
        let key = "l:" ^ v.v_name ^ "." ^ name in
        if not (Hashtbl.mem seen_note key) then begin
          Hashtbl.replace seen_note key ();
          mk_note
            (Printf.sprintf
               "cannot prove [@lint.hot] binding '%s' allocation-free: \
                '%s' calls '%s', bound by a parameter or local pattern \
                (%s)"
               root_name v.v_name name (path_str path))
        end)

let d8 graph =
  let findings = ref [] and notes = ref [] in
  List.iter
    (fun (s : Summary.t) ->
      List.iter
        (fun (v : Summary.value) ->
          if v.v_hot && not (sanctioned_cold s v) then
            d8_root findings notes s v graph)
        s.s_values)
    (Callgraph.summaries graph);
  (!findings, !notes)

(* ------------------------------------------------------------------ *)
(* D7: pool-closure race detector *)

let mutable_sanctioned (s : Summary.t) (m : Summary.mutable_binding) =
  Summary.allows_at s ~rule:"D7" ~off:m.m_off
  || Summary.allows_at s ~rule:"D4" ~off:m.m_off

let d7_value_sanctioned (s : Summary.t) (v : Summary.value) =
  is_obs s || Summary.allows_at s ~rule:"D7" ~off:v.v_off

let d7_site graph findings notes (site_sum : Summary.t)
    (p : Summary.pool_site) =
  let mk_finding msg =
    findings :=
      Finding.make_pos ~rule:"D7" ~file:site_sum.s_file ~line:p.p_line
        ~col:p.p_col ~off:p.p_off ~msg
      :: !findings
  in
  let mk_note msg =
    notes :=
      Finding.make_pos ~rule:"D7" ~file:site_sum.s_file ~line:p.p_line
        ~col:p.p_col ~off:p.p_off ~msg
      :: !notes
  in
  let seen = Hashtbl.create 8 in
  let report_touch path (via : string) (s' : Summary.t)
      (m : Summary.mutable_binding) =
    if not (mutable_sanctioned s' m) then begin
      let key = "m:" ^ s'.s_file ^ ":" ^ m.m_name in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        mk_finding
          (Printf.sprintf
             "closure passed to %s transitively touches module-level \
              mutable state '%s.%s' (%s created at %s:%d) via %s — a data \
              race across worker domains; use Atomic/Domain.DLS, pass the \
              state explicitly, or sanction deliberate state with \
              [@lint.allow \"D7\"] on the binding"
             p.p_fn s'.s_module m.m_name m.m_creator s'.s_file m.m_line
             (if path = "" then via else path ^ " -> " ^ via))
      end
    end
  in
  let extern_note path name =
    match classify_extern name with
    | Safe | Alloc | Stdlib_unknown -> ()
    | Extern_unknown ->
        let key = "n:" ^ name in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.replace seen key ();
          mk_note
            (Printf.sprintf
               "cannot prove race-freedom of the closure passed to %s: \
                unknown callee %s (%s)"
               p.p_fn name
               (if path = "" then "called from the closure" else path))
        end
  in
  let local_note v_name name =
    let key = "l:" ^ v_name ^ "." ^ name in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      mk_note
        (Printf.sprintf
           "cannot prove race-freedom of the closure passed to %s: '%s' \
            calls '%s', bound by a parameter or local pattern"
           p.p_fn v_name name)
    end
  in
  (* Direct touches and roots from the closure argument itself. A
     captured name that resolves to nothing and is never applied is a
     local of the enclosing function (data, not code) — silent;
     applied or qualified unresolved names are genuinely unknown. *)
  let roots = ref [] in
  List.iter
    (fun name ->
      match
        Callgraph.resolve graph ~from:site_sum ~top:p.p_top name
      with
      | [] ->
          if List.mem name p.p_calls || String.contains name '.' then
            extern_note "" name
      | targets ->
          List.iter
            (fun t ->
              match t with
              | Callgraph.Mutable (s', m) -> report_touch "" name s' m
              | Callgraph.Value (s', v') ->
                  if not (d7_value_sanctioned s' v') then
                    roots := (s', v', [ display s' v' ]) :: !roots)
            targets)
    p.p_roots;
  List.iter (fun n -> local_note "the closure" n) p.p_local_calls;
  walk graph ~roots:(List.rev !roots)
    ~descend_sanctioned:d7_value_sanctioned
    ~visit:(fun s v path ->
      List.iter
        (fun (via, s', m) -> report_touch (path_str path) via s' m)
        (mutable_touches graph s v))
    ~on_extern:(fun _s _v path name -> extern_note (path_str path) name)
    ~on_local:(fun _s v _path name -> local_note v.v_name name)

let d7 graph =
  let findings = ref [] and notes = ref [] in
  List.iter
    (fun (s : Summary.t) ->
      List.iter
        (fun (p : Summary.pool_site) ->
          if not (Summary.allows_at s ~rule:"D7" ~off:p.p_off) then
            d7_site graph findings notes s p)
        s.s_pool_sites)
    (Callgraph.summaries graph);
  (!findings, !notes)

(* ------------------------------------------------------------------ *)

let check graph =
  let f7, n7 = d7 graph in
  let f8, n8 = d8 graph in
  ( List.sort Finding.order (f7 @ f8),
    List.sort Finding.order (n7 @ n8) )
