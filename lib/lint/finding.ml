type t = {
  rule : string;
  file : string;
  line : int;
  col : int;
  off : int;
  msg : string;
}

let make ~rule ~file ~(loc : Location.t) ~msg =
  let p = loc.loc_start in
  { rule;
    file;
    line = p.pos_lnum;
    col = p.pos_cnum - p.pos_bol;
    off = p.pos_cnum;
    msg }

let make_pos ~rule ~file ~line ~col ~off ~msg =
  { rule; file; line; col; off; msg }

let order a b =
  match String.compare a.file b.file with
  | 0 -> (
      match Int.compare a.line b.line with
      | 0 -> (
          match Int.compare a.col b.col with
          | 0 -> String.compare a.rule b.rule
          | c -> c)
      | c -> c)
  | c -> c

let pp ppf f =
  Format.fprintf ppf "%s:%d:%d [%s] %s" f.file f.line f.col f.rule f.msg

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json f =
  Printf.sprintf
    "{\"rule\":\"%s\",\"file\":\"%s\",\"line\":%d,\"col\":%d,\"message\":\"%s\"}"
    (json_escape f.rule) (json_escape f.file) f.line f.col (json_escape f.msg)
