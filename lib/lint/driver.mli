(** Whole-tree runs: walk directories, analyze every [.ml] in parallel
    (phase 1, per-file findings + {!Summary.t}), link the summaries
    into a call graph and run the interprocedural rules D7/D8 (phase
    2, {!Reach}), apply the checked-in allowlist, render reports.

    The run obeys the repo determinism contract end to end:
    [Sys.readdir] order is unspecified, so files are sorted before
    linting; phase 1 runs under {!Parallel.Pool.map}, whose
    index-slotted results are identical for every [jobs]; phase 2 is
    sequential over the sorted summaries. Findings, notes, and both
    report formats are byte-identical across [--jobs] values and
    across cold/warm cache runs. *)

type result = {
  findings : Finding.t list;  (** sorted, allowlist already applied *)
  notes : Finding.t list;
      (** phase-2 "cannot prove" diagnostics — informational, never
          gate the exit code; sorted, allowlist-filtered *)
  errors : string list;  (** read/parse failures, in walk order *)
  warnings : string list;
      (** non-fatal CLI diagnostics, e.g. a path argument that exists
          but contains no [.ml] files *)
  files_scanned : int;
  cache_hits : int;  (** phase-1 results served from the digest cache *)
}

(** Every [.ml] under the given files/directories, sorted.
    [_build] and dot-directories are skipped. *)
val collect_ml_files : string list -> string list

val default_cache_file : string
(** ["_build/.lint-cache"] — where the [dune @lint] alias and CI point
    [--cache-dir _build]. *)

val run :
  ?allowlist:Allowlist.t ->
  ?jobs:int ->
  ?cache_dir:string ->
  string list ->
  result
(** [run paths] walks [paths] and lints every [.ml] found. [jobs]
    defaults to {!Parallel.Pool.default_jobs}[ ()]. With [cache_dir],
    per-file phase-1 results are served from and saved to
    [cache_dir ^ "/.lint-cache"], keyed by a digest of the schema
    version, path, and file content — so any edit, rename, or schema
    bump invalidates exactly the affected entries. Cache corruption is
    never an error: unreadable entries are recomputed. *)

val run_files :
  ?allowlist:Allowlist.t ->
  ?jobs:int ->
  ?cache_dir:string ->
  string list ->
  result
(** Same, on an explicit pre-collected file list (the [--changed-only]
    path). Callers must pass the list sorted for deterministic
    output; {!collect_ml_files} already does. *)

(** [file:line:col [rule] message] lines; notes follow, prefixed
    ["note: "]. *)
val report_text : result -> string

(** One JSON object: [{"version":2,"files_scanned":N,"count":N,
    "findings":[...],"notes":[...]}], newline-terminated. [count] is
    the number of findings; cache statistics are deliberately
    excluded so cold and warm runs emit identical bytes. *)
val report_json : result -> string

(** SARIF 2.1.0: one run, rule metadata from {!Rules.all}, findings at
    level ["error"], notes at level ["note"] (1-based columns). *)
val report_sarif : result -> string
