(** Whole-tree runs: walk directories, lint every [.ml], apply the
    checked-in allowlist, render reports. The walk itself obeys the
    determinism contract: [Sys.readdir] order is unspecified, so files
    are sorted before linting and findings are reported in
    {!Finding.order}. *)

type result = {
  findings : Finding.t list;  (** sorted, allowlist already applied *)
  errors : string list;  (** read/parse failures, in walk order *)
  files_scanned : int;
}

(** Every [.ml] under the given files/directories, sorted.
    [_build] and dot-directories are skipped. *)
val collect_ml_files : string list -> string list

val run : ?allowlist:Allowlist.t -> string list -> result

(** [file:line:col [rule] message] lines. *)
val report_text : result -> string

(** One JSON object: [{"version":1,"files_scanned":N,"count":N,
    "findings":[...]}], newline-terminated. *)
val report_json : result -> string
