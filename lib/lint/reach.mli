(** Phase 2 reachability rules over a linked {!Callgraph.t}:

    - {b D7} pool-closure race detector: nothing transitively
      reachable from a closure passed to [Parallel.Pool.map] /
      [map_array] / [map_list] may touch unsanctioned module-level
      mutable state (Atomic / Mutex / Domain.DLS and lib/obs are
      sanctioned; [[@lint.allow "D7"]] on the state binding sanctions
      every path reaching it, cross-module).
    - {b D8} transitive hot-path allocation: rule D6 extended over the
      full callee cone of every [[@lint.hot]] binding; a
      [[@lint.cold]] callee is a sanctioned allocation point.

    Both rules never guess: an unresolvable callee becomes a "cannot
    prove" note rather than a silent pass or a spurious finding. *)

val check : Callgraph.t -> Finding.t list * Finding.t list
(** [(findings, notes)], each sorted by {!Finding.order}. Findings are
    violations (gate the exit code); notes are "cannot prove"
    diagnostics (informational, never affect the exit code). *)
