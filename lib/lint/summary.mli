(** Phase 1 of the interprocedural analyzer: one per-module summary,
    extracted from a file's parsetree alone, carrying everything phase
    2 ({!Callgraph} linking + {!Reach} reachability rules D7/D8)
    needs. Summaries are pure marshalable data and flow through the
    content-digest cache in {!Driver}; {!version} participates in the
    cache key, so bump it on any type or extraction change. *)

val version : int
(** Summary schema version (cache invalidation). *)

type alloc = {
  al_what : string;  (** rule-D6 wording: "a tuple", "a closure", ... *)
  al_line : int;
  al_col : int;
}

type value = {
  v_name : string;
  v_top : string;
      (** enclosing top-level binding name; [""] when top-level itself.
          Phase-2 resolution of an unqualified name prefers values with
          the caller's [v_top], then top-level values. *)
  v_line : int;
  v_col : int;
  v_off : int;  (** byte offset, for inline-allow suppression *)
  v_is_fun : bool;  (** syntactic function (has parameters) *)
  v_hot : bool;  (** carries [[@lint.hot]] — a D8 root *)
  v_cold : bool;
      (** carries [[@lint.cold]] — a sanctioned allocation point;
          D8 traversal stops here without descending *)
  v_alloc : alloc option;  (** first D6-style allocation marker in body *)
  v_calls : string list;  (** heads of applications, "."-joined *)
  v_reads : string list;  (** every referenced non-local ident *)
  v_local_calls : string list;
      (** applied names bound by a parameter or local pattern — callees
          a parse-only pass cannot know ("cannot prove") *)
  v_d1 : string option;  (** first wall-clock/global-RNG primitive *)
  v_d2 : string option;  (** first stdout primitive *)
}

type mutable_binding = {
  m_name : string;
  m_creator : string;
  m_line : int;
  m_col : int;
  m_off : int;
}

type pool_site = {
  p_fn : string;  (** head as written, e.g. ["Parallel.Pool.map_list"] *)
  p_top : string;  (** enclosing top-level binding, [""] at module init *)
  p_line : int;
  p_col : int;
  p_off : int;
  p_roots : string list;  (** idents the closure argument references *)
  p_calls : string list;  (** the applied subset of [p_roots] *)
  p_local_calls : string list;
}

type t = {
  s_file : string;
  s_dir : string;
  s_module : string;  (** capitalized basename, e.g. ["Engine"] *)
  s_opens : string list;
  s_includes : string list;
  s_aliases : (string * string) list;
      (** top-level [module X = M] aliases, [("X", "M")]; qualified
          resolution rewrites the first segment through these *)
  s_values : value list;
  s_mutables : mutable_binding list;
      (** module-level mutable bindings (D4 creator scan), recorded on
          every file regardless of lint scope — phase 2's state map *)
  s_pool_sites : pool_site list;
  s_allows : (string * int * int) list;
      (** inline [[@lint.allow]] ranges: (rule, first, last) offsets *)
}

val of_structure : file:string -> Parsetree.structure -> t

val module_name_of_file : string -> string

val allows_at : t -> rule:string -> off:int -> bool
(** Is [rule] suppressed at byte offset [off] by an inline allow range
    of this file? Phase 2 consults the {e target} module's ranges too,
    which is what makes suppression cross-module: an allow on a state
    binding sanctions every path that reaches it. *)
