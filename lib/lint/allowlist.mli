(** The checked-in suppression file ([lint.allowlist] at the repo
    root). One entry per line:

    {v
    # comment
    D3 lib/security/profile_checker.ml        # whole file, one rule
    D3 lib/security/profile_checker.ml:64     # one line only
    *  lib/legacy_module.ml                   # every rule
    v}

    Prefer inline [[@lint.allow "D3"]] attributes — they live next to
    the code they excuse; the allowlist exists for files that must not
    be edited (vendored code, generated sources). *)

type entry = { a_rule : string; a_path : string; a_line : int option }
type t = entry list

val empty : t

(** Parse one line; [None] for blanks and comments. Malformed lines
    are an [Error]. *)
val parse_line : string -> (entry option, string) result

(** Load a file; the error names the offending line. *)
val load : string -> (t, string) result

(** Does some entry cover this finding? Paths match on equality or as
    a [/]-separated suffix, so entries written repo-relative also match
    findings reported under a prefixed path. *)
val permits : t -> Finding.t -> bool
