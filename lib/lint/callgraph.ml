(* Phase 2 linking: index the per-module summaries and resolve
   referenced identifiers to defined values or module-level mutable
   bindings. Resolution is a parse-only heuristic (no typing, no
   cmi files); doc/STATIC_ANALYSIS.md documents the order:

   - unqualified [f]: the module's own mutable bindings plus its
     values (preferring those nested under the caller's top-level
     binding, then top-level values); then each [open]/[include]d
     module, qualified.
   - qualified [M.f]: module [M] in the same directory first (dune
     wraps each lib directory, so in-library references are bare),
     then a unique global match; ambiguity resolves to nothing
     (phase 2 reports "cannot prove" rather than guessing).
   - library-qualified [L.M.f]: [L] is the capitalized directory
     basename (e.g. [Sim.Engine.run] -> lib/sim/engine.ml).
   - [include]s of the target module are searched when [f] is not
     defined in [M] itself. *)

type target =
  | Value of Summary.t * Summary.value
  | Mutable of Summary.t * Summary.mutable_binding

type t = {
  cg_sums : Summary.t list;  (* input order (sorted file order) *)
  by_module : (string, Summary.t list) Hashtbl.t;
  by_libmod : (string, Summary.t) Hashtbl.t;  (* "Sim.Engine" -> summary *)
}

let summaries t = t.cg_sums

let dir_alias dir = String.capitalize_ascii (Filename.basename dir)

let build sums =
  let by_module = Hashtbl.create 64 in
  let by_libmod = Hashtbl.create 64 in
  List.iter
    (fun (s : Summary.t) ->
      let prev =
        match Hashtbl.find_opt by_module s.s_module with
        | Some l -> l
        | None -> []
      in
      Hashtbl.replace by_module s.s_module (prev @ [ s ]);
      Hashtbl.replace by_libmod (dir_alias s.s_dir ^ "." ^ s.s_module) s)
    sums;
  { cg_sums = sums; by_module; by_libmod }

(* Find the summary a module path denotes, seen from [from]. *)
let find_module t ~(from : Summary.t) mpath =
  match mpath with
  | [ m ] -> (
      let cands =
        match Hashtbl.find_opt t.by_module m with Some l -> l | None -> []
      in
      match
        List.filter (fun (s : Summary.t) -> s.s_dir = from.s_dir) cands
      with
      | [ s ] -> Some s
      | _ :: _ -> None (* same-dir ambiguity: give up *)
      | [] -> ( match cands with [ s ] -> Some s | _ -> None))
  | [ l; m ] -> Hashtbl.find_opt t.by_libmod (l ^ "." ^ m)
  | _ -> None

let top_values (s : Summary.t) name =
  List.filter
    (fun (v : Summary.value) -> v.v_name = name && v.v_top = "")
    s.s_values

let module_mutables (s : Summary.t) name =
  List.filter (fun (m : Summary.mutable_binding) -> m.m_name = name)
    s.s_mutables

(* [name] as visible from outside module [s]: its top-level values and
   mutables (a [let hits = ref 0] is both — D7 needs the Mutable, D8
   the Value, so both are returned), then any [include]d module's. *)
let rec exported t ~depth (s : Summary.t) name =
  let ms = List.map (fun m -> Mutable (s, m)) (module_mutables s name) in
  let vs = List.map (fun v -> Value (s, v)) (top_values s name) in
  match ms @ vs with
  | _ :: _ as r -> r
  | [] ->
      if depth > 2 then []
      else
        List.concat_map
          (fun inc ->
            match
              find_module t ~from:s (String.split_on_char '.' inc)
            with
            | Some s' -> exported t ~depth:(depth + 1) s' name
            | None -> [])
          s.s_includes

(* [module Rta = Rtsched.Rta_uniproc] in the referencing file rewrites
   a leading [Rta] to [Rtsched.Rta_uniproc]. *)
let apply_alias (from : Summary.t) = function
  | seg :: rest as mpath -> (
      match List.assoc_opt seg from.s_aliases with
      | Some full -> String.split_on_char '.' full @ rest
      | None -> mpath)
  | [] -> []

let resolve_qualified t ~from segs =
  match List.rev segs with
  | [] -> []
  | name :: rev_mpath -> (
      let mpath = apply_alias from (List.rev rev_mpath) in
      match find_module t ~from mpath with
      | Some s -> exported t ~depth:0 s name
      | None -> [])

(* [resolve t ~from ~top name]: all plausible targets of [name]
   referenced from a value with top-level ancestor [top] in module
   [from]. Empty = unknown (external or unresolvable). *)
let resolve t ~(from : Summary.t) ~top name =
  match String.split_on_char '.' name with
  | [] -> []
  | [ n ] -> (
      let cands =
        List.filter (fun (v : Summary.value) -> v.v_name = n) from.s_values
      in
      let scoped =
        if top = "" then []
        else
          List.filter
            (fun (v : Summary.value) -> v.v_top = top || v.v_name = top)
            cands
      in
      let chosen =
        match scoped with
        | _ :: _ -> scoped
        | [] -> (
            match
              List.filter (fun (v : Summary.value) -> v.v_top = "") cands
            with
            | _ :: _ as tops -> tops
            | [] -> cands)
      in
      let ms =
        List.map (fun m -> Mutable (from, m)) (module_mutables from n)
      in
      match ms @ List.map (fun v -> Value (from, v)) chosen with
      | _ :: _ as r -> r
      | [] ->
          List.concat_map
            (fun o ->
              resolve_qualified t ~from
                (String.split_on_char '.' o @ [ n ]))
            (from.s_opens @ from.s_includes))
  | segs -> resolve_qualified t ~from segs
