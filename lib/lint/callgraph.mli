(** Phase 2 linking: index per-module {!Summary.t}s and resolve
    referenced identifiers across modules. Parse-only heuristic
    resolution (same-directory modules first, then unique global
    match, then the [L.M] library-qualified form where [L] is the
    capitalized directory basename); ambiguity resolves to nothing so
    {!Reach} reports "cannot prove" instead of guessing. *)

type target =
  | Value of Summary.t * Summary.value
  | Mutable of Summary.t * Summary.mutable_binding

type t

val build : Summary.t list -> t
(** Input order is preserved by {!summaries}; callers pass summaries
    in sorted file order so phase 2 output is deterministic. *)

val summaries : t -> Summary.t list

val resolve : t -> from:Summary.t -> top:string -> string -> target list
(** [resolve t ~from ~top name]: every plausible target of the
    "."-joined identifier [name], referenced from a value whose
    top-level ancestor binding is [top] (used to scope unqualified
    names to the caller's nest). Empty = unknown. *)
