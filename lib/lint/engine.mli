(** The determinism & domain-safety pass: parse one [.ml] source with
    compiler-libs and walk the Parsetree with an [Ast_iterator],
    checking rules D1–D5 (see {!Rules.all} and doc/STATIC_ANALYSIS.md).

    Scoping is derived from [file]'s [/]-separated segments: a path
    containing a [lib] segment is library-scoped (enables D2/D4),
    [lib/obs/...] is exempt from D1 (it is the sanctioned clock), and
    under [lib/server/...] D2 additionally rejects raw stderr writes
    (the daemon must log through [Hydra_obs.Log]).

    Suppression understood here (the checked-in allowlist is applied
    later, by {!Driver.run}):
    - [(expr [@lint.allow "D3"])] — that expression and its subtree;
    - [let x = ... [@@lint.allow "D4"]] — that binding;
    - [[@@@lint.allow "D1 D5"]] — the whole file.
    Several rule ids may be given in one string, separated by spaces
    or commas; ["*"] means every rule. *)

(** Intraprocedural findings (rules D1–D6) plus the {!Summary.t}
    phase 2 links into the whole-program call graph. *)
type analysis = { findings : Finding.t list; summary : Summary.t }

(** Parse and analyze one file in a single pass. Findings are sorted
    by position and already filtered by inline [[@lint.allow]]
    attributes. [Error] is a rendered parse error. *)
val analyze : file:string -> string -> (analysis, string) result

(** {!analyze}, keeping only the findings. *)
val lint_source : file:string -> string -> (Finding.t list, string) result
