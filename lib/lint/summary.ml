open Parsetree

(* Phase 1 of the interprocedural analyzer (doc/STATIC_ANALYSIS.md):
   one self-contained summary per .ml file, extracted from the
   parsetree alone. The summary records what phase 2 (Callgraph +
   Reach) needs to run whole-program reachability rules — defined
   values with their referenced identifiers and effect flags,
   module-level mutable bindings, Parallel.Pool call sites, opens and
   includes for longident resolution, and the file's inline
   [@lint.allow] ranges. Summaries are pure data: they marshal into
   the content-digest cache (Driver), so [version] must be bumped on
   any type or extraction change. *)

let version = 1

type alloc = {
  al_what : string;  (* "a tuple", "constructor C", ... (rule D6 wording) *)
  al_line : int;
  al_col : int;
}

type value = {
  v_name : string;
  v_top : string;  (* name of the enclosing top-level binding; "" = is top-level *)
  v_line : int;
  v_col : int;
  v_off : int;
  v_is_fun : bool;  (* syntactic function: peels to parameters *)
  v_hot : bool;  (* carries [@lint.hot] *)
  v_cold : bool;  (* carries [@lint.cold]: sanctioned allocation point *)
  v_alloc : alloc option;  (* first D6-style allocation marker in the body *)
  v_calls : string list;  (* heads of applications, "."-joined, first-occurrence order *)
  v_reads : string list;  (* every referenced non-local ident (calls included) *)
  v_local_calls : string list;  (* applied names bound by a local pattern/parameter *)
  v_d1 : string option;  (* first D1 wall-clock/global-RNG primitive referenced *)
  v_d2 : string option;  (* first D2 stdout primitive referenced *)
}

type mutable_binding = {
  m_name : string;
  m_creator : string;  (* "ref", "Hashtbl.create", ... *)
  m_line : int;
  m_col : int;
  m_off : int;
}

type pool_site = {
  p_fn : string;  (* head as written, e.g. "Parallel.Pool.map_list" *)
  p_top : string;  (* enclosing top-level binding, "" at module init *)
  p_line : int;
  p_col : int;
  p_off : int;
  p_roots : string list;  (* idents the closure argument references *)
  p_calls : string list;  (* the applied subset of p_roots *)
  p_local_calls : string list;  (* applied locals inside the closure body *)
}

type t = {
  s_file : string;
  s_dir : string;
  s_module : string;  (* capitalized basename, e.g. "Engine" *)
  s_opens : string list;  (* "Parallel", "Sim.Engine", ... in occurrence order *)
  s_includes : string list;
  s_aliases : (string * string) list;  (* module X = M: ("X", "M") *)
  s_values : value list;
  s_mutables : mutable_binding list;
  s_pool_sites : pool_site list;
  s_allows : (string * int * int) list;  (* (rule, first offset, last offset) *)
}

(* ------------------------------------------------------------------ *)
(* Small Parsetree helpers (mirrors of Engine's private ones) *)

let flatten_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with
      | parts -> Some parts
      | exception _ -> None)
  | _ -> None

let join = String.concat "."

let allow_rules_of_payload = function
  | PStr
      [ { pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _ } ] ->
      String.split_on_char ' ' s
      |> List.concat_map (String.split_on_char ',')
      |> List.filter (fun r -> r <> "")
  | _ -> []

let attr_has name (attrs : attributes) =
  List.exists (fun a -> a.attr_name.txt = name) attrs

(* Every variable a pattern binds (Ppat_var and Ppat_alias). *)
let pat_vars acc p =
  let vars = ref acc in
  let it =
    { Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> vars := txt :: !vars
          | Ppat_alias (_, { txt; _ }) -> vars := txt :: !vars
          | _ -> ());
          Ast_iterator.default_iterator.pat it p) }
  in
  it.pat it p;
  !vars

(* All pattern-bound names anywhere inside an expression (parameters,
   lets, match/try cases, ...). Scope-imprecise by design: a heuristic
   exclusion set for free-identifier collection. *)
let local_names_of_expr e0 =
  let vars = ref [] in
  let it =
    { Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var { txt; _ } -> vars := txt :: !vars
          | Ppat_alias (_, { txt; _ }) -> vars := txt :: !vars
          | _ -> ());
          Ast_iterator.default_iterator.pat it p) }
  in
  it.expr it e0;
  !vars

(* D6's allocation markers, shared wording (doc/STATIC_ANALYSIS.md). *)
let alloc_marker e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> Some "a closure"
  | Pexp_tuple _ -> Some "a tuple"
  | Pexp_record _ -> Some "a record"
  | Pexp_array _ -> Some "an array literal"
  | Pexp_lazy _ -> Some "a lazy block"
  | Pexp_construct ({ txt; _ }, Some _) -> (
      match Longident.flatten txt with
      | parts -> Some ("constructor " ^ join parts)
      | exception _ -> Some "a constructor application")
  | Pexp_variant (tag, Some _) -> Some ("variant `" ^ tag)
  | Pexp_apply (f, _) -> (
      match flatten_ident f with
      | Some ([ "ref" ] | [ "Stdlib"; "ref" ]) -> Some "a ref cell"
      | _ -> None)
  | _ -> None

let d1_hit = function
  | "Unix.gettimeofday" | "Unix.time" | "Sys.time" -> true
  | s ->
      String.starts_with ~prefix:"Random." s
      && (match String.index_opt s '.' with
         | Some i ->
             String.length s > i + 1
             && Char.lowercase_ascii s.[i + 1] = s.[i + 1]
         | None -> false)

let d2_hit = function
  | "Printf.printf" | "Format.printf" | "Format.std_formatter" | "stdout"
  | "Stdlib.stdout" ->
      true
  | s ->
      String.starts_with ~prefix:"print_" s
      || String.starts_with ~prefix:"Stdlib.print_" s
      || String.starts_with ~prefix:"Format.print_" s

let d4_creator = function
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref"
  | [ "Hashtbl"; "create" ] -> Some "Hashtbl.create"
  | [ "Queue"; "create" ] -> Some "Queue.create"
  | [ "Stack"; "create" ] -> Some "Stack.create"
  | [ "Buffer"; "create" ] -> Some "Buffer.create"
  | [ "Array"; ("make" | "create_float" | "init") as f ] ->
      Some ("Array." ^ f)
  | [ "Bytes"; ("create" | "make") as f ] -> Some ("Bytes." ^ f)
  | _ -> None

let is_pool_head parts =
  match List.rev parts with
  | ("map" | "map_array" | "map_list") :: "Pool" :: _ -> true
  | _ -> false

(* Peel the parameters of a function binding: leading [fun]/[newtype],
   plus one trailing [function] level whose cases are the body. *)
let rec peel_params e =
  match e.pexp_desc with
  | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) -> peel_params body
  | _ -> e

let is_syntactic_fun e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_newtype _ | Pexp_function _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Reference collection *)

type refs = {
  mutable r_calls : string list;  (* reversed *)
  mutable r_reads : string list;
  mutable r_locals : string list;
  mutable r_seen : (string, unit) Hashtbl.t;
}

let fresh_refs () =
  { r_calls = []; r_reads = []; r_locals = []; r_seen = Hashtbl.create 16 }

let push seen key tag lst =
  let k = tag ^ key in
  if Hashtbl.mem seen k then lst
  else begin
    Hashtbl.add seen k ();
    key :: lst
  end

(* Collect referenced identifiers in [e0]. [excl] holds locally-bound
   names (minus names that are recorded module values, which stay
   resolvable); [recorded] is that exception set. *)
let collect_refs ~excl ~recorded e0 =
  let r = fresh_refs () in
  let is_local n =
    Hashtbl.mem excl n && not (Hashtbl.mem recorded n)
  in
  let note_ident ~applied parts =
    let name = join parts in
    match parts with
    | [ n ] when is_local n ->
        if applied then r.r_locals <- push r.r_seen n "l:" r.r_locals
    | _ ->
        r.r_reads <- push r.r_seen name "r:" r.r_reads;
        if applied then r.r_calls <- push r.r_seen name "c:" r.r_calls
  in
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply (f, _) -> (
              match flatten_ident f with
              | Some parts -> note_ident ~applied:true parts
              | None -> ())
          | Pexp_ident _ -> (
              match flatten_ident e with
              | Some parts -> note_ident ~applied:false parts
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e) }
  in
  it.expr it e0;
  ( List.rev r.r_calls,
    List.rev r.r_reads,
    List.rev r.r_locals )

(* First D6-style allocation marker in a function body ([e] already
   peeled of its parameters). A trailing [function] is the last
   parameter: its cases are scanned, the node itself is free. *)
let first_alloc e =
  let best = ref None in
  let scan_expr e0 =
    let it =
      { Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (if !best = None then
               match alloc_marker e with
               | Some what ->
                   let p = e.pexp_loc.Location.loc_start in
                   best :=
                     Some
                       { al_what = what;
                         al_line = p.pos_lnum;
                         al_col = p.pos_cnum - p.pos_bol }
               | None -> ());
            if !best = None then Ast_iterator.default_iterator.expr it e) }
    in
    it.expr it e0
  in
  (match e.pexp_desc with
  | Pexp_function cases ->
      List.iter
        (fun c ->
          (match c.pc_guard with Some g -> scan_expr g | None -> ());
          if !best = None then scan_expr c.pc_rhs)
        cases
  | _ -> scan_expr e);
  !best

(* ------------------------------------------------------------------ *)
(* Extraction *)

type acc = {
  mutable a_values : value list;  (* reversed *)
  mutable a_mutables : mutable_binding list;
  mutable a_pool : pool_site list;
  mutable a_opens : string list;
  mutable a_includes : string list;
  mutable a_aliases : (string * string) list;
  mutable a_allows : (string * int * int) list;
  a_recorded : (string, unit) Hashtbl.t;  (* names of recorded values *)
}

let record_allow acc (attr : attribute) ~first ~last =
  if attr.attr_name.txt = "lint.allow" then
    List.iter
      (fun r -> acc.a_allows <- (r, first, last) :: acc.a_allows)
      (allow_rules_of_payload attr.attr_payload)

let record_allow_loc acc attr (loc : Location.t) =
  record_allow acc attr ~first:loc.loc_start.pos_cnum
    ~last:loc.loc_end.pos_cnum

let binding_name vb =
  let rec go p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> go p
    | _ -> None
  in
  go vb.pvb_pat

(* Pass A: names of every binding that will be recorded as a value, so
   reference collection can keep them resolvable even though they are
   also pattern-bound. Top-level bindings are all recorded; nested
   bindings only when they are syntactic functions. *)
let collect_recorded acc ast =
  let expr_h it e =
    (match e.pexp_desc with
    | Pexp_let (_, vbs, _) ->
        List.iter
          (fun vb ->
            match binding_name vb with
            | Some n when is_syntactic_fun vb.pvb_expr ->
                Hashtbl.replace acc.a_recorded n ()
            | _ -> ())
          vbs
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let structure_item_h it si =
    (match si.pstr_desc with
    | Pstr_value (_, vbs) ->
        List.iter
          (fun vb ->
            match binding_name vb with
            | Some n -> Hashtbl.replace acc.a_recorded n ()
            | None -> ())
          vbs
    | _ -> ());
    Ast_iterator.default_iterator.structure_item it si
  in
  let it =
    { Ast_iterator.default_iterator with
      expr = expr_h;
      structure_item = structure_item_h }
  in
  it.structure it ast

let mk_value acc ~top vb =
  match binding_name vb with
  | None -> None
  | Some name ->
      let p = vb.pvb_loc.Location.loc_start in
      let body = peel_params vb.pvb_expr in
      let excl = Hashtbl.create 16 in
      List.iter
        (fun n -> Hashtbl.replace excl n ())
        (pat_vars (local_names_of_expr vb.pvb_expr) vb.pvb_pat);
      let calls, reads, local_calls =
        collect_refs ~excl ~recorded:acc.a_recorded vb.pvb_expr
      in
      Some
        { v_name = name;
          v_top = top;
          v_line = p.pos_lnum;
          v_col = p.pos_cnum - p.pos_bol;
          v_off = p.pos_cnum;
          v_is_fun = is_syntactic_fun vb.pvb_expr;
          v_hot = attr_has "lint.hot" vb.pvb_attributes;
          v_cold = attr_has "lint.cold" vb.pvb_attributes;
          v_alloc = first_alloc body;
          v_calls = calls;
          v_reads = reads;
          v_local_calls = local_calls;
          v_d1 = List.find_opt d1_hit reads;
          v_d2 = List.find_opt d2_hit reads }

(* Module-level mutable state: the D4 creator scan, stopping at
   function and lazy boundaries (creation per call is fine). Runs on
   every file regardless of scope — phase 2 needs the state map even
   where D4 itself would not fire. *)
let find_creator e0 =
  let found = ref None in
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          if !found = None then
            match e.pexp_desc with
            | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> ()
            | Pexp_apply (fn, _) ->
                (match flatten_ident fn with
                | Some parts -> (
                    match d4_creator parts with
                    | Some name -> found := Some name
                    | None -> ())
                | None -> ());
                Ast_iterator.default_iterator.expr it e
            | _ -> Ast_iterator.default_iterator.expr it e) }
  in
  it.expr it e0;
  !found

let pool_site_of acc ~top e fnparts args =
  let p = e.pexp_loc.Location.loc_start in
  let roots = ref [] in
  let applied = ref [] in
  let locals = ref [] in
  let seen = Hashtbl.create 8 in
  let add_refs arg =
    let excl = Hashtbl.create 16 in
    List.iter
      (fun n -> Hashtbl.replace excl n ())
      (local_names_of_expr arg);
    let calls, reads, local_calls =
      collect_refs ~excl ~recorded:acc.a_recorded arg
    in
    List.iter (fun n -> applied := push seen n "c:" !applied) calls;
    List.iter (fun n -> roots := push seen n "r:" !roots) reads;
    List.iter (fun n -> locals := push seen n "l:" !locals) local_calls
  in
  List.iter
    (fun (lbl, arg) ->
      match lbl with Asttypes.Nolabel -> add_refs arg | _ -> ())
    args;
  { p_fn = join fnparts;
    p_top = top;
    p_line = p.pos_lnum;
    p_col = p.pos_cnum - p.pos_bol;
    p_off = p.pos_cnum;
    p_roots = List.rev !roots;
    p_calls = List.rev !applied;
    p_local_calls = List.rev !locals }

let longident_of_module_expr me =
  match me.pmod_desc with
  | Pmod_ident { txt; _ } -> (
      match Longident.flatten txt with
      | parts -> Some (join parts)
      | exception _ -> None)
  | _ -> None

(* Pass B: values (top-level and nested functions), pool sites, opens,
   includes, allow ranges. [top] tracks the enclosing top-level
   binding name for scoped resolution in phase 2. *)
let collect acc ast =
  let top = ref "" in
  let add_value ~top vb =
    match mk_value acc ~top vb with
    | Some v -> acc.a_values <- v :: acc.a_values
    | None -> ()
  in
  let expr_h it e =
    List.iter
      (fun a -> record_allow_loc acc a e.pexp_loc)
      e.pexp_attributes;
    (match e.pexp_desc with
    | Pexp_let (_, vbs, _) ->
        List.iter
          (fun vb ->
            List.iter
              (fun a -> record_allow_loc acc a vb.pvb_loc)
              vb.pvb_attributes;
            if is_syntactic_fun vb.pvb_expr then add_value ~top:!top vb)
          vbs
    | Pexp_open ({ popen_expr; _ }, _) ->
        (match longident_of_module_expr popen_expr with
        | Some m ->
            if not (List.mem m acc.a_opens) then
              acc.a_opens <- acc.a_opens @ [ m ]
        | None -> ())
    | Pexp_apply (fn, args) ->
        (match flatten_ident fn with
        | Some parts when is_pool_head parts ->
            acc.a_pool <- pool_site_of acc ~top:!top e parts args :: acc.a_pool
        | _ -> ())
    | _ -> ());
    Ast_iterator.default_iterator.expr it e
  in
  let structure_item_h it si =
    match si.pstr_desc with
    | Pstr_attribute attr ->
        record_allow acc attr ~first:0 ~last:max_int;
        Ast_iterator.default_iterator.structure_item it si
    | Pstr_open { popen_expr; _ } ->
        (match longident_of_module_expr popen_expr with
        | Some m ->
            if not (List.mem m acc.a_opens) then
              acc.a_opens <- acc.a_opens @ [ m ]
        | None -> ());
        Ast_iterator.default_iterator.structure_item it si
    | Pstr_module { pmb_name = { txt = Some alias; _ }; pmb_expr; _ } ->
        (match longident_of_module_expr pmb_expr with
        | Some m ->
            if not (List.mem_assoc alias acc.a_aliases) then
              acc.a_aliases <- acc.a_aliases @ [ (alias, m) ]
        | None -> ());
        Ast_iterator.default_iterator.structure_item it si
    | Pstr_include { pincl_mod; _ } ->
        (match longident_of_module_expr pincl_mod with
        | Some m ->
            if not (List.mem m acc.a_includes) then
              acc.a_includes <- acc.a_includes @ [ m ]
        | None -> ());
        Ast_iterator.default_iterator.structure_item it si
    | Pstr_value (_, vbs) ->
        (* Iterate the bindings by hand so [top] names the enclosing
           top-level binding while its body is walked. *)
        List.iter
          (fun vb ->
            List.iter
              (fun a -> record_allow_loc acc a vb.pvb_loc)
              vb.pvb_attributes;
            add_value ~top:"" vb;
            (match find_creator vb.pvb_expr with
            | Some creator -> (
                match binding_name vb with
                | Some n ->
                    let p = vb.pvb_loc.Location.loc_start in
                    acc.a_mutables <-
                      { m_name = n;
                        m_creator = creator;
                        m_line = p.pos_lnum;
                        m_col = p.pos_cnum - p.pos_bol;
                        m_off = p.pos_cnum }
                      :: acc.a_mutables
                | None -> ())
            | None -> ());
            top := (match binding_name vb with Some n -> n | None -> "");
            it.expr it vb.pvb_expr;
            top := "")
          vbs
    | _ -> Ast_iterator.default_iterator.structure_item it si
  in
  let it =
    { Ast_iterator.default_iterator with
      expr = expr_h;
      structure_item = structure_item_h }
  in
  it.structure it ast

let module_name_of_file file =
  String.capitalize_ascii
    (Filename.remove_extension (Filename.basename file))

let of_structure ~file ast =
  let acc =
    { a_values = [];
      a_mutables = [];
      a_pool = [];
      a_opens = [];
      a_includes = [];
      a_aliases = [];
      a_allows = [];
      a_recorded = Hashtbl.create 64 }
  in
  collect_recorded acc ast;
  collect acc ast;
  { s_file = file;
    s_dir = Filename.dirname file;
    s_module = module_name_of_file file;
    s_opens = acc.a_opens;
    s_includes = acc.a_includes;
    s_aliases = acc.a_aliases;
    s_values = List.rev acc.a_values;
    s_mutables = List.rev acc.a_mutables;
    s_pool_sites = List.rev acc.a_pool;
    s_allows = acc.a_allows }

(* [allows_at t ~rule ~off]: is [rule] suppressed at byte offset [off]
   by an inline [@lint.allow] range? The cross-module suppression hook:
   phase 2 consults the *target* module's ranges, so an allow on the
   state binding (or a floating allow in the state's file) sanctions
   every path that reaches it. *)
let allows_at t ~rule ~off =
  List.exists
    (fun (r, first, last) ->
      (r = "*" || r = rule) && off >= first && off <= last)
    t.s_allows
