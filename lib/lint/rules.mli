(** The rule catalog: stable ids and one-line rationales, shared by
    [hydra_lint --list-rules] and doc/STATIC_ANALYSIS.md. *)

type meta = {
  id : string;
  title : string;
  rationale : string;
}

val all : meta list

val find : string -> meta option

val pp_catalog : Format.formatter -> unit -> unit
