open Parsetree

(* ------------------------------------------------------------------ *)
(* Scoping *)

type scope = { in_lib : bool; in_obs : bool; in_server : bool }

let scope_of_file file =
  let rec go = function
    | "lib" :: rest ->
        { in_lib = true;
          in_obs = (match rest with "obs" :: _ -> true | _ -> false);
          in_server = (match rest with "server" :: _ -> true | _ -> false) }
    | _ :: rest -> go rest
    | [] -> { in_lib = false; in_obs = false; in_server = false }
  in
  go (String.split_on_char '/' file)

(* ------------------------------------------------------------------ *)
(* Small Parsetree helpers *)

let flatten_ident e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> (
      match Longident.flatten txt with
      | parts -> Some parts
      | exception _ -> None)
  | _ -> None

(* Head of a (possibly partial) application chain: the [List.sort] in
   [List.sort cmp] or [x |> List.sort cmp]. *)
let rec head_ident e =
  match e.pexp_desc with
  | Pexp_apply (f, _) -> head_ident f
  | _ -> flatten_ident e

(* [exists_in_expr pred e]: does any subexpression of [e] satisfy
   [pred]? Only expressions are inspected (not patterns or types). *)
let exists_in_expr pred e =
  let found = ref false in
  let it =
    { Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          if not !found then
            if pred e then found := true
            else Ast_iterator.default_iterator.expr it e) }
  in
  it.expr it e;
  !found

(* ------------------------------------------------------------------ *)
(* Per-rule matchers *)

(* D1: ambient wall-clock / entropy. [Random.State.*] (explicit-state)
   is fine; the two-segment global-state [Random.*] functions are not. *)
let d1_hit = function
  | [ "Unix"; "gettimeofday" ] -> Some "Unix.gettimeofday"
  | [ "Unix"; "time" ] -> Some "Unix.time"
  | [ "Sys"; "time" ] -> Some "Sys.time"
  | [ "Random"; f ]
    when f <> "" && Char.lowercase_ascii f.[0] = f.[0] ->
      Some ("Random." ^ f)
  | _ -> None

(* D2: stdout from library code. *)
let d2_hit = function
  | [ f ] when String.starts_with ~prefix:"print_" f -> Some f
  | [ "Stdlib"; f ] when String.starts_with ~prefix:"print_" f ->
      Some ("Stdlib." ^ f)
  | [ "Printf"; "printf" ] -> Some "Printf.printf"
  | [ "Format"; "printf" ] -> Some "Format.printf"
  | [ "Format"; f ] when String.starts_with ~prefix:"print_" f ->
      Some ("Format." ^ f)
  | [ "Format"; "std_formatter" ] -> Some "Format.std_formatter"
  | [ "stdout" ] | [ "Stdlib"; "stdout" ] -> Some "stdout"
  | _ -> None

(* D2 (server tightening): raw stderr from daemon code. Structured
   logging goes through [Hydra_obs.Log] — whose identifiers are
   three-segment ([Hydra_obs.Log.log]) and so never match here. *)
let d2_stderr_hit = function
  | [ f ] when String.starts_with ~prefix:"prerr_" f -> Some f
  | [ "Stdlib"; f ] when String.starts_with ~prefix:"prerr_" f ->
      Some ("Stdlib." ^ f)
  | [ "Printf"; "eprintf" ] -> Some "Printf.eprintf"
  | [ "Format"; "eprintf" ] -> Some "Format.eprintf"
  | [ "Format"; "err_formatter" ] -> Some "Format.err_formatter"
  | [ "stderr" ] | [ "Stdlib"; "stderr" ] -> Some "stderr"
  | _ -> None

(* D3: does this expression build an order-sensitive value — a list
   (cons/append), a string (concat), or a buffer? *)
let accumulates e =
  exists_in_expr
    (fun e ->
      match e.pexp_desc with
      | Pexp_construct ({ txt = Longident.Lident "::"; _ }, _) -> true
      | Pexp_ident _ -> (
          match flatten_ident e with
          | Some ([ "@" ] | [ "^" ] | [ "List"; "cons" ]) -> true
          | Some [ "Buffer"; f ] -> String.starts_with ~prefix:"add" f
          | _ -> false)
      | _ -> false)
    e

let is_sort = function
  | [ "List"; ("sort" | "sort_uniq" | "stable_sort" | "fast_sort") ]
  | [ "Array"; ("sort" | "stable_sort" | "fast_sort") ] ->
      true
  | _ -> false

(* D4: creators of shared mutable cells. [Atomic.make], [Mutex.create]
   and [Domain.DLS.new_key] are deliberately absent — they are the
   sanctioned forms of module-level state. *)
let d4_creator = function
  | [ "ref" ] | [ "Stdlib"; "ref" ] -> Some "ref"
  | [ "Hashtbl"; "create" ] -> Some "Hashtbl.create"
  | [ "Queue"; "create" ] -> Some "Queue.create"
  | [ "Stack"; "create" ] -> Some "Stack.create"
  | [ "Buffer"; "create" ] -> Some "Buffer.create"
  | [ "Array"; ("make" | "create_float" | "init") as f ] ->
      Some ("Array." ^ f)
  | [ "Bytes"; ("create" | "make") as f ] -> Some ("Bytes." ^ f)
  | _ -> None

(* D6: syntactic heap-allocation sites, for bodies of [@lint.hot]
   bindings. Constant constructors ([None], [[]]) and pattern matches
   are free; [raise]d exception constructors still count — a hot path
   should validate before it gets hot. *)
let d6_marker e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> Some "a closure"
  | Pexp_tuple _ -> Some "a tuple"
  | Pexp_record _ -> Some "a record"
  | Pexp_array _ -> Some "an array literal"
  | Pexp_lazy _ -> Some "a lazy block"
  | Pexp_construct ({ txt; _ }, Some _) -> (
      match Longident.flatten txt with
      | parts -> Some ("constructor " ^ String.concat "." parts)
      | exception _ -> Some "a constructor application")
  | Pexp_variant (tag, Some _) -> Some ("variant `" ^ tag)
  | Pexp_apply (f, _) -> (
      match flatten_ident f with
      | Some ([ "ref" ] | [ "Stdlib"; "ref" ]) -> Some "a ref cell"
      | _ -> None)
  | _ -> None

let is_hot_attr (attr : attribute) = attr.attr_name.txt = "lint.hot"

(* D5: syntactic evidence that an operand is a float. *)
let float_evidence e =
  exists_in_expr
    (fun e ->
      match e.pexp_desc with
      | Pexp_constant (Pconst_float _) -> true
      | Pexp_ident _ -> (
          match flatten_ident e with
          | Some [ ("+." | "-." | "*." | "/." | "**") ] -> true
          | Some [ "float_of_int" ] -> true
          | Some ("Float" :: _) -> true
          | _ -> false)
      | _ -> false)
    e

(* ------------------------------------------------------------------ *)
(* The pass *)

type ctx = {
  file : string;
  scope : scope;
  mutable findings : Finding.t list;
  (* (rule, first byte offset, last byte offset) covered by an inline
     [@lint.allow] attribute *)
  mutable allows : (string * int * int) list;
  (* > 0 while inside an expression chain that sorts its result *)
  mutable sorted_depth : int;
}

let allow_rules_of_payload = function
  | PStr
      [ { pstr_desc =
            Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _);
          _ } ] ->
      String.split_on_char ' ' s
      |> List.concat_map (String.split_on_char ',')
      |> List.filter (fun r -> r <> "")
  | _ -> []

let run_pass ctx ast =
  let add rule (loc : Location.t) msg =
    ctx.findings <- Finding.make ~rule ~file:ctx.file ~loc ~msg :: ctx.findings
  in
  let record_allow (attr : attribute) ~first ~last =
    if attr.attr_name.txt = "lint.allow" then
      List.iter
        (fun r -> ctx.allows <- (r, first, last) :: ctx.allows)
        (allow_rules_of_payload attr.attr_payload)
  in
  let record_allow_loc attr (loc : Location.t) =
    record_allow attr ~first:loc.loc_start.pos_cnum ~last:loc.loc_end.pos_cnum
  in
  let check_ident e =
    match flatten_ident e with
    | None -> ()
    | Some parts ->
        (if not ctx.scope.in_obs then
           match d1_hit parts with
           | Some name ->
               add "D1" e.pexp_loc
                 (Printf.sprintf
                    "%s reads ambient wall-clock/entropy state; results must \
                     be reproducible from the seed alone — use \
                     Hydra_obs.now_ns for timing or Taskgen.Rng for \
                     randomness"
                    name)
           | None -> ());
        (if ctx.scope.in_lib then
           match d2_hit parts with
           | Some name ->
               add "D2" e.pexp_loc
                 (Printf.sprintf
                    "%s writes to stdout from library code; results must flow \
                     through a formatter argument or a returned value so \
                     stdout stays byte-identical across --jobs"
                    name)
           | None -> ());
        if ctx.scope.in_server then
          match d2_stderr_hit parts with
          | Some name ->
              add "D2" e.pexp_loc
                (Printf.sprintf
                   "%s writes raw stderr from daemon code; a long-running \
                    server must log through the rate-limited Hydra_obs.Log \
                    so operator output stays throttled and structured"
                   name)
          | None -> ()
  in
  (* D6 scans the body of a [@lint.hot] binding; the outermost
     parameter funs are the function being defined, not captures. *)
  let d6_scan vb =
    let rec peel e =
      match e.pexp_desc with
      | Pexp_fun (_, _, _, body) | Pexp_newtype (_, body) -> peel body
      | _ -> e
    in
    let it =
      { Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            (match d6_marker e with
            | Some what ->
                add "D6" e.pexp_loc
                  (Printf.sprintf
                     "[@lint.hot] promises an allocation-free path, but \
                      this expression heap-allocates (%s); hoist the \
                      allocation into setup code or drop the annotation"
                     what)
            | None -> ());
            Ast_iterator.default_iterator.expr it e) }
    in
    it.expr it (peel vb.pvb_expr)
  in
  let scan_bindings vbs =
    List.iter
      (fun vb ->
        List.iter (fun a -> record_allow_loc a vb.pvb_loc) vb.pvb_attributes;
        if List.exists is_hot_attr vb.pvb_attributes then d6_scan vb)
      vbs
  in
  let expr_h it e =
    List.iter (fun a -> record_allow_loc a e.pexp_loc) e.pexp_attributes;
    check_ident e;
    (match e.pexp_desc with
    | Pexp_let (_, vbs, _) -> scan_bindings vbs
    | _ -> ());
    match e.pexp_desc with
    | Pexp_apply (fn, args) ->
        let fnp = flatten_ident fn in
        (match fnp with
        | Some [ "Hashtbl"; (("fold" | "iter") as which) ]
          when ctx.sorted_depth = 0 ->
            if List.exists (fun (_, a) -> accumulates a) args then
              add "D3" e.pexp_loc
                (Printf.sprintf
                   "Hashtbl.%s builds an order-sensitive value in \
                    unspecified hash-bucket order; sort the result in the \
                    same expression chain, or mark a commutative fold with \
                    [@lint.allow \"D3\"]"
                   which)
        | _ -> ());
        (match fnp with
        | Some ([ "compare" ] | [ "Stdlib"; "compare" ] | [ "=" ] | [ "<>" ])
          ->
            if List.exists (fun (_, a) -> float_evidence a) args then
              add "D5" e.pexp_loc
                "polymorphic compare/(=) on float operands is order-fragile \
                 around NaN; use Float.compare / Float.equal"
        | _ -> ());
        let sorted_here =
          (match fnp with Some p -> is_sort p | None -> false)
          ||
          match fnp with
          | Some ([ "|>" ] | [ "@@" ]) ->
              List.exists
                (fun (_, a) ->
                  match head_ident a with
                  | Some p -> is_sort p
                  | None -> false)
                args
          | _ -> false
        in
        if sorted_here then begin
          ctx.sorted_depth <- ctx.sorted_depth + 1;
          Ast_iterator.default_iterator.expr it e;
          ctx.sorted_depth <- ctx.sorted_depth - 1
        end
        else Ast_iterator.default_iterator.expr it e
    | _ -> Ast_iterator.default_iterator.expr it e
  in
  (* D4 looks only at code that runs at module initialisation: the
     scan stops at function and lazy boundaries, where creation happens
     per call instead. *)
  let d4_scan e0 =
    let it =
      { Ast_iterator.default_iterator with
        expr =
          (fun it e ->
            match e.pexp_desc with
            | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ -> ()
            | Pexp_apply (fn, _) ->
                (match flatten_ident fn with
                | Some parts -> (
                    match d4_creator parts with
                    | Some name ->
                        add "D4" e.pexp_loc
                          (Printf.sprintf
                             "module-level %s is mutable state shared by \
                              every domain under Parallel.Pool; use Atomic, \
                              Domain.DLS, or pass the state explicitly"
                             name)
                    | None -> ())
                | None -> ());
                Ast_iterator.default_iterator.expr it e
            | _ -> Ast_iterator.default_iterator.expr it e) }
    in
    it.expr it e0
  in
  let structure_item_h it si =
    (match si.pstr_desc with
    | Pstr_attribute attr ->
        (* floating [@@@lint.allow "..."]: the whole file *)
        record_allow attr ~first:0 ~last:max_int
    | Pstr_value (_, vbs) ->
        scan_bindings vbs;
        List.iter
          (fun vb -> if ctx.scope.in_lib then d4_scan vb.pvb_expr)
          vbs
    | _ -> ());
    Ast_iterator.default_iterator.structure_item it si
  in
  let it =
    { Ast_iterator.default_iterator with
      expr = expr_h;
      structure_item = structure_item_h }
  in
  it.structure it ast

let suppressed ctx (f : Finding.t) =
  List.exists
    (fun (rule, first, last) ->
      (rule = "*" || rule = f.rule) && f.off >= first && f.off <= last)
    ctx.allows

type analysis = { findings : Finding.t list; summary : Summary.t }

let analyze ~file source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf file;
  match Parse.implementation lexbuf with
  | exception exn ->
      let msg =
        match Location.error_of_exn exn with
        | Some (`Ok report) ->
            Format.asprintf "%a" Location.print_report report
        | Some `Already_displayed | None -> Printexc.to_string exn
      in
      Error msg
  | ast ->
      let ctx =
        { file;
          scope = scope_of_file file;
          findings = [];
          allows = [];
          sorted_depth = 0 }
      in
      run_pass ctx ast;
      let findings =
        ctx.findings
        |> List.filter (fun f -> not (suppressed ctx f))
        |> List.sort Finding.order
      in
      Ok { findings; summary = Summary.of_structure ~file ast }

let lint_source ~file source =
  Result.map (fun a -> a.findings) (analyze ~file source)
