type result = {
  findings : Finding.t list;
  errors : string list;
  files_scanned : int;
}

let normalize path =
  let path =
    String.concat "/" (String.split_on_char '\\' path)
  in
  if String.starts_with ~prefix:"./" path then
    String.sub path 2 (String.length path - 2)
  else path

let rec add_tree acc path =
  match Sys.is_directory path with
  | exception Sys_error _ -> acc
  | true ->
      Sys.readdir path |> Array.to_list
      |> List.sort String.compare
      |> List.fold_left
           (fun acc name ->
             if name = "" || name.[0] = '.' || name = "_build" then acc
             else add_tree acc (path ^ "/" ^ name))
           acc
  | false -> if Filename.check_suffix path ".ml" then path :: acc else acc

let collect_ml_files paths =
  List.fold_left add_tree [] (List.map normalize paths)
  |> List.sort_uniq String.compare

let read_file path = In_channel.with_open_bin path In_channel.input_all

let run ?(allowlist = Allowlist.empty) paths =
  let files = collect_ml_files paths in
  let findings, errors =
    List.fold_left
      (fun (fs, errs) file ->
        match read_file file with
        | exception Sys_error m -> (fs, m :: errs)
        | source -> (
            match Engine.lint_source ~file source with
            | Ok f -> (List.rev_append f fs, errs)
            | Error m -> (fs, m :: errs)))
      ([], []) files
  in
  { findings =
      findings
      |> List.filter (fun f -> not (Allowlist.permits allowlist f))
      |> List.sort Finding.order;
    errors = List.rev errors;
    files_scanned = List.length files }

let report_text r =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string b (Format.asprintf "%a" Finding.pp f);
      Buffer.add_char b '\n')
    r.findings;
  Buffer.contents b

let report_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf "{\"version\":1,\"files_scanned\":%d,\"count\":%d,\"findings\":["
       r.files_scanned
       (List.length r.findings));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Finding.to_json f))
    r.findings;
  Buffer.add_string b "]}\n";
  Buffer.contents b
