type result = {
  findings : Finding.t list;
  notes : Finding.t list;
  errors : string list;
  warnings : string list;
  files_scanned : int;
  cache_hits : int;
}

let normalize path =
  let path =
    String.concat "/" (String.split_on_char '\\' path)
  in
  if String.starts_with ~prefix:"./" path then
    String.sub path 2 (String.length path - 2)
  else path

let rec add_tree acc path =
  match Sys.is_directory path with
  | exception Sys_error _ -> acc
  | true ->
      Sys.readdir path |> Array.to_list
      |> List.sort String.compare
      |> List.fold_left
           (fun acc name ->
             if name = "" || name.[0] = '.' || name = "_build" then acc
             else add_tree acc (path ^ "/" ^ name))
           acc
  | false -> if Filename.check_suffix path ".ml" then path :: acc else acc

let collect_ml_files paths =
  List.fold_left add_tree [] (List.map normalize paths)
  |> List.sort_uniq String.compare

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* ------------------------------------------------------------------ *)
(* Content-digest summary cache *)

(* Bump on any change to the cached payload ([file_result], and
   transitively [Finding.t]); [Summary.version] covers the summary
   schema. Both participate in the content digest, so a schema change
   makes every old entry a miss rather than a decode hazard. *)
let cache_version = 1

type file_result = {
  fr_findings : Finding.t list;  (* phase 1, inline allows applied *)
  fr_summary : Summary.t option;
  fr_error : string option;  (* read/parse failure, already rendered *)
}

let file_key ~file source =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "hydra-lint:%d:%d:%s:%s" cache_version
          Summary.version file source))

let cache_header =
  Printf.sprintf "hydra-lint-cache v%d s%d" cache_version Summary.version

let default_cache_file = "_build/.lint-cache"

(* Best-effort load: anything unreadable or from another schema is an
   empty cache, never an error — the linter recomputes. *)
let load_cache path =
  let tbl : (string, file_result) Hashtbl.t = Hashtbl.create 256 in
  (try
     In_channel.with_open_bin path (fun ic ->
         let header : string = Marshal.from_channel ic in
         if header = cache_header then
           let entries : (string * file_result) list =
             Marshal.from_channel ic
           in
           List.iter (fun (k, v) -> Hashtbl.replace tbl k v) entries)
   with _ -> ());
  tbl

(* Best-effort save via write-to-temp + rename, entries sorted by key
   so the cache file itself is deterministic. *)
let save_cache path (tbl : (string, file_result) Hashtbl.t) =
  try
    let dir = Filename.dirname path in
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let tmp = path ^ ".tmp" in
    Out_channel.with_open_bin tmp (fun oc ->
        Marshal.to_channel oc cache_header [];
        let entries =
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
          |> List.sort (fun (a, _) (b, _) -> String.compare a b)
        in
        Marshal.to_channel oc entries []);
    Sys.rename tmp path
  with _ -> ()

(* ------------------------------------------------------------------ *)
(* The two-phase run *)

(* compiler-libs' lexer keeps module-level mutable buffers, so the
   parse itself must not run on two domains at once. Everything else
   per file — reading, digesting, cache lookup — runs in parallel;
   warm-cache runs skip the lock entirely. *)
let parse_mutex = Mutex.create ()

let analyze_locked ~file source =
  Mutex.lock parse_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock parse_mutex)
    (fun () -> Engine.analyze ~file source)

let lint_file cache file =
  match read_file file with
  | exception Sys_error m ->
      (None, { fr_findings = []; fr_summary = None; fr_error = Some m }, false)
  | source -> (
      let key = file_key ~file source in
      match Hashtbl.find_opt cache key with
      | Some fr -> (Some key, fr, true)
      | None ->
          let fr =
            match analyze_locked ~file source with
            | Ok { Engine.findings; summary } ->
                { fr_findings = findings;
                  fr_summary = Some summary;
                  fr_error = None }
            | Error m ->
                { fr_findings = []; fr_summary = None; fr_error = Some m }
          in
          (Some key, fr, false))

let run_files ?(allowlist = Allowlist.empty) ?jobs ?cache_dir files =
  let files = Array.of_list files in
  let cache_file =
    match cache_dir with
    | Some dir -> Some (Filename.concat dir ".lint-cache")
    | None -> None
  in
  let cache =
    match cache_file with
    | Some p -> load_cache p
    | None -> Hashtbl.create 16
  in
  (* Phase 1: per-file summaries, index-slotted so results are
     byte-identical for every --jobs (doc/PARALLELISM.md). *)
  let per_file =
    Parallel.Pool.map ?jobs
      (fun i -> lint_file cache files.(i))
      (Array.length files)
  in
  let cache_hits = ref 0 in
  Array.iter
    (fun (key, fr, hit) ->
      if hit then incr cache_hits;
      match key with
      | Some k -> Hashtbl.replace cache k fr
      | None -> ())
    per_file;
  (match cache_file with Some p -> save_cache p cache | None -> ());
  (* Phase 2: link summaries (already in sorted-file order) and run
     the reachability rules, sequentially — it is cheap and keeps the
     output independent of scheduling. *)
  let summaries =
    Array.to_list per_file
    |> List.filter_map (fun (_, fr, _) -> fr.fr_summary)
  in
  let graph = Callgraph.build summaries in
  let reach_findings, reach_notes = Reach.check graph in
  let phase1_findings =
    Array.to_list per_file
    |> List.concat_map (fun (_, fr, _) -> fr.fr_findings)
  in
  let errors =
    Array.to_list per_file
    |> List.filter_map (fun (_, fr, _) -> fr.fr_error)
  in
  let visible fs =
    fs
    |> List.filter (fun f -> not (Allowlist.permits allowlist f))
    |> List.sort Finding.order
  in
  { findings = visible (phase1_findings @ reach_findings);
    notes = visible reach_notes;
    errors;
    warnings = [];
    files_scanned = Array.length files;
    cache_hits = !cache_hits }

let run ?allowlist ?jobs ?cache_dir paths =
  let paths = List.map normalize paths in
  let warnings =
    List.filter_map
      (fun p ->
        if not (Sys.file_exists p) then
          Some (Printf.sprintf "warning: path does not exist: %s" p)
        else if add_tree [] p = [] then
          Some (Printf.sprintf "warning: no .ml files under %s" p)
        else None)
      paths
  in
  let files = collect_ml_files paths in
  let r = run_files ?allowlist ?jobs ?cache_dir files in
  { r with warnings }

(* ------------------------------------------------------------------ *)
(* Reports *)

let report_text r =
  let b = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string b (Format.asprintf "%a" Finding.pp f);
      Buffer.add_char b '\n')
    r.findings;
  List.iter
    (fun f ->
      Buffer.add_string b (Format.asprintf "note: %a" Finding.pp f);
      Buffer.add_char b '\n')
    r.notes;
  Buffer.contents b

(* Cache statistics are deliberately absent: the JSON report must be
   byte-identical between a cold and a warm run. *)
let report_json r =
  let b = Buffer.create 1024 in
  Buffer.add_string b
    (Printf.sprintf
       "{\"version\":2,\"files_scanned\":%d,\"count\":%d,\"findings\":["
       r.files_scanned
       (List.length r.findings));
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Finding.to_json f))
    r.findings;
  Buffer.add_string b "],\"notes\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Finding.to_json f))
    r.notes;
  Buffer.add_string b "]}\n";
  Buffer.contents b

(* SARIF 2.1.0: findings at level "error", cannot-prove notes at level
   "note"; columns are 1-based there, unlike compiler diagnostics. *)
let report_sarif r =
  let b = Buffer.create 4096 in
  let esc = Finding.json_escape in
  Buffer.add_string b
    "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\
     \"version\":\"2.1.0\",\"runs\":[{\"tool\":{\"driver\":{\
     \"name\":\"hydra_lint\",\"rules\":[";
  List.iteri
    (fun i (m : Rules.meta) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"id\":\"%s\",\"shortDescription\":{\"text\":\"%s\"},\
            \"fullDescription\":{\"text\":\"%s\"}}"
           (esc m.id) (esc m.title) (esc m.rationale)))
    Rules.all;
  Buffer.add_string b "]}},\"results\":[";
  let emit i level (f : Finding.t) =
    if i > 0 then Buffer.add_char b ',';
    Buffer.add_string b
      (Printf.sprintf
         "{\"ruleId\":\"%s\",\"level\":\"%s\",\"message\":{\"text\":\"%s\"},\
          \"locations\":[{\"physicalLocation\":{\"artifactLocation\":\
          {\"uri\":\"%s\"},\"region\":{\"startLine\":%d,\"startColumn\":%d}}}]}"
         (esc f.rule) level (esc f.msg) (esc f.file) f.line (f.col + 1))
  in
  List.iteri (fun i f -> emit i "error" f) r.findings;
  List.iteri
    (fun i f -> emit (i + List.length r.findings) "note" f)
    r.notes;
  Buffer.add_string b "]}]}\n";
  Buffer.contents b
