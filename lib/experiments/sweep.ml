module Task = Rtsched.Task
module Generator = Taskgen.Generator
module Scheme = Hydra.Scheme

type record = {
  group : int;
  norm_util : float;
  bounds : int array;
  outcomes : (Scheme.t * Scheme.outcome) list;
}

type t = {
  n_cores : int;
  per_group : int;
  records : record list;
}

let bounds_of (ts : Task.taskset) =
  let v = Array.make (Array.length ts.sec) 0 in
  Array.iter (fun s -> v.(s.Task.sec_id) <- s.Task.sec_period_max) ts.sec;
  v

(* Metric-name suffix for a scheme: lowercase, underscores for dashes
   ("HYDRA-TMax" -> "hydra_tmax"), matching Fig5's hydra_c/hydra
   labels. *)
let metric_suffix scheme =
  String.map (function '-' -> '_' | c -> Char.lowercase_ascii c)
    (Scheme.name scheme)

let evaluate_one ?policy ?fast ?obs schemes (g : Generator.generated) ~group =
  let ts = g.Generator.taskset in
  let outcomes =
    List.map
      (fun scheme ->
        let outcome =
          Scheme.evaluate ?policy ?fast ?obs scheme ts
            ~rt_assignment:g.Generator.rt_assignment
        in
        (match outcome.Scheme.periods with
        | Some ps ->
            let metric = "sweep.selected_period." ^ metric_suffix scheme in
            Array.iter (fun p -> Hydra_obs.sample obs metric p) ps
        | None -> ());
        (scheme, outcome))
      schemes
  in
  { group; norm_util = Task.normalized_utilization ts;
    bounds = bounds_of ts; outcomes }

let run ?policy ?fast ?config ?(schemes = Scheme.all) ?jobs ?obs ~n_cores
    ~per_group ~seed () =
  Hydra_obs.span obs "sweep.run" @@ fun () ->
  let config =
    Option.value config ~default:(Generator.default_config ~n_cores)
  in
  let rng = Taskgen.Rng.create seed in
  (* Streams are pre-split in linear (group-major) order, so stream i's
     seed — and with it record i — depends only on the parent seed,
     never on worker count or completion order. *)
  let n = config.Generator.util_groups * per_group in
  let streams = Taskgen.Rng.split_n rng n in
  let records =
    Parallel.Pool.map ?obs ?jobs
      (fun i ->
        (* The span runs on the worker domain; the exporter attributes
           it to that domain's trace row. *)
        Hydra_obs.span obs "sweep.item" @@ fun () ->
        let group = i / per_group in
        match Generator.generate config streams.(i) ~group with
        | None ->
            Hydra_obs.incr obs "sweep.tasksets.discarded";
            None
        | Some g ->
            Hydra_obs.incr obs "sweep.tasksets.generated";
            Some (evaluate_one ?policy ?fast ?obs schemes g ~group))
      n
  in
  { n_cores; per_group;
    records = List.filter_map Fun.id (Array.to_list records) }

let group_records t ~group = List.filter (fun r -> r.group = group) t.records

let mean_norm_util records =
  Hydra.Metrics.mean (List.map (fun r -> r.norm_util) records)

let outcome_of record ~scheme = List.assoc scheme record.outcomes

let acceptance records ~scheme =
  let accepted =
    List.length
      (List.filter
         (fun r -> (outcome_of r ~scheme).Scheme.schedulable)
         records)
  in
  Hydra.Metrics.acceptance_ratio ~accepted ~total:(List.length records)

let schedulable_periods record ~scheme =
  let o = outcome_of record ~scheme in
  if o.Scheme.schedulable then o.Scheme.periods else None
