module Task = Rtsched.Task
module Generator = Taskgen.Generator

type task_check = {
  tc_name : string;
  tc_bound : int;
  tc_observed : int;
}

type result = {
  tasksets_checked : int;
  violations : task_check list;
  rt_misses : int;
  mean_tightness : float;
  min_tightness : float;
  tightness_permil_q : (int * int * int * int) option;
  checks : int;
}

let validate_one ?policy ?obs ?sim_fast ~horizon (g : Generator.generated) =
  let ts = g.Generator.taskset in
  let sys =
    Hydra.Analysis.make_system ts ~assignment:g.Generator.rt_assignment
  in
  match Hydra.Period_selection.select ?policy ?obs sys ts.Task.sec with
  | Hydra.Period_selection.Unschedulable -> None
  | Hydra.Period_selection.Schedulable assignments ->
      let n_sec = Array.length ts.Task.sec in
      let periods = Hydra.Period_selection.period_vector assignments ~n_sec in
      let resps = Hydra.Period_selection.resp_vector assignments ~n_sec in
      let built =
        Sim.Scenario.of_taskset ts ~rt_assignment:g.Generator.rt_assignment
          ~policy:Sim.Policy.Semi_partitioned ~sec_periods:periods ()
      in
      let stats =
        Sim.Engine.run ?obs ?fast:sim_fast ~n_cores:ts.Task.n_cores ~horizon
          built.Sim.Scenario.tasks
      in
      let checks =
        Array.to_list ts.Task.sec
        |> List.map (fun (s : Task.sec_task) ->
               { tc_name = s.Task.sec_name;
                 tc_bound = resps.(s.Task.sec_id);
                 tc_observed =
                   Sim.Metrics.max_response stats
                     ~sim_id:built.Sim.Scenario.sec_sim_ids.(s.Task.sec_id) })
      in
      let rt_misses =
        Sim.Metrics.deadline_misses stats
          ~sim_ids:built.Sim.Scenario.rt_sim_ids
      in
      Some (checks, rt_misses)

let run ?policy ?config ?(horizon = 100_000) ?jobs ?obs ?sim_fast ~n_cores
    ~tasksets ~seed () =
  Hydra_obs.span obs "validation.run" @@ fun () ->
  let config =
    Option.value config ~default:(Generator.default_config ~n_cores)
  in
  let rng = Taskgen.Rng.create seed in
  (* Pre-split streams: taskset i is a function of (seed, i) only, so
     generation + simulation parallelize without changing any number. *)
  let streams = Taskgen.Rng.split_n rng tasksets in
  let results =
    Parallel.Pool.map ?obs ?jobs
      (fun i ->
        Hydra_obs.span obs "validation.item" @@ fun () ->
        let group = i mod config.Generator.util_groups in
        match Generator.generate config streams.(i) ~group with
        | None -> None
        | Some g -> validate_one ?policy ?obs ?sim_fast ~horizon g)
      tasksets
  in
  (* Fold in ascending index order — the same accumulation the
     sequential loop performed, so the tightness means are stable. *)
  let all_checks = ref [] in
  let rt_misses = ref 0 in
  let checked = ref 0 in
  Array.iter
    (function
      | None -> ()
      | Some (checks, misses) ->
          incr checked;
          rt_misses := !rt_misses + misses;
          all_checks := checks @ !all_checks)
    results;
  let checks = !all_checks in
  let permil =
    List.filter_map
      (fun c ->
        (* jobs that never completed within the horizon contribute no
           tightness sample; bound 0 cannot happen (WCRT >= wcet >= 1) *)
        if c.tc_observed = 0 then None
        else Some (c.tc_observed * 1000 / c.tc_bound))
      checks
  in
  (* Integer permil samples feed both the report quantiles and (under
     obs) the validation.tightness_permil histogram; sampling happens
     here on the main domain, after the pool joined, in a fixed order. *)
  List.iter (fun p -> Hydra_obs.sample obs "validation.tightness_permil" p)
    permil;
  let tightness =
    List.filter_map
      (fun c ->
        if c.tc_observed = 0 then None
        else Some (float_of_int c.tc_observed /. float_of_int c.tc_bound))
      checks
  in
  let tightness_permil_q =
    match permil with
    | [] -> None
    | _ ->
        let h = Hydra_obs.Histogram.of_list permil in
        Some
          ( Hydra_obs.Histogram.quantile h 0.50,
            Hydra_obs.Histogram.quantile h 0.95,
            Hydra_obs.Histogram.quantile h 0.99,
            match Hydra_obs.Histogram.max_value h with
            | Some m -> m
            | None -> 0 )
  in
  { tasksets_checked = !checked;
    violations = List.filter (fun c -> c.tc_observed > c.tc_bound) checks;
    rt_misses = !rt_misses;
    mean_tightness = Hydra.Metrics.mean tightness;
    min_tightness = List.fold_left min infinity tightness;
    tightness_permil_q;
    checks = List.length checks }

let render ppf r =
  Format.fprintf ppf
    "@[<v>Analysis-vs-simulation validation:@ \
     tasksets simulated: %d (security task checks: %d)@ \
     bound violations: %d%s@ \
     RT deadline misses: %d@ \
     tightness observed/bound: mean %.3f, min %.3f@ @]"
    r.tasksets_checked r.checks
    (List.length r.violations)
    (if r.violations = [] then " (analysis is sound on this sample)"
     else " (BUG: unsound analysis!)")
    r.rt_misses r.mean_tightness r.min_tightness;
  (match r.tightness_permil_q with
  | None -> ()
  | Some (p50, p95, p99, mx) ->
      Format.fprintf ppf
        "tightness quantiles (permil): p50=%d p95=%d p99=%d max=%d@." p50 p95
        p99 mx);
  List.iter
    (fun c ->
      Format.fprintf ppf "VIOLATION %s: observed %d > bound %d@." c.tc_name
        c.tc_observed c.tc_bound)
    r.violations
