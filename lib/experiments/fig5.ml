module Task = Rtsched.Task
module Rng = Taskgen.Rng

type quantiles = { q50 : int; q95 : int; q99 : int; qmax : int }

type scheme_report = {
  label : string;
  periods : int array;
  mean_detect_tripwire : float;
  mean_detect_kmod : float;
  detect_tripwire_q : quantiles option;
  detect_kmod_q : quantiles option;
  undetected : int;
  mean_context_switches : float;
  mean_migrations : float;
  rt_deadline_misses : int;
  sec_deadline_misses : int;
}

type deployment = Tmax | Adapted

type report = {
  trials : int;
  horizon : int;
  deployment : deployment;
  hydra_c : scheme_report;
  hydra : scheme_report;
  detection_speedup_pct : float;
  context_switch_ratio : float;
}

(* One simulated run of the rover under one scheme, with both attacks
   injected; returns (tripwire latency, kmod latency, engine stats). *)
type trial_outcome = {
  lat_tripwire : int option;
  lat_kmod : int option;
  stats : Sim.Engine.stats;
}

let run_one ?overheads ?obs ?sched_log ?sim_fast ~scheme ~ts ~rt_assignment
    ~policy ~periods ~sec_cores ~horizon ~attack_tripwire ~attack_kmod
    ~target_image ~rogue_name () =
  let built =
    Sim.Scenario.of_taskset ts ~rt_assignment ~policy ~sec_periods:periods
      ?sec_cores ()
  in
  (* Fresh stores per run: mutations must not leak across schemes. *)
  let fs = Security.Rover.image_store () in
  let table = Security.Rover.module_table () in
  let fs_checker =
    Security.Integrity_checker.create fs ~n_regions:Security.Rover.image_regions
  in
  let km_checker =
    Security.Kmod_checker.create table ~n_regions:Security.Rover.kmod_regions
  in
  let fs_injector = Security.Intrusion.create () in
  Security.Intrusion.schedule fs_injector ~at:attack_tripwire
    ~label:"shellcode-tamper" (fun () ->
      Security.Integrity_checker.tamper_file fs target_image);
  let km_injector = Security.Intrusion.create () in
  Security.Intrusion.schedule km_injector ~at:attack_kmod
    ~label:"rootkit-insert" (fun () ->
      Security.Kmod_checker.insert_module table
        { Security.Kmod_checker.m_name = rogue_name; m_size = 13337;
          m_addr = 0x7fdead00L; m_signature = "unsigned" });
  let tw_monitor =
    Security.Detection.create
      ~sim_id:built.Sim.Scenario.sec_sim_ids.(Security.Rover.tripwire_sec_id)
      ~wcet:5342
      ~target:
        (Security.Detection.checker_target
           ~n_regions:Security.Rover.image_regions ~injector:fs_injector
           ~check:(Security.Integrity_checker.check_region fs_checker))
  in
  let km_monitor =
    Security.Detection.create
      ~sim_id:built.Sim.Scenario.sec_sim_ids.(Security.Rover.kmod_sec_id)
      ~wcet:223
      ~target:
        (Security.Detection.checker_target
           ~n_regions:Security.Rover.kmod_regions ~injector:km_injector
           ~check:(Security.Kmod_checker.check_region km_checker))
  in
  let tw_sim_id = built.Sim.Scenario.sec_sim_ids.(Security.Rover.tripwire_sec_id)
  and km_sim_id = built.Sim.Scenario.sec_sim_ids.(Security.Rover.kmod_sec_id) in
  let on_execute =
    Security.Detection.combine_hooks
      [ Security.Detection.on_execute tw_monitor;
        Security.Detection.on_execute km_monitor ]
  in
  (* Release-to-finish latency per scheme and monitor class (no-ops
     without obs). *)
  let on_finish =
    Security.Detection.combine_finish_hooks
      [ Security.Detection.on_finish_latency obs
          ~monitor_class:(scheme ^ ".tripwire") ~sim_id:tw_sim_id;
        Security.Detection.on_finish_latency obs
          ~monitor_class:(scheme ^ ".kmod") ~sim_id:km_sim_id ]
  in
  let hooks =
    { Sim.Engine.no_hooks with Sim.Engine.on_execute = Some on_execute;
      Sim.Engine.on_finish = Some on_finish }
  in
  let hooks =
    match sched_log with
    | None -> hooks
    | Some log -> Sim.Event_log.hooks ~base:hooks log
  in
  let stats =
    Sim.Engine.run ?obs ?fast:sim_fast ~hooks ?overheads
      ~n_cores:ts.Task.n_cores ~horizon built.Sim.Scenario.tasks
  in
  Security.Detection.record_detection obs
    ~monitor_class:(scheme ^ ".tripwire") tw_monitor ~attack_at:attack_tripwire;
  Security.Detection.record_detection obs ~monitor_class:(scheme ^ ".kmod")
    km_monitor ~attack_at:attack_kmod;
  let latency monitor attack =
    match Security.Detection.detection_time monitor with
    | Some t -> Some (t - attack)
    | None -> None
  in
  { lat_tripwire = latency tw_monitor attack_tripwire;
    lat_kmod = latency km_monitor attack_kmod;
    stats }

(* p50/p95/p99/max through the same log-bucketed histogram the
   [--metrics-out] snapshot serializes, so both reports agree exactly;
   computed from the outcome list, not from obs, so stdout is
   identical with and without instrumentation. *)
let quantiles_of = function
  | [] -> None
  | vs ->
      let h = Hydra_obs.Histogram.of_list vs in
      Some
        { q50 = Hydra_obs.Histogram.quantile h 0.50;
          q95 = Hydra_obs.Histogram.quantile h 0.95;
          q99 = Hydra_obs.Histogram.quantile h 0.99;
          qmax = (match Hydra_obs.Histogram.max_value h with
                 | Some m -> m
                 | None -> 0) }

let summarize ~label ~periods ~horizon:_ outcomes ~rt_ids ~sec_ids =
  let latencies f =
    List.filter_map (fun o -> Option.map float_of_int (f o)) outcomes
  in
  let int_latencies f = List.filter_map f outcomes in
  let tw = latencies (fun o -> o.lat_tripwire) in
  let km = latencies (fun o -> o.lat_kmod) in
  let undetected =
    List.length
      (List.filter
         (fun o -> o.lat_tripwire = None || o.lat_kmod = None)
         outcomes)
  in
  let mean_of f =
    Hydra.Metrics.mean (List.map (fun o -> float_of_int (f o.stats)) outcomes)
  in
  let misses ids =
    List.fold_left
      (fun acc o -> acc + Sim.Metrics.deadline_misses o.stats ~sim_ids:ids)
      0 outcomes
  in
  { label; periods;
    mean_detect_tripwire = Hydra.Metrics.mean tw;
    mean_detect_kmod = Hydra.Metrics.mean km;
    detect_tripwire_q = quantiles_of (int_latencies (fun o -> o.lat_tripwire));
    detect_kmod_q = quantiles_of (int_latencies (fun o -> o.lat_kmod));
    undetected;
    mean_context_switches =
      mean_of (fun s -> s.Sim.Engine.context_switches);
    mean_migrations = mean_of (fun s -> s.Sim.Engine.migrations);
    rt_deadline_misses = misses rt_ids;
    sec_deadline_misses = misses sec_ids }

let run ?(seed = 42) ?(trials = 35) ?(horizon = 45000) ?(deployment = Tmax)
    ?overheads ?jobs ?obs ?sched_log ?sim_fast () =
  Hydra_obs.span obs "fig5.run" @@ fun () ->
  let ts = Security.Rover.taskset () in
  let rt_assignment = Security.Rover.rt_assignment () in
  let n_sec = Array.length ts.Task.sec in
  let sys = Hydra.Analysis.make_system ts ~assignment:rt_assignment in
  let bounds =
    let v = Array.make n_sec 0 in
    Array.iter (fun s -> v.(s.Task.sec_id) <- s.Task.sec_period_max) ts.Task.sec;
    v
  in
  (* HYDRA-C deployment: selected periods (Algorithm 1) or the bounds. *)
  let hc_periods =
    match deployment with
    | Tmax -> bounds
    | Adapted -> (
        match Hydra.Period_selection.select ?obs sys ts.Task.sec with
        | Hydra.Period_selection.Schedulable a ->
            Hydra.Period_selection.period_vector a ~n_sec
        | Hydra.Period_selection.Unschedulable ->
            failwith "Fig5.run: rover taskset unschedulable under HYDRA-C")
  in
  (* HYDRA deployment: greedy per-core allocation, minimizing or not. *)
  let hy_periods, hy_cores =
    let minimize = deployment = Adapted in
    match Hydra.Baseline_hydra.allocate ?obs ~minimize sys ts.Task.sec with
    | Hydra.Baseline_hydra.Schedulable allocs ->
        ( Hydra.Baseline_hydra.period_vector allocs ~n_sec,
          Hydra.Baseline_hydra.core_vector allocs ~n_sec )
    | Hydra.Baseline_hydra.Unschedulable ->
        failwith "Fig5.run: rover taskset unschedulable under HYDRA"
  in
  let rng = Rng.create seed in
  (* One pre-split stream per trial (attack times and targets), so a
     trial's draws are fixed by its index alone and the trials can run
     on any number of domains with identical outcomes. *)
  let streams = Rng.split_n rng trials in
  let trial i =
    Hydra_obs.span obs "fig5.trial" @@ fun () ->
    let stream = streams.(i) in
    let attack_tripwire = Rng.int_in stream 1000 15000 in
    let attack_kmod = Rng.int_in stream 1000 15000 in
    let target_image =
      Printf.sprintf "img_%04d.raw"
        (Rng.int stream Security.Rover.image_regions)
    in
    let rogue_name =
      Printf.sprintf "rk_hook_%04x" (Rng.int stream 0xFFFF)
    in
    let common ?sched_log ~scheme ~policy ~periods ~sec_cores () =
      run_one ?overheads ?obs ?sched_log ?sim_fast ~scheme ~ts ~rt_assignment
        ~policy ~periods ~sec_cores ~horizon ~attack_tripwire ~attack_kmod
        ~target_image ~rogue_name ()
    in
    (* The schedule log captures trial 0's HYDRA-C run only: one
       deterministic writer no matter how trials are spread over
       domains. *)
    let sched_log = if i = 0 then sched_log else None in
    ( common ?sched_log ~scheme:"hydra_c"
        ~policy:Sim.Policy.Semi_partitioned ~periods:hc_periods
        ~sec_cores:None (),
      common ~scheme:"hydra" ~policy:Sim.Policy.Fully_partitioned
        ~periods:hy_periods ~sec_cores:(Some hy_cores) () )
  in
  let results = Parallel.Pool.map ?obs ?jobs trial trials in
  (* Last trial first, matching the original accumulation order: the
     float means must not move with [jobs]. *)
  let outcomes_c = List.rev_map fst (Array.to_list results)
  and outcomes_h = List.rev_map snd (Array.to_list results) in
  let n_rt = Array.length ts.Task.rt in
  let rt_ids = Array.init n_rt (fun i -> i) in
  let sec_ids = Array.init n_sec (fun j -> n_rt + j) in
  let hydra_c =
    summarize ~label:"HYDRA-C" ~periods:hc_periods ~horizon outcomes_c
      ~rt_ids ~sec_ids
  in
  let hydra =
    summarize ~label:"HYDRA" ~periods:hy_periods ~horizon outcomes_h
      ~rt_ids ~sec_ids
  in
  (* Speedup of the mean latency, averaged over the two attack kinds
     (ratio of means — a per-trial ratio average is unstable when a
     HYDRA latency happens to be tiny). *)
  let speedup mean_c mean_h =
    if mean_h > 0.0 then Some ((mean_h -. mean_c) /. mean_h *. 100.0)
    else None
  in
  let speedups =
    List.filter_map
      (fun f -> f ())
      [ (fun () ->
          speedup hydra_c.mean_detect_tripwire hydra.mean_detect_tripwire);
        (fun () -> speedup hydra_c.mean_detect_kmod hydra.mean_detect_kmod) ]
  in
  { trials; horizon; deployment; hydra_c; hydra;
    detection_speedup_pct = Hydra.Metrics.mean speedups;
    context_switch_ratio =
      hydra_c.mean_context_switches /. hydra.mean_context_switches }

let render ppf r =
  let row (s : scheme_report) =
    [ s.label;
      String.concat "/" (Array.to_list (Array.map string_of_int s.periods));
      Table_render.float_cell s.mean_detect_tripwire;
      Table_render.float_cell s.mean_detect_kmod;
      string_of_int s.undetected;
      Table_render.float_cell s.mean_context_switches;
      Table_render.float_cell s.mean_migrations;
      string_of_int s.rt_deadline_misses;
      string_of_int s.sec_deadline_misses ]
  in
  let deployment_name =
    match r.deployment with Tmax -> "T_max" | Adapted -> "adapted"
  in
  Table_render.table ppf
    ~title:
      (Printf.sprintf
         "Fig. 5 (rover, %d trials, %d ms horizon, %s periods): detection \
          latency and context switches"
         r.trials r.horizon deployment_name)
    ~header:
      [ "scheme"; "periods(tw/km)"; "detect-tw(ms)"; "detect-km(ms)";
        "undet"; "ctx-switch"; "migrations"; "rt-miss"; "sec-miss" ]
    ~rows:[ row r.hydra_c; row r.hydra ];
  let quantile_line (s : scheme_report) =
    let cell = function
      | None -> "-"
      | Some q ->
          Printf.sprintf "p50=%d p95=%d p99=%d max=%d" q.q50 q.q95 q.q99
            q.qmax
    in
    Format.fprintf ppf
      "detection latency quantiles (%s): tripwire %s | kmod %s@." s.label
      (cell s.detect_tripwire_q) (cell s.detect_kmod_q)
  in
  quantile_line r.hydra_c;
  quantile_line r.hydra;
  Format.fprintf ppf
    "detection speedup (HYDRA-C over HYDRA): %s   (paper: 19.05%%)@."
    (Table_render.pct r.detection_speedup_pct);
  Format.fprintf ppf
    "context-switch ratio (HYDRA-C / HYDRA): %.2fx (paper: 1.75x)@."
    r.context_switch_ratio
