(** Analysis-vs-simulation cross-validation.

    For randomly generated tasksets that HYDRA-C declares schedulable,
    simulate the semi-partitioned schedule with the selected periods
    (synchronous release — the analysis' critical-instant pattern) and
    compare every security task's maximum observed response time
    against its analytical WCRT. Soundness demands
    [observed <= bound] everywhere; the gap distribution measures the
    analysis' pessimism (the quantity behind the Fig. 7a divergence
    discussed in EXPERIMENTS.md). RT tasks are additionally checked
    for deadline misses. *)

type task_check = {
  tc_name : string;
  tc_bound : int;  (** analytical WCRT *)
  tc_observed : int;  (** max simulated response *)
}

type result = {
  tasksets_checked : int;
  violations : task_check list;  (** observed > bound — must be empty *)
  rt_misses : int;  (** simulated RT deadline misses — must be 0 *)
  mean_tightness : float;
      (** mean of observed/bound over all checked security tasks;
          1.0 = exact analysis, lower = more pessimism *)
  min_tightness : float;
  tightness_permil_q : (int * int * int * int) option;
      (** (p50, p95, p99, max) of observed/bound in permil, read from a
          {!Hydra_obs.Histogram} over the same integer samples the
          [validation.tightness_permil] metric records; [None] when no
          security job completed *)
  checks : int;  (** individual task checks performed *)
}

val run :
  ?policy:Hydra.Analysis.carry_in_policy -> ?config:Taskgen.Generator.config ->
  ?horizon:int -> ?jobs:int -> ?obs:Hydra_obs.t -> ?sim_fast:bool ->
  n_cores:int -> tasksets:int -> seed:int -> unit -> result
(** Generates [tasksets] tasksets spread over the utilization groups
    and validates each schedulable one over [horizon] ticks (default
    100000). [jobs] (default {!Parallel.Pool.default_jobs}[ ()])
    simulates tasksets on that many domains; the result is identical
    for every [jobs] value (doc/PARALLELISM.md). [obs] wraps the run in
    a [validation.run] span and each taskset in a [validation.item]
    span, forwards to the analysis and simulator underneath, and
    samples every observed/bound ratio into the
    [validation.tightness_permil] histogram (doc/OBSERVABILITY.md).
    [sim_fast] (default [true]) selects the skip-ahead simulation
    engine; [false] (the CLI's [--naive-sim]) runs the reference
    engine — bit-identical results either way (doc/SIMULATOR.md). *)

val render : Format.formatter -> result -> unit
