(** One-shot Markdown report: regenerates every artifact (tables,
    figures, ablations, validation) at a chosen scale and writes a
    self-contained Markdown document with the outputs in fenced code
    blocks — the automation behind
    [hydra-experiments report --out report.md]. *)

type scale = {
  sc_seed : int;
  sc_trials : int;  (** rover trials (paper: 35) *)
  sc_per_group : int;  (** tasksets per utilization group (paper: 250) *)
  sc_cores : int list;  (** core counts to sweep (paper: [2; 4]) *)
  sc_validate_tasksets : int;  (** 0 disables the validation section *)
}

val default_scale : scale
(** seed 42, 35 trials, 50 per group, cores [2; 4], 50 validation
    tasksets — a few minutes of compute. *)

val generate : ?jobs:int -> ?obs:Hydra_obs.t -> scale -> Buffer.t
(** Runs everything and renders the document. [jobs] (default
    {!Parallel.Pool.default_jobs}[ ()]) is passed to every
    sweep-shaped regeneration; the document is identical for any
    value (doc/PARALLELISM.md). [obs] is likewise forwarded everywhere
    and never changes the document (doc/OBSERVABILITY.md). *)

val write : ?jobs:int -> ?obs:Hydra_obs.t -> scale -> path:string -> unit
(** [generate] to a file. @raise Sys_error on I/O failure. *)
