module Task = Rtsched.Task
module Generator = Taskgen.Generator
module Rng = Taskgen.Rng
module Scheme = Hydra.Scheme

let groups = List.init 10 (fun g -> g)

(* Generate one batch of tasksets per group with a private stream per
   taskset, pre-split in group-major order (same convention as Sweep)
   so the batch is identical for any [jobs]. *)
let generate_batch ?jobs ?obs config ~seed ~per_group =
  let rng = Rng.create seed in
  let n = List.length groups * per_group in
  let streams = Rng.split_n rng n in
  Parallel.Pool.map ?obs ?jobs
    (fun i ->
      let group = i / per_group in
      Option.map
        (fun g -> (group, g))
        (Generator.generate config streams.(i) ~group))
    n
  |> Array.to_list |> List.filter_map Fun.id

let hydra_c_outcome ?policy ?obs (g : Generator.generated) =
  Scheme.evaluate ?policy ?obs Scheme.Hydra_c g.Generator.taskset
    ~rt_assignment:g.Generator.rt_assignment

let distance_of (g : Generator.generated) (o : Scheme.outcome) =
  match o.Scheme.periods with
  | Some periods when o.Scheme.schedulable ->
      let ts = g.Generator.taskset in
      let bounds = Array.make (Array.length ts.Task.sec) 0 in
      Array.iter
        (fun s -> bounds.(s.Task.sec_id) <- s.Task.sec_period_max)
        ts.Task.sec;
      Some (Hydra.Metrics.normalized_distance_to_bound ~periods ~bounds)
  | Some _ | None -> None

let run_carry_in ?jobs ?obs ppf ~seed ~per_group ~n_cores =
  Hydra_obs.span obs "ablation.carry_in" @@ fun () ->
  (* Keep hp-sets small so the exhaustive Eq. 8 stays affordable. *)
  let config =
    { (Generator.default_config ~n_cores) with
      Generator.sec_count = (2, 2 * n_cores) }
  in
  let batch = generate_batch ?jobs ?obs config ~seed ~per_group in
  let evaluate policy =
    Parallel.Pool.map_list ?obs ?jobs
      (fun (_, g) -> hydra_c_outcome ~policy ?obs g)
      batch
  in
  let top = evaluate Hydra.Analysis.Top_delta in
  let exh = evaluate Hydra.Analysis.Exhaustive in
  let accepted l =
    List.length (List.filter (fun o -> o.Scheme.schedulable) l)
  in
  let mean_distance outcomes =
    Hydra.Metrics.mean
      (List.filter_map
         (fun ((_, g), o) -> distance_of g o)
         (List.combine batch outcomes))
  in
  let diverging =
    List.length
      (List.filter
         (fun (a, b) -> a.Scheme.schedulable <> b.Scheme.schedulable)
         (List.combine top exh))
  in
  Table_render.table ppf
    ~title:
      (Printf.sprintf
         "Ablation X1 (M=%d, %d tasksets): carry-in handling in Eq. 8"
         n_cores (List.length batch))
    ~header:[ "policy"; "accepted"; "mean distance" ]
    ~rows:
      [ [ "top-delta"; string_of_int (accepted top);
          Table_render.float_cell (mean_distance top) ];
        [ "exhaustive"; string_of_int (accepted exh);
          Table_render.float_cell (mean_distance exh) ] ];
  Format.fprintf ppf
    "tasksets where the polynomial bound changes the verdict: %d@." diverging

let run_partition ?jobs ?obs ppf ~seed ~per_group ~n_cores =
  Hydra_obs.span obs "ablation.partition" @@ fun () ->
  let heuristics =
    [ Rtsched.Partition.Best_fit; Rtsched.Partition.First_fit;
      Rtsched.Partition.Worst_fit ]
  in
  let rows =
    List.map
      (fun h ->
        let config =
          { (Generator.default_config ~n_cores) with
            Generator.partition_heuristic = h }
        in
        let batch = generate_batch ?jobs ?obs config ~seed ~per_group in
        let outcomes =
          Parallel.Pool.map_list ?obs ?jobs
            (fun (_, g) -> hydra_c_outcome ?obs g)
            batch
        in
        let accepted =
          List.length (List.filter (fun o -> o.Scheme.schedulable) outcomes)
        in
        [ Rtsched.Partition.heuristic_name h;
          string_of_int (List.length batch); string_of_int accepted;
          Table_render.float_cell
            (Hydra.Metrics.acceptance_ratio ~accepted
               ~total:(List.length batch)) ])
      heuristics
  in
  Table_render.table ppf
    ~title:
      (Printf.sprintf
         "Ablation X2 (M=%d): RT partitioning heuristic vs HYDRA-C acceptance"
         n_cores)
    ~header:[ "heuristic"; "generated"; "accepted"; "ratio" ] ~rows

let run_priority_order ?jobs ?obs ppf ~seed ~per_group ~n_cores =
  Hydra_obs.span obs "ablation.priority_order" @@ fun () ->
  let config = Generator.default_config ~n_cores in
  let batch = generate_batch ?jobs ?obs config ~seed ~per_group in
  let rows =
    List.map
      (fun ordering ->
        let outcomes =
          Parallel.Pool.map_list ?obs ?jobs
            (fun (_, (g : Generator.generated)) ->
              let ts = g.Generator.taskset in
              let sec' = Hydra.Priority_assignment.apply ordering ts.Task.sec in
              let o =
                Scheme.evaluate ?obs Scheme.Hydra_c
                  { ts with Task.sec = sec' }
                  ~rt_assignment:g.Generator.rt_assignment
              in
              (g, o))
            batch
        in
        let accepted =
          List.length
            (List.filter (fun (_, o) -> o.Scheme.schedulable) outcomes)
        in
        let mean_distance =
          Hydra.Metrics.mean
            (List.filter_map (fun (g, o) -> distance_of g o) outcomes)
        in
        [ Hydra.Priority_assignment.ordering_name ordering;
          string_of_int accepted; Table_render.float_cell mean_distance ])
      Hydra.Priority_assignment.all_orderings
  in
  Table_render.table ppf
    ~title:
      (Printf.sprintf
         "Ablation X3 (M=%d, %d tasksets): security priority order under \
          Algorithm 1"
         n_cores (List.length batch))
    ~header:[ "priority order"; "accepted"; "mean distance" ] ~rows

let run_hydra_variants ?jobs ?obs ppf ~seed ~per_group ~n_cores =
  Hydra_obs.span obs "ablation.hydra_variants" @@ fun () ->
  let config = Generator.default_config ~n_cores in
  let batch = generate_batch ?jobs ?obs config ~seed ~per_group in
  let bounds_of (ts : Task.taskset) =
    let v = Array.make (Array.length ts.Task.sec) 0 in
    Array.iter (fun s -> v.(s.Task.sec_id) <- s.Task.sec_period_max) ts.Task.sec;
    v
  in
  (* Evaluate one variant: (accepted, mean distance of the accepted). *)
  let evaluate label run =
    let results =
      Parallel.Pool.map_list ?obs ?jobs
        (fun (_, (g : Generator.generated)) ->
          let ts = g.Generator.taskset in
          let n_sec = Array.length ts.Task.sec in
          match run g with
          | None -> None
          | Some periods ->
              Some
                (Hydra.Metrics.normalized_distance_to_bound ~periods:
                   (Array.init n_sec (fun i -> periods.(i)))
                   ~bounds:(bounds_of ts)))
        batch
    in
    let accepted = List.filter_map (fun x -> x) results in
    [ label; string_of_int (List.length accepted);
      Table_render.float_cell (Hydra.Metrics.mean accepted) ]
  in
  let sys_of (g : Generator.generated) =
    Hydra.Analysis.make_system g.Generator.taskset
      ~assignment:g.Generator.rt_assignment
  in
  let n_sec_of (g : Generator.generated) =
    Array.length g.Generator.taskset.Task.sec
  in
  let hydra_greedy g =
    match
      Hydra.Baseline_hydra.allocate ?obs ~minimize:true (sys_of g)
        g.Generator.taskset.Task.sec
    with
    | Hydra.Baseline_hydra.Schedulable allocs ->
        Some (Hydra.Baseline_hydra.period_vector allocs ~n_sec:(n_sec_of g))
    | Hydra.Baseline_hydra.Unschedulable -> None
  in
  let hydra_coordinated g =
    match
      Hydra.Baseline_hydra.allocate_coordinated ?obs (sys_of g)
        g.Generator.taskset.Task.sec
    with
    | Hydra.Baseline_hydra.Schedulable allocs ->
        Some (Hydra.Baseline_hydra.period_vector allocs ~n_sec:(n_sec_of g))
    | Hydra.Baseline_hydra.Unschedulable -> None
  in
  let hydra_c g =
    match
      Hydra.Period_selection.select ?obs (sys_of g)
        g.Generator.taskset.Task.sec
    with
    | Hydra.Period_selection.Schedulable a ->
        Some (Hydra.Period_selection.period_vector a ~n_sec:(n_sec_of g))
    | Hydra.Period_selection.Unschedulable -> None
  in
  Table_render.table ppf
    ~title:
      (Printf.sprintf
         "Ablation X5 (M=%d, %d tasksets): HYDRA variants vs HYDRA-C"
         n_cores (List.length batch))
    ~header:[ "variant"; "accepted"; "mean distance" ]
    ~rows:
      [ evaluate "HYDRA (greedy)" hydra_greedy;
        evaluate "HYDRA-coordinated" hydra_coordinated;
        evaluate "HYDRA-C" hydra_c ];
  (* Paired comparison on the tasksets both HYDRA-C and the
     coordinated variant schedule (the honest Fig. 7b-style number). *)
  let paired =
    Parallel.Pool.map_list ?obs ?jobs
      (fun (_, (g : Generator.generated)) ->
        match (hydra_c g, hydra_coordinated g) with
        | Some ours, Some other ->
            Some
              (Hydra.Metrics.mean_normalized_difference ~ours ~other
                 ~bounds:(bounds_of g.Generator.taskset))
        | (Some _ | None), _ -> None)
      batch
    |> List.filter_map Fun.id
  in
  Format.fprintf ppf
    "paired HYDRA-C vs HYDRA-coordinated difference (positive = HYDRA-C \
     shorter): %s over %d common tasksets@."
    (Table_render.float_cell (Hydra.Metrics.mean paired))
    (List.length paired)

let run_overheads ?jobs ?obs ppf ~seed ~trials =
  Hydra_obs.span obs "ablation.overheads" @@ fun () ->
  let costs = [ (0, 0); (1, 2); (5, 10); (10, 20); (25, 50) ] in
  let rows =
    List.map
      (fun (dispatch_cost, migration_cost) ->
        let overheads =
          { Sim.Engine.dispatch_cost; migration_cost }
        in
        let r = Fig5.run ~seed ~trials ~overheads ?jobs ?obs () in
        [ Printf.sprintf "%d/%d" dispatch_cost migration_cost;
          Table_render.pct r.Fig5.detection_speedup_pct;
          Printf.sprintf "%.2fx" r.Fig5.context_switch_ratio;
          string_of_int
            (r.Fig5.hydra_c.Fig5.rt_deadline_misses
            + r.Fig5.hydra.Fig5.rt_deadline_misses);
          string_of_int
            (r.Fig5.hydra_c.Fig5.sec_deadline_misses
            + r.Fig5.hydra.Fig5.sec_deadline_misses) ])
      costs
  in
  Table_render.table ppf
    ~title:
      (Printf.sprintf
         "Ablation X4 (rover, %d trials): dispatch/migration overhead (ms) \
          vs HYDRA-C advantage"
         trials)
    ~header:
      [ "cost d/m"; "detect speedup"; "cs ratio"; "rt misses"; "sec misses" ]
    ~rows

let run_all ?jobs ?obs ppf ~seed ~per_group ~cores =
  List.iter
    (fun n_cores ->
      run_carry_in ?jobs ?obs ppf ~seed ~per_group ~n_cores;
      run_partition ?jobs ?obs ppf ~seed ~per_group ~n_cores;
      run_priority_order ?jobs ?obs ppf ~seed ~per_group ~n_cores;
      run_hydra_variants ?jobs ?obs ppf ~seed ~per_group ~n_cores)
    cores;
  (* 35 trials as in Fig. 5 — fewer makes the paired speedup noisy. *)
  run_overheads ?jobs ?obs ppf ~seed ~trials:35
