type scale = {
  sc_seed : int;
  sc_trials : int;
  sc_per_group : int;
  sc_cores : int list;
  sc_validate_tasksets : int;
}

let default_scale =
  { sc_seed = 42; sc_trials = 35; sc_per_group = 50; sc_cores = [ 2; 4 ];
    sc_validate_tasksets = 50 }

let fenced buf render =
  let inner = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer inner in
  render ppf;
  Format.pp_print_flush ppf ();
  Buffer.add_string buf "```\n";
  Buffer.add_string buf (String.trim (Buffer.contents inner));
  Buffer.add_string buf "\n```\n\n"

let heading buf level title =
  Buffer.add_string buf (String.make level '#');
  Buffer.add_char buf ' ';
  Buffer.add_string buf title;
  Buffer.add_string buf "\n\n"

let para buf text =
  Buffer.add_string buf text;
  Buffer.add_string buf "\n\n"

let generate ?jobs ?obs scale =
  Hydra_obs.span obs "report.generate" @@ fun () ->
  let buf = Buffer.create 8192 in
  heading buf 1 "HYDRA-C experiment report";
  para buf
    (Printf.sprintf
       "Regenerated with seed %d: %d rover trials, %d tasksets per \
        utilization group, core counts {%s}. See EXPERIMENTS.md for the \
        paper-vs-measured discussion; this document is the raw regeneration."
       scale.sc_seed scale.sc_trials scale.sc_per_group
       (String.concat ", " (List.map string_of_int scale.sc_cores)));

  heading buf 2 "Tables 1-3";
  fenced buf (fun ppf -> Tables.render_all ppf ());

  heading buf 2 "Fig. 5 — rover intrusion detection";
  para buf "T_max deployment (the paper's demo configuration):";
  let fig5 =
    Fig5.run ~seed:scale.sc_seed ~trials:scale.sc_trials ?jobs ?obs ()
  in
  fenced buf (fun ppf -> Fig5.render ppf fig5);
  para buf "Adapted-period deployment (each scheme's own selection):";
  let fig5a =
    Fig5.run ~seed:scale.sc_seed ~trials:scale.sc_trials
      ~deployment:Fig5.Adapted ?jobs ?obs ()
  in
  fenced buf (fun ppf -> Fig5.render ppf fig5a);

  heading buf 2 "Figs. 6 and 7 — design-space exploration";
  List.iter
    (fun n_cores ->
      let sweep =
        Sweep.run ~n_cores ~per_group:scale.sc_per_group ~seed:scale.sc_seed
          ?jobs ?obs ()
      in
      heading buf 3 (Printf.sprintf "M = %d" n_cores);
      fenced buf (fun ppf ->
          Fig6.render ppf (Fig6.of_sweep sweep);
          let fig7 = Fig7.of_sweep sweep in
          Fig7.render_a ppf fig7;
          Fig7.render_b ppf fig7))
    scale.sc_cores;

  heading buf 2 "Ablations";
  fenced buf (fun ppf ->
      Ablation.run_all ?jobs ?obs ppf ~seed:scale.sc_seed
        ~per_group:(max 1 (scale.sc_per_group / 5))
        ~cores:scale.sc_cores);

  if scale.sc_validate_tasksets > 0 then begin
    heading buf 2 "Analysis-vs-simulation validation";
    fenced buf (fun ppf ->
        List.iter
          (fun n_cores ->
            let result =
              Validation.run ~n_cores ~tasksets:scale.sc_validate_tasksets
                ~seed:scale.sc_seed ?jobs ?obs ()
            in
            Format.fprintf ppf "M = %d:@." n_cores;
            Validation.render ppf result)
          scale.sc_cores)
  end;
  buf

let write ?jobs ?obs scale ~path =
  let buf = generate ?jobs ?obs scale in
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (Buffer.contents buf))
