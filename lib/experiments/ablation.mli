(** Ablations over the design choices DESIGN.md calls out:

    - {b X1 carry-in policy}: literal Eq. 8 (exhaustive subset
      maximum) vs the polynomial Guan-style top-(M-1)-delta bound.
      Run on tasksets with few security tasks so Eq. 8 is affordable;
      reports acceptance and mean period distance for both, and how
      often the cheap bound loses a taskset.
    - {b X2 RT partitioning heuristic}: best-fit (the paper's choice)
      vs first-fit and worst-fit, measured by HYDRA-C acceptance.
    - {b X3 security priority order}: the paper takes designer-given
      priorities; this ablation compares the generated order against
      WCET-ascending, WCET-descending and T^max-ascending
      (rate-monotonic-like) orders under Algorithm 1.

    Every entry point takes [?jobs] (default
    {!Parallel.Pool.default_jobs}[ ()]): taskset generation and
    evaluation run on that many domains with output identical for any
    value — see doc/PARALLELISM.md. Every entry point also takes
    [?obs]: each ablation runs inside its own [ablation.*] span and
    forwards [obs] to the analyses it exercises
    (doc/OBSERVABILITY.md). *)

val run_carry_in :
  ?jobs:int -> ?obs:Hydra_obs.t -> Format.formatter -> seed:int ->
  per_group:int -> n_cores:int -> unit

val run_partition :
  ?jobs:int -> ?obs:Hydra_obs.t -> Format.formatter -> seed:int ->
  per_group:int -> n_cores:int -> unit

val run_priority_order :
  ?jobs:int -> ?obs:Hydra_obs.t -> Format.formatter -> seed:int ->
  per_group:int -> n_cores:int -> unit

val run_hydra_variants :
  ?jobs:int -> ?obs:Hydra_obs.t -> Format.formatter -> seed:int ->
  per_group:int -> n_cores:int -> unit
(** {b X5 HYDRA charitable reading}: the paper describes HYDRA
    (DATE'18) as greedy per-task period minimization, which starves
    low-priority tasks. This ablation adds HYDRA-coordinated
    (allocation at the bounds, then per-core Algorithm-1 minimization)
    and compares acceptance and mean period distance of HYDRA,
    HYDRA-coordinated and HYDRA-C — quantifying how much of HYDRA-C's
    Fig. 7a advantage comes from migration vs from the smarter
    minimization discipline. *)

val run_overheads :
  ?jobs:int -> ?obs:Hydra_obs.t -> Format.formatter -> seed:int ->
  trials:int -> unit
(** {b X4 overhead sensitivity}: the paper assumes context-switch and
    migration overheads are negligible (Sec. 3). This ablation re-runs
    the rover detection experiment charging increasing per-dispatch and
    per-migration costs, showing when HYDRA-C's migration-based
    advantage erodes and whether RT tasks stay safe (they do — security
    overheads burn slack only). *)

val run_all :
  ?jobs:int -> ?obs:Hydra_obs.t -> Format.formatter -> seed:int ->
  per_group:int -> cores:int list -> unit
