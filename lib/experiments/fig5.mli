(** Fig. 5: the rover case study. For each trial, both intrusions of
    Sec. 5.1.3 — (i) shellcode tampering the image data-store, caught
    by the Tripwire task, and (ii) a rootkit module insertion, caught
    by the kernel-module checker — are injected at random instants
    into two simulations of the same rover taskset: HYDRA-C
    (semi-partitioned, periods from Algorithm 1) and HYDRA
    (fully-partitioned, greedy per-core periods). Fig. 5a reports the
    detection latencies, Fig. 5b the context switches over the run.
    Attack instants are shared between the two schemes within a trial
    (paired comparison). *)

type quantiles = { q50 : int; q95 : int; q99 : int; qmax : int }
(** p50/p95/p99/max of a latency sample, read from a
    {!Hydra_obs.Histogram} built over the trials (so the printed
    quantiles agree exactly with the [--metrics-out] snapshot's). *)

type scheme_report = {
  label : string;
  periods : int array;  (** selected periods by [sec_id] *)
  mean_detect_tripwire : float;  (** mean detection latency, ticks (ms) *)
  mean_detect_kmod : float;
  detect_tripwire_q : quantiles option;
      (** over detected trials; [None] when none detected *)
  detect_kmod_q : quantiles option;
  undetected : int;  (** attacks not detected within the horizon *)
  mean_context_switches : float;
  mean_migrations : float;
  rt_deadline_misses : int;  (** total across trials; must be 0 *)
  sec_deadline_misses : int;
}

type deployment =
  | Tmax
      (** both schemes run the security tasks at their designer bounds
          [T_s^max] — Fig. 5 then isolates the migration-vs-pinning
          effect the rover demo showcases; the paper's reported
          detection magnitudes (≈ 1.7 x T_max in cycle counts) match
          this deployment *)
  | Adapted
      (** each scheme deploys the periods its own analysis selects
          (Algorithm 1 for HYDRA-C, greedy per-core minimization for
          HYDRA) — the full pipeline, reported as a variant in
          EXPERIMENTS.md *)

type report = {
  trials : int;
  horizon : int;
  deployment : deployment;
  hydra_c : scheme_report;
  hydra : scheme_report;
  detection_speedup_pct : float;
      (** mean over trials and both attack kinds of
          [(hydra - hydra_c) / hydra * 100]; the paper reports 19.05 *)
  context_switch_ratio : float;
      (** HYDRA-C / HYDRA mean context switches; the paper reports 1.75 *)
}

val run :
  ?seed:int -> ?trials:int -> ?horizon:int -> ?deployment:deployment ->
  ?overheads:Sim.Engine.overheads -> ?jobs:int -> ?obs:Hydra_obs.t ->
  ?sched_log:Sim.Event_log.t -> ?sim_fast:bool -> unit -> report
(** Defaults: seed 42, 35 trials (as the paper), horizon 45000 ticks
    (the paper's 45 s observation window), deployment {!Tmax}, zero
    overheads (the paper's assumption; non-zero values feed the X4
    ablation). [jobs] (default {!Parallel.Pool.default_jobs}[ ()])
    simulates trials on that many domains; each trial owns a pre-split
    RNG stream, so the report is identical for any [jobs] value
    (doc/PARALLELISM.md). [obs] wraps the experiment in a [fig5.run]
    span and each trial in a [fig5.trial] span, forwards to the
    simulator's schedule-event counters, and samples per-scheme,
    per-monitor-class latency histograms
    ([security.latency.*], [security.detection_latency.*] — see
    doc/OBSERVABILITY.md). [sched_log] records the complete per-job
    schedule of {e trial 0's HYDRA-C run} (a single deterministic
    writer regardless of [jobs]) for Chrome-trace export — the CLI's
    [--trace-out] backend. [sim_fast] (default [true]) selects the
    skip-ahead simulation engine; [false] (the CLI's [--naive-sim])
    runs the reference engine instead — bit-identical results either
    way (doc/SIMULATOR.md). *)

val render : Format.formatter -> report -> unit
