(** The shared design-space sweep behind Figs. 6, 7a and 7b: generate
    Table-3 tasksets per base-utilization group and evaluate all four
    schemes on each. Figures are pure aggregations of the resulting
    records, so one sweep regenerates all three. *)

type record = {
  group : int;  (** base-utilization group, 0..groups-1 *)
  norm_util : float;  (** U / M of the generated taskset *)
  bounds : int array;  (** T_s^max per security task, indexed by sec_id *)
  outcomes : (Hydra.Scheme.t * Hydra.Scheme.outcome) list;
      (** evaluation of each scheme on this taskset *)
}

type t = {
  n_cores : int;
  per_group : int;  (** tasksets attempted per group *)
  records : record list;
}

val run :
  ?policy:Hydra.Analysis.carry_in_policy -> ?fast:bool ->
  ?config:Taskgen.Generator.config -> ?schemes:Hydra.Scheme.t list ->
  ?jobs:int -> ?obs:Hydra_obs.t -> n_cores:int -> per_group:int ->
  seed:int -> unit -> t
(** Runs the sweep. [fast] (default [true]) selects the bit-identical
    optimized analysis path for HYDRA-C ({!Hydra.Scheme.evaluate},
    doc/PERFORMANCE.md); each worker builds its own
    {!Hydra.Analysis.system} per taskset, so the per-system workload
    cache is never shared across domains. [config] defaults to
    [Taskgen.Generator.default_config ~n_cores]; [schemes] defaults to
    all four. Each taskset gets its own RNG stream, pre-split in
    generation order ({!Taskgen.Rng.split_n}), so results are
    independent of evaluation order. Groups where the generator
    exhausts its attempts contribute fewer records.

    [jobs] (default {!Parallel.Pool.default_jobs}[ ()]) evaluates
    tasksets on that many domains; the records are {b identical} for
    every [jobs] value — [jobs:1] is the plain sequential loop — per
    the determinism contract in doc/PARALLELISM.md.

    [obs] wraps the sweep in a [sweep.run] span, each taskset in a
    [sweep.item] span (attributed to the worker domain that ran it),
    counts [sweep.tasksets.generated] / [sweep.tasksets.discarded] and
    forwards to every analysis underneath; it never affects the
    records (doc/OBSERVABILITY.md). *)

val group_records : t -> group:int -> record list

val mean_norm_util : record list -> float
(** Mean x-coordinate of a group's records. *)

val acceptance : record list -> scheme:Hydra.Scheme.t -> float
(** Fraction of records the scheme found schedulable. *)

val schedulable_periods :
  record -> scheme:Hydra.Scheme.t -> int array option
(** The scheme's period vector on this record, when schedulable. *)
