type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
            0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
            0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let seed = bits64 t in
  { state = seed }

(* Explicit ascending loop: the split order (hence each stream's seed)
   must not depend on Array.init's unspecified evaluation order. *)
let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  if n = 0 then [||]
  else begin
    let a = Array.make n (split t) in
    for i = 1 to n - 1 do
      a.(i) <- split t
    done;
    a
  end

(* Uniform int in [0, bound) by rejection on 62 random bits (the top
   of the 64-bit output; 62 so the value is a non-negative OCaml int),
   avoiding modulo bias. *)
let top62_max = (1 lsl 62) - 1

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
    let v = r mod bound in
    if r - v > top62_max - bound + 1 then draw () else v
  in
  draw ()

let int_in t lo hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits -> [0, 1) with full double precision. *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits /. 9007199254740992.0 *. bound

let float_in t lo hi = lo +. float t (hi -. lo)

let bool t = Int64.logand (bits64 t) 1L = 1L

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
