(** Deterministic pseudo-random number generation (splitmix64).

    Every experiment in this repository takes an explicit seed so that
    the committed EXPERIMENTS.md numbers are reproducible bit-for-bit.
    Splitmix64 is small, fast, passes BigCrush, and — unlike
    [Stdlib.Random] — has a stable algorithm we control. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from a 63-bit seed. *)

val copy : t -> t
(** Independent copy with identical future output. *)

val split : t -> t
(** Derives a statistically independent child generator; the parent
    advances by one step. Used to give each taskset/trial its own
    stream so per-trial work is order-independent. *)

val split_n : t -> int -> t array
(** [split_n t n] is [n] successive {!split}s of [t], in ascending
    index order. Pre-splitting the streams of an indexed workload up
    front — before any parallel evaluation starts — fixes stream
    [i]'s seed as a function of the parent seed and [i] alone, so the
    assignment is independent of worker count and completion order
    (the determinism contract of {!Parallel.Pool}; see
    doc/PARALLELISM.md). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]; requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in the inclusive range [\[lo, hi\]];
    requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [\[lo, hi)]. *)

val bool : t -> bool
(** Fair coin. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
