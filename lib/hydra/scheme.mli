(** Unified front-end over the four compared schemes (Sec. 5.2.3):
    HYDRA-C (this paper), HYDRA (DATE'18 greedy best-fit + period
    minimization), HYDRA-TMax (best-fit, periods at bounds) and
    GLOBAL-TMax (everything global, periods at bounds). *)

type t =
  | Hydra_c
  | Hydra
  | Hydra_tmax
  | Global_tmax

val all : t list
(** The four schemes, HYDRA-C first. *)

val name : t -> string
(** Display name matching the paper ("HYDRA-C", "HYDRA", ...). *)

type outcome = {
  schedulable : bool;
  periods : int array option;
      (** selected periods indexed by [sec_id]; [None] if
          unschedulable *)
  sec_cores : int array option;
      (** pinned core per security task (partitioned schemes only) *)
}

val evaluate :
  ?policy:Analysis.carry_in_policy -> ?fast:bool -> ?obs:Hydra_obs.t -> t ->
  Rtsched.Task.taskset -> rt_assignment:int array -> outcome
(** Evaluates a scheme on a taskset whose RT part is already
    partitioned ([rt_assignment] is ignored by [Global_tmax]).
    [fast] (default [true]) selects the optimized, bit-identical
    {!Period_selection} path for [Hydra_c]; the other schemes ignore
    it (doc/PERFORMANCE.md).
    [obs] forwards to the underlying analyses, which record their
    fixed-point and search metrics (doc/OBSERVABILITY.md). *)
