(** HYDRA-C worst-case response-time analysis for semi-partitioned
    security tasks (paper Sec. 4.1-4.4).

    The job under analysis belongs to a security task that may run on
    any core but only below every RT task and below the
    higher-priority security tasks. Its response time is the least
    fixed point of Eq. 7,
    [x = floor(Omega(x) / M) + C_s], where [Omega] (Eq. 6) adds
    {ul
    {- per-core RT interference via the synchronous-release workload
       bound (Lemma 1, Eqs. 2-3) — RT tasks are pinned, so every core
       contributes independently;}
    {- non-carry-in interference of every higher-priority security
       task (Eq. 2, 5);}
    {- carry-in increments (Eq. 4) for at most [M - 1] of them
       (Lemma 2).}}

    Which tasks carry in is unknown, so Eq. 8 maximizes over all
    admissible carry-in sets. {!Exhaustive} implements Eq. 8 literally
    (exponential in [min (M-1, |hp|)]); {!Top_delta} is the standard
    Guan-style polynomial upper bound that, at every fixed-point
    iterate, grants carry-in to the [M - 1] tasks with the largest
    interference increment. [Top_delta] dominates every individual
    carry-in choice, hence is a safe upper bound on the Eq. 8 value
    (property-tested in [test/test_analysis.ml]).

    Both policies also have a {b fast path} ([~fast:true]) that is
    bit-identical to the reference implementation but avoids redundant
    work: a per-system RT-workload cache, branch-and-bound carry-in
    enumeration for [Exhaustive], and warm-started fixed points — the
    design and soundness arguments live in doc/PERFORMANCE.md, the
    equivalence gate in [test/test_analysis.ml]. *)

type time = Rtsched.Task.time

type cache
(** Per-system memo of the raw per-core RT workload vector per window
    (the [x -> W_m(x)] table behind [analysis.cache.{hit,miss}]).
    Mutable but observationally pure: entries are a function of the
    frozen RT partition and the window only. *)

val fresh_cache : unit -> cache
(** An empty cache — needed when building a {!system} literally rather
    than through {!make_system}. *)

type cache_stats = {
  cs_entries : int;  (** memoized windows currently held *)
  cs_capacity : int;  (** entry bound; [0] = unbounded *)
  cs_hits : int;
  cs_misses : int;
  cs_evictions : int;  (** flush-on-full resets performed *)
  cs_refreshes : int;  (** per-core columns rewritten by {!refresh_rt_cores} *)
}
(** Hygiene counters of one system's workload cache — the per-system
    view behind the global [analysis.cache.{hit,miss}] registry
    counters (a long-lived daemon holds many systems on one
    registry; doc/SERVER.md). *)

type system = {
  n_cores : int;
  rt_cores : Rtsched.Task.rt_task list array;
      (** RT tasks pinned to each core, index = core *)
  cache : cache;
      (** RT-workload memo. {b Not} domain-safe: a [system] value must
          not be shared across domains (the parallel sweep builds one
          per taskset inside the worker, so this holds by
          construction — doc/PARALLELISM.md). *)
}
(** The fixed, partitioned RT side of the platform. *)

type hp_sec = {
  hp_task : Rtsched.Task.sec_task;
  hp_period : time;  (** period already chosen for this task *)
  hp_resp : time;  (** its WCRT under that period *)
}
(** A higher-priority security task whose period and response time are
    already known (Algorithm 1 processes priorities top-down, so this
    is always available). *)

type carry_in_policy =
  | Top_delta  (** polynomial Guan-style bound — the default *)
  | Exhaustive  (** literal Eq. 8 maximum over carry-in subsets *)

val make_system :
  Rtsched.Task.taskset -> assignment:int array -> system
(** Builds the per-core RT view from a partitioning assignment (with a
    fresh, empty workload cache). *)

val cache_stats : system -> cache_stats
(** Current hygiene counters of this system's workload cache. *)

val set_cache_capacity : system -> int -> unit
(** Bound the cache to at most [capacity] memoized windows ([<= 0]
    restores the unbounded default). Enforcement is flush-on-full: the
    insert that would exceed the bound resets the whole table first — a
    deterministic policy (no hash-order victim selection), so bounded
    and unbounded runs still compute bit-identical results, only the
    amount of recomputation differs. Lowering the capacity below the
    current entry count flushes immediately. A long-lived daemon sets
    this so resident tenants cannot grow their caches without limit
    (doc/SERVER.md; the bound is unit-tested in
    test/test_analysis.ml). *)

val refresh_rt_cores :
  system -> Rtsched.Task.rt_task list array -> changed:bool array ->
  system
(** [refresh_rt_cores sys new_cores ~changed] is a system with the RT
    partition replaced by [new_cores], {b keeping} the workload cache:
    for every memoized window, only the columns of cores flagged in
    [changed] are recomputed (counted in [cs_refreshes]); unchanged
    cores' workloads are reused as-is. The caller guarantees that
    [new_cores.(m)] equals [sys]'s core [m] wherever
    [changed.(m) = false]. This is the incremental-reconfiguration
    entry point of the admission-control server: an RT task arriving
    on (or leaving) one core invalidates one column, not the whole
    cache (doc/SERVER.md). The returned system shares the cache (and
    its single-domain ownership rules) with [sys].
    @raise Invalid_argument if either array's length differs from
    [sys.n_cores] — a core-count change is structural; use
    {!make_system}. *)

val rt_interference : system -> job_wcet:time -> time -> time
(** Total RT interference term of Eq. 6 for a window of length [x]
    (reference path; the fast path computes the same value through the
    cache). *)

val response_time :
  ?policy:carry_in_policy -> ?fast:bool -> ?warm:time ->
  ?obs:Hydra_obs.t -> system -> hp:hp_sec list ->
  wcet:time -> limit:time -> time option
(** [response_time sys ~hp ~wcet ~limit] is the WCRT of a security job
    of WCET [wcet] below the given higher-priority security tasks, or
    [None] if the fixed point exceeds [limit] (Sec. 4.4 stops at
    [T_s^max] since the task is then trivially unschedulable).

    [fast] (default [false]) selects the optimized implementation:
    cached RT workloads, and for [Exhaustive] a branch-and-bound
    enumeration (delta-negative tasks dropped from carry-in candidacy,
    dominated subsets skipped against the top-delta upper bound, id
    bitmasks instead of list membership). The returned value — and the
    [None] verdict — are {b bit-identical} to the reference path for
    both policies (equivalence-gated in [test/test_analysis.ml];
    design in doc/PERFORMANCE.md). Only the Hydra_obs work counters
    differ, since less work is done.

    [warm] (fast path only, default [0]) is a {b caller-guaranteed
    lower bound} on the true response time — e.g. the response under a
    previously analyzed, larger, period vector (interference is
    monotone in hp periods). The fixed point starts there instead of
    at [wcet]; passing a value above the true response is unsound.

    [obs] records the Eq. 7/8 instrumentation:
    [analysis.fixpoint.iterations] plus converged/diverged tallies,
    [analysis.carry_in.subsets] (Exhaustive: subsets enumerated),
    the [analysis.carry_in.set_size] distribution, and on the fast
    path [analysis.cache.{hit,miss}] and
    [analysis.prune.{carry_in_dropped,subsets_skipped}]
    (doc/OBSERVABILITY.md). *)

val response_time_fixed_subset :
  ?obs:Hydra_obs.t -> system -> hp:hp_sec list ->
  carry_in_ids:int list -> wcet:time -> limit:time -> time option
(** Eq. 7 under one {b fixed} carry-in set (tasks named by [sec_id]):
    one term of the Eq. 8 maximum. Exposed so tests can check that
    [Top_delta] upper-bounds every admissible subset and that
    [Exhaustive] equals the subset maximum. *)

val carry_in_subsets : 'a list -> max_size:int -> 'a list list
(** All sublists of size [<= max_size] (order-preserving); exposed for
    the Eq. 8 tests and the X1 ablation. Generation is linear in the
    output size (sizes are threaded, not recomputed — see
    [test/test_analysis.ml] for the count law). *)
