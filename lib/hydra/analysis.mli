(** HYDRA-C worst-case response-time analysis for semi-partitioned
    security tasks (paper Sec. 4.1-4.4).

    The job under analysis belongs to a security task that may run on
    any core but only below every RT task and below the
    higher-priority security tasks. Its response time is the least
    fixed point of Eq. 7,
    [x = floor(Omega(x) / M) + C_s], where [Omega] (Eq. 6) adds
    {ul
    {- per-core RT interference via the synchronous-release workload
       bound (Lemma 1, Eqs. 2-3) — RT tasks are pinned, so every core
       contributes independently;}
    {- non-carry-in interference of every higher-priority security
       task (Eq. 2, 5);}
    {- carry-in increments (Eq. 4) for at most [M - 1] of them
       (Lemma 2).}}

    Which tasks carry in is unknown, so Eq. 8 maximizes over all
    admissible carry-in sets. {!Exhaustive} implements Eq. 8 literally
    (exponential in [min (M-1, |hp|)]); {!Top_delta} is the standard
    Guan-style polynomial upper bound that, at every fixed-point
    iterate, grants carry-in to the [M - 1] tasks with the largest
    interference increment. [Top_delta] dominates every individual
    carry-in choice, hence is a safe upper bound on the Eq. 8 value
    (property-tested in [test/test_analysis.ml]). *)

type time = Rtsched.Task.time

type system = {
  n_cores : int;
  rt_cores : Rtsched.Task.rt_task list array;
      (** RT tasks pinned to each core, index = core *)
}
(** The fixed, partitioned RT side of the platform. *)

type hp_sec = {
  hp_task : Rtsched.Task.sec_task;
  hp_period : time;  (** period already chosen for this task *)
  hp_resp : time;  (** its WCRT under that period *)
}
(** A higher-priority security task whose period and response time are
    already known (Algorithm 1 processes priorities top-down, so this
    is always available). *)

type carry_in_policy =
  | Top_delta  (** polynomial Guan-style bound — the default *)
  | Exhaustive  (** literal Eq. 8 maximum over carry-in subsets *)

val make_system :
  Rtsched.Task.taskset -> assignment:int array -> system
(** Builds the per-core RT view from a partitioning assignment. *)

val rt_interference : system -> job_wcet:time -> time -> time
(** Total RT interference term of Eq. 6 for a window of length [x]. *)

val response_time :
  ?policy:carry_in_policy -> ?obs:Hydra_obs.t -> system -> hp:hp_sec list ->
  wcet:time -> limit:time -> time option
(** [response_time sys ~hp ~wcet ~limit] is the WCRT of a security job
    of WCET [wcet] below the given higher-priority security tasks, or
    [None] if the fixed point exceeds [limit] (Sec. 4.4 stops at
    [T_s^max] since the task is then trivially unschedulable).

    [obs] records the Eq. 7/8 instrumentation:
    [analysis.fixpoint.iterations] plus converged/diverged tallies,
    [analysis.carry_in.subsets] (Exhaustive: subsets enumerated) and
    the [analysis.carry_in.set_size] distribution
    (doc/OBSERVABILITY.md). *)

val carry_in_subsets : 'a list -> max_size:int -> 'a list list
(** All sublists of size [<= max_size] (order-preserving); exposed for
    the Eq. 8 tests and the X1 ablation. *)
