(** The HYDRA baseline (Hasan et al., DATE 2018) — the state of the art
    this paper compares against (Sec. 5.1.2, 5.2.3).

    HYDRA statically partitions security tasks: walking them from
    highest to lowest priority, each task is placed on the core that
    gives it the maximum monitoring frequency, i.e. the smallest
    per-core response time (computed with the exact uniprocessor TDA
    against that core's RT tasks and previously placed security
    tasks), and its period is set to that response time. Because every
    previously placed task has higher priority, placing a new task
    never disturbs them — but the greedy period minimization of
    high-priority tasks starves low-priority ones, which is exactly
    the weakness HYDRA-C addresses.

    With [minimize = false] this module implements HYDRA-TMax: same
    best-fit allocation, but every period stays at [T_s^max]. *)

type time = Rtsched.Task.time

type alloc = {
  sec : Rtsched.Task.sec_task;
  core : int;  (** core the task is pinned to *)
  period : time;  (** selected period ([resp] if minimizing, else bound) *)
  resp : time;  (** per-core WCRT under the final configuration *)
}

type result =
  | Schedulable of alloc list  (** in priority order, highest first *)
  | Unschedulable  (** some task fits on no core within its bound *)

type criterion =
  | Min_response
      (** the core giving the smallest response time = the highest
          achievable monitoring frequency (HYDRA's criterion) *)
  | Max_utilization
      (** classic bin-packing best-fit: the feasible core with the
          highest security-task utilization so far. With periods pinned
          at the bounds HYDRA's frequency criterion degenerates (every
          feasible core yields the same period), so HYDRA-TMax uses
          this criterion. *)

val allocate :
  ?criterion:criterion -> ?obs:Hydra_obs.t -> minimize:bool ->
  Analysis.system -> Rtsched.Task.sec_task array -> result
(** [allocate ~minimize sys secs] runs the greedy allocation;
    [minimize = true] is HYDRA (default criterion [Min_response]),
    [false] is HYDRA-TMax (default criterion [Max_utilization]). *)

val allocate_coordinated :
  ?criterion:criterion -> ?obs:Hydra_obs.t -> Analysis.system ->
  Rtsched.Task.sec_task array -> result
(** HYDRA-coordinated — a charitable reading of the DATE'18 baseline
    used by the X5 ablation: first allocate every task with its period
    at the bound (best-fit, default criterion [Max_utilization]), then
    minimize periods {e per core} with the Algorithm-1 discipline
    (highest priority first, constrained by every lower-priority task
    on the same core staying schedulable). Unlike {!allocate}
    [~minimize:true], the greedy period of a high-priority task can no
    longer starve its core-mates, so acceptance equals HYDRA-TMax's by
    construction while the periods are still adapted. *)

val core_response_time :
  ?obs:Hydra_obs.t -> Analysis.system -> core:int -> placed:alloc list ->
  Rtsched.Task.sec_task -> time option
(** Response time the given security task would have on [core], below
    that core's RT tasks and the already-[placed] security tasks
    pinned there. Exposed for tests. *)

val period_vector : alloc list -> n_sec:int -> time array
(** Periods re-indexed by [sec_id]. *)

val core_vector : alloc list -> n_sec:int -> int array
(** Core assignment re-indexed by [sec_id]. *)
