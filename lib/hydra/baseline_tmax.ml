module Rta_global = Rtsched.Rta_global
module Task = Rtsched.Task

let flatten ts =
  Rta_global.of_taskset ts ~sec_period:(fun s -> s.Task.sec_period_max)

let global_tmax_schedulable ?obs ts =
  Rta_global.all_schedulable ?obs ~n_cores:ts.Task.n_cores (flatten ts)

let global_response_times ?obs ts =
  let gtasks = flatten ts in
  let resps = Rta_global.response_times ?obs ~n_cores:ts.Task.n_cores gtasks in
  List.map2 (fun (g : Rta_global.gtask) r -> (g.g_name, r)) gtasks resps
