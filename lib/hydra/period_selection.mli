(** Period selection for security tasks — paper Algorithms 1 and 2.

    Algorithm 1: start with every security period at its bound
    [T_s^max] and compute WCRTs top-down; if some task already misses
    [T_s^max] the set is unschedulable. Otherwise walk the security
    tasks from highest to lowest priority and, for each, find the
    minimum period in [\[R_s, T_s^max\]] (Algorithm 2: binary search
    collecting feasible candidates) that keeps every lower-priority
    security task schedulable ([R_j <= T_j^max]); then refresh the
    lower-priority response times and continue.

    Invariant (why Algorithm 2 may seed its feasible set with
    [T_s^max]): when task [s] is processed, the previous search
    guaranteed all of [lp(s)] schedulable with the now-fixed
    higher-priority periods and everything else at its bound, so the
    candidate [T_s = T_s^max] is always feasible. *)

type time = Rtsched.Task.time

type assignment = {
  sec : Rtsched.Task.sec_task;
  period : time;  (** the selected period [T_s^*] *)
  resp : time;  (** WCRT under the final period vector, [<= period] *)
}

type result =
  | Schedulable of assignment list  (** in priority order, highest first *)
  | Unschedulable
      (** some security task misses [T_s^max] even with every period
          at its bound (Algorithm 1, line 2) *)

val select :
  ?policy:Analysis.carry_in_policy -> ?fast:bool -> ?warm0:time array ->
  ?hints:time array -> ?bounds_out:time array -> ?obs:Hydra_obs.t ->
  Analysis.system -> Rtsched.Task.sec_task array -> result
(** Runs Algorithm 1 on the security tasks (any order; they are sorted
    by priority internally).

    [fast] (default [true]) runs the copy-free incremental search: no
    per-probe array copies (a scratch row committed only on feasible
    probes), warm-started fixed points (the previous feasible probe's
    responses are valid lower bounds — feasible candidates decrease
    and interference is monotone in hp periods), and the fast
    {!Analysis.response_time} underneath. [~fast:false] is the
    reference implementation; both return {b bit-identical} results
    (equivalence-gated in [test/test_analysis.ml]; design and proof
    sketches in doc/PERFORMANCE.md). The Algorithm 2 probe sequence is
    the same on both paths, so the search counters agree too.

    [warm0] (fast path only) supplies per-task warm floors, indexed by
    [sec_id], for the {e initial} all-bounds pass (Algorithm 1,
    lines 1-4) — each entry must be a sound lower bound on that task's
    all-bounds response time, e.g. the [bounds_out] of a previous
    select on a system with no more interference (interference is
    monotone: RT or security arrivals only grow it). Results are
    bit-identical with or without [warm0]; only fixed-point iterations
    are saved. The admission-control server threads these across
    reconfigurations (doc/SERVER.md).

    [hints] (fast path only) supplies per-task starting points for the
    Algorithm 2 search, indexed by [sec_id] ([0] or out-of-range:
    no hint) — typically the periods of a previous selection on a
    nearby system. Feasibility is monotone in the candidate period, so
    the minimum feasible period is a threshold: a hint only changes
    the {e probe order} (exponential search around the hint instead of
    binary search over the whole [\[R_s, T_s^max\]] range), never the
    result, and any value is sound. Probes drop from O(log range) to
    O(log distance-moved) per task — O(1) when the solution did not
    move. Note the probe-order change means the search counters (and
    the exact probe sequence) differ from the naive path when [hints]
    is given.

    [bounds_out], when present (length [>=] max [sec_id] + 1), is
    filled — on both paths — with the all-bounds responses of
    Algorithm 1 lines 1-4, indexed by [sec_id]; untouched when the
    result is [Unschedulable] (the pass did not complete). These are
    exactly the values a later [warm0] may reuse.

    [obs] counts the Algorithm 2 probes
    ([period_selection.search.steps], plus the per-task
    [period_selection.search.steps_per_task] distribution) and the
    schedulable/unschedulable outcome tallies (doc/OBSERVABILITY.md). *)

val min_feasible_period :
  ?policy:Analysis.carry_in_policy -> ?obs:Hydra_obs.t -> Analysis.system ->
  sorted:Rtsched.Task.sec_task array -> periods:time array ->
  resps:time array -> index:int -> time
(** Algorithm 2 for the task at [index] of the priority-sorted array,
    given the current period and response-time vectors (positions
    [< index] fixed, positions [>= index] at their bounds). Exposed for
    unit tests. *)

val period_vector : assignment list -> n_sec:int -> time array
(** Periods re-indexed by [sec_id] (length [n_sec]). *)

val resp_vector : assignment list -> n_sec:int -> time array
(** Response times re-indexed by [sec_id]. *)
