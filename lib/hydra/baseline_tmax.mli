(** The GLOBAL-TMax baseline (Sec. 5.2.3): every task — RT and
    security — is scheduled by global fixed-priority scheduling with
    security periods pinned at [T_s^max]; schedulability is decided by
    the Guan-style global RTA of {!Rtsched.Rta_global}. This isolates
    the cost of abandoning the legacy partitioning of RT tasks. *)

val global_tmax_schedulable : ?obs:Hydra_obs.t -> Rtsched.Task.taskset -> bool
(** Whether the flattened taskset (RT priorities above security
    priorities, periods at the bounds) passes global RTA: [R_r <= D_r]
    for every RT task and [R_s <= T_s^max] for every security task. *)

val global_response_times :
  ?obs:Hydra_obs.t -> Rtsched.Task.taskset ->
  (string * Rtsched.Task.time option) list
(** Per-task response times (task name, WCRT if schedulable) in global
    priority order — for inspection and tests. *)
