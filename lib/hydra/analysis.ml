module Task = Rtsched.Task
module Workload = Rtsched.Workload

type time = Task.time

type system = {
  n_cores : int;
  rt_cores : Task.rt_task list array;
}

type hp_sec = {
  hp_task : Task.sec_task;
  hp_period : time;
  hp_resp : time;
}

type carry_in_policy = Top_delta | Exhaustive

let make_system (ts : Task.taskset) ~assignment =
  { n_cores = ts.n_cores;
    rt_cores = Rtsched.Partition.cores_of_assignment ts assignment }

let rt_interference sys ~job_wcet x =
  Array.fold_left
    (fun acc core -> acc + Workload.rt_core_interference ~job_wcet core x)
    0 sys.rt_cores

(* Non-carry-in and carry-in interference of one higher-priority
   security task on a window of length [x]. *)
let sec_interference_nc ~job_wcet h x =
  Workload.interference ~job_wcet ~window:x
    (Workload.non_carry_in ~wcet:h.hp_task.Task.sec_wcet ~period:h.hp_period x)

let sec_interference_ci ~job_wcet h x =
  Workload.interference ~job_wcet ~window:x
    (Workload.carry_in ~wcet:h.hp_task.Task.sec_wcet ~period:h.hp_period
       ~resp:h.hp_resp x)

let top_k_sum k l =
  let sorted = List.sort (fun a b -> compare b a) l in
  let rec take n acc = function
    | [] -> acc
    | _ when n <= 0 -> acc
    | v :: rest -> take (n - 1) (acc + v) rest
  in
  take k 0 sorted

(* Eq. 6 with the Guan-style carry-in bound: every hp security task
   contributes its non-carry-in interference, and the M-1 largest
   carry-in increments are added on top. *)
let omega_top_delta sys ~hp ~job_wcet x =
  let rt = rt_interference sys ~job_wcet x in
  let nc_total, deltas =
    List.fold_left
      (fun (nc_acc, deltas) h ->
        let nc = sec_interference_nc ~job_wcet h x in
        let ci = sec_interference_ci ~job_wcet h x in
        (nc_acc + nc, max 0 (ci - nc) :: deltas))
      (0, []) hp
  in
  rt + nc_total + top_k_sum (sys.n_cores - 1) deltas

(* Eq. 6 for one fixed carry-in set (tasks are compared by id). *)
let omega_fixed_sets sys ~hp ~carry_in_ids ~job_wcet x =
  let rt = rt_interference sys ~job_wcet x in
  List.fold_left
    (fun acc h ->
      let i =
        if List.mem h.hp_task.Task.sec_id carry_in_ids then
          sec_interference_ci ~job_wcet h x
        else sec_interference_nc ~job_wcet h x
      in
      acc + i)
    rt hp

(* Eq. 7 fixed-point iteration from x = C_s for a monotone Omega.
   [iters] accumulates the iteration count locally (an int ref costs
   nothing measurable); the caller reports it to [obs] once. *)
let fixpoint ~iters ~n_cores ~wcet ~limit omega =
  let rec iter x =
    if x > limit then None
    else begin
      incr iters;
      let x' = (omega x / n_cores) + wcet in
      if x' = x then Some x else iter x'
    end
  in
  if wcet > limit then None else iter wcet

let record_fixpoint obs iters r =
  Hydra_obs.add obs "analysis.fixpoint.iterations" !iters;
  match r with
  | Some _ -> Hydra_obs.incr obs "analysis.fixpoint.converged"
  | None -> Hydra_obs.incr obs "analysis.fixpoint.diverged"

let carry_in_subsets items ~max_size =
  let rec go = function
    | [] -> [ [] ]
    | x :: rest ->
        let without = go rest in
        let with_x =
          List.filter_map
            (fun s -> if List.length s < max_size then Some (x :: s) else None)
            without
        in
        without @ with_x
  in
  if max_size <= 0 then [ [] ] else go items

let response_time_top_delta ?obs sys ~hp ~wcet ~limit =
  Hydra_obs.observe obs "analysis.carry_in.set_size"
    (min (sys.n_cores - 1) (List.length hp));
  let iters = ref 0 in
  let r =
    fixpoint ~iters ~n_cores:sys.n_cores ~wcet ~limit
      (omega_top_delta sys ~hp ~job_wcet:wcet)
  in
  record_fixpoint obs iters r;
  r

(* Literal Eq. 8: the WCRT is the maximum over carry-in subsets of the
   per-subset fixed points; the task is unschedulable as soon as one
   subset's iteration exceeds the limit. *)
let response_time_exhaustive ?obs sys ~hp ~wcet ~limit =
  let subsets =
    carry_in_subsets
      (List.map (fun h -> h.hp_task.Task.sec_id) hp)
      ~max_size:(sys.n_cores - 1)
  in
  Hydra_obs.add obs "analysis.carry_in.subsets" (List.length subsets);
  let step acc carry_in_ids =
    match acc with
    | None -> None
    | Some best -> (
        Hydra_obs.observe obs "analysis.carry_in.set_size"
          (List.length carry_in_ids);
        let omega = omega_fixed_sets sys ~hp ~carry_in_ids ~job_wcet:wcet in
        let iters = ref 0 in
        let r = fixpoint ~iters ~n_cores:sys.n_cores ~wcet ~limit omega in
        record_fixpoint obs iters r;
        match r with
        | None -> None
        | Some r -> Some (max best r))
  in
  List.fold_left step (Some wcet) subsets

let response_time ?(policy = Top_delta) ?obs sys ~hp ~wcet ~limit =
  match policy with
  | Top_delta -> response_time_top_delta ?obs sys ~hp ~wcet ~limit
  | Exhaustive -> response_time_exhaustive ?obs sys ~hp ~wcet ~limit
