module Task = Rtsched.Task
module Workload = Rtsched.Workload

type time = Task.time

(* Per-system memo of the raw per-core RT workload vector at each
   window x (doc/PERFORMANCE.md). Keyed on x only: the RT partition is
   frozen for the lifetime of the system value, and
   Workload.rt_core_workload depends on nothing else. The job_wcet
   clamp of Eq. 3 is applied per query, on top of the cached vector.
   The table is plain (not thread-safe) state: a system value must not
   be shared across domains — the sweep builds one per taskset per
   worker, see analysis.mli.

   [c_capacity] bounds the entry count for long-lived systems (the
   admission-control daemon, doc/SERVER.md): 0 means unbounded; a
   positive bound triggers a deterministic flush-on-full eviction
   (the whole table is reset before the insert that would exceed the
   bound — no hash-order-dependent victim choice). The hit/miss/
   eviction/refresh tallies back the {!cache_stats} accessor; the
   [?obs] counters are recorded alongside, they are not a substitute
   (a daemon holds one registry for many tenant systems). *)
type cache = {
  rt_wl : (int, int array) Hashtbl.t;
  mutable c_capacity : int;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_evictions : int;
  mutable c_refreshes : int;
}

let fresh_cache () =
  { rt_wl = Hashtbl.create 64; c_capacity = 0; c_hits = 0; c_misses = 0;
    c_evictions = 0; c_refreshes = 0 }

type cache_stats = {
  cs_entries : int;
  cs_capacity : int;
  cs_hits : int;
  cs_misses : int;
  cs_evictions : int;
  cs_refreshes : int;
}

type system = {
  n_cores : int;
  rt_cores : Task.rt_task list array;
  cache : cache;
}

type hp_sec = {
  hp_task : Task.sec_task;
  hp_period : time;
  hp_resp : time;
}

type carry_in_policy = Top_delta | Exhaustive

let make_system (ts : Task.taskset) ~assignment =
  { n_cores = ts.n_cores;
    rt_cores = Rtsched.Partition.cores_of_assignment ts assignment;
    cache = fresh_cache () }

let cache_stats sys =
  let c = sys.cache in
  { cs_entries = Hashtbl.length c.rt_wl;
    cs_capacity = c.c_capacity;
    cs_hits = c.c_hits;
    cs_misses = c.c_misses;
    cs_evictions = c.c_evictions;
    cs_refreshes = c.c_refreshes }

let set_cache_capacity sys capacity =
  let c = sys.cache in
  c.c_capacity <- max 0 capacity;
  (* Re-establish the bound immediately so a capacity lowered below the
     current size cannot linger over it until the next miss. *)
  if c.c_capacity > 0 && Hashtbl.length c.rt_wl > c.c_capacity then begin
    Hashtbl.reset c.rt_wl;
    c.c_evictions <- c.c_evictions + 1
  end

(* Per-core cache invalidation (doc/SERVER.md): the new partition
   differs from the cached one only on the cores flagged in [changed],
   so every memoized window keeps the unchanged cores' workloads and
   recomputes just the changed columns. Bit-identity is by definition:
   after the refresh every cached vector equals what
   [Workload.rt_workloads new_cores x] would compute from scratch. *)
let refresh_rt_cores sys new_cores ~changed =
  if Array.length new_cores <> sys.n_cores
     || Array.length changed <> sys.n_cores
  then
    invalid_arg
      "Analysis.refresh_rt_cores: core count changed — build a fresh system \
       with make_system instead";
  let c = sys.cache in
  let refreshed = ref 0 in
  Hashtbl.iter
    (fun x wl ->
      for m = 0 to sys.n_cores - 1 do
        if changed.(m) then begin
          wl.(m) <- Workload.rt_core_workload new_cores.(m) x;
          incr refreshed
        end
      done)
    c.rt_wl;
  c.c_refreshes <- c.c_refreshes + !refreshed;
  { sys with rt_cores = new_cores }

let rt_interference sys ~job_wcet x =
  Array.fold_left
    (fun acc core -> acc + Workload.rt_core_interference ~job_wcet core x)
    0 sys.rt_cores

(* Fast-path variant of [rt_interference]: memoized raw per-core
   workloads, clamp applied per call. Bit-identical to the naive term
   because interference = clamp(rt_core_workload core x) on both
   paths. *)
let rt_interference_cached obs sys ~job_wcet x =
  let c = sys.cache in
  let wl =
    match Hashtbl.find_opt c.rt_wl x with
    | Some wl ->
        Hydra_obs.incr obs "analysis.cache.hit";
        c.c_hits <- c.c_hits + 1;
        wl
    | None ->
        Hydra_obs.incr obs "analysis.cache.miss";
        c.c_misses <- c.c_misses + 1;
        if c.c_capacity > 0 && Hashtbl.length c.rt_wl >= c.c_capacity then begin
          (* flush-on-full: deterministic, keeps the table <= capacity *)
          Hashtbl.reset c.rt_wl;
          c.c_evictions <- c.c_evictions + 1;
          Hydra_obs.incr obs "analysis.cache.evicted"
        end;
        let wl = Workload.rt_workloads sys.rt_cores x in
        Hashtbl.add c.rt_wl x wl;
        wl
  in
  let acc = ref 0 in
  for m = 0 to Array.length wl - 1 do
    acc := !acc + Workload.interference ~job_wcet ~window:x wl.(m)
  done;
  !acc

(* Non-carry-in and carry-in interference of one higher-priority
   security task on a window of length [x]. *)
let sec_interference_nc ~job_wcet h x =
  Workload.interference ~job_wcet ~window:x
    (Workload.non_carry_in ~wcet:h.hp_task.Task.sec_wcet ~period:h.hp_period x)

let sec_interference_ci ~job_wcet h x =
  Workload.interference ~job_wcet ~window:x
    (Workload.carry_in ~wcet:h.hp_task.Task.sec_wcet ~period:h.hp_period
       ~resp:h.hp_resp x)

let top_k_sum k l =
  let sorted = List.sort (fun a b -> Int.compare b a) l in
  let rec take n acc = function
    | [] -> acc
    | _ when n <= 0 -> acc
    | v :: rest -> take (n - 1) (acc + v) rest
  in
  take k 0 sorted

(* Eq. 6 with the Guan-style carry-in bound: every hp security task
   contributes its non-carry-in interference, and the M-1 largest
   carry-in increments are added on top. [rt_at] abstracts over the
   naive vs cached RT term so both paths share one definition. *)
let omega_top_delta_with ~rt_at ~n_cores ~hp ~job_wcet x =
  let rt = rt_at ~job_wcet x in
  let nc_total, deltas =
    List.fold_left
      (fun (nc_acc, deltas) h ->
        let nc = sec_interference_nc ~job_wcet h x in
        let ci = sec_interference_ci ~job_wcet h x in
        (nc_acc + nc, max 0 (ci - nc) :: deltas))
      (0, []) hp
  in
  rt + nc_total + top_k_sum (n_cores - 1) deltas

let omega_top_delta sys ~hp ~job_wcet x =
  omega_top_delta_with
    ~rt_at:(fun ~job_wcet x -> rt_interference sys ~job_wcet x)
    ~n_cores:sys.n_cores ~hp ~job_wcet x

(* Eq. 6 for one fixed carry-in set (tasks are compared by id). *)
let omega_fixed_sets sys ~hp ~carry_in_ids ~job_wcet x =
  let rt = rt_interference sys ~job_wcet x in
  List.fold_left
    (fun acc h ->
      let i =
        if List.mem h.hp_task.Task.sec_id carry_in_ids then
          sec_interference_ci ~job_wcet h x
        else sec_interference_nc ~job_wcet h x
      in
      acc + i)
    rt hp

(* Eq. 7 fixed-point iteration for a monotone Omega, started at
   [max wcet start]. [start = 0] (the default) is the textbook
   iteration from x = C_s. Any start in [wcet, lfp] yields the same
   least fixed point and the same convergence verdict: the iterates
   x -> Omega(x)/M + C_s form a monotone chain that cannot cross lfp
   from below without landing on it, and every fixed point reachable
   from a start <= lfp is lfp itself (proof sketch in
   doc/PERFORMANCE.md). [iters] accumulates the iteration count
   locally (an int ref costs nothing measurable); the caller reports
   it to [obs] once. *)
let fixpoint ?(start = 0) ~iters ~n_cores ~wcet ~limit omega =
  let rec iter x =
    if x > limit then None
    else begin
      incr iters;
      let x' = (omega x / n_cores) + wcet in
      if x' = x then Some x else iter x'
    end
  in
  if wcet > limit then None else iter (max wcet start)

let record_fixpoint obs iters r =
  Hydra_obs.add obs "analysis.fixpoint.iterations" !iters;
  match r with
  | Some _ -> Hydra_obs.incr obs "analysis.fixpoint.converged"
  | None -> Hydra_obs.incr obs "analysis.fixpoint.diverged"

let carry_in_subsets items ~max_size =
  (* Sizes are threaded alongside each subset so extending costs O(1);
     the historical version recomputed [List.length s] inside the
     [filter_map], making generation O(n^2) in the subset count. The
     construction (and hence the output order) is unchanged:
     without @ with_x at every level. *)
  let rec go = function
    | [] -> [ (0, []) ]
    | x :: rest ->
        let without = go rest in
        let with_x =
          List.filter_map
            (fun (len, s) ->
              if len < max_size then Some (len + 1, x :: s) else None)
            without
        in
        without @ with_x
  in
  if max_size <= 0 then [ [] ] else List.map snd (go items)

let response_time_top_delta ?obs sys ~hp ~wcet ~limit =
  Hydra_obs.observe obs "analysis.carry_in.set_size"
    (min (sys.n_cores - 1) (List.length hp));
  let iters = ref 0 in
  let r =
    fixpoint ~iters ~n_cores:sys.n_cores ~wcet ~limit
      (omega_top_delta sys ~hp ~job_wcet:wcet)
  in
  record_fixpoint obs iters r;
  r

(* Literal Eq. 8: the WCRT is the maximum over carry-in subsets of the
   per-subset fixed points; the task is unschedulable as soon as one
   subset's iteration exceeds the limit. *)
let response_time_exhaustive ?obs sys ~hp ~wcet ~limit =
  let subsets =
    carry_in_subsets
      (List.map (fun h -> h.hp_task.Task.sec_id) hp)
      ~max_size:(sys.n_cores - 1)
  in
  Hydra_obs.add obs "analysis.carry_in.subsets" (List.length subsets);
  let step acc carry_in_ids =
    match acc with
    | None -> None
    | Some best -> (
        Hydra_obs.observe obs "analysis.carry_in.set_size"
          (List.length carry_in_ids);
        let omega = omega_fixed_sets sys ~hp ~carry_in_ids ~job_wcet:wcet in
        let iters = ref 0 in
        let r = fixpoint ~iters ~n_cores:sys.n_cores ~wcet ~limit omega in
        record_fixpoint obs iters r;
        match r with
        | None -> None
        | Some r -> Some (max best r))
  in
  List.fold_left step (Some wcet) subsets

(* Eq. 7 for one fixed carry-in set; exposed for the property test
   that Top_delta upper-bounds every admissible subset. *)
let response_time_fixed_subset ?obs sys ~hp ~carry_in_ids ~wcet ~limit =
  let iters = ref 0 in
  let r =
    fixpoint ~iters ~n_cores:sys.n_cores ~wcet ~limit
      (omega_fixed_sets sys ~hp ~carry_in_ids ~job_wcet:wcet)
  in
  record_fixpoint obs iters r;
  r

(* ------------------------------------------------------------------ *)
(* Fast path (doc/PERFORMANCE.md). Bit-identical results to the naive
   functions above; only the amount of work differs. *)

let response_time_top_delta_fast ?(warm = 0) ?obs sys ~hp ~wcet ~limit =
  Hydra_obs.observe obs "analysis.carry_in.set_size"
    (min (sys.n_cores - 1) (List.length hp));
  let iters = ref 0 in
  let r =
    fixpoint ~start:warm ~iters ~n_cores:sys.n_cores ~wcet ~limit
      (omega_top_delta_with
         ~rt_at:(fun ~job_wcet x -> rt_interference_cached obs sys ~job_wcet x)
         ~n_cores:sys.n_cores ~hp ~job_wcet:wcet)
  in
  record_fixpoint obs iters r;
  r

(* Branch-and-bound Eq. 8.

   Soundness (proofs in doc/PERFORMANCE.md):

   - Drop criterion: a hp task h whose carry-in workload never exceeds
     its non-carry-in workload (delta_h(x) <= 0 for all x, which holds
     exactly when C_h = 1 or R_h <= C_h) cannot increase any subset's
     fixed point, so it is removed from carry-in candidacy; the naive
     enumeration visits subsets containing h but each is dominated by
     the same subset without h, leaving the maximum unchanged.

   - Upper-bound certificate: omega_top_delta >= omega_fixed_sets for
     every admissible subset at every x (nc + max(0, ci - nc) =
     max(nc, ci) per task, summed over the M-1 largest). Hence if the
     top-delta fixed point converges to r_top, every subset converges
     and the Eq. 8 maximum is <= r_top; if top-delta diverges we fall
     back to the naive enumeration to reproduce its verdict exactly.

   - Prefixed-point skip: for a subset S and the current best b >= wcet,
     if omega_S(b)/M + wcet <= b then the iterates from wcet never
     exceed b, so lfp(S) <= b and S cannot raise the maximum — skipped
     without running the fixed point (counted in
     analysis.prune.subsets_skipped).

   - Warm floor: [warm] must be a caller-guaranteed lower bound on the
     true Eq. 8 value (Period_selection passes the response under the
     previous, larger, feasible candidate period — monotonicity proof
     in doc/PERFORMANCE.md). It only seeds the running maximum, never
     an individual subset's iteration. *)
let response_time_exhaustive_fast ?(warm = 0) ?obs sys ~hp ~wcet ~limit =
  match response_time_top_delta_fast ~warm ?obs sys ~hp ~wcet ~limit with
  | None ->
      (* Top-delta diverged: no convergence certificate for the
         subsets, so reproduce the naive verdict literally. *)
      response_time_exhaustive ?obs sys ~hp ~wcet ~limit
  | Some r_top ->
      let hp_arr = Array.of_list hp in
      let n = Array.length hp_arr in
      let max_size = sys.n_cores - 1 in
      if max_size <= 0 || n = 0 then begin
        (* Only the empty subset: its omega is omega_top_delta (no
           deltas), so its fixed point is r_top itself. *)
        Hydra_obs.add obs "analysis.carry_in.subsets" 1;
        Hydra_obs.observe obs "analysis.carry_in.set_size" 0;
        Some r_top
      end
      else if n > 60 then
        (* Bitmask width guard; unreachable at paper scale. *)
        response_time_exhaustive ?obs sys ~hp ~wcet ~limit
      else begin
        (* Carry-in candidates: tasks whose delta can be positive. *)
        let kept_mask = ref 0 in
        for i = 0 to n - 1 do
          let h = hp_arr.(i) in
          let c = h.hp_task.Task.sec_wcet in
          if c = 1 || h.hp_resp <= c then
            Hydra_obs.incr obs "analysis.prune.carry_in_dropped"
          else kept_mask := !kept_mask lor (1 lsl i)
        done;
        let kept_mask = !kept_mask in
        let omega_mask mask x =
          let acc = ref (rt_interference_cached obs sys ~job_wcet:wcet x) in
          for i = 0 to n - 1 do
            let h = hp_arr.(i) in
            acc :=
              !acc
              + (if mask land (1 lsl i) <> 0 then
                   sec_interference_ci ~job_wcet:wcet h x
                 else sec_interference_nc ~job_wcet:wcet h x)
          done;
          !acc
        in
        let best = ref (max wcet warm) in
        let enumerated = ref 0 in
        let skipped = ref 0 in
        let popcount m =
          let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
          go m 0
        in
        let consider mask =
          let size = popcount mask in
          if size <= max_size then begin
            incr enumerated;
            let b = !best in
            (* r_top bounds every subset's fixed point; if it cannot
               beat the floor, neither can this subset. *)
            if r_top <= b || (omega_mask mask b / sys.n_cores) + wcet <= b
            then incr skipped
            else begin
              Hydra_obs.observe obs "analysis.carry_in.set_size" size;
              let iters = ref 0 in
              let r =
                fixpoint ~iters ~n_cores:sys.n_cores ~wcet ~limit
                  (omega_mask mask)
              in
              record_fixpoint obs iters r;
              match r with
              | Some r -> if r > !best then best := r
              | None ->
                  (* Contradicts the convergence certificate; cannot
                     happen for a monotone omega, but keep the naive
                     verdict authoritative if it ever does. *)
                  assert false
            end
          end
        in
        consider 0;
        let s = ref kept_mask in
        while !s <> 0 do
          consider !s;
          s := (!s - 1) land kept_mask
        done;
        Hydra_obs.add obs "analysis.carry_in.subsets" !enumerated;
        Hydra_obs.add obs "analysis.prune.subsets_skipped" !skipped;
        Some !best
      end

let response_time ?(policy = Top_delta) ?(fast = false) ?(warm = 0) ?obs sys
    ~hp ~wcet ~limit =
  match (policy, fast) with
  | Top_delta, false -> response_time_top_delta ?obs sys ~hp ~wcet ~limit
  | Exhaustive, false -> response_time_exhaustive ?obs sys ~hp ~wcet ~limit
  | Top_delta, true ->
      response_time_top_delta_fast ~warm ?obs sys ~hp ~wcet ~limit
  | Exhaustive, true ->
      response_time_exhaustive_fast ~warm ?obs sys ~hp ~wcet ~limit
