module Task = Rtsched.Task

type time = Task.time

type assignment = {
  sec : Task.sec_task;
  period : time;
  resp : time;
}

type result =
  | Schedulable of assignment list
  | Unschedulable

let hp_list (sorted : Task.sec_task array) periods resps j =
  List.init j (fun i ->
      { Analysis.hp_task = sorted.(i); hp_period = periods.(i);
        hp_resp = resps.(i) })

(* Response time of the task at position [j] given the current period
   vector; [None] when it exceeds T_j^max. *)
let resp_at policy obs sys sorted periods resps j =
  let s = sorted.(j) in
  Analysis.response_time ?policy ?obs sys
    ~hp:(hp_list sorted periods resps j)
    ~wcet:s.Task.sec_wcet ~limit:s.Task.sec_period_max

(* Recompute response times for positions [from..n-1] into a copy of
   [resps]; [None] as soon as some task misses its bound. *)
let recompute_from policy obs sys sorted periods resps ~from =
  let n = Array.length sorted in
  let resps = Array.copy resps in
  let rec go j =
    if j >= n then Some resps
    else
      match resp_at policy obs sys sorted periods resps j with
      | None -> None
      | Some r ->
          resps.(j) <- r;
          go (j + 1)
  in
  go from

(* Is the whole lower-priority suffix schedulable if position [index]
   takes period [candidate]? *)
let candidate_feasible policy obs sys sorted periods resps ~index ~candidate =
  let periods = Array.copy periods in
  periods.(index) <- candidate;
  Option.is_some
    (recompute_from policy obs sys sorted periods resps ~from:(index + 1))

(* Algorithm 2: binary search for the minimum feasible period of the
   task at [index], collecting every feasible probe and returning the
   least one. T_s^max is feasible by the Algorithm 1 invariant. *)
let min_feasible_period_impl policy obs sys ~sorted ~periods ~resps ~index =
  let s = sorted.(index) in
  let tmax = s.Task.sec_period_max in
  let steps = ref 0 in
  let rec search lo hi best =
    if lo > hi then best
    else begin
      incr steps;
      let c = (lo + hi) / 2 in
      if
        candidate_feasible policy obs sys sorted periods resps ~index
          ~candidate:c
      then search lo (c - 1) (min best c)
      else search (c + 1) hi best
    end
  in
  let t_star = search resps.(index) tmax tmax in
  (* Algorithm 2 cost: total probes and the per-task distribution. *)
  Hydra_obs.add obs "period_selection.search.steps" !steps;
  Hydra_obs.observe obs "period_selection.search.steps_per_task" !steps;
  t_star

let min_feasible_period ?policy ?obs sys ~sorted ~periods ~resps ~index =
  min_feasible_period_impl policy obs sys ~sorted ~periods ~resps ~index

let select ?policy ?obs sys secs =
  let sorted = Task.sort_sec_by_priority secs in
  let n = Array.length sorted in
  let periods = Array.map (fun s -> s.Task.sec_period_max) sorted in
  let resps = Array.make n 0 in
  Hydra_obs.add obs "period_selection.tasks" n;
  (* Algorithm 1, lines 1-4: all periods at their bounds. *)
  match recompute_from policy obs sys sorted periods resps ~from:0 with
  | None ->
      Hydra_obs.incr obs "period_selection.unschedulable";
      Unschedulable
  | Some resps0 ->
      Array.blit resps0 0 resps 0 n;
      (* Lines 5-9: minimize periods from highest to lowest priority,
         refreshing the lower-priority response times after each fix. *)
      let rec minimize index =
        if index >= n then ()
        else begin
          let t_star =
            min_feasible_period_impl policy obs sys ~sorted ~periods ~resps
              ~index
          in
          periods.(index) <- t_star;
          (match
             recompute_from policy obs sys sorted periods resps
               ~from:(index + 1)
           with
          | Some updated -> Array.blit updated 0 resps 0 n
          | None ->
              (* Unreachable: t_star was checked feasible (or is the
                 invariant-feasible T_s^max). *)
              assert false);
          minimize (index + 1)
        end
      in
      minimize 0;
      Hydra_obs.incr obs "period_selection.schedulable";
      let assignments =
        List.init n (fun j ->
            { sec = sorted.(j); period = periods.(j); resp = resps.(j) })
      in
      Schedulable assignments

let vector_of field assignments ~n_sec =
  let v = Array.make n_sec 0 in
  List.iter (fun a -> v.(a.sec.Task.sec_id) <- field a) assignments;
  v

let period_vector assignments ~n_sec =
  vector_of (fun a -> a.period) assignments ~n_sec

let resp_vector assignments ~n_sec =
  vector_of (fun a -> a.resp) assignments ~n_sec
