module Task = Rtsched.Task

type time = Task.time

type assignment = {
  sec : Task.sec_task;
  period : time;
  resp : time;
}

type result =
  | Schedulable of assignment list
  | Unschedulable

let hp_list (sorted : Task.sec_task array) periods resps j =
  List.init j (fun i ->
      { Analysis.hp_task = sorted.(i); hp_period = periods.(i);
        hp_resp = resps.(i) })

(* Response time of the task at position [j] given the current period
   vector; [None] when it exceeds T_j^max. *)
let resp_at policy obs sys sorted periods resps j =
  let s = sorted.(j) in
  Analysis.response_time ?policy ?obs sys
    ~hp:(hp_list sorted periods resps j)
    ~wcet:s.Task.sec_wcet ~limit:s.Task.sec_period_max

(* Recompute response times for positions [from..n-1] into a copy of
   [resps]; [None] as soon as some task misses its bound. *)
let recompute_from policy obs sys sorted periods resps ~from =
  let n = Array.length sorted in
  let resps = Array.copy resps in
  let rec go j =
    if j >= n then Some resps
    else
      match resp_at policy obs sys sorted periods resps j with
      | None -> None
      | Some r ->
          resps.(j) <- r;
          go (j + 1)
  in
  go from

(* Is the whole lower-priority suffix schedulable if position [index]
   takes period [candidate]? *)
let candidate_feasible policy obs sys sorted periods resps ~index ~candidate =
  let periods = Array.copy periods in
  periods.(index) <- candidate;
  Option.is_some
    (recompute_from policy obs sys sorted periods resps ~from:(index + 1))

(* Algorithm 2: binary search for the minimum feasible period of the
   task at [index], collecting every feasible probe and returning the
   least one. T_s^max is feasible by the Algorithm 1 invariant. *)
let min_feasible_period_impl policy obs sys ~sorted ~periods ~resps ~index =
  let s = sorted.(index) in
  let tmax = s.Task.sec_period_max in
  let steps = ref 0 in
  let rec search lo hi best =
    if lo > hi then best
    else begin
      incr steps;
      let c = (lo + hi) / 2 in
      if
        candidate_feasible policy obs sys sorted periods resps ~index
          ~candidate:c
      then search lo (c - 1) (min best c)
      else search (c + 1) hi best
    end
  in
  let t_star = search resps.(index) tmax tmax in
  (* Algorithm 2 cost: total probes and the per-task distribution. *)
  Hydra_obs.add obs "period_selection.search.steps" !steps;
  Hydra_obs.observe obs "period_selection.search.steps_per_task" !steps;
  t_star

let min_feasible_period ?policy ?obs sys ~sorted ~periods ~resps ~index =
  min_feasible_period_impl policy obs sys ~sorted ~periods ~resps ~index

(* The Algorithm 1 lines 1-4 responses (all periods at their bounds),
   re-indexed by sec_id into a caller-provided vector. The
   admission-control server snapshots these as warm floors for its
   next reconfiguration (doc/SERVER.md). *)
let export_bounds bounds_out sorted resps0 =
  match bounds_out with
  | None -> ()
  | Some out ->
      Array.iteri (fun j (s : Task.sec_task) -> out.(s.sec_id) <- resps0.(j))
        sorted

(* Reference Algorithm 1: per-probe array copies, cold fixed points.
   Kept verbatim as the equivalence oracle for [select_fast]. *)
let select_naive policy obs bounds_out sys secs =
  let sorted = Task.sort_sec_by_priority secs in
  let n = Array.length sorted in
  let periods = Array.map (fun s -> s.Task.sec_period_max) sorted in
  let resps = Array.make n 0 in
  Hydra_obs.add obs "period_selection.tasks" n;
  (* Algorithm 1, lines 1-4: all periods at their bounds. *)
  match recompute_from policy obs sys sorted periods resps ~from:0 with
  | None ->
      Hydra_obs.incr obs "period_selection.unschedulable";
      Unschedulable
  | Some resps0 ->
      export_bounds bounds_out sorted resps0;
      Array.blit resps0 0 resps 0 n;
      (* Lines 5-9: minimize periods from highest to lowest priority,
         refreshing the lower-priority response times after each fix. *)
      let rec minimize index =
        if index >= n then ()
        else begin
          let t_star =
            min_feasible_period_impl policy obs sys ~sorted ~periods ~resps
              ~index
          in
          periods.(index) <- t_star;
          (match
             recompute_from policy obs sys sorted periods resps
               ~from:(index + 1)
           with
          | Some updated -> Array.blit updated 0 resps 0 n
          | None ->
              (* Unreachable: t_star was checked feasible (or is the
                 invariant-feasible T_s^max). *)
              assert false);
          minimize (index + 1)
        end
      in
      minimize 0;
      Hydra_obs.incr obs "period_selection.schedulable";
      let assignments =
        List.init n (fun j ->
            { sec = sorted.(j); period = periods.(j); resp = resps.(j) })
      in
      Schedulable assignments

(* Fast Algorithm 1 (doc/PERFORMANCE.md): no per-probe copies, no
   post-fix suffix refresh, warm-started fixed points.

   Invariants:
   - [periods] holds the committed vector (prefix fixed, suffix at the
     bounds); a probe's candidate period is passed by value, never
     written until the search for that position finishes.
   - [resps] holds the responses of the {e last feasible} full vector
     (initially all-bounds). Feasible candidates for a position are
     strictly decreasing (the search recurses on [lo, c-1] after a
     feasible [c]), and responses are monotone non-decreasing as any
     hp period decreases, so [resps] is a valid warm floor for every
     later probe of the same or deeper position.
   - [scratch] receives the suffix responses of the probe in flight;
     it is committed into [resps] only when the probe is feasible.
     The final refresh of the naive path is subsumed: after the search
     for [index] returns [t_star], [resps] already holds the suffix
     responses under [t_star] (the last committed probe), or — when no
     probe was feasible and [t_star = T_s^max] — the responses of the
     incoming vector, which already had [index] at its bound. *)
let select_fast policy obs warm0 hints bounds_out sys secs =
  let sorted = Task.sort_sec_by_priority secs in
  let n = Array.length sorted in
  let periods = Array.map (fun s -> s.Task.sec_period_max) sorted in
  let resps = Array.make n 0 in
  let scratch = Array.make n 0 in
  Hydra_obs.add obs "period_selection.tasks" n;
  (* Caller-supplied warm floors for the initial all-bounds pass,
     re-indexed from sec_id to priority position ([0] = no floor). *)
  let warm_init =
    match warm0 with
    | None -> fun _ -> 0
    | Some w -> fun j -> w.(sorted.(j).Task.sec_id)
  in
  (* Caller-supplied search hints (previously selected periods), also
     by sec_id; 0 or out-of-range means no hint. Hints only steer the
     probe order of the per-task search — the result is the same
     minimal feasible period either way (see the search below). *)
  let hint_of =
    match hints with
    | None -> fun _ -> 0
    | Some h ->
        fun index ->
          let id = sorted.(index).Task.sec_id in
          if id < Array.length h then h.(id) else 0
  in
  (* Response of position [j] while probing [candidate] at [index]
     ([index = -1]: no probe, plain evaluation of [periods]). hp
     responses come from [resps] for the already-committed prefix and
     from [scratch] for suffix positions recomputed by this probe. *)
  let resp_probe ~index ~candidate j =
    let s = sorted.(j) in
    let hp =
      List.init j (fun i ->
          { Analysis.hp_task = sorted.(i);
            hp_period = (if i = index then candidate else periods.(i));
            hp_resp = (if i <= index then resps.(i) else scratch.(i)) })
    in
    let warm = if index < 0 then warm_init j else resps.(j) in
    Analysis.response_time ?policy ~fast:true ~warm ?obs sys ~hp
      ~wcet:s.Task.sec_wcet ~limit:s.Task.sec_period_max
  in
  let probe ~index ~candidate ~from =
    let rec go j =
      if j >= n then true
      else
        match resp_probe ~index ~candidate j with
        | None -> false
        | Some r ->
            scratch.(j) <- r;
            go (j + 1)
    in
    go from
  in
  let commit ~from = Array.blit scratch from resps from (n - from) in
  (* Algorithm 1, lines 1-4: all periods at their bounds. *)
  if not (probe ~index:(-1) ~candidate:0 ~from:0) then begin
    Hydra_obs.incr obs "period_selection.unschedulable";
    Unschedulable
  end
  else begin
    commit ~from:0;
    export_bounds bounds_out sorted resps;
    (* Lines 5-9: minimize periods from highest to lowest priority.

       Feasibility is monotone in the candidate (a longer period only
       shrinks the suffix interference), so the minimal feasible
       period is a threshold and {e any} probe order that brackets it
       finds the same value. A plain binary search over
       [resp, T_s^max] costs ~log2 of that whole range per task; when
       the caller supplies a hint (the period this task got in the
       previous selection, via [?hints]), an exponential (galloping)
       search around the hint finds the threshold in O(log d) probes
       where d is the distance the solution moved — O(1) when it did
       not move, which is the admission-control server's common case
       (doc/SERVER.md). Feasible probes stay strictly decreasing on
       every path, preserving the [resps] warm-floor invariant
       above. *)
    for index = 0 to n - 1 do
      let tmax = sorted.(index).Task.sec_period_max in
      let steps = ref 0 in
      let feasible c =
        incr steps;
        if probe ~index ~candidate:c ~from:(index + 1) then begin
          commit ~from:(index + 1);
          true
        end
        else false
      in
      let rec search lo hi best =
        if lo > hi then best
        else
          let c = (lo + hi) / 2 in
          if feasible c then search lo (c - 1) (min best c)
          else search (c + 1) hi best
      in
      (* [last_feasible]/[last_infeasible] were probed; the threshold
         lies in (last infeasible probe, last feasible probe]. *)
      let rec gallop_down lo hint last_feasible k =
        let c = hint - k in
        if c < lo then search lo (last_feasible - 1) last_feasible
        else if feasible c then gallop_down lo hint c (2 * k)
        else search (c + 1) (last_feasible - 1) last_feasible
      in
      let rec gallop_up hint last_infeasible k =
        let c = hint + k in
        if c >= tmax then search (last_infeasible + 1) tmax tmax
        else if feasible c then search (last_infeasible + 1) (c - 1) c
        else gallop_up hint c (2 * k)
      in
      let lo = resps.(index) in
      let hint = hint_of index in
      let t_star =
        if hint >= lo && hint <= tmax then
          if hint = tmax then
            (* feasible by the Algorithm 1 invariant — no probe *)
            gallop_down lo hint hint 1
          else if feasible hint then gallop_down lo hint hint 1
          else gallop_up hint hint 1
        else search lo tmax tmax
      in
      Hydra_obs.add obs "period_selection.search.steps" !steps;
      Hydra_obs.observe obs "period_selection.search.steps_per_task" !steps;
      periods.(index) <- t_star
    done;
    Hydra_obs.incr obs "period_selection.schedulable";
    let assignments =
      List.init n (fun j ->
          { sec = sorted.(j); period = periods.(j); resp = resps.(j) })
    in
    Schedulable assignments
  end

let select ?policy ?(fast = true) ?warm0 ?hints ?bounds_out ?obs sys secs =
  if fast then select_fast policy obs warm0 hints bounds_out sys secs
  else select_naive policy obs bounds_out sys secs

let vector_of field assignments ~n_sec =
  let v = Array.make n_sec 0 in
  List.iter (fun a -> v.(a.sec.Task.sec_id) <- field a) assignments;
  v

let period_vector assignments ~n_sec =
  vector_of (fun a -> a.period) assignments ~n_sec

let resp_vector assignments ~n_sec =
  vector_of (fun a -> a.resp) assignments ~n_sec
