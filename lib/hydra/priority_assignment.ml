module Task = Rtsched.Task

type ordering =
  | Designer
  | Wcet_ascending
  | Wcet_descending
  | Bound_ascending
  | Utilization_descending

let all_orderings =
  [ Designer; Wcet_ascending; Wcet_descending; Bound_ascending;
    Utilization_descending ]

let ordering_name = function
  | Designer -> "designer"
  | Wcet_ascending -> "wcet-asc"
  | Wcet_descending -> "wcet-desc"
  | Bound_ascending -> "tmax-asc"
  | Utilization_descending -> "util-desc"

let comparator ordering (a : Task.sec_task) (b : Task.sec_task) =
  let key =
    match ordering with
    | Designer -> compare a.Task.sec_prio b.Task.sec_prio
    | Wcet_ascending -> compare a.Task.sec_wcet b.Task.sec_wcet
    | Wcet_descending -> compare b.Task.sec_wcet a.Task.sec_wcet
    | Bound_ascending -> compare a.Task.sec_period_max b.Task.sec_period_max
    | Utilization_descending ->
        (* floats: Float.compare is total on NaN where polymorphic
           compare's ordering is fragile (rule D5) *)
        Float.compare (Task.sec_min_utilization b)
          (Task.sec_min_utilization a)
  in
  match key with 0 -> compare a.Task.sec_id b.Task.sec_id | c -> c

let apply ordering secs =
  let sorted = Array.copy secs in
  Array.sort (comparator ordering) sorted;
  Array.mapi (fun i s -> { s with Task.sec_prio = i }) sorted

let select_with ?policy sys secs ordering =
  Period_selection.select ?policy sys (apply ordering secs)

let first_schedulable ?policy ?(orderings = all_orderings) sys secs =
  let try_one ordering =
    match select_with ?policy sys secs ordering with
    | Period_selection.Schedulable assignments -> Some (ordering, assignments)
    | Period_selection.Unschedulable -> None
  in
  List.find_map try_one orderings

let distance_of assignments ~n_sec =
  Metrics.normalized_distance_to_bound
    ~periods:(Period_selection.period_vector assignments ~n_sec)
    ~bounds:
      (Period_selection.period_vector
         (List.map
            (fun (a : Period_selection.assignment) ->
              { a with Period_selection.period = a.sec.Task.sec_period_max })
            assignments)
         ~n_sec)

let best_by_distance ?policy ?(orderings = all_orderings) sys secs =
  let n_sec = Array.length secs in
  let candidates =
    List.filter_map
      (fun ordering ->
        match select_with ?policy sys secs ordering with
        | Period_selection.Schedulable assignments ->
            Some (ordering, assignments, distance_of assignments ~n_sec)
        | Period_selection.Unschedulable -> None)
      orderings
  in
  List.fold_left
    (fun best ((_, _, d) as candidate) ->
      match best with
      | Some (_, _, d') when d' >= d -> best
      | Some _ | None -> Some candidate)
    None candidates
