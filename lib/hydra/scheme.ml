module Task = Rtsched.Task

type t =
  | Hydra_c
  | Hydra
  | Hydra_tmax
  | Global_tmax

let all = [ Hydra_c; Hydra; Hydra_tmax; Global_tmax ]

let name = function
  | Hydra_c -> "HYDRA-C"
  | Hydra -> "HYDRA"
  | Hydra_tmax -> "HYDRA-TMax"
  | Global_tmax -> "GLOBAL-TMax"

type outcome = {
  schedulable : bool;
  periods : int array option;
  sec_cores : int array option;
}

let unschedulable = { schedulable = false; periods = None; sec_cores = None }

let tmax_periods (ts : Task.taskset) =
  let v = Array.make (Array.length ts.sec) 0 in
  Array.iter (fun s -> v.(s.Task.sec_id) <- s.Task.sec_period_max) ts.sec;
  v

let evaluate ?policy ?fast ?obs scheme (ts : Task.taskset) ~rt_assignment =
  let n_sec = Array.length ts.sec in
  match scheme with
  | Hydra_c -> (
      let sys = Analysis.make_system ts ~assignment:rt_assignment in
      match Period_selection.select ?policy ?fast ?obs sys ts.sec with
      | Period_selection.Unschedulable -> unschedulable
      | Period_selection.Schedulable assignments ->
          { schedulable = true;
            periods = Some (Period_selection.period_vector assignments ~n_sec);
            sec_cores = None })
  | Hydra | Hydra_tmax -> (
      let minimize = scheme = Hydra in
      let sys = Analysis.make_system ts ~assignment:rt_assignment in
      match Baseline_hydra.allocate ?obs ~minimize sys ts.sec with
      | Baseline_hydra.Unschedulable -> unschedulable
      | Baseline_hydra.Schedulable allocs ->
          { schedulable = true;
            periods = Some (Baseline_hydra.period_vector allocs ~n_sec);
            sec_cores = Some (Baseline_hydra.core_vector allocs ~n_sec) })
  | Global_tmax ->
      if Baseline_tmax.global_tmax_schedulable ?obs ts then
        { schedulable = true; periods = Some (tmax_periods ts);
          sec_cores = None }
      else unschedulable
