module Task = Rtsched.Task
module Rta = Rtsched.Rta_uniproc

type time = Task.time

type alloc = {
  sec : Task.sec_task;
  core : int;
  period : time;
  resp : time;
}

type result =
  | Schedulable of alloc list
  | Unschedulable

let core_response_time ?obs (sys : Analysis.system) ~core ~placed s =
  let rt_hp =
    List.map
      (fun (t : Task.rt_task) ->
        { Rta.hp_wcet = t.rt_wcet; hp_period = t.rt_period })
      sys.rt_cores.(core)
  in
  let sec_hp =
    List.filter_map
      (fun a ->
        if a.core = core && a.sec.Task.sec_prio < s.Task.sec_prio then
          Some { Rta.hp_wcet = a.sec.Task.sec_wcet; hp_period = a.period }
        else None)
      placed
  in
  Rta.response_time ?obs ~hp:(rt_hp @ sec_hp) ~wcet:s.Task.sec_wcet
    ~limit:s.Task.sec_period_max ()

type criterion = Min_response | Max_utilization

(* Security-task utilization already committed to a core. *)
let core_sec_utilization placed core =
  List.fold_left
    (fun acc a ->
      if a.core = core then
        acc +. (float_of_int a.sec.Task.sec_wcet /. float_of_int a.period)
      else acc)
    0.0 placed

(* Pick a feasible core: the one minimizing the response time (HYDRA's
   "maximum monitoring frequency") or classic best-fit by committed
   utilization; ties broken by lowest core index. *)
let best_core criterion obs sys ~placed s =
  let better (m, r) (m', r') =
    match criterion with
    | Min_response -> if r' < r then (m', r') else (m, r)
    | Max_utilization ->
        let u = core_sec_utilization placed m
        and u' = core_sec_utilization placed m' in
        if u' > u then (m', r') else (m, r)
  in
  let rec go m best =
    if m >= sys.Analysis.n_cores then best
    else
      let best =
        match core_response_time ?obs sys ~core:m ~placed s with
        | None -> best
        | Some r -> (
            match best with
            | Some b -> Some (better b (m, r))
            | None -> Some (m, r))
      in
      go (m + 1) best
  in
  go 0 None

let allocate ?criterion ?obs ~minimize sys secs =
  let criterion =
    Option.value criterion
      ~default:(if minimize then Min_response else Max_utilization)
  in
  let sorted = Task.sort_sec_by_priority secs in
  let rec place placed = function
    | [] -> Schedulable (List.rev placed)
    | s :: rest -> (
        match best_core criterion obs sys ~placed s with
        | None -> Unschedulable
        | Some (core, resp) ->
            Hydra_obs.incr obs "baseline_hydra.placements";
            let period = if minimize then resp else s.Task.sec_period_max in
            place ({ sec = s; core; period; resp } :: placed) rest)
  in
  place [] (Array.to_list sorted)

(* --- HYDRA-coordinated: per-core Algorithm 1 ---------------------- *)

(* Response time of alloc [a] given the current periods of the other
   allocations on its core (encoded in [placed]). *)
let realloc_resp obs sys placed (a : alloc) =
  core_response_time ?obs sys ~core:a.core ~placed a.sec

(* Recompute responses of [allocs] (priority order) against each
   other's current periods; [None] if someone misses its bound. *)
let recompute_core obs sys allocs =
  let rec go done_ = function
    | [] -> Some (List.rev done_)
    | a :: rest -> (
        match realloc_resp obs sys done_ a with
        | None -> None
        | Some resp -> go ({ a with resp } :: done_) rest)
  in
  go [] allocs

(* Minimum feasible period for position [idx] of a core's allocation
   list (priority order): binary search in [resp, bound], feasible when
   every lower-priority core-mate still meets its bound. *)
let min_core_period obs sys allocs idx =
  (* Mutate-and-restore on an array view instead of a List.mapi
     rebuild per probe (recompute_core still takes the list it needs
     anyway, but the candidate substitution itself is O(1)). *)
  let arr = Array.of_list allocs in
  let a = arr.(idx) in
  let feasible candidate =
    arr.(idx) <- { a with period = candidate };
    let ok = Option.is_some (recompute_core obs sys (Array.to_list arr)) in
    arr.(idx) <- a;
    ok
  in
  let steps = ref 0 in
  let rec search lo hi best =
    if lo > hi then best
    else begin
      incr steps;
      let c = (lo + hi) / 2 in
      if feasible c then search lo (c - 1) (min best c)
      else search (c + 1) hi best
    end
  in
  let t_star =
    search a.resp a.sec.Task.sec_period_max a.sec.Task.sec_period_max
  in
  Hydra_obs.add obs "baseline_hydra.search.steps" !steps;
  t_star

let minimize_core obs sys allocs =
  let n = List.length allocs in
  let rec loop allocs idx =
    if idx >= n then
      (* final response refresh so callers see consistent WCRTs *)
      match recompute_core obs sys allocs with
      | Some refreshed -> refreshed
      | None -> assert false
    else
      (* refresh responses first: minimizing higher-priority periods
         grows the lower-priority responses, and the search's lower
         bound must be the task's *current* WCRT *)
      match recompute_core obs sys allocs with
      | None -> assert false (* invariant: the previous step was feasible *)
      | Some refreshed ->
          let t_star = min_core_period obs sys refreshed idx in
          let updated =
            List.mapi
              (fun i x -> if i = idx then { x with period = t_star } else x)
              refreshed
          in
          loop updated (idx + 1)
  in
  loop allocs 0

let allocate_coordinated ?(criterion = Max_utilization) ?obs sys secs =
  match allocate ~criterion ?obs ~minimize:false sys secs with
  | Unschedulable -> Unschedulable
  | Schedulable allocs ->
      let per_core core =
        List.filter (fun a -> a.core = core) allocs
      in
      let minimized =
        List.init sys.Analysis.n_cores per_core
        |> List.concat_map (minimize_core obs sys)
      in
      (* restore global priority order *)
      let ordered =
        List.sort
          (fun a b -> Int.compare a.sec.Task.sec_prio b.sec.Task.sec_prio)
          minimized
      in
      Schedulable ordered

let vector_of field default allocs ~n_sec =
  let v = Array.make n_sec default in
  List.iter (fun a -> v.(a.sec.Task.sec_id) <- field a) allocs;
  v

let period_vector allocs ~n_sec = vector_of (fun a -> a.period) 0 allocs ~n_sec
let core_vector allocs ~n_sec = vector_of (fun a -> a.core) (-1) allocs ~n_sec
