(** Minimal dependency-free JSON reader for the observability tooling.

    Parses the JSON that [Hydra_obs] itself emits — metrics snapshots
    ([hydra_c.metrics/1]), JSONL snapshot-delta lines
    ([hydra_c.metrics_delta/1]) and bench records — so [obs-report] and
    the tests can consume those artifacts without adding an external
    dependency. It is a strict reader for machine-written JSON: numbers
    become [float], strings support the standard escapes (a [\uXXXX]
    escape decodes to UTF-8), and any syntax error raises {!Error} with
    a byte offset. Accessors are total lookups returning [option]; the
    [get_*] variants raise {!Error} with the member name instead. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list  (** members in file order *)

exception Error of string
(** Raised by {!parse} on malformed input (message includes the byte
    offset) and by the [get_*] accessors on shape mismatches. *)

val parse : string -> t
(** Parse one complete JSON document; trailing whitespace is allowed,
    any other trailing content is an error. *)

val member : string -> t -> t option
(** [member k (Obj _)] is the value bound to [k], if any; [None] on
    non-objects. *)

val get : string -> t -> t
(** Like {!member} but raises {!Error} when missing. *)

val to_int : t -> int option
(** Numeric value as [int] (truncating); [None] on non-numbers and on
    values outside [int] range. *)

val to_float : t -> float option
val to_string : t -> string option

val get_int : string -> t -> int
val get_obj : string -> t -> (string * t) list
(** [get_obj k j] is the member list of object-valued member [k];
    raises {!Error} if missing or not an object. *)
