(** Domain-safe observability: counters, distributions, monotonic-clock
    spans, and two exporters (a human summary table and Chrome
    trace-event JSON loadable in Perfetto / chrome://tracing).

    Every instrumented entry point in the repository takes an optional
    [?obs:Hydra_obs.t] capability. The default is [None], and every
    recording function in this module is an allocation-free no-op on
    [None] — instrumentation can stay in hot paths (the Eq. 7/8
    fixed-point loops, the simulator, the sweep workers) without
    costing uninstrumented runs anything.

    {b Domain safety.} All recording operations may be called
    concurrently from any number of domains (in particular from inside
    {!Parallel.Pool} workers). Each metric is an array of striped
    atomic cells indexed by domain id: a writer touches only its own
    stripe, so workers never contend; reads aggregate the stripes and
    are exact once the writing domains have been joined. Metric-name
    resolution caches handles in domain-local storage, so the registry
    mutex is taken only on a domain's first use of each name.

    {b Determinism contract.} Observability never feeds back into
    results: recording functions return [unit] (or, for {!span}, the
    wrapped function's value unchanged), so an instrumented run
    computes bit-for-bit the same artifacts as an uninstrumented one —
    stdout stays byte-identical for every [--jobs] value, with or
    without [--metrics]/[--trace-out]. See doc/OBSERVABILITY.md for the
    metric catalog and doc/PARALLELISM.md for the contract. *)

type t
(** A metrics registry plus span sink. Create one per instrumented run
    and thread it (as [Some t]) through the [?obs] parameters. *)

val create : unit -> t

(** {1 Profiling opt-in}

    Some metrics are inherently nondeterministic — wall-clock pool
    scheduling numbers ({!Parallel.Pool}), GC pause histograms
    ({!Runtime}). Those are recorded only on a registry with profiling
    enabled, so a default run keeps the byte-identical-across-[--jobs]
    snapshot contract and [--profile-runtime] knowingly trades it away
    (doc/OBSERVABILITY.md). *)

val enable_profiling : t -> unit
(** Irreversibly mark this registry as accepting nondeterministic
    (profiling-class) metrics. *)

val profiling_enabled : t option -> bool
(** [false] on [None] and on registries without {!enable_profiling} —
    the guard instrumentation sites check before recording a
    profiling-class metric. *)

(** {1 Log-bucketed histograms}

    Deterministic latency histograms in the HDR-histogram family:
    non-negative integer samples (negative samples are clamped to 0)
    land in singleton buckets below 64 and in one of 64 equal
    sub-buckets of their power-of-two octave above, so a bucket's
    upper bound overestimates any value in it by at most 1/64. The
    bucket index is a pure function of the value and counts add
    commutatively, which makes the merged histogram — and every
    quantile read from it — bit-identical no matter how recording was
    interleaved across domains (the property behind byte-identical
    [--metrics-out] snapshots for every [--jobs] value; see
    doc/OBSERVABILITY.md for the full determinism argument). *)

module Histogram : sig
  type t
  (** A single-writer accumulator (the registry handles striping for
      concurrent recording — see {!sample}). *)

  val create : unit -> t
  val record : t -> int -> unit
  val of_list : int list -> t
  (** [of_list vs] is a histogram of all of [vs]. *)

  val merge_into : into:t -> t -> unit
  (** Adds every bucket, count and sum of the second histogram into
      [into]; order-independent. *)

  val count : t -> int
  val sum : t -> int

  val min_value : t -> int option
  (** [None] while empty; likewise {!max_value}. *)

  val max_value : t -> int option

  val mean : t -> float
  (** [nan] while empty. *)

  val quantile : t -> float -> int
  (** [quantile h q] for [q] in [(0, 1]]: the value at rank
      [ceil (q * count)] of the recorded multiset, rounded up to its
      bucket's upper bound and clamped to the exact maximum — i.e.
      exactly [min (round_up v) (max)] where [v] is the sorted-sample
      quantile (property-tested against that oracle in
      test/test_obs.ml). Exact for samples below 64 and for any rank
      landing in the top occupied bucket; at most 1/64 above the true
      value otherwise. @raise Invalid_argument on an empty histogram
      or [q] outside [(0, 1]]. *)

  val round_up : int -> int
  (** Upper bound of the bucket a value lands in (identity below 64);
      the rounding function referenced by the {!quantile} contract. *)

  val nonzero_buckets : t -> (int * int) list
  (** [(upper_bound, count)] of every occupied bucket, ascending — the
      bucket array serialized by {!Snapshot}. *)
end

val now_ns : unit -> int
(** Monotonic clock (CLOCK_MONOTONIC) in nanoseconds. Unboxed and
    allocation-free; the zero point is unspecified (time since boot),
    so only differences are meaningful. *)

(** {1 Periodic callbacks} *)

(** A background domain invoking a callback at a fixed period — the
    clockwork behind {!Runtime.start}'s ring polling and the CLI's
    [--stream-period-ms] JSONL ticks. The callback runs on the ticker's
    own domain, so it must only touch domain-safe state (registry
    recording and {!Snapshot.Stream.tick} both qualify). The sleep
    releases the OCaml runtime lock, so an idle ticker never delays a
    stop-the-world collection of the domains it observes. *)
module Ticker : sig
  type ticker

  val start : period_ms:int -> (unit -> unit) -> ticker
  (** Spawn the ticker domain; [f] runs every [period_ms] milliseconds
      until {!stop}. @raise Invalid_argument if [period_ms < 1]. *)

  val stop : ticker -> unit
  (** Stop and join the domain: returns only after any in-flight
      callback has finished, re-raising an exception the callback
      escaped with. *)
end

(** {1 Recording}

    All functions are no-ops when the first argument is [None]. Metric
    names are dot-separated paths ([layer.subject.quantity], e.g.
    ["analysis.fixpoint.iterations"]); the catalog lives in
    doc/OBSERVABILITY.md. *)

val incr : t option -> string -> unit
(** Bump a counter by one. *)

val add : t option -> string -> int -> unit
(** Bump a counter by [n]. Prefer accumulating in a local [int ref]
    inside a tight loop and calling [add] once at the end. *)

val observe : t option -> string -> int -> unit
(** Record one sample of a distribution (count/sum/min/max). *)

val sample : t option -> string -> int -> unit
(** Record one sample into a log-bucketed {!Histogram} — use for
    quantities whose {e distribution} matters (latencies, response
    times). Striped like the counters: concurrent recorders never
    contend, and the merged histogram is independent of interleaving.
    Negative samples are clamped to 0. *)

val span : t option -> string -> (unit -> 'a) -> 'a
(** [span obs name f] runs [f ()], timing it with the monotonic clock.
    The duration feeds the [name] span aggregate, and one trace event
    attributed to the calling domain is pushed for the Chrome-trace
    exporter. Nested spans on the same domain render as a stack in
    Perfetto. The span is recorded (and the exception re-raised) even
    if [f] raises. On [None] this is exactly [f ()]. *)

(** {1 Reading}

    Aggregated views, sorted by metric name. Exact once all recording
    domains have been joined (e.g. after {!Parallel.Pool.map}
    returns). Distributions and spans that were never recorded are
    omitted. *)

type counter_view = { cv_name : string; cv_total : int }

type dist_view = {
  dv_name : string;
  dv_count : int;
  dv_sum : int;
  dv_min : int;
  dv_max : int;
}

type hist_view = { hv_name : string; hv_hist : Histogram.t }

type span_view = {
  sv_name : string;
  sv_count : int;
  sv_total_ns : int;
  sv_max_ns : int;
}

type event = {
  ev_name : string;
  ev_domain : int;  (** id of the domain that recorded the span *)
  ev_start_ns : int;  (** relative to the registry's creation *)
  ev_dur_ns : int;
}

val counters : t -> counter_view list
val dists : t -> dist_view list
val span_stats : t -> span_view list

val hists : t -> hist_view list
(** Merged view of every histogram with at least one sample, sorted by
    name. Each view is a fresh {!Histogram.t}; query it with
    {!Histogram.quantile} and friends. *)

val counter_total : t -> string -> int
(** Total of one counter; [0] if it was never touched. *)

val events : t -> event list
(** All span events in chronological order of their start. *)

(** {1 Exporters} *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable summary table (counters, distributions, spans). The
    CLI prints this on {b stderr} under [--metrics] so stdout stays
    byte-identical to an uninstrumented run. *)

val chrome_trace : ?extra:string list -> t -> string
(** The span events as Chrome trace-event JSON
    ([{"traceEvents": [...]}], "X" complete events, microsecond
    timestamps, tid = recording domain) — open in
    {{:https://ui.perfetto.dev}Perfetto} or chrome://tracing. [extra]
    appends pre-rendered trace-event objects (one JSON object per
    string, no separators) to the event array — how the simulated
    schedule from {!Sim.Event_log} shares the file with the analysis
    spans (it uses its own pid, so Perfetto shows two process
    groups). *)

val write_chrome_trace : ?extra:string list -> t -> path:string -> unit
(** {!chrome_trace} to a file. @raise Sys_error on I/O failure. *)

(** {1 Metrics snapshot}

    Machine-readable export of the whole registry — the [--metrics-out]
    backend, consumed by bench and CI (schema documented in
    doc/OBSERVABILITY.md). *)

module Snapshot : sig
  val schema : string
  (** The snapshot's self-identifying ["schema"] value,
      ["hydra_c.metrics/1"]. *)

  val json_float : float -> string
  (** Renders a float as a JSON token, mapping non-finite values (nan,
      infinities — e.g. {!Sim.Metrics.mean_response} of a task with no
      finished job) to [null] instead of emitting bare [NaN], which is
      not JSON. Every float serialized into a snapshot or bench record
      goes through this. *)

  val to_json : ?include_timings:bool -> t -> string
  (** One JSON object: ["schema"], ["counters"] (name → total),
      ["dists"] (name → count/sum/min/max/mean), ["histograms"] (name →
      count/sum/min/max/mean, p50/p95/p99/max quantiles, and the
      occupied bucket array as [{"le","count"}] pairs), ["spans"] (name
      → count). Keys are sorted, and every value included by default is
      deterministic — a pure function of the analytical work — so
      snapshots of the same workload are byte-identical for every
      [--jobs] value (tested in test/test_obs.ml, gated in CI).
      [include_timings] (default [false]) adds wall-clock
      [total_ns]/[max_ns] to the span entries, which breaks that
      diffability. *)

  val write : ?include_timings:bool -> t -> path:string -> unit
  (** {!to_json} plus a trailing newline to a file.
      @raise Sys_error on I/O failure. *)

  (** Time-series snapshots: the [--metrics-stream] backend. Each
      {!Stream.tick} appends one [hydra_c.metrics_delta/1] JSON object
      (a single line) to the file — counter deltas, dist/histogram
      count/sum/bucket deltas, cumulative min/max — so folding a whole
      stream with {!Obs_report.of_string} reproduces the registry's
      full snapshot exactly (round-trip tested in
      test/test_obs_report.ml). Metrics that did not move since the
      previous tick are omitted from the line. Safe to tick from any
      domain (e.g. a {!Ticker}); ticks are serialized internally. *)
  module Stream : sig
    val schema : string
    (** ["hydra_c.metrics_delta/1"]. *)

    type stream

    val create : t -> path:string -> stream
    (** Open (truncate/create) [path] for appending delta lines. *)

    val tick : ?label:string -> stream -> unit
    (** Append one delta line (with an optional ["label"] member, e.g.
        the phase that just finished). Lines carry a ["seq"] number
        starting at 0. No-op after {!close}. *)

    val close : stream -> unit
    (** Flush and close the file; idempotent. *)
  end
end

(** {1 Runtime profiling}

    GC and domain-lifecycle visibility via the OCaml 5 [Runtime_events]
    ring buffers (self-monitoring cursor). While running, a profiler
    folds runtime activity into its registry —
    [gc.minor_pause_ns]/[gc.major_pause_ns] pause histograms (top-level
    phases only, so nested sub-phases don't double-count), per-ring
    [gc.{minor,major}.d<ring>] pause counters,
    [runtime.ctr.*] distributions (minor-heap promotion/allocation
    counters), [runtime.domain.{spawn,terminate}], and
    [runtime.events.lost] for ring overflows — and keeps every runtime
    phase as a trace slice for {!chrome_events}. All of this is
    wall-clock-dependent, so the CLI only starts a profiler under
    [--profile-runtime], outside the determinism contract
    (doc/OBSERVABILITY.md). *)

module Runtime : sig
  type profiler

  val start : ?poll_ms:int -> t -> profiler option
  (** Enable runtime event collection and attach a self cursor; spawns
      a {!Ticker} that drains the rings every [poll_ms] (default 10)
      milliseconds so they don't overflow during long phases. [None]
      when [Runtime_events] is unavailable in this runtime — callers
      degrade to no runtime profiling. *)

  val poll : profiler -> unit
  (** Drain pending events now (also happens periodically and in
      {!stop}). *)

  val stop : profiler -> unit
  (** Stop the poll ticker, drain a final time, free the cursor and
      pause runtime event collection. The profiler's collected slices
      remain readable; further [poll]s are no-ops. *)

  val slice_count : profiler -> int
  (** Number of trace slices collected so far (capped; overflow is
      counted in the [runtime.trace.dropped] counter). *)

  val chrome_events : profiler -> pid:int -> string list
  (** The collected runtime activity as pre-rendered Chrome trace-event
      objects under process [pid] — one thread row per runtime ring
      (= domain), "X" slices for phases (category ["gc"]), instants for
      lifecycle events — ready to splice into {!chrome_trace}'s
      [?extra]. Timestamps share the registry's epoch, so runtime rows
      align with the span rows recorded by the same registry. *)
end

(** {1 Snapshot tooling re-exports}

    The offline halves of the observability layer, re-exported so
    consumers reach everything through [Hydra_obs]. *)

module Json = Obs_json
module Report = Obs_report
