(** Domain-safe observability: counters, distributions, monotonic-clock
    spans, and two exporters (a human summary table and Chrome
    trace-event JSON loadable in Perfetto / chrome://tracing).

    Every instrumented entry point in the repository takes an optional
    [?obs:Hydra_obs.t] capability. The default is [None], and every
    recording function in this module is an allocation-free no-op on
    [None] — instrumentation can stay in hot paths (the Eq. 7/8
    fixed-point loops, the simulator, the sweep workers) without
    costing uninstrumented runs anything.

    {b Domain safety.} All recording operations may be called
    concurrently from any number of domains (in particular from inside
    {!Parallel.Pool} workers). Each metric is an array of striped
    atomic cells indexed by domain id: a writer touches only its own
    stripe, so workers never contend; reads aggregate the stripes and
    are exact once the writing domains have been joined. Metric-name
    resolution caches handles in domain-local storage, so the registry
    mutex is taken only on a domain's first use of each name.

    {b Determinism contract.} Observability never feeds back into
    results: recording functions return [unit] (or, for {!span}, the
    wrapped function's value unchanged), so an instrumented run
    computes bit-for-bit the same artifacts as an uninstrumented one —
    stdout stays byte-identical for every [--jobs] value, with or
    without [--metrics]/[--trace-out]. See doc/OBSERVABILITY.md for the
    metric catalog and doc/PARALLELISM.md for the contract. *)

type t
(** A metrics registry plus span sink. Create one per instrumented run
    and thread it (as [Some t]) through the [?obs] parameters. *)

val create : unit -> t

val now_ns : unit -> int
(** Monotonic clock (CLOCK_MONOTONIC) in nanoseconds. Unboxed and
    allocation-free; the zero point is unspecified (time since boot),
    so only differences are meaningful. *)

(** {1 Recording}

    All functions are no-ops when the first argument is [None]. Metric
    names are dot-separated paths ([layer.subject.quantity], e.g.
    ["analysis.fixpoint.iterations"]); the catalog lives in
    doc/OBSERVABILITY.md. *)

val incr : t option -> string -> unit
(** Bump a counter by one. *)

val add : t option -> string -> int -> unit
(** Bump a counter by [n]. Prefer accumulating in a local [int ref]
    inside a tight loop and calling [add] once at the end. *)

val observe : t option -> string -> int -> unit
(** Record one sample of a distribution (count/sum/min/max). *)

val span : t option -> string -> (unit -> 'a) -> 'a
(** [span obs name f] runs [f ()], timing it with the monotonic clock.
    The duration feeds the [name] span aggregate, and one trace event
    attributed to the calling domain is pushed for the Chrome-trace
    exporter. Nested spans on the same domain render as a stack in
    Perfetto. The span is recorded (and the exception re-raised) even
    if [f] raises. On [None] this is exactly [f ()]. *)

(** {1 Reading}

    Aggregated views, sorted by metric name. Exact once all recording
    domains have been joined (e.g. after {!Parallel.Pool.map}
    returns). Distributions and spans that were never recorded are
    omitted. *)

type counter_view = { cv_name : string; cv_total : int }

type dist_view = {
  dv_name : string;
  dv_count : int;
  dv_sum : int;
  dv_min : int;
  dv_max : int;
}

type span_view = {
  sv_name : string;
  sv_count : int;
  sv_total_ns : int;
  sv_max_ns : int;
}

type event = {
  ev_name : string;
  ev_domain : int;  (** id of the domain that recorded the span *)
  ev_start_ns : int;  (** relative to the registry's creation *)
  ev_dur_ns : int;
}

val counters : t -> counter_view list
val dists : t -> dist_view list
val span_stats : t -> span_view list

val counter_total : t -> string -> int
(** Total of one counter; [0] if it was never touched. *)

val events : t -> event list
(** All span events in chronological order of their start. *)

(** {1 Exporters} *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable summary table (counters, distributions, spans). The
    CLI prints this on {b stderr} under [--metrics] so stdout stays
    byte-identical to an uninstrumented run. *)

val chrome_trace : t -> string
(** The span events as Chrome trace-event JSON
    ([{"traceEvents": [...]}], "X" complete events, microsecond
    timestamps, tid = recording domain) — open in
    {{:https://ui.perfetto.dev}Perfetto} or chrome://tracing. *)

val write_chrome_trace : t -> path:string -> unit
(** {!chrome_trace} to a file. @raise Sys_error on I/O failure. *)
