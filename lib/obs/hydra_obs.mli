(** Domain-safe observability: counters, distributions, monotonic-clock
    spans, and two exporters (a human summary table and Chrome
    trace-event JSON loadable in Perfetto / chrome://tracing).

    Every instrumented entry point in the repository takes an optional
    [?obs:Hydra_obs.t] capability. The default is [None], and every
    recording function in this module is an allocation-free no-op on
    [None] — instrumentation can stay in hot paths (the Eq. 7/8
    fixed-point loops, the simulator, the sweep workers) without
    costing uninstrumented runs anything.

    {b Domain safety.} All recording operations may be called
    concurrently from any number of domains (in particular from inside
    {!Parallel.Pool} workers). Each metric is an array of striped
    atomic cells indexed by domain id: a writer touches only its own
    stripe, so workers never contend; reads aggregate the stripes and
    are exact once the writing domains have been joined. Metric-name
    resolution caches handles in domain-local storage, so the registry
    mutex is taken only on a domain's first use of each name.

    {b Determinism contract.} Observability never feeds back into
    results: recording functions return [unit] (or, for {!span}, the
    wrapped function's value unchanged), so an instrumented run
    computes bit-for-bit the same artifacts as an uninstrumented one —
    stdout stays byte-identical for every [--jobs] value, with or
    without [--metrics]/[--trace-out]. See doc/OBSERVABILITY.md for the
    metric catalog and doc/PARALLELISM.md for the contract. *)

type t
(** A metrics registry plus span sink. Create one per instrumented run
    and thread it (as [Some t]) through the [?obs] parameters. *)

val create : unit -> t

(** {1 Profiling opt-in}

    Some metrics are inherently nondeterministic — wall-clock pool
    scheduling numbers ({!Parallel.Pool}), GC pause histograms
    ({!Runtime}). Those are recorded only on a registry with profiling
    enabled, so a default run keeps the byte-identical-across-[--jobs]
    snapshot contract and [--profile-runtime] knowingly trades it away
    (doc/OBSERVABILITY.md). *)

val enable_profiling : t -> unit
(** Irreversibly mark this registry as accepting nondeterministic
    (profiling-class) metrics. *)

val profiling_enabled : t option -> bool
(** [false] on [None] and on registries without {!enable_profiling} —
    the guard instrumentation sites check before recording a
    profiling-class metric. *)

(** {1 Log-bucketed histograms}

    Deterministic latency histograms in the HDR-histogram family:
    non-negative integer samples (negative samples are clamped to 0)
    land in singleton buckets below 64 and in one of 64 equal
    sub-buckets of their power-of-two octave above, so a bucket's
    upper bound overestimates any value in it by at most 1/64. The
    bucket index is a pure function of the value and counts add
    commutatively, which makes the merged histogram — and every
    quantile read from it — bit-identical no matter how recording was
    interleaved across domains (the property behind byte-identical
    [--metrics-out] snapshots for every [--jobs] value; see
    doc/OBSERVABILITY.md for the full determinism argument). *)

module Histogram : sig
  type t
  (** A single-writer accumulator (the registry handles striping for
      concurrent recording — see {!sample}). *)

  val create : unit -> t
  val record : t -> int -> unit
  val of_list : int list -> t
  (** [of_list vs] is a histogram of all of [vs]. *)

  val merge_into : into:t -> t -> unit
  (** Adds every bucket, count and sum of the second histogram into
      [into]; order-independent. *)

  val count : t -> int
  val sum : t -> int

  val min_value : t -> int option
  (** [None] while empty; likewise {!max_value}. *)

  val max_value : t -> int option

  val mean : t -> float
  (** [nan] while empty. *)

  val quantile : t -> float -> int
  (** [quantile h q] for [q] in [(0, 1]]: the value at rank
      [ceil (q * count)] of the recorded multiset, rounded up to its
      bucket's upper bound and clamped to the exact maximum — i.e.
      exactly [min (round_up v) (max)] where [v] is the sorted-sample
      quantile (property-tested against that oracle in
      test/test_obs.ml). Exact for samples below 64 and for any rank
      landing in the top occupied bucket; at most 1/64 above the true
      value otherwise. @raise Invalid_argument on an empty histogram
      or [q] outside [(0, 1]]. *)

  val round_up : int -> int
  (** Upper bound of the bucket a value lands in (identity below 64);
      the rounding function referenced by the {!quantile} contract. *)

  val nonzero_buckets : t -> (int * int) list
  (** [(upper_bound, count)] of every occupied bucket, ascending — the
      bucket array serialized by {!Snapshot}. *)
end

val now_ns : unit -> int
(** Monotonic clock (CLOCK_MONOTONIC) in nanoseconds. Unboxed and
    allocation-free; the zero point is unspecified (time since boot),
    so only differences are meaningful. *)

(** {1 Periodic callbacks} *)

(** A background domain invoking a callback at a fixed period — the
    clockwork behind {!Runtime.start}'s ring polling and the CLI's
    [--stream-period-ms] JSONL ticks. The callback runs on the ticker's
    own domain, so it must only touch domain-safe state (registry
    recording and {!Snapshot.Stream.tick} both qualify). The sleep
    releases the OCaml runtime lock, so an idle ticker never delays a
    stop-the-world collection of the domains it observes. *)
module Ticker : sig
  type ticker

  val start : period_ms:int -> (unit -> unit) -> ticker
  (** Spawn the ticker domain; [f] runs every [period_ms] milliseconds
      until {!stop}. Ticks are aligned to period boundaries
      ([start + k * period]) rather than scheduled [period] after the
      previous callback returned, so callback time never accumulates as
      drift: N ticks span ~N×period (tested in test/test_obs.ml).
      Boundaries the callback overruns are skipped, not replayed.
      @raise Invalid_argument if [period_ms < 1]. *)

  val stop : ticker -> unit
  (** Stop and join the domain: returns only after any in-flight
      callback has finished, re-raising an exception the callback
      escaped with. *)
end

(** {1 Recording}

    All functions are no-ops when the first argument is [None]. Metric
    names are dot-separated paths ([layer.subject.quantity], e.g.
    ["analysis.fixpoint.iterations"]); the catalog lives in
    doc/OBSERVABILITY.md. *)

val incr : t option -> string -> unit
(** Bump a counter by one. *)

val add : t option -> string -> int -> unit
(** Bump a counter by [n]. Prefer accumulating in a local [int ref]
    inside a tight loop and calling [add] once at the end. *)

val observe : t option -> string -> int -> unit
(** Record one sample of a distribution (count/sum/min/max). *)

val sample : t option -> string -> int -> unit
(** Record one sample into a log-bucketed {!Histogram} — use for
    quantities whose {e distribution} matters (latencies, response
    times). Striped like the counters: concurrent recorders never
    contend, and the merged histogram is independent of interleaving.
    Negative samples are clamped to 0. *)

val span : t option -> string -> (unit -> 'a) -> 'a
(** [span obs name f] runs [f ()], timing it with the monotonic clock.
    The duration feeds the [name] span aggregate, and one trace event
    attributed to the calling domain is pushed for the Chrome-trace
    exporter. Nested spans on the same domain render as a stack in
    Perfetto. The span is recorded (and the exception re-raised) even
    if [f] raises. On [None] this is exactly [f ()]. *)

(** {1 Request-scoped tracing}

    Causal tracing for the admission daemon's serving path
    (doc/SERVER.md): the daemon mints a {!Trace_ctx.t} per sampled
    request, and every pipeline stage that touches the request wraps
    its work in {!trace_span} with a {!Trace_ctx.child} of the incoming
    context. Trace events are kept apart from the metric tables — they
    appear only in {!chrome_trace} (category ["request"], with
    trace/span/parent ids in the event args, plus "s"/"f" flow pairs
    for cross-domain handoffs) and never in a {!Snapshot} — so enabling
    tracing leaves [--metrics-out] byte-identical. All recording
    functions are no-ops unless {e both} the registry and the context
    are present: an unsampled request pays two option tests. *)

module Trace_ctx : sig
  type t = { trace_id : int; span_id : int; parent_id : int }
  (** Immutable context: [trace_id] is shared by every span of one
      request, [span_id] names the current span, [parent_id] its
      parent (0 at the root). Ids come from one process-wide atomic
      counter, so they are unique across domains and registries. *)

  val root : unit -> t
  (** A fresh trace: [span_id = trace_id], [parent_id = 0]. *)

  val child : t -> t
  (** Fork a sub-span: fresh [span_id], [parent_id] = the argument's
      [span_id], same [trace_id]. *)

  type sampler

  val sampler : rate:float -> sampler
  (** Deterministic head sampler for [--trace-sample-rate]: rate 0 (or
      less) never samples, rate ≥ 1 samples every request, and a
      fractional rate samples every [round (1/rate)]-th request — a
      pure function of the request sequence number, so reruns of the
      same workload trace the same requests. *)

  val sample : sampler -> t option
  (** Count one request; [Some (root ())] iff this one is sampled. *)
end

val trace_span : t option -> Trace_ctx.t option -> string -> (unit -> 'a) -> 'a
(** [trace_span obs ctx name f] runs [f ()]; when both [obs] and [ctx]
    are present it also emits one request-trace span event carrying
    [ctx]'s ids, attributed to the calling domain. Recorded (and the
    exception re-raised) even if [f] raises. Unlike {!span}, no
    aggregate is touched. *)

val trace_emit :
  t option -> Trace_ctx.t option -> string -> start_ns:int -> dur_ns:int ->
  unit
(** Low-level emit with explicit timing ([start_ns] in {!now_ns}'s
    absolute clock) — for spans whose start predates the context, e.g.
    the daemon's whole-request root span timed from frame arrival. *)

val flow_begin : t option -> Trace_ctx.t option -> string -> unit
(** Emit the "s" half of a Chrome flow arrow (id = [ctx]'s trace id) on
    the calling domain — call where a request is handed off (e.g.
    enqueued for a pool worker). *)

val flow_end : t option -> Trace_ctx.t option -> string -> unit
(** The matching "f" half — call (with the same name) where the request
    is picked up on the executing domain. Perfetto draws the arrow
    between the two domains' rows. *)

val trace_count : t -> int
(** Number of request-trace events (spans + flow halves) recorded. *)

(** {1 Reading}

    Aggregated views, sorted by metric name. Exact once all recording
    domains have been joined (e.g. after {!Parallel.Pool.map}
    returns). Distributions and spans that were never recorded are
    omitted. *)

type counter_view = { cv_name : string; cv_total : int }

type dist_view = {
  dv_name : string;
  dv_count : int;
  dv_sum : int;
  dv_min : int;
  dv_max : int;
}

type hist_view = { hv_name : string; hv_hist : Histogram.t }

type span_view = {
  sv_name : string;
  sv_count : int;
  sv_total_ns : int;
  sv_max_ns : int;
}

type event = {
  ev_name : string;
  ev_domain : int;  (** id of the domain that recorded the span *)
  ev_start_ns : int;  (** relative to the registry's creation *)
  ev_dur_ns : int;
}

val counters : t -> counter_view list
val dists : t -> dist_view list
val span_stats : t -> span_view list

val hists : t -> hist_view list
(** Merged view of every histogram with at least one sample, sorted by
    name. Each view is a fresh {!Histogram.t}; query it with
    {!Histogram.quantile} and friends. *)

val counter_total : t -> string -> int
(** Total of one counter; [0] if it was never touched. *)

val events : t -> event list
(** All span events in chronological order of their start. *)

(** {1 Exporters} *)

val pp_summary : Format.formatter -> t -> unit
(** Human-readable summary table (counters, distributions, spans). The
    CLI prints this on {b stderr} under [--metrics] so stdout stays
    byte-identical to an uninstrumented run. *)

val chrome_trace : ?extra:string list -> t -> string
(** The span events as Chrome trace-event JSON
    ([{"traceEvents": [...]}], "X" complete events, microsecond
    timestamps, tid = recording domain) — open in
    {{:https://ui.perfetto.dev}Perfetto} or chrome://tracing.
    Request-scoped trace events recorded via {!trace_span} /
    {!flow_begin} follow the span events: "X" events of category
    ["request"] with [{"trace","span","parent"}] args, and "s"/"f"
    flow pairs (id = trace id) that render as arrows across domain
    rows. [extra] appends pre-rendered trace-event objects (one JSON
    object per string, no separators) to the event array — how the
    simulated schedule from {!Sim.Event_log} shares the file with the
    analysis spans (it uses its own pid, so Perfetto shows two process
    groups). *)

val write_chrome_trace : ?extra:string list -> t -> path:string -> unit
(** {!chrome_trace} to a file. @raise Sys_error on I/O failure. *)

(** {1 Flight recorder}

    A fixed-size lock-free ring of compact structured events — the
    always-on crash/slow-path diagnostic of the admission daemon
    (doc/SERVER.md). {!Flight.record} is allocation-free and lock-free
    ([@lint.hot]-gated: one fetch-and-add claims a slot, five atomic
    stores fill it), so the daemon leaves it on in its default
    configuration; {!Flight.dump} renders the surviving events as
    [hydra_c.flight/1] JSONL, triggered on crash, SIGUSR1, or a request
    exceeding [--slow-request-ms]. Dumping concurrently with writers is
    best-effort: a slot overwritten mid-read can tear (such events
    render with kind ["torn"]). *)
module Flight : sig
  type t

  val schema : string
  (** ["hydra_c.flight/1"] — the dump's header-line schema. *)

  type kind =
    | Accept  (** batch read from the socket; [a] = payload count *)
    | Decode  (** request decoded; [b] = 0 ok / 1 malformed *)
    | Coalesce  (** pending dirty ops flushed; [a] = ops coalesced *)
    | Shard  (** tenant group dispatched; [a] = group size *)
    | Select  (** period selection ran; [a] = duration ns *)
    | Reply  (** response sent; [a] = latency ns, [b] = status code *)
    | Slow  (** batch exceeded --slow-request-ms; [a] = duration ns *)
    | Error  (** connection/protocol failure *)

  val kind_name : kind -> string

  val create : ?capacity:int -> unit -> t
  (** Ring of [capacity] events (default 4096; rounded up to a power of
      two, floored at 8). Allocation happens here, never in [record]. *)

  val capacity : t -> int

  val recorded : t -> int
  (** Total events ever recorded (not capped by the ring size). *)

  val intern : t -> string -> int
  (** Intern a tenant name to a small id for [record]'s [tenant] field.
      Mutex-protected slow path — call once per tenant (or batch), not
      per event. *)

  val record : t -> ts:int -> kind:kind -> tenant:int -> a:int -> b:int -> unit
  (** Record one event: [ts] is the caller's {!now_ns} reading (passed
      in so fixed-sequence dumps are reproducible in tests), [tenant]
      an {!intern}ed id or -1, [a]/[b] per-kind arguments as documented
      on {!kind}. Lock-free, allocation-free, wait-free but for the
      single fetch-and-add. *)

  val dump : t -> string
  (** JSONL: a header line
      [{"schema","capacity","recorded","dumped"}] then the surviving
      (last [min recorded capacity]) events oldest-first, each
      [{"seq","ts_ns","kind","tenant","a","b"}]. *)

  val dump_to : t -> path:string -> unit
  (** {!dump} to a file. @raise Sys_error on I/O failure. *)
end

(** {1 Rate-limited operator logging}

    The sanctioned stderr channel for library code: hydra_lint rule D2
    rejects every other stderr write under [lib/server], so anything a
    long-running daemon tells an operator goes through here and is
    therefore throttled and structured. One line per event —
    [\[hydra\] event=... k=v ...] — with a token bucket on the
    monotonic clock; suppressed lines are counted and surface as
    [suppressed=N] on the next emitted line. Never touches stdout. *)
module Log : sig
  type t

  val create : ?rate_per_s:int -> ?burst:int -> ?out:Format.formatter ->
    unit -> t
  (** Token bucket of [burst] lines (default = [rate_per_s]) refilled
      at [rate_per_s] lines/second (default 10; 0 = unlimited). [out]
      defaults to stderr; tests inject a buffer formatter. *)

  val log : t -> string -> (string * string) list -> unit
  (** [log t event kvs] emits one structured line (or counts it
      suppressed when the bucket is empty). Values containing spaces,
      quotes or [=] are quoted and JSON-escaped. Domain-safe. *)

  val suppressed : t -> int
  (** Lines currently suppressed and not yet reported. *)

  val emitted : t -> int
end

(** {1 Sliding-window histograms}

    A ring of per-epoch {!Histogram}s for per-tenant SLO tracking:
    {!Window.record} feeds the current epoch, {!Window.rotate} advances
    the ring and discards the oldest epoch, and {!Window.quantile}
    aggregates the surviving epochs — a p99 over the recent past
    instead of the whole process lifetime, so old outliers age out.
    Single-writer (the daemon owns one window per tenant); not
    domain-safe. *)
module Window : sig
  type t

  val create : ?epochs:int -> unit -> t
  (** Ring of [epochs] histograms (default 8, floored at 2). *)

  val record : t -> int -> unit
  val rotate : t -> unit
  val epochs : t -> int
  val rotations : t -> int
  val count : t -> int
  (** Samples currently inside the window. *)

  val merged : t -> Histogram.t
  (** Fresh merge of the surviving epochs. *)

  val quantile : t -> float -> int option
  (** [None] while the window is empty. *)
end

(** {1 Metrics snapshot}

    Machine-readable export of the whole registry — the [--metrics-out]
    backend, consumed by bench and CI (schema documented in
    doc/OBSERVABILITY.md). *)

module Snapshot : sig
  val schema : string
  (** The snapshot's self-identifying ["schema"] value,
      ["hydra_c.metrics/1"]. *)

  val json_float : float -> string
  (** Renders a float as a JSON token, mapping non-finite values (nan,
      infinities — e.g. {!Sim.Metrics.mean_response} of a task with no
      finished job) to [null] instead of emitting bare [NaN], which is
      not JSON. Every float serialized into a snapshot or bench record
      goes through this. *)

  val to_json : ?include_timings:bool -> t -> string
  (** One JSON object: ["schema"], ["counters"] (name → total),
      ["dists"] (name → count/sum/min/max/mean), ["histograms"] (name →
      count/sum/min/max/mean, p50/p95/p99/max quantiles, and the
      occupied bucket array as [{"le","count"}] pairs), ["spans"] (name
      → count). Keys are sorted, and every value included by default is
      deterministic — a pure function of the analytical work — so
      snapshots of the same workload are byte-identical for every
      [--jobs] value (tested in test/test_obs.ml, gated in CI).
      [include_timings] (default [false]) adds wall-clock
      [total_ns]/[max_ns] to the span entries, which breaks that
      diffability. *)

  val write : ?include_timings:bool -> t -> path:string -> unit
  (** {!to_json} plus a trailing newline to a file.
      @raise Sys_error on I/O failure. *)

  (** The incremental-snapshot core shared by {!Stream} (file-backed
      [--metrics-stream]) and the daemon's [obs_stream] protocol op
      (doc/SERVER.md): a tracker remembers what each consumer has
      already seen, and {!Delta.line} renders one
      [hydra_c.metrics_delta/1] object covering only what moved since
      that consumer's previous line — counter deltas, dist/histogram
      count/sum/bucket deltas, cumulative min/max. Folding a tracker's
      lines with {!Obs_report.of_string} reproduces the registry's full
      snapshot exactly (round-trip tested in test/test_obs_report.ml). *)
  module Delta : sig
    val schema : string
    (** ["hydra_c.metrics_delta/1"]. *)

    type tracker

    val create : t -> tracker
    (** A fresh consumer position: the first {!line} carries the whole
        registry state as a delta from empty. *)

    val line : ?label:string -> tracker -> string
    (** One delta object (single line, no trailing newline) with a
        monotonically increasing ["seq"] member and an optional
        ["label"]; advances the tracker. Serialized internally, safe
        from any domain. *)
  end

  (** Time-series snapshots: the [--metrics-stream] backend. Each
      {!Stream.tick} appends one {!Delta.line} (plus newline) to the
      file. Metrics that did not move since the previous tick are
      omitted from the line. Safe to tick from any domain (e.g. a
      {!Ticker}); ticks are serialized internally. *)
  module Stream : sig
    val schema : string
    (** ["hydra_c.metrics_delta/1"]. *)

    type stream

    val create : t -> path:string -> stream
    (** Open (truncate/create) [path] for appending delta lines. *)

    val tick : ?label:string -> stream -> unit
    (** Append one delta line (with an optional ["label"] member, e.g.
        the phase that just finished). Lines carry a ["seq"] number
        starting at 0. No-op after {!close}. *)

    val close : stream -> unit
    (** Flush and close the file; idempotent. *)
  end
end

(** {1 Runtime profiling}

    GC and domain-lifecycle visibility via the OCaml 5 [Runtime_events]
    ring buffers (self-monitoring cursor). While running, a profiler
    folds runtime activity into its registry —
    [gc.minor_pause_ns]/[gc.major_pause_ns] pause histograms (top-level
    phases only, so nested sub-phases don't double-count), per-ring
    [gc.{minor,major}.d<ring>] pause counters,
    [runtime.ctr.*] distributions (minor-heap promotion/allocation
    counters), [runtime.domain.{spawn,terminate}], and
    [runtime.events.lost] for ring overflows — and keeps every runtime
    phase as a trace slice for {!chrome_events}. All of this is
    wall-clock-dependent, so the CLI only starts a profiler under
    [--profile-runtime], outside the determinism contract
    (doc/OBSERVABILITY.md). *)

module Runtime : sig
  type profiler

  val start : ?poll_ms:int -> t -> profiler option
  (** Enable runtime event collection and attach a self cursor; spawns
      a {!Ticker} that drains the rings every [poll_ms] (default 10)
      milliseconds so they don't overflow during long phases. [None]
      when [Runtime_events] is unavailable in this runtime — callers
      degrade to no runtime profiling. *)

  val poll : profiler -> unit
  (** Drain pending events now (also happens periodically and in
      {!stop}). *)

  val stop : profiler -> unit
  (** Stop the poll ticker, drain a final time, free the cursor and
      pause runtime event collection. The profiler's collected slices
      remain readable; further [poll]s are no-ops. *)

  val slice_count : profiler -> int
  (** Number of trace slices collected so far (capped; overflow is
      counted in the [runtime.trace.dropped] counter). *)

  val chrome_events : profiler -> pid:int -> string list
  (** The collected runtime activity as pre-rendered Chrome trace-event
      objects under process [pid] — one thread row per runtime ring
      (= domain), "X" slices for phases (category ["gc"]), instants for
      lifecycle events — ready to splice into {!chrome_trace}'s
      [?extra]. Timestamps share the registry's epoch, so runtime rows
      align with the span rows recorded by the same registry. *)
end

(** {1 Snapshot tooling re-exports}

    The offline halves of the observability layer, re-exported so
    consumers reach everything through [Hydra_obs]. *)

module Json = Obs_json
module Report = Obs_report
