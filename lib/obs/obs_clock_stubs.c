/* Monotonic clock for Hydra_obs timers and spans.

   CLOCK_MONOTONIC nanoseconds returned as an unboxed OCaml int
   (Val_long): 63 bits hold ~146 years of nanoseconds since boot, so
   the value always fits and the call never allocates — safe to use
   inside hot loops and from any domain. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value hydra_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}

/* Sleep for a given number of nanoseconds.

   Used by Hydra_obs.Ticker (the profiling poll loop and the JSONL
   snapshot-stream ticker). The runtime lock is released around the
   nanosleep so a sleeping ticker domain never stalls a stop-the-world
   minor collection of the worker domains — which is the whole reason
   this is a C stub rather than a busy loop. Interrupted sleeps
   (EINTR) resume until the deadline passes. */

#include <caml/signals.h>
#include <errno.h>

CAMLprim value hydra_obs_sleep_ns(value ns)
{
  struct timespec req, rem;
  intnat n = Long_val(ns);
  if (n <= 0) return Val_unit;
  req.tv_sec = n / 1000000000;
  req.tv_nsec = n % 1000000000;
  caml_enter_blocking_section();
  while (nanosleep(&req, &rem) == -1 && errno == EINTR)
    req = rem;
  caml_leave_blocking_section();
  return Val_unit;
}
