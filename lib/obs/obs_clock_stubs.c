/* Monotonic clock for Hydra_obs timers and spans.

   CLOCK_MONOTONIC nanoseconds returned as an unboxed OCaml int
   (Val_long): 63 bits hold ~146 years of nanoseconds since boot, so
   the value always fits and the call never allocates — safe to use
   inside hot loops and from any domain. */

#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value hydra_obs_monotonic_ns(value unit)
{
  struct timespec ts;
  (void)unit;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return Val_long((intnat)ts.tv_sec * 1000000000 + (intnat)ts.tv_nsec);
}
