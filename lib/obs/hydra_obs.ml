external now_ns : unit -> int = "hydra_obs_monotonic_ns" [@@noalloc]

(* ------------------------------------------------------------------ *)
(* Striped atomic cells.

   Every metric is an array of [stripes] atomics; a writer touches only
   the cell indexed by its domain id, so Parallel.Pool workers never
   contend on a cache line they both write. The OCaml 5 runtime caps
   live domains at 128 and domain ids only grow, so a power-of-two mask
   keeps collisions rare — and a collision merely shares an atomic, it
   never loses an update. Reads sum (or fold min/max over) the stripes;
   they are exact once the writing domains have been joined, which is
   the only point the experiment harnesses read them. *)

let stripes = 64
let slot () = (Domain.self () :> int) land (stripes - 1)

type counter = int Atomic.t array

let make_counter () : counter = Array.init stripes (fun _ -> Atomic.make 0)
let counter_add (c : counter) n = ignore (Atomic.fetch_and_add c.(slot ()) n)

let counter_read (c : counter) =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c

type dist = {
  d_count : counter;
  d_sum : counter;
  d_min : int Atomic.t array;
  d_max : int Atomic.t array;
}

let make_dist () =
  { d_count = make_counter ();
    d_sum = make_counter ();
    d_min = Array.init stripes (fun _ -> Atomic.make max_int);
    d_max = Array.init stripes (fun _ -> Atomic.make min_int) }

let rec atomic_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then atomic_min cell v

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let dist_record d v =
  let s = slot () in
  ignore (Atomic.fetch_and_add d.d_count.(s) 1);
  ignore (Atomic.fetch_and_add d.d_sum.(s) v);
  atomic_min d.d_min.(s) v;
  atomic_max d.d_max.(s) v

let dist_read d =
  let count = counter_read d.d_count in
  let sum = counter_read d.d_sum in
  let mn = Array.fold_left (fun acc a -> min acc (Atomic.get a)) max_int d.d_min in
  let mx = Array.fold_left (fun acc a -> max acc (Atomic.get a)) min_int d.d_max in
  (count, sum, mn, mx)

(* ------------------------------------------------------------------ *)
(* Registry *)

type event = {
  ev_name : string;
  ev_domain : int;
  ev_start_ns : int;  (* relative to the registry's creation *)
  ev_dur_ns : int;
}

type t = {
  id : int;
  epoch_ns : int;
  mu : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  dists : (string, dist) Hashtbl.t;
  spans : (string, dist) Hashtbl.t;
  events : event list Atomic.t;
}

let next_id = Atomic.make 0

let create () =
  { id = Atomic.fetch_and_add next_id 1;
    epoch_ns = now_ns ();
    mu = Mutex.create ();
    counters = Hashtbl.create 32;
    dists = Hashtbl.create 16;
    spans = Hashtbl.create 16;
    events = Atomic.make [] }

(* Per-domain handle caches: name resolution takes the registry mutex
   only on a domain's first use of a metric; afterwards the lookup is a
   domain-local hashtable hit followed by one atomic add on the
   domain's own stripe — no cross-domain contention in steady state.
   Keys include the registry id so multiple registries coexist. *)

let counter_cache : (int * string, counter) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let dist_cache : (int * string, dist) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let span_cache : (int * string, dist) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let resolve cache table mu ~make id name =
  let local = Domain.DLS.get cache in
  match Hashtbl.find_opt local (id, name) with
  | Some cell -> cell
  | None ->
      let cell =
        Mutex.protect mu (fun () ->
            match Hashtbl.find_opt table name with
            | Some cell -> cell
            | None ->
                let cell = make () in
                Hashtbl.add table name cell;
                cell)
      in
      Hashtbl.add local (id, name) cell;
      cell

(* ------------------------------------------------------------------ *)
(* Recording (all no-ops on [None]) *)

let add obs name n =
  match obs with
  | None -> ()
  | Some t ->
      counter_add (resolve counter_cache t.counters t.mu ~make:make_counter t.id name) n

let incr obs name = add obs name 1

let observe obs name v =
  match obs with
  | None -> ()
  | Some t ->
      dist_record (resolve dist_cache t.dists t.mu ~make:make_dist t.id name) v

let push_event t ev =
  let rec go () =
    let cur = Atomic.get t.events in
    if not (Atomic.compare_and_set t.events cur (ev :: cur)) then go ()
  in
  go ()

let span obs name f =
  match obs with
  | None -> f ()
  | Some t ->
      let d = resolve span_cache t.spans t.mu ~make:make_dist t.id name in
      let t0 = now_ns () in
      let finish () =
        let dur = now_ns () - t0 in
        dist_record d dur;
        push_event t
          { ev_name = name; ev_domain = (Domain.self () :> int);
            ev_start_ns = t0 - t.epoch_ns; ev_dur_ns = dur }
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

(* ------------------------------------------------------------------ *)
(* Reading *)

type counter_view = { cv_name : string; cv_total : int }

type dist_view = {
  dv_name : string;
  dv_count : int;
  dv_sum : int;
  dv_min : int;
  dv_max : int;
}

type span_view = {
  sv_name : string;
  sv_count : int;
  sv_total_ns : int;
  sv_max_ns : int;
}

let by_name f a b = String.compare (f a) (f b)

let counters t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold
        (fun name c acc -> { cv_name = name; cv_total = counter_read c } :: acc)
        t.counters [])
  |> List.sort (by_name (fun v -> v.cv_name))

let dists t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold
        (fun name d acc ->
          let count, sum, mn, mx = dist_read d in
          if count = 0 then acc
          else
            { dv_name = name; dv_count = count; dv_sum = sum; dv_min = mn;
              dv_max = mx }
            :: acc)
        t.dists [])
  |> List.sort (by_name (fun v -> v.dv_name))

let span_stats t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold
        (fun name d acc ->
          let count, sum, _, mx = dist_read d in
          if count = 0 then acc
          else
            { sv_name = name; sv_count = count; sv_total_ns = sum;
              sv_max_ns = mx }
            :: acc)
        t.spans [])
  |> List.sort (by_name (fun v -> v.sv_name))

let counter_total t name =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> counter_read c
      | None -> 0)

let events t =
  Atomic.get t.events
  |> List.sort (fun a b ->
         match Int.compare a.ev_start_ns b.ev_start_ns with
         | 0 -> (
             match Int.compare a.ev_domain b.ev_domain with
             | 0 -> String.compare a.ev_name b.ev_name
             | c -> c)
         | c -> c)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let pp_ns ppf ns =
  if ns < 1_000 then Format.fprintf ppf "%dns" ns
  else if ns < 1_000_000 then Format.fprintf ppf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then
    Format.fprintf ppf "%.1fms" (float_of_int ns /. 1e6)
  else Format.fprintf ppf "%.2fs" (float_of_int ns /. 1e9)

let pp_summary ppf t =
  let line = String.make 70 '-' in
  Format.fprintf ppf "%s@." line;
  Format.fprintf ppf "Hydra_obs metrics summary@.";
  Format.fprintf ppf "%s@." line;
  let cs = counters t and ds = dists t and ss = span_stats t in
  if cs <> [] then begin
    Format.fprintf ppf "%-44s %12s@." "counter" "total";
    List.iter
      (fun v -> Format.fprintf ppf "  %-42s %12d@." v.cv_name v.cv_total)
      cs
  end;
  if ds <> [] then begin
    Format.fprintf ppf "%-36s %8s %10s %7s %7s@." "distribution" "count"
      "mean" "min" "max";
    List.iter
      (fun v ->
        Format.fprintf ppf "  %-34s %8d %10.2f %7d %7d@." v.dv_name v.dv_count
          (float_of_int v.dv_sum /. float_of_int v.dv_count)
          v.dv_min v.dv_max)
      ds
  end;
  if ss <> [] then begin
    Format.fprintf ppf "%-36s %8s %10s %10s %10s@." "span" "count" "total"
      "mean" "max";
    let ns n = Format.asprintf "%a" pp_ns n in
    List.iter
      (fun v ->
        Format.fprintf ppf "  %-34s %8d %10s %10s %10s@." v.sv_name v.sv_count
          (ns v.sv_total_ns)
          (ns (v.sv_total_ns / max 1 v.sv_count))
          (ns v.sv_max_ns))
      ss
  end;
  if cs = [] && ds = [] && ss = [] then
    Format.fprintf ppf "(no metrics recorded)@.";
  Format.fprintf ppf "%s@." line

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Chrome trace-event format (the JSON array flavour understood by
   Perfetto and chrome://tracing): one "X" complete event per span with
   microsecond timestamps, tid = the recording domain's id, plus
   process/thread metadata events. Viewers reconstruct span nesting
   from containment of [ts, ts+dur] intervals on the same tid. *)
let chrome_trace t =
  let evs = events t in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"hydra\"}}";
  let tids =
    List.sort_uniq Int.compare (List.map (fun e -> e.ev_domain) evs)
  in
  List.iter
    (fun tid ->
      Buffer.add_string b
        (Printf.sprintf
           ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
           tid tid))
    tids;
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf
           ",{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
           (json_escape e.ev_name) e.ev_domain
           (float_of_int e.ev_start_ns /. 1e3)
           (float_of_int e.ev_dur_ns /. 1e3)))
    evs;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome_trace t ~path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (chrome_trace t))
