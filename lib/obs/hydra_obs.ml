external now_ns : unit -> int = "hydra_obs_monotonic_ns" [@@noalloc]

(* ------------------------------------------------------------------ *)
(* Striped atomic cells.

   Every metric is an array of [stripes] atomics; a writer touches only
   the cell indexed by its domain id, so Parallel.Pool workers never
   contend on a cache line they both write. The OCaml 5 runtime caps
   live domains at 128 and domain ids only grow, so a power-of-two mask
   keeps collisions rare — and a collision merely shares an atomic, it
   never loses an update. Reads sum (or fold min/max over) the stripes;
   they are exact once the writing domains have been joined, which is
   the only point the experiment harnesses read them. *)

let stripes = 64
let slot () = (Domain.self () :> int) land (stripes - 1)

type counter = int Atomic.t array

let make_counter () : counter = Array.init stripes (fun _ -> Atomic.make 0)
let counter_add (c : counter) n = ignore (Atomic.fetch_and_add c.(slot ()) n)

let counter_read (c : counter) =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c

type dist = {
  d_count : counter;
  d_sum : counter;
  d_min : int Atomic.t array;
  d_max : int Atomic.t array;
}

let make_dist () =
  { d_count = make_counter ();
    d_sum = make_counter ();
    d_min = Array.init stripes (fun _ -> Atomic.make max_int);
    d_max = Array.init stripes (fun _ -> Atomic.make min_int) }

let rec atomic_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then atomic_min cell v

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let dist_record d v =
  let s = slot () in
  ignore (Atomic.fetch_and_add d.d_count.(s) 1);
  ignore (Atomic.fetch_and_add d.d_sum.(s) v);
  atomic_min d.d_min.(s) v;
  atomic_max d.d_max.(s) v

let dist_read d =
  let count = counter_read d.d_count in
  let sum = counter_read d.d_sum in
  let mn = Array.fold_left (fun acc a -> min acc (Atomic.get a)) max_int d.d_min in
  let mx = Array.fold_left (fun acc a -> max acc (Atomic.get a)) min_int d.d_max in
  (count, sum, mn, mx)

(* ------------------------------------------------------------------ *)
(* Log-bucketed histograms.

   HDR-histogram-style log-linear bucketing over non-negative ints:
   values below [sub = 2^6] get singleton buckets (exact); a value with
   most-significant bit k >= 6 lands in one of 64 equal sub-buckets of
   the octave [2^k, 2^(k+1)), so the bucket upper bound overestimates
   the value by at most 1/64 (~1.6%). The bucket index is a pure
   function of the value and bucket counts are added commutatively, so
   the merged histogram — and every quantile read from it — is
   bit-identical regardless of how recording interleaved across
   domains. [quantile] rank-selects over the cumulative bucket counts
   and clamps the bucket upper bound to the exact tracked maximum, so
   p100 (and any quantile landing in the top occupied bucket) is
   exact. *)

module Histogram = struct
  let sub_bits = 6
  let sub = 1 lsl sub_bits

  (* position of the most significant set bit; [v > 0] *)
  let msb v =
    let k = ref 0 and v = ref v in
    if !v lsr 32 <> 0 then (k := !k + 32; v := !v lsr 32);
    if !v lsr 16 <> 0 then (k := !k + 16; v := !v lsr 16);
    if !v lsr 8 <> 0 then (k := !k + 8; v := !v lsr 8);
    if !v lsr 4 <> 0 then (k := !k + 4; v := !v lsr 4);
    if !v lsr 2 <> 0 then (k := !k + 2; v := !v lsr 2);
    if !v lsr 1 <> 0 then k := !k + 1;
    !k

  (* max_int has msb 61, so indices stop at (61-6+1)*64 + 63 = 3647. *)
  let n_buckets = 3648

  let bucket_of v =
    let v = if v < 0 then 0 else v in
    if v < sub then v
    else
      let k = msb v in
      ((k - sub_bits + 1) lsl sub_bits)
      lor ((v lsr (k - sub_bits)) land (sub - 1))

  let bucket_bounds i =
    if i < sub then (i, i)
    else
      let k = (i lsr sub_bits) + sub_bits - 1 in
      let w = 1 lsl (k - sub_bits) in
      let lo = (1 lsl k) + ((i land (sub - 1)) * w) in
      (lo, lo + w - 1)

  let round_up v = snd (bucket_bounds (bucket_of v))

  type t = {
    buckets : int array;
    mutable h_count : int;
    mutable h_sum : int;
    mutable h_min : int;  (* max_int while empty *)
    mutable h_max : int;  (* min_int while empty *)
  }

  let create () =
    { buckets = Array.make n_buckets 0; h_count = 0; h_sum = 0;
      h_min = max_int; h_max = min_int }

  let record t v =
    let v = if v < 0 then 0 else v in
    t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
    t.h_count <- t.h_count + 1;
    t.h_sum <- t.h_sum + v;
    if v < t.h_min then t.h_min <- v;
    if v > t.h_max then t.h_max <- v

  let of_list vs =
    let t = create () in
    List.iter (record t) vs;
    t

  let merge_into ~into t =
    Array.iteri
      (fun i n -> if n <> 0 then into.buckets.(i) <- into.buckets.(i) + n)
      t.buckets;
    into.h_count <- into.h_count + t.h_count;
    into.h_sum <- into.h_sum + t.h_sum;
    if t.h_min < into.h_min then into.h_min <- t.h_min;
    if t.h_max > into.h_max then into.h_max <- t.h_max

  let count t = t.h_count
  let sum t = t.h_sum
  let min_value t = if t.h_count = 0 then None else Some t.h_min
  let max_value t = if t.h_count = 0 then None else Some t.h_max

  let mean t =
    if t.h_count = 0 then Float.nan
    else float_of_int t.h_sum /. float_of_int t.h_count

  let quantile t q =
    if t.h_count = 0 then invalid_arg "Histogram.quantile: empty histogram";
    if not (q > 0.0) || q > 1.0 then
      invalid_arg "Histogram.quantile: q outside (0, 1]";
    let rank = int_of_float (Float.ceil (q *. float_of_int t.h_count)) in
    let rank = if rank < 1 then 1 else if rank > t.h_count then t.h_count else rank in
    let rec go i acc =
      let acc = acc + t.buckets.(i) in
      if acc >= rank then Stdlib.min (snd (bucket_bounds i)) t.h_max
      else go (i + 1) acc
    in
    go 0 0

  let nonzero_buckets t =
    let acc = ref [] in
    for i = n_buckets - 1 downto 0 do
      if t.buckets.(i) <> 0 then
        acc := (snd (bucket_bounds i), t.buckets.(i)) :: !acc
    done;
    !acc
end

(* Striped histogram: the count/sum/min/max part reuses the striped
   [dist]; bucket arrays are allocated lazily per stripe (3648 atomics
   only for domains that actually record). A stripe collision (> 64
   live domains) shares the atomics but never loses an update. *)

type hist = {
  h_dist : dist;
  h_stripes : int Atomic.t array option Atomic.t array;
}

let make_hist () =
  { h_dist = make_dist ();
    h_stripes = Array.init stripes (fun _ -> Atomic.make None) }

let hist_record h v =
  let v = if v < 0 then 0 else v in
  dist_record h.h_dist v;
  let s = slot () in
  let buckets =
    match Atomic.get h.h_stripes.(s) with
    | Some b -> b
    | None ->
        let b = Array.init Histogram.n_buckets (fun _ -> Atomic.make 0) in
        if Atomic.compare_and_set h.h_stripes.(s) None (Some b) then b
        else
          (* another domain sharing the stripe won the race *)
          Option.get (Atomic.get h.h_stripes.(s))
  in
  ignore (Atomic.fetch_and_add buckets.(Histogram.bucket_of v) 1)

let hist_read h =
  let out = Histogram.create () in
  Array.iter
    (fun stripe ->
      match Atomic.get stripe with
      | None -> ()
      | Some b ->
          Array.iteri
            (fun i a ->
              let n = Atomic.get a in
              if n <> 0 then
                out.Histogram.buckets.(i) <- out.Histogram.buckets.(i) + n)
            b)
    h.h_stripes;
  let c, s, mn, mx = dist_read h.h_dist in
  out.Histogram.h_count <- c;
  out.Histogram.h_sum <- s;
  out.Histogram.h_min <- mn;
  out.Histogram.h_max <- mx;
  out

(* ------------------------------------------------------------------ *)
(* Registry *)

type event = {
  ev_name : string;
  ev_domain : int;
  ev_start_ns : int;  (* relative to the registry's creation *)
  ev_dur_ns : int;
}

type t = {
  id : int;
  epoch_ns : int;
  mu : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  dists : (string, dist) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  spans : (string, dist) Hashtbl.t;
  events : event list Atomic.t;
}

let next_id = Atomic.make 0

let create () =
  { id = Atomic.fetch_and_add next_id 1;
    epoch_ns = now_ns ();
    mu = Mutex.create ();
    counters = Hashtbl.create 32;
    dists = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    spans = Hashtbl.create 16;
    events = Atomic.make [] }

(* Per-domain handle caches: name resolution takes the registry mutex
   only on a domain's first use of a metric; afterwards the lookup is a
   domain-local hashtable hit followed by one atomic add on the
   domain's own stripe — no cross-domain contention in steady state.
   Keys include the registry id so multiple registries coexist. *)

let counter_cache : (int * string, counter) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let dist_cache : (int * string, dist) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let hist_cache : (int * string, hist) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let span_cache : (int * string, dist) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let resolve cache table mu ~make id name =
  let local = Domain.DLS.get cache in
  match Hashtbl.find_opt local (id, name) with
  | Some cell -> cell
  | None ->
      let cell =
        Mutex.protect mu (fun () ->
            match Hashtbl.find_opt table name with
            | Some cell -> cell
            | None ->
                let cell = make () in
                Hashtbl.add table name cell;
                cell)
      in
      Hashtbl.add local (id, name) cell;
      cell

(* ------------------------------------------------------------------ *)
(* Recording (all no-ops on [None]) *)

let add obs name n =
  match obs with
  | None -> ()
  | Some t ->
      counter_add (resolve counter_cache t.counters t.mu ~make:make_counter t.id name) n

let incr obs name = add obs name 1

let observe obs name v =
  match obs with
  | None -> ()
  | Some t ->
      dist_record (resolve dist_cache t.dists t.mu ~make:make_dist t.id name) v

let sample obs name v =
  match obs with
  | None -> ()
  | Some t ->
      hist_record (resolve hist_cache t.hists t.mu ~make:make_hist t.id name) v

let push_event t ev =
  let rec go () =
    let cur = Atomic.get t.events in
    if not (Atomic.compare_and_set t.events cur (ev :: cur)) then go ()
  in
  go ()

let span obs name f =
  match obs with
  | None -> f ()
  | Some t ->
      let d = resolve span_cache t.spans t.mu ~make:make_dist t.id name in
      let t0 = now_ns () in
      let finish () =
        let dur = now_ns () - t0 in
        dist_record d dur;
        push_event t
          { ev_name = name; ev_domain = (Domain.self () :> int);
            ev_start_ns = t0 - t.epoch_ns; ev_dur_ns = dur }
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

(* ------------------------------------------------------------------ *)
(* Reading *)

type counter_view = { cv_name : string; cv_total : int }

type dist_view = {
  dv_name : string;
  dv_count : int;
  dv_sum : int;
  dv_min : int;
  dv_max : int;
}

type span_view = {
  sv_name : string;
  sv_count : int;
  sv_total_ns : int;
  sv_max_ns : int;
}

let by_name f a b = String.compare (f a) (f b)

let counters t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold
        (fun name c acc -> { cv_name = name; cv_total = counter_read c } :: acc)
        t.counters [])
  |> List.sort (by_name (fun v -> v.cv_name))

let dists t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold
        (fun name d acc ->
          let count, sum, mn, mx = dist_read d in
          if count = 0 then acc
          else
            { dv_name = name; dv_count = count; dv_sum = sum; dv_min = mn;
              dv_max = mx }
            :: acc)
        t.dists [])
  |> List.sort (by_name (fun v -> v.dv_name))

type hist_view = { hv_name : string; hv_hist : Histogram.t }

let hists t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold
        (fun name h acc ->
          let view = hist_read h in
          if Histogram.count view = 0 then acc
          else { hv_name = name; hv_hist = view } :: acc)
        t.hists [])
  |> List.sort (by_name (fun v -> v.hv_name))

let span_stats t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold
        (fun name d acc ->
          let count, sum, _, mx = dist_read d in
          if count = 0 then acc
          else
            { sv_name = name; sv_count = count; sv_total_ns = sum;
              sv_max_ns = mx }
            :: acc)
        t.spans [])
  |> List.sort (by_name (fun v -> v.sv_name))

let counter_total t name =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> counter_read c
      | None -> 0)

let events t =
  Atomic.get t.events
  |> List.sort (fun a b ->
         match Int.compare a.ev_start_ns b.ev_start_ns with
         | 0 -> (
             match Int.compare a.ev_domain b.ev_domain with
             | 0 -> String.compare a.ev_name b.ev_name
             | c -> c)
         | c -> c)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let pp_ns ppf ns =
  if ns < 1_000 then Format.fprintf ppf "%dns" ns
  else if ns < 1_000_000 then Format.fprintf ppf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then
    Format.fprintf ppf "%.1fms" (float_of_int ns /. 1e6)
  else Format.fprintf ppf "%.2fs" (float_of_int ns /. 1e9)

let pp_summary ppf t =
  let line = String.make 70 '-' in
  Format.fprintf ppf "%s@." line;
  Format.fprintf ppf "Hydra_obs metrics summary@.";
  Format.fprintf ppf "%s@." line;
  let cs = counters t and ds = dists t and hs = hists t and ss = span_stats t in
  if cs <> [] then begin
    Format.fprintf ppf "%-44s %12s@." "counter" "total";
    List.iter
      (fun v -> Format.fprintf ppf "  %-42s %12d@." v.cv_name v.cv_total)
      cs
  end;
  if ds <> [] then begin
    Format.fprintf ppf "%-36s %8s %10s %7s %7s@." "distribution" "count"
      "mean" "min" "max";
    List.iter
      (fun v ->
        Format.fprintf ppf "  %-34s %8d %10.2f %7d %7d@." v.dv_name v.dv_count
          (float_of_int v.dv_sum /. float_of_int v.dv_count)
          v.dv_min v.dv_max)
      ds
  end;
  if hs <> [] then begin
    Format.fprintf ppf "%-36s %8s %8s %8s %8s %8s@." "histogram" "count"
      "p50" "p95" "p99" "max";
    List.iter
      (fun v ->
        let h = v.hv_hist in
        Format.fprintf ppf "  %-34s %8d %8d %8d %8d %8d@." v.hv_name
          (Histogram.count h)
          (Histogram.quantile h 0.50)
          (Histogram.quantile h 0.95)
          (Histogram.quantile h 0.99)
          (Option.value (Histogram.max_value h) ~default:0))
      hs
  end;
  if ss <> [] then begin
    Format.fprintf ppf "%-36s %8s %10s %10s %10s@." "span" "count" "total"
      "mean" "max";
    let ns n = Format.asprintf "%a" pp_ns n in
    List.iter
      (fun v ->
        Format.fprintf ppf "  %-34s %8d %10s %10s %10s@." v.sv_name v.sv_count
          (ns v.sv_total_ns)
          (ns (v.sv_total_ns / max 1 v.sv_count))
          (ns v.sv_max_ns))
      ss
  end;
  if cs = [] && ds = [] && hs = [] && ss = [] then
    Format.fprintf ppf "(no metrics recorded)@.";
  Format.fprintf ppf "%s@." line

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Chrome trace-event format (the JSON array flavour understood by
   Perfetto and chrome://tracing): one "X" complete event per span with
   microsecond timestamps, tid = the recording domain's id, plus
   process/thread metadata events. Viewers reconstruct span nesting
   from containment of [ts, ts+dur] intervals on the same tid. *)
let chrome_trace ?(extra = []) t =
  let evs = events t in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"hydra\"}}";
  let tids =
    List.sort_uniq Int.compare (List.map (fun e -> e.ev_domain) evs)
  in
  List.iter
    (fun tid ->
      Buffer.add_string b
        (Printf.sprintf
           ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
           tid tid))
    tids;
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf
           ",{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
           (json_escape e.ev_name) e.ev_domain
           (float_of_int e.ev_start_ns /. 1e3)
           (float_of_int e.ev_dur_ns /. 1e3)))
    evs;
  (* Extra pre-rendered events (e.g. a simulated schedule from
     Sim.Event_log, attributed to its own pid) share the file. *)
  List.iter
    (fun ev ->
      Buffer.add_char b ',';
      Buffer.add_string b ev)
    extra;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome_trace ?extra t ~path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (chrome_trace ?extra t))

(* ------------------------------------------------------------------ *)
(* Machine-readable metrics snapshot (--metrics-out) *)

module Snapshot = struct
  let json_float f =
    if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

  let schema = "hydra_c.metrics/1"

  (* Stable schema, sorted keys, deterministic values only by default:
     counters, distributions and histograms are pure functions of the
     analytical work (identical for every --jobs value), while span
     durations are wall-clock noise — those are included only with
     [include_timings], so two snapshots of the same workload diff
     clean across job counts. *)
  let to_json ?(include_timings = false) t =
    let b = Buffer.create 4096 in
    let obj_of b render items =
      Buffer.add_char b '{';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          render b item)
        items;
      Buffer.add_char b '}'
    in
    Buffer.add_string b "{\"schema\":\"";
    Buffer.add_string b schema;
    Buffer.add_string b "\",\"counters\":";
    obj_of b
      (fun b (c : counter_view) ->
        Printf.bprintf b "\"%s\":%d" (json_escape c.cv_name) c.cv_total)
      (counters t);
    Buffer.add_string b ",\"dists\":";
    obj_of b
      (fun b (d : dist_view) ->
        Printf.bprintf b
          "\"%s\":{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"mean\":%s}"
          (json_escape d.dv_name) d.dv_count d.dv_sum d.dv_min d.dv_max
          (json_float (float_of_int d.dv_sum /. float_of_int d.dv_count)))
      (dists t);
    Buffer.add_string b ",\"histograms\":";
    obj_of b
      (fun b (v : hist_view) ->
        let h = v.hv_hist in
        Printf.bprintf b
          "\"%s\":{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"mean\":%s,\
           \"quantiles\":{\"p50\":%d,\"p95\":%d,\"p99\":%d,\"max\":%d},\
           \"buckets\":["
          (json_escape v.hv_name) (Histogram.count h) (Histogram.sum h)
          (Option.value (Histogram.min_value h) ~default:0)
          (Option.value (Histogram.max_value h) ~default:0)
          (json_float (Histogram.mean h))
          (Histogram.quantile h 0.50) (Histogram.quantile h 0.95)
          (Histogram.quantile h 0.99)
          (Option.value (Histogram.max_value h) ~default:0);
        List.iteri
          (fun i (le, count) ->
            if i > 0 then Buffer.add_char b ',';
            Printf.bprintf b "{\"le\":%d,\"count\":%d}" le count)
          (Histogram.nonzero_buckets h);
        Buffer.add_string b "]}")
      (hists t);
    Buffer.add_string b ",\"spans\":";
    obj_of b
      (fun b (s : span_view) ->
        if include_timings then
          Printf.bprintf b "\"%s\":{\"count\":%d,\"total_ns\":%d,\"max_ns\":%d}"
            (json_escape s.sv_name) s.sv_count s.sv_total_ns s.sv_max_ns
        else
          Printf.bprintf b "\"%s\":{\"count\":%d}" (json_escape s.sv_name)
            s.sv_count)
      (span_stats t);
    Buffer.add_string b "}";
    Buffer.contents b

  let write ?include_timings t ~path =
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (to_json ?include_timings t);
        Out_channel.output_char oc '\n')
end
