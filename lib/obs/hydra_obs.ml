external now_ns : unit -> int = "hydra_obs_monotonic_ns" [@@noalloc]

(* Blocking nanosleep that releases the runtime lock (so a sleeping
   ticker domain never stalls a stop-the-world collection of the
   workers it is observing). Not [@@noalloc]: the stub enters a
   blocking section. *)
external sleep_ns : int -> unit = "hydra_obs_sleep_ns"

(* ------------------------------------------------------------------ *)
(* Ticker: a background domain calling [f] every [period_ms].

   Used for the periodic halves of the profiling layer — draining the
   Runtime_events rings before they overflow, and appending JSONL
   snapshot deltas for long-running commands. The callback runs on the
   ticker's own domain, so everything it touches must be domain-safe
   (registry recording and [Snapshot.Stream.tick] both are). [stop]
   joins the domain: it returns only after the last tick has finished,
   and re-raises any exception the callback escaped with.

   Ticks are aligned to period boundaries: tick k fires at
   [start + k * period], not [period] after the previous callback
   returned, so callback time does not accumulate as drift — N ticks
   span ~N*period regardless of how long [f] takes (boundaries the
   callback overran are skipped, never replayed in a burst). *)

module Ticker = struct
  type ticker = { tk_stop : bool Atomic.t; tk_domain : unit Domain.t }

  let start ~period_ms f =
    if period_ms < 1 then invalid_arg "Ticker.start: period_ms < 1";
    let tk_stop = Atomic.make false in
    let period_ns = period_ms * 1_000_000 in
    let t0 = now_ns () in
    let tk_domain =
      Domain.spawn (fun () ->
          let next = ref (t0 + period_ns) in
          while not (Atomic.get tk_stop) do
            let now = now_ns () in
            if now < !next then sleep_ns (!next - now);
            if not (Atomic.get tk_stop) then f ();
            (* next boundary strictly after this tick's — skips any
               boundary the callback ran past instead of firing late;
               the [max] guards against a marginally-early sleep return
               double-firing the same boundary *)
            let after = Stdlib.max (now_ns ()) !next in
            let k = 1 + ((after - t0) / period_ns) in
            next := t0 + (k * period_ns)
          done)
    in
    { tk_stop; tk_domain }

  let stop tk =
    Atomic.set tk.tk_stop true;
    Domain.join tk.tk_domain
end

(* ------------------------------------------------------------------ *)
(* Request-scoped trace contexts.

   A context is three small ints — the trace id shared by every span of
   one request, the current span id, and the parent span id — minted
   from one process-wide atomic counter so ids are unique across
   registries and domains. Contexts are immutable values: propagating
   one across a queue or into a pool worker is just passing it along,
   and [child] forks a new span id under the current one.

   Sampling is deterministic in the request sequence (every k-th minted
   request for rate 1/k), not random: reruns of the same workload trace
   the same requests, and rate 0.0 never allocates a context at all —
   which is how the default daemon configuration keeps the PR 2/5
   byte-identical --metrics-out contract (trace events live outside the
   snapshot; see [chrome_trace]). *)

module Trace_ctx = struct
  type t = { trace_id : int; span_id : int; parent_id : int }

  let ids = Atomic.make 1
  let fresh_id () = Atomic.fetch_and_add ids 1

  let root () =
    let id = fresh_id () in
    { trace_id = id; span_id = id; parent_id = 0 }

  let child ctx = { ctx with span_id = fresh_id (); parent_id = ctx.span_id }

  type sampler = { s_every : int; s_count : int Atomic.t }

  let sampler ~rate =
    let every =
      if not (rate > 0.0) then 0
      else if rate >= 1.0 then 1
      else int_of_float (Float.round (1.0 /. rate))
    in
    { s_every = every; s_count = Atomic.make 0 }

  let sample s =
    if s.s_every = 0 then None
    else
      let n = Atomic.fetch_and_add s.s_count 1 in
      if n mod s.s_every = 0 then Some (root ()) else None
end

(* ------------------------------------------------------------------ *)
(* Striped atomic cells.

   Every metric is an array of [stripes] atomics; a writer touches only
   the cell indexed by its domain id, so Parallel.Pool workers never
   contend on a cache line they both write. The OCaml 5 runtime caps
   live domains at 128 and domain ids only grow, so a power-of-two mask
   keeps collisions rare — and a collision merely shares an atomic, it
   never loses an update. Reads sum (or fold min/max over) the stripes;
   they are exact once the writing domains have been joined, which is
   the only point the experiment harnesses read them. *)

let stripes = 64
let slot () = (Domain.self () :> int) land (stripes - 1)

type counter = int Atomic.t array

let make_counter () : counter = Array.init stripes (fun _ -> Atomic.make 0)
let counter_add (c : counter) n = ignore (Atomic.fetch_and_add c.(slot ()) n)

let counter_read (c : counter) =
  Array.fold_left (fun acc a -> acc + Atomic.get a) 0 c

type dist = {
  d_count : counter;
  d_sum : counter;
  d_min : int Atomic.t array;
  d_max : int Atomic.t array;
}

let make_dist () =
  { d_count = make_counter ();
    d_sum = make_counter ();
    d_min = Array.init stripes (fun _ -> Atomic.make max_int);
    d_max = Array.init stripes (fun _ -> Atomic.make min_int) }

let rec atomic_min cell v =
  let cur = Atomic.get cell in
  if v < cur && not (Atomic.compare_and_set cell cur v) then atomic_min cell v

let rec atomic_max cell v =
  let cur = Atomic.get cell in
  if v > cur && not (Atomic.compare_and_set cell cur v) then atomic_max cell v

let dist_record d v =
  let s = slot () in
  ignore (Atomic.fetch_and_add d.d_count.(s) 1);
  ignore (Atomic.fetch_and_add d.d_sum.(s) v);
  atomic_min d.d_min.(s) v;
  atomic_max d.d_max.(s) v

let dist_read d =
  let count = counter_read d.d_count in
  let sum = counter_read d.d_sum in
  let mn = Array.fold_left (fun acc a -> min acc (Atomic.get a)) max_int d.d_min in
  let mx = Array.fold_left (fun acc a -> max acc (Atomic.get a)) min_int d.d_max in
  (count, sum, mn, mx)

(* ------------------------------------------------------------------ *)
(* Log-bucketed histograms.

   HDR-histogram-style log-linear bucketing over non-negative ints:
   values below [sub = 2^6] get singleton buckets (exact); a value with
   most-significant bit k >= 6 lands in one of 64 equal sub-buckets of
   the octave [2^k, 2^(k+1)), so the bucket upper bound overestimates
   the value by at most 1/64 (~1.6%). The bucket index is a pure
   function of the value and bucket counts are added commutatively, so
   the merged histogram — and every quantile read from it — is
   bit-identical regardless of how recording interleaved across
   domains. [quantile] rank-selects over the cumulative bucket counts
   and clamps the bucket upper bound to the exact tracked maximum, so
   p100 (and any quantile landing in the top occupied bucket) is
   exact. *)

module Histogram = struct
  let sub_bits = 6
  let sub = 1 lsl sub_bits

  (* position of the most significant set bit; [v > 0] *)
  let msb v =
    let k = ref 0 and v = ref v in
    if !v lsr 32 <> 0 then (k := !k + 32; v := !v lsr 32);
    if !v lsr 16 <> 0 then (k := !k + 16; v := !v lsr 16);
    if !v lsr 8 <> 0 then (k := !k + 8; v := !v lsr 8);
    if !v lsr 4 <> 0 then (k := !k + 4; v := !v lsr 4);
    if !v lsr 2 <> 0 then (k := !k + 2; v := !v lsr 2);
    if !v lsr 1 <> 0 then k := !k + 1;
    !k

  (* max_int has msb 61, so indices stop at (61-6+1)*64 + 63 = 3647. *)
  let n_buckets = 3648

  let bucket_of v =
    let v = if v < 0 then 0 else v in
    if v < sub then v
    else
      let k = msb v in
      ((k - sub_bits + 1) lsl sub_bits)
      lor ((v lsr (k - sub_bits)) land (sub - 1))

  let bucket_bounds i =
    if i < sub then (i, i)
    else
      let k = (i lsr sub_bits) + sub_bits - 1 in
      let w = 1 lsl (k - sub_bits) in
      let lo = (1 lsl k) + ((i land (sub - 1)) * w) in
      (lo, lo + w - 1)

  let round_up v = snd (bucket_bounds (bucket_of v))

  type t = {
    buckets : int array;
    mutable h_count : int;
    mutable h_sum : int;
    mutable h_min : int;  (* max_int while empty *)
    mutable h_max : int;  (* min_int while empty *)
  }

  let create () =
    { buckets = Array.make n_buckets 0; h_count = 0; h_sum = 0;
      h_min = max_int; h_max = min_int }

  let record t v =
    let v = if v < 0 then 0 else v in
    t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
    t.h_count <- t.h_count + 1;
    t.h_sum <- t.h_sum + v;
    if v < t.h_min then t.h_min <- v;
    if v > t.h_max then t.h_max <- v

  let of_list vs =
    let t = create () in
    List.iter (record t) vs;
    t

  let merge_into ~into t =
    Array.iteri
      (fun i n -> if n <> 0 then into.buckets.(i) <- into.buckets.(i) + n)
      t.buckets;
    into.h_count <- into.h_count + t.h_count;
    into.h_sum <- into.h_sum + t.h_sum;
    if t.h_min < into.h_min then into.h_min <- t.h_min;
    if t.h_max > into.h_max then into.h_max <- t.h_max

  let count t = t.h_count
  let sum t = t.h_sum
  let min_value t = if t.h_count = 0 then None else Some t.h_min
  let max_value t = if t.h_count = 0 then None else Some t.h_max

  let mean t =
    if t.h_count = 0 then Float.nan
    else float_of_int t.h_sum /. float_of_int t.h_count

  let quantile t q =
    if t.h_count = 0 then invalid_arg "Histogram.quantile: empty histogram";
    if not (q > 0.0) || q > 1.0 then
      invalid_arg "Histogram.quantile: q outside (0, 1]";
    let rank = int_of_float (Float.ceil (q *. float_of_int t.h_count)) in
    let rank = if rank < 1 then 1 else if rank > t.h_count then t.h_count else rank in
    let rec go i acc =
      let acc = acc + t.buckets.(i) in
      if acc >= rank then Stdlib.min (snd (bucket_bounds i)) t.h_max
      else go (i + 1) acc
    in
    go 0 0

  let nonzero_buckets t =
    let acc = ref [] in
    for i = n_buckets - 1 downto 0 do
      if t.buckets.(i) <> 0 then
        acc := (snd (bucket_bounds i), t.buckets.(i)) :: !acc
    done;
    !acc
end

(* Striped histogram: the count/sum/min/max part reuses the striped
   [dist]; bucket arrays are allocated lazily per stripe (3648 atomics
   only for domains that actually record). A stripe collision (> 64
   live domains) shares the atomics but never loses an update. *)

type hist = {
  h_dist : dist;
  h_stripes : int Atomic.t array option Atomic.t array;
}

let make_hist () =
  { h_dist = make_dist ();
    h_stripes = Array.init stripes (fun _ -> Atomic.make None) }

let hist_record h v =
  let v = if v < 0 then 0 else v in
  dist_record h.h_dist v;
  let s = slot () in
  let buckets =
    match Atomic.get h.h_stripes.(s) with
    | Some b -> b
    | None ->
        let b = Array.init Histogram.n_buckets (fun _ -> Atomic.make 0) in
        if Atomic.compare_and_set h.h_stripes.(s) None (Some b) then b
        else
          (* another domain sharing the stripe won the race *)
          Option.get (Atomic.get h.h_stripes.(s))
  in
  ignore (Atomic.fetch_and_add buckets.(Histogram.bucket_of v) 1)

let hist_read h =
  let out = Histogram.create () in
  Array.iter
    (fun stripe ->
      match Atomic.get stripe with
      | None -> ()
      | Some b ->
          Array.iteri
            (fun i a ->
              let n = Atomic.get a in
              if n <> 0 then
                out.Histogram.buckets.(i) <- out.Histogram.buckets.(i) + n)
            b)
    h.h_stripes;
  let c, s, mn, mx = dist_read h.h_dist in
  out.Histogram.h_count <- c;
  out.Histogram.h_sum <- s;
  out.Histogram.h_min <- mn;
  out.Histogram.h_max <- mx;
  out

(* ------------------------------------------------------------------ *)
(* Registry *)

type event = {
  ev_name : string;
  ev_domain : int;
  ev_start_ns : int;  (* relative to the registry's creation *)
  ev_dur_ns : int;
}

(* Request-scoped trace events live in their own list, never in the
   snapshot tables: a run with tracing enabled still produces a
   byte-identical --metrics-out (only --trace-out grows). *)
type trace_event =
  | Tr_span of {
      tr_name : string;
      tr_domain : int;
      tr_start_ns : int;  (* relative to the registry's creation *)
      tr_dur_ns : int;
      tr_trace : int;
      tr_span : int;
      tr_parent : int;
    }
  | Tr_flow of {
      fl_name : string;
      fl_domain : int;
      fl_ts_ns : int;
      fl_id : int;
      fl_start : bool;  (* true = flow start ("s"), false = end ("f") *)
    }

type t = {
  id : int;
  epoch_ns : int;
  mu : Mutex.t;
  counters : (string, counter) Hashtbl.t;
  dists : (string, dist) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  spans : (string, dist) Hashtbl.t;
  events : event list Atomic.t;
  traces : trace_event list Atomic.t;
  profiling : bool Atomic.t;
}

let next_id = Atomic.make 0

let create () =
  { id = Atomic.fetch_and_add next_id 1;
    epoch_ns = now_ns ();
    mu = Mutex.create ();
    counters = Hashtbl.create 32;
    dists = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    spans = Hashtbl.create 16;
    events = Atomic.make [];
    traces = Atomic.make [];
    profiling = Atomic.make false }

(* Profiling is an opt-in sub-capability of a registry: metrics that
   are inherently nondeterministic — wall-clock pool scheduling
   numbers, GC pauses — are recorded only when the registry has it
   enabled, so a plain --metrics/--metrics-out run keeps the
   byte-identical-across---jobs snapshot contract and a
   --profile-runtime run knowingly trades it away
   (doc/OBSERVABILITY.md). *)

let enable_profiling t = Atomic.set t.profiling true

let profiling_enabled = function
  | None -> false
  | Some t -> Atomic.get t.profiling

(* Per-domain handle caches: name resolution takes the registry mutex
   only on a domain's first use of a metric; afterwards the lookup is a
   domain-local hashtable hit followed by one atomic add on the
   domain's own stripe — no cross-domain contention in steady state.
   Keys include the registry id so multiple registries coexist. *)

let counter_cache : (int * string, counter) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let dist_cache : (int * string, dist) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let hist_cache : (int * string, hist) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let span_cache : (int * string, dist) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 32)

let resolve cache table mu ~make id name =
  let local = Domain.DLS.get cache in
  match Hashtbl.find_opt local (id, name) with
  | Some cell -> cell
  | None ->
      let cell =
        Mutex.protect mu (fun () ->
            match Hashtbl.find_opt table name with
            | Some cell -> cell
            | None ->
                let cell = make () in
                Hashtbl.add table name cell;
                cell)
      in
      Hashtbl.add local (id, name) cell;
      cell

(* ------------------------------------------------------------------ *)
(* Recording (all no-ops on [None]) *)

let add obs name n =
  match obs with
  | None -> ()
  | Some t ->
      counter_add (resolve counter_cache t.counters t.mu ~make:make_counter t.id name) n

let incr obs name = add obs name 1

let observe obs name v =
  match obs with
  | None -> ()
  | Some t ->
      dist_record (resolve dist_cache t.dists t.mu ~make:make_dist t.id name) v

let sample obs name v =
  match obs with
  | None -> ()
  | Some t ->
      hist_record (resolve hist_cache t.hists t.mu ~make:make_hist t.id name) v

let push_event t ev =
  let rec go () =
    let cur = Atomic.get t.events in
    if not (Atomic.compare_and_set t.events cur (ev :: cur)) then go ()
  in
  go ()

let span obs name f =
  match obs with
  | None -> f ()
  | Some t ->
      let d = resolve span_cache t.spans t.mu ~make:make_dist t.id name in
      let t0 = now_ns () in
      let finish () =
        let dur = now_ns () - t0 in
        dist_record d dur;
        push_event t
          { ev_name = name; ev_domain = (Domain.self () :> int);
            ev_start_ns = t0 - t.epoch_ns; ev_dur_ns = dur }
      in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

(* Request-scoped tracing: all no-ops unless both the registry and the
   context are present, so unsampled requests (and the default
   --trace-sample-rate 0.0) pay only two option tests. Unlike [span],
   nothing here touches the span aggregates — trace events are visible
   only through [chrome_trace]. *)

let push_trace t tev =
  let rec go () =
    let cur = Atomic.get t.traces in
    if not (Atomic.compare_and_set t.traces cur (tev :: cur)) then go ()
  in
  go ()

let trace_emit obs ctx name ~start_ns ~dur_ns =
  match (obs, ctx) with
  | Some t, Some (c : Trace_ctx.t) ->
      push_trace t
        (Tr_span
           { tr_name = name; tr_domain = (Domain.self () :> int);
             tr_start_ns = start_ns - t.epoch_ns; tr_dur_ns = dur_ns;
             tr_trace = c.trace_id; tr_span = c.span_id;
             tr_parent = c.parent_id })
  | _ -> ()

let trace_span obs ctx name f =
  match (obs, ctx) with
  | None, _ | _, None -> f ()
  | Some _, Some _ ->
      let t0 = now_ns () in
      let finish () = trace_emit obs ctx name ~start_ns:t0 ~dur_ns:(now_ns () - t0) in
      (match f () with
      | v ->
          finish ();
          v
      | exception e ->
          finish ();
          raise e)

let flow_point obs ctx name ~start =
  match (obs, ctx) with
  | Some t, Some (c : Trace_ctx.t) ->
      push_trace t
        (Tr_flow
           { fl_name = name; fl_domain = (Domain.self () :> int);
             fl_ts_ns = now_ns () - t.epoch_ns; fl_id = c.trace_id;
             fl_start = start })
  | _ -> ()

let flow_begin obs ctx name = flow_point obs ctx name ~start:true
let flow_end obs ctx name = flow_point obs ctx name ~start:false

(* ------------------------------------------------------------------ *)
(* Reading *)

type counter_view = { cv_name : string; cv_total : int }

type dist_view = {
  dv_name : string;
  dv_count : int;
  dv_sum : int;
  dv_min : int;
  dv_max : int;
}

type span_view = {
  sv_name : string;
  sv_count : int;
  sv_total_ns : int;
  sv_max_ns : int;
}

let by_name f a b = String.compare (f a) (f b)

let counters t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold
        (fun name c acc -> { cv_name = name; cv_total = counter_read c } :: acc)
        t.counters [])
  |> List.sort (by_name (fun v -> v.cv_name))

let dists t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold
        (fun name d acc ->
          let count, sum, mn, mx = dist_read d in
          if count = 0 then acc
          else
            { dv_name = name; dv_count = count; dv_sum = sum; dv_min = mn;
              dv_max = mx }
            :: acc)
        t.dists [])
  |> List.sort (by_name (fun v -> v.dv_name))

type hist_view = { hv_name : string; hv_hist : Histogram.t }

let hists t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold
        (fun name h acc ->
          let view = hist_read h in
          if Histogram.count view = 0 then acc
          else { hv_name = name; hv_hist = view } :: acc)
        t.hists [])
  |> List.sort (by_name (fun v -> v.hv_name))

let span_stats t =
  Mutex.protect t.mu (fun () ->
      Hashtbl.fold
        (fun name d acc ->
          let count, sum, _, mx = dist_read d in
          if count = 0 then acc
          else
            { sv_name = name; sv_count = count; sv_total_ns = sum;
              sv_max_ns = mx }
            :: acc)
        t.spans [])
  |> List.sort (by_name (fun v -> v.sv_name))

let counter_total t name =
  Mutex.protect t.mu (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some c -> counter_read c
      | None -> 0)

let events t =
  Atomic.get t.events
  |> List.sort (fun a b ->
         match Int.compare a.ev_start_ns b.ev_start_ns with
         | 0 -> (
             match Int.compare a.ev_domain b.ev_domain with
             | 0 -> String.compare a.ev_name b.ev_name
             | c -> c)
         | c -> c)

let trace_key = function
  | Tr_span s -> (s.tr_start_ns, s.tr_domain, s.tr_span, 0)
  | Tr_flow f -> (f.fl_ts_ns, f.fl_domain, f.fl_id, if f.fl_start then 1 else 2)

let trace_events t =
  Atomic.get t.traces
  |> List.sort (fun a b -> compare (trace_key a) (trace_key b))

let trace_count t = List.length (Atomic.get t.traces)

(* ------------------------------------------------------------------ *)
(* Exporters *)

let pp_ns ppf ns =
  if ns < 1_000 then Format.fprintf ppf "%dns" ns
  else if ns < 1_000_000 then Format.fprintf ppf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then
    Format.fprintf ppf "%.1fms" (float_of_int ns /. 1e6)
  else Format.fprintf ppf "%.2fs" (float_of_int ns /. 1e9)

let pp_summary ppf t =
  let line = String.make 70 '-' in
  Format.fprintf ppf "%s@." line;
  Format.fprintf ppf "Hydra_obs metrics summary@.";
  Format.fprintf ppf "%s@." line;
  let cs = counters t and ds = dists t and hs = hists t and ss = span_stats t in
  if cs <> [] then begin
    Format.fprintf ppf "%-44s %12s@." "counter" "total";
    List.iter
      (fun v -> Format.fprintf ppf "  %-42s %12d@." v.cv_name v.cv_total)
      cs
  end;
  if ds <> [] then begin
    Format.fprintf ppf "%-36s %8s %10s %7s %7s@." "distribution" "count"
      "mean" "min" "max";
    List.iter
      (fun v ->
        Format.fprintf ppf "  %-34s %8d %10.2f %7d %7d@." v.dv_name v.dv_count
          (float_of_int v.dv_sum /. float_of_int v.dv_count)
          v.dv_min v.dv_max)
      ds
  end;
  if hs <> [] then begin
    Format.fprintf ppf "%-36s %8s %8s %8s %8s %8s@." "histogram" "count"
      "p50" "p95" "p99" "max";
    List.iter
      (fun v ->
        let h = v.hv_hist in
        Format.fprintf ppf "  %-34s %8d %8d %8d %8d %8d@." v.hv_name
          (Histogram.count h)
          (Histogram.quantile h 0.50)
          (Histogram.quantile h 0.95)
          (Histogram.quantile h 0.99)
          (Option.value (Histogram.max_value h) ~default:0))
      hs
  end;
  if ss <> [] then begin
    Format.fprintf ppf "%-36s %8s %10s %10s %10s@." "span" "count" "total"
      "mean" "max";
    let ns n = Format.asprintf "%a" pp_ns n in
    List.iter
      (fun v ->
        Format.fprintf ppf "  %-34s %8d %10s %10s %10s@." v.sv_name v.sv_count
          (ns v.sv_total_ns)
          (ns (v.sv_total_ns / max 1 v.sv_count))
          (ns v.sv_max_ns))
      ss
  end;
  if cs = [] && ds = [] && hs = [] && ss = [] then
    Format.fprintf ppf "(no metrics recorded)@.";
  Format.fprintf ppf "%s@." line

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* Chrome trace-event format (the JSON array flavour understood by
   Perfetto and chrome://tracing): one "X" complete event per span with
   microsecond timestamps, tid = the recording domain's id, plus
   process/thread metadata events. Viewers reconstruct span nesting
   from containment of [ts, ts+dur] intervals on the same tid.

   Request-scoped trace events share the file: each sampled request's
   spans are "X" events (category "request") carrying trace/span/parent
   ids in their args, and each cross-domain handoff is an "s"/"f" flow
   pair keyed by the trace id — Perfetto draws the arrow from the
   dispatching domain's row to the executing worker's. *)
let chrome_trace ?(extra = []) t =
  let evs = events t in
  let trs = trace_events t in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  Buffer.add_string b
    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"hydra\"}}";
  let tids =
    List.sort_uniq Int.compare
      (List.map (fun e -> e.ev_domain) evs
      @ List.map
          (function Tr_span s -> s.tr_domain | Tr_flow f -> f.fl_domain)
          trs)
  in
  List.iter
    (fun tid ->
      Buffer.add_string b
        (Printf.sprintf
           ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
           tid tid))
    tids;
  List.iter
    (fun e ->
      Buffer.add_string b
        (Printf.sprintf
           ",{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"pid\":0,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
           (json_escape e.ev_name) e.ev_domain
           (float_of_int e.ev_start_ns /. 1e3)
           (float_of_int e.ev_dur_ns /. 1e3)))
    evs;
  List.iter
    (fun tev ->
      Buffer.add_string b
        (match tev with
        | Tr_span s ->
            Printf.sprintf
              ",{\"name\":\"%s\",\"cat\":\"request\",\"ph\":\"X\",\"pid\":0,\
               \"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\
               \"args\":{\"trace\":%d,\"span\":%d,\"parent\":%d}}"
              (json_escape s.tr_name) s.tr_domain
              (float_of_int s.tr_start_ns /. 1e3)
              (float_of_int s.tr_dur_ns /. 1e3)
              s.tr_trace s.tr_span s.tr_parent
        | Tr_flow f ->
            Printf.sprintf
              ",{\"name\":\"%s\",\"cat\":\"request\",\"ph\":\"%s\",%s\"pid\":0,\
               \"tid\":%d,\"ts\":%.3f,\"id\":%d}"
              (json_escape f.fl_name)
              (if f.fl_start then "s" else "f")
              (if f.fl_start then "" else "\"bp\":\"e\",")
              f.fl_domain
              (float_of_int f.fl_ts_ns /. 1e3)
              f.fl_id))
    trs;
  (* Extra pre-rendered events (e.g. a simulated schedule from
     Sim.Event_log, attributed to its own pid) share the file. *)
  List.iter
    (fun ev ->
      Buffer.add_char b ',';
      Buffer.add_string b ev)
    extra;
  Buffer.add_string b "]}";
  Buffer.contents b

let write_chrome_trace ?extra t ~path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (chrome_trace ?extra t))

(* ------------------------------------------------------------------ *)
(* Flight recorder: a fixed-size lock-free ring of compact structured
   events, cheap enough to leave on in the daemon's default
   configuration (doc/OBSERVABILITY.md).

   Each event is five ints in a flat [int Atomic.t] array — timestamp,
   kind code, interned tenant id, and two free arguments — claimed by a
   single [fetch_and_add] on the head counter, so [record] never takes
   a lock and never allocates ([@lint.hot]-gated: its whole call cone
   is atomics and unsafe array reads). Writers wrap; a dump reads the
   last [min recorded capacity] slots oldest-first. Dumping while
   writers are active is best-effort — a slot being overwritten
   mid-read can tear into a mix of two events — which is the right
   trade for a crash/SIGUSR1 diagnostic: the recorder must never slow
   the path it is recording. Tenant names are interned to small ints on
   a mutex-protected slow path (once per tenant, not per event). *)

module Flight = struct
  let schema = "hydra_c.flight/1"

  type kind =
    | Accept
    | Decode
    | Coalesce
    | Shard
    | Select
    | Reply
    | Slow
    | Error

  let kind_name = function
    | Accept -> "accept"
    | Decode -> "decode"
    | Coalesce -> "coalesce"
    | Shard -> "shard"
    | Select -> "select"
    | Reply -> "reply"
    | Slow -> "slow"
    | Error -> "error"

  let kind_code = function
    | Accept -> 0
    | Decode -> 1
    | Coalesce -> 2
    | Shard -> 3
    | Select -> 4
    | Reply -> 5
    | Slow -> 6
    | Error -> 7

  let name_of_code = function
    | 0 -> "accept"
    | 1 -> "decode"
    | 2 -> "coalesce"
    | 3 -> "shard"
    | 4 -> "select"
    | 5 -> "reply"
    | 6 -> "slow"
    | 7 -> "error"
    | _ -> "torn"  (* a dump raced a writer over this slot *)

  let width = 5  (* ts, kind, tenant, a, b *)

  type t = {
    f_cap : int;  (* power of two *)
    f_head : int Atomic.t;  (* total events ever recorded *)
    f_slots : int Atomic.t array;  (* f_cap * width cells *)
    f_mu : Mutex.t;  (* guards the interning tables only *)
    f_ids : (string, int) Hashtbl.t;
    mutable f_names : string array;  (* id -> name *)
    mutable f_n_names : int;
  }

  let create ?(capacity = 4096) () =
    let cap =
      let c = Stdlib.max 8 capacity in
      let p = ref 8 in
      while !p < c do
        p := !p * 2
      done;
      !p
    in
    { f_cap = cap;
      f_head = Atomic.make 0;
      f_slots = Array.init (cap * width) (fun _ -> Atomic.make 0);
      f_mu = Mutex.create ();
      f_ids = Hashtbl.create 16;
      f_names = Array.make 16 "";
      f_n_names = 0 }

  let capacity t = t.f_cap
  let recorded t = Atomic.get t.f_head

  let intern t name =
    Mutex.protect t.f_mu (fun () ->
        match Hashtbl.find_opt t.f_ids name with
        | Some id -> id
        | None ->
            let id = t.f_n_names in
            if id >= Array.length t.f_names then begin
              let bigger = Array.make (2 * Array.length t.f_names) "" in
              Array.blit t.f_names 0 bigger 0 id;
              t.f_names <- bigger
            end;
            t.f_names.(id) <- name;
            t.f_n_names <- id + 1;
            Hashtbl.add t.f_ids name id;
            id)

  (* [tenant] is an [intern]ed id (or -1 for none); [ts] is the
     caller's clock reading so fixed-sequence dumps are reproducible in
     tests. Allocation-free and lock-free: D8-verified via the
     [@lint.hot] gate. *)
  let[@lint.hot] record t ~ts ~kind ~tenant ~a ~b =
    let seq = Atomic.fetch_and_add t.f_head 1 in
    let base = (seq land (t.f_cap - 1)) * width in
    Atomic.set (Array.unsafe_get t.f_slots base) ts;
    Atomic.set (Array.unsafe_get t.f_slots (base + 1)) (kind_code kind);
    Atomic.set (Array.unsafe_get t.f_slots (base + 2)) tenant;
    Atomic.set (Array.unsafe_get t.f_slots (base + 3)) a;
    Atomic.set (Array.unsafe_get t.f_slots (base + 4)) b

  (* JSONL, oldest surviving event first: a header line identifying the
     ring, then one line per event. *)
  let dump t =
    let total = Atomic.get t.f_head in
    let n = Stdlib.min total t.f_cap in
    let names =
      Mutex.protect t.f_mu (fun () -> Array.sub t.f_names 0 t.f_n_names)
    in
    let b = Buffer.create (256 + (n * 96)) in
    Printf.bprintf b
      "{\"schema\":\"%s\",\"capacity\":%d,\"recorded\":%d,\"dumped\":%d}\n"
      schema t.f_cap total n;
    for seq = total - n to total - 1 do
      let base = (seq land (t.f_cap - 1)) * width in
      let ts = Atomic.get t.f_slots.(base) in
      let kind = Atomic.get t.f_slots.(base + 1) in
      let tenant = Atomic.get t.f_slots.(base + 2) in
      let a = Atomic.get t.f_slots.(base + 3) in
      let bv = Atomic.get t.f_slots.(base + 4) in
      let tname =
        if tenant >= 0 && tenant < Array.length names then names.(tenant)
        else ""
      in
      Printf.bprintf b
        "{\"seq\":%d,\"ts_ns\":%d,\"kind\":\"%s\",\"tenant\":\"%s\",\"a\":%d,\"b\":%d}\n"
        seq ts (name_of_code kind) (json_escape tname) a bv
    done;
    Buffer.contents b

  let dump_to t ~path =
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (dump t))
end

(* ------------------------------------------------------------------ *)
(* Rate-limited structured stderr logging.

   The one sanctioned way for long-running library code (the admission
   daemon in particular — hydra_lint rule D2 rejects any other stderr
   write under lib/server) to talk to an operator: one line per event,
   [key=value] formatted, throttled by a token bucket on the monotonic
   clock so a failure loop cannot flood the terminal. Suppressed lines
   are counted and the count is reported on the next line that gets
   through ([suppressed=N]), so throttling is visible rather than
   silent. Stdout is never touched — the determinism contract covers
   stdout bytes only. *)

module Log = struct
  type t = {
    lg_mu : Mutex.t;
    lg_rate : int;  (* tokens (lines) per second; 0 = unlimited *)
    lg_burst : int;
    lg_out : Format.formatter;
    mutable lg_tokens : float;
    mutable lg_last_ns : int;
    mutable lg_suppressed : int;
    mutable lg_emitted : int;
  }

  let create ?(rate_per_s = 10) ?burst ?out () =
    let rate = Stdlib.max 0 rate_per_s in
    let burst =
      match burst with
      | Some b -> Stdlib.max 1 b
      | None -> Stdlib.max 1 rate
    in
    { lg_mu = Mutex.create ();
      lg_rate = rate;
      lg_burst = burst;
      lg_out = (match out with Some f -> f | None -> Format.err_formatter);
      lg_tokens = float_of_int burst;
      lg_last_ns = now_ns ();
      lg_suppressed = 0;
      lg_emitted = 0 }

  let quote v =
    let plain =
      v <> ""
      && String.for_all
           (fun c -> c <> ' ' && c <> '"' && c <> '=' && Char.code c >= 0x20)
           v
    in
    if plain then v else "\"" ^ json_escape v ^ "\""

  let log t event kvs =
    Mutex.protect t.lg_mu (fun () ->
        let now = now_ns () in
        (if t.lg_rate > 0 then begin
           let dt = float_of_int (now - t.lg_last_ns) /. 1e9 in
           t.lg_tokens <-
             Float.min
               (float_of_int t.lg_burst)
               (t.lg_tokens +. (dt *. float_of_int t.lg_rate))
         end);
        t.lg_last_ns <- now;
        if t.lg_rate > 0 && t.lg_tokens < 1.0 then
          t.lg_suppressed <- t.lg_suppressed + 1
        else begin
          if t.lg_rate > 0 then t.lg_tokens <- t.lg_tokens -. 1.0;
          t.lg_emitted <- t.lg_emitted + 1;
          Format.fprintf t.lg_out "[hydra] event=%s" (quote event);
          if t.lg_suppressed > 0 then begin
            Format.fprintf t.lg_out " suppressed=%d" t.lg_suppressed;
            t.lg_suppressed <- 0
          end;
          List.iter
            (fun (k, v) -> Format.fprintf t.lg_out " %s=%s" k (quote v))
            kvs;
          Format.fprintf t.lg_out "@."
        end)

  let suppressed t = Mutex.protect t.lg_mu (fun () -> t.lg_suppressed)
  let emitted t = Mutex.protect t.lg_mu (fun () -> t.lg_emitted)
end

(* ------------------------------------------------------------------ *)
(* Sliding-window histograms: a ring of per-epoch histograms. [record]
   feeds the current epoch; [rotate] advances the ring, discarding the
   oldest epoch — so [merged] always aggregates the last [epochs]
   rotations' worth of samples and old outliers age out instead of
   polluting a cumulative quantile forever. Single-writer by design
   (the daemon owns one window per tenant on its own domain); cheap
   enough to rotate per batch. *)

module Window = struct
  type t = {
    w_epochs : Histogram.t array;
    mutable w_cur : int;
    mutable w_rotations : int;
  }

  let create ?(epochs = 8) () =
    { w_epochs = Array.init (Stdlib.max 2 epochs) (fun _ -> Histogram.create ());
      w_cur = 0;
      w_rotations = 0 }

  let epochs t = Array.length t.w_epochs
  let rotations t = t.w_rotations
  let record t v = Histogram.record t.w_epochs.(t.w_cur) v

  let rotate t =
    t.w_rotations <- t.w_rotations + 1;
    t.w_cur <- (t.w_cur + 1) mod Array.length t.w_epochs;
    (* the slot we are entering holds the oldest epoch: drop it *)
    t.w_epochs.(t.w_cur) <- Histogram.create ()

  let merged t =
    let out = Histogram.create () in
    Array.iter (fun h -> Histogram.merge_into ~into:out h) t.w_epochs;
    out

  let count t = Array.fold_left (fun acc h -> acc + Histogram.count h) 0 t.w_epochs

  let quantile t q =
    let m = merged t in
    if Histogram.count m = 0 then None else Some (Histogram.quantile m q)
end

(* ------------------------------------------------------------------ *)
(* Machine-readable metrics snapshot (--metrics-out) *)

module Snapshot = struct
  let json_float f =
    if Float.is_finite f then Printf.sprintf "%.12g" f else "null"

  let schema = "hydra_c.metrics/1"

  (* Stable schema, sorted keys, deterministic values only by default:
     counters, distributions and histograms are pure functions of the
     analytical work (identical for every --jobs value), while span
     durations are wall-clock noise — those are included only with
     [include_timings], so two snapshots of the same workload diff
     clean across job counts. *)
  let to_json ?(include_timings = false) t =
    let b = Buffer.create 4096 in
    let obj_of b render items =
      Buffer.add_char b '{';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char b ',';
          render b item)
        items;
      Buffer.add_char b '}'
    in
    Buffer.add_string b "{\"schema\":\"";
    Buffer.add_string b schema;
    Buffer.add_string b "\",\"counters\":";
    obj_of b
      (fun b (c : counter_view) ->
        Printf.bprintf b "\"%s\":%d" (json_escape c.cv_name) c.cv_total)
      (counters t);
    Buffer.add_string b ",\"dists\":";
    obj_of b
      (fun b (d : dist_view) ->
        Printf.bprintf b
          "\"%s\":{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"mean\":%s}"
          (json_escape d.dv_name) d.dv_count d.dv_sum d.dv_min d.dv_max
          (json_float (float_of_int d.dv_sum /. float_of_int d.dv_count)))
      (dists t);
    Buffer.add_string b ",\"histograms\":";
    obj_of b
      (fun b (v : hist_view) ->
        let h = v.hv_hist in
        Printf.bprintf b
          "\"%s\":{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"mean\":%s,\
           \"quantiles\":{\"p50\":%d,\"p95\":%d,\"p99\":%d,\"max\":%d},\
           \"buckets\":["
          (json_escape v.hv_name) (Histogram.count h) (Histogram.sum h)
          (Option.value (Histogram.min_value h) ~default:0)
          (Option.value (Histogram.max_value h) ~default:0)
          (json_float (Histogram.mean h))
          (Histogram.quantile h 0.50) (Histogram.quantile h 0.95)
          (Histogram.quantile h 0.99)
          (Option.value (Histogram.max_value h) ~default:0);
        List.iteri
          (fun i (le, count) ->
            if i > 0 then Buffer.add_char b ',';
            Printf.bprintf b "{\"le\":%d,\"count\":%d}" le count)
          (Histogram.nonzero_buckets h);
        Buffer.add_string b "]}")
      (hists t);
    Buffer.add_string b ",\"spans\":";
    obj_of b
      (fun b (s : span_view) ->
        if include_timings then
          Printf.bprintf b "\"%s\":{\"count\":%d,\"total_ns\":%d,\"max_ns\":%d}"
            (json_escape s.sv_name) s.sv_count s.sv_total_ns s.sv_max_ns
        else
          Printf.bprintf b "\"%s\":{\"count\":%d}" (json_escape s.sv_name)
            s.sv_count)
      (span_stats t);
    Buffer.add_string b "}";
    Buffer.contents b

  let write ?include_timings t ~path =
    Out_channel.with_open_text path (fun oc ->
        Out_channel.output_string oc (to_json ?include_timings t);
        Out_channel.output_char oc '\n')

  (* ---------------------------------------------------------------- *)
  (* Time-series snapshots: one hydra_c.metrics_delta/1 JSON object
     per tick, appended as JSONL. Each line carries only what moved
     since the previous tick — counter deltas, dist/histogram
     count/sum/bucket deltas (minima and maxima are cumulative: they
     are not invertible, so each line carries the current value) —
     which keeps lines small for long-running commands and makes the
     fold over a stream reproduce the full snapshot exactly
     (Obs_report.of_string; round-trip tested in
     test/test_obs_report.ml). Ticks may come from any domain (the
     phase boundaries of the CLI, or a Ticker): a mutex serializes
     them, and the registry reads they perform are the same
     stripe-summing reads every exporter uses. *)

  (* The delta computation is its own layer so two consumers can share
     it: [Stream] appends lines to a file (--metrics-stream), and the
     daemon's [obs_stream] protocol op returns one line per request
     from a per-client tracker (doc/SERVER.md). *)
  module Delta = struct
    let schema = "hydra_c.metrics_delta/1"

    type tracker = {
      dt_reg : t;
      dt_mu : Mutex.t;
      mutable dt_seq : int;
      prev_counters : (string, int) Hashtbl.t;
      prev_dists : (string, int * int) Hashtbl.t;  (* count, sum *)
      prev_hists : (string, int * int * (int * int) list) Hashtbl.t;
          (* count, sum, occupied buckets *)
      prev_spans : (string, int) Hashtbl.t;
    }

    let create reg =
      { dt_reg = reg; dt_mu = Mutex.create (); dt_seq = 0;
        prev_counters = Hashtbl.create 32; prev_dists = Hashtbl.create 16;
        prev_hists = Hashtbl.create 16; prev_spans = Hashtbl.create 16 }

    (* [cur] and [prev] are both ascending by bucket upper bound, and
       bucket counts never decrease, so [prev] is a sub-multiset of
       [cur]. *)
    let rec bucket_delta cur prev =
      match (cur, prev) with
      | rest, [] -> List.filter (fun (_, c) -> c <> 0) rest
      | [], _ -> []
      | (le_c, cc) :: tc, (le_p, cp) :: tp ->
          if le_c = le_p then
            let d = cc - cp in
            if d <> 0 then (le_c, d) :: bucket_delta tc tp
            else bucket_delta tc tp
          else if le_c < le_p then (le_c, cc) :: bucket_delta tc prev
          else bucket_delta cur tp

    (* Emit an object section: [render] returns [true] when it wrote a
       member (so separators stay correct with entries skipped). *)
    let section b name render items =
      Printf.bprintf b ",\"%s\":{" name;
      let first = ref true in
      List.iter
        (fun item ->
          let wrote = render ~sep:(not !first) item in
          if wrote then first := false)
        items;
      Buffer.add_char b '}'

    (* One hydra_c.metrics_delta/1 object (a single line, no trailing
       newline) covering everything that moved since the previous
       [line] call; advances the tracker. *)
    let line ?label dt =
      Mutex.protect dt.dt_mu @@ fun () ->
      let b = Buffer.create 512 in
      Printf.bprintf b "{\"schema\":\"%s\",\"seq\":%d" schema dt.dt_seq;
      (match label with
      | Some l -> Printf.bprintf b ",\"label\":\"%s\"" (json_escape l)
      | None -> ());
      section b "counters"
        (fun ~sep (c : counter_view) ->
          let prev =
            Option.value
              (Hashtbl.find_opt dt.prev_counters c.cv_name)
              ~default:0
          in
          let d = c.cv_total - prev in
          if d = 0 then false
          else begin
            Hashtbl.replace dt.prev_counters c.cv_name c.cv_total;
            if sep then Buffer.add_char b ',';
            Printf.bprintf b "\"%s\":%d" (json_escape c.cv_name) d;
            true
          end)
        (counters dt.dt_reg);
      section b "dists"
        (fun ~sep (d : dist_view) ->
          let pc, ps =
            Option.value
              (Hashtbl.find_opt dt.prev_dists d.dv_name)
              ~default:(0, 0)
          in
          if d.dv_count = pc && d.dv_sum = ps then false
          else begin
            Hashtbl.replace dt.prev_dists d.dv_name (d.dv_count, d.dv_sum);
            if sep then Buffer.add_char b ',';
            Printf.bprintf b
              "\"%s\":{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d}"
              (json_escape d.dv_name) (d.dv_count - pc) (d.dv_sum - ps)
              d.dv_min d.dv_max;
            true
          end)
        (dists dt.dt_reg);
      section b "histograms"
        (fun ~sep (v : hist_view) ->
          let h = v.hv_hist in
          let count = Histogram.count h and sum = Histogram.sum h in
          let pc, ps, pb =
            Option.value
              (Hashtbl.find_opt dt.prev_hists v.hv_name)
              ~default:(0, 0, [])
          in
          if count = pc && sum = ps then false
          else begin
            let buckets = Histogram.nonzero_buckets h in
            Hashtbl.replace dt.prev_hists v.hv_name (count, sum, buckets);
            if sep then Buffer.add_char b ',';
            Printf.bprintf b
              "\"%s\":{\"count\":%d,\"sum\":%d,\"min\":%d,\"max\":%d,\"buckets\":["
              (json_escape v.hv_name) (count - pc) (sum - ps)
              (Option.value (Histogram.min_value h) ~default:0)
              (Option.value (Histogram.max_value h) ~default:0);
            List.iteri
              (fun i (le, c) ->
                if i > 0 then Buffer.add_char b ',';
                Printf.bprintf b "{\"le\":%d,\"count\":%d}" le c)
              (bucket_delta buckets pb);
            Buffer.add_string b "]}";
            true
          end)
        (hists dt.dt_reg);
      section b "spans"
        (fun ~sep (s : span_view) ->
          let prev =
            Option.value (Hashtbl.find_opt dt.prev_spans s.sv_name) ~default:0
          in
          let d = s.sv_count - prev in
          if d = 0 then false
          else begin
            Hashtbl.replace dt.prev_spans s.sv_name s.sv_count;
            if sep then Buffer.add_char b ',';
            Printf.bprintf b "\"%s\":{\"count\":%d}" (json_escape s.sv_name) d;
            true
          end)
        (span_stats dt.dt_reg);
      Buffer.add_char b '}';
      dt.dt_seq <- dt.dt_seq + 1;
      Buffer.contents b
  end

  module Stream = struct
    let schema = Delta.schema

    type stream = {
      st_delta : Delta.tracker;
      st_oc : Out_channel.t;
      st_mu : Mutex.t;
      mutable st_closed : bool;
    }

    let create reg ~path =
      { st_delta = Delta.create reg; st_oc = Out_channel.open_text path;
        st_mu = Mutex.create (); st_closed = false }

    let tick ?label st =
      Mutex.protect st.st_mu @@ fun () ->
      if not st.st_closed then begin
        Out_channel.output_string st.st_oc (Delta.line ?label st.st_delta);
        Out_channel.output_char st.st_oc '\n';
        Out_channel.flush st.st_oc
      end

    let close st =
      Mutex.protect st.st_mu @@ fun () ->
      if not st.st_closed then begin
        st.st_closed <- true;
        Out_channel.close st.st_oc
      end
  end
end

(* ------------------------------------------------------------------ *)
(* Runtime profiling: OCaml 5 Runtime_events -> the registry + trace.

   [Runtime.start] turns on the runtime's per-domain event rings and
   attaches a self cursor. A Ticker domain drains the rings every
   [poll_ms] (so bursts of GC activity don't overflow a ring between
   phase boundaries; overflows that happen anyway surface as the
   [runtime.events.lost] counter). Each top-level GC phase folds into
   the registry — [gc.minor_pause_ns]/[gc.major_pause_ns] histograms
   plus per-ring [gc.{minor,major}.d<ring>] counters — and every phase
   becomes a slice for the Chrome trace, one row per runtime ring
   (= domain) under its own pid, so GC pauses line up with the
   application spans above them. All of it is gated behind
   --profile-runtime in the CLI: the determinism contract only covers
   runs without profiling (doc/OBSERVABILITY.md). *)

module Runtime = struct
  module RE = Runtime_events

  type slice = {
    sl_ring : int;
    sl_name : string;
    sl_start_ns : int;  (* absolute monotonic ns *)
    sl_dur_ns : int;
  }

  type instant = { in_ring : int; in_name : string; in_ts_ns : int }

  (* Keep at most this many trace slices (the histograms and counters
     keep accumulating regardless); beyond it, slices are dropped and
     counted in [runtime.trace.dropped]. *)
  let max_slices = 500_000

  type profiler = {
    p_reg : t;
    p_obs : t option;
    p_cursor : RE.cursor;
    p_mu : Mutex.t;
    p_stacks : (int, (RE.runtime_phase * int) list ref) Hashtbl.t;
    mutable p_slices : slice list;
    mutable p_n_slices : int;
    mutable p_instants : instant list;
    mutable p_callbacks : RE.Callbacks.t;
    mutable p_ticker : Ticker.ticker option;
    mutable p_stopped : bool;
  }

  type gc_family = Gc_minor | Gc_major | Gc_other

  let family : RE.runtime_phase -> gc_family = function
    | RE.EV_MINOR | RE.EV_EXPLICIT_GC_MINOR -> Gc_minor
    | RE.EV_MAJOR | RE.EV_MAJOR_SLICE | RE.EV_MAJOR_GC_STW
    | RE.EV_EXPLICIT_GC_MAJOR | RE.EV_EXPLICIT_GC_FULL_MAJOR
    | RE.EV_EXPLICIT_GC_MAJOR_SLICE | RE.EV_EXPLICIT_GC_COMPACT ->
        Gc_major
    | _ -> Gc_other

  let ts_ns ts = Int64.to_int (RE.Timestamp.to_int64 ts)

  let stack_of p ring =
    match Hashtbl.find_opt p.p_stacks ring with
    | Some s -> s
    | None ->
        let s = ref [] in
        Hashtbl.add p.p_stacks ring s;
        s

  let push_slice p ring name start dur =
    if p.p_n_slices < max_slices then begin
      p.p_slices <-
        { sl_ring = ring; sl_name = name; sl_start_ns = start;
          sl_dur_ns = dur }
        :: p.p_slices;
      p.p_n_slices <- p.p_n_slices + 1
    end
    else incr p.p_obs "runtime.trace.dropped"

  (* Callbacks run inside [read_poll], which only ever executes under
     [p_mu] (see [poll]), so the stacks and slice lists need no further
     synchronization. *)
  let make_callbacks p =
    let runtime_begin ring ts phase =
      let stack = stack_of p ring in
      stack := (phase, ts_ns ts) :: !stack
    in
    let runtime_end ring ts phase =
      let stack = stack_of p ring in
      match !stack with
      | (ph, t0) :: rest when ph = phase ->
          stack := rest;
          let dur = ts_ns ts - t0 in
          push_slice p ring (RE.runtime_phase_name phase) t0 dur;
          (* Only top-level phases feed the pause metrics: EV_MINOR
             contains EV_MINOR_* sub-phases (and a major slice nests
             its own), so sampling at depth 0 counts each pause once. *)
          if rest = [] then (
            match family phase with
            | Gc_minor ->
                sample p.p_obs "gc.minor_pause_ns" dur;
                incr p.p_obs (Printf.sprintf "gc.minor.d%d" ring)
            | Gc_major ->
                sample p.p_obs "gc.major_pause_ns" dur;
                incr p.p_obs (Printf.sprintf "gc.major.d%d" ring)
            | Gc_other -> ())
      | _ ->
          (* an end without its begin: the cursor attached mid-phase or
             the ring wrapped — drop it *)
          ()
    in
    let runtime_counter ring ts ctr v =
      ignore ring;
      ignore ts;
      observe p.p_obs ("runtime.ctr." ^ RE.runtime_counter_name ctr) v
    in
    let lifecycle ring ts lc _arg =
      p.p_instants <-
        { in_ring = ring; in_name = RE.lifecycle_name lc; in_ts_ns = ts_ns ts }
        :: p.p_instants;
      match lc with
      | RE.EV_DOMAIN_SPAWN -> incr p.p_obs "runtime.domain.spawn"
      | RE.EV_DOMAIN_TERMINATE -> incr p.p_obs "runtime.domain.terminate"
      | _ -> ()
    in
    let lost_events ring n =
      ignore ring;
      add p.p_obs "runtime.events.lost" n
    in
    RE.Callbacks.create ~runtime_begin ~runtime_end ~runtime_counter
      ~lifecycle ~lost_events ()

  let poll p =
    Mutex.protect p.p_mu (fun () ->
        if not p.p_stopped then
          ignore (RE.read_poll p.p_cursor p.p_callbacks None))

  let start ?(poll_ms = 10) reg =
    match
      RE.start ();
      RE.create_cursor None
    with
    | exception _ -> None  (* Runtime_events unavailable: degrade *)
    | cursor ->
        let p =
          { p_reg = reg; p_obs = Some reg; p_cursor = cursor;
            p_mu = Mutex.create (); p_stacks = Hashtbl.create 8;
            p_slices = []; p_n_slices = 0; p_instants = [];
            p_callbacks = RE.Callbacks.create (); p_ticker = None;
            p_stopped = false }
        in
        p.p_callbacks <- make_callbacks p;
        p.p_ticker <- Some (Ticker.start ~period_ms:(max 1 poll_ms) (fun () -> poll p));
        Some p

  let stop p =
    (match p.p_ticker with
    | Some tk ->
        p.p_ticker <- None;
        Ticker.stop tk
    | None -> ());
    poll p;
    Mutex.protect p.p_mu (fun () ->
        if not p.p_stopped then begin
          p.p_stopped <- true;
          RE.free_cursor p.p_cursor;
          (* stop producing into the rings; a later [start] resumes *)
          try RE.pause () with _ -> ()
        end)

  let slice_count p = Mutex.protect p.p_mu (fun () -> p.p_n_slices)

  let chrome_events p ~pid =
    let slices, instants =
      Mutex.protect p.p_mu (fun () -> (p.p_slices, p.p_instants))
    in
    let epoch = p.p_reg.epoch_ns in
    let rel ns = if ns < epoch then 0 else ns - epoch in
    let us ns = float_of_int (rel ns) /. 1e3 in
    let rings =
      List.sort_uniq Int.compare
        (List.map (fun s -> s.sl_ring) slices
        @ List.map (fun i -> i.in_ring) instants)
    in
    let out = ref [] in
    let emit s = out := s :: !out in
    emit
      (Printf.sprintf
         "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"name\":\"ocaml runtime\"}}"
         pid);
    emit
      (Printf.sprintf
         "{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":%d,\"args\":{\"sort_index\":%d}}"
         pid pid);
    List.iter
      (fun ring ->
        emit
          (Printf.sprintf
             "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":\"runtime domain %d\"}}"
             pid ring ring))
      rings;
    let sorted_slices =
      List.sort
        (fun a b ->
          match Int.compare a.sl_start_ns b.sl_start_ns with
          | 0 -> (
              (* longer (outer) slice first at equal start *)
              match Int.compare b.sl_dur_ns a.sl_dur_ns with
              | 0 -> Int.compare a.sl_ring b.sl_ring
              | c -> c)
          | c -> c)
        slices
    in
    List.iter
      (fun s ->
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"cat\":\"gc\",\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f}"
             (json_escape s.sl_name) pid s.sl_ring (us s.sl_start_ns)
             (float_of_int s.sl_dur_ns /. 1e3)))
      sorted_slices;
    List.iter
      (fun i ->
        emit
          (Printf.sprintf
             "{\"name\":\"%s\",\"ph\":\"i\",\"s\":\"t\",\"pid\":%d,\"tid\":%d,\"ts\":%.3f}"
             (json_escape i.in_name) pid i.in_ring (us i.in_ts_ns)))
      (List.rev instants);
    List.rev !out
end

(* Offline snapshot tooling, re-exported so consumers reach everything
   through the one [Hydra_obs] entry point. *)
module Json = Obs_json
module Report = Obs_report
